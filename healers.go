// Package healers is a Go reproduction of the HEALERS toolkit
// (Fetzer & Xiao, DSN 2003): enhancing the robustness and security of
// existing applications, without source access, by interposing generated
// fault-containment wrappers between an application and its C library.
//
// Because Go cannot build LD_PRELOAD shared objects, the whole substrate
// is reproduced as a simulated C runtime: a paged address space with real
// fault semantics, a boundary-tag heap with canaries, an 80+-function C
// library with authentic unchecked behaviour, an ELF-like object format,
// and a dynamic linker whose preload list is the interposition mechanism.
// On top of that substrate the package offers the paper's workflow:
//
//	tk, err := healers.NewToolkit()          // a system with libc installed
//	tk.InstallSampleApps()                    // rootd, textutil, stress
//	scan, _ := tk.ScanLibrary("libc.so.6")    // demo 3.1
//	api, report, _ := tk.DeriveRobustAPI("libc.so.6")   // Fig. 2
//	tk.GenerateRobustnessWrapper("libc.so.6", api, nil) // Fig. 3
//	res, _ := tk.Run("rootd", []string{healers.SecurityWrapper}, attack)
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the reproduced figures and demos.
package healers

import (
	"healers/internal/clib"
	"healers/internal/core"
	"healers/internal/ctypes"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/proc"
	"healers/internal/victim"
	"healers/internal/wrappers"
	"healers/internal/xmlrep"
)

// Toolkit is one HEALERS instance bound to one simulated system. See
// core.Toolkit for the full method set: scanning, injection, wrapper
// generation, profiled runs, and hardening verification.
type Toolkit = core.Toolkit

// Result types re-exported for callers of the toolkit API.
type (
	// LibraryScan is a library-centric scan (demo §3.1).
	LibraryScan = core.LibraryScan
	// AppScan is an application-centric scan (demo §3.2, Fig. 4).
	AppScan = core.AppScan
	// RunResult couples a process result with its collected profile.
	RunResult = core.RunResult
	// HardeningResult compares campaign failures before and after
	// wrapping.
	HardeningResult = core.HardeningResult
	// RobustAPI is the fault-injection-derived weakest robust argument
	// types per function.
	RobustAPI = ctypes.RobustAPI
	// LibReport is a whole-library fault-injection campaign report.
	LibReport = inject.LibReport
	// FuncReport is a single-function fault-injection report.
	FuncReport = inject.FuncReport
	// CampaignStats is a campaign throughput summary (probes/sec,
	// per-function wall time, worker utilization, cache hits).
	CampaignStats = inject.CampaignStats
	// CampaignCache is the persistent content-addressed store of
	// per-function campaign outcomes (and the checkpoint file format).
	CampaignCache = inject.Cache
	// Coordinator serves a sharded fault-injection sweep to worker
	// processes over the collect wire protocol.
	Coordinator = inject.Coordinator
	// WorkerStat is one worker's share of a distributed sweep.
	WorkerStat = inject.WorkerStat
	// WorkerSummary is a distributed-campaign worker's own accounting.
	WorkerSummary = inject.WorkerSummary
	// BaselineDiff is one difference the robustness-regression gate
	// found between a fresh derivation and the checked-in baseline.
	BaselineDiff = core.BaselineDiff
	// ProcResult describes how a simulated process ended.
	ProcResult = proc.Result
	// ProfileLog is the profiling wrapper's XML document (Fig. 5).
	ProfileLog = xmlrep.ProfileLog
	// ChaosResult couples a chaos-mode run's outcome with the
	// injector's draw statistics.
	ChaosResult = core.ChaosResult
	// SoakResult summarizes a sustained chaos soak of a stateful
	// victim daemon: survival, containment counters, latency quantiles.
	SoakResult = core.SoakResult
	// SequenceScenario is one deterministic victim workload a temporal
	// fault-sequence campaign replays.
	SequenceScenario = inject.SequenceScenario
	// SequenceReport is a temporal fault-sequence campaign's result.
	SequenceReport = inject.SequenceReport
	// ContainPolicy is the interface the containment wrapper consults
	// on every contained failure.
	ContainPolicy = gen.ContainPolicy
	// PolicyEngine is the per-function recovery policy the containment
	// wrapper consults, circuit breaker included.
	PolicyEngine = wrappers.PolicyEngine
	// PolicyRule maps one (function, failure class) pair to a recovery
	// action.
	PolicyRule = wrappers.PolicyRule
	// PolicyDoc is the XML representation of a recovery policy.
	PolicyDoc = xmlrep.PolicyDoc
)

// Well-known sonames.
const (
	// Libc is the simulated C library every application links against.
	Libc = clib.LibcSoname
	// RobustnessWrapper is the generated robustness wrapper's soname.
	RobustnessWrapper = wrappers.RobustnessSoname
	// SecurityWrapper is the generated security wrapper's soname.
	SecurityWrapper = wrappers.SecuritySoname
	// ProfilingWrapper is the generated profiling wrapper's soname.
	ProfilingWrapper = wrappers.ProfilingSoname
	// ContainmentWrapper is the generated fault-containment wrapper's
	// soname.
	ContainmentWrapper = wrappers.ContainmentSoname
	// ChaosEnvVar arms chaos mode on a simulated process
	// ("RATE[:SEED]", e.g. "0.02:1234").
	ChaosEnvVar = proc.ChaosEnvVar
)

// DefaultPolicy returns the containment wrapper's default recovery
// policy: deny every contained failure, with the default circuit
// breaker.
func DefaultPolicy() *PolicyEngine { return wrappers.DefaultPolicy() }

// Sample application names installed by Toolkit.InstallSampleApps.
const (
	// Rootd is the vulnerable root daemon of the §3.4 demo.
	Rootd = victim.RootdName
	// Stackd is the stack-smashing counterpart of Rootd.
	Stackd = victim.StackdName
	// Textutil is the string-heavy text processor.
	Textutil = victim.TextutilName
	// Stress is the deterministic mixed libc workload.
	Stress = victim.StressName
	// StreamFlag switches Rootd/Stackd into streaming (request-loop)
	// mode for soak runs.
	StreamFlag = victim.RootdStreamFlag
)

// NewToolkit creates a toolkit over a fresh simulated system with the C
// library installed.
func NewToolkit() (*Toolkit, error) { return core.NewToolkit() }

// OpenCampaignCache loads (or initializes) the campaign cache at path;
// see inject.OpenCache for the discard-not-trust policy on corrupted or
// stale files. An empty path yields an in-memory cache.
func OpenCampaignCache(path string) (*CampaignCache, error) { return inject.OpenCache(path) }

// NewBaselineDoc renders a campaign report as the robustness baseline
// document the CI regression gate diffs against.
var NewBaselineDoc = core.NewBaselineDoc

// CompareToBaseline diffs a fresh campaign report against a baseline
// document, returning regressions and improvements separately.
var CompareToBaseline = core.CompareToBaseline

// ExploitPacket crafts the §3.4 heap-smash packet against Rootd.
func ExploitPacket() []byte { return victim.ExploitPacket() }

// BenignPacket crafts a well-formed Rootd request.
func BenignPacket(msg string) []byte { return victim.BenignPacket(msg) }

// Report rendering, re-exported from the core package.
var (
	// RenderProfile renders a profile as the ASCII analogue of Fig. 5.
	RenderProfile = core.RenderProfile
	// RenderCampaign renders a campaign as the robustness table.
	RenderCampaign = core.RenderCampaign
	// RenderHardening renders the before/after hardening comparison.
	RenderHardening = core.RenderHardening
	// RenderCampaignStats renders campaign throughput statistics.
	RenderCampaignStats = core.RenderCampaignStats
	// RenderAppScan renders the Fig. 4 application view.
	RenderAppScan = core.RenderAppScan
	// RenderHistograms renders a profile's per-function latency
	// histograms with p50/p90/p99/max derived from the log2 buckets.
	RenderHistograms = core.RenderHistograms
	// RenderTrace renders a profile's bounded call-trace ring.
	RenderTrace = core.RenderTrace
)
