module healers

go 1.24
