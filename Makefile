.PHONY: check build test bench docs verify-api ci ci-check ci-race ci-bench-smoke ci-docs

# Tier-1 gate: build + vet + full test suite under the race detector
# (scripts/check.sh also runs the docs checks, the robustness gate
# below, and the loopback smokes).
check:
	sh scripts/check.sh

# Robustness-regression gate: cache-accelerated campaign diffed against
# the checked-in robust-API baseline (testdata/robust_api_baseline.xml).
# Exits non-zero when a function's robustness regressed.
verify-api:
	sh scripts/verify-api.sh

# The CI matrix (.github/workflows/ci.yml) runs one ci-* target per job;
# `make ci` chains all four so CI is reproducible locally in one command.
ci: ci-check ci-race ci-bench-smoke ci-docs

# Build + vet + tests, the robustness gate, and both end-to-end smokes
# (distributed sweep and shared-registry warm sweep).
ci-check:
	go build ./...
	go vet ./...
	go test ./...
	sh scripts/verify-api.sh
	sh scripts/smoke-distributed.sh
	sh scripts/smoke-registry.sh

# Full suite under the race detector, plus the chaos-soak smoke: a
# bounded contained soak of the streaming rootd daemon that must
# survive with a nonzero recovery-policy hit count (its logs land in
# HEALERS_ARTIFACT_DIR on failure); bounded so a deadlocked test fails
# the job instead of hanging it.
ci-race:
	go test -race -timeout 10m ./...
	sh scripts/smoke-soak.sh

# One iteration of every benchmark proves the measured paths still run.
ci-bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x .

# Documentation hygiene as its own job: flag/README agreement, godoc
# coverage, comment placement (vet), and repo-wide gofmt.
ci-docs: docs
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi

# Documentation hygiene: flags and README.md must agree in both
# directions, the embedding API's exported surface must be godoc'd
# (audit script plus go vet, which also proofreads comment placement),
# and the examples must be gofmt-clean.
docs:
	sh scripts/check-docs.sh
	sh scripts/check-godoc.sh
	go vet ./internal/wrappers ./internal/collect
	@fmt=$$(gofmt -l examples); if [ -n "$$fmt" ]; then \
		echo "gofmt needed in examples:"; echo "$$fmt"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
