.PHONY: check build test bench docs verify-api ci

# Tier-1 gate: build + vet + full test suite under the race detector
# (scripts/check.sh also runs the docs checks and the robustness gate
# below).
check:
	sh scripts/check.sh

# Robustness-regression gate: cache-accelerated campaign diffed against
# the checked-in robust-API baseline (testdata/robust_api_baseline.xml).
# Exits non-zero when a function's robustness regressed.
verify-api:
	sh scripts/verify-api.sh

# Exactly what .github/workflows/ci.yml runs — reproduce CI locally with
# `make ci`: the tier-1 gate plus a one-iteration smoke of every
# benchmark.
ci: check
	go test -run '^$$' -bench . -benchtime=1x .

# Documentation hygiene: flags and README.md must agree in both
# directions, the embedding API's exported surface must be godoc'd
# (audit script plus go vet, which also proofreads comment placement),
# and the examples must be gofmt-clean.
docs:
	sh scripts/check-docs.sh
	sh scripts/check-godoc.sh
	go vet ./internal/wrappers ./internal/collect
	@fmt=$$(gofmt -l examples); if [ -n "$$fmt" ]; then \
		echo "gofmt needed in examples:"; echo "$$fmt"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
