.PHONY: check build test bench docs

# Tier-1 gate: build + vet + full test suite under the race detector
# (scripts/check.sh also runs the docs checks below).
check:
	sh scripts/check.sh

# Documentation hygiene: every flag named in README.md/CHANGES.md must
# exist in some cmd/* front end, and the examples must be gofmt-clean.
docs:
	sh scripts/check-docs.sh
	@fmt=$$(gofmt -l examples); if [ -n "$$fmt" ]; then \
		echo "gofmt needed in examples:"; echo "$$fmt"; exit 1; fi

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
