.PHONY: check build test bench

# Tier-1 gate: build + vet + full test suite under the race detector.
check:
	sh scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .
