#!/bin/sh
# Distributed-campaign smoke: run one sweep sequentially and once sharded
# across two real worker processes over the collect wire protocol, then
# require the two robust-API documents to be byte-identical (the fabric's
# core guarantee). The generated= timestamp attribute is the only field
# allowed to differ between the runs, so it is stripped before comparing.
set -eu

cd "$(dirname "$0")/.."

LIB=${1:-libm.so.6}
tmp=$(mktemp -d)

# On failure, copy the run's XML and logs where CI can upload them
# (HEALERS_ARTIFACT_DIR is set by the workflow; unset locally).
collect_artifacts() {
    [ -n "${HEALERS_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$HEALERS_ARTIFACT_DIR/smoke-distributed"
    cp "$tmp"/*.xml "$tmp"/*.log "$HEALERS_ARTIFACT_DIR/smoke-distributed/" 2>/dev/null || true
}
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        collect_artifacts
    fi
    rm -rf "$tmp"
    exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/healers-inject" ./cmd/healers-inject

strip_ts() {
    sed 's/ generated="[^"]*"//' "$1" > "$1.stripped"
}

"$tmp/healers-inject" -lib "$LIB" -xml > "$tmp/sequential.xml"

# Pick a loopback port; retry the whole coordinator launch on collision.
for attempt in 1 2 3; do
    port=$(( 20000 + ($$ + attempt * 131) % 20000 ))
    addr="127.0.0.1:$port"
    "$tmp/healers-inject" -lib "$LIB" -coordinator "$addr" -shards 3 -xml \
        > "$tmp/distributed.xml" 2> "$tmp/coordinator.log" &
    coord=$!
    # Wait for the listen line before spawning workers.
    ok=0
    for i in $(seq 1 50); do
        if grep -q "coordinator listening" "$tmp/coordinator.log" 2>/dev/null; then
            ok=1
            break
        fi
        if ! kill -0 "$coord" 2>/dev/null; then
            break # bind failed; try the next port
        fi
        sleep 0.1
    done
    [ "$ok" = 1 ] && break
    wait "$coord" 2>/dev/null || true
done
if [ "$ok" != 1 ]; then
    echo "smoke-distributed: coordinator never came up" >&2
    cat "$tmp/coordinator.log" >&2
    exit 1
fi

"$tmp/healers-inject" -lib "$LIB" -worker "$addr" 2> "$tmp/worker1.log" &
w1=$!
"$tmp/healers-inject" -lib "$LIB" -worker "$addr" 2> "$tmp/worker2.log" &
w2=$!

# A worker that arrives after the sweep completed exits nonzero on the
# dead port; the sweep's correctness is judged by the coordinator and
# the XML comparison, so only the coordinator's status is load-bearing.
wait "$w1" || true
wait "$w2" || true
wait "$coord"

strip_ts "$tmp/sequential.xml"
strip_ts "$tmp/distributed.xml"
if ! cmp -s "$tmp/sequential.xml.stripped" "$tmp/distributed.xml.stripped"; then
    echo "smoke-distributed: FAILED — distributed robust-API XML differs from sequential" >&2
    diff "$tmp/sequential.xml.stripped" "$tmp/distributed.xml.stripped" >&2 || true
    exit 1
fi
echo "smoke-distributed: ok (2-worker sweep of $LIB byte-identical to sequential)"
