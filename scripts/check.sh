#!/bin/sh
# Tier-1 gate: build everything, vet everything, and run the full test
# suite under the race detector. CI and pre-commit both call this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Documentation hygiene: flags and README must agree in both
# directions, the embedding API's exported surface must be godoc'd, and
# the whole repo must be gofmt-clean.
sh scripts/check-docs.sh
sh scripts/check-godoc.sh
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed:" >&2
    echo "$fmt" >&2
    exit 1
fi

# Robustness-regression gate: the derived robust API must not be weaker
# than the checked-in baseline (cache-accelerated, so a warm run costs
# milliseconds).
sh scripts/verify-api.sh

# Distributed-campaign smoke: a 2-worker loopback sweep must render
# byte-identical robust-API XML to a sequential run.
sh scripts/smoke-distributed.sh

# Shared-registry smoke: a sweep warmed from a collectd-hosted registry
# must probe nothing and render byte-identical robust-API XML to the
# cold run that populated it.
sh scripts/smoke-registry.sh

# Chaos-soak smoke: the contained rootd daemon must survive a bounded
# streaming soak under sustained fault injection with a nonzero
# recovery-policy hit count.
sh scripts/smoke-soak.sh

# Smoke-run the collect ingest benchmarks (upload path, bounded store,
# both aggregation paths, histogram merge), the chaos-survival and
# chaos-soak benchmarks (the containment wrapper keeping a
# chaos-stricken workload and a streaming daemon alive end to end), and
# the capture-contention benchmark (its post-run check asserts the
# sharded counters stayed exact under parallel load): one iteration
# each proves the paths still work.
go test -run '^$' -bench 'BenchmarkCollect|BenchmarkChaosSurvival|BenchmarkChaosSoak|BenchmarkCaptureContention' -benchtime=1x .
