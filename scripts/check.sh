#!/bin/sh
# Tier-1 gate: build everything, vet everything, and run the full test
# suite under the race detector. CI and pre-commit both call this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Documentation hygiene: documented flags must exist in cmd/*, and the
# examples must be gofmt-clean (same checks as `make docs`).
sh scripts/check-docs.sh
fmt=$(gofmt -l examples)
if [ -n "$fmt" ]; then
    echo "gofmt needed in examples:" >&2
    echo "$fmt" >&2
    exit 1
fi

# Smoke-run the collect ingest benchmarks: one iteration each proves the
# upload path, the bounded store, both aggregation paths, and the
# histogram-merge path (BenchmarkCollectHistMerge) still work.
go test -run '^$' -bench 'BenchmarkCollect' -benchtime=1x .
