#!/bin/sh
# Tier-1 gate: build everything, vet everything, and run the full test
# suite under the race detector. CI and pre-commit both call this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Smoke-run the collect ingest benchmarks: one iteration each proves the
# upload path, the bounded store, and both aggregation paths still work.
go test -run '^$' -bench 'BenchmarkCollect' -benchtime=1x .
