#!/bin/sh
# Tier-1 gate: build everything, vet everything, and run the full test
# suite under the race detector. CI and pre-commit both call this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
