#!/bin/sh
# Chaos-soak smoke: drive the rootd daemon in streaming mode under
# sustained chaos with the containment wrapper preloaded for a bounded
# wall-clock window, and require (a) the daemon to survive the whole
# soak and (b) a nonzero recovery-policy hit count — survival must be
# earned by containment, not by an idle injector.
set -eu

cd "$(dirname "$0")/.."

SOAK=${1:-3s}
tmp=$(mktemp -d)

# On failure, copy the soak logs where CI can upload them
# (HEALERS_ARTIFACT_DIR is set by the workflow; unset locally).
collect_artifacts() {
    [ -n "${HEALERS_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$HEALERS_ARTIFACT_DIR/smoke-soak"
    cp "$tmp"/*.log "$HEALERS_ARTIFACT_DIR/smoke-soak/" 2>/dev/null || true
}
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        collect_artifacts
    fi
    rm -rf "$tmp"
    exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/healers-attack" ./cmd/healers-attack

if ! "$tmp/healers-attack" -soak "$SOAK" > "$tmp/soak.log" 2> "$tmp/soak-stderr.log"; then
    echo "smoke-soak: FAILED — contained soak did not survive" >&2
    cat "$tmp/soak.log" "$tmp/soak-stderr.log" >&2
    exit 1
fi

if ! grep -q '^survived ' "$tmp/soak.log"; then
    echo "smoke-soak: FAILED — no survival line in the soak report" >&2
    cat "$tmp/soak.log" >&2
    exit 1
fi

# "faults: N libc calls, N injected, N contained (policy hit rate R), ..."
contained=$(sed -n 's/^faults:.* \([0-9][0-9]*\) contained .*/\1/p' "$tmp/soak.log")
if [ -z "$contained" ] || [ "$contained" -eq 0 ]; then
    echo "smoke-soak: FAILED — zero recovery-policy hits; survival proves nothing" >&2
    cat "$tmp/soak.log" >&2
    exit 1
fi

echo "smoke-soak: ok (rootd survived a $SOAK contained soak, $contained policy hits)"
