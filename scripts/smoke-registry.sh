#!/bin/sh
# Shared-registry smoke: start a collectd-hosted campaign-cache registry
# on a loopback port, run one cold sweep against it (probes everything,
# pushes every result), then run a second sweep from a fresh process —
# empty local cache, same registry — and require that the warm run was
# served entirely from the registry (zero misses in its summary line)
# and rendered byte-identical robust-API XML. The generated= timestamp
# attribute is the only field allowed to differ, so it is stripped
# before comparing.
set -eu

cd "$(dirname "$0")/.."

LIB=${1:-libm.so.6}
tmp=$(mktemp -d)

# On failure, copy the run's XML and logs where CI can upload them
# (HEALERS_ARTIFACT_DIR is set by the workflow; unset locally).
collect_artifacts() {
    [ -n "${HEALERS_ARTIFACT_DIR:-}" ] || return 0
    mkdir -p "$HEALERS_ARTIFACT_DIR/smoke-registry"
    cp "$tmp"/*.xml "$tmp"/*.log "$HEALERS_ARTIFACT_DIR/smoke-registry/" 2>/dev/null || true
}
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        collect_artifacts
    fi
    [ -n "${collectd:-}" ] && kill "$collectd" 2>/dev/null || true
    rm -rf "$tmp"
    exit "$status"
}
trap cleanup EXIT

go build -o "$tmp/healers-inject" ./cmd/healers-inject
go build -o "$tmp/healers-collectd" ./cmd/healers-collectd

strip_ts() {
    sed 's/ generated="[^"]*"//' "$1" > "$1.stripped"
}

# Registry server on an ephemeral port; parse the bound address from the
# listen line.
"$tmp/healers-collectd" -addr 127.0.0.1:0 -registry "$tmp/registry" \
    > "$tmp/collectd.log" 2>&1 &
collectd=$!
addr=
for i in $(seq 1 50); do
    addr=$(sed -n 's/^healers-collectd listening on //p' "$tmp/collectd.log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$collectd" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "smoke-registry: collectd never came up" >&2
    cat "$tmp/collectd.log" >&2
    exit 1
fi

# Cold sweep: empty registry, so every function probes locally and is
# pushed back before exit.
"$tmp/healers-inject" -lib "$LIB" -registry "$addr" -xml \
    > "$tmp/cold.xml" 2> "$tmp/cold.log"
if ! grep -q "registry $addr: .* 0 dropped" "$tmp/cold.log"; then
    echo "smoke-registry: cold sweep dropped registry pushes" >&2
    cat "$tmp/cold.log" >&2
    exit 1
fi

# Warm sweep: a fresh process has an empty local cache, so every hit in
# its summary came over the wire. Zero misses (and zero corrupt entries)
# means the whole plan was served from the registry — no probes ran.
"$tmp/healers-inject" -lib "$LIB" -registry "$addr" -xml \
    > "$tmp/warm.xml" 2> "$tmp/warm.log"
if ! grep -Eq "registry $addr: [1-9][0-9]* hit\(s\), 0 miss\(es\), 0 corrupt" "$tmp/warm.log"; then
    echo "smoke-registry: warm sweep was not served entirely from the registry" >&2
    cat "$tmp/warm.log" >&2
    exit 1
fi

strip_ts "$tmp/cold.xml"
strip_ts "$tmp/warm.xml"
if ! cmp -s "$tmp/cold.xml.stripped" "$tmp/warm.xml.stripped"; then
    echo "smoke-registry: FAILED — registry-warmed robust-API XML differs from cold" >&2
    diff "$tmp/cold.xml.stripped" "$tmp/warm.xml.stripped" >&2 || true
    exit 1
fi
echo "smoke-registry: ok (warm sweep of $LIB served from registry, byte-identical XML)"
