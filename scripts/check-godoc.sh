#!/bin/sh
# Godoc coverage audit for the packages whose exported surface is the
# toolkit's embedding API: every exported top-level identifier (func,
# method, type, and exported names in var/const blocks) in the listed
# packages must carry a doc comment. Runs as part of `make docs`.
set -eu

cd "$(dirname "$0")/.."

packages="internal/wrappers internal/collect"

status=0
for pkg in $packages; do
    for f in "$pkg"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        out=$(awk '
            # A doc comment is a // line (or the tail of a /* block)
            # immediately above the declaration.
            /^[ \t]*\/\// { commented = 1; next }
            /\*\/[ \t]*$/ { commented = 1; next }
            /^func (\([A-Za-z_]+ \*?[A-Za-z_]+\) )?[A-Z]/ ||
            /^type [A-Z]/ ||
            /^(var|const) [A-Z]/ {
                if (!commented) printf "%d: %s\n", NR, $0
                commented = 0; next
            }
            # Exported names declared inside var/const blocks.
            /^(var|const) \($/ { if (!commented) inblock = 1; commented = 0; next }
            inblock && /^\)/ { inblock = 0; next }
            inblock && /^\t[A-Z][A-Za-z0-9_]*( |,|=)/ {
                if (!commented) printf "%d: %s\n", NR, $0
                commented = 0; next
            }
            { commented = 0 }
        ' "$f")
        if [ -n "$out" ]; then
            printf '%s\n' "$out" | while IFS= read -r line; do
                echo "check-godoc: $f:$line  (missing doc comment)" >&2
            done
            status=1
        fi
    done
done

if [ "$status" -ne 0 ]; then
    echo "check-godoc: FAILED (exported identifiers lack doc comments)" >&2
else
    echo "check-godoc: ok ($packages)"
fi
exit $status
