#!/bin/sh
# Robustness-regression gate: derive the robust API fresh (accelerated by
# the campaign cache under .cache/) and diff it against the checked-in
# baseline. Exit 3 means a function's weakest robust type got weaker or
# gained a crash failure; regenerate the baseline deliberately with
#   go run ./cmd/healers-inject -write-baseline testdata/robust_api_baseline.xml
# only when the change is intended.
set -eu

cd "$(dirname "$0")/.."

mkdir -p .cache
go run ./cmd/healers-inject -j 0 \
    -cache .cache/campaign-cache.xml \
    -verify-baseline testdata/robust_api_baseline.xml
