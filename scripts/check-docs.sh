#!/bin/sh
# Flag-vs-docs drift check, both directions:
#  - forward: every command-line flag named in README.md or CHANGES.md
#    must have a matching flag definition (flag.String/Bool/Int/IntVar/
#    ...) in some cmd/* front end;
#  - reverse: every flag a front end defines must be named somewhere in
#    README.md, so a new flag cannot ship undocumented.
# Drift in either direction fails `make docs` (and thus `make check`).
set -eu

cd "$(dirname "$0")/.."

# Flags actually defined by the front ends. Handles both the value form
# (flag.String("name", ...)) and the Var form (flag.StringVar(&x, "name",
# ...)): the first quoted token of the call is the flag name either way.
defined=$(sed -nE 's/.*flag\.[A-Za-z0-9]+\((&[A-Za-z0-9_.]+, *)?"([a-z][a-z0-9-]*)".*/\2/p' cmd/*/main.go | sort -u)

# Flags the go tool itself owns; documented in test/bench instructions.
allowlist="bench benchmem benchtime race run v cover"

# Flags named in the docs:
#  (a) fully backticked: `-flag` (the closing backtick requirement keeps
#      constructs like `LD_PRELOAD`-style from matching);
#  (b) on any line mentioning a healers- tool, tokens preceded by a space
#      or a slash: `healers-inject -j/-stats/-progress`.
documented=$(
    {
        grep -hoE '`-[a-z][a-z0-9-]*`' README.md CHANGES.md | tr -d '`'
        grep -hE 'healers-' README.md CHANGES.md |
            grep -hoE '[ /]-[a-z][a-z0-9-]*' | sed 's|^[ /]-||; s|^|-|'
    } | sed 's/^-//' | sort -u
)

status=0
for f in $documented; do
    case " $allowlist " in *" $f "*) continue ;; esac
    if ! printf '%s\n' "$defined" | grep -qx "$f"; then
        echo "check-docs: documented flag -$f has no flag definition in cmd/*" >&2
        status=1
    fi
done

# Reverse direction: the README (the user-facing reference, unlike the
# append-only CHANGES.md) must name every defined flag.
readme_documented=$(
    {
        grep -hoE '`-[a-z][a-z0-9-]*`' README.md | tr -d '`'
        grep -hE 'healers-' README.md |
            grep -hoE '[ /]-[a-z][a-z0-9-]*' | sed 's|^[ /]-||; s|^|-|'
    } | sed 's/^-//' | sort -u
)
for f in $defined; do
    if ! printf '%s\n' "$readme_documented" | grep -qx "$f"; then
        echo "check-docs: defined flag -$f is not documented in README.md" >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check-docs: FAILED (flag/docs drift)" >&2
else
    echo "check-docs: ok ($(printf '%s\n' "$documented" | wc -l | tr -d ' ') documented flags verified, $(printf '%s\n' "$defined" | wc -l | tr -d ' ') defined flags covered)"
fi
exit $status
