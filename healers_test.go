package healers

import (
	"strings"
	"testing"
)

// TestPublicAPIPipeline drives the exported API exactly as the README's
// quickstart describes it.
func TestPublicAPIPipeline(t *testing.T) {
	tk, err := NewToolkit()
	if err != nil {
		t.Fatalf("NewToolkit: %v", err)
	}
	if err := tk.InstallSampleApps(); err != nil {
		t.Fatalf("InstallSampleApps: %v", err)
	}

	scan, err := tk.ScanLibrary(Libc)
	if err != nil {
		t.Fatalf("ScanLibrary: %v", err)
	}
	if len(scan.Functions) < 60 {
		t.Errorf("libc exports %d functions", len(scan.Functions))
	}

	appScan, err := tk.ScanApplication(Rootd)
	if err != nil {
		t.Fatalf("ScanApplication: %v", err)
	}
	if !strings.Contains(RenderAppScan(appScan), "memcpy") {
		t.Error("app scan missing memcpy")
	}

	if _, err := tk.GenerateSecurityWrapper(Libc, nil); err != nil {
		t.Fatalf("GenerateSecurityWrapper: %v", err)
	}

	res, err := tk.Run(Rootd, nil, string(ExploitPacket()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashed() {
		t.Fatalf("undefended exploit crashed: %v", res)
	}
	res, err = tk.Run(Rootd, []string{SecurityWrapper}, string(ExploitPacket()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed() {
		t.Fatal("security wrapper did not stop the exploit")
	}

	rr, err := tk.RunProfiled(Textutil, "public api words\n")
	if err != nil {
		t.Fatalf("RunProfiled: %v", err)
	}
	if rr.Profile.TotalCalls() == 0 {
		t.Error("empty profile")
	}
	if !strings.Contains(RenderProfile(rr.Profile), "call frequency") {
		t.Error("profile report malformed")
	}
}

func TestPacketHelpers(t *testing.T) {
	if len(ExploitPacket()) <= 64 {
		t.Error("exploit packet too short to overflow")
	}
	if got := BenignPacket("hi"); string(got) != "hi\x00" {
		t.Errorf("BenignPacket = %q", got)
	}
}
