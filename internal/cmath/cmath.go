// Package cmath implements the simulated math library "libm.so.6": a
// second shared object in the system, so the toolkit's scans enumerate
// more than one library (demo §3.1) and the fault-injection campaign has
// a contrast class — math functions take scalar doubles, signal domain
// errors through errno (EDOM/ERANGE) instead of crashing, and therefore
// derive the weakest possible robust types.
//
// Doubles travel through cval.Value as IEEE-754 bit patterns, the same
// convention the printf %f verb uses.
package cmath

import (
	"fmt"
	"math"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// Soname is the simulated math library's name.
const Soname = "libm.so.6"

// header declares the implemented functions.
const header = `
/* math.h — simulated math library */
double sqrt(double x);
double pow(double x, double y);
double log(double x);
double exp(double x);
double sin(double x);
double cos(double x);
double floor(double x);
double ceil(double x);
double fabs(double x);
double fmod(double x, double y);
double atan2(double y, double x);
int isnan_d(double x);
`

// Header returns the math library's header text (for scan tooling).
func Header() string { return header }

// d wraps a float64 into a Value.
func d(v float64) cval.Value { return cval.Uint(math.Float64bits(v)) }

// f unwraps argument i as a float64.
func f(args []cval.Value, i int) float64 {
	if i >= len(args) {
		return 0
	}
	return math.Float64frombits(uint64(args[i]))
}

// unary adapts a float function, setting EDOM when dom reports a domain
// violation (NaN results from bad inputs, like C's math library).
func unary(fn func(float64) float64, dom func(float64) bool) cval.CFunc {
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		x := f(args, 0)
		if dom != nil && dom(x) {
			env.Errno = cval.EDOM
			return d(math.NaN()), nil
		}
		return d(fn(x)), nil
	}
}

// AsLibrary builds the installable libm.so.6.
func AsLibrary() (*simelf.Library, error) {
	protos, errs := cheader.ParseHeader("math.h", header)
	if len(errs) > 0 {
		return nil, fmt.Errorf("cmath: parsing math.h: %v", errs[0])
	}
	impls := map[string]cval.CFunc{
		"sqrt": unary(math.Sqrt, func(x float64) bool { return x < 0 }),
		"log":  unary(math.Log, func(x float64) bool { return x <= 0 }),
		"exp": func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			x := f(args, 0)
			r := math.Exp(x)
			if math.IsInf(r, 0) {
				env.Errno = cval.ERANGE
			}
			return d(r), nil
		},
		"sin":   unary(math.Sin, nil),
		"cos":   unary(math.Cos, nil),
		"floor": unary(math.Floor, nil),
		"ceil":  unary(math.Ceil, nil),
		"fabs":  unary(math.Abs, nil),
		"pow": func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			x, y := f(args, 0), f(args, 1)
			if x < 0 && y != math.Trunc(y) {
				env.Errno = cval.EDOM
				return d(math.NaN()), nil
			}
			r := math.Pow(x, y)
			if math.IsInf(r, 0) && !math.IsInf(x, 0) && !math.IsInf(y, 0) {
				env.Errno = cval.ERANGE
			}
			return d(r), nil
		},
		"fmod": func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			x, y := f(args, 0), f(args, 1)
			if y == 0 {
				env.Errno = cval.EDOM
				return d(math.NaN()), nil
			}
			return d(math.Mod(x, y)), nil
		},
		"atan2": func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			return d(math.Atan2(f(args, 0), f(args, 1))), nil
		},
		"isnan_d": func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			return cval.Bool(math.IsNaN(f(args, 0))), nil
		},
	}
	lib := simelf.NewLibrary(Soname)
	for _, p := range protos {
		fn, ok := impls[p.Name]
		if !ok {
			return nil, fmt.Errorf("cmath: %s declared but not implemented", p.Name)
		}
		lib.ExportWithProto(p, fn)
		delete(impls, p.Name)
	}
	if len(impls) != 0 {
		return nil, fmt.Errorf("cmath: %d implementations lack declarations", len(impls))
	}
	return lib, nil
}

// Bits converts a float64 to its Value representation (for callers
// constructing math arguments).
func Bits(v float64) cval.Value { return d(v) }

// Float converts a returned Value back to float64.
func Float(v cval.Value) float64 { return math.Float64frombits(uint64(v)) }
