package cmath

import (
	"math"
	"testing"

	"healers/internal/cval"
	"healers/internal/inject"
	"healers/internal/simelf"
)

func newLibm(t *testing.T) *simelf.Library {
	t.Helper()
	lib, err := AsLibrary()
	if err != nil {
		t.Fatalf("AsLibrary: %v", err)
	}
	return lib
}

func callM(t *testing.T, lib *simelf.Library, env *cval.Env, name string, args ...cval.Value) cval.Value {
	t.Helper()
	fn, ok := lib.Lookup(name)
	if !ok {
		t.Fatalf("no %s in libm", name)
	}
	v, f := fn(env, args)
	if f != nil {
		t.Fatalf("%s faulted: %v", name, f)
	}
	return v
}

func TestMathFunctions(t *testing.T) {
	lib := newLibm(t)
	env := cval.NewEnv()
	tests := []struct {
		name string
		args []cval.Value
		want float64
	}{
		{"sqrt", []cval.Value{Bits(9)}, 3},
		{"pow", []cval.Value{Bits(2), Bits(10)}, 1024},
		{"log", []cval.Value{Bits(math.E)}, 1},
		{"exp", []cval.Value{Bits(0)}, 1},
		{"sin", []cval.Value{Bits(0)}, 0},
		{"cos", []cval.Value{Bits(0)}, 1},
		{"floor", []cval.Value{Bits(2.7)}, 2},
		{"ceil", []cval.Value{Bits(2.1)}, 3},
		{"fabs", []cval.Value{Bits(-5.5)}, 5.5},
		{"fmod", []cval.Value{Bits(7), Bits(3)}, 1},
		{"atan2", []cval.Value{Bits(0), Bits(1)}, 0},
	}
	for _, tt := range tests {
		got := Float(callM(t, lib, env, tt.name, tt.args...))
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s = %g, want %g", tt.name, got, tt.want)
		}
	}
}

func TestMathDomainErrors(t *testing.T) {
	lib := newLibm(t)
	tests := []struct {
		name      string
		args      []cval.Value
		wantErrno int32
	}{
		{"sqrt", []cval.Value{Bits(-1)}, cval.EDOM},
		{"log", []cval.Value{Bits(0)}, cval.EDOM},
		{"log", []cval.Value{Bits(-3)}, cval.EDOM},
		{"pow", []cval.Value{Bits(-2), Bits(0.5)}, cval.EDOM},
		{"pow", []cval.Value{Bits(10), Bits(1000)}, cval.ERANGE},
		{"exp", []cval.Value{Bits(10000)}, cval.ERANGE},
		{"fmod", []cval.Value{Bits(1), Bits(0)}, cval.EDOM},
	}
	for _, tt := range tests {
		env := cval.NewEnv()
		v := callM(t, lib, env, tt.name, tt.args...)
		if env.Errno != tt.wantErrno {
			t.Errorf("%s: errno = %d, want %d", tt.name, env.Errno, tt.wantErrno)
		}
		if tt.wantErrno == cval.EDOM {
			nan := callM(t, lib, env, "isnan_d", v)
			if nan == 0 {
				t.Errorf("%s domain error did not return NaN", tt.name)
			}
		}
	}
}

// TestLibmCampaignIsGraceful is the contrast class for the robustness
// experiment: a library of scalar functions that signal errors through
// errno has zero crash failures under fault injection — the well-behaved
// end of the Ballista spectrum.
func TestLibmCampaignIsGraceful(t *testing.T) {
	sys := simelf.NewSystem()
	lib := newLibm(t)
	if err := sys.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	c, err := inject.New(sys, Soname)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatalf("RunLibrary: %v", err)
	}
	if lr.TotalFailures != 0 {
		t.Errorf("libm campaign found %d failures; scalar math must be graceful", lr.TotalFailures)
	}
	if lr.TotalProbes == 0 || len(lr.Funcs) != 12 {
		t.Errorf("campaign shape: %d probes over %d functions", lr.TotalProbes, len(lr.Funcs))
	}
	for _, fr := range lr.Funcs {
		for _, v := range fr.Verdicts {
			if v.LevelName != "any" {
				t.Errorf("%s param %s derived %q, want any", fr.Name, v.Name, v.LevelName)
			}
		}
	}
}
