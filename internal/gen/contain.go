package gen

import (
	"fmt"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// Fault containment: the self-healing layer of the containment wrapper.
//
// The micro-generators so far either observe a call (profiling) or veto
// it before it runs (robustness/security checks). Containment handles
// the remaining case: the original function was invoked and *faulted* —
// wild pointer, abort, allocation failure, or a hang burning through its
// access budget. MGContain snapshots the process's writable memory in
// the Space's write journal before the call, catches the fault via
// CallCtx.Contain, rolls partial writes back, and virtualizes the
// failure into an errno return chosen per failure class, so the process
// observes a failed library call instead of dying. MGWatchdog bounds
// each call's memory-access budget with the same fuel machinery the
// fault-injection campaign uses per probe, converting runaway loops
// into catchable hang faults.

// ---------------------------------------------------------------------
// failure classes

// FailureClass groups fault kinds into the categories the recovery
// policy distinguishes.
type FailureClass int

const (
	// ClassCrash covers wild memory accesses (SEGV, bus error,
	// protection violations).
	ClassCrash FailureClass = iota
	// ClassHang covers access-budget exhaustion (runaway loops).
	ClassHang
	// ClassAbort covers assertion-style terminations and FPEs.
	ClassAbort
	// ClassOOM covers allocation failure surfaced as a fault.
	ClassOOM
)

var failureClassNames = [...]string{"crash", "hang", "abort", "oom"}

// NumFailureClasses is the number of failure classes, for sizing
// per-class counter arrays (ClassCrash..ClassOOM are contiguous from 0).
const NumFailureClasses = len(failureClassNames)

func (c FailureClass) String() string {
	if c < 0 || int(c) >= len(failureClassNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return failureClassNames[c]
}

// ClassifyFault maps a fault kind to its failure class. Overflow is
// grouped with crashes: both are wild writes the wrapper contained.
func ClassifyFault(f *cmem.Fault) FailureClass {
	switch f.Kind {
	case cmem.FaultHang:
		return ClassHang
	case cmem.FaultAbort, cmem.FaultFPE:
		return ClassAbort
	case cmem.FaultOOM:
		return ClassOOM
	default:
		return ClassCrash
	}
}

// ContainErrno is the errno a virtualized failure of the given class
// reports: EINTR for interrupted (hung) calls, EFAULT for bad memory
// accesses, EINVAL for the rest.
func ContainErrno(c FailureClass) int32 {
	switch c {
	case ClassHang:
		return cval.EINTR
	case ClassCrash:
		return cval.EFAULT
	default:
		return cval.EINVAL
	}
}

// ---------------------------------------------------------------------
// recovery policy

// ContainAction is what the recovery policy does with a contained fault.
type ContainAction int

const (
	// ActionDeny virtualizes the fault into an errno return (the
	// default).
	ActionDeny ContainAction = iota
	// ActionRetry re-invokes the original function up to Retries times
	// (with a simulated backoff) before falling back to deny.
	ActionRetry
	// ActionSubstitute returns a bounded safe default value without
	// setting the failure errno — for functions whose callers treat any
	// return as valid (rand, isalpha).
	ActionSubstitute
	// ActionEscalate re-raises the fault: the policy judges the failure
	// unsafe to virtualize and lets the process die.
	ActionEscalate
)

var containActionNames = [...]string{"deny", "retry", "substitute", "escalate"}

func (a ContainAction) String() string {
	if a < 0 || int(a) >= len(containActionNames) {
		return fmt.Sprintf("action(%d)", int(a))
	}
	return containActionNames[a]
}

// ContainActionByName maps a policy-document action name back to the
// enum; ok is false for an unknown name.
func ContainActionByName(name string) (ContainAction, bool) {
	for i, n := range containActionNames {
		if n == name {
			return ContainAction(i), true
		}
	}
	return 0, false
}

// ContainDecision is one recovery ruling: the action plus its
// parameters.
type ContainDecision struct {
	Action ContainAction
	// Retries bounds re-invocations for ActionRetry.
	Retries int
	// Backoff is the simulated delay between retries (recorded, not
	// slept: the simulation has no wall-clock to waste).
	Backoff time.Duration
	// Substitute is the value ActionSubstitute returns; nil means the
	// prototype's deny value (NULL / -1).
	Substitute *cval.Value
}

// ContainPolicy decides how a contained failure is recovered. The
// interface lives in gen so the containment micro-generator can consult
// it without gen importing the policy-engine package above it; the
// wrappers layer supplies the implementation (PolicyEngine).
type ContainPolicy interface {
	// Decide maps (function, failure class) to a recovery ruling.
	Decide(fn string, class FailureClass) ContainDecision
	// RecordFailure notes one contained failure of fn and reports
	// whether it tripped the function's circuit breaker (the trip
	// transition only — subsequent failures of a tripped function
	// return false).
	RecordFailure(fn string, class FailureClass) bool
	// Tripped reports whether fn's circuit breaker is open, in which
	// case the wrapper denies the call up front instead of risking the
	// brittle implementation again.
	Tripped(fn string) bool
}

// ---------------------------------------------------------------------
// containment micro-generator

type containGen struct {
	policy ContainPolicy
}

// MGContain builds the fault-containment micro-generator. Place it
// last before MGCaller so its postfix runs first and consumes the
// caught fault before observers see the call. policy may be nil: every
// failure is then virtualized as a plain deny with the class errno.
func MGContain(policy ContainPolicy) MicroGenerator { return &containGen{policy: policy} }

func (*containGen) Name() string { return "contain" }

func (*containGen) PrefixSource(proto *ctypes.Prototype) []string {
	return []string{
		fmt.Sprintf("    if (healers_breaker_open(%s)) {", fnIndexMacro(proto)),
		"        errno = EHEALERS_DENIED;",
		"        return HEALERS_ERRVAL;",
		"    }",
		"    healers_journal_begin();",
		"    if (sigsetjmp(healers_contain_jmp, 1) != 0)",
		"        goto contained;  /* fault caught by signal handler */",
	}
}

func (g *containGen) PostfixSource(proto *ctypes.Prototype) []string {
	return []string{
		"    healers_journal_commit();",
		"    goto done;",
		"contained:",
		"    healers_journal_rollback();",
		fmt.Sprintf("    switch (healers_recover(%s, healers_fault_class())) {", fnIndexMacro(proto)),
		"    case HEALERS_RETRY:   goto retry;",
		"    case HEALERS_ESCALATE: healers_reraise();",
		"    default:",
		"        errno = healers_fault_errno();",
		"        ret = HEALERS_ERRVAL;",
		"    }",
		"done:",
	}
}

func (g *containGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if ctx.Denied {
			return nil
		}
		// Circuit breaker: a function that failed too often is denied
		// up front — self-healing by not poking the wound.
		if g.policy != nil && g.policy.Tripped(ctx.Proto.Name) {
			ctx.Denied = true
			ctx.DenyReason = ctx.Proto.Name + ": circuit breaker open"
			ctx.Env.Errno = cval.EDenied
			ctx.Ret = denyValue(ctx.Proto)
			st.NoteDeny(ctx.Env, ctx.FuncIndex, ctx.DenyReason)
			return nil
		}
		ctx.Contain = true
		ctx.containArmed = true
		ctx.Env.Img.Space.BeginJournal()
		return nil
	}
}

func (g *containGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if !ctx.containArmed {
			return nil
		}
		ctx.containArmed = false
		sp := ctx.Env.Img.Space
		if ctx.ContainedFault == nil {
			sp.CommitJournal()
			return nil
		}
		fault := ctx.ContainedFault
		ctx.ContainedFault = nil
		sp.RollbackJournal()
		class := ClassifyFault(fault)

		decision := ContainDecision{Action: ActionDeny}
		if g.policy != nil {
			decision = g.policy.Decide(ctx.Proto.Name, class)
		}

		if decision.Action == ActionRetry && ctx.invoke != nil {
			for attempt := 0; attempt < decision.Retries; attempt++ {
				st.noteRetry(ctx.Env, ctx.FuncIndex)
				sp.BeginJournal()
				ret, f := ctx.invoke()
				if f == nil {
					sp.CommitJournal()
					ctx.Ret = ret
					return nil
				}
				sp.RollbackJournal()
				fault, class = f, ClassifyFault(f)
			}
			decision.Action = ActionDeny
		}

		if decision.Action == ActionEscalate {
			// The policy refuses to virtualize this failure; the
			// generator's unconsumed-fault path re-raises it.
			ctx.ContainedFault = fault
			ctx.escalated = true
			return nil
		}

		st.noteContained(ctx.Env, ctx.FuncIndex, class)
		if g.policy != nil && g.policy.RecordFailure(ctx.Proto.Name, class) {
			st.noteBreakerTrip(ctx.Env, ctx.FuncIndex)
		}
		ctx.Denied = true
		ctx.DenyReason = fmt.Sprintf("%s: contained %s (%s)", ctx.Proto.Name, class, fault.Kind)
		st.NoteDeny(ctx.Env, ctx.FuncIndex, ctx.DenyReason)
		if decision.Action == ActionSubstitute && decision.Substitute != nil {
			ctx.Ret = *decision.Substitute
			return nil
		}
		ctx.Env.Errno = ContainErrno(class)
		ctx.Ret = denyValue(ctx.Proto)
		return nil
	}
}

// ---------------------------------------------------------------------
// watchdog micro-generator

type watchdogGen struct {
	budget int64
}

// DefaultWatchdogBudget is the per-call access budget the containment
// wrapper installs — generous enough for any legitimate libc call in
// the simulation, small enough to trip a runaway loop quickly. The
// fault-injection campaign's per-probe budget (64Mi accesses) bounds a
// whole probe; a single call gets a fraction of that.
const DefaultWatchdogBudget = 1 << 20

// MGWatchdog bounds one call's memory accesses using the Space fuel
// budget (the injector's hang detector, here per call instead of per
// probe). An exhausted budget raises FaultHang, which the containment
// postfix virtualizes into EINTR; without MGContain the watchdog's own
// postfix consumes hang faults so the micro-generator is independently
// useful. budget <= 0 selects DefaultWatchdogBudget.
func MGWatchdog(budget int64) MicroGenerator {
	if budget <= 0 {
		budget = DefaultWatchdogBudget
	}
	return &watchdogGen{budget: budget}
}

func (*watchdogGen) Name() string { return "watchdog" }

func (g *watchdogGen) PrefixSource(proto *ctypes.Prototype) []string {
	return []string{fmt.Sprintf("    healers_fuel_push(%d);  /* per-call access budget */", g.budget)}
}

func (*watchdogGen) PostfixSource(proto *ctypes.Prototype) []string {
	return []string{"    healers_fuel_pop();"}
}

// watchdogFrame saves one watchdog micro-generator's view of the outer
// fuel budget across a call. Every watchdog prefix pushes exactly one
// frame (armed or not) and every watchdog postfix pops exactly one, so
// nested watchdogs restore LIFO: the inner pop charges the inner
// budget's usage against the outer budget, and the outer pop charges
// that in turn against its own saved budget.
type watchdogFrame struct {
	prev   int64
	budget int64
	armed  bool
}

func (g *watchdogGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		fr := watchdogFrame{}
		if !ctx.Denied {
			sp := ctx.Env.Img.Space
			prev := sp.Fuel()
			// Under an injector-armed outer budget, the call gets the
			// smaller of the two — the watchdog must not extend a
			// probe's deadline.
			if prev < 0 || prev > g.budget {
				fr = watchdogFrame{prev: prev, budget: g.budget, armed: true}
				sp.SetFuel(g.budget)
			}
			ctx.Contain = true
		}
		ctx.watchdogStack = append(ctx.watchdogStack, fr)
		return nil
	}
}

func (g *watchdogGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if n := len(ctx.watchdogStack); n > 0 {
			fr := ctx.watchdogStack[n-1]
			ctx.watchdogStack = ctx.watchdogStack[:n-1]
			if fr.armed {
				sp := ctx.Env.Img.Space
				used := fr.budget - sp.Fuel()
				if sp.Fuel() < 0 {
					// The call exhausted its budget and the hang fault
					// left fuel disarmed: charge the full budget.
					used = fr.budget
				}
				switch {
				case fr.prev < 0:
					sp.SetFuel(-1)
				case fr.prev > used:
					sp.SetFuel(fr.prev - used)
				default:
					sp.SetFuel(0)
				}
			}
		}
		// Consume a hang fault when no containment micro-generator ran
		// before us (composition without MGContain).
		if f := ctx.ContainedFault; f != nil && !ctx.escalated && ClassifyFault(f) == ClassHang {
			ctx.ContainedFault = nil
			st.noteContained(ctx.Env, ctx.FuncIndex, ClassHang)
			ctx.Denied = true
			ctx.DenyReason = fmt.Sprintf("%s: watchdog budget exhausted", ctx.Proto.Name)
			st.NoteDeny(ctx.Env, ctx.FuncIndex, ctx.DenyReason)
			ctx.Env.Errno = cval.EINTR
			ctx.Ret = denyValue(ctx.Proto)
		}
		return nil
	}
}
