package gen

import (
	"strings"
	"testing"

	"healers/internal/cheader"
	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/simelf"
)

func wctransProto(t *testing.T) *ctypes.Prototype {
	t.Helper()
	p, err := cheader.ParsePrototype("wctrans_t wctrans(const char *name); // @name in_str")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// profilingGen mirrors wrappers.ProfilingGenerator locally to keep the
// package test self-contained.
func profilingGen() *Generator {
	return MustGenerator(
		MGPrototype(), MGExectime(), MGCollectErrors(), MGFuncErrors(), MGCallCounter(), MGCaller(),
	)
}

// TestFigure3Source pins the generated wctrans wrapper against the
// paper's Figure 3: same micro-generators, same fragment order, same
// structural elements.
func TestFigure3Source(t *testing.T) {
	src := profilingGen().Source(wctransProto(t))

	wantInOrder := []string{
		"/* Prefix code by micro-gen prototype */",
		"wctrans_t wctrans(const char* a1)",
		"wctrans_t ret;",
		"/* Prefix code by micro-gen function exectime */",
		"rdtsc(exectime_start);",
		"/* Prefix code by micro-gen collect errors */",
		"int collect_errors_err = errno;",
		"/* Prefix code by micro-gen func errors */",
		"int func_error_err = errno;",
		"/* Prefix code by micro-gen call counter */",
		"++call_counter_num_calls[NO_WCTRANS];",
		"/* Postfix code by micro-gen caller */",
		"ret = (*addr_wctrans)(a1);",
		"/* Postfix code by micro-gen func errors */",
		"++func_error_cnter[NO_WCTRANS][MAX_ERRNO];",
		"/* Postfix code by micro-gen collect errors */",
		"++collect_errors_cnter[MAX_ERRNO];",
		"/* Postfix code by micro-gen function exectime */",
		"exectime[NO_WCTRANS] += exectime_end - exectime_start;",
		"/* Postfix code by micro-gen prototype */",
		"return ret;",
	}
	pos := 0
	for _, want := range wantInOrder {
		i := strings.Index(src[pos:], want)
		if i < 0 {
			t.Fatalf("generated source missing (or out of order): %q\n--- got ---\n%s", want, src)
		}
		pos += i + len(want)
	}
}

func TestSourceVoidReturn(t *testing.T) {
	p, err := cheader.ParsePrototype("void free(void *ptr); // @ptr heap_ptr")
	if err != nil {
		t.Fatal(err)
	}
	src := profilingGen().Source(p)
	if strings.Contains(src, "ret =") {
		t.Error("void wrapper assigns to ret")
	}
	if !strings.Contains(src, "(*addr_free)(a1);") {
		t.Error("void wrapper missing call")
	}
	if !strings.Contains(src, "return;") {
		t.Error("void wrapper missing bare return")
	}
}

func TestSourceVariadic(t *testing.T) {
	p, err := cheader.ParsePrototype("int printf(const char *format, ...); // @format fmt")
	if err != nil {
		t.Fatal(err)
	}
	src := profilingGen().Source(p)
	if !strings.Contains(src, "int printf(const char* a1, ...)") {
		t.Errorf("variadic signature wrong:\n%s", src)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(MGPrototype()); err == nil {
		t.Error("generator without caller accepted")
	}
	if _, err := NewGenerator(MGPrototype(), MGCaller(), MGCaller()); err == nil {
		t.Error("generator with two callers accepted")
	}
	if _, err := NewGenerator(MGPrototype(), MGCaller()); err != nil {
		t.Errorf("minimal generator rejected: %v", err)
	}
}

// wrapLibc builds a profiling wrapper over the real simulated libc and
// loads app->wrapper->libc, returning a resolver.
func wrapLibc(t *testing.T, g *Generator, st *State, fns ...string) (*cval.Env, func(string, ...cval.Value) (cval.Value, *cmem.Fault)) {
	t.Helper()
	reg := clib.MustRegistry()
	libc := reg.AsLibrary()
	var protos []*ctypes.Prototype
	for _, fn := range fns {
		p := libc.Proto(fn)
		if p == nil {
			t.Fatalf("no proto for %s", fn)
		}
		protos = append(protos, p)
	}
	wrapper := g.BuildLibrary("libwrap.so", protos, st)

	sys := simelf.NewSystem()
	if err := sys.AddLibrary(libc); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	app := &simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}
	if err := sys.AddExecutable(app); err != nil {
		t.Fatal(err)
	}
	lm, err := dynlink.Load(sys, "app", []string{"libwrap.so"})
	if err != nil {
		t.Fatal(err)
	}
	env := cval.NewEnv()
	return env, func(name string, args ...cval.Value) (cval.Value, *cmem.Fault) {
		fn, ok := lm.Resolve(name)
		if !ok {
			t.Fatalf("resolve %s failed", name)
		}
		return fn(env, args)
	}
}

func TestProfilingHooksCollect(t *testing.T) {
	st := NewState("libwrap.so")
	env, call := wrapLibc(t, profilingGen(), st, "strlen", "wctrans")

	s, _ := env.Img.StaticString("hello")
	for i := 0; i < 3; i++ {
		v, f := call("strlen", cval.Ptr(s))
		if f != nil || v.Uint32() != 5 {
			t.Fatalf("wrapped strlen = %v, %v", v, f)
		}
	}
	bogus, _ := env.Img.StaticString("bogus")
	if _, f := call("wctrans", cval.Ptr(bogus)); f != nil {
		t.Fatalf("wrapped wctrans: %v", f)
	}

	st.Sync()
	idx := st.Index("strlen")
	if st.CallCount[idx] != 3 {
		t.Errorf("strlen count = %d, want 3", st.CallCount[idx])
	}
	widx := st.Index("wctrans")
	if st.CallCount[widx] != 1 {
		t.Errorf("wctrans count = %d, want 1", st.CallCount[widx])
	}
	// wctrans("bogus") sets EINVAL; both errno histograms must see it.
	if st.FuncErrno[widx][cval.EINVAL] != 1 {
		t.Errorf("func errno histogram EINVAL = %d, want 1", st.FuncErrno[widx][cval.EINVAL])
	}
	if st.GlobalErrno[cval.EINVAL] != 1 {
		t.Errorf("global errno histogram EINVAL = %d, want 1", st.GlobalErrno[cval.EINVAL])
	}
	if st.TotalCalls() != 4 {
		t.Errorf("TotalCalls = %d, want 4", st.TotalCalls())
	}
	// Execution time accumulated something nonzero for strlen.
	if st.ExecTime[idx] <= 0 {
		t.Errorf("ExecTime = %v, want > 0", st.ExecTime[idx])
	}
	names := st.FuncNames()
	if len(names) != 2 {
		t.Errorf("FuncNames = %v", names)
	}
}

func TestWrapperTransparency(t *testing.T) {
	// A wrapped fault must pass through unchanged (the wrapper is
	// transparent for behaviour it doesn't veto).
	st := NewState("libwrap.so")
	_, call := wrapLibc(t, profilingGen(), st, "strlen")
	_, f := call("strlen", cval.Ptr(0))
	if f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("fault through wrapper = %v, want SIGSEGV", f)
	}
}

func TestArgCheckDenies(t *testing.T) {
	reg := clib.MustRegistry()
	libc := reg.AsLibrary()
	api := ctypes.RobustAPI{
		"strlen": {{Name: "s", Chain: "in_str", Level: 3, LevelName: "cstring"}},
	}
	g := MustGenerator(MGPrototype(), MGArgCheck(api), MGCaller())
	st := NewState("libwrap.so")
	env, call := func() (*cval.Env, func(string, ...cval.Value) (cval.Value, *cmem.Fault)) {
		protos := []*ctypes.Prototype{libc.Proto("strlen")}
		wrapper := g.BuildLibrary("libwrap.so", protos, st)
		sys := simelf.NewSystem()
		if err := sys.AddLibrary(libc); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddLibrary(wrapper); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddExecutable(&simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}); err != nil {
			t.Fatal(err)
		}
		lm, err := dynlink.Load(sys, "app", []string{"libwrap.so"})
		if err != nil {
			t.Fatal(err)
		}
		env := cval.NewEnv()
		return env, func(name string, args ...cval.Value) (cval.Value, *cmem.Fault) {
			fn, _ := lm.Resolve(name)
			return fn(env, args)
		}
	}()

	// Valid call passes through.
	s, _ := env.Img.StaticString("four")
	v, f := call("strlen", cval.Ptr(s))
	if f != nil || v.Uint32() != 4 {
		t.Fatalf("valid strlen = %v, %v", v, f)
	}
	// NULL is denied instead of crashing.
	env.Errno = 0
	v, f = call("strlen", cval.Ptr(0))
	if f != nil {
		t.Fatalf("denied call faulted: %v", f)
	}
	if env.Errno != cval.EDenied {
		t.Errorf("errno = %d, want EDenied", env.Errno)
	}
	if v.Int32() != -1 {
		t.Errorf("denied return = %d, want -1", v.Int32())
	}
	st.Sync()
	if st.DeniedCount[st.Index("strlen")] != 1 {
		t.Errorf("DeniedCount = %d", st.DeniedCount[st.Index("strlen")])
	}
	if len(st.DenyLog) != 1 || !strings.Contains(st.DenyLog[0], "strlen") {
		t.Errorf("DenyLog = %v", st.DenyLog)
	}
}

func TestArgCheckSourceRendering(t *testing.T) {
	api := ctypes.RobustAPI{
		"strlen": {{Name: "s", Chain: "in_str", Level: 3, LevelName: "cstring"}},
	}
	p, err := cheader.ParsePrototype("size_t strlen(const char *s); // @s in_str")
	if err != nil {
		t.Fatal(err)
	}
	src := MustGenerator(MGPrototype(), MGArgCheck(api), MGCaller()).Source(p)
	for _, want := range []string{"healers_check_cstring(a1", "EHEALERS_DENIED"} {
		if !strings.Contains(src, want) {
			t.Errorf("arg-check source missing %q:\n%s", want, src)
		}
	}
}

func TestUnresolvedNextFaults(t *testing.T) {
	p, err := cheader.ParsePrototype("int f(int a);")
	if err != nil {
		t.Fatal(err)
	}
	st := NewState("w")
	var next cval.CFunc // never resolved
	w := MustGenerator(MGPrototype(), MGCaller()).Build(p, &next, st)
	if _, f := w(cval.NewEnv(), []cval.Value{cval.Int(1)}); f == nil || f.Kind != cmem.FaultAbort {
		t.Errorf("unresolved next: fault = %v, want SIGABRT", f)
	}
}

func TestBuildLibraryRequiresNextDefinition(t *testing.T) {
	p, err := cheader.ParsePrototype("int not_in_libc(int a);")
	if err != nil {
		t.Fatal(err)
	}
	st := NewState("libwrap.so")
	wrapper := MustGenerator(MGPrototype(), MGCaller()).BuildLibrary("libwrap.so", []*ctypes.Prototype{p}, st)
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}); err != nil {
		t.Fatal(err)
	}
	if _, err := dynlink.Load(sys, "app", []string{"libwrap.so"}); err == nil {
		t.Error("load succeeded although the wrapped symbol has no next definition")
	}
}

func TestMicroNames(t *testing.T) {
	got := profilingGen().MicroNames()
	want := []string{"prototype", "function exectime", "collect errors", "func errors", "call counter", "caller"}
	if len(got) != len(want) {
		t.Fatalf("MicroNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("micro %d = %q, want %q", i, got[i], want[i])
		}
	}
}
