package gen

import (
	"math"
	"strings"
	"testing"
	"time"

	"healers/internal/cval"
)

func TestHistBucketBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{255, 7},
		{256, 8},
		{time.Second, 29},
		{time.Hour, HistBuckets - 1}, // saturates
	}
	for _, c := range cases {
		if got := HistBucket(c.d); got != c.want {
			t.Errorf("HistBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every sample must fall inside its bucket's bounds: lower bound is
	// the previous bucket's upper bound + 1.
	for _, d := range []time.Duration{1, 7, 100, 12345, time.Millisecond, time.Second} {
		b := HistBucket(d)
		if d.Nanoseconds() > HistUpperNS(b) {
			t.Errorf("%v lands in bucket %d but exceeds its bound %d", d, b, HistUpperNS(b))
		}
		if b > 0 && d.Nanoseconds() <= HistUpperNS(b-1) {
			t.Errorf("%v lands in bucket %d but fits bucket %d", d, b, b-1)
		}
	}
}

func TestHistUpperNS(t *testing.T) {
	if got := HistUpperNS(0); got != 1 {
		t.Errorf("bucket 0 bound = %d, want 1", got)
	}
	if got := HistUpperNS(7); got != 255 {
		t.Errorf("bucket 7 bound = %d, want 255", got)
	}
	if got := HistUpperNS(HistBuckets - 1); got != math.MaxInt64 {
		t.Errorf("last bucket bound = %d, want MaxInt64", got)
	}
	if got := HistUpperNS(-1); got != 0 {
		t.Errorf("negative bucket bound = %d, want 0", got)
	}
}

func TestHistQuantile(t *testing.T) {
	h := make([]uint64, HistBuckets)
	if got := HistQuantileNS(h, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
	// 90 samples in bucket 3 (≤15ns), 9 in bucket 6 (≤127ns), 1 in
	// bucket 10 (≤2047ns): p50/p90 land in bucket 3, p99 in bucket 6,
	// max in bucket 10.
	h[3], h[6], h[10] = 90, 9, 1
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.5, 15}, {0.9, 15}, {0.99, 127}, {1, 2047}, {-1, 15}, {2, 2047}} {
		if got := HistQuantileNS(h, c.q); got != c.want {
			t.Errorf("q=%v -> %d, want %d", c.q, got, c.want)
		}
	}
	if got := HistTotal(h); got != 100 {
		t.Errorf("total = %d, want 100", got)
	}
}

func TestFormatNS(t *testing.T) {
	for _, c := range []struct {
		ns   int64
		want string
	}{
		{500, "500ns"},
		{1500, "1.5µs"},
		{2_000_000, "2ms"},
		{3_000_000_000, "3s"},
		{math.MaxInt64, "inf"},
	} {
		if got := FormatNS(c.ns); got != c.want {
			t.Errorf("FormatNS(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestExecSampleFeedsHistogram(t *testing.T) {
	st := NewState("libtest.so")
	idx := st.Index("strlen")
	st.addExecSample(nil, idx, 40*time.Nanosecond)  // bucket 5
	st.addExecSample(nil, idx, 40*time.Nanosecond)  // bucket 5
	st.addExecSample(nil, idx, 300*time.Nanosecond) // bucket 8
	st.Sync()
	if st.ExecHist[idx][5] != 2 || st.ExecHist[idx][8] != 1 {
		t.Errorf("histogram = %v", st.ExecHist[idx])
	}
	if got := HistTotal(st.ExecHist[idx]); got != 3 {
		t.Errorf("bucket sum = %d, want 3", got)
	}
	if st.ExecTime[idx] != 380*time.Nanosecond {
		t.Errorf("total = %v, want 380ns", st.ExecTime[idx])
	}
	st.Reset()
	if got := HistTotal(st.ExecHist[idx]); got != 0 {
		t.Errorf("bucket sum after Reset = %d, want 0", got)
	}
}

func TestTraceRing(t *testing.T) {
	st := NewState("libtest.so")
	// Without a capacity the ring stays disarmed.
	st.AddTrace(TraceEntry{Func: "ignored"})
	if got := st.Trace(); got != nil {
		t.Fatalf("disarmed ring recorded %v", got)
	}

	st.SetTraceCap(3)
	st.SetTraceCap(2) // smaller request must not shrink the ring
	for i := 0; i < 5; i++ {
		st.AddTrace(TraceEntry{Func: "f", Outcome: "ok", Dur: time.Duration(i)})
	}
	got := st.Trace()
	if len(got) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(got))
	}
	// Oldest-first: calls 3, 4, 5 survive with sequence numbers 3..5.
	for i, e := range got {
		if e.Seq != uint64(i+3) {
			t.Errorf("entry %d has seq %d, want %d", i, e.Seq, i+3)
		}
	}
	st.Reset()
	if got := st.Trace(); got != nil {
		t.Errorf("ring after Reset = %v, want empty", got)
	}
}

// TestTraceRingResetRefill pins the Reset-then-refill contract: the ring
// stays armed, refills with correct oldest-first ordering through
// wraparound, and Seq continues the pre-Reset global sequence instead of
// restarting at 1 — so trace entries from before and after a Reset stay
// comparable.
func TestTraceRingResetRefill(t *testing.T) {
	st := NewState("libtest.so")
	st.SetTraceCap(3)
	for i := 0; i < 5; i++ { // seq 1..5; ring holds 3,4,5
		st.AddTrace(TraceEntry{Func: "a"})
	}
	st.Reset()

	// Refill past capacity: seq 6..9, ring holds 7,8,9 oldest-first.
	for i := 0; i < 4; i++ {
		st.AddTrace(TraceEntry{Func: "b", Dur: time.Duration(i)})
	}
	got := st.Trace()
	if len(got) != 3 {
		t.Fatalf("refilled ring holds %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+7) {
			t.Errorf("entry %d has seq %d, want %d (monotonic across Reset)", i, e.Seq, i+7)
		}
		if i > 0 && got[i].Seq <= got[i-1].Seq {
			t.Errorf("snapshot not in increasing Seq order: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}

	// A partially refilled ring (fewer entries than capacity after
	// Reset) must not resurrect pre-Reset slots.
	st.Reset()
	st.AddTrace(TraceEntry{Func: "c"})
	got = st.Trace()
	if len(got) != 1 || got[0].Func != "c" || got[0].Seq != 10 {
		t.Errorf("partial refill = %+v, want one entry func=c seq=10", got)
	}
}

// TestTraceRingGrow pins SetTraceCap growth on a live ring: the
// surviving entries re-linearize oldest-first into the larger store and
// subsequent adds extend them in order.
func TestTraceRingGrow(t *testing.T) {
	st := NewState("libtest.so")
	st.SetTraceCap(2)
	for i := 0; i < 3; i++ { // seq 1..3; ring holds 2,3
		st.AddTrace(TraceEntry{Func: "a"})
	}
	st.SetTraceCap(4)
	st.AddTrace(TraceEntry{Func: "b"}) // seq 4
	got := st.Trace()
	want := []uint64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("grown ring holds %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Errorf("entry %d has seq %d, want %d", i, e.Seq, want[i])
		}
	}
}

func TestSummarizeArgs(t *testing.T) {
	if got := summarizeArgs(nil); got != "" {
		t.Errorf("no args rendered %q", got)
	}
	if got := summarizeArgs([]cval.Value{1, 255}); got != "0x1, 0xff" {
		t.Errorf("two args rendered %q", got)
	}
	long := make([]cval.Value, traceMaxArgs+2)
	if got := summarizeArgs(long); !strings.HasSuffix(got, ", ...") {
		t.Errorf("overlong arg list rendered %q, want ... suffix", got)
	}
}
