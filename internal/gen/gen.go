// Package gen implements the HEALERS flexible wrapper-generator
// architecture (§2.3, Fig. 3): wrapper functionality is decomposed into
// micro-generators, each contributing a fragment of prefix code and a
// fragment of postfix code. Micro-generators compose in declaration
// order — prefixes run first-to-last, postfixes last-to-first, exactly the
// nesting visible in the paper's generated wctrans wrapper.
//
// Each micro-generator produces two artifacts kept in lockstep:
//
//   - C-like source text, so the toolkit can show the wrapper it built
//     (the paper's Figure 3), and
//   - a runtime hook pair, so the same wrapper actually executes inside
//     the simulated process.
package gen

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// CallCtx is the per-call state threaded through a wrapper's hooks.
type CallCtx struct {
	Env   *cval.Env
	Proto *ctypes.Prototype
	// Args are the caller's argument words (fixed params then varargs).
	Args []cval.Value
	// Ret is the original function's return value, valid in postfix
	// hooks (or the substitute value when the call was denied).
	Ret cval.Value
	// Denied is set by a checking prefix hook to veto the call to the
	// original function.
	Denied bool
	// DenyReason explains a veto for logs.
	DenyReason string
	// FuncIndex is the wrapped function's index in the wrapper state's
	// tables.
	FuncIndex int
	// Contain, set by a containment prefix hook, makes the generator
	// catch a fault raised by the original function instead of
	// propagating it: the fault lands in ContainedFault and the postfix
	// hooks still run, so a containment postfix can virtualize it into
	// an errno return. A caught fault no postfix consumes propagates
	// after the postfix loop — containment never silently swallows.
	Contain bool
	// ContainedFault holds the caught fault while postfix hooks run; a
	// consuming hook clears it after deciding the recovery action.
	ContainedFault *cmem.Fault
	// invoke re-runs the original function with the original arguments;
	// set by the generator just before the real call so a containment
	// postfix can implement retry-with-backoff.
	invoke func() (cval.Value, *cmem.Fault)
	// containArmed notes that the containment prefix armed the write
	// journal (skipped for vetoed calls).
	containArmed bool
	// escalated marks a fault the recovery policy re-raised on purpose,
	// so later postfix hooks don't try to consume it.
	escalated bool
	// watchdogArmed/watchdogPrev hold the watchdog's saved outer fuel
	// budget across the call.
	watchdogArmed bool
	watchdogPrev  int64
	// start is the exectime micro-generator's timestamp.
	start time.Time
	// traceStart is the trace micro-generator's timestamp, kept separate
	// from start so either micro-generator composes without the other.
	traceStart time.Time
	// errnoAt tracks errno snapshots keyed by micro-generator name.
	errnoAt map[string]int32
}

// Hook is one runtime action; returning a fault terminates the process
// (the security wrapper's response to a detected overflow).
type Hook func(ctx *CallCtx) *cmem.Fault

// MicroGenerator produces one feature's code fragments and hooks.
type MicroGenerator interface {
	// Name identifies the micro-generator ("call counter", "caller"...).
	Name() string
	// PrefixSource renders the C-like prefix fragment lines.
	PrefixSource(proto *ctypes.Prototype) []string
	// PostfixSource renders the C-like postfix fragment lines.
	PostfixSource(proto *ctypes.Prototype) []string
	// PrefixHook returns the runtime prefix action, or nil.
	PrefixHook(proto *ctypes.Prototype, st *State) Hook
	// PostfixHook returns the runtime postfix action, or nil.
	PostfixHook(proto *ctypes.Prototype, st *State) Hook
}

// State is the mutable statistics store shared by every wrapped function
// of one generated wrapper library — the arrays the paper's generated code
// indexes (call_counter_num_calls[1206] and friends). One State belongs to
// one wrapper library instance. A single simulated process is
// single-threaded, but a parallel fault-injection campaign runs many
// probe processes against the same preloaded wrapper library at once, so
// every counter mutation goes through the locked helpers below; direct
// field access is safe only once execution has quiesced (rendering a
// profile, test assertions).
type State struct {
	// Soname names the wrapper library this state belongs to.
	Soname string

	// mu guards every counter and the index tables against concurrent
	// probe processes.
	mu sync.Mutex

	funcIndex map[string]int
	funcNames []string

	// CallCount counts calls per function index.
	CallCount []uint64
	// ExecTime accumulates time spent per function index.
	ExecTime []time.Duration
	// ExecHist holds one log2 latency histogram per function index
	// (HistBuckets buckets, see HistBucket); the bucket sum equals the
	// number of calls the exectime micro-generator timed to completion.
	ExecHist [][]uint64
	// FuncErrno histograms errno changes per function.
	FuncErrno [][]uint64
	// GlobalErrno histograms errno changes across all functions.
	GlobalErrno []uint64
	// DeniedCount counts vetoed calls per function index.
	DeniedCount []uint64
	// PassedCount counts calls that ran every installed check and were
	// let through to the original function, per function index. In a
	// wrapper with no checking micro-generators every completed call
	// counts as passed.
	PassedCount []uint64
	// SubstCount counts calls routed through a bounded substitution
	// (BuildLibrarySubst) instead of the micro-generator composition.
	SubstCount []uint64
	// ContainedCount counts faults the containment micro-generator
	// caught and virtualized into errno returns, per function index.
	ContainedCount []uint64
	// RetriedCount counts retry attempts the recovery policy issued
	// after a contained fault, per function index.
	RetriedCount []uint64
	// BreakerTrips counts circuit-breaker trips (a function flipped to
	// always-deny after repeated contained failures), per function
	// index.
	BreakerTrips []uint64
	// Overflows counts canary/bound violations detected.
	Overflows uint64
	// DenyLog records human-readable veto reasons (bounded).
	DenyLog []string

	// trace is the trace micro-generator's bounded ring of recent calls;
	// traceCap its capacity and traceSeq the global call sequence.
	trace    []TraceEntry
	traceCap int
	traceSeq uint64

	// OnExit, when set, runs once when a wrapped process calls exit()
	// with the exit-flush micro-generator installed — the paper's "just
	// before the application terminates, the collection code is called
	// to send the gathered information to a central server". The core
	// layer installs an XML-upload hook here; gen itself stays free of
	// transport dependencies.
	OnExit func(env *cval.Env, st *State)
}

// NewState creates an empty state for a wrapper library.
func NewState(soname string) *State {
	return &State{
		Soname:      soname,
		funcIndex:   make(map[string]int),
		GlobalErrno: make([]uint64, cval.MaxErrno+1),
	}
}

// Reset zeroes every counter while keeping the function index table, so
// one generated wrapper library can profile several runs independently.
func (st *State) Reset() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.CallCount {
		st.CallCount[i] = 0
		st.ExecTime[i] = 0
		st.DeniedCount[i] = 0
		st.PassedCount[i] = 0
		st.SubstCount[i] = 0
		st.ContainedCount[i] = 0
		st.RetriedCount[i] = 0
		st.BreakerTrips[i] = 0
		for j := range st.ExecHist[i] {
			st.ExecHist[i][j] = 0
		}
		for j := range st.FuncErrno[i] {
			st.FuncErrno[i][j] = 0
		}
	}
	for j := range st.GlobalErrno {
		st.GlobalErrno[j] = 0
	}
	st.Overflows = 0
	st.DenyLog = nil
	st.trace = nil
	st.traceSeq = 0
}

// Index returns the stable index for a function name, allocating on first
// use.
func (st *State) Index(name string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := st.funcIndex[name]; ok {
		return i
	}
	i := len(st.funcNames)
	st.funcIndex[name] = i
	st.funcNames = append(st.funcNames, name)
	st.CallCount = append(st.CallCount, 0)
	st.ExecTime = append(st.ExecTime, 0)
	st.ExecHist = append(st.ExecHist, make([]uint64, HistBuckets))
	st.FuncErrno = append(st.FuncErrno, make([]uint64, cval.MaxErrno+1))
	st.DeniedCount = append(st.DeniedCount, 0)
	st.PassedCount = append(st.PassedCount, 0)
	st.SubstCount = append(st.SubstCount, 0)
	st.ContainedCount = append(st.ContainedCount, 0)
	st.RetriedCount = append(st.RetriedCount, 0)
	st.BreakerTrips = append(st.BreakerTrips, 0)
	return i
}

// FuncNames returns the wrapped function names in index order.
func (st *State) FuncNames() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.funcNames...)
}

// Name returns the function name for an index.
func (st *State) Name(i int) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.funcNames[i]
}

// TotalCalls sums the call counters.
func (st *State) TotalCalls() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var n uint64
	for _, c := range st.CallCount {
		n += c
	}
	return n
}

// ContainmentTotals sums the recovery layer's counters across every
// wrapped function: faults contained, retries issued, breaker trips.
func (st *State) ContainmentTotals() (contained, retried, trips uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.ContainedCount {
		contained += st.ContainedCount[i]
		retried += st.RetriedCount[i]
		trips += st.BreakerTrips[i]
	}
	return contained, retried, trips
}

// AddCall bumps a function's call counter. Exported so bounded
// substitutions (wrappers/subst.go), which bypass the micro-generator
// composition, account their calls through the same locked path.
func (st *State) AddCall(idx int) {
	st.mu.Lock()
	st.CallCount[idx]++
	st.mu.Unlock()
}

// addExecSample accumulates time spent in a wrapped function and bumps
// its latency histogram bucket — one lock for both, so the total and the
// bucket sum cannot drift apart under concurrent probes.
func (st *State) addExecSample(idx int, d time.Duration) {
	b := HistBucket(d)
	st.mu.Lock()
	st.ExecTime[idx] += d
	st.ExecHist[idx][b]++
	st.mu.Unlock()
}

// addGlobalErrno bumps the cross-function errno histogram.
func (st *State) addGlobalErrno(slot int) {
	st.mu.Lock()
	st.GlobalErrno[slot]++
	st.mu.Unlock()
}

// addFuncErrno bumps one function's errno histogram.
func (st *State) addFuncErrno(idx, slot int) {
	st.mu.Lock()
	st.FuncErrno[idx][slot]++
	st.mu.Unlock()
}

// addOverflow counts a detected canary/bound violation.
func (st *State) addOverflow() {
	st.mu.Lock()
	st.Overflows++
	st.mu.Unlock()
}

// DenyLogCap bounds the DenyLog so a pathological workload cannot grow
// the veto record without limit; DeniedCount keeps exact totals.
const DenyLogCap = 1000

// NoteDeny records a veto. Exported so bounded substitutions share the
// one implementation (and its cap) instead of reimplementing it.
func (st *State) NoteDeny(idx int, reason string) {
	st.mu.Lock()
	st.DeniedCount[idx]++
	if len(st.DenyLog) < DenyLogCap {
		st.DenyLog = append(st.DenyLog, reason)
	}
	st.mu.Unlock()
}

// noteContained counts a fault caught and virtualized for a function.
func (st *State) noteContained(idx int) {
	st.mu.Lock()
	st.ContainedCount[idx]++
	st.mu.Unlock()
}

// noteRetry counts one policy-issued retry attempt.
func (st *State) noteRetry(idx int) {
	st.mu.Lock()
	st.RetriedCount[idx]++
	st.mu.Unlock()
}

// noteBreakerTrip counts a circuit-breaker trip.
func (st *State) noteBreakerTrip(idx int) {
	st.mu.Lock()
	st.BreakerTrips[idx]++
	st.mu.Unlock()
}

// notePassed counts a call that cleared every installed check.
func (st *State) notePassed(idx int) {
	st.mu.Lock()
	st.PassedCount[idx]++
	st.mu.Unlock()
}

// noteSubst counts a call routed through a bounded substitution.
func (st *State) noteSubst(idx int) {
	st.mu.Lock()
	st.SubstCount[idx]++
	st.mu.Unlock()
}

// SetTraceCap arms the trace ring; the largest capacity requested by any
// trace micro-generator sharing this state wins.
func (st *State) SetTraceCap(n int) {
	if n <= 0 {
		return
	}
	st.mu.Lock()
	if n > st.traceCap {
		st.traceCap = n
	}
	st.mu.Unlock()
}

// AddTrace appends one call record to the bounded ring, overwriting the
// oldest entry once the ring is full; it assigns the entry's sequence
// number. A no-op until SetTraceCap arms the ring.
func (st *State) AddTrace(e TraceEntry) {
	st.mu.Lock()
	if st.traceCap > 0 {
		st.traceSeq++
		e.Seq = st.traceSeq
		if len(st.trace) < st.traceCap {
			st.trace = append(st.trace, e)
		} else {
			st.trace[int((st.traceSeq-1)%uint64(st.traceCap))] = e
		}
	}
	st.mu.Unlock()
}

// Trace snapshots the trace ring, oldest entry first.
func (st *State) Trace() []TraceEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.trace) == 0 {
		return nil
	}
	out := make([]TraceEntry, 0, len(st.trace))
	if len(st.trace) < st.traceCap || st.traceCap == 0 {
		return append(out, st.trace...)
	}
	head := int(st.traceSeq % uint64(st.traceCap))
	out = append(out, st.trace[head:]...)
	return append(out, st.trace[:head]...)
}

// errnoSlot clamps an errno to the histogram range, like the MAX_ERRNO
// guard in the paper's Figure 3 code.
func errnoSlot(e int32) int {
	if e < 0 || e >= cval.MaxErrno {
		return cval.MaxErrno
	}
	return int(e)
}

// Generator composes micro-generators into wrapper functions and wrapper
// libraries.
type Generator struct {
	micros []MicroGenerator
}

// NewGenerator builds a generator from an ordered micro-generator list.
// The caller micro-generator (MGCaller) must be present exactly once; it
// marks where the original function is invoked.
func NewGenerator(micros ...MicroGenerator) (*Generator, error) {
	callers := 0
	for _, m := range micros {
		if _, ok := m.(*callerGen); ok {
			callers++
		}
	}
	if callers != 1 {
		return nil, fmt.Errorf("gen: generator needs exactly one caller micro-generator, got %d", callers)
	}
	return &Generator{micros: micros}, nil
}

// MustGenerator is NewGenerator that panics on misconfiguration; for
// package-level canonical wrapper definitions.
func MustGenerator(micros ...MicroGenerator) *Generator {
	g, err := NewGenerator(micros...)
	if err != nil {
		panic(err)
	}
	return g
}

// MicroNames returns the composed micro-generator names in order.
func (g *Generator) MicroNames() []string {
	names := make([]string, len(g.micros))
	for i, m := range g.micros {
		names[i] = m.Name()
	}
	return names
}

// Build compiles the wrapper for one prototype. next is a cell resolved at
// link time (RTLD_NEXT); st accumulates statistics.
func (g *Generator) Build(proto *ctypes.Prototype, next *cval.CFunc, st *State) cval.CFunc {
	return g.build(proto, func() cval.CFunc { return *next }, st)
}

// build compiles the wrapper with a caller-supplied RTLD_NEXT resolver;
// resolve is invoked on every call, so the cell behind it may be rebound
// by later loads (and may be an atomic cell when loads run concurrently).
func (g *Generator) build(proto *ctypes.Prototype, resolve func() cval.CFunc, st *State) cval.CFunc {
	idx := st.Index(proto.Name)
	type hookPair struct {
		pre, post Hook
		isCaller  bool
	}
	pairs := make([]hookPair, len(g.micros))
	for i, m := range g.micros {
		_, isCaller := m.(*callerGen)
		pairs[i] = hookPair{
			pre:      m.PrefixHook(proto, st),
			post:     m.PostfixHook(proto, st),
			isCaller: isCaller,
		}
	}
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		ctx := &CallCtx{
			Env:       env,
			Proto:     proto,
			Args:      args,
			FuncIndex: idx,
			errnoAt:   make(map[string]int32, 2),
		}
		for _, p := range pairs {
			if p.pre == nil {
				continue
			}
			if f := p.pre(ctx); f != nil {
				return 0, f
			}
		}
		if !ctx.Denied {
			fn := resolve()
			if fn == nil {
				return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "wrapper", Detail: fmt.Sprintf("RTLD_NEXT for %s unresolved", proto.Name)}
			}
			ctx.invoke = func() (cval.Value, *cmem.Fault) { return fn(env, args) }
			ret, fault := fn(env, args)
			switch {
			case fault != nil && !ctx.Contain:
				return 0, fault
			case fault != nil:
				// A containment prefix opted in: hold the fault and let
				// the postfix hooks run so one of them can virtualize it.
				ctx.ContainedFault = fault
			default:
				ctx.Ret = ret
			}
		}
		for i := len(pairs) - 1; i >= 0; i-- {
			if pairs[i].post == nil || pairs[i].isCaller {
				continue
			}
			if f := pairs[i].post(ctx); f != nil {
				return 0, f
			}
		}
		if ctx.ContainedFault != nil {
			// Caught but not consumed — a containment micro-generator
			// armed Contain yet no postfix virtualized the fault.
			// Propagate rather than silently swallow it.
			return 0, ctx.ContainedFault
		}
		// Outcome accounting: a call that was not vetoed and did not
		// fault cleared every installed check (NoteDeny covered the
		// veto case inside the checking hook).
		if !ctx.Denied {
			st.notePassed(idx)
		}
		return ctx.Ret, nil
	}
}

// Subst builds a replacement implementation for one wrapped symbol at
// link time, with access to the RTLD_NEXT resolver — how HEALERS rewrites
// an uncontainable call into a bounded equivalent (sprintf into snprintf
// with the destination's actual capacity).
type Subst func(next simelf.NextFunc, st *State) (cval.CFunc, error)

// BuildLibrary generates a complete interposing wrapper library exporting
// a wrapper for every given prototype. The library's OnLoad hook resolves
// each symbol's RTLD_NEXT target; loading the library without a definition
// of some wrapped symbol further down the search order is a link error.
func (g *Generator) BuildLibrary(soname string, protos []*ctypes.Prototype, st *State) *simelf.Library {
	return g.BuildLibrarySubst(soname, protos, st, nil)
}

// nextCell is an atomically rebindable RTLD_NEXT slot. A wrapper library
// object is registered once in a simelf.System but loaded by every
// process that maps it; a parallel campaign loads it from many probe
// processes at once, so the link-time write and the call-time read must
// not race. Identical search orders resolve to identical targets, so
// concurrent rebinding is value-idempotent.
type nextCell struct {
	fn atomic.Pointer[cval.CFunc]
}

func (c *nextCell) load() cval.CFunc {
	if p := c.fn.Load(); p != nil {
		return *p
	}
	return nil
}

func (c *nextCell) store(fn cval.CFunc) { c.fn.Store(&fn) }

// BuildLibrarySubst is BuildLibrary with per-symbol substitutions: a
// symbol named in subst is exported as the substitute implementation
// instead of the micro-generator composition.
func (g *Generator) BuildLibrarySubst(soname string, protos []*ctypes.Prototype, st *State, subst map[string]Subst) *simelf.Library {
	lib := simelf.NewLibrary(soname)
	sorted := append([]*ctypes.Prototype(nil), protos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	cells := make(map[string]*nextCell, len(sorted))
	substCells := make(map[string]*nextCell)
	for _, proto := range sorted {
		if builder, ok := subst[proto.Name]; ok && builder != nil {
			cell := new(nextCell)
			substCells[proto.Name] = cell
			idx := st.Index(proto.Name)
			// Trampoline: the real implementation lands in the cell
			// at link time.
			lib.ExportWithProto(proto, func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
				fn := cell.load()
				if fn == nil {
					return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "wrapper", Detail: "substitute unresolved"}
				}
				st.noteSubst(idx)
				return fn(env, args)
			})
			continue
		}
		cell := new(nextCell)
		cells[proto.Name] = cell
		lib.ExportWithProto(proto, g.build(proto, cell.load, st))
	}
	lib.OnLoad = func(next simelf.NextFunc) error {
		for name, cell := range cells {
			fn, ok := next(name)
			if !ok {
				return fmt.Errorf("gen: %s: no next definition of %s", soname, name)
			}
			cell.store(fn)
		}
		for name, cell := range substCells {
			fn, err := subst[name](next, st)
			if err != nil {
				return fmt.Errorf("gen: %s: building substitute for %s: %w", soname, name, err)
			}
			cell.store(fn)
		}
		return nil
	}
	return lib
}
