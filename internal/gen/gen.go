// Package gen implements the HEALERS flexible wrapper-generator
// architecture (§2.3, Fig. 3): wrapper functionality is decomposed into
// micro-generators, each contributing a fragment of prefix code and a
// fragment of postfix code. Micro-generators compose in declaration
// order — prefixes run first-to-last, postfixes last-to-first, exactly the
// nesting visible in the paper's generated wctrans wrapper.
//
// Each micro-generator produces two artifacts kept in lockstep:
//
//   - C-like source text, so the toolkit can show the wrapper it built
//     (the paper's Figure 3), and
//   - a runtime hook pair, so the same wrapper actually executes inside
//     the simulated process.
package gen

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// CallCtx is the per-call state threaded through a wrapper's hooks.
type CallCtx struct {
	Env   *cval.Env
	Proto *ctypes.Prototype
	// Args are the caller's argument words (fixed params then varargs).
	Args []cval.Value
	// Ret is the original function's return value, valid in postfix
	// hooks (or the substitute value when the call was denied).
	Ret cval.Value
	// Denied is set by a checking prefix hook to veto the call to the
	// original function.
	Denied bool
	// DenyReason explains a veto for logs.
	DenyReason string
	// FuncIndex is the wrapped function's index in the wrapper state's
	// tables.
	FuncIndex int
	// Contain, set by a containment prefix hook, makes the generator
	// catch a fault raised by the original function instead of
	// propagating it: the fault lands in ContainedFault and the postfix
	// hooks still run, so a containment postfix can virtualize it into
	// an errno return. A caught fault no postfix consumes propagates
	// after the postfix loop — containment never silently swallows.
	Contain bool
	// ContainedFault holds the caught fault while postfix hooks run; a
	// consuming hook clears it after deciding the recovery action.
	ContainedFault *cmem.Fault
	// invoke re-runs the original function with the original arguments;
	// set by the generator just before the real call so a containment
	// postfix can implement retry-with-backoff.
	invoke func() (cval.Value, *cmem.Fault)
	// containArmed notes that the containment prefix armed the write
	// journal (skipped for vetoed calls).
	containArmed bool
	// escalated marks a fault the recovery policy re-raised on purpose,
	// so later postfix hooks don't try to consume it.
	escalated bool
	// watchdogStack holds each watchdog micro-generator's saved outer
	// fuel budget across the call — a stack, pushed in prefix order and
	// popped in (reverse) postfix order, so nested watchdogs restore
	// their budgets in the right order instead of clobbering one shared
	// slot.
	watchdogStack []watchdogFrame
	// start is the exectime micro-generator's timestamp.
	start time.Time
	// traceStart is the trace micro-generator's timestamp, kept separate
	// from start so either micro-generator composes without the other.
	traceStart time.Time
	// errnoCollect/errnoFunc/errnoTrace are the errno snapshots the
	// collect-errors, func-errors, and trace micro-generators take in
	// their prefixes — fixed fields rather than a map so arming a
	// snapshot costs a word store, not an allocation per call.
	errnoCollect int32
	errnoFunc    int32
	errnoTrace   int32
}

// Hook is one runtime action; returning a fault terminates the process
// (the security wrapper's response to a detected overflow).
type Hook func(ctx *CallCtx) *cmem.Fault

// MicroGenerator produces one feature's code fragments and hooks.
type MicroGenerator interface {
	// Name identifies the micro-generator ("call counter", "caller"...).
	Name() string
	// PrefixSource renders the C-like prefix fragment lines.
	PrefixSource(proto *ctypes.Prototype) []string
	// PostfixSource renders the C-like postfix fragment lines.
	PostfixSource(proto *ctypes.Prototype) []string
	// PrefixHook returns the runtime prefix action, or nil.
	PrefixHook(proto *ctypes.Prototype, st *State) Hook
	// PostfixHook returns the runtime postfix action, or nil.
	PostfixHook(proto *ctypes.Prototype, st *State) Hook
}

// StateShards is the number of counter shards a State spreads capture
// over — a power of two so shard selection is one mask. Each shard's
// counters live in their own heap arrays, so concurrent writers on
// different shards never touch the same cache line.
const StateShards = 16

// stateShard is one worker's slice of the capture counters. Every slot
// is bumped with a single atomic add (two writers can share a shard
// after a token collision), and drained losslessly by fold() with an
// atomic swap — the write path never takes a lock.
type stateShard struct {
	callCount  []uint64
	execTimeNS []int64
	execHist   [][]uint64
	funcErrno  [][]uint64
	denied     []uint64
	passed     []uint64
	subst      []uint64
	contained  []uint64
	// containedBy splits contained per failure class (NumFailureClasses
	// slots per function) — the grain the control plane's escalation
	// decisions run on.
	containedBy [][]uint64
	retried     []uint64
	trips       []uint64
	corrupt     []uint64

	globalErrno []uint64
	overflows   uint64
}

// State is the mutable statistics store shared by every wrapped function
// of one generated wrapper library — the arrays the paper's generated code
// indexes (call_counter_num_calls[1206] and friends). One State belongs to
// one wrapper library instance.
//
// Capture is sharded: a parallel fault-injection campaign (or a fleet
// process) runs many simulated processes against the same preloaded
// wrapper library at once, and every counter mutation is one atomic add
// into the calling process's shard (cval.Env.StatShard selects it) —
// no lock is taken on the hot path. The exported fields hold the
// *merged* totals: Sync (or any totalling method) folds the shard
// deltas in, so invariants like "histogram bucket sum == call count"
// hold at read time, after capture has quiesced, rather than at write
// time. Direct field access is safe for fabricating profiles on an
// idle State and for reading after quiesce + Sync.
type State struct {
	// Soname names the wrapper library this state belongs to.
	Soname string

	// mu guards the index tables, the merged fields, and DenyLog. The
	// capture hot path does not take it; Sync/Reset and the read-side
	// helpers do.
	mu sync.Mutex

	funcIndex map[string]int
	funcNames []string

	// shards are the per-worker capture counters; writers pick one via
	// the Env's shard token. Per-function slots are grown by Index,
	// which must not run concurrently with capture (a wrapper is built
	// — indexing every symbol — before any process can call it).
	shards [StateShards]stateShard

	// CallCount counts calls per function index.
	CallCount []uint64
	// ExecTime accumulates time spent per function index.
	ExecTime []time.Duration
	// ExecHist holds one log2 latency histogram per function index
	// (HistBuckets buckets, see HistBucket); once merged, the bucket sum
	// equals the number of calls the exectime micro-generator timed to
	// completion.
	ExecHist [][]uint64
	// FuncErrno histograms errno changes per function.
	FuncErrno [][]uint64
	// GlobalErrno histograms errno changes across all functions.
	GlobalErrno []uint64
	// DeniedCount counts vetoed calls per function index.
	DeniedCount []uint64
	// PassedCount counts calls that ran every installed check and were
	// let through to the original function, per function index. In a
	// wrapper with no checking micro-generators every completed call
	// counts as passed.
	PassedCount []uint64
	// SubstCount counts calls routed through a bounded substitution
	// (BuildLibrarySubst) instead of the micro-generator composition.
	SubstCount []uint64
	// ContainedCount counts faults the containment micro-generator
	// caught and virtualized into errno returns, per function index.
	ContainedCount []uint64
	// ContainedByClass splits ContainedCount per failure class: one
	// NumFailureClasses-length histogram per function index, indexed by
	// FailureClass. The per-class grain is what adaptive re-derivation
	// escalates on (a function that keeps hanging warrants a different
	// rule than one that keeps crashing).
	ContainedByClass [][]uint64
	// RetriedCount counts retry attempts the recovery policy issued
	// after a contained fault, per function index.
	RetriedCount []uint64
	// BreakerTrips counts circuit-breaker trips (a function flipped to
	// always-deny after repeated contained failures), per function
	// index.
	BreakerTrips []uint64
	// CorruptionCount counts silent corruptions per function index: runs
	// where the function's call completed with a success status but the
	// journal diff showed committed state diverging from the golden run
	// — damage no errno-based counter above can see.
	CorruptionCount []uint64
	// Overflows counts canary/bound violations detected.
	Overflows uint64
	// DenyLog records human-readable veto reasons (bounded).
	DenyLog []string

	// traceMu guards the trace ring separately from mu: trace entries
	// need a total order (the ring's whole point), so their capture
	// stays serialized, but on a lock the counter path never touches.
	traceMu sync.Mutex
	// trace is the trace micro-generator's bounded ring of recent
	// calls, traceCap entries of backing store once armed. traceHead is
	// the next write slot and traceLen the live entry count; traceSeq
	// is the global call sequence, strictly monotonic for the State's
	// lifetime — Reset drops the entries but never rewinds it, so Seq
	// values from before and after a Reset remain comparable.
	trace     []TraceEntry
	traceCap  int
	traceHead int
	traceLen  int
	traceSeq  uint64

	// OnExit, when set, runs once when a wrapped process calls exit()
	// with the exit-flush micro-generator installed — the paper's "just
	// before the application terminates, the collection code is called
	// to send the gathered information to a central server". The core
	// layer installs an XML-upload hook here; gen itself stays free of
	// transport dependencies.
	OnExit func(env *cval.Env, st *State)
}

// NewState creates an empty state for a wrapper library.
func NewState(soname string) *State {
	st := &State{
		Soname:      soname,
		funcIndex:   make(map[string]int),
		GlobalErrno: make([]uint64, cval.MaxErrno+1),
	}
	for s := range st.shards {
		st.shards[s].globalErrno = make([]uint64, cval.MaxErrno+1)
	}
	return st
}

// shard maps a process environment to its counter shard. A nil env
// (fabrication, direct helper calls in tests) lands in shard 0.
func (st *State) shard(env *cval.Env) *stateShard {
	if env == nil {
		return &st.shards[0]
	}
	return &st.shards[env.StatShard()&(StateShards-1)]
}

// Reset zeroes every counter — merged fields and shard deltas — while
// keeping the function index table, so one generated wrapper library can
// profile several runs independently. The trace ring is emptied but
// stays armed, and traceSeq keeps counting: post-Reset entries continue
// the global sequence. Concurrent writers are not stopped; an increment
// in flight during Reset may survive it, so run-exact assertions must
// quiesce capture first.
func (st *State) Reset() {
	st.mu.Lock()
	for i := range st.CallCount {
		st.CallCount[i] = 0
		st.ExecTime[i] = 0
		st.DeniedCount[i] = 0
		st.PassedCount[i] = 0
		st.SubstCount[i] = 0
		st.ContainedCount[i] = 0
		for j := range st.ContainedByClass[i] {
			st.ContainedByClass[i][j] = 0
		}
		st.RetriedCount[i] = 0
		st.BreakerTrips[i] = 0
		st.CorruptionCount[i] = 0
		for j := range st.ExecHist[i] {
			st.ExecHist[i][j] = 0
		}
		for j := range st.FuncErrno[i] {
			st.FuncErrno[i][j] = 0
		}
	}
	for j := range st.GlobalErrno {
		st.GlobalErrno[j] = 0
	}
	st.Overflows = 0
	st.DenyLog = nil
	st.drainShards()
	st.mu.Unlock()

	st.traceMu.Lock()
	st.traceHead = 0
	st.traceLen = 0
	st.traceMu.Unlock()
}

// drainShards discards every shard's pending deltas. Caller holds mu.
func (st *State) drainShards() {
	for s := range st.shards {
		sh := &st.shards[s]
		for i := range sh.callCount {
			atomic.SwapUint64(&sh.callCount[i], 0)
			atomic.SwapInt64(&sh.execTimeNS[i], 0)
			atomic.SwapUint64(&sh.denied[i], 0)
			atomic.SwapUint64(&sh.passed[i], 0)
			atomic.SwapUint64(&sh.subst[i], 0)
			atomic.SwapUint64(&sh.contained[i], 0)
			for j := range sh.containedBy[i] {
				atomic.SwapUint64(&sh.containedBy[i][j], 0)
			}
			atomic.SwapUint64(&sh.retried[i], 0)
			atomic.SwapUint64(&sh.trips[i], 0)
			atomic.SwapUint64(&sh.corrupt[i], 0)
			for j := range sh.execHist[i] {
				atomic.SwapUint64(&sh.execHist[i][j], 0)
			}
			for j := range sh.funcErrno[i] {
				atomic.SwapUint64(&sh.funcErrno[i][j], 0)
			}
		}
		for j := range sh.globalErrno {
			atomic.SwapUint64(&sh.globalErrno[j], 0)
		}
		atomic.SwapUint64(&sh.overflows, 0)
	}
}

// Sync folds every shard's pending deltas into the exported merged
// fields and zeroes the shards. Fold is additive, so profiles
// fabricated by writing the fields directly are preserved, and calling
// Sync twice is idempotent. Safe to call while capture is running (the
// drain is atomic per slot); the merged fields are only *complete* —
// and the bucket-sum == call-count invariant only exact — once capture
// has quiesced.
func (st *State) Sync() {
	st.mu.Lock()
	st.fold()
	st.mu.Unlock()
}

// fold merges shard deltas into the exported fields. Caller holds mu.
func (st *State) fold() {
	for s := range st.shards {
		sh := &st.shards[s]
		for i := range sh.callCount {
			st.CallCount[i] += atomic.SwapUint64(&sh.callCount[i], 0)
			st.ExecTime[i] += time.Duration(atomic.SwapInt64(&sh.execTimeNS[i], 0))
			st.DeniedCount[i] += atomic.SwapUint64(&sh.denied[i], 0)
			st.PassedCount[i] += atomic.SwapUint64(&sh.passed[i], 0)
			st.SubstCount[i] += atomic.SwapUint64(&sh.subst[i], 0)
			st.ContainedCount[i] += atomic.SwapUint64(&sh.contained[i], 0)
			for j := range sh.containedBy[i] {
				st.ContainedByClass[i][j] += atomic.SwapUint64(&sh.containedBy[i][j], 0)
			}
			st.RetriedCount[i] += atomic.SwapUint64(&sh.retried[i], 0)
			st.BreakerTrips[i] += atomic.SwapUint64(&sh.trips[i], 0)
			st.CorruptionCount[i] += atomic.SwapUint64(&sh.corrupt[i], 0)
			for j := range sh.execHist[i] {
				st.ExecHist[i][j] += atomic.SwapUint64(&sh.execHist[i][j], 0)
			}
			for j := range sh.funcErrno[i] {
				st.FuncErrno[i][j] += atomic.SwapUint64(&sh.funcErrno[i][j], 0)
			}
		}
		for j := range sh.globalErrno {
			st.GlobalErrno[j] += atomic.SwapUint64(&sh.globalErrno[j], 0)
		}
		st.Overflows += atomic.SwapUint64(&sh.overflows, 0)
	}
}

// Index returns the stable index for a function name, allocating on first
// use. Allocation grows every shard's counter slots and must therefore
// not race with capture — which it cannot in practice: a wrapper library
// indexes all its symbols at build time, before any process can call it.
func (st *State) Index(name string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := st.funcIndex[name]; ok {
		return i
	}
	i := len(st.funcNames)
	st.funcIndex[name] = i
	st.funcNames = append(st.funcNames, name)
	st.CallCount = append(st.CallCount, 0)
	st.ExecTime = append(st.ExecTime, 0)
	st.ExecHist = append(st.ExecHist, make([]uint64, HistBuckets))
	st.FuncErrno = append(st.FuncErrno, make([]uint64, cval.MaxErrno+1))
	st.DeniedCount = append(st.DeniedCount, 0)
	st.PassedCount = append(st.PassedCount, 0)
	st.SubstCount = append(st.SubstCount, 0)
	st.ContainedCount = append(st.ContainedCount, 0)
	st.ContainedByClass = append(st.ContainedByClass, make([]uint64, NumFailureClasses))
	st.RetriedCount = append(st.RetriedCount, 0)
	st.BreakerTrips = append(st.BreakerTrips, 0)
	st.CorruptionCount = append(st.CorruptionCount, 0)
	for s := range st.shards {
		sh := &st.shards[s]
		sh.callCount = append(sh.callCount, 0)
		sh.execTimeNS = append(sh.execTimeNS, 0)
		sh.execHist = append(sh.execHist, make([]uint64, HistBuckets))
		sh.funcErrno = append(sh.funcErrno, make([]uint64, cval.MaxErrno+1))
		sh.denied = append(sh.denied, 0)
		sh.passed = append(sh.passed, 0)
		sh.subst = append(sh.subst, 0)
		sh.contained = append(sh.contained, 0)
		sh.containedBy = append(sh.containedBy, make([]uint64, NumFailureClasses))
		sh.retried = append(sh.retried, 0)
		sh.trips = append(sh.trips, 0)
		sh.corrupt = append(sh.corrupt, 0)
	}
	return i
}

// FuncNames returns the wrapped function names in index order.
func (st *State) FuncNames() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.funcNames...)
}

// Name returns the function name for an index.
func (st *State) Name(i int) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.funcNames[i]
}

// TotalCalls folds pending shard deltas and sums the call counters.
func (st *State) TotalCalls() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fold()
	var n uint64
	for _, c := range st.CallCount {
		n += c
	}
	return n
}

// ContainmentTotals folds pending shard deltas and sums the recovery
// layer's counters across every wrapped function: faults contained,
// retries issued, breaker trips.
func (st *State) ContainmentTotals() (contained, retried, trips uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fold()
	for i := range st.ContainedCount {
		contained += st.ContainedCount[i]
		retried += st.RetriedCount[i]
		trips += st.BreakerTrips[i]
	}
	return contained, retried, trips
}

// AddCall bumps a function's call counter in env's shard — one atomic
// add, no lock. Exported so bounded substitutions (wrappers/subst.go),
// which bypass the micro-generator composition, account their calls
// through the same path.
func (st *State) AddCall(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).callCount[idx], 1)
}

// addExecSample accumulates time spent in a wrapped function and bumps
// its latency histogram bucket, both in env's shard. The total and the
// bucket sum are reconciled when fold() merges the shards, so the
// histogram invariant holds at read time after capture quiesces.
func (st *State) addExecSample(env *cval.Env, idx int, d time.Duration) {
	sh := st.shard(env)
	atomic.AddInt64(&sh.execTimeNS[idx], int64(d))
	atomic.AddUint64(&sh.execHist[idx][HistBucket(d)], 1)
}

// addGlobalErrno bumps the cross-function errno histogram.
func (st *State) addGlobalErrno(env *cval.Env, slot int) {
	atomic.AddUint64(&st.shard(env).globalErrno[slot], 1)
}

// addFuncErrno bumps one function's errno histogram.
func (st *State) addFuncErrno(env *cval.Env, idx, slot int) {
	atomic.AddUint64(&st.shard(env).funcErrno[idx][slot], 1)
}

// addOverflow counts a detected canary/bound violation.
func (st *State) addOverflow(env *cval.Env) {
	atomic.AddUint64(&st.shard(env).overflows, 1)
}

// DenyLogCap bounds the DenyLog so a pathological workload cannot grow
// the veto record without limit; DeniedCount keeps exact totals.
const DenyLogCap = 1000

// NoteDeny records a veto: the counter goes to env's shard, the
// human-readable reason to the locked DenyLog. Denies are rare (each one
// is a blocked attack or injected fault), so the log's lock is off the
// common path by construction. Exported so bounded substitutions share
// the one implementation (and its cap) instead of reimplementing it.
func (st *State) NoteDeny(env *cval.Env, idx int, reason string) {
	atomic.AddUint64(&st.shard(env).denied[idx], 1)
	st.mu.Lock()
	if len(st.DenyLog) < DenyLogCap {
		st.DenyLog = append(st.DenyLog, reason)
	}
	st.mu.Unlock()
}

// NoteSilentCorruption counts a silent corruption attributed to the
// function at idx: its call completed with a success status while the
// journal diff showed committed state diverging from the golden run.
// Exported because the detector lives outside the wrapper — the
// sequence campaign compares digests across whole processes and reports
// the verdict back into the wrapper's state.
func (st *State) NoteSilentCorruption(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).corrupt[idx], 1)
}

// noteContained counts a fault caught and virtualized for a function,
// in both the per-function total and its failure-class bucket.
func (st *State) noteContained(env *cval.Env, idx int, class FailureClass) {
	sh := st.shard(env)
	atomic.AddUint64(&sh.contained[idx], 1)
	if c := int(class); c >= 0 && c < NumFailureClasses {
		atomic.AddUint64(&sh.containedBy[idx][c], 1)
	}
}

// noteRetry counts one policy-issued retry attempt.
func (st *State) noteRetry(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).retried[idx], 1)
}

// noteBreakerTrip counts a circuit-breaker trip.
func (st *State) noteBreakerTrip(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).trips[idx], 1)
}

// notePassed counts a call that cleared every installed check.
func (st *State) notePassed(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).passed[idx], 1)
}

// noteSubst counts a call routed through a bounded substitution.
func (st *State) noteSubst(env *cval.Env, idx int) {
	atomic.AddUint64(&st.shard(env).subst[idx], 1)
}

// SetTraceCap arms the trace ring; the largest capacity requested by any
// trace micro-generator sharing this state wins. Growing re-linearizes
// the live entries oldest-first into the larger backing store.
func (st *State) SetTraceCap(n int) {
	if n <= 0 {
		return
	}
	st.traceMu.Lock()
	if n > st.traceCap {
		live := st.traceSnapshot()
		st.trace = make([]TraceEntry, n)
		copy(st.trace, live)
		st.traceCap = n
		st.traceHead = len(live) % n
		st.traceLen = len(live)
	}
	st.traceMu.Unlock()
}

// AddTrace appends one call record to the bounded ring, overwriting the
// oldest entry once the ring is full; it assigns the entry's sequence
// number. Seq is strictly monotonic for the State's lifetime, surviving
// Reset. A no-op until SetTraceCap arms the ring.
func (st *State) AddTrace(e TraceEntry) {
	st.traceMu.Lock()
	if st.traceCap > 0 {
		st.traceSeq++
		e.Seq = st.traceSeq
		st.trace[st.traceHead] = e
		st.traceHead = (st.traceHead + 1) % st.traceCap
		if st.traceLen < st.traceCap {
			st.traceLen++
		}
	}
	st.traceMu.Unlock()
}

// Trace snapshots the trace ring, oldest entry first. Entries are in
// strictly increasing Seq order; the oldest retained entry is the one
// traceCap calls behind the newest.
func (st *State) Trace() []TraceEntry {
	st.traceMu.Lock()
	defer st.traceMu.Unlock()
	return st.traceSnapshot()
}

// traceSnapshot linearizes the ring oldest-first. Caller holds traceMu.
func (st *State) traceSnapshot() []TraceEntry {
	if st.traceLen == 0 {
		return nil
	}
	start := st.traceHead - st.traceLen
	if start < 0 {
		start += st.traceCap
	}
	out := make([]TraceEntry, 0, st.traceLen)
	for k := 0; k < st.traceLen; k++ {
		out = append(out, st.trace[(start+k)%st.traceCap])
	}
	return out
}

// errnoSlot clamps an errno to the histogram range, like the MAX_ERRNO
// guard in the paper's Figure 3 code.
func errnoSlot(e int32) int {
	if e < 0 || e >= cval.MaxErrno {
		return cval.MaxErrno
	}
	return int(e)
}

// Generator composes micro-generators into wrapper functions and wrapper
// libraries.
type Generator struct {
	micros []MicroGenerator
}

// NewGenerator builds a generator from an ordered micro-generator list.
// The caller micro-generator (MGCaller) must be present exactly once; it
// marks where the original function is invoked.
func NewGenerator(micros ...MicroGenerator) (*Generator, error) {
	callers := 0
	for _, m := range micros {
		if _, ok := m.(*callerGen); ok {
			callers++
		}
	}
	if callers != 1 {
		return nil, fmt.Errorf("gen: generator needs exactly one caller micro-generator, got %d", callers)
	}
	return &Generator{micros: micros}, nil
}

// MustGenerator is NewGenerator that panics on misconfiguration; for
// package-level canonical wrapper definitions.
func MustGenerator(micros ...MicroGenerator) *Generator {
	g, err := NewGenerator(micros...)
	if err != nil {
		panic(err)
	}
	return g
}

// MicroNames returns the composed micro-generator names in order.
func (g *Generator) MicroNames() []string {
	names := make([]string, len(g.micros))
	for i, m := range g.micros {
		names[i] = m.Name()
	}
	return names
}

// Build compiles the wrapper for one prototype. next is a cell resolved at
// link time (RTLD_NEXT); st accumulates statistics.
func (g *Generator) Build(proto *ctypes.Prototype, next *cval.CFunc, st *State) cval.CFunc {
	return g.build(proto, func() cval.CFunc { return *next }, st)
}

// build compiles the wrapper with a caller-supplied RTLD_NEXT resolver;
// resolve is invoked on every call, so the cell behind it may be rebound
// by later loads (and may be an atomic cell when loads run concurrently).
func (g *Generator) build(proto *ctypes.Prototype, resolve func() cval.CFunc, st *State) cval.CFunc {
	idx := st.Index(proto.Name)
	type hookPair struct {
		pre, post Hook
		isCaller  bool
	}
	pairs := make([]hookPair, len(g.micros))
	for i, m := range g.micros {
		_, isCaller := m.(*callerGen)
		pairs[i] = hookPair{
			pre:      m.PrefixHook(proto, st),
			post:     m.PostfixHook(proto, st),
			isCaller: isCaller,
		}
	}
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		ctx := &CallCtx{
			Env:       env,
			Proto:     proto,
			Args:      args,
			FuncIndex: idx,
		}
		for _, p := range pairs {
			if p.pre == nil {
				continue
			}
			if f := p.pre(ctx); f != nil {
				return 0, f
			}
		}
		if !ctx.Denied {
			fn := resolve()
			if fn == nil {
				return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "wrapper", Detail: fmt.Sprintf("RTLD_NEXT for %s unresolved", proto.Name)}
			}
			if ctx.Contain {
				// Only a containment postfix ever re-invokes; skip the
				// closure allocation on the uncontained fast path.
				ctx.invoke = func() (cval.Value, *cmem.Fault) { return fn(env, args) }
			}
			ret, fault := fn(env, args)
			switch {
			case fault != nil && !ctx.Contain:
				return 0, fault
			case fault != nil:
				// A containment prefix opted in: hold the fault and let
				// the postfix hooks run so one of them can virtualize it.
				ctx.ContainedFault = fault
			default:
				ctx.Ret = ret
			}
		}
		for i := len(pairs) - 1; i >= 0; i-- {
			if pairs[i].post == nil || pairs[i].isCaller {
				continue
			}
			if f := pairs[i].post(ctx); f != nil {
				return 0, f
			}
		}
		if ctx.ContainedFault != nil {
			// Caught but not consumed — a containment micro-generator
			// armed Contain yet no postfix virtualized the fault.
			// Propagate rather than silently swallow it.
			return 0, ctx.ContainedFault
		}
		// Outcome accounting: a call that was not vetoed and did not
		// fault cleared every installed check (NoteDeny covered the
		// veto case inside the checking hook).
		if !ctx.Denied {
			st.notePassed(env, idx)
		}
		return ctx.Ret, nil
	}
}

// Subst builds a replacement implementation for one wrapped symbol at
// link time, with access to the RTLD_NEXT resolver — how HEALERS rewrites
// an uncontainable call into a bounded equivalent (sprintf into snprintf
// with the destination's actual capacity).
type Subst func(next simelf.NextFunc, st *State) (cval.CFunc, error)

// BuildLibrary generates a complete interposing wrapper library exporting
// a wrapper for every given prototype. The library's OnLoad hook resolves
// each symbol's RTLD_NEXT target; loading the library without a definition
// of some wrapped symbol further down the search order is a link error.
func (g *Generator) BuildLibrary(soname string, protos []*ctypes.Prototype, st *State) *simelf.Library {
	return g.BuildLibrarySubst(soname, protos, st, nil)
}

// nextCell is an atomically rebindable RTLD_NEXT slot. A wrapper library
// object is registered once in a simelf.System but loaded by every
// process that maps it; a parallel campaign loads it from many probe
// processes at once, so the link-time write and the call-time read must
// not race. Identical search orders resolve to identical targets, so
// concurrent rebinding is value-idempotent.
type nextCell struct {
	fn atomic.Pointer[cval.CFunc]
}

func (c *nextCell) load() cval.CFunc {
	if p := c.fn.Load(); p != nil {
		return *p
	}
	return nil
}

func (c *nextCell) store(fn cval.CFunc) { c.fn.Store(&fn) }

// BuildLibrarySubst is BuildLibrary with per-symbol substitutions: a
// symbol named in subst is exported as the substitute implementation
// instead of the micro-generator composition.
func (g *Generator) BuildLibrarySubst(soname string, protos []*ctypes.Prototype, st *State, subst map[string]Subst) *simelf.Library {
	lib := simelf.NewLibrary(soname)
	sorted := append([]*ctypes.Prototype(nil), protos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	cells := make(map[string]*nextCell, len(sorted))
	substCells := make(map[string]*nextCell)
	for _, proto := range sorted {
		if builder, ok := subst[proto.Name]; ok && builder != nil {
			cell := new(nextCell)
			substCells[proto.Name] = cell
			idx := st.Index(proto.Name)
			// Trampoline: the real implementation lands in the cell
			// at link time.
			lib.ExportWithProto(proto, func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
				fn := cell.load()
				if fn == nil {
					return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "wrapper", Detail: "substitute unresolved"}
				}
				st.noteSubst(env, idx)
				return fn(env, args)
			})
			continue
		}
		cell := new(nextCell)
		cells[proto.Name] = cell
		lib.ExportWithProto(proto, g.build(proto, cell.load, st))
	}
	lib.OnLoad = func(next simelf.NextFunc) error {
		for name, cell := range cells {
			fn, ok := next(name)
			if !ok {
				return fmt.Errorf("gen: %s: no next definition of %s", soname, name)
			}
			cell.store(fn)
		}
		for name, cell := range substCells {
			fn, err := subst[name](next, st)
			if err != nil {
				return fmt.Errorf("gen: %s: building substitute for %s: %w", soname, name, err)
			}
			cell.store(fn)
		}
		return nil
	}
	return lib
}
