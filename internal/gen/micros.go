package gen

import (
	"fmt"
	"strings"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// argNames renders a1..aN for a prototype, the naming the paper's
// generated code uses.
func argNames(proto *ctypes.Prototype) []string {
	names := make([]string, len(proto.Params))
	for i := range proto.Params {
		names[i] = fmt.Sprintf("a%d", i+1)
	}
	return names
}

// ---------------------------------------------------------------------
// prototype

// prototypeGen opens the wrapper function and returns the result — the
// outermost micro-generator in Figure 3.
type prototypeGen struct{}

// MGPrototype renders the wrapper's signature and final return.
func MGPrototype() MicroGenerator { return prototypeGen{} }

func (prototypeGen) Name() string { return "prototype" }

func (prototypeGen) PrefixSource(proto *ctypes.Prototype) []string {
	params := make([]string, len(proto.Params))
	for i, p := range proto.Params {
		params[i] = fmt.Sprintf("%s a%d", p.Type, i+1)
	}
	sig := strings.Join(params, ", ")
	if proto.Variadic {
		if sig != "" {
			sig += ", "
		}
		sig += "..."
	}
	if sig == "" {
		sig = "void"
	}
	lines := []string{fmt.Sprintf("%s %s(%s)", proto.Ret, proto.Name, sig), "{"}
	if !proto.Ret.IsVoid() {
		lines = append(lines, fmt.Sprintf("    %s ret;", proto.Ret))
	}
	return lines
}

func (prototypeGen) PostfixSource(proto *ctypes.Prototype) []string {
	if proto.Ret.IsVoid() {
		return []string{"    return;", "}"}
	}
	return []string{"    return ret;", "}"}
}

func (prototypeGen) PrefixHook(*ctypes.Prototype, *State) Hook  { return nil }
func (prototypeGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// ---------------------------------------------------------------------
// caller

// callerGen invokes the original function via the RTLD_NEXT pointer. The
// runtime call is performed by the Generator itself at this position.
type callerGen struct{}

// MGCaller renders the call to the original function.
func MGCaller() MicroGenerator { return &callerGen{} }

func (*callerGen) Name() string { return "caller" }

func (*callerGen) PrefixSource(*ctypes.Prototype) []string { return nil }

func (*callerGen) PostfixSource(proto *ctypes.Prototype) []string {
	call := fmt.Sprintf("(*addr_%s)(%s);", proto.Name, strings.Join(argNames(proto), ", "))
	if proto.Ret.IsVoid() {
		return []string{"    " + call}
	}
	return []string{fmt.Sprintf("    ret = %s", call)}
}

func (*callerGen) PrefixHook(*ctypes.Prototype, *State) Hook  { return nil }
func (*callerGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// ---------------------------------------------------------------------
// call counter

type callCounterGen struct{}

// MGCallCounter counts invocations per wrapped function.
func MGCallCounter() MicroGenerator { return callCounterGen{} }

func (callCounterGen) Name() string { return "call counter" }

func (callCounterGen) PrefixSource(proto *ctypes.Prototype) []string {
	return []string{fmt.Sprintf("    ++call_counter_num_calls[%s];", fnIndexMacro(proto))}
}
func (callCounterGen) PostfixSource(*ctypes.Prototype) []string { return nil }

func (callCounterGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		st.AddCall(ctx.Env, ctx.FuncIndex)
		return nil
	}
}
func (callCounterGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// fnIndexMacro renders the per-function index constant used in generated
// array subscripts.
func fnIndexMacro(proto *ctypes.Prototype) string {
	return "NO_" + strings.ToUpper(proto.Name)
}

// ---------------------------------------------------------------------
// function exectime

type exectimeGen struct{}

// MGExectime measures time spent in the original function (the paper uses
// rdtsc; the simulation uses the monotonic clock). Besides the running
// total of Figure 3 it buckets every sample into the function's log2
// latency histogram, from which p50/p90/p99/max are derivable without
// keeping raw samples (HistQuantileNS).
func MGExectime() MicroGenerator { return exectimeGen{} }

func (exectimeGen) Name() string { return "function exectime" }

func (exectimeGen) PrefixSource(*ctypes.Prototype) []string {
	return []string{
		"    unsigned long long exectime_start;",
		"    unsigned long long exectime_end;",
		"    rdtsc(exectime_start);",
	}
}

func (exectimeGen) PostfixSource(proto *ctypes.Prototype) []string {
	return []string{
		"    rdtsc(exectime_end);",
		fmt.Sprintf("    exectime[%s] += exectime_end - exectime_start;", fnIndexMacro(proto)),
		fmt.Sprintf("    ++exectime_hist[%s][healers_log2(exectime_end - exectime_start)];", fnIndexMacro(proto)),
	}
}

func (exectimeGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		ctx.start = time.Now()
		return nil
	}
}

func (exectimeGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		st.addExecSample(ctx.Env, ctx.FuncIndex, time.Since(ctx.start))
		return nil
	}
}

// ---------------------------------------------------------------------
// errno collectors

type collectErrorsGen struct{}

// MGCollectErrors histograms errno changes across all wrapped functions.
func MGCollectErrors() MicroGenerator { return collectErrorsGen{} }

func (collectErrorsGen) Name() string { return "collect errors" }

func (collectErrorsGen) PrefixSource(*ctypes.Prototype) []string {
	return []string{"    int collect_errors_err = errno;"}
}

func (collectErrorsGen) PostfixSource(*ctypes.Prototype) []string {
	return []string{
		"    if (collect_errors_err != errno)",
		"        if (errno < 0 || errno >= MAX_ERRNO)",
		"            ++collect_errors_cnter[MAX_ERRNO];",
		"        else",
		"            ++collect_errors_cnter[errno];",
	}
}

func (collectErrorsGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		ctx.errnoCollect = ctx.Env.Errno
		return nil
	}
}

func (collectErrorsGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if ctx.Env.Errno != ctx.errnoCollect {
			st.addGlobalErrno(ctx.Env, errnoSlot(ctx.Env.Errno))
		}
		return nil
	}
}

type funcErrorsGen struct{}

// MGFuncErrors histograms errno changes per wrapped function.
func MGFuncErrors() MicroGenerator { return funcErrorsGen{} }

func (funcErrorsGen) Name() string { return "func errors" }

func (funcErrorsGen) PrefixSource(*ctypes.Prototype) []string {
	return []string{"    int func_error_err = errno;"}
}

func (funcErrorsGen) PostfixSource(proto *ctypes.Prototype) []string {
	return []string{
		"    if (func_error_err != errno)",
		"        if (errno < 0 || errno >= MAX_ERRNO)",
		fmt.Sprintf("            ++func_error_cnter[%s][MAX_ERRNO];", fnIndexMacro(proto)),
		"        else",
		fmt.Sprintf("            ++func_error_cnter[%s][errno];", fnIndexMacro(proto)),
	}
}

func (funcErrorsGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		ctx.errnoFunc = ctx.Env.Errno
		return nil
	}
}

func (funcErrorsGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if ctx.Env.Errno != ctx.errnoFunc {
			st.addFuncErrno(ctx.Env, ctx.FuncIndex, errnoSlot(ctx.Env.Errno))
		}
		return nil
	}
}

// ---------------------------------------------------------------------
// argument checks (robustness wrapper)

type argCheckGen struct {
	api ctypes.RobustAPI
}

// MGArgCheck validates every argument against the robust API derived by
// the fault-injection campaign; a violating call is denied with errno
// EDenied and an error return value instead of reaching the brittle
// implementation.
func MGArgCheck(api ctypes.RobustAPI) MicroGenerator { return &argCheckGen{api: api} }

func (*argCheckGen) Name() string { return "arg check" }

func (g *argCheckGen) PrefixSource(proto *ctypes.Prototype) []string {
	rules := g.api[proto.Name]
	var lines []string
	for i, r := range rules {
		if r.LevelName == "any" {
			continue
		}
		lines = append(lines,
			fmt.Sprintf("    if (!healers_check_%s(a%d, %s)) {", r.LevelName, i+1, "HEALERS_NEED("+proto.Name+")"),
			"        errno = EHEALERS_DENIED;",
			"        return HEALERS_ERRVAL;",
			"    }")
	}
	return lines
}

func (*argCheckGen) PostfixSource(*ctypes.Prototype) []string { return nil }

// denyValue picks the substitute return value for a denied call: NULL for
// pointer returns, -1 for integers.
func denyValue(proto *ctypes.Prototype) cval.Value {
	if proto.Ret.IsPointer() {
		return cval.Ptr(0)
	}
	return cval.Int(-1)
}

func (g *argCheckGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	rules := g.api[proto.Name]
	type check struct {
		param int
		level ctypes.Level
	}
	var checks []check
	for i, r := range rules {
		chain, ok := ctypes.ChainByName(r.Chain)
		if !ok || r.Level <= 0 {
			continue
		}
		lvl := r.Level
		if lvl >= len(chain.Levels) {
			// "uncontainable": enforce the strongest available level;
			// full protection additionally needs the containment
			// micro-generators or a bounded substitution.
			lvl = len(chain.Levels) - 1
		}
		// Levels are ordered weak to strong but their predicates are
		// not individually cumulative (writable_sized does not imply
		// NUL-terminated); enforce every rung up to the derived one.
		for k := 1; k <= lvl; k++ {
			checks = append(checks, check{param: i, level: chain.Levels[k]})
		}
	}
	// Copy-style functions: write destinations whose source range is
	// identifiable get an overlap check — overlapping src/dst is
	// undefined behaviour in C (strcpy can self-propagate without
	// bound), so the wrapper denies it unless the function documents
	// overlap as legal (memmove's overlap_ok annotation).
	type overlapPair struct{ dst, src int }
	var overlaps []overlapPair
	for i, p := range proto.Params {
		if p.OverlapOK || (p.Role != ctypes.RoleOutBuf && p.Role != ctypes.RoleInOutBuf) {
			continue
		}
		switch {
		case p.SrcStr >= 0:
			overlaps = append(overlaps, overlapPair{dst: i, src: p.SrcStr})
		case p.LenBy >= 0:
			for j, q := range proto.Params {
				if j != i && q.Role == ctypes.RoleInBuf && q.LenBy == p.LenBy {
					overlaps = append(overlaps, overlapPair{dst: i, src: j})
				}
			}
		}
	}
	if len(checks) == 0 && len(overlaps) == 0 {
		return nil
	}
	return func(ctx *CallCtx) *cmem.Fault {
		deny := func(reason string) {
			ctx.Denied = true
			ctx.DenyReason = reason
			ctx.Env.Errno = cval.EDenied
			ctx.Ret = denyValue(ctx.Proto)
			st.NoteDeny(ctx.Env, ctx.FuncIndex, reason)
		}
		for _, c := range checks {
			var v cval.Value
			if c.param < len(ctx.Args) {
				v = ctx.Args[c.param]
			}
			need := ctypes.NeedFor(ctx.Env, ctx.Proto, c.param, ctx.Args)
			if !c.level.Check(ctx.Env, v, need) {
				deny(fmt.Sprintf("%s: arg %d fails %s", ctx.Proto.Name, c.param+1, c.level.Name))
				return nil
			}
		}
		for _, ov := range overlaps {
			if ov.dst >= len(ctx.Args) || ov.src >= len(ctx.Args) {
				continue
			}
			dst, src := ctx.Args[ov.dst].Addr(), ctx.Args[ov.src].Addr()
			dn := ctypes.NeedFor(ctx.Env, ctx.Proto, ov.dst, ctx.Args).Bytes
			sn := ctypes.NeedFor(ctx.Env, ctx.Proto, ov.src, ctx.Args).Bytes
			if dn == 0 {
				dn = 1
			}
			if sn == 0 {
				sn = dn
			}
			if dst < src+cmem.Addr(sn) && src < dst+cmem.Addr(dn) {
				deny(fmt.Sprintf("%s: overlapping source and destination", ctx.Proto.Name))
				return nil
			}
		}
		return nil
	}
}

func (*argCheckGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// ---------------------------------------------------------------------
// heap integrity (security wrapper, detection)

type heapCheckGen struct{}

// MGHeapCheck verifies heap canaries and mirrored chunk headers on entry
// and exit of every intercepted call; a violation terminates the process —
// the fault-containment defence of the §3.4 demo. It also switches canary
// placement on for all future allocations of the process.
func MGHeapCheck() MicroGenerator { return heapCheckGen{} }

func (heapCheckGen) Name() string { return "heap check" }

func (heapCheckGen) PrefixSource(*ctypes.Prototype) []string {
	return []string{
		"    healers_heap_enable_canaries();",
		"    if (healers_heap_check() != 0)",
		"        healers_terminate(\"heap smashed (pre)\");",
	}
}

func (heapCheckGen) PostfixSource(*ctypes.Prototype) []string {
	return []string{
		"    if (healers_heap_check() != 0)",
		"        healers_terminate(\"heap smashed (post)\");",
	}
}

func (heapCheckGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		heap := ctx.Env.Img.Heap
		if !heap.CanariesEnabled() {
			heap.SetCanaries(true)
			// Frames pushed from here on get stack canaries too —
			// the StackGuard-style defence of the paper's reference
			// [1] (Baratloo, Singh & Tsai).
			ctx.Env.Img.Stack.SetGuards(true)
		}
		if f := heap.CheckIntegrity(); f != nil {
			st.addOverflow(ctx.Env)
			return f
		}
		if f := ctx.Env.Img.Stack.CheckGuards(); f != nil {
			st.addOverflow(ctx.Env)
			return f
		}
		return nil
	}
}

func (heapCheckGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if f := ctx.Env.Img.Heap.CheckIntegrity(); f != nil {
			st.addOverflow(ctx.Env)
			return f
		}
		// A library call that wrote through a stack buffer (read into
		// a local, gets into a local) is detected here, before the
		// caller can return through the smashed frame.
		if f := ctx.Env.Img.Stack.CheckGuards(); f != nil {
			st.addOverflow(ctx.Env)
			return f
		}
		return nil
	}
}

// ---------------------------------------------------------------------
// bound checks (security wrapper, prevention)

type boundCheckGen struct{}

// MGBoundCheck prevents heap buffer overflows before they happen: for
// every output-buffer argument whose required size is computable from the
// call (strcpy's dst needs strlen(src)+1), it verifies the destination's
// heap chunk has room. A violating call terminates the process instead of
// smashing the heap.
func MGBoundCheck() MicroGenerator { return boundCheckGen{} }

func (boundCheckGen) Name() string { return "bound check" }

func (boundCheckGen) PrefixSource(proto *ctypes.Prototype) []string {
	var lines []string
	for i, p := range proto.Params {
		if p.Role != ctypes.RoleOutBuf && p.Role != ctypes.RoleInOutBuf {
			continue
		}
		lines = append(lines,
			fmt.Sprintf("    if (healers_chunk_room(a%d) < HEALERS_NEED(%s))", i+1, proto.Name),
			"        healers_terminate(\"buffer overflow prevented\");")
	}
	return lines
}

func (boundCheckGen) PostfixSource(*ctypes.Prototype) []string { return nil }

func (boundCheckGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	var params []int
	for i, p := range proto.Params {
		if p.Role == ctypes.RoleOutBuf || p.Role == ctypes.RoleInOutBuf {
			params = append(params, i)
		}
	}
	if len(params) == 0 {
		return nil
	}
	return func(ctx *CallCtx) *cmem.Fault {
		for _, i := range params {
			if i >= len(ctx.Args) {
				continue
			}
			dst := ctx.Args[i].Addr()
			need := ctypes.NeedFor(ctx.Env, ctx.Proto, i, ctx.Args)
			if need.Bytes == 0 || dst.IsNull() {
				continue
			}
			base, size, ok := ctx.Env.Img.Heap.ChunkRange(dst)
			if !ok {
				continue // not a heap buffer; canaries cover the rest
			}
			room := uint32(base) + size - uint32(dst)
			if dst < base || uint32(dst) > uint32(base)+size {
				room = 0
			}
			if need.Bytes > room {
				st.addOverflow(ctx.Env)
				return &cmem.Fault{
					Kind: cmem.FaultOverflow, Addr: dst, Op: ctx.Proto.Name,
					Detail: fmt.Sprintf("write of %d bytes into %d-byte chunk prevented", need.Bytes, room),
				}
			}
		}
		return nil
	}
}

func (boundCheckGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// ---------------------------------------------------------------------
// format-string checks (security wrapper)

type fmtCheckGen struct{}

// MGFmtCheck denies calls whose format-string argument contains the %n
// directive or is not a valid string — the format-string-attack defence.
func MGFmtCheck() MicroGenerator { return fmtCheckGen{} }

func (fmtCheckGen) Name() string { return "fmt check" }

func (fmtCheckGen) PrefixSource(proto *ctypes.Prototype) []string {
	var lines []string
	for i, p := range proto.Params {
		if p.Role != ctypes.RoleFmt {
			continue
		}
		lines = append(lines,
			fmt.Sprintf("    if (!healers_check_fmt_no_percent_n(a%d)) {", i+1),
			"        errno = EHEALERS_DENIED;",
			"        return HEALERS_ERRVAL;",
			"    }")
	}
	return lines
}

func (fmtCheckGen) PostfixSource(*ctypes.Prototype) []string { return nil }

func (fmtCheckGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	var params []int
	for i, p := range proto.Params {
		if p.Role == ctypes.RoleFmt {
			params = append(params, i)
		}
	}
	if len(params) == 0 {
		return nil
	}
	strongest := ctypes.ChainFmt.Levels[ctypes.ChainFmt.Strongest()]
	return func(ctx *CallCtx) *cmem.Fault {
		for _, i := range params {
			var v cval.Value
			if i < len(ctx.Args) {
				v = ctx.Args[i]
			}
			if !strongest.Check(ctx.Env, v, ctypes.Need{}) {
				ctx.Denied = true
				ctx.DenyReason = fmt.Sprintf("%s: format string rejected", ctx.Proto.Name)
				ctx.Env.Errno = cval.EDenied
				ctx.Ret = denyValue(ctx.Proto)
				st.NoteDeny(ctx.Env, ctx.FuncIndex, ctx.DenyReason)
				return nil
			}
		}
		return nil
	}
}

func (fmtCheckGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }

// ---------------------------------------------------------------------
// trace ring

type traceGen struct {
	capacity int
}

// MGTrace keeps a bounded ring of the most recent intercepted calls —
// function name, rendered arguments, duration, and outcome ("ok",
// "denied", or "errno=<name>") — for post-mortem inspection
// (healers-profile -trace). The ring holds the given number of entries;
// when several trace micro-generators share one wrapper state the
// largest capacity wins. Entries never leave the process unless the
// profile document serializes them, so the overhead is one ring slot
// write per call.
func MGTrace(capacity int) MicroGenerator { return &traceGen{capacity: capacity} }

func (*traceGen) Name() string { return "trace" }

func (g *traceGen) PrefixSource(*ctypes.Prototype) []string {
	return []string{
		"    unsigned long long trace_start;",
		"    int trace_err = errno;",
		"    rdtsc(trace_start);",
	}
}

func (g *traceGen) PostfixSource(proto *ctypes.Prototype) []string {
	return []string{
		"    unsigned long long trace_end;",
		"    rdtsc(trace_end);",
		fmt.Sprintf("    healers_trace_record(%s, trace_end - trace_start, trace_err);", fnIndexMacro(proto)),
	}
}

// traceMaxArgs caps how many argument words one trace entry renders.
const traceMaxArgs = 8

// summarizeArgs renders a call's argument words for a trace entry.
func summarizeArgs(args []cval.Value) string {
	n := len(args)
	truncated := false
	if n > traceMaxArgs {
		n = traceMaxArgs
		truncated = true
	}
	parts := make([]string, 0, n+1)
	for _, v := range args[:n] {
		parts = append(parts, v.String())
	}
	if truncated {
		parts = append(parts, "...")
	}
	return strings.Join(parts, ", ")
}

func (g *traceGen) PrefixHook(proto *ctypes.Prototype, st *State) Hook {
	st.SetTraceCap(g.capacity)
	return func(ctx *CallCtx) *cmem.Fault {
		ctx.traceStart = time.Now()
		ctx.errnoTrace = ctx.Env.Errno
		return nil
	}
}

func (g *traceGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		outcome := "ok"
		switch {
		case ctx.Denied:
			outcome = "denied"
		case ctx.Env.Errno != ctx.errnoTrace:
			outcome = "errno=" + cval.ErrnoName(ctx.Env.Errno)
		}
		st.AddTrace(TraceEntry{
			Func:    proto.Name,
			Args:    summarizeArgs(ctx.Args),
			Dur:     time.Since(ctx.traceStart),
			Outcome: outcome,
		})
		return nil
	}
}

// ---------------------------------------------------------------------
// exit flush (profiling wrapper)

type exitFlushGen struct{}

// MGExitFlush fires the wrapper state's OnExit hook when the wrapped
// process terminates voluntarily — the collection trigger of §2.3.
func MGExitFlush() MicroGenerator { return exitFlushGen{} }

func (exitFlushGen) Name() string { return "exit flush" }

func (exitFlushGen) PrefixSource(*ctypes.Prototype) []string { return nil }

func (exitFlushGen) PostfixSource(proto *ctypes.Prototype) []string {
	if proto.Name != "exit" {
		return nil
	}
	return []string{"    healers_flush_collected_data();"}
}

func (exitFlushGen) PrefixHook(*ctypes.Prototype, *State) Hook { return nil }

func (exitFlushGen) PostfixHook(proto *ctypes.Prototype, st *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		if !ctx.Env.Exited || st.OnExit == nil {
			return nil
		}
		// Latch per process: stacked exit paths flush once.
		if _, done := ctx.Env.Statics["healers_flushed"]; done {
			return nil
		}
		ctx.Env.Statics["healers_flushed"] = true
		st.OnExit(ctx.Env, st)
		return nil
	}
}
