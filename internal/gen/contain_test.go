package gen

import (
	"strings"
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// stubPolicy is a canned ContainPolicy for tests: a fixed decision plus
// a simple trip-after-threshold breaker.
type stubPolicy struct {
	decision  ContainDecision
	threshold int
	failures  int
	tripped   bool
}

func (p *stubPolicy) Decide(string, FailureClass) ContainDecision { return p.decision }

func (p *stubPolicy) RecordFailure(string, FailureClass) bool {
	p.failures++
	if p.threshold > 0 && p.failures >= p.threshold && !p.tripped {
		p.tripped = true
		return true
	}
	return false
}

func (p *stubPolicy) Tripped(string) bool { return p.tripped }

func intProto(t *testing.T) *ctypes.Prototype {
	t.Helper()
	p, err := cheader.ParsePrototype("int f(int a);")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func containGenOf(policy ContainPolicy) *Generator {
	return MustGenerator(MGPrototype(), MGWatchdog(0), MGContain(policy), MGCaller())
}

func TestContainVirtualizesCrash(t *testing.T) {
	st := NewState("libcontain.so")
	env, call := wrapLibc(t, containGenOf(nil), st, "strlen")

	// strlen(NULL) faults in the real implementation; the containment
	// wrapper must survive it as an errno return.
	v, f := call("strlen", cval.Ptr(0))
	if f != nil {
		t.Fatalf("contained call faulted: %v", f)
	}
	if env.Errno != cval.EFAULT {
		t.Errorf("errno = %d, want EFAULT", env.Errno)
	}
	if v.Int32() != -1 {
		t.Errorf("virtualized return = %d, want -1", v.Int32())
	}
	st.Sync()
	idx := st.Index("strlen")
	if st.ContainedCount[idx] != 1 {
		t.Errorf("ContainedCount = %d, want 1", st.ContainedCount[idx])
	}
	if len(st.DenyLog) == 0 || !strings.Contains(st.DenyLog[0], "contained crash") {
		t.Errorf("DenyLog = %v", st.DenyLog)
	}
	// The process survives: a healthy call still works afterwards.
	s, _ := env.Img.StaticString("alive")
	v, f = call("strlen", cval.Ptr(s))
	if f != nil || v.Uint32() != 5 {
		t.Errorf("post-containment strlen = %v, %v", v, f)
	}
	if env.Img.Space.JournalActive() {
		t.Error("journal left armed after calls")
	}
}

func TestContainRollsBackPartialWrites(t *testing.T) {
	st := NewState("libcontain.so")
	env, call := wrapLibc(t, containGenOf(nil), st, "strcpy")

	// A destination with 4 writable bytes before unmapped space: strcpy
	// copies 4 bytes, faults on the 5th, and containment must erase the
	// partial copy.
	const base = cmem.Addr(0x00900000)
	if f := env.Img.Space.Map(base, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatal(f)
	}
	dst := base + cmem.PageSize - 4
	src, _ := env.Img.StaticString("overflowing")

	if _, f := call("strcpy", cval.Ptr(dst), cval.Ptr(src)); f != nil {
		t.Fatalf("contained strcpy faulted: %v", f)
	}
	if env.Errno != cval.EFAULT {
		t.Errorf("errno = %d, want EFAULT", env.Errno)
	}
	var buf [4]byte
	if f := env.Img.Space.Read(dst, buf[:]); f != nil {
		t.Fatal(f)
	}
	if buf != [4]byte{} {
		t.Errorf("partial strcpy not rolled back: %q", buf)
	}
}

func TestWatchdogConvertsHangToEINTR(t *testing.T) {
	st := NewState("libcontain.so")
	g := MustGenerator(MGPrototype(), MGWatchdog(64), MGCaller())
	env, call := wrapLibc(t, g, st, "strlen")

	// 200 non-NUL bytes: strlen burns through the 64-access budget.
	const base = cmem.Addr(0x00900000)
	if f := env.Img.Space.Map(base, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatal(f)
	}
	for i := cmem.Addr(0); i < 200; i++ {
		if f := env.Img.Space.WriteByteAt(base+i, 'A'); f != nil {
			t.Fatal(f)
		}
	}
	v, f := call("strlen", cval.Ptr(base))
	if f != nil {
		t.Fatalf("watchdogged call faulted: %v", f)
	}
	if env.Errno != cval.EINTR {
		t.Errorf("errno = %d, want EINTR", env.Errno)
	}
	if v.Int32() != -1 {
		t.Errorf("return = %d, want -1", v.Int32())
	}
	st.Sync()
	if st.ContainedCount[st.Index("strlen")] != 1 {
		t.Errorf("ContainedCount = %d, want 1", st.ContainedCount[st.Index("strlen")])
	}
	// The per-call budget is gone; the process's fuel is unlimited again.
	if env.Img.Space.Fuel() != -1 {
		t.Errorf("fuel after call = %d, want -1 (restored)", env.Img.Space.Fuel())
	}
}

func TestWatchdogHonorsTighterOuterBudget(t *testing.T) {
	st := NewState("libcontain.so")
	g := MustGenerator(MGPrototype(), MGWatchdog(1<<20), MGCaller())
	env, call := wrapLibc(t, g, st, "strlen")

	s, _ := env.Img.StaticString("hi")
	// An injector-style outer budget smaller than the watchdog's must
	// stay in force and keep draining across calls.
	env.Img.Space.SetFuel(1000)
	if _, f := call("strlen", cval.Ptr(s)); f != nil {
		t.Fatalf("call under outer budget: %v", f)
	}
	rem := env.Img.Space.Fuel()
	if rem < 0 || rem >= 1000 {
		t.Errorf("outer fuel after call = %d, want 0 < fuel < 1000", rem)
	}
}

// TestWatchdogFuelRestoreTable drives the fuel-restore arithmetic of
// the watchdog postfix through its edges: unlimited outer fuel, an
// outer budget looser or tighter than the watchdog's, and a call that
// exhausts its budget to exactly 0. The wrapped function simulates
// consumption by decrementing fuel directly, so each case's usage is
// exact.
func TestWatchdogFuelRestoreTable(t *testing.T) {
	const budget = 100
	cases := []struct {
		name    string
		outer   int64 // fuel before the call; -1 = unlimited
		consume int64 // fuel the inner call burns (from its armed view)
		want    int64 // fuel after the call returns
	}{
		{"unlimited_outer", -1, 30, -1},
		{"unlimited_outer_exhaust_to_zero", -1, budget, -1},
		{"looser_outer_charged", 1000, 30, 970},
		{"looser_outer_exhaust_to_zero", 150, budget, 50},
		{"outer_equals_usage", budget + 0, 20, 80}, // prev==budget: not armed, drains outer directly
		{"tighter_outer_untouched", 50, 20, 30},    // watchdog must not extend the probe deadline
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := intProto(t)
			st := NewState("w")
			var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
				sp := env.Img.Space
				if f := sp.Fuel(); f >= 0 {
					sp.SetFuel(f - c.consume)
				}
				return cval.Int(0), nil
			}
			g := MustGenerator(MGPrototype(), MGWatchdog(budget), MGCaller())
			w := g.Build(p, &next, st)
			env := cval.NewEnv()
			env.Img.Space.SetFuel(c.outer)
			if _, f := w(env, []cval.Value{cval.Int(1)}); f != nil {
				t.Fatalf("call faulted: %v", f)
			}
			if got := env.Img.Space.Fuel(); got != c.want {
				t.Errorf("fuel after call = %d, want %d", got, c.want)
			}
		})
	}
}

// TestWatchdogNestedBudgetsStack pins nested watchdog composition: an
// inner (tighter) watchdog's usage must be charged against the outer
// watchdog's budget, and the outer must still restore the original
// fuel — with one shared save slot instead of a stack, the outer
// watchdog's restore was silently skipped.
func TestWatchdogNestedBudgetsStack(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	const consume = 25
	var sawFuel int64
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		sp := env.Img.Space
		sawFuel = sp.Fuel()
		sp.SetFuel(sawFuel - consume)
		return cval.Int(0), nil
	}
	g := MustGenerator(MGPrototype(), MGWatchdog(100), MGWatchdog(40), MGCaller())
	w := g.Build(p, &next, st)
	env := cval.NewEnv()
	if _, f := w(env, []cval.Value{cval.Int(1)}); f != nil {
		t.Fatalf("nested watchdog call faulted: %v", f)
	}
	if sawFuel != 40 {
		t.Errorf("inner call saw fuel %d, want 40 (innermost budget wins)", sawFuel)
	}
	if got := env.Img.Space.Fuel(); got != -1 {
		t.Errorf("fuel after nested call = %d, want -1 (fully restored)", got)
	}

	// Under an outer probe budget, both pops charge the usage through.
	env.Img.Space.SetFuel(500)
	if _, f := w(env, []cval.Value{cval.Int(1)}); f != nil {
		t.Fatalf("nested watchdog call under probe budget faulted: %v", f)
	}
	if got := env.Img.Space.Fuel(); got != 500-consume {
		t.Errorf("probe fuel after nested call = %d, want %d", got, 500-consume)
	}
}

func TestContainRetrySucceeds(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	policy := &stubPolicy{decision: ContainDecision{Action: ActionRetry, Retries: 3}}
	calls := 0
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		calls++
		if calls < 3 {
			return 0, &cmem.Fault{Kind: cmem.FaultSegv, Op: "f"}
		}
		return cval.Int(7), nil
	}
	w := containGenOf(policy).Build(p, &next, st)
	env := cval.NewEnv()
	v, f := w(env, []cval.Value{cval.Int(1)})
	if f != nil {
		t.Fatalf("retried call faulted: %v", f)
	}
	if v.Int32() != 7 {
		t.Errorf("retried return = %d, want 7", v.Int32())
	}
	if calls != 3 {
		t.Errorf("original invoked %d times, want 3", calls)
	}
	st.Sync()
	idx := st.Index("f")
	if st.RetriedCount[idx] != 2 {
		t.Errorf("RetriedCount = %d, want 2", st.RetriedCount[idx])
	}
	if st.ContainedCount[idx] != 0 {
		t.Errorf("ContainedCount = %d, want 0 (recovered by retry)", st.ContainedCount[idx])
	}
	if st.PassedCount[idx] != 1 {
		t.Errorf("PassedCount = %d, want 1", st.PassedCount[idx])
	}
}

func TestContainRetryExhaustedFallsBackToDeny(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	policy := &stubPolicy{decision: ContainDecision{Action: ActionRetry, Retries: 2}}
	calls := 0
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		calls++
		return 0, &cmem.Fault{Kind: cmem.FaultSegv, Op: "f"}
	}
	w := containGenOf(policy).Build(p, &next, st)
	env := cval.NewEnv()
	v, f := w(env, []cval.Value{cval.Int(1)})
	if f != nil {
		t.Fatalf("call faulted after retry exhaustion: %v", f)
	}
	if calls != 3 { // original + 2 retries
		t.Errorf("original invoked %d times, want 3", calls)
	}
	if v.Int32() != -1 || env.Errno != cval.EFAULT {
		t.Errorf("ret=%d errno=%d, want -1/EFAULT", v.Int32(), env.Errno)
	}
	st.Sync()
	idx := st.Index("f")
	if st.RetriedCount[idx] != 2 || st.ContainedCount[idx] != 1 {
		t.Errorf("RetriedCount=%d ContainedCount=%d, want 2/1",
			st.RetriedCount[idx], st.ContainedCount[idx])
	}
}

func TestContainSubstituteReturnsSafeDefault(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	sub := cval.Int(42)
	policy := &stubPolicy{decision: ContainDecision{Action: ActionSubstitute, Substitute: &sub}}
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "f"}
	}
	w := containGenOf(policy).Build(p, &next, st)
	env := cval.NewEnv()
	v, f := w(env, []cval.Value{cval.Int(1)})
	if f != nil {
		t.Fatalf("substituted call faulted: %v", f)
	}
	if v.Int32() != 42 {
		t.Errorf("substituted return = %d, want 42", v.Int32())
	}
	if env.Errno != 0 {
		t.Errorf("substitution set errno %d, want untouched", env.Errno)
	}
}

func TestContainEscalatePropagates(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	policy := &stubPolicy{decision: ContainDecision{Action: ActionEscalate}}
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		return 0, &cmem.Fault{Kind: cmem.FaultHang, Op: "f"}
	}
	w := containGenOf(policy).Build(p, &next, st)
	_, f := w(cval.NewEnv(), []cval.Value{cval.Int(1)})
	if f == nil || f.Kind != cmem.FaultHang {
		t.Errorf("escalated fault = %v, want the original hang", f)
	}
	st.Sync()
	if st.ContainedCount[st.Index("f")] != 0 {
		t.Error("escalated fault counted as contained")
	}
}

func TestBreakerTripsToUpfrontDeny(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	policy := &stubPolicy{threshold: 2}
	calls := 0
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		calls++
		return 0, &cmem.Fault{Kind: cmem.FaultSegv, Op: "f"}
	}
	w := containGenOf(policy).Build(p, &next, st)
	env := cval.NewEnv()
	for i := 0; i < 2; i++ {
		if _, f := w(env, []cval.Value{cval.Int(1)}); f != nil {
			t.Fatalf("contained call %d faulted: %v", i, f)
		}
	}
	st.Sync()
	idx := st.Index("f")
	if st.BreakerTrips[idx] != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips[idx])
	}
	// The breaker is open: the brittle implementation is not poked again.
	env.Errno = 0
	v, f := w(env, []cval.Value{cval.Int(1)})
	if f != nil {
		t.Fatalf("post-trip call faulted: %v", f)
	}
	if calls != 2 {
		t.Errorf("original invoked %d times after trip, want 2", calls)
	}
	if env.Errno != cval.EDenied || v.Int32() != -1 {
		t.Errorf("post-trip ret=%d errno=%d, want -1/EDenied", v.Int32(), env.Errno)
	}
	st.Sync()
	if st.DeniedCount[idx] != 3 { // 2 contained + 1 breaker deny
		t.Errorf("DeniedCount = %d, want 3", st.DeniedCount[idx])
	}
}

// optInGen arms Contain without installing a consuming postfix, to prove
// the generator never silently swallows a caught fault.
type optInGen struct{}

func (optInGen) Name() string                               { return "opt-in" }
func (optInGen) PrefixSource(*ctypes.Prototype) []string    { return nil }
func (optInGen) PostfixSource(*ctypes.Prototype) []string   { return nil }
func (optInGen) PostfixHook(*ctypes.Prototype, *State) Hook { return nil }
func (optInGen) PrefixHook(*ctypes.Prototype, *State) Hook {
	return func(ctx *CallCtx) *cmem.Fault {
		ctx.Contain = true
		return nil
	}
}

func TestUnconsumedContainedFaultPropagates(t *testing.T) {
	p := intProto(t)
	st := NewState("w")
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		return 0, &cmem.Fault{Kind: cmem.FaultBus, Op: "f"}
	}
	w := MustGenerator(MGPrototype(), optInGen{}, MGCaller()).Build(p, &next, st)
	_, f := w(cval.NewEnv(), []cval.Value{cval.Int(1)})
	if f == nil || f.Kind != cmem.FaultBus {
		t.Errorf("unconsumed caught fault = %v, want the original bus error", f)
	}
}

func TestContainmentSourceRendering(t *testing.T) {
	p, err := cheader.ParsePrototype("size_t strlen(const char *s); // @s in_str")
	if err != nil {
		t.Fatal(err)
	}
	src := containGenOf(nil).Source(p)
	for _, want := range []string{
		"healers_fuel_push(1048576)",
		"healers_breaker_open(NO_STRLEN)",
		"healers_journal_begin();",
		"healers_journal_rollback();",
		"healers_recover(NO_STRLEN, healers_fault_class())",
		"HEALERS_RETRY",
		"healers_fuel_pop();",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("containment source missing %q:\n%s", want, src)
		}
	}
}

func TestClassifyFaultAndErrno(t *testing.T) {
	cases := []struct {
		kind  cmem.FaultKind
		class FailureClass
		errno int32
	}{
		{cmem.FaultSegv, ClassCrash, cval.EFAULT},
		{cmem.FaultBus, ClassCrash, cval.EFAULT},
		{cmem.FaultProt, ClassCrash, cval.EFAULT},
		{cmem.FaultOverflow, ClassCrash, cval.EFAULT},
		{cmem.FaultHang, ClassHang, cval.EINTR},
		{cmem.FaultAbort, ClassAbort, cval.EINVAL},
		{cmem.FaultFPE, ClassAbort, cval.EINVAL},
		{cmem.FaultOOM, ClassOOM, cval.EINVAL},
	}
	for _, c := range cases {
		got := ClassifyFault(&cmem.Fault{Kind: c.kind})
		if got != c.class {
			t.Errorf("ClassifyFault(%v) = %v, want %v", c.kind, got, c.class)
		}
		if e := ContainErrno(got); e != c.errno {
			t.Errorf("ContainErrno(%v) = %d, want %d", got, e, c.errno)
		}
	}
	if a, ok := ContainActionByName("retry"); !ok || a != ActionRetry {
		t.Errorf("ContainActionByName(retry) = %v, %v", a, ok)
	}
	if _, ok := ContainActionByName("bogus"); ok {
		t.Error("bogus action name accepted")
	}
}

func TestStateResetClearsContainmentCounters(t *testing.T) {
	st := NewState("w")
	idx := st.Index("f")
	st.noteContained(nil, idx, ClassCrash)
	st.noteRetry(nil, idx)
	st.noteBreakerTrip(nil, idx)
	st.Reset()
	if st.ContainedByClass[idx][ClassCrash] != 0 {
		t.Errorf("Reset left per-class contained counter: %d", st.ContainedByClass[idx][ClassCrash])
	}
	if st.ContainedCount[idx] != 0 || st.RetriedCount[idx] != 0 || st.BreakerTrips[idx] != 0 {
		t.Errorf("Reset left containment counters: %d/%d/%d",
			st.ContainedCount[idx], st.RetriedCount[idx], st.BreakerTrips[idx])
	}
}
