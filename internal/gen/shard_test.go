package gen

import (
	"sync"
	"testing"
	"time"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// TestShardedCaptureRaceHammer hammers one wrapped function from many
// goroutines — each with its own Env, and therefore its own counter
// shard — and asserts the merged counters are *exact* after the writers
// quiesce: bucket-sum == call-count, errno totals, and deny/pass splits
// all come out to the arithmetic of the workload, not merely
// race-detector-clean. A first phase interleaves Reset and Sync with
// live writers (no exactness is possible there — an in-flight increment
// may survive a Reset — but the race detector sees every pairing); the
// exact phase then starts from a quiesced Reset. Run under -race via
// make check.
func TestShardedCaptureRaceHammer(t *testing.T) {
	proto, err := cheader.ParsePrototype("size_t f(const char *s); // @s in_str")
	if err != nil {
		t.Fatal(err)
	}
	api := ctypes.RobustAPI{
		"f": {{Name: "s", Chain: "in_str", Level: 3, LevelName: "cstring"}},
	}
	st := NewState("libhammer.so")
	// Call counter sits before the arg check so denied calls are counted
	// too; every postfix (histogram, errno collectors) runs for denied
	// and passed calls alike, keeping the expected totals exact.
	g := MustGenerator(MGPrototype(), MGExectime(), MGCollectErrors(),
		MGFuncErrors(), MGCallCounter(), MGArgCheck(api), MGCaller())
	var next cval.CFunc = func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		env.Errno = cval.EINVAL
		return cval.Uint(3), nil
	}
	w := g.Build(proto, &next, st)
	idx := st.Index("f")

	const workers = 8
	const iters = 400 // even: half valid, half denied per worker

	hammer := func() {
		var wg sync.WaitGroup
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				env := cval.NewEnv()
				valid, f := env.Img.StaticString("abc")
				if f != nil {
					panic(f)
				}
				for i := 0; i < iters; i++ {
					env.Errno = 0
					arg := cval.Ptr(valid)
					if i%2 == 1 {
						arg = cval.Ptr(0) // fails the cstring check
					}
					if _, fault := w(env, []cval.Value{arg}); fault != nil {
						panic(fault)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: writers race with Reset and Sync. Only freedom from data
	// races is asserted here.
	done := make(chan struct{})
	go func() {
		defer close(done)
		hammer()
	}()
	for i := 0; i < 50; i++ {
		st.Reset()
		st.Sync()
	}
	<-done

	// Phase 2: quiesced Reset, then an exact workload.
	st.Reset()
	hammer()
	st.Sync()

	const calls = workers * iters
	const denied = calls / 2
	const passed = calls - denied
	if got := st.TotalCalls(); got != calls {
		t.Errorf("TotalCalls = %d, want %d", got, calls)
	}
	if st.CallCount[idx] != calls {
		t.Errorf("CallCount = %d, want %d", st.CallCount[idx], calls)
	}
	if got := HistTotal(st.ExecHist[idx]); got != calls {
		t.Errorf("histogram bucket sum = %d, want %d (== call count)", got, calls)
	}
	if st.PassedCount[idx] != passed {
		t.Errorf("PassedCount = %d, want %d", st.PassedCount[idx], passed)
	}
	if st.DeniedCount[idx] != denied {
		t.Errorf("DeniedCount = %d, want %d", st.DeniedCount[idx], denied)
	}
	// Every call flips errno (0 -> EINVAL when passed, 0 -> EDenied when
	// vetoed; EDenied clamps to the histogram's overflow slot), so both
	// errno histograms account every call exactly.
	if got := st.FuncErrno[idx][cval.EINVAL]; got != passed {
		t.Errorf("FuncErrno[EINVAL] = %d, want %d", got, passed)
	}
	if got := st.FuncErrno[idx][cval.MaxErrno]; got != denied {
		t.Errorf("FuncErrno[EDenied overflow slot] = %d, want %d", got, denied)
	}
	if got := st.GlobalErrno[cval.EINVAL]; got != passed {
		t.Errorf("GlobalErrno[EINVAL] = %d, want %d", got, passed)
	}
	if got := st.GlobalErrno[cval.MaxErrno]; got != denied {
		t.Errorf("GlobalErrno[EDenied overflow slot] = %d, want %d", got, denied)
	}
	if got := len(st.DenyLog); got != DenyLogCap {
		t.Errorf("DenyLog length = %d, want capped at %d", got, DenyLogCap)
	}
	// Sync is idempotent once the shards are drained.
	st.Sync()
	if got := st.TotalCalls(); got != calls {
		t.Errorf("TotalCalls after second Sync = %d, want %d (double-fold)", got, calls)
	}
}

// BenchmarkShardCounterCapture prices one call's worth of pure counter
// capture — call count, latency histogram bucket, global and
// per-function errno — on the sharded path, with the wrapper
// scaffolding and timestamping a full interception adds stripped away.
// This is the cost the sharding bounds: a handful of uncontended atomic
// adds into the goroutine's own shard. Run with -cpu 1,4,8; the
// end-to-end view lives in the root package's
// BenchmarkCaptureContention.
func BenchmarkShardCounterCapture(b *testing.B) {
	st := NewState("bench-shard")
	idx := st.Index("f")
	slot := errnoSlot(cval.EINVAL)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		env := cval.NewEnv() // own Env, own counter shard
		for pb.Next() {
			st.AddCall(env, idx)
			st.addExecSample(env, idx, 1500*time.Nanosecond)
			st.addGlobalErrno(env, slot)
			st.addFuncErrno(env, idx, slot)
		}
	})
	b.StopTimer()
	st.Sync()
	if st.CallCount[idx] != uint64(b.N) {
		b.Fatalf("CallCount = %d, want %d (lost increments)", st.CallCount[idx], b.N)
	}
	if hist := HistTotal(st.ExecHist[idx]); hist != uint64(b.N) {
		b.Fatalf("bucket sum %d != %d calls", hist, b.N)
	}
}
