package gen

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Latency histograms use fixed log2 buckets: bucket b counts calls whose
// duration d satisfies 2^b ns <= d < 2^(b+1) ns (durations under 1 ns
// land in bucket 0). The layout is shared verbatim by the capture path
// (the exectime micro-generator), the XML profile document, the
// collection server's streaming merge, and the /metrics endpoint — a
// fleet-wide merge is element-wise addition and a percentile query is one
// O(HistBuckets) walk, never a re-parse of raw samples.

// HistBuckets is the number of log2 latency buckets. 40 buckets cover
// 1 ns up to ~18 minutes per call; anything slower saturates into the
// last bucket.
const HistBuckets = 40

// HistBucket returns the histogram bucket index for one duration.
func HistBucket(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistUpperNS returns bucket i's inclusive nanosecond upper bound,
// 2^(i+1)-1; the last bucket is unbounded.
func HistUpperNS(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<(i+1) - 1
}

// HistTotal sums a histogram's bucket counts — the number of recorded
// samples.
func HistTotal(buckets []uint64) uint64 {
	var n uint64
	for _, c := range buckets {
		n += c
	}
	return n
}

// HistQuantileNS returns the q-quantile latency estimate of a log2
// histogram in nanoseconds: the upper bound of the bucket containing the
// ceil(q*total)-th sample (so q=0.5 is p50, q=1 the maximum bucket's
// bound). It returns 0 for an empty histogram.
func HistQuantileNS(buckets []uint64, q float64) int64 {
	total := HistTotal(buckets)
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen >= rank {
			return HistUpperNS(i)
		}
	}
	return HistUpperNS(len(buckets) - 1)
}

// FormatNS renders a nanosecond bound compactly for reports
// ("≤" labels of histogram percentiles).
func FormatNS(ns int64) string {
	switch {
	case ns >= math.MaxInt64:
		return "inf"
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.3gs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.3gms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.3gµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// TraceEntry is one record of the trace micro-generator's bounded ring:
// a recently intercepted call with its rendered arguments, duration, and
// outcome, kept for post-mortem inspection (healers-profile -trace).
type TraceEntry struct {
	// Seq is the 1-based global sequence number of the call across the
	// wrapper library; gaps at the front mean the ring wrapped.
	Seq uint64
	// Func is the wrapped function's name.
	Func string
	// Args renders the caller's argument words.
	Args string
	// Dur is the wall time between the trace micro-generator's prefix
	// and postfix hooks — the call's duration including any inner
	// micro-generators.
	Dur time.Duration
	// Outcome is "ok", "denied", or "errno=<name>" when the call
	// changed errno.
	Outcome string
}
