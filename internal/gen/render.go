package gen

import (
	"fmt"
	"strings"

	"healers/internal/ctypes"
)

// Source renders the generated wrapper's C-like source for one prototype,
// in the exact layout of the paper's Figure 3: each micro-generator's
// prefix fragment in declaration order, then the postfix fragments in
// reverse order, every fragment labelled with the micro-generator that
// produced it.
func (g *Generator) Source(proto *ctypes.Prototype) string {
	var b strings.Builder
	for _, m := range g.micros {
		lines := m.PrefixSource(proto)
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "/* Prefix code by micro-gen %s */\n", m.Name())
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	for i := len(g.micros) - 1; i >= 0; i-- {
		m := g.micros[i]
		lines := m.PostfixSource(proto)
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(&b, "/* Postfix code by micro-gen %s */\n", m.Name())
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// LibrarySource renders the generated source for every prototype,
// separated by blank lines — what the toolkit would compile into the
// wrapper shared object.
func (g *Generator) LibrarySource(protos []*ctypes.Prototype) string {
	var parts []string
	for _, p := range protos {
		parts = append(parts, g.Source(p))
	}
	return strings.Join(parts, "\n")
}
