package gen

import (
	"strings"
	"testing"

	"healers/internal/cheader"
	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// buildOne wires a single prototype's wrapper directly to its libc
// implementation (no link map) for focused micro-generator tests.
func buildOne(t *testing.T, g *Generator, st *State, fn string) (cval.CFunc, *cval.Env) {
	t.Helper()
	libc := clib.MustRegistry().AsLibrary()
	proto := libc.Proto(fn)
	if proto == nil {
		t.Fatalf("no proto for %s", fn)
	}
	base, _ := libc.Lookup(fn)
	next := base
	return g.Build(proto, &next, st), cval.NewEnv()
}

func TestHeapCheckMicroDetectsAndArms(t *testing.T) {
	g := MustGenerator(MGPrototype(), MGHeapCheck(), MGCaller())
	st := NewState("w")
	wrapped, env := buildOne(t, g, st, "strlen")
	s, _ := env.Img.StaticString("x")

	if env.Img.Heap.CanariesEnabled() {
		t.Fatal("canaries on before first intercepted call")
	}
	if _, f := wrapped(env, []cval.Value{cval.Ptr(s)}); f != nil {
		t.Fatalf("clean call: %v", f)
	}
	if !env.Img.Heap.CanariesEnabled() {
		t.Error("first intercepted call did not arm canaries")
	}
	// Smash a canaried chunk; the next wrapped call must detect it.
	p := env.Img.Heap.Malloc(8)
	env.Img.Space.WriteByteAt(p+8, 0x41)
	if _, f := wrapped(env, []cval.Value{cval.Ptr(s)}); f == nil || f.Kind != cmem.FaultOverflow {
		t.Errorf("post-smash call: fault = %v, want OVERFLOW", f)
	}
	st.Sync()
	if st.Overflows != 1 {
		t.Errorf("Overflows = %d", st.Overflows)
	}
	// Source fragments mention the check.
	proto, _ := cheader.ParsePrototype("size_t strlen(const char *s); // @s in_str")
	src := g.Source(proto)
	if !strings.Contains(src, "healers_heap_check") || !strings.Contains(src, "healers_heap_enable_canaries") {
		t.Errorf("heap-check source:\n%s", src)
	}
}

func TestBoundCheckMicroPreventsOverflow(t *testing.T) {
	g := MustGenerator(MGPrototype(), MGBoundCheck(), MGCaller())
	st := NewState("w")
	wrapped, env := buildOne(t, g, st, "strcpy")

	dst := env.Img.Heap.Malloc(8)
	small, _ := env.Img.StaticString("ok")
	if _, f := wrapped(env, []cval.Value{cval.Ptr(dst), cval.Ptr(small)}); f != nil {
		t.Fatalf("fitting copy: %v", f)
	}
	long, _ := env.Img.StaticString(strings.Repeat("A", 40))
	_, f := wrapped(env, []cval.Value{cval.Ptr(dst), cval.Ptr(long)})
	if f == nil || f.Kind != cmem.FaultOverflow {
		t.Fatalf("overflowing copy: fault = %v, want OVERFLOW prevention", f)
	}
	if !strings.Contains(f.Detail, "prevented") {
		t.Errorf("fault detail = %q", f.Detail)
	}
	// Non-heap destinations are left to the canary layer.
	static, _ := env.Img.StaticAlloc(8)
	if _, f := wrapped(env, []cval.Value{cval.Ptr(static), cval.Ptr(small)}); f != nil {
		t.Errorf("static dst: %v", f)
	}
	proto, _ := cheader.ParsePrototype("char *strcpy(char *dest, const char *src); // @dest out_buf src=src nul @src in_str")
	if src := g.Source(proto); !strings.Contains(src, "healers_chunk_room") {
		t.Errorf("bound-check source:\n%s", src)
	}
}

func TestFmtCheckMicroDenies(t *testing.T) {
	g := MustGenerator(MGPrototype(), MGFmtCheck(), MGCaller())
	st := NewState("w")
	wrapped, env := buildOne(t, g, st, "printf")

	evil, _ := env.Img.StaticString("%n")
	env.Errno = 0
	v, f := wrapped(env, []cval.Value{cval.Ptr(evil)})
	if f != nil || v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("%%n call = %v, %v, errno %d", v, f, env.Errno)
	}
	fine, _ := env.Img.StaticString("ok %d")
	if v, f := wrapped(env, []cval.Value{cval.Ptr(fine), cval.Int(3)}); f != nil || v.Int32() != 4 {
		t.Errorf("fine call = %v, %v", v, f)
	}
	proto, _ := cheader.ParsePrototype("int printf(const char *format, ...); // @format fmt")
	if src := g.Source(proto); !strings.Contains(src, "healers_check_fmt_no_percent_n") {
		t.Errorf("fmt-check source:\n%s", src)
	}
}

func TestExitFlushMicroFiresOncePerProcess(t *testing.T) {
	g := MustGenerator(MGPrototype(), MGExitFlush(), MGCaller())
	st := NewState("w")
	wrapped, env := buildOne(t, g, st, "exit")

	flushes := 0
	st.OnExit = func(e *cval.Env, s *State) { flushes++ }
	if _, f := wrapped(env, []cval.Value{cval.Int(0)}); f != nil {
		t.Fatalf("exit call: %v", f)
	}
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
	// A second exit in the same process does not re-flush.
	if _, f := wrapped(env, []cval.Value{cval.Int(0)}); f != nil {
		t.Fatalf("second exit: %v", f)
	}
	if flushes != 1 {
		t.Errorf("flushes after second exit = %d, want 1", flushes)
	}
	// A fresh process flushes again.
	env2 := cval.NewEnv()
	if _, f := wrapped(env2, []cval.Value{cval.Int(0)}); f != nil {
		t.Fatalf("fresh exit: %v", f)
	}
	if flushes != 2 {
		t.Errorf("flushes across processes = %d, want 2", flushes)
	}
	// The exit wrapper's source carries the flush call.
	proto, _ := cheader.ParsePrototype("void exit(int status);")
	if src := g.Source(proto); !strings.Contains(src, "healers_flush_collected_data") {
		t.Errorf("exit-flush source:\n%s", src)
	}
	// Non-exit functions get no flush fragment.
	other, _ := cheader.ParsePrototype("int abs(int j);")
	if src := g.Source(other); strings.Contains(src, "healers_flush_collected_data") {
		t.Error("non-exit wrapper carries flush fragment")
	}
}

func TestLibrarySourceConcatenates(t *testing.T) {
	g := profilingGen()
	p1, _ := cheader.ParsePrototype("int abs(int j);")
	p2, _ := cheader.ParsePrototype("size_t strlen(const char *s); // @s in_str")
	src := g.LibrarySource([]*ctypes.Prototype{p1, p2})
	if !strings.Contains(src, "int abs(int a1)") || !strings.Contains(src, "size_t strlen(const char* a1)") {
		t.Errorf("library source:\n%s", src)
	}
}

func TestStateResetAndName(t *testing.T) {
	st := NewState("w")
	i := st.Index("strlen")
	st.CallCount[i] = 9
	st.DeniedCount[i] = 2
	st.FuncErrno[i][1] = 3
	st.GlobalErrno[1] = 3
	st.Overflows = 1
	st.DenyLog = []string{"x"}
	st.Reset()
	if st.TotalCalls() != 0 || st.DeniedCount[i] != 0 || st.FuncErrno[i][1] != 0 ||
		st.GlobalErrno[1] != 0 || st.Overflows != 0 || st.DenyLog != nil {
		t.Errorf("Reset left state: %+v", st)
	}
	if st.Name(i) != "strlen" {
		t.Errorf("Name = %q", st.Name(i))
	}
	if st.Index("strlen") != i {
		t.Error("Reset lost the index table")
	}
}

func TestSubstTrampolineUnresolved(t *testing.T) {
	// A substituted symbol whose library never loaded faults cleanly.
	libc := clib.MustRegistry().AsLibrary()
	st := NewState("w")
	lib := MustGenerator(MGPrototype(), MGCaller()).BuildLibrarySubst("w.so",
		[]*ctypes.Prototype{libc.Proto("sprintf")}, st,
		map[string]Subst{"sprintf": func(next simelf.NextFunc, st *State) (cval.CFunc, error) { return nil, nil }})
	fn, ok := lib.Lookup("sprintf")
	if !ok {
		t.Fatal("substituted symbol not exported")
	}
	if _, f := fn(cval.NewEnv(), nil); f == nil || f.Kind != cmem.FaultAbort {
		t.Errorf("unresolved substitute: fault = %v, want SIGABRT", f)
	}
}
