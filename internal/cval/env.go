package cval

import (
	"bytes"
	"sort"
	"sync/atomic"

	"healers/internal/cmem"
)

// TextBase is the start of the simulated text segment: registered function
// entry points get addresses here, spaced TextStep apart, so that function
// pointers stored in simulated memory look like ordinary code addresses —
// and so that an attacker who knows the layout (as real attackers do) can
// aim an overflowed function pointer at a specific routine.
const (
	TextBase cmem.Addr = 0x00400000
	TextStep           = 16
)

// SimFile is one open file in the simulated fd table, backed by in-memory
// bytes.
type SimFile struct {
	Name   string
	Data   *bytes.Buffer
	Pos    int
	RdOnly bool
}

// Env is the call environment of one simulated process: memory image plus
// the ambient C runtime state (errno, environ, fd table, PRNG, exit
// latch). Exactly one Env exists per simulated process and simulated
// execution is single-threaded, so Env is not synchronized.
type Env struct {
	Img *cmem.Image
	// Errno is the thread-local errno of the simulated process.
	Errno int32
	// Stdin feeds gets()/read(0, ...); Stdout and Stderr accumulate
	// console output.
	Stdin  bytes.Buffer
	Stdout bytes.Buffer
	Stderr bytes.Buffer

	// Exited is set when the program called exit(); Status holds the
	// code. Execution layers check it between calls.
	Exited bool
	Status int32

	// RandState is the rand()/srand() LCG state.
	RandState uint64

	// Chaos, when non-nil, is the armed chaos-mode fault injector: the
	// C library rolls it on every call and fails probabilistically with
	// the drawn fault (proc.Start arms it from HEALERS_CHAOS). A plain
	// pointer keeps the disarmed hot path to one nil check.
	Chaos *cmem.Chaos

	// environ maps NAME -> value; addrCache materializes values into
	// the data segment lazily so getenv can hand out stable pointers.
	environ   map[string]string
	envAddr   map[string]cmem.Addr
	fdTable   map[int32]*SimFile
	nextFd    int32
	fs        map[string][]byte
	textFuncs map[cmem.Addr]NamedFunc
	nextText  cmem.Addr

	// Statics is scratch storage for simulated functions' static state
	// (strtok's continuation pointer, strerror's message cache, atexit
	// handlers). Keyed by function name; values are owned by the
	// registering function. Per-Env, like per-process statics.
	Statics map[string]any

	// Privileged marks a root process; the attack demo's shell spawn
	// checks it to decide whether the attacker got a *root* shell.
	Privileged bool
	// ShellSpawned records a (simulated) successful exec of a shell —
	// the attacker's win condition in the §3.4 demo.
	ShellSpawned bool

	// statShard is the process's statistics-shard token: wrapper states
	// (gen.State) reduce it to a counter shard, so concurrent simulated
	// processes bump disjoint cache lines instead of one shared word.
	// NewEnv hands out round-robin tokens; a campaign worker pool may
	// re-pin it per worker (SetStatShard) for shard ownership.
	statShard uint32
}

// envShardTokens distributes statistics-shard tokens across created
// environments, so concurrently running processes spread over the
// counter shards without any coordination at capture time.
var envShardTokens atomic.Uint32

// StatShard returns the process's statistics-shard token.
func (e *Env) StatShard() uint32 { return e.statShard }

// SetStatShard pins the process's statistics-shard token — used by
// worker pools that want each worker's probes to own one shard.
func (e *Env) SetStatShard(tok uint32) { e.statShard = tok }

// NamedFunc is a function registered in the simulated text segment.
type NamedFunc struct {
	Name string
	Fn   CFunc
}

// NewEnv creates a fresh environment around a new memory image.
func NewEnv() *Env {
	return &Env{
		Img:       cmem.NewImage(),
		RandState: 1, // C's rand() seeds to 1
		environ:   make(map[string]string),
		envAddr:   make(map[string]cmem.Addr),
		fdTable:   make(map[int32]*SimFile),
		nextFd:    3,
		fs:        make(map[string][]byte),
		textFuncs: make(map[cmem.Addr]NamedFunc),
		nextText:  TextBase,
		Statics:   make(map[string]any),
		statShard: envShardTokens.Add(1),
	}
}

// Setenv sets an environment variable, invalidating any pointer previously
// handed out for it (C setenv has the same hazard).
func (e *Env) Setenv(name, value string) {
	e.environ[name] = value
	delete(e.envAddr, name)
}

// Unsetenv removes an environment variable.
func (e *Env) Unsetenv(name string) {
	delete(e.environ, name)
	delete(e.envAddr, name)
}

// Getenv returns the address of the NUL-terminated value of name, or the
// NULL address when unset. Repeated calls return the same pointer, like a
// real environ block.
func (e *Env) Getenv(name string) (cmem.Addr, *cmem.Fault) {
	v, ok := e.environ[name]
	if !ok {
		return 0, nil
	}
	if a, ok := e.envAddr[name]; ok {
		return a, nil
	}
	a, f := e.Img.StaticString(v)
	if f != nil {
		return 0, f
	}
	e.envAddr[name] = a
	return a, nil
}

// GetenvString returns an environment variable's value as a Go string —
// for toolkit components configured through the process environment
// (HEALERS_COLLECTOR), the way LD_PRELOAD-style tooling is configured.
func (e *Env) GetenvString(name string) (string, bool) {
	v, ok := e.environ[name]
	return v, ok
}

// EnvironNames returns the defined variable names, sorted, for diagnostics.
func (e *Env) EnvironNames() []string {
	names := make([]string, 0, len(e.environ))
	for n := range e.environ {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PutFile seeds the simulated filesystem with a file.
func (e *Env) PutFile(name string, data []byte) {
	e.fs[name] = append([]byte(nil), data...)
}

// FileData returns a copy of a simulated file's current content.
func (e *Env) FileData(name string) ([]byte, bool) {
	d, ok := e.fs[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d...), true
}

// RemoveFile deletes a file from the simulated filesystem.
func (e *Env) RemoveFile(name string) bool {
	if _, ok := e.fs[name]; !ok {
		e.Errno = ENOENT
		return false
	}
	delete(e.fs, name)
	return true
}

// RenameFile renames a file in the simulated filesystem.
func (e *Env) RenameFile(oldName, newName string) bool {
	d, ok := e.fs[oldName]
	if !ok {
		e.Errno = ENOENT
		return false
	}
	delete(e.fs, oldName)
	e.fs[newName] = d
	return true
}

// Open opens a simulated file and returns its fd, or -1 with errno set.
func (e *Env) Open(name string, readOnly, create bool) int32 {
	data, ok := e.fs[name]
	if !ok {
		if !create {
			e.Errno = ENOENT
			return -1
		}
		e.fs[name] = nil
		data = nil
	}
	fd := e.nextFd
	e.nextFd++
	e.fdTable[fd] = &SimFile{Name: name, Data: bytes.NewBuffer(append([]byte(nil), data...)), RdOnly: readOnly}
	return fd
}

// File returns the open file for fd.
func (e *Env) File(fd int32) (*SimFile, bool) {
	f, ok := e.fdTable[fd]
	return f, ok
}

// Close closes fd, writing its buffer back to the filesystem. Returns
// false with errno=EBADF for an unknown fd.
func (e *Env) Close(fd int32) bool {
	f, ok := e.fdTable[fd]
	if !ok {
		e.Errno = EBADF
		return false
	}
	if !f.RdOnly {
		e.fs[f.Name] = append([]byte(nil), f.Data.Bytes()...)
	}
	delete(e.fdTable, fd)
	return true
}

// OpenFdCount returns the number of open descriptors (excluding the
// implicit stdio streams).
func (e *Env) OpenFdCount() int { return len(e.fdTable) }

// RegisterText places fn in the simulated text segment and returns its
// entry address. The address is what the program stores into function
// pointers in simulated memory.
func (e *Env) RegisterText(name string, fn CFunc) cmem.Addr {
	a := e.nextText
	e.nextText += TextStep
	e.textFuncs[a] = NamedFunc{Name: name, Fn: fn}
	return a
}

// LookupText resolves a text address back to its function, if any.
func (e *Env) LookupText(a cmem.Addr) (NamedFunc, bool) {
	nf, ok := e.textFuncs[a]
	return nf, ok
}

// CallIndirect performs an indirect call through a function-pointer value
// read from simulated memory. Jumping to an address that is not a
// registered entry point is a SIGSEGV, exactly like executing a garbage
// code pointer.
func (e *Env) CallIndirect(target Value, args []Value) (Value, *cmem.Fault) {
	nf, ok := e.textFuncs[target.Addr()]
	if !ok {
		return 0, &cmem.Fault{Kind: cmem.FaultSegv, Addr: target.Addr(), Op: "call", Detail: "jump to non-code address"}
	}
	return nf.Fn(e, args)
}

// Exit latches a voluntary exit.
func (e *Env) Exit(status int32) {
	if !e.Exited {
		e.Exited = true
		e.Status = status
	}
}
