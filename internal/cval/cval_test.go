package cval

import (
	"testing"

	"healers/internal/cmem"
)

func TestValueConversions(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		i64  int64
		i32  int32
		u32  uint32
		addr cmem.Addr
	}{
		{"zero", Int(0), 0, 0, 0, 0},
		{"minus one", Int(-1), -1, -1, 0xffffffff, 0xffffffff},
		{"ptr", Ptr(0x10000040), 0x10000040, 0x10000040, 0x10000040, 0x10000040},
		{"big unsigned", Uint(0xfffffffe), -2, -2, 0xfffffffe, 0xfffffffe},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.name != "minus one" && tt.name != "big unsigned" {
				if got := tt.v.Int(); got != tt.i64 {
					t.Errorf("Int() = %d, want %d", got, tt.i64)
				}
			}
			if got := tt.v.Int32(); got != tt.i32 {
				t.Errorf("Int32() = %d, want %d", got, tt.i32)
			}
			if got := tt.v.Uint32(); got != tt.u32 {
				t.Errorf("Uint32() = %d, want %d", got, tt.u32)
			}
			if got := tt.v.Addr(); got != tt.addr {
				t.Errorf("Addr() = %s, want %s", got, tt.addr)
			}
		})
	}
	if !Ptr(0).IsNull() || Ptr(4).IsNull() {
		t.Error("IsNull misclassifies")
	}
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Error("Bool mapping wrong")
	}
	if Int(-1).Byte() != 0xff {
		t.Errorf("Byte() = %#x, want 0xff", Int(-1).Byte())
	}
}

func TestErrnoNames(t *testing.T) {
	tests := []struct {
		e    int32
		want string
	}{
		{EOK, "0"},
		{EINVAL, "EINVAL"},
		{ENOMEM, "ENOMEM"},
		{ERANGE, "ERANGE"},
		{EFAULT, "EFAULT"},
		{EBADF, "EBADF"},
		{ENOENT, "ENOENT"},
		{EDOM, "EDOM"},
		{999, "E?999"},
	}
	for _, tt := range tests {
		if got := ErrnoName(tt.e); got != tt.want {
			t.Errorf("ErrnoName(%d) = %q, want %q", tt.e, got, tt.want)
		}
	}
}

func TestEnvEnviron(t *testing.T) {
	env := NewEnv()
	if a, f := env.Getenv("PATH"); f != nil || a != 0 {
		t.Errorf("Getenv of unset = %s, %v; want NULL", a, f)
	}
	env.Setenv("PATH", "/usr/bin")
	a, f := env.Getenv("PATH")
	if f != nil || a == 0 {
		t.Fatalf("Getenv = %s, %v", a, f)
	}
	s, f := env.Img.CString(a)
	if f != nil || s != "/usr/bin" {
		t.Errorf("env value = %q, %v", s, f)
	}
	// Stable pointer across calls.
	b, _ := env.Getenv("PATH")
	if b != a {
		t.Errorf("Getenv returned different pointers %s then %s", a, b)
	}
	// Re-set invalidates the cache and yields the new value.
	env.Setenv("PATH", "/bin")
	c, _ := env.Getenv("PATH")
	s, _ = env.Img.CString(c)
	if s != "/bin" {
		t.Errorf("after Setenv, value = %q", s)
	}
	env.Unsetenv("PATH")
	if a, _ := env.Getenv("PATH"); a != 0 {
		t.Error("Getenv after Unsetenv returned non-NULL")
	}
	env.Setenv("B", "2")
	env.Setenv("A", "1")
	names := env.EnvironNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("EnvironNames = %v", names)
	}
}

func TestEnvFiles(t *testing.T) {
	env := NewEnv()
	if fd := env.Open("missing.txt", true, false); fd != -1 {
		t.Errorf("Open missing = %d, want -1", fd)
	}
	if env.Errno != ENOENT {
		t.Errorf("errno = %d, want ENOENT", env.Errno)
	}
	env.PutFile("data.txt", []byte("hello"))
	fd := env.Open("data.txt", true, false)
	if fd < 3 {
		t.Fatalf("Open = %d", fd)
	}
	f, ok := env.File(fd)
	if !ok || f.Name != "data.txt" || f.Data.String() != "hello" {
		t.Fatalf("File(%d) = %+v, %v", fd, f, ok)
	}
	if env.OpenFdCount() != 1 {
		t.Errorf("OpenFdCount = %d", env.OpenFdCount())
	}
	if !env.Close(fd) {
		t.Error("Close failed")
	}
	if env.Close(fd) {
		t.Error("double Close succeeded")
	}
	if env.Errno != EBADF {
		t.Errorf("errno after bad close = %d, want EBADF", env.Errno)
	}
	// Writable file round-trips through Close.
	wfd := env.Open("out.txt", false, true)
	wf, _ := env.File(wfd)
	wf.Data.WriteString("output")
	env.Close(wfd)
	data, ok := env.FileData("out.txt")
	if !ok || string(data) != "output" {
		t.Errorf("FileData = %q, %v", data, ok)
	}
}

func TestTextRegistryAndIndirectCalls(t *testing.T) {
	env := NewEnv()
	called := false
	a := env.RegisterText("handler", func(e *Env, args []Value) (Value, *cmem.Fault) {
		called = true
		return Int(42), nil
	})
	if a < TextBase {
		t.Errorf("text address %s below TextBase", a)
	}
	nf, ok := env.LookupText(a)
	if !ok || nf.Name != "handler" {
		t.Fatalf("LookupText = %+v, %v", nf, ok)
	}
	v, f := env.CallIndirect(Ptr(a), nil)
	if f != nil || v.Int32() != 42 || !called {
		t.Errorf("CallIndirect = %v, %v (called=%v)", v, f, called)
	}
	// Jumping to garbage is a SEGV, the hijack-detection baseline.
	if _, f := env.CallIndirect(Ptr(0xdeadbeef), nil); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("CallIndirect to garbage: fault = %v, want SIGSEGV", f)
	}
	// Distinct registrations get distinct addresses.
	b := env.RegisterText("other", func(e *Env, args []Value) (Value, *cmem.Fault) { return 0, nil })
	if b == a {
		t.Error("RegisterText reused an address")
	}
}

func TestEnvExitLatch(t *testing.T) {
	env := NewEnv()
	env.Exit(3)
	env.Exit(7) // first exit wins
	if !env.Exited || env.Status != 3 {
		t.Errorf("Exited=%v Status=%d, want true,3", env.Exited, env.Status)
	}
}

func TestValueString(t *testing.T) {
	if got := Ptr(0x1000).String(); got != "0x1000" {
		t.Errorf("String() = %q", got)
	}
}

func TestErrnoNamesFull(t *testing.T) {
	// Every named errno must round-trip to a symbolic name (not E?n).
	for _, e := range []int32{EPERM, ENOENT, EINTR, EIO, EBADF, ENOMEM, EACCES,
		EFAULT, EEXIST, EINVAL, ENFILE, EMFILE, ENOSPC, EDOM, ERANGE, ENOSYS, ENAMETOOLONG} {
		name := ErrnoName(e)
		if name == "" || name[0] == 'E' && len(name) > 1 && name[1] == '?' {
			t.Errorf("ErrnoName(%d) = %q", e, name)
		}
	}
}

func TestGetenvString(t *testing.T) {
	env := NewEnv()
	if _, ok := env.GetenvString("HEALERS_COLLECTOR"); ok {
		t.Error("unset variable reported present")
	}
	env.Setenv("HEALERS_COLLECTOR", "127.0.0.1:9")
	v, ok := env.GetenvString("HEALERS_COLLECTOR")
	if !ok || v != "127.0.0.1:9" {
		t.Errorf("GetenvString = %q, %v", v, ok)
	}
}

func TestRemoveRenameFile(t *testing.T) {
	env := NewEnv()
	if env.RemoveFile("ghost") {
		t.Error("RemoveFile of missing file succeeded")
	}
	if env.Errno != ENOENT {
		t.Errorf("errno = %d", env.Errno)
	}
	env.PutFile("a", []byte("x"))
	if !env.RenameFile("a", "b") {
		t.Error("RenameFile failed")
	}
	if env.RenameFile("a", "c") {
		t.Error("RenameFile of moved file succeeded")
	}
	if d, ok := env.FileData("b"); !ok || string(d) != "x" {
		t.Errorf("renamed data = %q, %v", d, ok)
	}
	if !env.RemoveFile("b") {
		t.Error("RemoveFile failed")
	}
}
