// Package cval defines the value model and calling convention of the
// simulated C world: 64-bit machine words that may carry integers or
// pointers, the uniform CFunc signature every simulated C function and
// every HEALERS wrapper implements, the errno table, and the per-process
// call environment (Env) threaded through every call.
//
// Everything above this package — the C library, the dynamic linker, the
// fault injector, the generated wrappers — speaks CFunc, which is what
// makes transparent interception possible: a wrapper is just another CFunc
// registered earlier in the symbol search order.
package cval

import (
	"fmt"

	"healers/internal/cmem"
)

// Value is one simulated machine word. Pointers occupy the low 32 bits
// (the simulated address space is 32-bit); integer results use the full
// word with two's-complement signedness handled by the accessors.
type Value uint64

// Ptr builds a Value carrying an address.
func Ptr(a cmem.Addr) Value { return Value(uint32(a)) }

// Int builds a Value carrying a signed integer.
func Int(i int64) Value { return Value(uint64(i)) }

// Uint builds a Value carrying an unsigned integer.
func Uint(u uint64) Value { return Value(u) }

// Bool builds a C boolean (1/0).
func Bool(b bool) Value {
	if b {
		return 1
	}
	return 0
}

// Addr extracts the pointer interpretation.
func (v Value) Addr() cmem.Addr { return cmem.Addr(uint32(v)) }

// Int extracts the signed-integer interpretation.
func (v Value) Int() int64 { return int64(v) }

// Int32 extracts the low word as a signed 32-bit integer, the way a C
// callee reads an int argument.
func (v Value) Int32() int32 { return int32(uint32(v)) }

// Uint32 extracts the low word unsigned (size_t in the 32-bit model).
func (v Value) Uint32() uint32 { return uint32(v) }

// Byte extracts the low byte (a C char argument after integer promotion).
func (v Value) Byte() byte { return byte(v) }

// IsNull reports whether the pointer interpretation is NULL.
func (v Value) IsNull() bool { return uint32(v) == 0 }

// String renders the value in both interpretations for diagnostics.
func (v Value) String() string {
	return fmt.Sprintf("%#x", uint64(v))
}

// CFunc is the uniform simulated C calling convention. A function receives
// the call environment and its argument words, and returns a result word
// or a fault (the moral equivalent of the process taking a fatal signal).
type CFunc func(env *Env, args []Value) (Value, *cmem.Fault)

// Errno values, numerically aligned with Linux so profiling output reads
// familiarly.
const (
	EOK          int32 = 0
	EPERM        int32 = 1
	ENOENT       int32 = 2
	EINTR        int32 = 4
	EIO          int32 = 5
	EBADF        int32 = 9
	ENOMEM       int32 = 12
	EACCES       int32 = 13
	EFAULT       int32 = 14
	EEXIST       int32 = 17
	EINVAL       int32 = 22
	ENFILE       int32 = 23
	EMFILE       int32 = 24
	ENOSPC       int32 = 28
	EDOM         int32 = 33
	ERANGE       int32 = 34
	ENOSYS       int32 = 38
	ENAMETOOLONG int32 = 36
)

// MaxErrno bounds the errno histogram arrays in profiling wrappers,
// mirroring the MAX_ERRNO constant in the paper's Figure 3 code.
const MaxErrno = 64

// EDenied is the errno a HEALERS robustness wrapper sets when it vetoes a
// call whose arguments fail the robust-API checks. It is deliberately
// outside the normal errno range so callers and the verification campaign
// can tell "denied by wrapper" from an ordinary library error.
const EDenied int32 = 1000

// ErrnoName returns the symbolic name for an errno value, or "E?<n>".
func ErrnoName(e int32) string {
	switch e {
	case EOK:
		return "0"
	case EPERM:
		return "EPERM"
	case ENOENT:
		return "ENOENT"
	case EINTR:
		return "EINTR"
	case EIO:
		return "EIO"
	case EBADF:
		return "EBADF"
	case ENOMEM:
		return "ENOMEM"
	case EACCES:
		return "EACCES"
	case EFAULT:
		return "EFAULT"
	case EEXIST:
		return "EEXIST"
	case EINVAL:
		return "EINVAL"
	case ENFILE:
		return "ENFILE"
	case EMFILE:
		return "EMFILE"
	case ENOSPC:
		return "ENOSPC"
	case EDOM:
		return "EDOM"
	case ERANGE:
		return "ERANGE"
	case ENOSYS:
		return "ENOSYS"
	case ENAMETOOLONG:
		return "ENAMETOOLONG"
	default:
		return fmt.Sprintf("E?%d", e)
	}
}
