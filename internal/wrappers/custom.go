package wrappers

import (
	"fmt"

	"healers/internal/ctypes"
	"healers/internal/gen"
	"healers/internal/simelf"
)

// Custom builds a wrapper from a caller-chosen micro-generator list — the
// §2.3 flexibility claim made concrete: "the micro-generators can be
// combined in a variety of ways to generate new wrapper types". Feature
// names (in composition order):
//
//	call_counter, exectime, collect_errors, func_errors,
//	arg_check, heap_check, bound_check, fmt_check, exit_flush
//
// The prototype and caller micro-generators are always included (first
// and last). api is consulted only by arg_check and may be nil otherwise.
func Custom(target *simelf.Library, soname string, features []string, api ctypes.RobustAPI, names []string) (*simelf.Library, *gen.State, error) {
	protos, err := protosOf(target, names)
	if err != nil {
		return nil, nil, err
	}
	micros := []gen.MicroGenerator{gen.MGPrototype()}
	for _, f := range features {
		m, err := microByName(f, api)
		if err != nil {
			return nil, nil, err
		}
		micros = append(micros, m)
	}
	micros = append(micros, gen.MGCaller())
	g, err := gen.NewGenerator(micros...)
	if err != nil {
		return nil, nil, err
	}
	st := gen.NewState(soname)
	return g.BuildLibrary(soname, protos, st), st, nil
}

// FeatureNames lists the micro-generator features Custom accepts.
func FeatureNames() []string {
	return []string{
		"call_counter", "exectime", "collect_errors", "func_errors",
		"arg_check", "heap_check", "bound_check", "fmt_check", "exit_flush",
	}
}

func microByName(name string, api ctypes.RobustAPI) (gen.MicroGenerator, error) {
	switch name {
	case "call_counter":
		return gen.MGCallCounter(), nil
	case "exectime":
		return gen.MGExectime(), nil
	case "collect_errors":
		return gen.MGCollectErrors(), nil
	case "func_errors":
		return gen.MGFuncErrors(), nil
	case "arg_check":
		if api == nil {
			return nil, fmt.Errorf("wrappers: arg_check requires a robust API")
		}
		return gen.MGArgCheck(api), nil
	case "heap_check":
		return gen.MGHeapCheck(), nil
	case "bound_check":
		return gen.MGBoundCheck(), nil
	case "fmt_check":
		return gen.MGFmtCheck(), nil
	case "exit_flush":
		return gen.MGExitFlush(), nil
	default:
		return nil, fmt.Errorf("wrappers: unknown feature %q (have %v)", name, FeatureNames())
	}
}
