package wrappers

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/simelf"
)

// loadWith builds a system with libc plus the given wrapper and returns a
// call helper resolving through the preloaded wrapper.
func loadWith(t *testing.T, wrapper *simelf.Library) (*cval.Env, func(string, ...cval.Value) (cval.Value, *cmem.Fault)) {
	t.Helper()
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}); err != nil {
		t.Fatal(err)
	}
	lm, err := dynlink.Load(sys, "app", []string{wrapper.Soname})
	if err != nil {
		t.Fatal(err)
	}
	env := cval.NewEnv()
	return env, func(name string, args ...cval.Value) (cval.Value, *cmem.Fault) {
		fn, ok := lm.Resolve(name)
		if !ok {
			t.Fatalf("resolve %s", name)
		}
		return fn(env, args)
	}
}

func libc(t *testing.T) *simelf.Library {
	t.Helper()
	return clib.MustRegistry().AsLibrary()
}

func TestRobustnessWrapperDeniesAndPasses(t *testing.T) {
	lc := libc(t)
	var protos []*ctypes.Prototype
	for _, n := range lc.Symbols() {
		if p := lc.Proto(n); p != nil {
			protos = append(protos, p)
		}
	}
	wrapper, st, err := Robustness(lc, StrongestAPI(protos), nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	// Valid calls go through untouched.
	s, _ := env.Img.StaticString("hello")
	if v, f := call("strlen", cval.Ptr(s)); f != nil || v.Uint32() != 5 {
		t.Fatalf("strlen = %v, %v", v, f)
	}
	// Invalid calls are denied, not crashed.
	env.Errno = 0
	v, f := call("strlen", cval.Ptr(0))
	if f != nil || env.Errno != cval.EDenied || v.Int32() != -1 {
		t.Errorf("strlen(NULL) = %v, %v, errno %d", v, f, env.Errno)
	}
	// Pointer-returning functions are denied with NULL.
	env.Errno = 0
	v, f = call("strchr", cval.Ptr(0), cval.Int('x'))
	if f != nil || !v.IsNull() || env.Errno != cval.EDenied {
		t.Errorf("strchr(NULL) = %v, %v, errno %d", v, f, env.Errno)
	}
	st.Sync()
	if st.DeniedCount[st.Index("strlen")] != 1 {
		t.Errorf("strlen denied count = %d", st.DeniedCount[st.Index("strlen")])
	}
}

func TestRobustnessSubstitutionSprintf(t *testing.T) {
	wrapper, st, err := Robustness(libc(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	// sprintf into a small heap chunk: the substitution bounds it at
	// the chunk's capacity instead of smashing the neighbour.
	small := env.Img.Heap.Malloc(8)
	next := env.Img.Heap.Malloc(8)
	env.Img.Space.WriteCString(next, "intact")
	fmtStr, _ := env.Img.StaticString("%s")
	long, _ := env.Img.StaticString(strings.Repeat("Z", 64))
	n, f := call("sprintf", cval.Ptr(small), cval.Ptr(fmtStr), cval.Ptr(long))
	if f != nil {
		t.Fatalf("bounded sprintf faulted: %v", f)
	}
	if n.Int32() != 64 { // snprintf semantics: full length returned
		t.Errorf("sprintf returned %d, want 64", n.Int32())
	}
	got, _ := env.Img.CString(next)
	if got != "intact" {
		t.Errorf("neighbour = %q; substitution did not bound the write", got)
	}
	// Unwritable destination is denied.
	env.Errno = 0
	if v, f := call("sprintf", cval.Ptr(0xdead0000), cval.Ptr(fmtStr), cval.Ptr(long)); f != nil || v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("sprintf wild dst = %v, %v, errno %d", v, f, env.Errno)
	}
	// Hostile format strings are rejected.
	env.Errno = 0
	evil, _ := env.Img.StaticString("x%n")
	if v, _ := call("sprintf", cval.Ptr(small), cval.Ptr(evil)); v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("sprintf %%n not rejected: %v errno %d", v, env.Errno)
	}
	st.Sync()
	if st.DeniedCount[st.Index("sprintf")] != 2 {
		t.Errorf("sprintf denials = %d, want 2", st.DeniedCount[st.Index("sprintf")])
	}
}

func TestRobustnessSubstitutionGets(t *testing.T) {
	wrapper, _, err := Robustness(libc(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)
	env.Stdin.WriteString(strings.Repeat("B", 100) + "\n")

	small := env.Img.Heap.Malloc(8)
	guard := env.Img.Heap.Malloc(8)
	env.Img.Space.WriteCString(guard, "guarded")
	if v, f := call("gets", cval.Ptr(small)); f != nil || v.IsNull() {
		t.Fatalf("bounded gets = %v, %v", v, f)
	}
	got, _ := env.Img.CString(guard)
	if got != "guarded" {
		t.Errorf("guard = %q; gets overflowed despite substitution", got)
	}
	s, _ := env.Img.CString(small)
	if len(s) != 7 { // 8-byte chunk: 7 chars + NUL
		t.Errorf("bounded gets read %q (%d chars), want 7", s, len(s))
	}
}

func TestSecurityWrapperDetectsSmashPostCall(t *testing.T) {
	// Even when the overflow is not preventable pre-call (a raw memory
	// write between intercepted calls), the canary check on the next
	// intercepted call detects it.
	wrapper, st, err := Security(libc(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	// First intercepted call switches canaries on.
	p := call0(t, call, "malloc", cval.Uint(16))
	// The application smashes the chunk directly (not through libc).
	if f := env.Img.Space.WriteByteAt(p.Addr()+16, 0x41); f != nil {
		t.Fatal(f)
	}
	// The next intercepted call trips the canary check.
	s, _ := env.Img.StaticString("x")
	_, f := call("strlen", cval.Ptr(s))
	if f == nil || f.Kind != cmem.FaultOverflow {
		t.Errorf("post-smash call: fault = %v, want OVERFLOW", f)
	}
	st.Sync()
	if st.Overflows == 0 {
		t.Error("overflow not counted")
	}
}

func call0(t *testing.T, call func(string, ...cval.Value) (cval.Value, *cmem.Fault), name string, args ...cval.Value) cval.Value {
	t.Helper()
	v, f := call(name, args...)
	if f != nil {
		t.Fatalf("%s: %v", name, f)
	}
	return v
}

func TestSecurityWrapperRejectsFmtAttack(t *testing.T) {
	wrapper, _, err := Security(libc(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)
	evil, _ := env.Img.StaticString("boom %n boom")
	out := env.Img.Heap.Malloc(16)
	env.Errno = 0
	v, f := call("printf", cval.Ptr(evil), cval.Ptr(out))
	if f != nil {
		t.Fatalf("printf faulted: %v", f)
	}
	if v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("printf %%n = %v errno %d, want denial", v, env.Errno)
	}
	// A normal format still works.
	ok, _ := env.Img.StaticString("fine %d\n")
	if v, f := call("printf", cval.Ptr(ok), cval.Int(7)); f != nil || v.Int32() != 7 {
		t.Errorf("printf fine = %v, %v", v, f)
	}
	if env.Stdout.String() != "fine 7\n" {
		t.Errorf("stdout = %q", env.Stdout.String())
	}
}

func TestWrapperSubsetOnly(t *testing.T) {
	// Wrapping a subset leaves other symbols resolving to raw libc.
	wrapper, _, err := Security(libc(t), []string{"memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := wrapper.Lookup("memcpy"); !ok {
		t.Fatal("subset wrapper missing memcpy")
	}
	if _, ok := wrapper.Lookup("strlen"); ok {
		t.Error("subset wrapper wrapped strlen")
	}
	if _, _, err := Security(libc(t), []string{"no_such_fn"}); err == nil {
		t.Error("unknown function accepted in subset")
	}
}

func TestStrongestAPIShape(t *testing.T) {
	lc := libc(t)
	api := StrongestAPI([]*ctypes.Prototype{lc.Proto("strcpy"), lc.Proto("abs")})
	if got := api["strcpy"][0].LevelName; got != "writable_sized" {
		t.Errorf("strongest strcpy dest = %q", got)
	}
	if got := api["abs"][0].LevelName; got != "any" {
		t.Errorf("strongest abs j = %q", got)
	}
}

func TestProfilingWrapperCollects(t *testing.T) {
	wrapper, st, err := Profiling(libc(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)
	s, _ := env.Img.StaticString("abc")
	for i := 0; i < 5; i++ {
		call0(t, call, "strlen", cval.Ptr(s))
	}
	st.Sync()
	if st.CallCount[st.Index("strlen")] != 5 {
		t.Errorf("strlen count = %d", st.CallCount[st.Index("strlen")])
	}
	st.Reset()
	if st.TotalCalls() != 0 {
		t.Error("Reset did not clear counters")
	}
	if got := st.Name(st.Index("strlen")); got != "strlen" {
		t.Errorf("Name round trip = %q", got)
	}
}
