// Package wrappers assembles the three canonical HEALERS wrapper types of
// Figure 1 from the micro-generator architecture:
//
//   - the robustness wrapper denies calls whose arguments violate the
//     fault-injection-derived robust API (crash/abort prevention for
//     high-availability applications);
//   - the security wrapper prevents and detects heap buffer overflows and
//     rejects hostile format strings (for root-privileged processes);
//   - the profiling wrapper counts calls, times them, and histograms
//     errno values, exporting a self-describing XML document.
//
// Each builder returns an interposable shared library (preload it with
// proc.WithPreloads) plus the live statistics State behind it.
package wrappers

import (
	"fmt"

	"healers/internal/ctypes"
	"healers/internal/gen"
	"healers/internal/simelf"
)

// Sonames of the generated wrapper libraries.
const (
	RobustnessSoname  = "libhealers_robust.so"
	SecuritySoname    = "libhealers_sec.so"
	ProfilingSoname   = "libhealers_prof.so"
	ContainmentSoname = "libhealers_contain.so"
)

// protosOf collects the prototypes for the named functions from a target
// library, failing on unknown names; nil names means every exported
// symbol with a prototype.
func protosOf(target *simelf.Library, names []string) ([]*ctypes.Prototype, error) {
	if names == nil {
		names = target.Symbols()
	}
	var protos []*ctypes.Prototype
	for _, n := range names {
		p := target.Proto(n)
		if p == nil {
			if _, exported := target.Lookup(n); !exported {
				return nil, fmt.Errorf("wrappers: %s does not export %q", target.Soname, n)
			}
			continue // exported but prototype-less symbols cannot be wrapped
		}
		protos = append(protos, p)
	}
	return protos, nil
}

// Robustness builds the robustness wrapper for the given functions of
// target, enforcing the supplied robust API. names == nil wraps the whole
// library.
func Robustness(target *simelf.Library, api ctypes.RobustAPI, names []string) (*simelf.Library, *gen.State, error) {
	protos, err := protosOf(target, names)
	if err != nil {
		return nil, nil, err
	}
	g := gen.MustGenerator(
		gen.MGPrototype(),
		gen.MGCallCounter(),
		gen.MGArgCheck(api),
		gen.MGCaller(),
	)
	st := gen.NewState(RobustnessSoname)
	return g.BuildLibrarySubst(RobustnessSoname, protos, st, boundedSubstitutions()), st, nil
}

// Security builds the security wrapper: canary-based heap-smash detection
// on every intercepted call, computable-bound overflow prevention, and
// format-string rejection. names == nil wraps the whole library.
func Security(target *simelf.Library, names []string) (*simelf.Library, *gen.State, error) {
	protos, err := protosOf(target, names)
	if err != nil {
		return nil, nil, err
	}
	g := gen.MustGenerator(
		gen.MGPrototype(),
		gen.MGCallCounter(),
		gen.MGHeapCheck(),
		gen.MGBoundCheck(),
		gen.MGFmtCheck(),
		gen.MGCaller(),
	)
	st := gen.NewState(SecuritySoname)
	return g.BuildLibrary(SecuritySoname, protos, st), st, nil
}

// DefaultTraceDepth is the call-trace ring capacity of the profiling
// wrapper built by Profiling: the number of most recent intercepted
// calls retained for post-mortem inspection (healers-profile -trace).
const DefaultTraceDepth = 256

// Profiling builds the profiling wrapper of Figure 3/Figure 5 extended
// with the observability layer: call counts, execution time plus
// per-function log2 latency histograms, per-function and global errno
// histograms, and a bounded ring of recent call traces
// (DefaultTraceDepth entries). names == nil wraps the whole library.
func Profiling(target *simelf.Library, names []string) (*simelf.Library, *gen.State, error) {
	protos, err := protosOf(target, names)
	if err != nil {
		return nil, nil, err
	}
	g := gen.MustGenerator(
		gen.MGPrototype(),
		// Declared right after the prototype so its postfix runs last:
		// the flush sees every other micro-generator's final counters.
		gen.MGExitFlush(),
		// Trace wraps the timing micro-generators so its recorded
		// duration and outcome cover the whole intercepted call.
		gen.MGTrace(DefaultTraceDepth),
		gen.MGExectime(),
		gen.MGCollectErrors(),
		gen.MGFuncErrors(),
		gen.MGCallCounter(),
		gen.MGCaller(),
	)
	st := gen.NewState(ProfilingSoname)
	return g.BuildLibrary(ProfilingSoname, protos, st), st, nil
}

// containmentMicros is the containment wrapper's composition. The
// watchdog and containment micro-generators sit last before the caller
// so their postfixes run first: the caught fault is rolled back and
// virtualized before any observing micro-generator sees the call. An
// optional robust API adds argument checking in front — deny-before-call
// and contain-after-call compose.
func containmentMicros(api ctypes.RobustAPI, policy gen.ContainPolicy) []gen.MicroGenerator {
	micros := []gen.MicroGenerator{
		gen.MGPrototype(),
		gen.MGCallCounter(),
		// Latency histograms: the exectime postfix runs *after*
		// containment's (reverse order), so a contained call's sample
		// includes its rollback and retries — the latency the caller
		// actually saw, which is what the chaos soak quantiles report.
		gen.MGExectime(),
	}
	if api != nil {
		micros = append(micros, gen.MGArgCheck(api))
	}
	return append(micros,
		gen.MGWatchdog(0),
		gen.MGContain(policy),
		gen.MGCaller(),
	)
}

// Containment builds the fault-containment wrapper: every intercepted
// call runs under a write journal and a per-call access budget; a fault
// in the original function is rolled back and virtualized into an errno
// return as the recovery policy directs (deny, retry, substitute, or
// escalate), with a circuit breaker flipping repeatedly failing
// functions to always-deny. policy == nil installs DefaultPolicy();
// api != nil additionally vetoes calls violating the robust API before
// they run. names == nil wraps the whole library.
func Containment(target *simelf.Library, api ctypes.RobustAPI, policy gen.ContainPolicy, names []string) (*simelf.Library, *gen.State, error) {
	protos, err := protosOf(target, names)
	if err != nil {
		return nil, nil, err
	}
	if policy == nil {
		policy = DefaultPolicy()
	}
	g := gen.MustGenerator(containmentMicros(api, policy)...)
	st := gen.NewState(ContainmentSoname)
	return g.BuildLibrary(ContainmentSoname, protos, st), st, nil
}

// ContainmentGenerator exposes the containment composition for source
// rendering.
func ContainmentGenerator(api ctypes.RobustAPI, policy gen.ContainPolicy) *gen.Generator {
	return gen.MustGenerator(containmentMicros(api, policy)...)
}

// ProfilingGenerator exposes the paper-faithful profiling micro-generator
// composition — the exact stack of the paper's Figure 3 wctrans listing,
// without the trace ring (used for rendering the Figure 3 source).
func ProfilingGenerator() *gen.Generator {
	return gen.MustGenerator(
		gen.MGPrototype(),
		// Declared right after the prototype so its postfix runs last:
		// the flush sees every other micro-generator's final counters.
		gen.MGExitFlush(),
		gen.MGExectime(),
		gen.MGCollectErrors(),
		gen.MGFuncErrors(),
		gen.MGCallCounter(),
		gen.MGCaller(),
	)
}

// RobustnessGenerator exposes the robustness composition for source
// rendering.
func RobustnessGenerator(api ctypes.RobustAPI) *gen.Generator {
	return gen.MustGenerator(
		gen.MGPrototype(),
		gen.MGCallCounter(),
		gen.MGArgCheck(api),
		gen.MGCaller(),
	)
}

// SecurityGenerator exposes the security composition for source
// rendering.
func SecurityGenerator() *gen.Generator {
	return gen.MustGenerator(
		gen.MGPrototype(),
		gen.MGCallCounter(),
		gen.MGHeapCheck(),
		gen.MGBoundCheck(),
		gen.MGFmtCheck(),
		gen.MGCaller(),
	)
}

// StrongestAPI builds a robust API that demands the strongest lattice
// level for every parameter of every prototype — the "assume the worst"
// configuration used before a campaign has run, and the baseline for the
// ablation benchmarks.
func StrongestAPI(protos []*ctypes.Prototype) ctypes.RobustAPI {
	api := make(ctypes.RobustAPI, len(protos))
	for _, p := range protos {
		params := make([]ctypes.RobustParam, len(p.Params))
		for i, prm := range p.Params {
			chain := ctypes.ChainFor(prm)
			lvl := chain.Strongest()
			params[i] = ctypes.RobustParam{
				Name:      prm.Name,
				Chain:     chain.Name,
				Level:     lvl,
				LevelName: chain.Levels[lvl].Name,
			}
		}
		api[p.Name] = params
	}
	return api
}
