package wrappers

import (
	"math/rand"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/simelf"
)

// TestPropertyHardenedLibcNeverCrashes is the end-to-end statement of the
// whole toolkit: with the robustness wrapper (strongest argument checks +
// bounded substitutions) preloaded over libc, *no* sequence of calls with
// arbitrary argument values takes the process down. Invalid calls are
// denied with errno; valid ones execute. abort() is excluded — aborting
// is its contract — and exit() latches, so both are left out of the pool.
func TestPropertyHardenedLibcNeverCrashes(t *testing.T) {
	libcLib := clib.MustRegistry().AsLibrary()
	var protos []*ctypes.Prototype
	for _, n := range libcLib.Symbols() {
		if p := libcLib.Proto(n); p != nil && n != "abort" && n != "exit" {
			protos = append(protos, p)
		}
	}
	wrapper, _, err := Robustness(libcLib, StrongestAPI(protos), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(libcLib); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "fuzz", Needed: []string{clib.LibcSoname}}); err != nil {
		t.Fatal(err)
	}
	lm, err := dynlink.Load(sys, "fuzz", []string{RobustnessSoname})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(20030622))
	env := cval.NewEnv()
	env.Stdin.WriteString("fuzz input line\n")
	valid, _ := env.Img.StaticString("a valid string")
	heapBuf := env.Img.Heap.Malloc(256)
	env.Img.Space.WriteCString(heapBuf, "heap string")
	fn := env.RegisterText("fuzz_cb", func(e *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		return cval.Int(0), nil
	})

	pool := []cval.Value{
		cval.Ptr(0),           // NULL
		cval.Ptr(0xdeadbee0),  // wild pointer
		cval.Ptr(valid),       // valid string
		cval.Ptr(heapBuf),     // heap buffer
		cval.Ptr(fn),          // code pointer
		cval.Ptr(cmem.RoBase), // read-only memory
		cval.Int(-1),          // negative scalar
		cval.Int(0),           //
		cval.Int(7),           // small scalar
		cval.Uint(16),         // small size
		cval.Uint(0xffffffff), // SIZE_MAX
		cval.Uint(0x40000000), // huge size
		cval.Ptr(valid + 1),   // interior / misaligned pointer
		cval.Int(int64('x')),  // character
	}

	// Keep any single pathological-but-legal walk bounded, like a test
	// harness timeout; legitimate calls stay far below this.
	env.Img.Space.SetFuel(512 << 20)

	names := libcLib.Symbols()
	calls := 0
	for i := 0; i < 3000; i++ {
		name := names[rng.Intn(len(names))]
		if name == "abort" || name == "exit" {
			continue
		}
		proto := libcLib.Proto(name)
		entry, ok := lm.Resolve(name)
		if !ok {
			t.Fatalf("resolve %s", name)
		}
		args := make([]cval.Value, len(proto.Params))
		for j := range args {
			args[j] = pool[rng.Intn(len(pool))]
		}
		if _, f := entry(env, args); f != nil {
			t.Fatalf("call %d: %s%v crashed the hardened process: %v", i, name, args, f)
		}
		calls++
		if env.Exited {
			t.Fatalf("unexpected exit latch after %s", name)
		}
	}
	if calls < 2500 {
		t.Fatalf("only %d calls executed", calls)
	}
}

func TestCustomWrapperComposition(t *testing.T) {
	libcLib := clib.MustRegistry().AsLibrary()
	wrapper, st, err := Custom(libcLib, "libcustom.so",
		[]string{"call_counter", "fmt_check"}, nil, []string{"printf", "strlen"})
	if err != nil {
		t.Fatal(err)
	}
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(libcLib); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}); err != nil {
		t.Fatal(err)
	}
	lm, err := dynlink.Load(sys, "app", []string{"libcustom.so"})
	if err != nil {
		t.Fatal(err)
	}
	env := cval.NewEnv()
	evil, _ := env.Img.StaticString("%n")
	fn, _ := lm.Resolve("printf")
	if v, f := fn(env, []cval.Value{cval.Ptr(evil)}); f != nil || v.Int32() != -1 {
		t.Errorf("custom fmt_check: %v, %v", v, f)
	}
	if st.TotalCalls() != 1 {
		t.Errorf("custom call_counter = %d", st.TotalCalls())
	}
	// Unknown feature and missing API are rejected.
	if _, _, err := Custom(libcLib, "x.so", []string{"nope"}, nil, nil); err == nil {
		t.Error("unknown feature accepted")
	}
	if _, _, err := Custom(libcLib, "x.so", []string{"arg_check"}, nil, nil); err == nil {
		t.Error("arg_check without API accepted")
	}
}
