package wrappers

import (
	"testing"
	"time"

	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

func TestPolicyRuleMatching(t *testing.T) {
	retry := gen.ContainDecision{Action: gen.ActionRetry, Retries: 2}
	deny := gen.ContainDecision{Action: gen.ActionDeny}
	escalate := gen.ContainDecision{Action: gen.ActionEscalate}
	e := NewPolicyEngine([]PolicyRule{
		{Func: "read", Class: "hang", Decision: retry},
		{Func: "malloc", Decision: escalate},
		{Class: "crash", Decision: deny},
	}, BreakerConfig{})

	if d := e.Decide("read", gen.ClassHang); d.Action != gen.ActionRetry || d.Retries != 2 {
		t.Errorf("read/hang = %v", d)
	}
	// malloc matches any class via the func-only rule.
	if d := e.Decide("malloc", gen.ClassOOM); d.Action != gen.ActionEscalate {
		t.Errorf("malloc/oom = %v", d)
	}
	if d := e.Decide("strlen", gen.ClassCrash); d.Action != gen.ActionDeny {
		t.Errorf("strlen/crash = %v", d)
	}
	// No rule matches: the default is deny.
	if d := e.Decide("strlen", gen.ClassHang); d.Action != gen.ActionDeny {
		t.Errorf("unmatched = %v, want default deny", d)
	}
}

func TestBreakerTripsWithinWindow(t *testing.T) {
	e := NewPolicyEngine(nil, BreakerConfig{Threshold: 3, Window: time.Minute})
	clock := time.Unix(1000, 0)
	e.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if e.RecordFailure("strcpy", gen.ClassCrash) {
			t.Fatalf("breaker tripped after %d failures", i+1)
		}
	}
	if !e.RecordFailure("strcpy", gen.ClassCrash) {
		t.Fatal("third failure in window did not trip")
	}
	if !e.Tripped("strcpy") {
		t.Error("Tripped = false after trip")
	}
	// The trip transition reports once; later failures don't re-trip.
	if e.RecordFailure("strcpy", gen.ClassCrash) {
		t.Error("tripped breaker reported a second trip")
	}
	// Other functions are unaffected.
	if e.Tripped("strlen") {
		t.Error("unrelated function tripped")
	}
	e.ResetBreakers()
	if e.Tripped("strcpy") {
		t.Error("breaker survived ResetBreakers")
	}
}

func TestBreakerWindowExpiresOldFailures(t *testing.T) {
	e := NewPolicyEngine(nil, BreakerConfig{Threshold: 3, Window: time.Minute})
	clock := time.Unix(1000, 0)
	e.now = func() time.Time { return clock }

	e.RecordFailure("f", gen.ClassCrash)
	e.RecordFailure("f", gen.ClassCrash)
	// Two stale failures age out of the window; two fresh ones are not
	// enough to trip.
	clock = clock.Add(2 * time.Minute)
	if e.RecordFailure("f", gen.ClassCrash) {
		t.Fatal("tripped although earlier failures left the window")
	}
	if e.RecordFailure("f", gen.ClassCrash) {
		t.Fatal("two in-window failures tripped a threshold of 3")
	}
	if !e.RecordFailure("f", gen.ClassCrash) {
		t.Fatal("three in-window failures did not trip")
	}
}

func TestBreakerDisabled(t *testing.T) {
	e := NewPolicyEngine(nil, BreakerConfig{Threshold: -1})
	for i := 0; i < 100; i++ {
		if e.RecordFailure("f", gen.ClassCrash) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if e.Tripped("f") {
		t.Error("disabled breaker reports tripped")
	}
}

func TestPolicyFromDoc(t *testing.T) {
	doc := &xmlrep.PolicyDoc{
		BreakerThreshold: 2,
		BreakerWindowMS:  500,
		Rules: []xmlrep.PolicyRuleXML{
			{Func: "read", Class: "hang", Action: "retry", Retries: 3, BackoffMS: 10},
			{Func: "rand", Action: "substitute", Value: 4},
			{Class: "crash", Action: "deny"},
			{Action: "escalate"},
		},
	}
	e, err := PolicyFromDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Decide("read", gen.ClassHang); d.Action != gen.ActionRetry || d.Retries != 3 || d.Backoff != 10*time.Millisecond {
		t.Errorf("read/hang = %+v", d)
	}
	d := e.Decide("rand", gen.ClassAbort)
	if d.Action != gen.ActionSubstitute || d.Substitute == nil || d.Substitute.Int32() != 4 {
		t.Errorf("rand substitute = %+v", d)
	}
	if d := e.Decide("anything", gen.ClassOOM); d.Action != gen.ActionEscalate {
		t.Errorf("fallthrough = %+v", d)
	}
	// The document's breaker parameters are in force.
	clock := time.Unix(0, 0)
	e.now = func() time.Time { return clock }
	e.RecordFailure("f", gen.ClassCrash)
	if !e.RecordFailure("f", gen.ClassCrash) {
		t.Error("documented threshold of 2 did not trip")
	}
}

func TestPolicyFromDocRejectsGarbage(t *testing.T) {
	if _, err := PolicyFromDoc(&xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Action: "explode"}},
	}); err == nil {
		t.Error("unknown action accepted")
	}
	if _, err := PolicyFromDoc(&xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Class: "meltdown", Action: "deny"}},
	}); err == nil {
		t.Error("unknown class accepted")
	}
	// A retry rule without a count still retries at least once.
	e, err := PolicyFromDoc(&xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Action: "retry"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Decide("f", gen.ClassCrash); d.Retries != 1 {
		t.Errorf("defaulted retries = %d, want 1", d.Retries)
	}
}

func TestPolicyDocRoundTrip(t *testing.T) {
	doc := xmlrep.NewPolicyDoc(4, 250, []xmlrep.PolicyRuleXML{
		{Func: "read", Class: "hang", Action: "retry", Retries: 2},
		{Action: "deny"},
	})
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if k, err := xmlrep.Kind(data); err != nil || k != xmlrep.KindPolicy {
		t.Fatalf("Kind = %v, %v; want policy", k, err)
	}
	back, err := xmlrep.Unmarshal[xmlrep.PolicyDoc](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.BreakerThreshold != 4 || back.BreakerWindowMS != 250 || len(back.Rules) != 2 {
		t.Errorf("round trip = %+v", back)
	}
	if back.Rules[0].Func != "read" || back.Rules[0].Retries != 2 {
		t.Errorf("rule 0 = %+v", back.Rules[0])
	}
	if _, err := PolicyFromDoc(back); err != nil {
		t.Errorf("parsed doc rejected: %v", err)
	}
}

func TestContainmentWrapperEndToEnd(t *testing.T) {
	lc := libc(t)
	wrapper, st, err := Containment(lc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	// A healthy call is transparent.
	s, _ := env.Img.StaticString("hello")
	if v, f := call("strlen", cval.Ptr(s)); f != nil || v.Uint32() != 5 {
		t.Fatalf("strlen = %v, %v", v, f)
	}
	// A crashing call is contained, not fatal.
	env.Errno = 0
	v, f := call("strlen", cval.Ptr(0))
	if f != nil {
		t.Fatalf("contained strlen faulted: %v", f)
	}
	if v.Int32() != -1 || env.Errno != cval.EFAULT {
		t.Errorf("contained strlen = %d, errno %d; want -1/EFAULT", v.Int32(), env.Errno)
	}
	st.Sync()
	idx := st.Index("strlen")
	if st.ContainedCount[idx] != 1 {
		t.Errorf("ContainedCount = %d, want 1", st.ContainedCount[idx])
	}
	// The default breaker eventually flips strlen to upfront deny.
	for i := 0; i < DefaultBreakerThreshold; i++ {
		call("strlen", cval.Ptr(0))
	}
	st.Sync()
	if st.BreakerTrips[idx] != 1 {
		t.Errorf("BreakerTrips = %d, want 1", st.BreakerTrips[idx])
	}
	env.Errno = 0
	call("strlen", cval.Ptr(0))
	if env.Errno != cval.EDenied {
		t.Errorf("post-trip errno = %d, want EDenied", env.Errno)
	}
}

func TestContainmentWithArgCheckDeniesFirst(t *testing.T) {
	lc := libc(t)
	api := StrongestAPI([]*ctypes.Prototype{lc.Proto("strlen")})
	wrapper, st, err := Containment(lc, api, nil, []string{"strlen"})
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)
	env.Errno = 0
	v, f := call("strlen", cval.Ptr(0))
	if f != nil {
		t.Fatalf("checked call faulted: %v", f)
	}
	// The argument check vetoes before the call: EDenied, not EFAULT,
	// and nothing to contain.
	if v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("ret=%d errno=%d, want -1/EDenied", v.Int32(), env.Errno)
	}
	st.Sync()
	idx := st.Index("strlen")
	if st.ContainedCount[idx] != 0 || st.DeniedCount[idx] != 1 {
		t.Errorf("contained=%d denied=%d, want 0/1", st.ContainedCount[idx], st.DeniedCount[idx])
	}
}
