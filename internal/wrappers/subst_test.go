package wrappers

import (
	"sync"
	"testing"

	"healers/internal/clib"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/gen"
	"healers/internal/simelf"
)

// robustLib builds the full robustness wrapper (with substitutions) over
// libc and returns the loaded link map plus the shared state, so tests
// can run calls from any number of independent envs.
func robustLib(t *testing.T) (*dynlink.Linkmap, *gen.State) {
	t.Helper()
	lc := clib.MustRegistry().AsLibrary()
	wrapper, st, err := Robustness(lc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(lc); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "app", Needed: []string{clib.LibcSoname}}); err != nil {
		t.Fatal(err)
	}
	lm, err := dynlink.Load(sys, "app", []string{wrapper.Soname})
	if err != nil {
		t.Fatal(err)
	}
	return lm, st
}

func TestSubstSprintfTooFewArgs(t *testing.T) {
	lc := libc(t)
	wrapper, st, err := Robustness(lc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	env.Errno = 0
	v, f := call("sprintf") // no destination, no format
	if f != nil {
		t.Fatalf("argless sprintf faulted: %v", f)
	}
	if v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("argless sprintf = %d, errno %d; want -1/EDenied", v.Int32(), env.Errno)
	}
	st.Sync()
	idx := st.Index("sprintf")
	if st.DeniedCount[idx] != 1 || st.CallCount[idx] != 1 {
		t.Errorf("denied=%d calls=%d, want 1/1", st.DeniedCount[idx], st.CallCount[idx])
	}
	// One destination but no format string is still too few.
	dst, _ := env.Img.StaticString("xxxxxxxx")
	env.Errno = 0
	if v, _ := call("sprintf", cval.Ptr(dst)); v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("format-less sprintf = %d, errno %d; want -1/EDenied", v.Int32(), env.Errno)
	}
}

func TestSubstGetsTooFewArgs(t *testing.T) {
	lc := libc(t)
	wrapper, st, err := Robustness(lc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	env.Errno = 0
	v, f := call("gets")
	if f != nil {
		t.Fatalf("argless gets faulted: %v", f)
	}
	if !v.IsNull() || env.Errno != cval.EDenied {
		t.Errorf("argless gets = %v, errno %d; want NULL/EDenied", v, env.Errno)
	}
	st.Sync()
	if st.DeniedCount[st.Index("gets")] != 1 {
		t.Errorf("DeniedCount = %d, want 1", st.DeniedCount[st.Index("gets")])
	}
}

func TestSubstGetsUnwritableDestination(t *testing.T) {
	lc := libc(t)
	wrapper, st, err := Robustness(lc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)
	env.Stdin.WriteString("input line\n")

	env.Errno = 0
	v, f := call("gets", cval.Ptr(0xdead0000)) // unmapped
	if f != nil {
		t.Fatalf("gets into unmapped memory faulted: %v", f)
	}
	if !v.IsNull() || env.Errno != cval.EDenied {
		t.Errorf("gets(wild) = %v, errno %d; want NULL/EDenied", v, env.Errno)
	}
	// Read-only memory is as unwritable as unmapped memory.
	ro, _ := env.Img.LiteralString("readonly")
	env.Errno = 0
	if v, _ := call("gets", cval.Ptr(ro)); !v.IsNull() || env.Errno != cval.EDenied {
		t.Errorf("gets(rodata) = %v, errno %d; want NULL/EDenied", v, env.Errno)
	}
	st.Sync()
	if got := st.DeniedCount[st.Index("gets")]; got != 2 {
		t.Errorf("DeniedCount = %d, want 2", got)
	}
}

func TestSubstSprintfPercentNRejected(t *testing.T) {
	lc := libc(t)
	wrapper, _, err := Robustness(lc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	env, call := loadWith(t, wrapper)

	// A writable heap destination, a hostile format: the substitution's
	// own format validation must reject %n even though the bounded
	// snprintf would cap the write.
	dst, f := call("malloc", cval.Uint(64))
	if f != nil || dst.IsNull() {
		t.Fatalf("malloc = %v, %v", dst, f)
	}
	evil, _ := env.Img.StaticString("hi %n there")
	env.Errno = 0
	v, f := call("sprintf", cval.Ptr(dst.Addr()), cval.Ptr(evil))
	if f != nil {
		t.Fatalf("%%n sprintf faulted: %v", f)
	}
	if v.Int32() != -1 || env.Errno != cval.EDenied {
		t.Errorf("%%n sprintf = %d, errno %d; want -1/EDenied", v.Int32(), env.Errno)
	}
}

// TestSubstSprintfParallelProbes hammers one substituted symbol from
// many goroutines, each with its own simulated process against the
// shared wrapper library — the parallel fault-injection campaign shape.
// Run under -race (make check does) this pins the locked accounting in
// the substitution paths: AddCall/NoteDeny on the shared State.
func TestSubstSprintfParallelProbes(t *testing.T) {
	lm, st := robustLib(t)
	fn, ok := lm.Resolve("sprintf")
	if !ok {
		t.Fatal("resolve sprintf")
	}
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := cval.NewEnv()
			dst, _ := env.Img.StaticString("xxxxxxxxxxxxxxxx")
			fmtStr, _ := env.Img.StaticString("n=%d")
			for i := 0; i < iters; i++ {
				// Alternate a denied call (too few args) with a valid
				// bounded one, so both accounting paths interleave.
				if _, f := fn(env, nil); f != nil {
					t.Errorf("denied sprintf faulted: %v", f)
					return
				}
				if _, f := fn(env, []cval.Value{cval.Ptr(dst), cval.Ptr(fmtStr), cval.Int(int64(i))}); f != nil {
					t.Errorf("bounded sprintf faulted: %v", f)
					return
				}
			}
		}()
	}
	wg.Wait()
	st.Sync()
	idx := st.Index("sprintf")
	if st.CallCount[idx] != workers*iters*2 {
		t.Errorf("CallCount = %d, want %d", st.CallCount[idx], workers*iters*2)
	}
	if st.DeniedCount[idx] != workers*iters {
		t.Errorf("DeniedCount = %d, want %d", st.DeniedCount[idx], workers*iters)
	}
}
