package wrappers

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/gen"
	"healers/internal/simelf"
)

// Bounded substitutions for the functions the fault injector flags as
// *uncontainable*: no argument check can make sprintf or gets safe,
// because nothing in their argument lists bounds the write. HEALERS'
// answer (companion paper, DSN 2002) is to rewrite the call into the
// bounded variant using the destination buffer's actual capacity:
//
//	sprintf(dst, fmt, ...)  ->  snprintf(dst, capacity(dst), fmt, ...)
//	gets(s)                 ->  fgets_fd(s, capacity(s), 0)
//
// capacity() is the byte-accurate heap-chunk room when dst is a live
// allocation, else the contiguous writable mapping span.

// maxCapScan bounds the capacity probe.
const maxCapScan = 1 << 20

// capacityOf computes how many bytes can safely be written at dst.
func capacityOf(env *cval.Env, dst cmem.Addr) uint32 {
	if base, size, ok := env.Img.Heap.ChunkRange(dst); ok {
		end := uint32(base) + size
		if uint32(dst) >= end {
			return 0
		}
		return end - uint32(dst)
	}
	return env.Img.Space.MappedLen(dst, cmem.ProtRead|cmem.ProtWrite, maxCapScan)
}

// denyInt denies a call with errno EDenied and -1.
func denyInt(env *cval.Env, st *gen.State, idx int, reason string) (cval.Value, *cmem.Fault) {
	env.Errno = cval.EDenied
	st.NoteDeny(env, idx, reason)
	return cval.Int(-1), nil
}

// substSprintf builds the bounded sprintf replacement.
func substSprintf(next simelf.NextFunc, st *gen.State) (cval.CFunc, error) {
	snprintf, ok := next("snprintf")
	if !ok {
		return nil, fmt.Errorf("wrappers: no snprintf below the wrapper")
	}
	idx := st.Index("sprintf")
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		st.AddCall(env, idx)
		if len(args) < 2 {
			return denyInt(env, st, idx, "sprintf: too few arguments")
		}
		dst := args[0]
		capacity := capacityOf(env, dst.Addr())
		if capacity == 0 {
			return denyInt(env, st, idx, "sprintf: destination not writable")
		}
		// The substitution bypasses the arg-check micro-generator, so
		// it validates the format string itself: readable,
		// NUL-terminated, and free of %n.
		fmtOK := ctypes.ChainFmt.Levels[ctypes.ChainFmt.Strongest()]
		if !fmtOK.Check(env, args[1], ctypes.Need{}) {
			return denyInt(env, st, idx, "sprintf: format string rejected")
		}
		bounded := make([]cval.Value, 0, len(args)+1)
		bounded = append(bounded, dst, cval.Uint(uint64(capacity)))
		bounded = append(bounded, args[1:]...)
		return snprintf(env, bounded)
	}, nil
}

// substGets builds the bounded gets replacement.
func substGets(next simelf.NextFunc, st *gen.State) (cval.CFunc, error) {
	fgets, ok := next("fgets_fd")
	if !ok {
		return nil, fmt.Errorf("wrappers: no fgets_fd below the wrapper")
	}
	idx := st.Index("gets")
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		st.AddCall(env, idx)
		if len(args) < 1 {
			env.Errno = cval.EDenied
			st.NoteDeny(env, idx, "gets: too few arguments")
			return cval.Ptr(0), nil
		}
		dst := args[0]
		capacity := capacityOf(env, dst.Addr())
		if capacity == 0 {
			env.Errno = cval.EDenied
			st.NoteDeny(env, idx, "gets: destination not writable")
			return cval.Ptr(0), nil
		}
		return fgets(env, []cval.Value{dst, cval.Int(int64(capacity)), cval.Int(0)})
	}, nil
}

// boundedSubstitutions is the substitution table the robustness wrapper
// installs for uncontainable functions.
func boundedSubstitutions() map[string]gen.Subst {
	return map[string]gen.Subst{
		"sprintf": substSprintf,
		"gets":    substGets,
	}
}
