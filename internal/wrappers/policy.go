package wrappers

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"healers/internal/cval"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// PolicyEngine implements gen.ContainPolicy: a rule table mapping
// (function, failure class) to a recovery action, plus a per-function
// circuit breaker. The engine is shared by every wrapped function of a
// containment wrapper library and, like gen.State, may be consulted from
// concurrent probe processes.
//
// The rule table is hot-swappable: ApplyDoc atomically replaces the
// whole rule set (rules, breaker parameters, revision) in one pointer
// store, so a running process picks up a new recovery policy without a
// restart and no Decide call ever observes a half-applied table. Decide
// is therefore lock-free; only the breaker's failure records sit behind
// a mutex. Breaker trip state survives a reload on purpose — a new rule
// set does not forgive a function the breaker already condemned (use
// ResetBreakers for amnesty).
type PolicyEngine struct {
	// live is the current immutable rule set; swapped wholesale on
	// reload, never mutated in place.
	live atomic.Pointer[ruleSet]

	// mu guards the breaker failure records.
	mu    sync.Mutex
	state map[string]*breakerState

	reloads  atomic.Uint64
	rejected atomic.Uint64

	// now is the clock, injectable for window tests.
	now func() time.Time
}

// ruleSet is one immutable generation of the engine's configuration.
// Reloads build a fresh ruleSet and publish it with a single atomic
// store; readers load the pointer once per decision and work on a
// consistent snapshot.
type ruleSet struct {
	rules    []PolicyRule
	breaker  BreakerConfig
	revision int
}

// PolicyRule is one recovery rule; the first rule matching both Func and
// Class wins. An empty or "*" Func/Class matches anything.
type PolicyRule struct {
	Func     string
	Class    string
	Decision gen.ContainDecision
	// BreakerThreshold, when > 0, overrides the engine-level breaker
	// threshold for failures matched by this rule — the escalation
	// ladder's last rung (a one-strike breaker for a single function).
	BreakerThreshold int
}

// matches reports whether the rule applies to (fn, class).
func (r *PolicyRule) matches(fn string, class gen.FailureClass) bool {
	if r.Func != "" && r.Func != "*" && r.Func != fn {
		return false
	}
	if r.Class != "" && r.Class != "*" && r.Class != class.String() {
		return false
	}
	return true
}

// BreakerConfig parametrizes the circuit breaker: a function reaching
// Threshold contained failures within Window flips to always-deny.
// Threshold <= 0 disables the breaker.
type BreakerConfig struct {
	Threshold int
	Window    time.Duration
}

// Circuit-breaker defaults: trip after 8 contained failures within a
// minute. The window keeps one failure burst from condemning a function
// forever on long-running processes with rare sporadic faults.
const (
	DefaultBreakerThreshold = 8
	DefaultBreakerWindow    = time.Minute
)

// breakerState is one function's failure record.
type breakerState struct {
	failures []time.Time
	tripped  bool
}

// NewPolicyEngine builds an engine from a rule table and breaker
// configuration. A zero-valued BreakerConfig gets the defaults; rules
// may be nil (every failure is denied with its class errno). The
// engine starts at revision 0: any stamped policy document revision
// hot-reloads over it.
func NewPolicyEngine(rules []PolicyRule, breaker BreakerConfig) *PolicyEngine {
	if breaker.Threshold == 0 {
		breaker.Threshold = DefaultBreakerThreshold
	}
	if breaker.Window <= 0 {
		breaker.Window = DefaultBreakerWindow
	}
	e := &PolicyEngine{
		state: make(map[string]*breakerState),
		now:   time.Now,
	}
	e.live.Store(&ruleSet{rules: rules, breaker: breaker})
	return e
}

// DefaultPolicy is the containment wrapper's stock policy: deny every
// failure with its class errno, default breaker.
func DefaultPolicy() *PolicyEngine { return NewPolicyEngine(nil, BreakerConfig{}) }

// SoakPolicy is the recovery policy a sustained-chaos soak installs:
// every failure is denied with its class errno — the daemon's own
// retry loop replays the request — and the circuit breaker is disabled
// (Threshold < 0), because condemning a hot function for transient
// *injected* faults would turn sustained chaos into a permanent denial
// of service.
func SoakPolicy() *PolicyEngine { return NewPolicyEngine(nil, BreakerConfig{Threshold: -1}) }

// Decide implements gen.ContainPolicy. It is lock-free: one atomic load
// of the current rule set, then a scan of an immutable table.
func (e *PolicyEngine) Decide(fn string, class gen.FailureClass) gen.ContainDecision {
	rs := e.live.Load()
	for i := range rs.rules {
		if rs.rules[i].matches(fn, class) {
			return rs.rules[i].Decision
		}
	}
	return gen.ContainDecision{Action: gen.ActionDeny}
}

// RecordFailure implements gen.ContainPolicy: it notes one contained
// failure of fn and reports the trip transition. The effective breaker
// threshold is the first matching rule's override when it has one, else
// the rule set's engine-level threshold.
func (e *PolicyEngine) RecordFailure(fn string, class gen.FailureClass) bool {
	rs := e.live.Load()
	threshold := rs.breaker.Threshold
	for i := range rs.rules {
		if rs.rules[i].matches(fn, class) {
			if rs.rules[i].BreakerThreshold > 0 {
				threshold = rs.rules[i].BreakerThreshold
			}
			break
		}
	}
	if threshold <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	bs := e.state[fn]
	if bs == nil {
		bs = &breakerState{}
		e.state[fn] = bs
	}
	if bs.tripped {
		return false
	}
	now := e.now()
	cutoff := now.Add(-rs.breaker.Window)
	kept := bs.failures[:0]
	for _, t := range bs.failures {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	bs.failures = append(kept, now)
	if len(bs.failures) >= threshold {
		bs.tripped = true
		bs.failures = nil
		return true
	}
	return false
}

// Tripped implements gen.ContainPolicy.
func (e *PolicyEngine) Tripped(fn string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	bs := e.state[fn]
	return bs != nil && bs.tripped
}

// ResetBreakers clears every function's failure record and trip latch —
// between profiled runs of one long-lived wrapper library.
func (e *PolicyEngine) ResetBreakers() {
	e.mu.Lock()
	e.state = make(map[string]*breakerState)
	e.mu.Unlock()
}

// Revision reports the policy-document revision the engine currently
// runs (0 until a stamped document has been loaded or applied).
func (e *PolicyEngine) Revision() int { return e.live.Load().revision }

// Reloads reports how many rule-set hot swaps ApplyDoc has performed.
func (e *PolicyEngine) Reloads() uint64 { return e.reloads.Load() }

// RejectedReloads reports how many ApplyDoc attempts were refused
// (corrupted, malformed, unstamped, or stale documents); each left the
// previous rules in force.
func (e *PolicyEngine) RejectedReloads() uint64 { return e.rejected.Load() }

// Breaker returns the engine-level breaker configuration of the current
// rule set.
func (e *PolicyEngine) Breaker() BreakerConfig { return e.live.Load().breaker }

// ApplyDoc hot-swaps the engine's rule set to a stamped policy document.
// The document must validate (see xmlrep.PolicyDoc.Validate), must carry
// a checksum (an unstamped document cannot prove its integrity), and its
// revision must be strictly greater than the engine's — a replayed or
// stale revision is refused. On any rejection the previous rules stay in
// force and RejectedReloads is bumped; on success the swap is one atomic
// pointer store and Reloads is bumped. Concurrent Decide/RecordFailure
// calls see either the old or the new rule set, never a mix.
func (e *PolicyEngine) ApplyDoc(doc *xmlrep.PolicyDoc) error {
	rs, err := compileRuleSet(doc)
	if err != nil {
		e.rejected.Add(1)
		return err
	}
	if doc.Checksum == "" {
		e.rejected.Add(1)
		return fmt.Errorf("wrappers: policy reload: document is unstamped (no checksum); refusing to hot-load")
	}
	// Publish with a CAS loop so two concurrent ApplyDoc calls cannot
	// both install the same revision, and a newer revision racing an
	// older one cannot be overwritten by it.
	for {
		cur := e.live.Load()
		if doc.Revision <= cur.revision {
			e.rejected.Add(1)
			return fmt.Errorf("wrappers: policy reload: stale revision %d (running %d)", doc.Revision, cur.revision)
		}
		if e.live.CompareAndSwap(cur, rs) {
			e.reloads.Add(1)
			return nil
		}
	}
}

// ApplyXML unmarshals a policy document and hot-swaps it in (see
// ApplyDoc for the acceptance rules).
func (e *PolicyEngine) ApplyXML(data []byte) error {
	doc, err := xmlrep.Unmarshal[xmlrep.PolicyDoc](data)
	if err != nil {
		e.rejected.Add(1)
		return fmt.Errorf("wrappers: policy reload: %w", err)
	}
	return e.ApplyDoc(doc)
}

// compileRuleSet validates a policy document and compiles it into an
// immutable ruleSet — the shared back end of PolicyFromDoc (initial
// load) and ApplyDoc (hot reload).
func compileRuleSet(doc *xmlrep.PolicyDoc) (*ruleSet, error) {
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("wrappers: policy: %w", err)
	}
	rules := make([]PolicyRule, 0, len(doc.Rules))
	for _, rx := range doc.Rules {
		action, _ := gen.ContainActionByName(rx.Action) // Validate vetted the name
		d := gen.ContainDecision{
			Action:  action,
			Retries: rx.Retries,
			Backoff: time.Duration(rx.BackoffMS) * time.Millisecond,
		}
		if action == gen.ActionRetry && d.Retries <= 0 {
			d.Retries = 1
		}
		if action == gen.ActionSubstitute {
			v := cval.Int(rx.Value)
			d.Substitute = &v
		}
		rules = append(rules, PolicyRule{
			Func:             rx.Func,
			Class:            rx.Class,
			Decision:         d,
			BreakerThreshold: rx.BreakerThreshold,
		})
	}
	breaker := BreakerConfig{
		Threshold: doc.BreakerThreshold,
		Window:    time.Duration(doc.BreakerWindowMS) * time.Millisecond,
	}
	if breaker.Threshold == 0 {
		breaker.Threshold = DefaultBreakerThreshold
	}
	if breaker.Window <= 0 {
		breaker.Window = DefaultBreakerWindow
	}
	return &ruleSet{rules: rules, breaker: breaker, revision: doc.Revision}, nil
}

// PolicyFromDoc builds the engine a policy XML document describes. Unlike
// ApplyDoc it accepts unstamped (revision 0, no checksum) documents —
// the initial load of a local file needs no replay protection — but a
// present checksum must still match.
func PolicyFromDoc(doc *xmlrep.PolicyDoc) (*PolicyEngine, error) {
	rs, err := compileRuleSet(doc)
	if err != nil {
		return nil, err
	}
	e := &PolicyEngine{
		state: make(map[string]*breakerState),
		now:   time.Now,
	}
	e.live.Store(rs)
	return e, nil
}
