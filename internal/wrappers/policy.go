package wrappers

import (
	"fmt"
	"sync"
	"time"

	"healers/internal/cval"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// PolicyEngine implements gen.ContainPolicy: a rule table mapping
// (function, failure class) to a recovery action, plus a per-function
// circuit breaker. The engine is shared by every wrapped function of a
// containment wrapper library and, like gen.State, may be consulted from
// concurrent probe processes — all mutable state sits behind one mutex.
type PolicyEngine struct {
	mu      sync.Mutex
	rules   []PolicyRule
	breaker BreakerConfig
	state   map[string]*breakerState

	// now is the clock, injectable for window tests.
	now func() time.Time
}

// PolicyRule is one recovery rule; the first rule matching both Func and
// Class wins. An empty or "*" Func/Class matches anything.
type PolicyRule struct {
	Func     string
	Class    string
	Decision gen.ContainDecision
}

// matches reports whether the rule applies to (fn, class).
func (r *PolicyRule) matches(fn string, class gen.FailureClass) bool {
	if r.Func != "" && r.Func != "*" && r.Func != fn {
		return false
	}
	if r.Class != "" && r.Class != "*" && r.Class != class.String() {
		return false
	}
	return true
}

// BreakerConfig parametrizes the circuit breaker: a function reaching
// Threshold contained failures within Window flips to always-deny.
// Threshold <= 0 disables the breaker.
type BreakerConfig struct {
	Threshold int
	Window    time.Duration
}

// Circuit-breaker defaults: trip after 8 contained failures within a
// minute. The window keeps one failure burst from condemning a function
// forever on long-running processes with rare sporadic faults.
const (
	DefaultBreakerThreshold = 8
	DefaultBreakerWindow    = time.Minute
)

// breakerState is one function's failure record.
type breakerState struct {
	failures []time.Time
	tripped  bool
}

// NewPolicyEngine builds an engine from a rule table and breaker
// configuration. A zero-valued BreakerConfig gets the defaults; rules
// may be nil (every failure is denied with its class errno).
func NewPolicyEngine(rules []PolicyRule, breaker BreakerConfig) *PolicyEngine {
	if breaker.Threshold == 0 {
		breaker.Threshold = DefaultBreakerThreshold
	}
	if breaker.Window <= 0 {
		breaker.Window = DefaultBreakerWindow
	}
	return &PolicyEngine{
		rules:   rules,
		breaker: breaker,
		state:   make(map[string]*breakerState),
		now:     time.Now,
	}
}

// DefaultPolicy is the containment wrapper's stock policy: deny every
// failure with its class errno, default breaker.
func DefaultPolicy() *PolicyEngine { return NewPolicyEngine(nil, BreakerConfig{}) }

// Decide implements gen.ContainPolicy.
func (e *PolicyEngine) Decide(fn string, class gen.FailureClass) gen.ContainDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		if e.rules[i].matches(fn, class) {
			return e.rules[i].Decision
		}
	}
	return gen.ContainDecision{Action: gen.ActionDeny}
}

// RecordFailure implements gen.ContainPolicy: it notes one contained
// failure of fn and reports the trip transition.
func (e *PolicyEngine) RecordFailure(fn string, class gen.FailureClass) bool {
	if e.breaker.Threshold <= 0 {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	bs := e.state[fn]
	if bs == nil {
		bs = &breakerState{}
		e.state[fn] = bs
	}
	if bs.tripped {
		return false
	}
	now := e.now()
	cutoff := now.Add(-e.breaker.Window)
	kept := bs.failures[:0]
	for _, t := range bs.failures {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	bs.failures = append(kept, now)
	if len(bs.failures) >= e.breaker.Threshold {
		bs.tripped = true
		bs.failures = nil
		return true
	}
	return false
}

// Tripped implements gen.ContainPolicy.
func (e *PolicyEngine) Tripped(fn string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	bs := e.state[fn]
	return bs != nil && bs.tripped
}

// ResetBreakers clears every function's failure record and trip latch —
// between profiled runs of one long-lived wrapper library.
func (e *PolicyEngine) ResetBreakers() {
	e.mu.Lock()
	e.state = make(map[string]*breakerState)
	e.mu.Unlock()
}

// PolicyFromDoc builds the engine a policy XML document describes.
func PolicyFromDoc(doc *xmlrep.PolicyDoc) (*PolicyEngine, error) {
	rules := make([]PolicyRule, 0, len(doc.Rules))
	for i, rx := range doc.Rules {
		action, ok := gen.ContainActionByName(rx.Action)
		if !ok {
			return nil, fmt.Errorf("wrappers: policy rule %d: unknown action %q", i, rx.Action)
		}
		if rx.Class != "" && rx.Class != "*" {
			known := false
			for c := gen.ClassCrash; c <= gen.ClassOOM; c++ {
				if c.String() == rx.Class {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("wrappers: policy rule %d: unknown failure class %q", i, rx.Class)
			}
		}
		d := gen.ContainDecision{
			Action:  action,
			Retries: rx.Retries,
			Backoff: time.Duration(rx.BackoffMS) * time.Millisecond,
		}
		if action == gen.ActionRetry && d.Retries <= 0 {
			d.Retries = 1
		}
		if action == gen.ActionSubstitute {
			v := cval.Int(rx.Value)
			d.Substitute = &v
		}
		rules = append(rules, PolicyRule{Func: rx.Func, Class: rx.Class, Decision: d})
	}
	return NewPolicyEngine(rules, BreakerConfig{
		Threshold: doc.BreakerThreshold,
		Window:    time.Duration(doc.BreakerWindowMS) * time.Millisecond,
	}), nil
}
