package wrappers

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"healers/internal/xmlrep"
)

// PolicySource yields the latest candidate policy document for a
// subscribed engine, or (nil, nil) when nothing newer is available —
// the poll-quietly contract that keeps an idle subscription free of
// spurious reload attempts. Implementations: FilePolicySource (a
// file-watched document) and a closure over collect.FetchPolicy (a
// control-plane fetch over the wire).
type PolicySource func() (*xmlrep.PolicyDoc, error)

// FilePolicySource watches a policy file: each call re-reads path and
// returns the parsed document only when the file's content has changed
// since the previous call (first call always reports). A missing file
// is not an error — the document simply is not there yet.
func FilePolicySource(path string) PolicySource {
	var last []byte
	return func() (*xmlrep.PolicyDoc, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, fmt.Errorf("wrappers: policy watch: %w", err)
		}
		if bytes.Equal(data, last) {
			return nil, nil
		}
		doc, err := xmlrep.Unmarshal[xmlrep.PolicyDoc](data)
		if err != nil {
			// Remember the bad content so one corrupted write is
			// reported once, not on every poll tick.
			last = data
			return nil, fmt.Errorf("wrappers: policy watch: %w", err)
		}
		last = data
		return doc, nil
	}
}

// ReloadEvent reports one subscription poll that did something: a
// successful hot swap (Applied true, Revision the new revision) or a
// failure (Err set — source error or ApplyDoc rejection).
type ReloadEvent struct {
	Revision int
	Applied  bool
	Err      error
}

// Subscribe polls src every interval and hot-swaps newer policy
// documents into the engine. Documents whose revision is not greater
// than the engine's are skipped silently (the steady state of an idle
// poll); anything else goes through ApplyDoc and its acceptance rules.
// onEvent, when non-nil, observes every swap and every failure. The
// returned stop function cancels the subscription and waits for the
// poll goroutine to exit; it is idempotent.
func (e *PolicyEngine) Subscribe(src PolicySource, interval time.Duration, onEvent func(ReloadEvent)) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			e.pollOnce(src, onEvent)
			select {
			case <-quit:
				return
			case <-t.C:
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(quit)
			<-done
		}
	}
}

// pollOnce runs one subscription tick: fetch, skip-if-not-newer, apply.
func (e *PolicyEngine) pollOnce(src PolicySource, onEvent func(ReloadEvent)) {
	doc, err := src()
	if err != nil {
		if onEvent != nil {
			onEvent(ReloadEvent{Revision: e.Revision(), Err: err})
		}
		return
	}
	if doc == nil || doc.Revision <= e.Revision() {
		return
	}
	if err := e.ApplyDoc(doc); err != nil {
		if onEvent != nil {
			onEvent(ReloadEvent{Revision: e.Revision(), Err: err})
		}
		return
	}
	if onEvent != nil {
		onEvent(ReloadEvent{Revision: doc.Revision, Applied: true})
	}
}
