package wrappers

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// stampedDoc builds a valid policy document at the given revision whose
// single rule maps every failure to action.
func stampedDoc(revision int, action string) *xmlrep.PolicyDoc {
	doc := &xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Func: "*", Class: "*", Action: action}},
	}
	doc.Stamp(revision)
	return doc
}

func TestApplyDocHotSwap(t *testing.T) {
	e := DefaultPolicy()
	if got := e.Decide("malloc", gen.ClassCrash).Action; got != gen.ActionDeny {
		t.Fatalf("default decision = %v, want deny", got)
	}
	if err := e.ApplyDoc(stampedDoc(1, "retry")); err != nil {
		t.Fatalf("ApplyDoc: %v", err)
	}
	if got := e.Decide("malloc", gen.ClassCrash).Action; got != gen.ActionRetry {
		t.Errorf("post-reload decision = %v, want retry", got)
	}
	if e.Revision() != 1 || e.Reloads() != 1 || e.RejectedReloads() != 0 {
		t.Errorf("revision/reloads/rejected = %d/%d/%d, want 1/1/0",
			e.Revision(), e.Reloads(), e.RejectedReloads())
	}
}

// TestApplyDocRejections is the reload-rejection table: every corrupted,
// stale, or unstamped document must be refused, leave the previous rules
// in force, and bump the rejected counter.
func TestApplyDocRejections(t *testing.T) {
	corrupted := stampedDoc(5, "retry")
	corrupted.Checksum = strings.Repeat("0", 64)
	unknownAction := stampedDoc(5, "retry")
	unknownAction.Rules[0].Action = "explode"
	unknownAction.Checksum = unknownAction.ComputeChecksum()
	unknownClass := stampedDoc(5, "retry")
	unknownClass.Rules[0].Class = "meltdown"
	unknownClass.Checksum = unknownClass.ComputeChecksum()
	negRetries := stampedDoc(5, "retry")
	negRetries.Rules[0].Retries = -1
	negRetries.Checksum = negRetries.ComputeChecksum()
	unstamped := stampedDoc(5, "retry")
	unstamped.Checksum = ""

	tests := []struct {
		name string
		doc  *xmlrep.PolicyDoc
		want string
	}{
		{"corrupted checksum", corrupted, "checksum"},
		{"unknown action", unknownAction, "action"},
		{"unknown class", unknownClass, "class"},
		{"negative retries", negRetries, "negative"},
		{"unstamped", unstamped, "unstamped"},
		{"stale revision", stampedDoc(2, "retry"), "stale"},
		{"same revision", stampedDoc(3, "retry"), "stale"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := DefaultPolicy()
			if err := e.ApplyDoc(stampedDoc(3, "substitute")); err != nil {
				t.Fatalf("baseline ApplyDoc: %v", err)
			}
			rejectedBefore := e.RejectedReloads()
			err := e.ApplyDoc(tt.doc)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("ApplyDoc error = %v, want substring %q", err, tt.want)
			}
			if got := e.Decide("x", gen.ClassCrash).Action; got != gen.ActionSubstitute {
				t.Errorf("rejected reload changed the live rules: decision = %v", got)
			}
			if e.Revision() != 3 {
				t.Errorf("rejected reload changed the revision: %d", e.Revision())
			}
			if e.RejectedReloads() != rejectedBefore+1 {
				t.Errorf("rejected counter = %d, want %d", e.RejectedReloads(), rejectedBefore+1)
			}
		})
	}
}

func TestApplyXMLMalformed(t *testing.T) {
	e := DefaultPolicy()
	if err := e.ApplyXML([]byte("<healers-policy><rule")); err == nil {
		t.Fatal("malformed XML accepted")
	}
	if e.RejectedReloads() != 1 {
		t.Errorf("rejected counter = %d, want 1", e.RejectedReloads())
	}
}

// TestReloadKeepsBreakerState: a hot reload must not grant amnesty — a
// function the breaker already condemned stays condemned under the new
// rules.
func TestReloadKeepsBreakerState(t *testing.T) {
	e := NewPolicyEngine(nil, BreakerConfig{Threshold: 2})
	e.RecordFailure("malloc", gen.ClassCrash)
	if !e.RecordFailure("malloc", gen.ClassCrash) {
		t.Fatal("breaker did not trip at threshold")
	}
	if err := e.ApplyDoc(stampedDoc(1, "retry")); err != nil {
		t.Fatalf("ApplyDoc: %v", err)
	}
	if !e.Tripped("malloc") {
		t.Error("reload forgave a tripped breaker")
	}
}

// TestPerRuleBreakerThreshold: a rule-level override must trip the
// breaker ahead of the engine-wide threshold — the escalation ladder's
// one-strike rung.
func TestPerRuleBreakerThreshold(t *testing.T) {
	doc := &xmlrep.PolicyDoc{
		BreakerThreshold: 100,
		Rules: []xmlrep.PolicyRuleXML{
			{Func: "malloc", Class: "*", Action: "deny", BreakerThreshold: 1},
			{Func: "*", Class: "*", Action: "deny"},
		},
	}
	e, err := PolicyFromDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !e.RecordFailure("malloc", gen.ClassCrash) {
		t.Error("one-strike rule did not trip on the first failure")
	}
	if e.RecordFailure("free", gen.ClassCrash) {
		t.Error("engine-wide threshold (100) tripped on the first failure")
	}
}

// TestHotReloadRace hammers the engine from eight goroutines mixing
// Decide, RecordFailure, and Tripped while another goroutine swaps rule
// sets as fast as it can. Run under -race (the tier-1 gate does) this
// is the proof that reload atomicity holds: no torn rule tables, no
// locked/lock-free interleaving hazards.
func TestHotReloadRace(t *testing.T) {
	e := DefaultPolicy()
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	actions := []string{"retry", "deny", "substitute"}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rev := 1; !stopFlag.Load(); rev++ {
			if err := e.ApplyDoc(stampedDoc(rev, actions[rev%len(actions)])); err != nil {
				t.Errorf("ApplyDoc rev %d: %v", rev, err)
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fn := fmt.Sprintf("fn%d", g)
			for i := 0; i < 5000; i++ {
				d := e.Decide(fn, gen.FailureClass(i%gen.NumFailureClasses))
				// Whatever generation we read, the decision must be one
				// of the three published actions or the default deny.
				switch d.Action {
				case gen.ActionDeny, gen.ActionRetry, gen.ActionSubstitute:
				default:
					t.Errorf("torn decision: %v", d.Action)
					return
				}
				e.RecordFailure(fn, gen.ClassCrash)
				e.Tripped(fn)
			}
		}(g)
	}
	// Let the hammer run, then stop the swapper — but never before it
	// has published at least one generation, or a heavily loaded test
	// machine could end the race without any reload to race against.
	for deadline := time.Now().Add(10 * time.Second); e.Reloads() == 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	stopFlag.Store(true)
	wg.Wait()
	if e.Reloads() == 0 {
		t.Error("swapper never reloaded")
	}
}

func TestFilePolicySource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.xml")
	src := FilePolicySource(path)

	// Missing file: not there yet, not an error.
	if doc, err := src(); doc != nil || err != nil {
		t.Fatalf("missing file: doc=%v err=%v", doc, err)
	}

	doc1 := stampedDoc(1, "retry")
	data, err := xmlrep.Marshal(doc1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := src()
	if err != nil || got == nil || got.Revision != 1 {
		t.Fatalf("first read: doc=%v err=%v", got, err)
	}
	// Unchanged content: silent.
	if got, err := src(); got != nil || err != nil {
		t.Fatalf("unchanged file reread: doc=%v err=%v", got, err)
	}
	// Corrupted write: reported once, then silent until it changes.
	if err := os.WriteFile(path, []byte("<healers-policy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := src(); err == nil {
		t.Fatal("corrupted file not reported")
	}
	if _, err := src(); err != nil {
		t.Fatalf("corrupted file reported twice: %v", err)
	}
}

// TestSubscribeFileWatch wires a file source to the engine and checks
// the full watch path: initial load, a newer revision, and a stale file
// rewrite that must be skipped silently.
func TestSubscribeFileWatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policy.xml")
	write := func(doc *xmlrep.PolicyDoc) {
		data, err := xmlrep.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(stampedDoc(1, "retry"))

	e := DefaultPolicy()
	events := make(chan ReloadEvent, 16)
	stop := e.Subscribe(FilePolicySource(path), time.Millisecond, func(ev ReloadEvent) {
		events <- ev
	})
	defer stop()

	waitRevision := func(rev int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for e.Revision() != rev {
			if time.Now().After(deadline) {
				t.Fatalf("engine never reached revision %d (at %d)", rev, e.Revision())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRevision(1)
	write(stampedDoc(2, "deny"))
	waitRevision(2)

	// A stale rewrite must not roll the engine back.
	write(stampedDoc(1, "retry"))
	time.Sleep(20 * time.Millisecond)
	if e.Revision() != 2 {
		t.Errorf("stale file rewrite rolled the engine back to %d", e.Revision())
	}
	stop()
	stop() // idempotent

	applied := 0
	for {
		select {
		case ev := <-events:
			if ev.Applied {
				applied++
			}
		default:
			if applied != 2 {
				t.Errorf("applied events = %d, want 2", applied)
			}
			return
		}
	}
}
