package inject

import (
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// TestHangDetection verifies the probe-timeout stand-in: a function that
// loops forever over valid memory exhausts its access budget and is
// classified as a hang — the third member of the paper's "crashes, hangs,
// or aborts" triad.
func TestHangDetection(t *testing.T) {
	sys := simelf.NewSystem()
	lib := simelf.NewLibrary("libspin.so")
	proto, err := cheader.ParsePrototype("int spin_if_negative(int n);")
	if err != nil {
		t.Fatal(err)
	}
	// spin_if_negative(n < 0) re-reads the same mapped byte forever; a
	// real process would wedge and the injector would kill it on
	// timeout.
	lib.ExportWithProto(proto, func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		if len(args) > 0 && args[0].Int32() >= 0 {
			return cval.Int(0), nil
		}
		a, f := env.Img.StaticString("x")
		if f != nil {
			return 0, f
		}
		for {
			if _, f := env.Img.Space.ReadByteAt(a); f != nil {
				return 0, f
			}
		}
	})
	if err := sys.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	c, err := New(sys, "libspin.so")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.RunFunction("spin_if_negative")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	var sawHang bool
	for _, r := range fr.Results {
		if r.Outcome == OutcomeHang {
			sawHang = true
			if r.Fault == nil || r.Fault.Kind != cmem.FaultHang {
				t.Errorf("hang outcome without HANG fault: %v", r.Fault)
			}
		}
	}
	if !sawHang {
		t.Fatalf("no hang detected; results: %+v", fr.Results)
	}
	if fr.Failures == 0 {
		t.Error("hangs must count as robustness failures")
	}
}

func TestFuelRestoredAfterProbe(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("strlen")
	if err != nil {
		t.Fatal(err)
	}
	// Ordinary probes never hit the budget.
	for _, r := range fr.Results {
		if r.Outcome == OutcomeHang {
			t.Errorf("strlen probe %s classified as hang", r.Probe)
		}
	}
}

// TestSilentCorruptionDetection verifies the Ballista "Silent" class: a
// buggy library function that writes through a const-qualified argument
// returns normally, but the snapshot comparison catches the damage.
func TestSilentCorruptionDetection(t *testing.T) {
	sys := simelf.NewSystem()
	lib := simelf.NewLibrary("libbuggy.so")
	proto, err := cheader.ParsePrototype("int scramble(char *dst, const char *src); // @dst out_buf src=src nul @src in_str")
	if err != nil {
		t.Fatal(err)
	}
	// The bug: "scramble" also increments the first byte of its const
	// source.
	lib.ExportWithProto(proto, func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		src := args[1].Addr()
		b, f := env.Img.Space.ReadByteAt(src)
		if f != nil {
			return 0, f
		}
		if f := env.Img.Space.WriteByteAt(src, b+1); f != nil {
			return 0, f
		}
		return cval.Int(0), nil
	})
	if err := sys.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	c, err := New(sys, "libbuggy.so")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.RunFunction("scramble")
	if err != nil {
		t.Fatal(err)
	}
	// Probing dst (param 0) keeps src golden; its corruption must show.
	var sawSilent bool
	for _, r := range fr.Results {
		if r.Param == 0 && r.Outcome == OutcomeCorrupt {
			sawSilent = true
		}
	}
	if !sawSilent {
		t.Fatalf("silent corruption undetected; results: %+v", fr.Results)
	}
	if fr.Failures == 0 {
		t.Error("silent corruption must count as a robustness failure")
	}
}
