package inject

import (
	"testing"

	"healers/internal/simelf"
	"healers/internal/victim"
	"healers/internal/xmlrep"
)

// textutilScenario is the standard stateful-victim scenario the sequence
// tests run: a deterministic word-processing workload whose strdup'ed
// tokens stay in heap memory until exit, so a corrupted byte survives to
// the end-of-run state digest.
func textutilScenario(t *testing.T) (*simelf.System, SequenceScenario) {
	t.Helper()
	sys := simelf.NewSystem()
	if err := victim.InstallAll(sys); err != nil {
		t.Fatal(err)
	}
	return sys, SequenceScenario{
		Name:  "textutil-words",
		App:   victim.TextutilName,
		Stdin: "delta alpha charlie bravo\n",
	}
}

func runSequence(t *testing.T, opts ...SequenceOption) *SequenceReport {
	t.Helper()
	sys, scen := textutilScenario(t)
	sc, err := NewSequence(sys, scen, opts...)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestSequenceCampaignCoversClassesAndPairs(t *testing.T) {
	report := runSequence(t)
	if report.Calls == 0 {
		t.Fatal("golden run counted no calls")
	}
	if len(report.GoldenOps) != int(report.Calls) {
		t.Fatalf("golden ops %d != calls %d", len(report.GoldenOps), report.Calls)
	}
	// 4 positions × 5 classes singles + 3 consecutive pairs × 25 combos.
	wantRuns := 4*len(seqClasses) + 3*len(seqClasses)*len(seqClasses)
	if len(report.Runs) != wantRuns {
		t.Fatalf("runs = %d, want %d", len(report.Runs), wantRuns)
	}
	if report.Probes != len(report.Runs) {
		t.Errorf("probes %d != runs %d", report.Probes, len(report.Runs))
	}
	// An unprotected victim dying on its first injected crash is the
	// expected bulk outcome.
	if report.Failures == 0 {
		t.Error("no failures recorded; injected crashes must kill the bare victim")
	}
	for _, run := range report.Runs {
		for _, s := range run.Steps {
			if s.Func == "" {
				t.Fatalf("step at call %d has no golden function label", s.Call)
			}
		}
	}
}

func TestSequenceCampaignDeterministic(t *testing.T) {
	a := runSequence(t).ToXML()
	b := runSequence(t).ToXML()
	if a.Checksum != b.Checksum {
		t.Fatalf("sequence reports diverged across identical runs:\n a=%s\n b=%s", a.Checksum, b.Checksum)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := xmlrep.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	kind, err := xmlrep.Kind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != xmlrep.KindSequenceReport {
		t.Fatalf("sniffed kind %q, want %q", kind, xmlrep.KindSequenceReport)
	}
	doc, err := xmlrep.Unmarshal[xmlrep.SequenceReportDoc](data)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("round-tripped report failed validation: %v", err)
	}
}

// TestSequenceSilentCorruptionDetected is the acceptance scenario: a
// scripted Silent fault lets its call succeed and flips one committed
// byte; the run exits 0 with no fault — errno-only classification calls
// it a success — but the journal-diff digest diverges from the golden
// run and the engine classifies it silent-corruption.
func TestSequenceSilentCorruptionDetected(t *testing.T) {
	report := runSequence(t)
	var hit *SequenceRun
	for i := range report.Runs {
		if report.Runs[i].Outcome == OutcomeSilentCorruption {
			hit = &report.Runs[i]
			break
		}
	}
	if hit == nil {
		t.Fatal("no run classified silent-corruption; the Silent fault script must corrupt surviving state")
	}
	// The regression half: prove the errno-visible axis reports success,
	// i.e. the pre-journal-diff classification (fault/exit/errno only)
	// would have called this run OK.
	if hit.Fault != nil {
		t.Errorf("silent-corruption run carries a fault: %v", hit.Fault)
	}
	if hit.Exit != 0 {
		t.Errorf("silent-corruption run exit = %d, want 0", hit.Exit)
	}
	legacy := OutcomeOK
	if hit.Fault != nil || hit.Exit != 0 {
		legacy = OutcomeErrno
	}
	if legacy != OutcomeOK {
		t.Fatal("errno-only classification no longer reports success; regression premise broken")
	}
	if !hit.Diverged {
		t.Error("silent-corruption run not marked diverged")
	}
	if funcs := report.SilentCorruptions(); len(funcs) == 0 {
		t.Error("SilentCorruptions() attributed no functions")
	}
	if !OutcomeSilentCorruption.Failure() {
		t.Error("silent-corruption must count as a robustness failure")
	}
}
