package inject

import "testing"

func TestPairwiseFindsAtLeastSingleFaultFailures(t *testing.T) {
	c := newLibcCampaign(t)
	for _, fn := range []string{"strcpy", "memcpy"} {
		cmp, err := c.CompareModes(fn)
		if err != nil {
			t.Fatalf("CompareModes(%s): %v", fn, err)
		}
		if !cmp.SingleDetects || !cmp.PairwiseDetects {
			t.Errorf("%s: detection single=%v pairwise=%v", fn, cmp.SingleDetects, cmp.PairwiseDetects)
		}
		if cmp.PairProbes <= cmp.SingleProbes {
			t.Errorf("%s: pairwise probes (%d) should exceed single-fault probes (%d)",
				fn, cmp.PairProbes, cmp.SingleProbes)
		}
		// Pairwise subsumes single-fault pairs where one side is
		// golden, so it finds at least as many failing calls.
		if cmp.PairFailures < cmp.SingleFailures {
			t.Errorf("%s: pairwise failures %d < single failures %d",
				fn, cmp.PairFailures, cmp.SingleFailures)
		}
	}
}

func TestPairwiseResultShape(t *testing.T) {
	c := newLibcCampaign(t)
	pr, err := c.RunFunctionPairwise("strncpy")
	if err != nil {
		t.Fatalf("RunFunctionPairwise: %v", err)
	}
	// strncpy has 3 params: pairs (0,1), (0,2), (1,2).
	seenPairs := map[[2]int]bool{}
	for _, r := range pr.Results {
		if r.ParamA >= r.ParamB {
			t.Fatalf("unordered pair (%d,%d)", r.ParamA, r.ParamB)
		}
		seenPairs[[2]int{r.ParamA, r.ParamB}] = true
	}
	if len(seenPairs) != 3 {
		t.Errorf("covered pairs = %v, want 3", seenPairs)
	}
	if pr.Probes != len(pr.Results) || pr.Probes == 0 {
		t.Errorf("probes = %d, results = %d", pr.Probes, len(pr.Results))
	}
	if _, err := c.RunFunctionPairwise("no_such"); err == nil {
		t.Error("pairwise on unknown function succeeded")
	}
}

// TestPairwiseCatchesInteractionSingleMisses demonstrates why pairwise
// exists: memcpy with (dest=short_buf, n=large) crashes in combinations a
// strict one-parameter sweep with golden partners cannot produce — e.g.
// a barely-too-small buffer with a barely-too-big count.
func TestPairwiseInteractionCoverage(t *testing.T) {
	c := newLibcCampaign(t)
	pr, err := c.RunFunctionPairwise("memcpy")
	if err != nil {
		t.Fatal(err)
	}
	var sawInteraction bool
	for _, r := range pr.Results {
		// A failing probe where NEITHER side is a golden value is a
		// genuine two-parameter interaction.
		if r.Outcome.Failure() && r.ProbeA != "big_buf" && r.ProbeB != "modest" &&
			r.ProbeA != "modest" && r.ProbeB != "big_buf" {
			sawInteraction = true
			break
		}
	}
	if !sawInteraction {
		t.Error("pairwise sweep found no two-parameter interaction failures")
	}
}
