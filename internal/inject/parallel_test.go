package inject

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmath"
	"healers/internal/simelf"
	"healers/internal/xmlrep"
)

func libmSystem(t *testing.T) *simelf.System {
	t.Helper()
	sys := libcSystem(t)
	libm, err := cmath.AsLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(libm); err != nil {
		t.Fatal(err)
	}
	return sys
}

// runBoth sweeps one library sequentially and with the given worker
// count against fresh systems, returning both reports.
func runBoth(t *testing.T, mkSys func(*testing.T) *simelf.System, soname string, workers int) (seq, par *LibReport) {
	t.Helper()
	cs, err := New(mkSys(t), soname)
	if err != nil {
		t.Fatal(err)
	}
	seq, err = cs.RunLibrary()
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	cp, err := New(mkSys(t), soname)
	if err != nil {
		t.Fatal(err)
	}
	par, err = cp.RunLibraryParallel(workers)
	if err != nil {
		t.Fatalf("parallel sweep (%d workers): %v", workers, err)
	}
	return seq, par
}

// assertIdentical requires the two reports to match byte for byte: same
// verdicts, probe counts, outcomes, and an identical rendered robust-API
// document.
func assertIdentical(t *testing.T, seq, par *LibReport) {
	t.Helper()
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel LibReport differs from sequential")
		if seq.TotalProbes != par.TotalProbes || seq.TotalFailures != par.TotalFailures {
			t.Errorf("totals: seq %d probes/%d failures, par %d probes/%d failures",
				seq.TotalProbes, seq.TotalFailures, par.TotalProbes, par.TotalFailures)
		}
		for i := range seq.Funcs {
			if i < len(par.Funcs) && !reflect.DeepEqual(seq.Funcs[i], par.Funcs[i]) {
				t.Errorf("first differing function: %s", seq.Funcs[i].Name)
				break
			}
		}
	}
	// The generated= stamp is the one field allowed to differ between
	// the two renderings (the smoke scripts strip it the same way); on a
	// loaded machine the two Marshal calls can straddle a second
	// boundary, so zero it before comparing.
	sdoc := xmlrep.NewRobustAPIDoc(seq.Library, seq.RobustAPI())
	pdoc := xmlrep.NewRobustAPIDoc(par.Library, par.RobustAPI())
	sdoc.Generated, pdoc.Generated = "", ""
	sx, err := xmlrep.Marshal(sdoc)
	if err != nil {
		t.Fatal(err)
	}
	px, err := xmlrep.Marshal(pdoc)
	if err != nil {
		t.Fatal(err)
	}
	if string(sx) != string(px) {
		t.Error("rendered robust-API XML differs between engines")
	}
}

func TestParallelDeterminismLibm(t *testing.T) {
	for _, workers := range []int{2, 4, 0} {
		seq, par := runBoth(t, libmSystem, cmath.Soname, workers)
		assertIdentical(t, seq, par)
	}
}

func TestParallelDeterminismLibc(t *testing.T) {
	seq, par := runBoth(t, libcSystem, clib.LibcSoname, 4)
	assertIdentical(t, seq, par)
}

// TestParallelStatsAndProgress checks the throughput layer: probe
// totals, per-worker busy time, and monotonic progress callbacks.
func TestParallelStatsAndProgress(t *testing.T) {
	var (
		mu    sync.Mutex
		calls []Progress
		stats *CampaignStats
	)
	c, err := New(libcSystem(t), clib.LibcSoname,
		WithWorkers(3),
		WithProgress(func(p Progress) {
			mu.Lock()
			calls = append(calls, p)
			mu.Unlock()
		}),
		WithStatsSink(func(s *CampaignStats) { stats = s }),
	)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("stats sink never called")
	}
	if stats.Workers != 3 {
		t.Errorf("stats.Workers = %d, want 3", stats.Workers)
	}
	if stats.Probes != lr.TotalProbes {
		t.Errorf("stats.Probes = %d, report says %d", stats.Probes, lr.TotalProbes)
	}
	if len(stats.WorkerBusy) != 3 {
		t.Errorf("WorkerBusy has %d entries, want 3", len(stats.WorkerBusy))
	}
	if stats.ProbesPerSec <= 0 || stats.Elapsed <= 0 {
		t.Errorf("throughput not measured: %v elapsed, %.1f probes/s", stats.Elapsed, stats.ProbesPerSec)
	}
	if len(stats.FuncWall) != len(lr.Funcs) {
		t.Errorf("FuncWall has %d entries, report has %d functions", len(stats.FuncWall), len(lr.Funcs))
	}
	if len(calls) != len(lr.Funcs) {
		t.Fatalf("progress fired %d times, want once per function (%d)", len(calls), len(lr.Funcs))
	}
	last := calls[len(calls)-1]
	if last.DoneFuncs != len(lr.Funcs) || last.DoneProbes != lr.TotalProbes {
		t.Errorf("final progress = %+v, want all %d funcs / %d probes done", last, len(lr.Funcs), lr.TotalProbes)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].DoneProbes < calls[i-1].DoneProbes || calls[i].DoneFuncs != calls[i-1].DoneFuncs+1 {
			t.Fatalf("progress not monotonic at %d: %+v -> %+v", i, calls[i-1], calls[i])
		}
	}
}

// TestSequentialStats checks the stats layer on the one-worker engine.
func TestSequentialStats(t *testing.T) {
	var stats *CampaignStats
	c, err := New(libmSystem(t), cmath.Soname, WithStatsSink(func(s *CampaignStats) { stats = s }))
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Workers != 1 || stats.Probes != lr.TotalProbes {
		t.Fatalf("sequential stats = %+v", stats)
	}
	if len(stats.WorkerBusy) != 1 || stats.WorkerBusy[0] <= 0 {
		t.Errorf("sequential WorkerBusy = %v", stats.WorkerBusy)
	}
}

// TestWorkersDefault pins WithWorkers(0) to one worker per CPU.
func TestWorkersDefault(t *testing.T) {
	var stats *CampaignStats
	c, err := New(libmSystem(t), cmath.Soname, WithWorkers(0), WithStatsSink(func(s *CampaignStats) { stats = s }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunLibrary(); err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); stats.Workers != want {
		t.Errorf("WithWorkers(0) ran %d workers, want GOMAXPROCS=%d", stats.Workers, want)
	}
}
