// Distributed campaign fabric: a coordinator plans the library sweep,
// shards the function list into work units, and leases them to worker
// processes over the collect wire protocol; workers run their shard
// through the ordinary campaign engine and stream per-function results
// back. The coordinator merges results in canonical function order, so
// the final report — and the robust-API XML rendered from it — is
// byte-identical to a sequential run for any worker count.
//
// Fault tolerance is lease-based: a shard leased to a worker that stops
// sending results or heartbeats past the lease timeout is re-leased to
// the next worker that asks; a shard held by a live-but-slow worker past
// the straggler deadline is speculatively re-issued. Both paths may
// produce duplicate results, which the coordinator dedups idempotently
// by content-hash key (the same funcKey that addresses the campaign
// cache), so replays are harmless: the first result for a function wins
// and every later copy is acknowledged and dropped. Accepted results are
// full cache entries, folded into the coordinator's campaign cache so a
// fleet's persistent cache warms monotonically.
package inject

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"healers/internal/collect"
	"healers/internal/xmlrep"
)

// Coordinator defaults; override with the CoordOptions.
const (
	// DefaultLeaseTimeout is how long a shard stays leased without a
	// heartbeat or result before it is re-leased.
	DefaultLeaseTimeout = 30 * time.Second
	// DefaultStragglerAfter is how long a shard may stay with one
	// worker — heartbeats notwithstanding — before an idle worker gets
	// a speculative duplicate lease.
	DefaultStragglerAfter = 2 * time.Minute
	// DefaultShards is the work-unit count when the caller does not
	// choose one: enough to keep a handful of workers busy without
	// making shards degenerate.
	DefaultShards = 8
)

// WorkerStat is one worker's share of a distributed sweep, as observed
// by the coordinator.
type WorkerStat struct {
	Name string
	// Funcs and Probes count accepted (non-duplicate) results; Cached
	// counts the accepted functions the worker served from its own
	// local cache instead of probing.
	Funcs  int
	Probes int
	Cached int
	// Busy is the worker-reported probing wall time.
	Busy time.Duration
	// LastSeen is the last request, result, or heartbeat.
	LastSeen time.Time
}

// ShardCounts summarizes the lease table for monitoring.
type ShardCounts struct {
	Pending, Leased, Done int
	// Releases counts lease-timeout re-leases; Stragglers counts
	// speculative duplicate leases.
	Releases   int
	Stragglers int
}

// CoordOption configures a Coordinator.
type CoordOption func(*Coordinator)

// WithLeaseTimeout sets how long a shard stays leased without a result
// or heartbeat before it is handed to another worker.
func WithLeaseTimeout(d time.Duration) CoordOption {
	return func(co *Coordinator) { co.leaseTimeout = d }
}

// WithStragglerAfter sets the straggler deadline: a shard still
// incomplete this long after it was leased is speculatively re-issued to
// an idle worker even while its holder keeps heartbeating. d <= 0
// disables speculation.
func WithStragglerAfter(d time.Duration) CoordOption {
	return func(co *Coordinator) { co.straggler = d }
}

// shardState is one work unit's lease-table entry.
type shardState struct {
	funcs    []int // plan indices
	worker   string
	attempt  int
	leased   bool
	leasedAt time.Time
	deadline time.Time
}

// Coordinator serves a sharded library sweep to worker processes. Build
// one with NewCoordinator, start it with Serve, and block on Wait for
// the merged report.
type Coordinator struct {
	camp         *Campaign
	plan         *libPlan
	config       string
	leaseTimeout time.Duration
	straggler    time.Duration

	srv *collect.Server

	mu        sync.Mutex
	shards    []shardState
	byName    map[string]int  // function name -> plan index
	keys      []string        // expected funcKey per plan index
	reports   []*FuncReport   // resolved reports, plan-indexed
	wall      []time.Duration // worker-reported per-function wall time
	coCached  []bool          // resolved from the coordinator's cache
	wkCached  []bool          // resolved from a worker's local cache
	remaining int             // unresolved functions
	workers   map[string]*WorkerStat
	dismissed map[string]bool // workers already told the sweep is done
	counts    ShardCounts
	doneFuncs int
	start     time.Time

	done      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
}

// NewCoordinator plans c's library sweep and shards the un-cached
// functions into nshards work units (nshards <= 0 picks DefaultShards;
// the count is capped at the function count so no shard is empty).
// Functions already satisfied by the campaign's cache never reach the
// wire.
func NewCoordinator(c *Campaign, nshards int, opts ...CoordOption) *Coordinator {
	plan := c.planLibrary()
	co := &Coordinator{
		camp:         c,
		plan:         plan,
		config:       c.configHash(),
		leaseTimeout: DefaultLeaseTimeout,
		straggler:    DefaultStragglerAfter,
		byName:       make(map[string]int, len(plan.funcs)),
		keys:         make([]string, len(plan.funcs)),
		reports:      make([]*FuncReport, len(plan.funcs)),
		wall:         make([]time.Duration, len(plan.funcs)),
		coCached:     make([]bool, len(plan.funcs)),
		wkCached:     make([]bool, len(plan.funcs)),
		workers:      make(map[string]*WorkerStat),
		dismissed:    make(map[string]bool),
		done:         make(chan struct{}),
		closed:       make(chan struct{}),
		start:        time.Now(),
	}
	for _, o := range opts {
		o(co)
	}

	// Resolve coordinator-cache hits up front; only misses are sharded.
	// The registry warm-up runs first, so a fleet-shared entry counts as
	// a cache hit here and distributed sweeps lease only genuine global
	// misses.
	c.warmFromRegistry(plan.funcs)
	var misses []int
	for fi := range plan.funcs {
		fp := &plan.funcs[fi]
		co.byName[fp.name] = fi
		co.keys[fi] = funcKey(fp.proto, co.config)
		if fr, _ := c.cacheLookup(fp, co.config); fr != nil {
			co.reports[fi] = fr
			co.coCached[fi] = true
			continue
		}
		misses = append(misses, fi)
	}
	co.remaining = len(misses)
	if co.remaining == 0 {
		close(co.done)
		return co
	}

	if nshards <= 0 {
		nshards = DefaultShards
	}
	if nshards > len(misses) {
		nshards = len(misses)
	}
	// Round-robin interleave: canonical order sorts alphabetically, and
	// neighbouring functions tend to cost alike, so striping balances
	// shards better than contiguous slabs.
	co.shards = make([]shardState, nshards)
	for i, fi := range misses {
		s := &co.shards[i%nshards]
		s.funcs = append(s.funcs, fi)
	}
	co.counts.Pending = nshards
	return co
}

// Serve starts listening for workers on addr ("127.0.0.1:0" for an
// ephemeral port).
func (co *Coordinator) Serve(addr string, opts ...collect.Option) error {
	srv, err := collect.Serve(addr, append(opts, collect.WithHandler(co.handle))...)
	if err != nil {
		return err
	}
	co.srv = srv
	return nil
}

// Addr returns the coordinator's listen address.
func (co *Coordinator) Addr() string { return co.srv.Addr() }

// Close stops serving workers. Closing before the sweep completes makes
// Wait return an error.
func (co *Coordinator) Close() error {
	var err error
	co.closeOnce.Do(func() {
		close(co.closed)
		if co.srv != nil {
			err = co.srv.Close()
		}
	})
	return err
}

// errAck renders a fatal acknowledgement.
func errAck(reason string) []byte {
	data, err := xmlrep.Marshal(&xmlrep.WorkAck{Reason: reason})
	if err != nil {
		return nil
	}
	return data
}

func okAck(accepted int) []byte {
	data, err := xmlrep.Marshal(&xmlrep.WorkAck{OK: true, Accepted: accepted})
	if err != nil {
		return nil
	}
	return data
}

// handle is the collect request handler: it answers the three
// distributed-campaign request kinds and declines everything else (which
// the server then stores as an ordinary upload).
func (co *Coordinator) handle(from string, kind xmlrep.DocKind, data []byte) []byte {
	switch kind {
	case xmlrep.KindWorkRequest:
		return co.handleRequest(data)
	case xmlrep.KindWorkResult:
		return co.handleResult(data)
	case xmlrep.KindHeartbeat:
		return co.handleHeartbeat(data)
	default:
		return nil
	}
}

// touchWorker updates the per-worker bookkeeping. Callers hold co.mu.
func (co *Coordinator) touchWorker(name string) *WorkerStat {
	ws := co.workers[name]
	if ws == nil {
		ws = &WorkerStat{Name: name}
		co.workers[name] = ws
	}
	ws.LastSeen = time.Now()
	return ws
}

// handleRequest grants a shard lease: a pending shard first, then an
// expired lease, then — past the straggler deadline — a speculative
// duplicate of the slowest in-flight shard. With nothing to hand out it
// tells the worker when to poll again, and once every function has a
// result it tells the worker to exit.
func (co *Coordinator) handleRequest(data []byte) []byte {
	req, err := xmlrep.Unmarshal[xmlrep.WorkRequest](data)
	if err != nil {
		return errAck(fmt.Sprintf("bad work request: %v", err))
	}
	if req.Hierarchy != HierarchyVersion() {
		return errAck(fmt.Sprintf("probe hierarchy mismatch: worker %s, coordinator %s (mixed toolkit versions)",
			req.Hierarchy, HierarchyVersion()))
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchWorker(req.Worker)

	lease := &xmlrep.WorkLease{Shard: -1}
	if co.remaining == 0 {
		lease.Done = true
		co.dismissed[req.Worker] = true
		return marshalLease(lease)
	}

	now := time.Now()
	si := co.pickShardLocked(req.Worker, now)
	if si < 0 {
		// Nothing to hand out right now; tell the worker when to poll
		// again. A quarter of the lease timeout reacts promptly to a
		// crashed holder, capped so huge lease windows don't turn
		// workers comatose.
		retry := co.leaseTimeout / 4
		if retry > 250*time.Millisecond {
			retry = 250 * time.Millisecond
		}
		if retry < 20*time.Millisecond {
			retry = 20 * time.Millisecond
		}
		lease.RetryMS = int(retry / time.Millisecond)
		return marshalLease(lease)
	}

	s := &co.shards[si]
	if !s.leased {
		co.counts.Pending--
		co.counts.Leased++
	}
	s.leased = true
	s.worker = req.Worker
	s.attempt++
	s.leasedAt = now
	s.deadline = now.Add(co.leaseTimeout)

	lease.Shard = si
	lease.Attempt = s.attempt
	lease.Library = co.camp.target
	lease.Stdin = co.camp.stdin
	lease.Preloads = append([]string(nil), co.camp.preloads...)
	lease.Config = co.config
	lease.Hierarchy = HierarchyVersion()
	lease.LeaseMS = int(co.leaseTimeout / time.Millisecond)
	for _, fi := range s.funcs {
		if co.reports[fi] == nil { // re-leases skip already-resolved functions
			lease.Funcs = append(lease.Funcs, co.plan.funcs[fi].name)
		}
	}
	return marshalLease(lease)
}

func marshalLease(l *xmlrep.WorkLease) []byte {
	l.Checksum = l.ComputeChecksum()
	data, err := xmlrep.Marshal(l)
	if err != nil {
		return nil
	}
	return data
}

// pickShardLocked selects the shard to lease to worker, or -1. Callers
// hold co.mu.
func (co *Coordinator) pickShardLocked(worker string, now time.Time) int {
	// First choice: a shard nobody holds — never leased, or whose lease
	// expired without completing (the crash/disconnect path).
	for si := range co.shards {
		s := &co.shards[si]
		if co.shardDoneLocked(s) {
			continue
		}
		if !s.leased {
			return si
		}
		if now.After(s.deadline) {
			co.counts.Releases++
			return si
		}
	}
	// Second choice: speculate on the slowest straggler — an incomplete
	// shard another worker has held past the straggler deadline.
	if co.straggler <= 0 {
		return -1
	}
	best, bestAge := -1, co.straggler
	for si := range co.shards {
		s := &co.shards[si]
		if co.shardDoneLocked(s) || !s.leased || s.worker == worker {
			continue
		}
		if age := now.Sub(s.leasedAt); age >= bestAge {
			best, bestAge = si, age
		}
	}
	if best >= 0 {
		co.counts.Stragglers++
	}
	return best
}

// shardDoneLocked reports whether every function of s has a result.
// Callers hold co.mu.
func (co *Coordinator) shardDoneLocked(s *shardState) bool {
	for _, fi := range s.funcs {
		if co.reports[fi] == nil {
			return false
		}
	}
	return true
}

// handleResult merges one streamed result document: validate integrity
// and configuration, dedup each entry by its content-hash key, fold the
// accepted entries into the campaign cache, and account the worker's
// throughput. Duplicates — replays after a retry, or the losing side of
// a speculative re-issue — are acknowledged and dropped, which is what
// makes result delivery idempotent.
func (co *Coordinator) handleResult(data []byte) []byte {
	res, err := xmlrep.Unmarshal[xmlrep.WorkResult](data)
	if err != nil {
		return errAck(fmt.Sprintf("bad work result: %v", err))
	}
	if res.Checksum != res.ComputeChecksum() {
		return errAck("work result checksum mismatch (corrupted frame)")
	}
	if res.Config != co.config {
		return errAck(fmt.Sprintf("injector config mismatch: worker %s, coordinator %s", res.Config, co.config))
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	ws := co.touchWorker(res.Worker)

	accepted := 0
	for i := range res.Funcs {
		fx := &res.Funcs[i]
		fi, ok := co.byName[fx.Name]
		if !ok || fx.Key != co.keys[fi] {
			// Not a function of this sweep, or derived under a
			// different (prototype, hierarchy, config) — refuse rather
			// than merge incomparable results.
			continue
		}
		if co.reports[fi] != nil {
			continue // duplicate: first result won
		}
		fr, err := reportFromXML(&fx.CacheFuncXML)
		if err != nil {
			continue // undecodable entry; the shard stays unresolved
		}
		fr.Proto = co.plan.funcs[fi].proto
		co.reports[fi] = fr
		co.wall[fi] = time.Duration(fx.WallNS)
		co.wkCached[fi] = res.CachedLocal
		co.remaining--
		co.doneFuncs++
		accepted++
		ws.Funcs++
		ws.Probes += fr.Probes
		ws.Busy += time.Duration(fx.WallNS)
		if res.CachedLocal {
			ws.Cached++
		}
		if co.camp.cache != nil || co.camp.registry != nil {
			// Fold the worker's entry into the coordinator's campaign
			// cache — put (not a blind insert) so checkpoint auto-flush
			// and stale-key replacement apply; the fleet's persistent
			// cache then warms monotonically through the normal
			// MergeFrom save path — and queue it for the shared registry,
			// which is how a distributed sweep's fresh derivations reach
			// the rest of the fleet.
			stored := *fr
			if err := co.camp.cachePut(fx.Name, co.config, fx.Key, &stored); err != nil {
				co.remaining++
				co.doneFuncs--
				co.reports[fi] = nil
				return errAck(fmt.Sprintf("recording result: %v", err))
			}
		}
		if co.camp.progress != nil {
			co.camp.progress(Progress{
				Func: fx.Name, FuncProbes: fr.Probes,
				DoneFuncs: co.doneFuncsLocked(), TotalFuncs: len(co.plan.funcs),
				DoneProbes: co.doneProbesLocked(), TotalProbes: co.plan.totalProbes,
			})
		}
	}

	// A result is as good as a heartbeat for the shard it came from.
	if res.Shard >= 0 && res.Shard < len(co.shards) {
		s := &co.shards[res.Shard]
		if s.worker == res.Worker {
			s.deadline = time.Now().Add(co.leaseTimeout)
		}
		if s.leased && co.shardDoneLocked(s) {
			s.leased = false
			co.counts.Leased--
			co.counts.Done++
		}
	}
	if co.remaining == 0 {
		select {
		case <-co.done:
		default:
			close(co.done)
		}
	}
	return okAck(accepted)
}

// doneFuncsLocked / doneProbesLocked fold the cache-resolved prefix into
// the progress totals. Callers hold co.mu.
func (co *Coordinator) doneFuncsLocked() int {
	n := 0
	for _, fr := range co.reports {
		if fr != nil {
			n++
		}
	}
	return n
}

func (co *Coordinator) doneProbesLocked() int {
	n := 0
	for _, fr := range co.reports {
		if fr != nil {
			n += fr.Probes
		}
	}
	return n
}

// handleHeartbeat extends the lease of a shard whose holder is still
// alive and probing.
func (co *Coordinator) handleHeartbeat(data []byte) []byte {
	hb, err := xmlrep.Unmarshal[xmlrep.Heartbeat](data)
	if err != nil {
		return errAck(fmt.Sprintf("bad heartbeat: %v", err))
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	co.touchWorker(hb.Worker)
	if hb.Shard >= 0 && hb.Shard < len(co.shards) {
		s := &co.shards[hb.Shard]
		if s.leased && s.worker == hb.Worker && s.attempt == hb.Attempt {
			s.deadline = time.Now().Add(co.leaseTimeout)
		}
	}
	return okAck(0)
}

// WorkerStats snapshots the per-worker accounting, sorted by name.
func (co *Coordinator) WorkerStats() []WorkerStat {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]WorkerStat, 0, len(co.workers))
	for _, ws := range co.workers {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Shards snapshots the lease-table counters.
func (co *Coordinator) Shards() ShardCounts {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.counts
}

// Remaining returns how many functions still lack a result.
func (co *Coordinator) Remaining() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.remaining
}

// Wait blocks until every function has a result, then merges the
// reports in canonical function order — the same merge the sequential
// engine performs, so the LibReport (and any document rendered from it)
// is byte-identical to a sequential sweep regardless of worker count,
// crashes, or re-leases. It returns an error if the coordinator was
// closed before the sweep completed.
func (co *Coordinator) Wait() (*LibReport, *CampaignStats, error) {
	select {
	case <-co.done:
	case <-co.closed:
		select {
		case <-co.done: // completed and closed raced; completion wins
		default:
			return nil, nil, fmt.Errorf("inject: coordinator closed with %d function(s) unresolved", co.Remaining())
		}
	}
	co.mu.Lock()
	defer co.mu.Unlock()

	lr := &LibReport{Library: co.camp.target}
	stats := newCampaignStats(len(co.workers), len(co.plan.funcs))
	executed := 0
	for fi, fp := range co.plan.funcs {
		fr := co.reports[fi]
		cached := co.coCached[fi] || co.wkCached[fi]
		if cached {
			stats.CachedFuncs++
			stats.CachedProbes += fr.Probes
		} else {
			executed += fr.Probes
		}
		lr.Funcs = append(lr.Funcs, fr)
		lr.TotalProbes += fr.Probes
		lr.TotalFailures += fr.Failures
		stats.noteFunc(fp.name, fr.Probes, co.wall[fi], cached)
	}
	names := make([]string, 0, len(co.workers))
	for name := range co.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	stats.WorkerBusy = make([]time.Duration, len(names))
	for i, name := range names {
		stats.WorkerBusy[i] = co.workers[name].Busy
	}
	stats.finish(executed, time.Since(co.start))
	if co.camp.statsSink != nil {
		co.camp.statsSink(stats)
	}
	return lr, stats, nil
}

// Drain keeps the coordinator serving after the sweep completes, until
// every worker that ever contacted it has been handed a Done lease (so
// workers exit cleanly instead of dialing a dead port) or the timeout
// expires (crashed workers never come back for their dismissal). Call it
// between Wait and Close.
func (co *Coordinator) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		co.mu.Lock()
		all := true
		for name := range co.workers {
			if !co.dismissed[name] {
				all = false
				break
			}
		}
		co.mu.Unlock()
		if all || time.Now().After(deadline) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RunCoordinator is the one-call distributed sweep driver: serve on
// addr, wait for workers to finish the sweep, drain so they exit
// cleanly, close, and return the merged report. Callers needing the
// listen address before blocking (to spawn workers against an ephemeral
// port) use the Serve/Wait pair directly.
func (c *Campaign) RunCoordinator(addr string, nshards int, opts ...CoordOption) (*LibReport, *CampaignStats, error) {
	co := NewCoordinator(c, nshards, opts...)
	if err := co.Serve(addr); err != nil {
		return nil, nil, err
	}
	defer co.Close()
	lr, stats, err := co.Wait()
	if err == nil {
		co.Drain(2 * time.Second)
	}
	return lr, stats, err
}
