// Registry client: the read-through/write-back layer between a
// campaign's local cache and a shared campaign-cache registry (see
// collect.Registry). Before a sweep the engines batch-fetch every
// locally missing key from the registry and fold verified hits into the
// local cache, so only genuinely novel functions are probed (or, in the
// distributed fabric, leased); freshly derived entries are pushed back
// asynchronously so the next runner anywhere in the fleet inherits
// them.
//
// The registry is an accelerator, never a dependency: any transport
// failure degrades the campaign to local-only operation with counted
// warnings — a down registry costs probes, not a failed sweep. Served
// entries are trusted only after their per-entry integrity sum and a
// full decode verify; a corrupted entry is discarded and the function
// re-probed, the same worst case as a cold cache.
package inject

import (
	"fmt"
	"os"
	"sync"
	"time"

	"healers/internal/collect"
	"healers/internal/xmlrep"
)

// RegistryCacheStats are the registry layer's counters, snapshotted for
// the CLI summary and /metrics.
type RegistryCacheStats struct {
	// RemoteHits counts functions satisfied by verified registry
	// entries; RemoteMisses counts keys the registry did not hold (each
	// becomes a local probe sweep).
	RemoteHits   int
	RemoteMisses int
	// Corrupt counts served entries discarded because their integrity
	// sum, key, config, or decode failed verification. Each is also a
	// miss — the function re-probes.
	Corrupt int
	// PutFuncs counts entries successfully pushed back; PutDropped
	// counts entries that never reached the registry (degraded mode or a
	// failed push).
	PutFuncs   int
	PutDropped int
	// Errors counts transport failures; Degraded is set once the layer
	// has given up on the registry for the rest of the run.
	Errors   int
	Degraded bool
}

// RegistryCacheOption configures a RegistryCache.
type RegistryCacheOption func(*RegistryCache)

// WithRegistryID overrides the client identity reported to the registry
// (default hostname-pid).
func WithRegistryID(id string) RegistryCacheOption {
	return func(rc *RegistryCache) { rc.id = id }
}

// WithRegistryClients substitutes the wire clients — one for the
// synchronous fetch path, one owned by the asynchronous push drainer
// (collect.Client is single-goroutine, so the two paths must not share
// one). Tests shrink their timeouts.
func WithRegistryClients(get, put *collect.Client) RegistryCacheOption {
	return func(rc *RegistryCache) { rc.getCl, rc.putCl = get, put }
}

// RegistryCache is the client side of a shared campaign-cache registry:
// batch read-through fetches into a local Cache plus an asynchronous
// write-back queue. Attach one to a campaign with WithRegistry (or a
// worker with WithWorkerRegistry). All methods are safe for concurrent
// use; Close (or at least Flush) it before exiting so queued pushes
// drain.
type RegistryCache struct {
	addr string
	id   string

	// fetchMu serializes fetchInto callers on the shared get client
	// (collect.Client is single-goroutine); it is held across network
	// I/O, so it is never nested with mu.
	fetchMu sync.Mutex
	getCl   *collect.Client // synchronous fetch path, under fetchMu
	putCl   *collect.Client // push path (owned by the drainer goroutine)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []xmlrep.CacheFuncXML
	inflight int // entries the drainer has taken but not finished
	closed   bool
	degraded bool
	stats    RegistryCacheStats
	drained  sync.WaitGroup
}

// NewRegistryCache builds a registry client for the registry at addr
// and starts its push drainer.
func NewRegistryCache(addr string, opts ...RegistryCacheOption) *RegistryCache {
	host, _ := os.Hostname()
	if host == "" {
		host = "runner"
	}
	rc := &RegistryCache{
		addr: addr,
		id:   fmt.Sprintf("%s-%d", host, os.Getpid()),
	}
	for _, o := range opts {
		o(rc)
	}
	if rc.getCl == nil {
		rc.getCl = collect.NewClient(addr)
		rc.getCl.RetryMax = 2
	}
	if rc.putCl == nil {
		rc.putCl = collect.NewClient(addr)
		rc.putCl.RetryMax = 2
	}
	rc.cond = sync.NewCond(&rc.mu)
	rc.drained.Add(1)
	go rc.drain()
	return rc
}

// Stats snapshots the layer's counters.
func (rc *RegistryCache) Stats() RegistryCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.stats
}

// degradeLocked switches the layer to local-only operation. Callers
// hold rc.mu.
func (rc *RegistryCache) degradeLocked() {
	rc.stats.Errors++
	rc.degraded = true
	rc.stats.Degraded = true
}

// fetchInto asks the registry for keys and folds every verified answer
// entry into local under config. Requested keys the registry does not
// hold — or whose entries fail verification — count as misses and are
// left for probing. Transport failures degrade the layer; no error ever
// propagates to the sweep.
func (rc *RegistryCache) fetchInto(local *Cache, config string, keys []string) {
	if len(keys) == 0 || local == nil {
		return
	}
	rc.mu.Lock()
	if rc.degraded {
		rc.mu.Unlock()
		return
	}
	rc.mu.Unlock()

	rc.fetchMu.Lock()
	ans, err := collect.RegistryFetch(rc.getCl, rc.id, keys)
	rc.fetchMu.Unlock()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if err != nil {
		rc.degradeLocked()
		return
	}
	requested := make(map[string]bool, len(keys))
	for _, k := range keys {
		requested[k] = true
	}
	hits := 0
	for i := range ans.Funcs {
		e := &ans.Funcs[i]
		// Trust nothing about a served entry until it proves itself:
		// requested key, matching config, intact integrity sum, and a
		// clean decode. Anything less re-probes.
		if !requested[e.Key] || e.Config != config || e.Sum != xmlrep.EntrySum(&e.CacheFuncXML) {
			rc.stats.Corrupt++
			continue
		}
		fr, err := reportFromXML(&e.CacheFuncXML)
		if err != nil {
			rc.stats.Corrupt++
			continue
		}
		if err := local.put(e.Name, config, e.Key, fr); err != nil {
			// A failing local checkpoint flush is the local cache's
			// problem on the next put; the fetched entry still landed.
			break
		}
		hits++
	}
	rc.stats.RemoteHits += hits
	rc.stats.RemoteMisses += len(keys) - hits
}

// enqueue queues one freshly derived entry for asynchronous push. In
// degraded mode the entry is counted as dropped immediately.
func (rc *RegistryCache) enqueue(fx xmlrep.CacheFuncXML) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed || rc.degraded {
		rc.stats.PutDropped++
		return
	}
	rc.queue = append(rc.queue, fx)
	rc.cond.Broadcast()
}

// drain is the push goroutine: it batches whatever has queued into one
// registry put per wakeup, so a sweep's worth of entries costs a few
// round trips, not one per function.
func (rc *RegistryCache) drain() {
	defer rc.drained.Done()
	for {
		rc.mu.Lock()
		for len(rc.queue) == 0 && !rc.closed {
			rc.cond.Wait()
		}
		if len(rc.queue) == 0 && rc.closed {
			rc.mu.Unlock()
			return
		}
		batch := rc.queue
		rc.queue = nil
		rc.inflight = len(batch)
		degraded := rc.degraded
		rc.mu.Unlock()

		var pushErr error
		if !degraded {
			ack, err := collect.RegistryPush(rc.putCl, rc.id, HierarchyVersion(), batch)
			switch {
			case err != nil:
				pushErr = err
			case !ack.OK:
				pushErr = fmt.Errorf("registry refused put: %s", ack.Reason)
			}
		}

		rc.mu.Lock()
		rc.inflight = 0
		switch {
		case degraded:
			rc.stats.PutDropped += len(batch)
		case pushErr != nil:
			rc.degradeLocked()
			rc.stats.PutDropped += len(batch)
		default:
			rc.stats.PutFuncs += len(batch)
		}
		rc.cond.Broadcast()
		rc.mu.Unlock()
	}
}

// Flush blocks until every queued push has been attempted (not
// necessarily accepted — degraded pushes resolve as drops) or the
// timeout expires; it reports whether the queue fully drained.
func (rc *RegistryCache) Flush(timeout time.Duration) bool {
	timer := time.AfterFunc(timeout, func() {
		rc.mu.Lock()
		rc.cond.Broadcast()
		rc.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(timeout)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for len(rc.queue) > 0 || rc.inflight > 0 {
		if time.Now().After(deadline) {
			return false
		}
		rc.cond.Wait()
	}
	return true
}

// Close flushes queued pushes (bounded), stops the drainer, and closes
// the wire clients.
func (rc *RegistryCache) Close() error {
	rc.Flush(10 * time.Second)
	rc.mu.Lock()
	rc.closed = true
	rc.cond.Broadcast()
	rc.mu.Unlock()
	rc.drained.Wait()
	rc.getCl.Close()
	return rc.putCl.Close()
}

// WithRegistry attaches a registry client to a campaign: every engine
// (sequential, parallel, coordinator) batch-fetches locally missing
// entries from the registry before probing and pushes freshly derived
// ones back. A nil client is ignored. Campaigns without a local cache
// get an in-memory one, so registry hits still have somewhere to land.
func WithRegistry(rc *RegistryCache) CampaignOption {
	return func(c *Campaign) {
		if rc != nil {
			c.registry = rc
		}
	}
}

// warmFromRegistry batch-fetches registry entries for every planned
// function the local cache cannot satisfy. After it returns, a cache
// lookup hits for every function the fleet has already derived — the
// engines then probe (or lease) only genuine global misses.
func (c *Campaign) warmFromRegistry(funcs []funcPlan) {
	if c.registry == nil || c.cache == nil {
		return
	}
	config := c.configHash()
	var keys []string
	for fi := range funcs {
		key := funcKey(funcs[fi].proto, config)
		if c.cache.lookup(key, config) == nil {
			keys = append(keys, key)
		}
	}
	c.registry.fetchInto(c.cache, config, keys)
}

// cachePut records one freshly derived report in the local cache and,
// when a registry is attached, queues it for push — the single
// write-back point shared by every engine.
func (c *Campaign) cachePut(name, config, key string, fr *FuncReport) error {
	if c.cache != nil {
		if err := c.cache.put(name, config, key, fr); err != nil {
			return err
		}
	}
	if c.registry != nil {
		c.registry.enqueue(reportToXML(name, key, config, fr))
	}
	return nil
}
