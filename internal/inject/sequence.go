package inject

// Temporal fault-sequence campaigns: the pairwise covering idea lifted
// from parameter pairs to *call* pairs. Where pairwise.go injects two
// bad arguments into one call, the sequence engine replays a scripted
// victim scenario — a deterministic sequence of library calls against
// one process — and injects fault combinations across consecutive
// calls, covering every (fault-class × call-position) interaction at
// quadratic cost (the VERIMAG multi-fault methodology's subject).
//
// Every run is compared against a *golden* (un-faulted) replay on two
// axes: how the process ended (the errno-visible axis every classifier
// already had) and the journal-diff digest of its committed state (the
// axis only the cmem write journal can see). A run that exits
// successfully with a diverged digest is the class errno-based
// classification is structurally blind to: silent corruption.

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/proc"
	"healers/internal/simelf"
	"healers/internal/xmlrep"
)

// SequenceScenario is one deterministic victim workload: an executable
// in the campaign's system plus the argv/stdin/preload configuration
// that makes its call stream reproducible.
type SequenceScenario struct {
	Name     string
	App      string
	Argv     []string
	Stdin    string
	Preloads []string
}

// seqClass is one fault class the sequence planner covers. Silent
// classes do not fault the call: they let it succeed and corrupt one
// byte of its committed state afterwards.
type seqClass struct {
	name   string
	kind   cmem.FaultKind
	silent bool
}

// seqClasses is the covered fault mix, mirroring the chaos-mode kinds
// the recovery policy distinguishes, plus the silent class.
var seqClasses = []seqClass{
	{name: "crash", kind: cmem.FaultSegv},
	{name: "abort", kind: cmem.FaultAbort},
	{name: "oom", kind: cmem.FaultOOM},
	{name: "hang", kind: cmem.FaultHang},
	{name: "silent", silent: true},
}

// SeqStep is one scripted fault of a run: class cl at 1-based call
// index Call, labelled with the function the golden run observed there.
type SeqStep struct {
	Call  uint64
	Class string
	Func  string
}

// SequenceRun is one fault-combination run's record.
type SequenceRun struct {
	Steps   []SeqStep
	Outcome Outcome
	Exit    int32
	// Diverged reports a journal-diff digest differing from the golden
	// run's; for successful exits this is what makes the outcome
	// silent-corruption, for faulting runs it is recorded as additional
	// evidence without reclassifying.
	Diverged bool
	Fault    *cmem.Fault
}

// SequenceReport is a whole sequence campaign's result.
type SequenceReport struct {
	Scenario string
	App      string
	// Calls is the golden run's intercepted-call count; GoldenOps its
	// per-call function names; GoldenDigest its committed-state digest.
	Calls        uint64
	GoldenOps    []string
	GoldenDigest string
	Runs         []SequenceRun
	// Probes and Failures count totals like the other report types.
	Probes   int
	Failures int
}

// SilentCorruptions returns the function names (with multiplicity, in
// run order) whose calls were the corruption site of a
// silent-corruption run — the attribution a wrapper State records.
func (r *SequenceReport) SilentCorruptions() []string {
	var funcs []string
	for _, run := range r.Runs {
		if run.Outcome != OutcomeSilentCorruption {
			continue
		}
		for _, s := range run.Steps {
			if s.Class == "silent" {
				funcs = append(funcs, s.Func)
			}
		}
	}
	return funcs
}

// ToXML renders the report as its checksummed document form.
func (r *SequenceReport) ToXML() *xmlrep.SequenceReportDoc {
	doc := &xmlrep.SequenceReportDoc{
		Scenario:     r.Scenario,
		App:          r.App,
		Calls:        r.Calls,
		GoldenDigest: r.GoldenDigest,
	}
	for _, run := range r.Runs {
		rx := xmlrep.SeqRunXML{
			Outcome:  run.Outcome.String(),
			Exit:     run.Exit,
			Diverged: run.Diverged,
		}
		if run.Fault != nil {
			rx.FaultKind = int(run.Fault.Kind)
			rx.FaultOp = run.Fault.Op
			rx.FaultDetail = run.Fault.Detail
		}
		for _, s := range run.Steps {
			rx.Steps = append(rx.Steps, xmlrep.SeqStepXML{Call: s.Call, Class: s.Class, Func: s.Func})
		}
		doc.Runs = append(doc.Runs, rx)
	}
	doc.Stamp()
	return doc
}

// SequenceCampaign drives temporal fault sequences against one scenario.
type SequenceCampaign struct {
	sys       *simelf.System
	scenario  SequenceScenario
	positions int
}

// SequenceOption configures a sequence campaign.
type SequenceOption func(*SequenceCampaign)

// WithPositions sets how many call positions the planner selects
// (evenly spaced over the golden call stream). More positions cover
// more interactions at quadratically more runs.
func WithPositions(n int) SequenceOption {
	return func(sc *SequenceCampaign) {
		if n > 0 {
			sc.positions = n
		}
	}
}

// defaultSeqPositions is the default call-position sample size: with 5
// fault classes it plans 5K singles + 25(K-1) pairs — K=4 keeps a
// scenario under a hundred runs.
const defaultSeqPositions = 4

// NewSequence builds a sequence campaign for one scenario in sys.
func NewSequence(sys *simelf.System, scenario SequenceScenario, opts ...SequenceOption) (*SequenceCampaign, error) {
	if _, ok := sys.Executable(scenario.App); !ok {
		return nil, fmt.Errorf("inject: no such executable %q", scenario.App)
	}
	sc := &SequenceCampaign{sys: sys, scenario: scenario, positions: defaultSeqPositions}
	for _, o := range opts {
		o(sc)
	}
	return sc, nil
}

// start spins up one fresh victim process with the scenario's
// configuration and the given fault script armed, journal on.
func (sc *SequenceCampaign) start(script []cmem.ScriptedFault, trace bool) (*proc.Process, error) {
	opts := []proc.Option{proc.WithPreloads(sc.scenario.Preloads...)}
	if sc.scenario.Stdin != "" {
		opts = append(opts, proc.WithStdin(sc.scenario.Stdin))
	}
	p, err := proc.Start(sc.sys, sc.scenario.App, opts...)
	if err != nil {
		return nil, fmt.Errorf("inject: starting sequence victim: %w", err)
	}
	chaos := cmem.NewScriptedChaos(script)
	chaos.TraceOps = trace
	env := p.Env()
	env.Chaos = chaos
	// The outer journal records every committed byte of the whole run —
	// containment's per-call journals commit into it — so the run's net
	// state change is diffable (and corruptible) at any point.
	env.Img.Space.BeginJournal()
	return p, nil
}

// Run executes the campaign: one golden replay, then every planned
// single fault and every consecutive-position fault pair. The report is
// deterministic: same scenario, same plan, same outcomes, same digests.
func (sc *SequenceCampaign) Run() (*SequenceReport, error) {
	// Golden replay: no faults, op tracing on. Its call stream defines
	// the injectable positions and its digest the uncorrupted end state.
	p, err := sc.start(nil, true)
	if err != nil {
		return nil, err
	}
	res := p.Run(sc.scenario.Argv...)
	if res.Crashed() {
		return nil, fmt.Errorf("inject: golden run of %s crashed: %s", sc.scenario.App, res)
	}
	env := p.Env()
	calls := env.Chaos.Calls
	if calls == 0 {
		return nil, fmt.Errorf("inject: golden run of %s made no library calls", sc.scenario.App)
	}
	report := &SequenceReport{
		Scenario:     sc.scenario.Name,
		App:          sc.scenario.App,
		Calls:        calls,
		GoldenOps:    env.Chaos.Ops,
		GoldenDigest: env.Img.Space.JournalDiffDigest(),
	}

	positions := planPositions(calls, sc.positions)

	// Singles: every class at every selected position.
	for _, pos := range positions {
		for _, cl := range seqClasses {
			run, err := sc.runScript(report, []SeqStep{sc.step(report, pos, cl)})
			if err != nil {
				return nil, err
			}
			report.note(run)
		}
	}
	// Pairs: every class combination across consecutive selected
	// positions — the temporal analogue of pairwise argument coverage.
	for k := 0; k+1 < len(positions); k++ {
		for _, ca := range seqClasses {
			for _, cb := range seqClasses {
				run, err := sc.runScript(report, []SeqStep{
					sc.step(report, positions[k], ca),
					sc.step(report, positions[k+1], cb),
				})
				if err != nil {
					return nil, err
				}
				report.note(run)
			}
		}
	}
	return report, nil
}

// step builds one scripted step, labelled from the golden op stream.
func (sc *SequenceCampaign) step(r *SequenceReport, pos uint64, cl seqClass) SeqStep {
	s := SeqStep{Call: pos, Class: cl.name}
	if pos >= 1 && pos <= uint64(len(r.GoldenOps)) {
		s.Func = r.GoldenOps[pos-1]
	}
	return s
}

// note appends a run and updates the totals.
func (r *SequenceReport) note(run SequenceRun) {
	r.Runs = append(r.Runs, run)
	r.Probes++
	if run.Outcome.Failure() {
		r.Failures++
	}
}

// runScript executes one fault-combination run and classifies it against
// the golden digest.
func (sc *SequenceCampaign) runScript(report *SequenceReport, steps []SeqStep) (SequenceRun, error) {
	script := make([]cmem.ScriptedFault, len(steps))
	for i, s := range steps {
		cl := classByName(s.Class)
		script[i] = cmem.ScriptedFault{Call: s.Call, Kind: cl.kind, Silent: cl.silent}
	}
	p, err := sc.start(script, false)
	if err != nil {
		return SequenceRun{}, err
	}
	res := p.Run(sc.scenario.Argv...)
	env := p.Env()
	run := SequenceRun{
		Steps:    steps,
		Exit:     res.Status,
		Diverged: env.Img.Space.JournalDiffDigest() != report.GoldenDigest,
		Fault:    res.Fault,
	}
	switch {
	case res.Fault != nil && res.Fault.Kind == cmem.FaultHang:
		run.Outcome = OutcomeHang
	case res.Fault != nil && res.Fault.Kind == cmem.FaultAbort:
		run.Outcome = OutcomeAbort
	case res.Fault != nil:
		run.Outcome = OutcomeCrash
	case res.Status != 0:
		run.Outcome = OutcomeErrno
	case run.Diverged:
		// The errno-visible axis says success; the state axis says the
		// committed bytes are not the golden run's. This is the class
		// the whole journal-diff machinery exists to catch.
		run.Outcome = OutcomeSilentCorruption
	default:
		run.Outcome = OutcomeOK
	}
	return run, nil
}

// classByName resolves a planner class name; unknown names fall back to
// the crash class (cannot happen for planner-built steps).
func classByName(name string) seqClass {
	for _, cl := range seqClasses {
		if cl.name == name {
			return cl
		}
	}
	return seqClasses[0]
}

// planPositions selects up to k call positions evenly spaced over
// [1, calls], deduplicated and ascending — the covering sample the
// quadratic pair stage runs over.
func planPositions(calls uint64, k int) []uint64 {
	if k <= 0 {
		k = 1
	}
	if uint64(k) > calls {
		k = int(calls)
	}
	positions := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		var pos uint64
		if k == 1 {
			pos = 1 + calls/2
			if pos > calls {
				pos = calls
			}
		} else {
			pos = 1 + uint64(i)*(calls-1)/uint64(k-1)
		}
		if n := len(positions); n > 0 && positions[n-1] == pos {
			continue
		}
		positions = append(positions, pos)
	}
	return positions
}
