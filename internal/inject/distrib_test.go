package inject

import (
	"strings"
	"sync"
	"testing"
	"time"

	"healers/internal/clib"
	"healers/internal/cmath"
	"healers/internal/collect"
	"healers/internal/simelf"
	"healers/internal/xmlrep"
)

// startCoordinator plans soname's sweep on a fresh system and serves it
// on an ephemeral loopback port.
func startCoordinator(t *testing.T, mkSys func(*testing.T) *simelf.System, soname string, nshards int, copts []CoordOption, opts ...CampaignOption) *Coordinator {
	t.Helper()
	c, err := New(mkSys(t), soname, opts...)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(c, nshards, copts...)
	if err := co.Serve("127.0.0.1:0"); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// spawnWorkers runs n workers — each on its own fresh system, standing
// in for separate OS processes — and returns a join function.
func spawnWorkers(t *testing.T, mkSys func(*testing.T) *simelf.System, addr string, n int, opts ...WorkerOption) func() []*WorkerSummary {
	t.Helper()
	var wg sync.WaitGroup
	sums := make([]*WorkerSummary, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wopts := append([]WorkerOption{WithWorkerID(string(rune('a' + i)))}, opts...)
			sums[i], errs[i] = RunWorker(mkSys(t), addr, wopts...)
		}(i)
	}
	return func() []*WorkerSummary {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("worker %d: %v", i, err)
			}
		}
		return sums
	}
}

// sequentialReport is the reference run every distributed result must
// match byte for byte.
func sequentialReport(t *testing.T, mkSys func(*testing.T) *simelf.System, soname string) *LibReport {
	t.Helper()
	c, err := New(mkSys(t), soname)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestDistributedMatchesSequential is the fabric's core promise: for any
// worker count and shard count, the merged report — and the robust-API
// XML rendered from it — is byte-identical to a sequential sweep.
func TestDistributedMatchesSequential(t *testing.T) {
	seq := sequentialReport(t, libmSystem, cmath.Soname)
	for _, tc := range []struct{ workers, shards int }{
		{1, 1}, {2, 3}, {4, 0},
	} {
		co := startCoordinator(t, libmSystem, cmath.Soname, tc.shards, nil)
		join := spawnWorkers(t, libmSystem, co.Addr(), tc.workers)
		lr, stats, err := co.Wait()
		if err != nil {
			t.Fatalf("workers=%d shards=%d: Wait: %v", tc.workers, tc.shards, err)
		}
		sums := join()
		assertIdentical(t, seq, lr)
		if stats.Probes != seq.TotalProbes {
			t.Errorf("workers=%d: executed %d probes, want %d", tc.workers, stats.Probes, seq.TotalProbes)
		}
		var workerProbes int
		for _, s := range sums {
			workerProbes += s.Probes
		}
		if workerProbes < seq.TotalProbes {
			t.Errorf("workers=%d: workers probed %d total, want >= %d", tc.workers, workerProbes, seq.TotalProbes)
		}
	}
}

// TestWorkerCrashReleasesLease kills a worker mid-shard: a fake worker
// takes the only lease and vanishes without sending a single result. The
// lease must time out, the shard must be re-leased to a live worker, and
// the merged report must still match the sequential run exactly.
func TestWorkerCrashReleasesLease(t *testing.T) {
	seq := sequentialReport(t, libmSystem, cmath.Soname)
	co := startCoordinator(t, libmSystem, cmath.Soname, 1,
		[]CoordOption{WithLeaseTimeout(200 * time.Millisecond), WithStragglerAfter(0)})

	// The casualty: lease the shard, then disappear.
	cl := collect.NewClient(co.Addr())
	resp, err := cl.Call(&xmlrep.WorkRequest{Worker: "doomed", Hierarchy: HierarchyVersion()})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := xmlrep.Unmarshal[xmlrep.WorkLease](resp)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Done || len(lease.Funcs) == 0 {
		t.Fatalf("doomed worker got no work: %+v", lease)
	}
	cl.Close()

	join := spawnWorkers(t, libmSystem, co.Addr(), 1)
	lr, _, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	join()
	assertIdentical(t, seq, lr)
	if counts := co.Shards(); counts.Releases == 0 {
		t.Error("no lease-timeout release recorded after the worker crash")
	}
}

// TestDuplicateResultsDeduped replays a result document — the retry-
// after-lost-response case — and requires idempotent merging: the first
// copy is accepted, the second acknowledged but dropped, and the final
// report is unaffected.
func TestDuplicateResultsDeduped(t *testing.T) {
	seq := sequentialReport(t, libmSystem, cmath.Soname)
	// The short lease lets the live worker pick up the abandoned rest of
	// the shard quickly once the replayer goes quiet.
	co := startCoordinator(t, libmSystem, cmath.Soname, 1,
		[]CoordOption{WithLeaseTimeout(300 * time.Millisecond)})

	cl := collect.NewClient(co.Addr())
	defer cl.Close()
	resp, err := cl.Call(&xmlrep.WorkRequest{Worker: "replayer", Hierarchy: HierarchyVersion()})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := xmlrep.Unmarshal[xmlrep.WorkLease](resp)
	if err != nil {
		t.Fatal(err)
	}

	// Sweep the first leased function locally and build its result doc.
	sys := libmSystem(t)
	camp, err := New(sys, cmath.Soname)
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{id: "replayer", sys: sys, heartbeat: time.Hour, lastContact: time.Now()}
	entry, _, err := w.sweepFunc(camp, lease, lease.Funcs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	res := &xmlrep.WorkResult{
		Worker: "replayer", Shard: lease.Shard, Attempt: lease.Attempt,
		Config: lease.Config, Funcs: []xmlrep.WorkFuncXML{entry},
	}
	res.Checksum = res.ComputeChecksum()

	for i, want := range []int{1, 0} {
		resp, err := cl.Call(res)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := xmlrep.Unmarshal[xmlrep.WorkAck](resp)
		if err != nil {
			t.Fatal(err)
		}
		if !ack.OK || ack.Accepted != want {
			t.Fatalf("send %d: ack = %+v, want OK with %d accepted", i+1, ack, want)
		}
	}

	// A live worker finishes the rest; the replayed function must appear
	// exactly once, with the replayer's (first) result.
	join := spawnWorkers(t, libmSystem, co.Addr(), 1)
	lr, stats, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	join()
	assertIdentical(t, seq, lr)
	if stats.Probes != seq.TotalProbes {
		t.Errorf("executed probes = %d, want %d (duplicate double-counted?)", stats.Probes, seq.TotalProbes)
	}
}

// TestStragglerReissue: a shard held by a live-but-stalled worker past
// the straggler deadline is speculatively re-issued to an idle worker,
// so one stuck process cannot stall the sweep — even though its lease
// never expires.
func TestStragglerReissue(t *testing.T) {
	seq := sequentialReport(t, libmSystem, cmath.Soname)
	co := startCoordinator(t, libmSystem, cmath.Soname, 1,
		[]CoordOption{WithLeaseTimeout(time.Hour), WithStragglerAfter(50 * time.Millisecond)})

	cl := collect.NewClient(co.Addr())
	defer cl.Close()
	if _, err := cl.Call(&xmlrep.WorkRequest{Worker: "stalled", Hierarchy: HierarchyVersion()}); err != nil {
		t.Fatal(err)
	}

	join := spawnWorkers(t, libmSystem, co.Addr(), 1)
	lr, _, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	join()
	assertIdentical(t, seq, lr)
	if counts := co.Shards(); counts.Stragglers == 0 {
		t.Error("no speculative straggler re-issue recorded")
	}
}

// TestHeartbeatExtendsLease drives the handler directly: a heartbeat
// from the leaseholder pushes the lease deadline out; one from anyone
// else does not.
func TestHeartbeatExtendsLease(t *testing.T) {
	c, err := New(libmSystem(t), cmath.Soname)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(c, 1, WithLeaseTimeout(time.Minute))
	mustMarshal := func(doc any) []byte {
		data, err := xmlrep.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	co.handle("", xmlrep.KindWorkRequest,
		mustMarshal(&xmlrep.WorkRequest{Worker: "w1", Hierarchy: HierarchyVersion()}))
	before := co.shards[0].deadline

	co.handle("", xmlrep.KindHeartbeat, mustMarshal(&xmlrep.Heartbeat{Worker: "w2", Shard: 0, Attempt: 1}))
	if !co.shards[0].deadline.Equal(before) {
		t.Error("a non-holder's heartbeat moved the lease deadline")
	}
	time.Sleep(5 * time.Millisecond)
	co.handle("", xmlrep.KindHeartbeat, mustMarshal(&xmlrep.Heartbeat{Worker: "w1", Shard: 0, Attempt: 1}))
	if !co.shards[0].deadline.After(before) {
		t.Error("the holder's heartbeat did not extend the lease")
	}
}

// TestCoordinatorRefusesForeignResults drives the validation paths: a
// hierarchy-mismatched worker is turned away, and result documents with
// a wrong config or corrupted checksum are rejected, not merged.
func TestCoordinatorRefusesForeignResults(t *testing.T) {
	c, err := New(libmSystem(t), cmath.Soname)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(c, 1)
	mustMarshal := func(doc any) []byte {
		data, err := xmlrep.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	refused := func(resp []byte, wantSub string) {
		t.Helper()
		ack, err := xmlrep.Unmarshal[xmlrep.WorkAck](resp)
		if err != nil {
			t.Fatalf("response is not an ack: %v", err)
		}
		if ack.OK || !strings.Contains(ack.Reason, wantSub) {
			t.Errorf("ack = %+v, want refusal mentioning %q", ack, wantSub)
		}
	}

	refused(co.handle("", xmlrep.KindWorkRequest,
		mustMarshal(&xmlrep.WorkRequest{Worker: "old", Hierarchy: "v0-stale"})), "hierarchy")

	res := &xmlrep.WorkResult{Worker: "w", Config: "deadbeef"}
	res.Checksum = res.ComputeChecksum()
	refused(co.handle("", xmlrep.KindWorkResult, mustMarshal(res)), "config")

	res = &xmlrep.WorkResult{Worker: "w", Config: co.config, Checksum: "bogus"}
	refused(co.handle("", xmlrep.KindWorkResult, mustMarshal(res)), "checksum")

	if co.doneFuncsLocked() != 0 {
		t.Error("a refused result was merged")
	}
}

// TestDistributedCacheFolds: results streamed back by workers must land
// in the coordinator's campaign cache, so a later run — sequential or
// distributed — is served entirely from cache.
func TestDistributedCacheFolds(t *testing.T) {
	path := cachePath(t)
	co := startCoordinator(t, libcSystem, clib.LibcSoname, 3, nil, WithCache(openTestCache(t, path)))
	join := spawnWorkers(t, libcSystem, co.Addr(), 2)
	first, _, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	join()
	if err := co.camp.cache.Save(); err != nil {
		t.Fatal(err)
	}

	warm, stats := runCached(t, libcSystem, clib.LibcSoname, openTestCache(t, path))
	assertIdentical(t, first, warm)
	if stats.CachedFuncs != len(warm.Funcs) || stats.Probes != 0 {
		t.Errorf("warm run after distributed sweep: %d/%d cached, %d probes executed",
			stats.CachedFuncs, len(warm.Funcs), stats.Probes)
	}

	// And a warm *coordinator* resolves everything locally: Wait returns
	// without any worker connecting.
	co2 := startCoordinator(t, libcSystem, clib.LibcSoname, 3, nil, WithCache(openTestCache(t, path)))
	again, stats2, err := co2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, first, again)
	if stats2.CachedFuncs != len(again.Funcs) {
		t.Errorf("warm coordinator probed: %d/%d cached", stats2.CachedFuncs, len(again.Funcs))
	}
}

// TestWorkerLocalCacheReported: a worker with a warm local cache reports
// results without re-probing, and the coordinator still merges a full,
// correct report.
func TestWorkerLocalCacheReported(t *testing.T) {
	seq := sequentialReport(t, libmSystem, cmath.Soname)

	// Warm a cache with a plain sequential run; runCached does not save,
	// so persist explicitly like the CLI does.
	path := cachePath(t)
	warmCache := openTestCache(t, path)
	runCached(t, libmSystem, cmath.Soname, warmCache)
	if err := warmCache.Save(); err != nil {
		t.Fatal(err)
	}

	co := startCoordinator(t, libmSystem, cmath.Soname, 2, nil)
	join := spawnWorkers(t, libmSystem, co.Addr(), 1, WithWorkerCache(openTestCache(t, path)))
	lr, stats, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sums := join()
	assertIdentical(t, seq, lr)
	if sums[0].Cached != len(seq.Funcs) || sums[0].Probes != 0 {
		t.Errorf("worker summary = %+v, want all %d functions from local cache", sums[0], len(seq.Funcs))
	}
	if stats.Probes != 0 || stats.CachedFuncs != len(seq.Funcs) {
		t.Errorf("stats = %d probes, %d cached; want 0 probes, all cached", stats.Probes, stats.CachedFuncs)
	}
}
