// Parallel campaign engine. A fault-injection campaign is embarrassingly
// parallel — every probe runs in its own fresh simulated process against
// the shared read-only system registry — so the library sweep fans
// (function × parameter × probe) work units across a worker pool. Results
// carry stable indices and reports are assembled in canonical order, so a
// parallel sweep produces a LibReport identical to the sequential one for
// any worker count.
package inject

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a campaign progress snapshot, delivered after each completed
// function sweep.
type Progress struct {
	// Func is the function whose sweep just completed; FuncProbes is its
	// probe count.
	Func       string
	FuncProbes int
	// DoneFuncs / TotalFuncs and DoneProbes / TotalProbes track the whole
	// sweep.
	DoneFuncs   int
	TotalFuncs  int
	DoneProbes  int
	TotalProbes int
}

// FuncTiming is one function's share of a campaign run.
type FuncTiming struct {
	Name   string
	Probes int
	// Wall is the time spent probing the function: contiguous wall time
	// in a sequential run, summed per-probe time in a parallel run
	// (where one function's probes interleave across workers).
	Wall time.Duration
	// Cached marks a function whose report was reused from the campaign
	// cache instead of being probed (Wall is then zero).
	Cached bool
}

// CampaignStats describes one library sweep's throughput — the numbers
// the CLI and the scaling benchmarks report. It is deliberately kept out
// of LibReport so that reports stay deterministic and comparable across
// engines.
type CampaignStats struct {
	// Workers is the pool size the sweep ran with (1 = sequential).
	Workers int
	// Probes is the number of probe processes executed. Cache hits do
	// not execute probes, so with a warm cache this is smaller than the
	// report's TotalProbes (which keeps full campaign semantics).
	Probes int
	// CachedFuncs / CachedProbes count the functions (and the probes
	// they represent) served from the campaign cache instead of probed.
	CachedFuncs  int
	CachedProbes int
	// Elapsed is the sweep's wall time; ProbesPerSec the throughput.
	Elapsed      time.Duration
	ProbesPerSec float64
	// FuncWall records per-function time, in canonical function order.
	FuncWall []FuncTiming
	// WorkerBusy is each worker's cumulative probe-execution time.
	WorkerBusy []time.Duration
	// Utilization is sum(WorkerBusy) / (Workers × Elapsed): 1.0 means no
	// worker ever waited for work.
	Utilization float64
}

func newCampaignStats(workers, funcs int) *CampaignStats {
	return &CampaignStats{
		Workers:    workers,
		FuncWall:   make([]FuncTiming, 0, funcs),
		WorkerBusy: make([]time.Duration, workers),
	}
}

func (s *CampaignStats) noteFunc(name string, probes int, wall time.Duration, cached bool) {
	s.FuncWall = append(s.FuncWall, FuncTiming{Name: name, Probes: probes, Wall: wall, Cached: cached})
}

func (s *CampaignStats) finish(probes int, elapsed time.Duration) {
	s.Probes = probes
	s.Elapsed = elapsed
	if elapsed > 0 {
		s.ProbesPerSec = float64(probes) / elapsed.Seconds()
	}
	var busy time.Duration
	for _, b := range s.WorkerBusy {
		busy += b
	}
	if s.Workers > 0 && elapsed > 0 {
		s.Utilization = busy.Seconds() / (float64(s.Workers) * elapsed.Seconds())
	}
}

// probeTask is one flattened work unit: function fn, probe spec sp within
// that function's plan.
type probeTask struct {
	fn, sp int
}

// runLibraryParallel fans the library sweep across a worker pool.
// workers <= 0 means GOMAXPROCS.
func (c *Campaign) runLibraryParallel(workers int) (*LibReport, *CampaignStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	plan := c.planLibrary()
	c.warmFromRegistry(plan.funcs)
	stats := newCampaignStats(workers, len(plan.funcs))
	config := c.configHash()
	start := time.Now()

	// Cache partition: functions with a current cache entry skip the
	// worker pool entirely; only the rest become probe tasks. The merge
	// below walks canonical order regardless, so a warm run's report is
	// byte-identical to a cold one.
	cachedReports := make([]*FuncReport, len(plan.funcs))
	keys := make([]string, len(plan.funcs))
	cachedFuncs, cachedProbes := 0, 0
	for fi := range plan.funcs {
		fr, key := c.cacheLookup(&plan.funcs[fi], config)
		keys[fi] = key
		if fr != nil {
			cachedReports[fi] = fr
			cachedFuncs++
			cachedProbes += fr.Probes
		}
	}
	stats.CachedFuncs = cachedFuncs
	stats.CachedProbes = cachedProbes

	// Results and errors land in slots addressed by stable indices, so
	// execution order cannot influence the merged report. Errors keep
	// their flat task index so the winner is the canonically first one,
	// like the sequential engine's fail-fast.
	tasks := make([]probeTask, 0, plan.totalProbes)
	results := make([][]ProbeResult, len(plan.funcs))
	built := make([]*FuncReport, len(plan.funcs))
	remaining := make([]int32, len(plan.funcs))
	for fi, fp := range plan.funcs {
		if cachedReports[fi] != nil {
			continue
		}
		results[fi] = make([]ProbeResult, len(fp.specs))
		remaining[fi] = int32(len(fp.specs))
		for si := range fp.specs {
			tasks = append(tasks, probeTask{fn: fi, sp: si})
		}
	}
	errs := make([]error, len(tasks))

	var (
		stop     = make(chan struct{})
		stopOnce sync.Once
		wg       sync.WaitGroup
		doneP    atomic.Int64 // completed probes
		doneF    atomic.Int64 // completed functions
		funcBusy = make([]atomic.Int64, len(plan.funcs))
		progMu   sync.Mutex // serializes the progress callback
		taskCh   = make(chan int)
	)
	abort := func() { stopOnce.Do(func() { close(stop) }) }

	// Cache hits complete "instantly": report them first, in canonical
	// order, and seed the counters the workers' progress builds on.
	for fi, fp := range plan.funcs {
		if cachedReports[fi] == nil {
			continue
		}
		done := doneP.Add(int64(cachedReports[fi].Probes))
		df := doneF.Add(1)
		if c.progress != nil {
			c.progress(Progress{
				Func: fp.name, FuncProbes: cachedReports[fi].Probes,
				DoneFuncs: int(df), TotalFuncs: len(plan.funcs),
				DoneProbes: int(done), TotalProbes: plan.totalProbes,
			})
		}
	}

	// Feeder: hands out flat task indices until done or aborted.
	go func() {
		defer close(taskCh)
		for i := range tasks {
			select {
			case taskCh <- i:
			case <-stop:
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range taskCh {
				t := tasks[idx]
				fp := plan.funcs[t.fn]
				t0 := time.Now()
				r, err := c.runProbe(fp.proto, fp.specs[t.sp].param, fp.specs[t.sp].probe, uint32(worker))
				d := time.Since(t0)
				stats.WorkerBusy[worker] += d
				if err != nil {
					errs[idx] = err
					abort()
					continue
				}
				results[t.fn][t.sp] = r
				funcBusy[t.fn].Add(int64(d))
				done := doneP.Add(1)
				if atomic.AddInt32(&remaining[t.fn], -1) == 0 {
					// Exactly one worker observes the zero crossing,
					// making it the single writer of built[t.fn] and
					// the sole cache-put for this function.
					built[t.fn] = buildReport(fp.name, fp.proto, results[t.fn])
					if c.cache != nil {
						if err := c.cachePut(fp.name, config, keys[t.fn], built[t.fn]); err != nil {
							errs[idx] = err
							abort()
							continue
						}
					}
					df := doneF.Add(1)
					if c.progress != nil {
						progMu.Lock()
						c.progress(Progress{
							Func: fp.name, FuncProbes: len(fp.specs),
							DoneFuncs: int(df), TotalFuncs: len(plan.funcs),
							DoneProbes: int(done), TotalProbes: plan.totalProbes,
						})
						progMu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Deterministic merge: canonical function order, canonical probe
	// order within each function. Cached functions contribute their
	// stored reports; probed ones the reports built at completion.
	lr := &LibReport{Library: c.target}
	executed := 0
	for fi, fp := range plan.funcs {
		fr := cachedReports[fi]
		cached := fr != nil
		if !cached {
			fr = built[fi]
			executed += fr.Probes
		}
		lr.Funcs = append(lr.Funcs, fr)
		lr.TotalProbes += fr.Probes
		lr.TotalFailures += fr.Failures
		stats.noteFunc(fp.name, fr.Probes, time.Duration(funcBusy[fi].Load()), cached)
	}
	stats.finish(executed, time.Since(start))
	if c.statsSink != nil {
		c.statsSink(stats)
	}
	return lr, stats, nil
}
