package inject

import (
	"testing"
	"time"

	"healers/internal/cmath"
	"healers/internal/collect"
	"healers/internal/xmlrep"
)

// startRegistry serves a fresh directory-backed registry on an
// ephemeral loopback port.
func startRegistry(t *testing.T) (*collect.Registry, string) {
	t.Helper()
	reg, err := collect.NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collect.Serve("127.0.0.1:0", collect.WithHandler(reg.Handler()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return reg, srv.Addr()
}

// newTestRegistryCache builds a registry client with fast-failing wire
// clients so degradation paths don't stall the suite.
func newTestRegistryCache(t *testing.T, addr string) *RegistryCache {
	t.Helper()
	get, put := collect.NewClient(addr), collect.NewClient(addr)
	get.DialTimeout, put.DialTimeout = 250*time.Millisecond, 250*time.Millisecond
	rc := NewRegistryCache(addr, WithRegistryClients(get, put))
	t.Cleanup(func() { rc.Close() })
	return rc
}

// runWithRegistry sweeps soname on a fresh system with a registry
// client over an in-memory local cache.
func runWithRegistry(t *testing.T, rc *RegistryCache, extra ...CampaignOption) (*LibReport, *CampaignStats) {
	t.Helper()
	var stats *CampaignStats
	opts := append([]CampaignOption{
		WithRegistry(rc),
		WithStatsSink(func(s *CampaignStats) { stats = s }),
	}, extra...)
	c, err := New(libmSystem(t), cmath.Soname, opts...)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatalf("registry-backed sweep: %v", err)
	}
	return lr, stats
}

// TestRegistryWarmSweepByteIdentical is the tentpole's acceptance test:
// runner A probes cold and pushes everything to the registry; runner B
// — fresh local cache, same registry — performs zero probes (remote hit
// counter == plan size) and renders a byte-identical report and
// robust-API document.
func TestRegistryWarmSweepByteIdentical(t *testing.T) {
	cold := sequentialReport(t, libmSystem, cmath.Soname)
	reg, addr := startRegistry(t)

	rcA := newTestRegistryCache(t, addr)
	a, aStats := runWithRegistry(t, rcA)
	assertIdentical(t, cold, a)
	if aStats.Probes != cold.TotalProbes {
		t.Fatalf("runner A executed %d probes, want cold's %d", aStats.Probes, cold.TotalProbes)
	}
	if !rcA.Flush(10 * time.Second) {
		t.Fatal("runner A's registry pushes did not drain")
	}
	if st := rcA.Stats(); st.PutFuncs != len(cold.Funcs) || st.Degraded {
		t.Fatalf("runner A registry stats = %+v; want %d pushed funcs", st, len(cold.Funcs))
	}
	if st := reg.Stats(); st.Entries != len(cold.Funcs) {
		t.Fatalf("registry holds %d entries, want %d", st.Entries, len(cold.Funcs))
	}

	rcB := newTestRegistryCache(t, addr)
	b, bStats := runWithRegistry(t, rcB)
	assertIdentical(t, cold, b)
	if bStats.Probes != 0 || bStats.CachedFuncs != len(cold.Funcs) {
		t.Errorf("runner B executed %d probes / cached %d funcs; want 0 / %d",
			bStats.Probes, bStats.CachedFuncs, len(cold.Funcs))
	}
	if st := rcB.Stats(); st.RemoteHits != len(cold.Funcs) || st.RemoteMisses != 0 || st.Corrupt != 0 {
		t.Errorf("runner B registry stats = %+v; want every function a remote hit", st)
	}
}

// TestRegistryCoordinatorPlansZeroLeases: a coordinator planning
// against a populated registry resolves every function during planning
// — the sweep completes without any worker, and the merged report is
// still byte-identical.
func TestRegistryCoordinatorPlansZeroLeases(t *testing.T) {
	cold := sequentialReport(t, libmSystem, cmath.Soname)
	_, addr := startRegistry(t)

	rc := newTestRegistryCache(t, addr)
	runWithRegistry(t, rc)
	if !rc.Flush(10 * time.Second) {
		t.Fatal("registry pushes did not drain")
	}

	c, err := New(libmSystem(t), cmath.Soname, WithRegistry(newTestRegistryCache(t, addr)))
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(c, 4)
	if co.Remaining() != 0 {
		t.Fatalf("coordinator still leases %d functions against a populated registry", co.Remaining())
	}
	lr, stats, err := co.Wait() // completes without Serve: nothing to lease
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, cold, lr)
	if stats.Probes != 0 {
		t.Errorf("coordinator executed %d probes, want 0", stats.Probes)
	}
}

// TestRegistryWorkersWarmFromRegistry: workers attached to a populated
// registry answer their leases without probing.
func TestRegistryWorkersWarmFromRegistry(t *testing.T) {
	cold := sequentialReport(t, libmSystem, cmath.Soname)
	_, addr := startRegistry(t)
	rc := newTestRegistryCache(t, addr)
	runWithRegistry(t, rc)
	if !rc.Flush(10 * time.Second) {
		t.Fatal("registry pushes did not drain")
	}

	// Coordinator has no cache and no registry: every function goes to
	// the wire; the workers' registry layer answers them all.
	co := startCoordinator(t, libmSystem, cmath.Soname, 3, nil)
	join := spawnWorkers(t, libmSystem, co.Addr(), 2,
		WithWorkerRegistry(newTestRegistryCache(t, addr)))
	lr, _, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sums := join()
	assertIdentical(t, cold, lr)
	probed := 0
	for _, s := range sums {
		probed += s.Probes
	}
	if probed != 0 {
		t.Errorf("workers executed %d probes against a populated registry, want 0", probed)
	}
}

// TestRegistryCorruptEntryDiscardedAndReprobed: a registry serving
// entries whose per-entry integrity sum does not match their content
// must not poison the sweep — the client discards each corrupted entry,
// counts it, and re-probes the function.
func TestRegistryCorruptEntryDiscardedAndReprobed(t *testing.T) {
	cold := sequentialReport(t, libmSystem, cmath.Soname)

	// The config hash the campaign will request under (fresh systems
	// with the same target and no stdin/preloads share it).
	probe, err := New(libmSystem(t), cmath.Soname)
	if err != nil {
		t.Fatal(err)
	}
	config := probe.configHash()

	// A hostile registry: answers every get with plausible entries whose
	// sums are wrong.
	srv, err := collect.Serve("127.0.0.1:0", collect.WithHandler(
		func(from string, kind xmlrep.DocKind, data []byte) []byte {
			if kind != xmlrep.KindRegistryGet {
				return nil
			}
			req, err := xmlrep.Unmarshal[xmlrep.RegistryGet](data)
			if err != nil {
				return nil
			}
			ans := &xmlrep.RegistryAnswer{}
			for _, k := range req.Keys {
				ans.Found = append(ans.Found, k)
				ans.Funcs = append(ans.Funcs, xmlrep.RegistryEntryXML{
					CacheFuncXML: xmlrep.CacheFuncXML{
						Name: "fake", Key: k, Config: config, Probes: 1,
						Results: []xmlrep.CacheProbeXML{{Probe: "call", Param: -1, Outcome: "ok"}},
					},
					Sum: "corrupted-in-storage",
				})
			}
			ans.Checksum = ans.ComputeChecksum()
			out, _ := xmlrep.Marshal(ans)
			return out
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rc := newTestRegistryCache(t, srv.Addr())
	lr, stats := runWithRegistry(t, rc)
	assertIdentical(t, cold, lr)
	if stats.Probes != cold.TotalProbes {
		t.Errorf("corrupted entries short-circuited probing: %d probes, want %d", stats.Probes, cold.TotalProbes)
	}
	st := rc.Stats()
	if st.Corrupt != len(cold.Funcs) || st.RemoteHits != 0 {
		t.Errorf("registry stats = %+v; want every entry counted corrupt, zero hits", st)
	}
}

// TestRegistryUnreachableDegradesToLocal: a dead registry address must
// cost a counted warning, never a failed sweep — the campaign degrades
// to local-only and still produces the full report.
func TestRegistryUnreachableDegradesToLocal(t *testing.T) {
	cold := sequentialReport(t, libmSystem, cmath.Soname)

	// An address that refuses connections: bind, then close.
	srv, err := collect.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	srv.Close()

	rc := newTestRegistryCache(t, addr)
	lr, stats := runWithRegistry(t, rc)
	assertIdentical(t, cold, lr)
	if stats.Probes != cold.TotalProbes {
		t.Errorf("degraded sweep executed %d probes, want %d", stats.Probes, cold.TotalProbes)
	}
	rc.Flush(5 * time.Second)
	st := rc.Stats()
	if !st.Degraded || st.Errors == 0 {
		t.Errorf("registry stats = %+v; want degraded with counted errors", st)
	}
	if st.RemoteHits != 0 || st.PutFuncs != 0 {
		t.Errorf("registry stats = %+v; nothing should have reached a dead registry", st)
	}
}
