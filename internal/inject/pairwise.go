package inject

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/proc"
)

// Pairwise campaigns inject two parameters at once while the rest stay
// golden. Full cartesian probing explodes combinatorially; pairwise
// covers every two-way interaction at quadratic (not exponential) cost —
// the classic covering-array argument. The ablation benchmark compares it
// against the default single-fault sweep: how many extra failures do
// interactions reveal, for how many extra probes?

// PairResult is one two-parameter probe call.
type PairResult struct {
	ParamA, ParamB int
	ProbeA, ProbeB string
	Outcome        Outcome
	Fault          *cmem.Fault
}

// PairReport aggregates a pairwise sweep of one function.
type PairReport struct {
	Name     string
	Proto    *ctypes.Prototype
	Results  []PairResult
	Probes   int
	Failures int
}

// RunFunctionPairwise probes every pair of parameters of the named
// function with every probe combination.
func (c *Campaign) RunFunctionPairwise(name string) (*PairReport, error) {
	lib, _ := c.sys.Library(c.target)
	proto := lib.Proto(name)
	if proto == nil {
		return nil, fmt.Errorf("inject: %s has no prototype for %q", c.target, name)
	}
	report := &PairReport{Name: name, Proto: proto}
	n := len(proto.Params)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			probesI := ProbesFor(proto.Params[i])
			probesJ := ProbesFor(proto.Params[j])
			for _, pi := range probesI {
				for _, pj := range probesJ {
					r, err := c.runPairProbe(proto, i, pi, j, pj)
					if err != nil {
						return nil, err
					}
					report.Results = append(report.Results, r)
					report.Probes++
					if r.Outcome.Failure() {
						report.Failures++
					}
				}
			}
		}
	}
	return report, nil
}

// runPairProbe executes one two-parameter injection in a fresh process.
func (c *Campaign) runPairProbe(proto *ctypes.Prototype, i int, pi Probe, j int, pj Probe) (PairResult, error) {
	opts := []proc.Option{proc.WithPreloads(c.preloads...)}
	if c.stdin != "" {
		opts = append(opts, proc.WithStdin(c.stdin))
	}
	p, err := proc.Start(c.sys, c.hostname, opts...)
	if err != nil {
		return PairResult{}, fmt.Errorf("inject: starting probe host: %w", err)
	}
	env := p.Env()
	if err := prepareProbeRegions(env); err != nil {
		return PairResult{}, err
	}
	args := make([]cval.Value, len(proto.Params))
	for k, prm := range proto.Params {
		pr := GoldenProbe(prm)
		switch k {
		case i:
			pr = pi
		case j:
			pr = pj
		}
		v, err := pr.Make(env)
		if err != nil {
			return PairResult{}, fmt.Errorf("inject: %s pair (%d,%d): %w", proto.Name, i, j, err)
		}
		args[k] = v
	}
	env.Errno = 0
	env.Img.Space.SetFuel(probeFuel)
	_, res := p.RunCall(proto.Name, args...)
	env.Img.Space.SetFuel(-1)
	out := PairResult{ParamA: i, ParamB: j, ProbeA: pi.Name, ProbeB: pj.Name}
	switch {
	case res.Fault != nil && res.Fault.Kind == cmem.FaultHang:
		out.Outcome, out.Fault = OutcomeHang, res.Fault
	case res.Fault != nil && res.Fault.Kind == cmem.FaultAbort:
		out.Outcome, out.Fault = OutcomeAbort, res.Fault
	case res.Fault != nil:
		out.Outcome, out.Fault = OutcomeCrash, res.Fault
	case env.Errno == DeniedErrno:
		out.Outcome = OutcomeDenied
	case env.Errno != 0:
		out.Outcome = OutcomeErrno
	default:
		out.Outcome = OutcomeOK
	}
	return out, nil
}

// CompareModes runs both sweep modes for one function and reports their
// cost and detection power — the DESIGN.md §5 ablation.
type ModeComparison struct {
	Name            string
	SingleProbes    int
	SingleFailures  int
	PairProbes      int
	PairFailures    int
	SingleDetects   bool // function flagged brittle by single-fault
	PairwiseDetects bool // function flagged brittle by pairwise
}

// CompareModes runs the single-fault and pairwise sweeps on one function.
func (c *Campaign) CompareModes(name string) (*ModeComparison, error) {
	single, err := c.RunFunction(name)
	if err != nil {
		return nil, err
	}
	pair, err := c.RunFunctionPairwise(name)
	if err != nil {
		return nil, err
	}
	return &ModeComparison{
		Name:            name,
		SingleProbes:    single.Probes,
		SingleFailures:  single.Failures,
		PairProbes:      pair.Probes,
		PairFailures:    pair.Failures,
		SingleDetects:   single.Failures > 0,
		PairwiseDetects: pair.Failures > 0,
	}, nil
}
