package inject

import (
	"fmt"
	"strings"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/proc"
)

// Pairwise campaigns inject two parameters at once while the rest stay
// golden. Full cartesian probing explodes combinatorially; pairwise
// covers every two-way interaction at quadratic (not exponential) cost —
// the classic covering-array argument. The ablation benchmark compares it
// against the default single-fault sweep: how many extra failures do
// interactions reveal, for how many extra probes?

// PairResult is one two-parameter probe call.
type PairResult struct {
	ParamA, ParamB int
	ProbeA, ProbeB string
	Outcome        Outcome
	Fault          *cmem.Fault
}

// PairReport aggregates a pairwise sweep of one function.
type PairReport struct {
	Name     string
	Proto    *ctypes.Prototype
	Results  []PairResult
	Probes   int
	Failures int
}

// pairwiseConfigSuffix marks pairwise cache entries: mixed into the
// injector config before hashing the cache key, it keeps a pairwise
// sweep's entry from ever colliding with the single-fault sweep's for
// the same prototype and configuration.
const pairwiseConfigSuffix = "+pairwise"

// RunFunctionPairwise probes every pair of parameters of the named
// function with every probe combination. It shares RunFunction's cache
// and stats-sink discipline: an attached cache answers an unchanged
// function instantly (under a pairwise-marked key, so the two sweep
// modes never cross-contaminate), fresh sweeps are stored back, and an
// attached stats sink receives the run's throughput.
func (c *Campaign) RunFunctionPairwise(name string) (*PairReport, error) {
	lib, _ := c.sys.Library(c.target)
	proto := lib.Proto(name)
	if proto == nil {
		return nil, fmt.Errorf("inject: %s has no prototype for %q", c.target, name)
	}
	var key, config string
	if c.cache != nil {
		config = c.configHash() + pairwiseConfigSuffix
		key = funcKey(proto, config)
		if fr := c.cache.lookup(key, config); fr != nil {
			pr, err := pairReportFromFunc(proto, fr)
			if err == nil {
				c.emitPairStats(pr, 0, true)
				return pr, nil
			}
			// Undecodable pairwise entry: fall through and re-probe.
		}
	}
	report := &PairReport{Name: name, Proto: proto}
	n := len(proto.Params)
	// One probe catalog per parameter, hoisted out of the pair loops:
	// ProbesFor allocates, and the inner loops would otherwise recompute
	// parameter i's catalog for every partner j.
	probes := make([][]Probe, n)
	for i := range probes {
		probes[i] = ProbesFor(proto.Params[i])
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, pi := range probes[i] {
				for _, pj := range probes[j] {
					r, err := c.runPairProbe(proto, i, pi, j, pj)
					if err != nil {
						return nil, err
					}
					report.Results = append(report.Results, r)
					report.Probes++
					if r.Outcome.Failure() {
						report.Failures++
					}
				}
			}
		}
	}
	if c.cache != nil {
		if err := c.cachePut(name, config, key, pairReportToFunc(report)); err != nil {
			return nil, err
		}
	}
	c.emitPairStats(report, time.Since(start), false)
	return report, nil
}

// emitPairStats reports one pairwise sweep through the campaign's stats
// sink, mirroring the library engines' bookkeeping.
func (c *Campaign) emitPairStats(pr *PairReport, wall time.Duration, cached bool) {
	if c.statsSink == nil {
		return
	}
	stats := newCampaignStats(1, 1)
	executed := 0
	if cached {
		stats.CachedFuncs++
		stats.CachedProbes += pr.Probes
	} else {
		executed = pr.Probes
		stats.WorkerBusy[0] = wall
	}
	stats.noteFunc(pr.Name, pr.Probes, wall, cached)
	stats.finish(executed, wall)
	c.statsSink(stats)
}

// pairReportToFunc packs a pairwise report into the cache's FuncReport
// shape: each pair result becomes a ProbeResult whose Param encodes both
// indices ((a<<16)|b) and whose Probe joins both probe names. Verdicts
// stay empty — pairwise sweeps observe interactions, they do not derive
// robust types.
func pairReportToFunc(pr *PairReport) *FuncReport {
	fr := &FuncReport{Name: pr.Name, Probes: pr.Probes, Failures: pr.Failures}
	for _, r := range pr.Results {
		fr.Results = append(fr.Results, ProbeResult{
			Param:   r.ParamA<<16 | r.ParamB,
			Probe:   r.ProbeA + "+" + r.ProbeB,
			Outcome: r.Outcome,
			Fault:   r.Fault,
		})
	}
	return fr
}

// pairReportFromFunc is the inverse of pairReportToFunc.
func pairReportFromFunc(proto *ctypes.Prototype, fr *FuncReport) (*PairReport, error) {
	pr := &PairReport{Name: fr.Name, Proto: proto, Probes: fr.Probes, Failures: fr.Failures}
	for _, r := range fr.Results {
		a, b, ok := strings.Cut(r.Probe, "+")
		if !ok {
			return nil, fmt.Errorf("inject: cache entry %s: unpaired probe %q", fr.Name, r.Probe)
		}
		pr.Results = append(pr.Results, PairResult{
			ParamA:  r.Param >> 16,
			ParamB:  r.Param & 0xffff,
			ProbeA:  a,
			ProbeB:  b,
			Outcome: r.Outcome,
			Fault:   r.Fault,
		})
	}
	return pr, nil
}

// runPairProbe executes one two-parameter injection in a fresh process.
func (c *Campaign) runPairProbe(proto *ctypes.Prototype, i int, pi Probe, j int, pj Probe) (PairResult, error) {
	opts := []proc.Option{proc.WithPreloads(c.preloads...)}
	if c.stdin != "" {
		opts = append(opts, proc.WithStdin(c.stdin))
	}
	p, err := proc.Start(c.sys, c.hostname, opts...)
	if err != nil {
		return PairResult{}, fmt.Errorf("inject: starting probe host: %w", err)
	}
	env := p.Env()
	if err := prepareProbeRegions(env); err != nil {
		return PairResult{}, err
	}
	args := make([]cval.Value, len(proto.Params))
	for k, prm := range proto.Params {
		pr := GoldenProbe(prm)
		switch k {
		case i:
			pr = pi
		case j:
			pr = pj
		}
		v, err := pr.Make(env)
		if err != nil {
			return PairResult{}, fmt.Errorf("inject: %s pair (%d,%d): %w", proto.Name, i, j, err)
		}
		args[k] = v
	}
	env.Errno = 0
	env.Img.Space.SetFuel(probeFuel)
	_, res := p.RunCall(proto.Name, args...)
	env.Img.Space.SetFuel(-1)
	out := PairResult{ParamA: i, ParamB: j, ProbeA: pi.Name, ProbeB: pj.Name}
	switch {
	case res.Fault != nil && res.Fault.Kind == cmem.FaultHang:
		out.Outcome, out.Fault = OutcomeHang, res.Fault
	case res.Fault != nil && res.Fault.Kind == cmem.FaultAbort:
		out.Outcome, out.Fault = OutcomeAbort, res.Fault
	case res.Fault != nil:
		out.Outcome, out.Fault = OutcomeCrash, res.Fault
	case env.Errno == DeniedErrno:
		out.Outcome = OutcomeDenied
	case env.Errno != 0:
		out.Outcome = OutcomeErrno
	default:
		out.Outcome = OutcomeOK
	}
	return out, nil
}

// CompareModes runs both sweep modes for one function and reports their
// cost and detection power — the DESIGN.md §5 ablation.
type ModeComparison struct {
	Name            string
	SingleProbes    int
	SingleFailures  int
	PairProbes      int
	PairFailures    int
	SingleDetects   bool // function flagged brittle by single-fault
	PairwiseDetects bool // function flagged brittle by pairwise
}

// CompareModes runs the single-fault and pairwise sweeps on one function.
func (c *Campaign) CompareModes(name string) (*ModeComparison, error) {
	single, err := c.RunFunction(name)
	if err != nil {
		return nil, err
	}
	pair, err := c.RunFunctionPairwise(name)
	if err != nil {
		return nil, err
	}
	return &ModeComparison{
		Name:            name,
		SingleProbes:    single.Probes,
		SingleFailures:  single.Failures,
		PairProbes:      pair.Probes,
		PairFailures:    pair.Failures,
		SingleDetects:   single.Failures > 0,
		PairwiseDetects: pair.Failures > 0,
	}, nil
}
