package inject

import (
	"testing"

	"healers/internal/cmath"
	"healers/internal/gen"
	"healers/internal/wrappers"
)

// TestParallelProfilingHistogramConsistency runs the profiling wrapper
// underneath the parallel fault-injection campaign and checks the
// observability counters stay consistent under concurrency: for every
// wrapped function the latency histogram's bucket sum must equal the
// call counter — a lost increment on either side (a data race, a
// dropped lock) breaks the equality. libm is the target because its
// probes never fault, so every intercepted call runs both the prefix
// (call counter) and the postfix (histogram) hook. Run under -race via
// make check.
func TestParallelProfilingHistogramConsistency(t *testing.T) {
	sys := libmSystem(t)
	libm, ok := sys.Library(cmath.Soname)
	if !ok {
		t.Fatalf("%s not installed", cmath.Soname)
	}
	wrapper, st, err := wrappers.Profiling(libm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	c, err := New(sys, cmath.Soname, WithPreloads(wrappers.ProfilingSoname))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunLibraryParallel(4); err != nil {
		t.Fatalf("parallel sweep under profiling wrapper: %v", err)
	}
	// The campaign has quiesced; fold the capture shards, then direct
	// State field access is safe.
	st.Sync()
	total := checkProfilingConsistency(t, st)
	if total == 0 {
		t.Fatal("campaign drove no calls through the profiling wrapper")
	}
	if st.TotalCalls() != total {
		t.Errorf("TotalCalls = %d, want %d", st.TotalCalls(), total)
	}

	// Reset and sweep again: the second run must land on exactly the
	// same totals — leftover shard deltas surviving the Reset, or
	// increments lost to it, would both break the equality (the sweep
	// itself is deterministic for any worker count).
	st.Reset()
	if _, err := c.RunLibraryParallel(4); err != nil {
		t.Fatalf("post-Reset parallel sweep: %v", err)
	}
	st.Sync()
	if again := checkProfilingConsistency(t, st); again != total {
		t.Errorf("post-Reset sweep total = %d, want %d (same deterministic campaign)", again, total)
	}
}

// checkProfilingConsistency asserts the quiesce-time invariants of a
// profiling-wrapper State — bucket-sum == call-count per function, every
// completed call counted as passed, errno histograms consistent across
// the per-function and global views, nothing denied/substituted — and
// returns the total call count.
func checkProfilingConsistency(t *testing.T, st *gen.State) uint64 {
	t.Helper()
	var total, funcErrno uint64
	for i, name := range st.FuncNames() {
		calls := st.CallCount[i]
		hist := gen.HistTotal(st.ExecHist[i])
		if hist != calls {
			t.Errorf("%s: histogram bucket sum %d != call counter %d (lost increments)", name, hist, calls)
		}
		// libm probes never fault and the profiling wrapper never
		// denies, so every counted call also completed every check.
		if st.PassedCount[i] != calls {
			t.Errorf("%s: PassedCount = %d, want %d (== calls)", name, st.PassedCount[i], calls)
		}
		if st.DeniedCount[i] != 0 || st.SubstCount[i] != 0 || st.ContainedCount[i] != 0 {
			t.Errorf("%s: deny/subst/contain = %d/%d/%d, want all 0 under pure profiling",
				name, st.DeniedCount[i], st.SubstCount[i], st.ContainedCount[i])
		}
		for _, n := range st.FuncErrno[i] {
			funcErrno += n
		}
		total += calls
	}
	// The collect-errors and func-errors micro-generators observe the
	// same calls, so their histogram totals must agree exactly.
	var globalErrno uint64
	for _, n := range st.GlobalErrno {
		globalErrno += n
	}
	if funcErrno != globalErrno {
		t.Errorf("per-function errno total %d != global errno total %d", funcErrno, globalErrno)
	}
	return total
}
