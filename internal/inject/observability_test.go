package inject

import (
	"testing"

	"healers/internal/cmath"
	"healers/internal/gen"
	"healers/internal/wrappers"
)

// TestParallelProfilingHistogramConsistency runs the profiling wrapper
// underneath the parallel fault-injection campaign and checks the
// observability counters stay consistent under concurrency: for every
// wrapped function the latency histogram's bucket sum must equal the
// call counter — a lost increment on either side (a data race, a
// dropped lock) breaks the equality. libm is the target because its
// probes never fault, so every intercepted call runs both the prefix
// (call counter) and the postfix (histogram) hook. Run under -race via
// make check.
func TestParallelProfilingHistogramConsistency(t *testing.T) {
	sys := libmSystem(t)
	libm, ok := sys.Library(cmath.Soname)
	if !ok {
		t.Fatalf("%s not installed", cmath.Soname)
	}
	wrapper, st, err := wrappers.Profiling(libm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	c, err := New(sys, cmath.Soname, WithPreloads(wrappers.ProfilingSoname))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunLibraryParallel(4); err != nil {
		t.Fatalf("parallel sweep under profiling wrapper: %v", err)
	}
	// The campaign has quiesced; direct State field access is safe now.
	var total uint64
	for i, name := range st.FuncNames() {
		calls := st.CallCount[i]
		hist := gen.HistTotal(st.ExecHist[i])
		if hist != calls {
			t.Errorf("%s: histogram bucket sum %d != call counter %d (lost increments)", name, hist, calls)
		}
		total += calls
	}
	if total == 0 {
		t.Fatal("campaign drove no calls through the profiling wrapper")
	}
	if st.TotalCalls() != total {
		t.Errorf("TotalCalls = %d, want %d", st.TotalCalls(), total)
	}
}
