package inject

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/simelf"
	"healers/internal/wrappers"
)

// libcSystem builds a fresh system containing the simulated libc.
func libcSystem(t *testing.T) *simelf.System {
	t.Helper()
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func newLibcCampaign(t *testing.T, opts ...CampaignOption) *Campaign {
	t.Helper()
	c, err := New(libcSystem(t), clib.LibcSoname, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func verdictByName(t *testing.T, fr *FuncReport, param string) ParamVerdict {
	t.Helper()
	for _, v := range fr.Verdicts {
		if v.Name == param {
			return v
		}
	}
	t.Fatalf("%s: no verdict for parameter %q (have %v)", fr.Name, param, fr.Verdicts)
	return ParamVerdict{}
}

func TestDeriveStrlen(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("strlen")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if fr.Failures == 0 {
		t.Fatal("strlen showed no robustness failures; NULL/wild probes must crash it")
	}
	v := verdictByName(t, fr, "s")
	if v.LevelName != "cstring" {
		t.Errorf("strlen s derived %q, want cstring", v.LevelName)
	}
	if fr.NeedsContainment {
		t.Error("strlen flagged as needing containment")
	}
	// The golden probe must not be among the failures.
	for _, r := range fr.Results {
		if r.Probe == "valid_str" && r.Outcome.Failure() {
			t.Errorf("golden probe crashed: %v", r.Fault)
		}
	}
}

// TestDeriveStrcpy pins the paper's worked example: "the prototype of the
// strcpy function specifies its first argument to be char*. However, it
// actually has to be a pointer to a writable buffer with enough space to
// accommodate the source string." (§2.2)
func TestDeriveStrcpy(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("strcpy")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	dest := verdictByName(t, fr, "dest")
	if dest.LevelName != "writable_sized" {
		t.Errorf("strcpy dest derived %q, want writable_sized", dest.LevelName)
	}
	src := verdictByName(t, fr, "src")
	if src.LevelName != "cstring" {
		t.Errorf("strcpy src derived %q, want cstring", src.LevelName)
	}
}

func TestDeriveMemcpy(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("memcpy")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if got := verdictByName(t, fr, "n").LevelName; got != "bounded" {
		t.Errorf("memcpy n derived %q, want bounded", got)
	}
	if got := verdictByName(t, fr, "dest").LevelName; got != "writable_sized" {
		t.Errorf("memcpy dest derived %q, want writable_sized", got)
	}
	if got := verdictByName(t, fr, "src").LevelName; got != "readable_sized" {
		t.Errorf("memcpy src derived %q, want readable_sized", got)
	}
}

func TestDeriveScalarFunctionIsRobust(t *testing.T) {
	c := newLibcCampaign(t)
	for _, name := range []string{"abs", "toupper", "isalpha"} {
		fr, err := c.RunFunction(name)
		if err != nil {
			t.Fatalf("RunFunction(%s): %v", name, err)
		}
		if fr.Failures != 0 {
			t.Errorf("%s had %d failures; scalar functions cannot crash", name, fr.Failures)
		}
		for _, v := range fr.Verdicts {
			if v.LevelName != "any" {
				t.Errorf("%s param %s derived %q, want any", name, v.Name, v.LevelName)
			}
		}
	}
}

func TestDeriveFree(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("free")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if got := verdictByName(t, fr, "ptr").LevelName; got != "null_or_chunk" {
		t.Errorf("free ptr derived %q, want null_or_chunk", got)
	}
	// The abort on a wild free must be classified as abort, not crash.
	var sawAbort bool
	for _, r := range fr.Results {
		if r.Probe == "unmapped" && r.Outcome == OutcomeAbort {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("free(unmapped) did not produce an abort outcome")
	}
}

func TestDeriveSprintfNeedsContainment(t *testing.T) {
	// sprintf's destination has no bound anywhere in the argument list:
	// no lattice level can make it robust. The injector must flag it for
	// fault containment (the security wrapper's canaries).
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("sprintf")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if !fr.NeedsContainment {
		t.Error("sprintf not flagged as needing containment")
	}
	if got := verdictByName(t, fr, "str").LevelName; got != "uncontainable" {
		t.Errorf("sprintf str derived %q, want uncontainable", got)
	}
}

func TestDeriveGetsWithHostileStdin(t *testing.T) {
	c := newLibcCampaign(t, WithStdin(strings.Repeat("A", 256)+"\n"))
	fr, err := c.RunFunction("gets")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if !fr.NeedsContainment {
		t.Error("gets with a long input line not flagged as needing containment")
	}
}

func TestDeriveWctrans(t *testing.T) {
	// The paper's Figure 3 function.
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("wctrans")
	if err != nil {
		t.Fatalf("RunFunction: %v", err)
	}
	if got := verdictByName(t, fr, "name").LevelName; got != "cstring" {
		t.Errorf("wctrans name derived %q, want cstring", got)
	}
}

// TestNiladicProbePath pins the unified runProbe path for functions
// without parameters: the fuel budget turns an infinite loop into
// OutcomeHang instead of wedging the campaign forever, an errno-setting
// return classifies as OutcomeErrno, and WithStdin reaches the niladic
// probe process.
func TestNiladicProbePath(t *testing.T) {
	sys := simelf.NewSystem()
	lib := simelf.NewLibrary("libnil.so")
	scratch := cmem.Addr(0x00900000)
	lib.ExportWithProto(&ctypes.Prototype{Name: "spin", Ret: ctypes.Int},
		func(env *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
			if f := env.Img.Space.Map(scratch, cmem.PageSize, cmem.ProtRW); f != nil {
				return 0, f
			}
			for {
				if _, f := env.Img.Space.ReadByteAt(scratch); f != nil {
					return 0, f
				}
			}
		})
	lib.ExportWithProto(&ctypes.Prototype{Name: "grumble", Ret: ctypes.Int},
		func(env *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
			env.Errno = 42
			return cval.Int(-1), nil
		})
	lib.ExportWithProto(&ctypes.Prototype{Name: "gulp", Ret: ctypes.Int},
		func(env *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
			if env.Stdin.Len() == 0 {
				env.Errno = 9
				return cval.Int(-1), nil
			}
			return cval.Int(int64(env.Stdin.Len())), nil
		})
	if err := sys.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}

	c, err := New(sys, "libnil.so", WithStdin("hello\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		outcome  Outcome
		failures int
	}{
		"spin":    {OutcomeHang, 1},
		"grumble": {OutcomeErrno, 0},
		"gulp":    {OutcomeOK, 0},
	}
	for name, w := range want {
		fr, err := c.RunFunction(name)
		if err != nil {
			t.Fatalf("RunFunction(%s): %v", name, err)
		}
		if fr.Probes != 1 {
			t.Errorf("%s probes = %d, want 1", name, fr.Probes)
		}
		if got := fr.Results[0].Outcome; got != w.outcome {
			t.Errorf("%s outcome = %s, want %s", name, got, w.outcome)
		}
		if fr.Failures != w.failures {
			t.Errorf("%s failures = %d, want %d", name, fr.Failures, w.failures)
		}
	}

	// Without stdin seeding, gulp takes its errno path instead.
	c2, err := New(sys, "libnil.so")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c2.RunFunction("gulp")
	if err != nil {
		t.Fatal(err)
	}
	if got := fr.Results[0].Outcome; got != OutcomeErrno {
		t.Errorf("gulp without stdin = %s, want %s", got, OutcomeErrno)
	}
}

func TestNiladicFunctions(t *testing.T) {
	c := newLibcCampaign(t)
	for _, name := range []string{"rand", "getpid", "abort"} {
		fr, err := c.RunFunction(name)
		if err != nil {
			t.Fatalf("RunFunction(%s): %v", name, err)
		}
		if fr.Failures != 0 {
			t.Errorf("%s counted %d failures", name, fr.Failures)
		}
		if fr.Probes != 1 {
			t.Errorf("%s probes = %d, want 1", name, fr.Probes)
		}
	}
}

func TestRunLibraryAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("full library campaign in -short mode")
	}
	c := newLibcCampaign(t)
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatalf("RunLibrary: %v", err)
	}
	if len(lr.Funcs) < 60 {
		t.Errorf("campaign covered %d functions, want full libc", len(lr.Funcs))
	}
	if lr.TotalProbes < 200 {
		t.Errorf("total probes = %d, suspiciously few", lr.TotalProbes)
	}
	// The paper's premise: a large fraction of libc functions exhibit
	// robustness failures under invalid inputs.
	frac := float64(lr.FuncsWithFailures()) / float64(len(lr.Funcs))
	if frac < 0.4 {
		t.Errorf("only %.0f%% of functions failed; expected the majority of pointer-taking libc to be brittle", frac*100)
	}
	if lr.Func("strcpy") == nil {
		t.Error("library report missing strcpy")
	}
	if lr.Func("no_such") != nil {
		t.Error("library report invented a function")
	}
}

func TestCampaignErrors(t *testing.T) {
	sys := libcSystem(t)
	if _, err := New(sys, "libmissing.so"); err == nil {
		t.Error("New with unknown library succeeded")
	}
	c, err := New(sys, clib.LibcSoname)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunFunction("not_a_function"); err == nil {
		t.Error("RunFunction of unknown name succeeded")
	}
	// Two campaigns against the same system share the probe host.
	if _, err := New(sys, clib.LibcSoname); err != nil {
		t.Errorf("second campaign on same system: %v", err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OutcomeOK, "ok"}, {OutcomeErrno, "errno"}, {OutcomeCrash, "crash"},
		{OutcomeAbort, "abort"}, {OutcomeDenied, "denied"}, {OutcomeHang, "hang"},
		{OutcomeCorrupt, "silent"}, {Outcome(9), "Outcome(9)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Outcome(%d) = %q, want %q", int(tt.o), got, tt.want)
		}
	}
	if !OutcomeCrash.Failure() || !OutcomeHang.Failure() || !OutcomeCorrupt.Failure() ||
		OutcomeErrno.Failure() || OutcomeDenied.Failure() || OutcomeOK.Failure() {
		t.Error("Failure() misclassifies")
	}
}

func TestReportHelpersAndVerify(t *testing.T) {
	c := newLibcCampaign(t)
	fr, err := c.RunFunction("strcpy")
	if err != nil {
		t.Fatal(err)
	}
	names := fr.RobustLevelNames()
	if len(names) != 2 || names[0] != "writable_sized" {
		t.Errorf("RobustLevelNames = %v", names)
	}
	lr := &LibReport{Funcs: []*FuncReport{fr}, TotalProbes: fr.Probes, TotalFailures: fr.Failures}
	hist := lr.OutcomeHistogram()
	if hist[OutcomeCrash] == 0 {
		t.Errorf("histogram = %v, want crashes", hist)
	}
	api := lr.RobustAPI()
	if api["strcpy"][1].LevelName != "cstring" {
		t.Errorf("RobustAPI = %+v", api["strcpy"])
	}
	if lr.FuncsWithFailures() != 1 {
		t.Errorf("FuncsWithFailures = %d", lr.FuncsWithFailures())
	}
}

// TestCampaignWithPreloadsSeesDenials runs the verify-mode campaign for a
// single function and checks the denied outcome class appears.
func TestCampaignWithPreloadsSeesDenials(t *testing.T) {
	sys := libcSystem(t)
	libc, _ := sys.Library(clib.LibcSoname)
	api := ctypes.RobustAPI{"strlen": {{Name: "s", Chain: "in_str", Level: 3, LevelName: "cstring"}}}
	wrapper, _, err := wrappers.Robustness(libc, api, []string{"strlen"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(wrapper); err != nil {
		t.Fatal(err)
	}
	c, err := New(sys, clib.LibcSoname, WithPreloads(wrappers.RobustnessSoname))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := c.RunFunction("strlen")
	if err != nil {
		t.Fatal(err)
	}
	if fr.Failures != 0 {
		t.Errorf("wrapped strlen still failed %d probes", fr.Failures)
	}
	var denied int
	for _, r := range fr.Results {
		if r.Outcome == OutcomeDenied {
			denied++
		}
	}
	if denied == 0 {
		t.Error("no probe was classified as denied")
	}
}
