package inject

import (
	"fmt"
	"os"
	"time"

	"healers/internal/collect"
	"healers/internal/simelf"
	"healers/internal/xmlrep"
)

// DefaultHeartbeatEvery is how often a worker lets the coordinator know
// it is still probing a long function (checked between probes).
const DefaultHeartbeatEvery = 5 * time.Second

// WorkerSummary is what one worker contributed to a distributed sweep.
type WorkerSummary struct {
	Worker string
	// Leases counts granted (non-empty) leases; Funcs and Probes what
	// the worker swept; Cached the functions served from its local
	// cache; Duplicates the results the coordinator had already seen.
	Leases     int
	Funcs      int
	Probes     int
	Cached     int
	Duplicates int
}

// WorkerOption configures RunWorker.
type WorkerOption func(*worker)

// WithWorkerID overrides the worker's self-reported name (default
// hostname-pid).
func WithWorkerID(id string) WorkerOption {
	return func(w *worker) { w.id = id }
}

// WithWorkerCache gives the worker a local campaign cache; hits are
// reported to the coordinator without re-probing, and misses it probes
// are recorded for the next run.
func WithWorkerCache(cache *Cache) WorkerOption {
	return func(w *worker) { w.cache = cache }
}

// WithWorkerRegistry layers a shared campaign-cache registry over the
// worker's local cache: each lease's functions are batch-fetched from
// the registry before probing (hits are reported to the coordinator
// without re-probing) and fresh derivations are pushed back. A nil
// client is ignored.
func WithWorkerRegistry(rc *RegistryCache) WorkerOption {
	return func(w *worker) { w.registry = rc }
}

// WithWorkerHeartbeat sets the mid-function heartbeat interval.
func WithWorkerHeartbeat(d time.Duration) WorkerOption {
	return func(w *worker) { w.heartbeat = d }
}

// WithWorkerClient substitutes the wire client (tests shrink its
// timeouts).
func WithWorkerClient(c *collect.Client) WorkerOption {
	return func(w *worker) { w.cl = c }
}

type worker struct {
	id        string
	sys       *simelf.System
	cl        *collect.Client
	cache     *Cache
	registry  *RegistryCache
	heartbeat time.Duration

	// camp is rebuilt when a lease's campaign parameters change.
	camp       *Campaign
	campConfig string

	lastContact time.Time
	sum         WorkerSummary
}

// RunWorker joins the coordinator at addr and processes shard leases
// until the coordinator reports the sweep done: request a lease, sweep
// its functions through the ordinary campaign engine (local cache
// first), and stream one result document per function back — each
// doubling as a lease extension. Long functions heartbeat between
// probes. The loop is crash-oriented: any fatal acknowledgement from the
// coordinator (config or hierarchy mismatch, corrupt frames) aborts the
// worker with an error rather than silently dropping work.
func RunWorker(sys *simelf.System, addr string, opts ...WorkerOption) (*WorkerSummary, error) {
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	w := &worker{
		id:        fmt.Sprintf("%s-%d", host, os.Getpid()),
		sys:       sys,
		heartbeat: DefaultHeartbeatEvery,
	}
	for _, o := range opts {
		o(w)
	}
	if w.cl == nil {
		w.cl = collect.NewClient(addr)
		w.cl.RetryMax = 4
	}
	defer w.cl.Close()
	w.sum.Worker = w.id

	for {
		lease, err := w.requestLease()
		if err != nil {
			return nil, err
		}
		switch {
		case lease.Done:
			return &w.sum, nil
		case len(lease.Funcs) == 0:
			retry := time.Duration(lease.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = 100 * time.Millisecond
			}
			time.Sleep(retry)
		default:
			w.sum.Leases++
			if err := w.runLease(lease); err != nil {
				return nil, err
			}
		}
	}
}

// requestLease asks the coordinator for work.
func (w *worker) requestLease() (*xmlrep.WorkLease, error) {
	resp, err := w.cl.Call(&xmlrep.WorkRequest{Worker: w.id, Hierarchy: HierarchyVersion()})
	if err != nil {
		return nil, fmt.Errorf("inject: worker %s: requesting lease: %w", w.id, err)
	}
	w.lastContact = time.Now()
	if kind, _ := xmlrep.Kind(resp); kind == xmlrep.KindWorkAck {
		ack, err := xmlrep.Unmarshal[xmlrep.WorkAck](resp)
		if err != nil {
			return nil, fmt.Errorf("inject: worker %s: bad ack: %w", w.id, err)
		}
		return nil, fmt.Errorf("inject: worker %s: coordinator refused: %s", w.id, ack.Reason)
	}
	lease, err := xmlrep.Unmarshal[xmlrep.WorkLease](resp)
	if err != nil {
		return nil, fmt.Errorf("inject: worker %s: bad lease: %w", w.id, err)
	}
	if lease.Checksum != lease.ComputeChecksum() {
		return nil, fmt.Errorf("inject: worker %s: lease checksum mismatch (corrupted frame)", w.id)
	}
	return lease, nil
}

// campaignFor rebuilds the local campaign when the lease's parameters
// differ from the cached one, and cross-checks the injector config hash:
// a worker whose campaign derives a different hash than the coordinator
// announced would probe under different semantics, so it must stop, not
// contribute incomparable results.
func (w *worker) campaignFor(lease *xmlrep.WorkLease) (*Campaign, error) {
	if w.camp == nil || w.camp.target != lease.Library ||
		w.camp.stdin != lease.Stdin || !equalStrings(w.camp.preloads, lease.Preloads) {
		opts := []CampaignOption{WithStdin(lease.Stdin), WithPreloads(lease.Preloads...)}
		if w.cache != nil {
			opts = append(opts, WithCache(w.cache))
		}
		if w.registry != nil {
			opts = append(opts, WithRegistry(w.registry))
		}
		camp, err := New(w.sys, lease.Library, opts...)
		if err != nil {
			return nil, fmt.Errorf("inject: worker %s: building campaign: %w", w.id, err)
		}
		w.camp = camp
		w.campConfig = camp.configHash()
	}
	if w.campConfig != lease.Config {
		return nil, fmt.Errorf("inject: worker %s: injector config mismatch: local %s, lease %s",
			w.id, w.campConfig, lease.Config)
	}
	return w.camp, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runLease sweeps every function of one lease, streaming results.
func (w *worker) runLease(lease *xmlrep.WorkLease) error {
	camp, err := w.campaignFor(lease)
	if err != nil {
		return err
	}
	lib, _ := w.sys.Library(lease.Library)
	// Warm the whole lease from the shared registry in one batch before
	// probing anything: functions another runner already derived are
	// answered from the fetched entries and reported as cache hits.
	var fps []funcPlan
	for _, name := range lease.Funcs {
		if proto := lib.Proto(name); proto != nil {
			fps = append(fps, funcPlan{name: name, proto: proto})
		}
	}
	camp.warmFromRegistry(fps)
	for done, name := range lease.Funcs {
		proto := lib.Proto(name)
		if proto == nil {
			return fmt.Errorf("inject: worker %s: leased unknown function %s", w.id, name)
		}
		entry, cached, err := w.sweepFunc(camp, lease, name, done)
		if err != nil {
			return err
		}
		res := &xmlrep.WorkResult{
			Worker:      w.id,
			Shard:       lease.Shard,
			Attempt:     lease.Attempt,
			Config:      lease.Config,
			CachedLocal: cached,
			Funcs:       []xmlrep.WorkFuncXML{entry},
		}
		res.Checksum = res.ComputeChecksum()
		resp, err := w.cl.Call(res)
		if err != nil {
			return fmt.Errorf("inject: worker %s: sending result for %s: %w", w.id, name, err)
		}
		w.lastContact = time.Now()
		ack, err := xmlrep.Unmarshal[xmlrep.WorkAck](resp)
		if err != nil {
			return fmt.Errorf("inject: worker %s: bad result ack: %w", w.id, err)
		}
		if !ack.OK {
			return fmt.Errorf("inject: worker %s: coordinator rejected result for %s: %s", w.id, name, ack.Reason)
		}
		w.sum.Funcs++
		if cached {
			w.sum.Cached++
		}
		if ack.Accepted == 0 {
			w.sum.Duplicates++
		}
	}
	return nil
}

// sweepFunc runs (or serves from local cache) one function's probe
// sweep, heartbeating between probes when the function runs long.
func (w *worker) sweepFunc(camp *Campaign, lease *xmlrep.WorkLease, name string, done int) (xmlrep.WorkFuncXML, bool, error) {
	lib, _ := w.sys.Library(lease.Library)
	proto := lib.Proto(name)
	fp := funcPlan{name: name, proto: proto, specs: planFunction(proto)}
	if fr, key := camp.cacheLookup(&fp, lease.Config); fr != nil {
		return xmlrep.WorkFuncXML{CacheFuncXML: reportToXML(name, key, lease.Config, fr)}, true, nil
	}
	key := funcKey(proto, lease.Config)
	results := make([]ProbeResult, 0, len(fp.specs))
	start := time.Now()
	for _, sp := range fp.specs {
		if time.Since(w.lastContact) >= w.heartbeat {
			w.beat(lease, done)
		}
		r, err := camp.runProbe(proto, sp.param, sp.probe, 0)
		if err != nil {
			return xmlrep.WorkFuncXML{}, false, fmt.Errorf("inject: worker %s: probing %s: %w", w.id, name, err)
		}
		results = append(results, r)
	}
	fr := buildReport(name, proto, results)
	wall := time.Since(start)
	w.sum.Probes += fr.Probes
	if err := camp.cachePut(name, lease.Config, key, fr); err != nil {
		return xmlrep.WorkFuncXML{}, false, err
	}
	entry := xmlrep.WorkFuncXML{
		CacheFuncXML: reportToXML(name, key, lease.Config, fr),
		WallNS:       wall.Nanoseconds(),
	}
	return entry, false, nil
}

// beat sends one heartbeat; failures are ignored — the result stream is
// the authoritative liveness signal, and a missed heartbeat at worst
// costs a redundant re-lease that dedup absorbs.
func (w *worker) beat(lease *xmlrep.WorkLease, done int) {
	w.lastContact = time.Now()
	_, _ = w.cl.Call(&xmlrep.Heartbeat{
		Worker: w.id, Shard: lease.Shard, Attempt: lease.Attempt, DoneFuncs: done,
	})
}
