package inject

import (
	"fmt"
	"sort"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/proc"
	"healers/internal/simelf"
)

// Outcome classifies how one probe call ended, following the Ballista
// CRASH severity scale restricted to what a wrapper can observe.
type Outcome int

const (
	// OutcomeOK: the call returned without fault and without errno.
	OutcomeOK Outcome = iota
	// OutcomeErrno: the call returned gracefully with errno set.
	OutcomeErrno
	// OutcomeCrash: SIGSEGV/SIGBUS — a robustness failure.
	OutcomeCrash
	// OutcomeAbort: SIGABRT — a robustness failure.
	OutcomeAbort
	// OutcomeDenied: a preloaded wrapper rejected the call instead of
	// letting it reach the implementation (only seen in verify runs).
	OutcomeDenied
	// OutcomeHang: the call exhausted the probe's access budget — it
	// would have run "forever" (probe-child timeout).
	OutcomeHang
	// OutcomeCorrupt: the call returned normally but silently modified
	// memory it promised only to read (a const-qualified argument) —
	// Ballista's "Silent" class, detected by snapshotting read-only
	// golden arguments around the call.
	OutcomeCorrupt
	// OutcomeSilentCorruption: the run finished with a success status
	// but its committed state diverged from the golden (un-faulted)
	// run's — damage the errno-based classes cannot see, detected by the
	// cmem journal diff in sequence campaigns.
	OutcomeSilentCorruption
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeErrno:
		return "errno"
	case OutcomeCrash:
		return "crash"
	case OutcomeAbort:
		return "abort"
	case OutcomeDenied:
		return "denied"
	case OutcomeHang:
		return "hang"
	case OutcomeCorrupt:
		return "silent"
	case OutcomeSilentCorruption:
		return "silent-corruption"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Failure reports whether the outcome is a robustness failure — the
// paper's "crashes, hangs, or aborts" triad.
func (o Outcome) Failure() bool {
	return o == OutcomeCrash || o == OutcomeAbort || o == OutcomeHang ||
		o == OutcomeCorrupt || o == OutcomeSilentCorruption
}

// DeniedErrno is the errno value HEALERS robustness wrappers set when they
// reject a call; the campaign uses it to distinguish "denied by wrapper"
// from an ordinary errno return.
const DeniedErrno = cval.EDenied

// ProbeResult is the record of one probe call.
type ProbeResult struct {
	// Param is the injected parameter index.
	Param int
	// Probe is the injected probe's name.
	Probe string
	// SatLevel is the strongest lattice level the injected value
	// satisfied in this call's context (computed before the call).
	SatLevel int
	// Outcome classifies the call's ending.
	Outcome Outcome
	// Fault carries the fault for crash/abort outcomes.
	Fault *cmem.Fault
}

// ParamVerdict is the derived robust type for one parameter.
type ParamVerdict struct {
	Name  string
	Chain string
	// Level is the index of the derived weakest robust level.
	// Level == len(chain levels) means no lattice level suffices:
	// argument checking cannot make the function robust (sprintf's
	// destination), and fault containment (canaries) is required.
	Level int
	// LevelName is the derived level's name, or "uncontainable".
	LevelName string
}

// FuncReport is the campaign's result for one function.
type FuncReport struct {
	Name    string
	Proto   *ctypes.Prototype
	Results []ProbeResult
	// Verdicts holds the derived robust type per parameter.
	Verdicts []ParamVerdict
	// Probes and Failures count totals.
	Probes   int
	Failures int
	// NeedsContainment is set when some parameter has no robust lattice
	// level (see ParamVerdict.Level).
	NeedsContainment bool
}

// RobustLevelNames returns the derived level names in parameter order.
func (r *FuncReport) RobustLevelNames() []string {
	names := make([]string, len(r.Verdicts))
	for i, v := range r.Verdicts {
		names[i] = v.LevelName
	}
	return names
}

// LibReport aggregates a whole library campaign.
type LibReport struct {
	Library string
	Funcs   []*FuncReport
	// TotalProbes and TotalFailures aggregate across functions.
	TotalProbes   int
	TotalFailures int
}

// OutcomeHistogram counts probe outcomes across the whole campaign — the
// Ballista-style CRASH-scale summary (how many SEGV vs SIGABRT vs hang).
func (lr *LibReport) OutcomeHistogram() map[Outcome]int {
	h := make(map[Outcome]int)
	for _, fr := range lr.Funcs {
		for _, r := range fr.Results {
			h[r.Outcome]++
		}
	}
	return h
}

// FuncsWithFailures returns how many functions had at least one failure.
func (lr *LibReport) FuncsWithFailures() int {
	n := 0
	for _, fr := range lr.Funcs {
		if fr.Failures > 0 {
			n++
		}
	}
	return n
}

// RobustAPI extracts the derived robust API from the campaign results —
// the artifact Figure 2's pipeline hands to the wrapper generator.
func (lr *LibReport) RobustAPI() ctypes.RobustAPI {
	api := make(ctypes.RobustAPI, len(lr.Funcs))
	for _, fr := range lr.Funcs {
		api[fr.Name] = append([]ctypes.RobustParam(nil), verdictsToParams(fr.Verdicts)...)
	}
	return api
}

func verdictsToParams(vs []ParamVerdict) []ctypes.RobustParam {
	out := make([]ctypes.RobustParam, len(vs))
	for i, v := range vs {
		out[i] = ctypes.RobustParam{Name: v.Name, Chain: v.Chain, Level: v.Level, LevelName: v.LevelName}
	}
	return out
}

// Func returns the report for one function, or nil.
func (lr *LibReport) Func(name string) *FuncReport {
	for _, fr := range lr.Funcs {
		if fr.Name == name {
			return fr
		}
	}
	return nil
}

// Campaign drives fault injection against one library in one system
// configuration. The zero value is not usable; construct with New.
type Campaign struct {
	sys      *simelf.System
	target   string // soname of the library under test
	preloads []string
	stdin    string
	hostname string
	// workers is the library-sweep parallelism: 1 = strictly sequential
	// (the default), 0 = GOMAXPROCS, n > 1 = a fixed worker pool.
	workers int
	// progress, when set, receives a snapshot after every completed
	// function sweep.
	progress func(Progress)
	// statsSink, when set, receives the throughput statistics of every
	// library sweep.
	statsSink func(*CampaignStats)
	// cache, when set, lets library sweeps skip functions whose stored
	// outcome still matches the content hash of (prototype, probe
	// hierarchy, config), and records fresh outcomes for the next run.
	cache *Cache
	// registry, when set, layers a shared campaign-cache registry over
	// the local cache: locally missing entries are batch-fetched before
	// probing and fresh ones pushed back (see WithRegistry).
	registry *RegistryCache
}

// CampaignOption configures a campaign.
type CampaignOption func(*Campaign)

// WithPreloads runs every probe process with the given wrapper libraries
// preloaded — the verification mode that demonstrates hardening.
func WithPreloads(sonames ...string) CampaignOption {
	return func(c *Campaign) { c.preloads = append(c.preloads, sonames...) }
}

// WithStdin seeds each probe process's stdin (gets() needs input to be
// dangerous).
func WithStdin(data string) CampaignOption {
	return func(c *Campaign) { c.stdin = data }
}

// WithWorkers sets the library-sweep parallelism: every probe still runs
// in its own fresh process, but up to n probe processes execute
// concurrently. n == 1 (the default) keeps the sweep strictly sequential;
// n <= 0 uses GOMAXPROCS. Reports are merged deterministically, so any
// worker count produces an identical LibReport.
func WithWorkers(n int) CampaignOption {
	return func(c *Campaign) { c.workers = n }
}

// WithProgress installs a progress callback invoked after each function
// sweep completes (from a single goroutine; the callback need not be
// thread-safe). Completion order is nondeterministic under parallel runs.
func WithProgress(fn func(Progress)) CampaignOption {
	return func(c *Campaign) { c.progress = fn }
}

// WithStatsSink installs a callback that receives the throughput
// statistics of every library sweep the campaign runs — the hook through
// which the CLI surfaces probes/sec without the numbers contaminating the
// deterministic LibReport.
func WithStatsSink(fn func(*CampaignStats)) CampaignOption {
	return func(c *Campaign) { c.statsSink = fn }
}

// WithCache attaches a campaign cache (see OpenCache): library sweeps
// reuse stored per-function outcomes whose content-hash key still matches
// and store fresh outcomes for later runs. A nil cache is ignored. The
// reused reports are byte-identical to what probing would have produced —
// the key covers everything that influences a sweep — so cached and
// probed runs render identical robust-API documents.
func WithCache(cache *Cache) CampaignOption {
	return func(c *Campaign) { c.cache = cache }
}

// probeFuel is the per-probe memory-access budget: generous enough for
// any legitimate single libc call, small enough to flag a runaway loop —
// the timeout a real injector puts on its probe children.
const probeFuel = 64 << 20

// probeHostName is the synthetic executable each probe runs in.
const probeHostName = "healers-probe-host"

// New builds a campaign against the library with the given soname in sys.
// It installs (once) a minimal probe-host executable linked against the
// target.
func New(sys *simelf.System, soname string, opts ...CampaignOption) (*Campaign, error) {
	if _, ok := sys.Library(soname); !ok {
		return nil, fmt.Errorf("inject: no such library %q", soname)
	}
	c := &Campaign{sys: sys, target: soname, hostname: probeHostName + ":" + soname, workers: 1}
	for _, o := range opts {
		o(c)
	}
	if c.registry != nil && c.cache == nil {
		// Registry hits need a local cache to land in; an in-memory one
		// suffices when the caller did not attach a file-backed cache.
		c.cache, _ = OpenCache("")
	}
	if _, ok := sys.Executable(c.hostname); !ok {
		host := &simelf.Executable{
			Name:   c.hostname,
			Interp: "sim-ld.so",
			Needed: []string{soname},
			Main:   func(simelf.Caller, []string) int32 { return 0 },
		}
		if err := sys.AddExecutable(host); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// runProbe executes one probe call in a fresh process: materialize every
// argument (golden except for the injected parameter), compute the
// satisfied lattice level, call, classify. injected < 0 is the niladic
// "plain call" probe: no arguments, but the same fuel budget, stdin
// seeding, and outcome classification as every parameterized probe.
// shard pins the probe process's statistics-shard token, so a worker
// pool's probes write disjoint wrapper-state counter shards (sequential
// callers pass 0).
func (c *Campaign) runProbe(proto *ctypes.Prototype, injected int, probe Probe, shard uint32) (ProbeResult, error) {
	opts := []proc.Option{proc.WithPreloads(c.preloads...)}
	if c.stdin != "" {
		opts = append(opts, proc.WithStdin(c.stdin))
	}
	p, err := proc.Start(c.sys, c.hostname, opts...)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("inject: starting probe host: %w", err)
	}
	env := p.Env()
	env.SetStatShard(shard)
	if err := prepareProbeRegions(env); err != nil {
		return ProbeResult{}, err
	}
	args := make([]cval.Value, len(proto.Params))
	for i, prm := range proto.Params {
		pr := GoldenProbe(prm)
		if i == injected {
			pr = probe
		}
		v, err := pr.Make(env)
		if err != nil {
			return ProbeResult{}, fmt.Errorf("inject: %s param %d probe %s: %w", proto.Name, i, pr.Name, err)
		}
		args[i] = v
	}
	sat := 0
	if injected >= 0 {
		chain := ctypes.ChainFor(proto.Params[injected])
		sat = ctypes.SatisfiedLevel(env, proto, injected, args, chain)
	}
	snaps := snapshotReadOnlyArgs(env, proto, args, injected)

	env.Errno = 0
	env.Img.Space.SetFuel(probeFuel)
	_, res := p.RunCall(proto.Name, args...)
	env.Img.Space.SetFuel(-1)

	out := ProbeResult{Param: injected, Probe: probe.Name, SatLevel: sat}
	switch {
	case res.Fault != nil && res.Fault.Kind == cmem.FaultHang:
		out.Outcome, out.Fault = OutcomeHang, res.Fault
	case res.Fault != nil && res.Fault.Kind == cmem.FaultAbort:
		out.Outcome, out.Fault = OutcomeAbort, res.Fault
	case res.Fault != nil:
		out.Outcome, out.Fault = OutcomeCrash, res.Fault
	case env.Errno == DeniedErrno:
		out.Outcome = OutcomeDenied
	case corruptedReadOnlyArg(env, snaps):
		out.Outcome = OutcomeCorrupt
	case env.Errno != 0:
		out.Outcome = OutcomeErrno
	default:
		out.Outcome = OutcomeOK
	}
	// abort() aborting is its contract, not a robustness failure.
	if injected < 0 && proto.Name == "abort" && out.Outcome == OutcomeAbort {
		out.Outcome, out.Fault = OutcomeOK, nil
	}
	return out, nil
}

// roSnapshot records the content of one read-only-role argument before a
// probe call.
type roSnapshot struct {
	addr cmem.Addr
	data []byte
}

// snapshotMax bounds per-argument snapshots; corruption beyond it goes
// unnoticed, like any sampling detector.
const snapshotMax = 256

// snapshotReadOnlyArgs captures the golden arguments the function
// promises not to write (in_str and in_buf roles). The injected
// parameter is skipped — its value is deliberately invalid.
func snapshotReadOnlyArgs(env *cval.Env, proto *ctypes.Prototype, args []cval.Value, injected int) []roSnapshot {
	var snaps []roSnapshot
	for i, prm := range proto.Params {
		if i == injected || i >= len(args) {
			continue
		}
		if prm.Role != ctypes.RoleInStr && prm.Role != ctypes.RoleInBuf {
			continue
		}
		a := args[i].Addr()
		if a.IsNull() {
			continue
		}
		n := env.Img.Space.MappedLen(a, cmem.ProtRead, snapshotMax)
		if n == 0 {
			continue
		}
		buf := make([]byte, n)
		if f := env.Img.Space.Read(a, buf); f != nil {
			continue
		}
		snaps = append(snaps, roSnapshot{addr: a, data: buf})
	}
	return snaps
}

// corruptedReadOnlyArg reports whether any snapshotted argument changed
// across the call.
func corruptedReadOnlyArg(env *cval.Env, snaps []roSnapshot) bool {
	for _, s := range snaps {
		buf := make([]byte, len(s.data))
		if f := env.Img.Space.Read(s.addr, buf); f != nil {
			return true // became unreadable: also silent damage
		}
		for i := range buf {
			if buf[i] != s.data[i] {
				return true
			}
		}
	}
	return false
}

// probeSpec is one planned probe call: the injected parameter index (-1
// for the niladic plain-call probe) and the probe value.
type probeSpec struct {
	param int
	probe Probe
}

// planFunction enumerates the probe calls a single-fault sweep of proto
// makes, in canonical order: parameters first to last, each parameter's
// probe catalog in catalog order. Niladic functions get one plain call.
func planFunction(proto *ctypes.Prototype) []probeSpec {
	if len(proto.Params) == 0 {
		return []probeSpec{{param: -1, probe: Probe{Name: "call"}}}
	}
	var specs []probeSpec
	for i, prm := range proto.Params {
		for _, probe := range ProbesFor(prm) {
			specs = append(specs, probeSpec{param: i, probe: probe})
		}
	}
	return specs
}

// buildReport derives a function report from the ordered probe results of
// one planFunction sweep. It is shared by the sequential and parallel
// engines; because it only depends on the canonical result order, both
// produce identical reports.
func buildReport(name string, proto *ctypes.Prototype, results []ProbeResult) *FuncReport {
	report := &FuncReport{Name: name, Proto: proto, Results: results, Probes: len(results)}
	for _, r := range results {
		if r.Outcome.Failure() {
			report.Failures++
		}
	}
	if len(proto.Params) == 0 {
		return report
	}
	for i, prm := range proto.Params {
		chain := ctypes.ChainFor(prm)
		// failedAtOrAbove[sat] records whether any probe satisfying
		// exactly level sat failed.
		failedAtOrAbove := make([]bool, len(chain.Levels)+1)
		for _, r := range results {
			if r.Param == i && r.Outcome.Failure() {
				failedAtOrAbove[r.SatLevel] = true
			}
		}
		// Derive the weakest robust level: the smallest L such that no
		// failing probe satisfied a level >= L. A probe that satisfied
		// level s and failed rules out all levels <= s.
		derived := 0
		for s := len(chain.Levels) - 1; s >= 0; s-- {
			if failedAtOrAbove[s] {
				derived = s + 1
				break
			}
		}
		v := ParamVerdict{Name: prm.Name, Chain: chain.Name, Level: derived}
		if derived >= len(chain.Levels) {
			v.LevelName = "uncontainable"
			report.NeedsContainment = true
		} else {
			v.LevelName = chain.Levels[derived].Name
		}
		report.Verdicts = append(report.Verdicts, v)
	}
	return report
}

// RunFunction sweeps every probe of every parameter of the named function
// (single-fault mode) and derives the robust type per parameter.
func (c *Campaign) RunFunction(name string) (*FuncReport, error) {
	lib, _ := c.sys.Library(c.target)
	proto := lib.Proto(name)
	if proto == nil {
		return nil, fmt.Errorf("inject: %s has no prototype for %q", c.target, name)
	}
	// Single-function runs share the library sweep's cache discipline:
	// an attached cache answers unchanged functions instantly and
	// receives freshly derived reports — what makes a targeted re-probe
	// (drop one entry, re-run one function) cost one function's probes.
	var key, config string
	if c.cache != nil {
		config = c.configHash()
		key = funcKey(proto, config)
		c.warmFromRegistry([]funcPlan{{name: name, proto: proto}})
		if fr := c.cache.lookup(key, config); fr != nil {
			fr.Proto = proto
			return fr, nil
		}
	}
	specs := planFunction(proto)
	results := make([]ProbeResult, 0, len(specs))
	for _, sp := range specs {
		r, err := c.runProbe(proto, sp.param, sp.probe, 0)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	fr := buildReport(name, proto, results)
	if c.cache != nil {
		if err := c.cachePut(name, config, key, fr); err != nil {
			return nil, err
		}
	}
	return fr, nil
}

// scannableFuncs returns the target's probe-able function names in
// canonical (sorted) order.
func (c *Campaign) scannableFuncs() []string {
	lib, _ := c.sys.Library(c.target)
	names := lib.Symbols()
	sort.Strings(names)
	out := names[:0]
	for _, name := range names {
		if lib.Proto(name) == nil {
			continue // no prototype — not scannable, like a stripped symbol
		}
		out = append(out, name)
	}
	return out
}

// RunLibrary sweeps every exported function of the target library. With a
// WithWorkers option other than 1 the sweep runs on the parallel engine;
// the report is identical either way.
func (c *Campaign) RunLibrary() (*LibReport, error) {
	lr, _, err := c.RunLibraryStats()
	return lr, err
}

// RunLibraryStats is RunLibrary with the run's throughput statistics.
func (c *Campaign) RunLibraryStats() (*LibReport, *CampaignStats, error) {
	if c.workers != 1 {
		return c.runLibraryParallel(c.workers)
	}
	return c.runLibrarySequential()
}

// RunLibraryParallel sweeps the library on a pool of the given number of
// workers (<= 0 means GOMAXPROCS), regardless of the campaign's
// WithWorkers configuration. The merged report is byte-identical to the
// sequential RunLibrary's.
func (c *Campaign) RunLibraryParallel(workers int) (*LibReport, error) {
	lr, _, err := c.runLibraryParallel(workers)
	return lr, err
}

// cacheLookup consults the campaign cache for one planned function,
// returning the stored report (live prototype attached) and the entry's
// key. A nil cache returns key == "" and no report.
func (c *Campaign) cacheLookup(fp *funcPlan, config string) (fr *FuncReport, key string) {
	if c.cache == nil {
		return nil, ""
	}
	key = funcKey(fp.proto, config)
	if fr = c.cache.lookup(key, config); fr != nil {
		fr.Proto = fp.proto
	}
	return fr, key
}

// runLibrarySequential is the strictly sequential engine: one probe
// process at a time, in canonical order.
func (c *Campaign) runLibrarySequential() (*LibReport, *CampaignStats, error) {
	plan := c.planLibrary()
	c.warmFromRegistry(plan.funcs)
	lr := &LibReport{Library: c.target}
	stats := newCampaignStats(1, len(plan.funcs))
	config := c.configHash()
	executed := 0
	start := time.Now()
	for fi, fp := range plan.funcs {
		fr, key := c.cacheLookup(&plan.funcs[fi], config)
		cached := fr != nil
		var wall time.Duration
		if !cached {
			results := make([]ProbeResult, 0, len(fp.specs))
			fnStart := time.Now()
			for _, sp := range fp.specs {
				r, err := c.runProbe(fp.proto, sp.param, sp.probe, 0)
				if err != nil {
					return nil, nil, err
				}
				results = append(results, r)
			}
			fr = buildReport(fp.name, fp.proto, results)
			wall = time.Since(fnStart)
			stats.WorkerBusy[0] += wall
			executed += fr.Probes
			if c.cache != nil {
				if err := c.cachePut(fp.name, config, key, fr); err != nil {
					return nil, nil, err
				}
			}
		} else {
			stats.CachedFuncs++
			stats.CachedProbes += fr.Probes
		}
		lr.Funcs = append(lr.Funcs, fr)
		lr.TotalProbes += fr.Probes
		lr.TotalFailures += fr.Failures
		stats.noteFunc(fp.name, fr.Probes, wall, cached)
		if c.progress != nil {
			c.progress(Progress{
				Func: fp.name, FuncProbes: fr.Probes,
				DoneFuncs: fi + 1, TotalFuncs: len(plan.funcs),
				DoneProbes: lr.TotalProbes, TotalProbes: plan.totalProbes,
			})
		}
	}
	stats.finish(executed, time.Since(start))
	if c.statsSink != nil {
		c.statsSink(stats)
	}
	return lr, stats, nil
}

// funcPlan is one function's planned sweep.
type funcPlan struct {
	name  string
	proto *ctypes.Prototype
	specs []probeSpec
}

// libPlan is a whole library sweep, planned up front so both engines work
// from the same canonical probe order.
type libPlan struct {
	funcs       []funcPlan
	totalProbes int
}

// planLibrary plans the sweep of every scannable function, in canonical
// order.
func (c *Campaign) planLibrary() *libPlan {
	lib, _ := c.sys.Library(c.target)
	plan := &libPlan{}
	for _, name := range c.scannableFuncs() {
		proto := lib.Proto(name)
		specs := planFunction(proto)
		plan.funcs = append(plan.funcs, funcPlan{name: name, proto: proto, specs: specs})
		plan.totalProbes += len(specs)
	}
	return plan
}
