// Package inject implements the HEALERS automated fault-injection engine
// (§2.2, Fig. 2): it probes every function of a shared library with a
// hierarchy of argument values, observes which probes crash a fresh
// simulated process, and derives the *weakest robust argument type* for
// each parameter — the robust API that the wrapper generator then
// enforces.
//
// The method follows Ballista (Koopman & DeVale) as adapted by Fetzer &
// Xiao: single-fault sweeps attribute crashes to one parameter at a time
// (every other parameter holds a known-good "golden" value), and the
// per-parameter search walks the robustness lattice from the declared C
// type toward stronger types until conforming probes stop crashing.
package inject

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// Probe is one test value for a parameter, materialized fresh in each
// probe process.
type Probe struct {
	// Name identifies the probe in reports ("null", "unmapped", ...).
	Name string
	// Golden marks the known-good value used for non-injected
	// parameters during single-fault sweeps.
	Golden bool
	// Make materializes the value in the probe process's environment.
	Make func(env *cval.Env) (cval.Value, error)
}

// probeRegion is scratch space probes carve values from: a dedicated
// mapping whose following page is guaranteed unmapped, so "ends at a
// cliff" values are constructible.
const (
	cliffBase  cmem.Addr = 0x00a00000 // one page of 'A's, next page unmapped
	digitCliff cmem.Addr = 0x00a80000 // one page of '1's, next page unmapped
	roCliff    cmem.Addr = 0x00b00000 // read-only page, next unmapped
)

// prepareProbeRegions maps the cliff regions in a probe environment.
func prepareProbeRegions(env *cval.Env) error {
	sp := env.Img.Space
	if f := sp.Map(cliffBase, cmem.PageSize, cmem.ProtRW); f != nil {
		return fmt.Errorf("inject: mapping cliff region: %w", f)
	}
	// Fill with 'A's: readable, writable, and decidedly unterminated.
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		if f := sp.WriteByteAt(cliffBase+i, 'A'); f != nil {
			return fmt.Errorf("inject: filling cliff region: %w", f)
		}
	}
	if f := sp.Map(digitCliff, cmem.PageSize, cmem.ProtRW); f != nil {
		return fmt.Errorf("inject: mapping digit cliff: %w", f)
	}
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		if f := sp.WriteByteAt(digitCliff+i, '1'); f != nil {
			return fmt.Errorf("inject: filling digit cliff: %w", f)
		}
	}
	if f := sp.Map(roCliff, cmem.PageSize, cmem.ProtRead); f != nil {
		return fmt.Errorf("inject: mapping ro cliff: %w", f)
	}
	return nil
}

// digitCliffEnd returns a digit-filled unterminated region of n bytes.
func digitCliffEnd(n uint32) cmem.Addr { return digitCliff + cmem.PageSize - cmem.Addr(n) }

// cliffEnd returns an address n bytes before the cliff (the unmapped
// page), i.e. a valid region of exactly n bytes.
func cliffEnd(n uint32) cmem.Addr { return cliffBase + cmem.PageSize - cmem.Addr(n) }

func mkPtr(a cmem.Addr) func(*cval.Env) (cval.Value, error) {
	return func(*cval.Env) (cval.Value, error) { return cval.Ptr(a), nil }
}

func mkInt(v int64) func(*cval.Env) (cval.Value, error) {
	return func(*cval.Env) (cval.Value, error) { return cval.Int(v), nil }
}

func mkString(s string) func(*cval.Env) (cval.Value, error) {
	return func(env *cval.Env) (cval.Value, error) {
		a, f := env.Img.StaticString(s)
		if f != nil {
			return 0, fmt.Errorf("inject: materializing string: %w", f)
		}
		return cval.Ptr(a), nil
	}
}

func mkHeapBuf(n uint32, fill string) func(*cval.Env) (cval.Value, error) {
	return func(env *cval.Env) (cval.Value, error) {
		p := env.Img.Heap.Malloc(n)
		if p.IsNull() {
			return 0, fmt.Errorf("inject: probe malloc(%d) failed", n)
		}
		if f := env.Img.Space.WriteCString(p, fill); f != nil {
			return 0, fmt.Errorf("inject: filling probe buffer: %w", f)
		}
		return cval.Ptr(p), nil
	}
}

// goldenBufSize is the size of known-good buffers; golden size values stay
// comfortably below it.
const (
	goldenBufSize = 4096
	goldenLen     = 16
)

// pointerProbes are shared by every pointer-shaped chain.
func pointerProbes() []Probe {
	return []Probe{
		{Name: "null", Make: mkPtr(0)},
		{Name: "unmapped", Make: mkPtr(0xdeadbee0)},
		{Name: "text_ptr", Make: mkPtr(cval.TextBase)}, // code address, not data
	}
}

// ProbesFor returns the probe catalog for parameter i of proto, golden
// probe included (exactly one probe is Golden).
func ProbesFor(p ctypes.Param) []Probe {
	chain := ctypes.ChainFor(p)
	switch chain {
	case ctypes.ChainInStr:
		return append(pointerProbes(),
			Probe{Name: "unterminated", Make: mkPtr(cliffEnd(64))},
			// Digit-filled unterminated memory catches parsers (atoi,
			// strtol) that stop scanning at the first non-digit and
			// would otherwise look robust against letter-filled junk.
			Probe{Name: "unterminated_digits", Make: mkPtr(digitCliffEnd(64))},
			Probe{Name: "empty_str", Make: mkString("")},
			Probe{Name: "valid_str", Golden: true, Make: mkString("golden value")},
		)
	case ctypes.ChainFmt:
		return append(pointerProbes(),
			Probe{Name: "unterminated", Make: mkPtr(cliffEnd(64))},
			Probe{Name: "percent_n", Make: mkString("x%nx")},
			Probe{Name: "plain_fmt", Golden: true, Make: mkString("v=%d.")},
		)
	case ctypes.ChainInBuf:
		return append(pointerProbes(),
			Probe{Name: "short_buf", Make: mkPtr(cliffEnd(4))},
			Probe{Name: "big_buf", Golden: true, Make: mkHeapBuf(goldenBufSize, "golden value")},
		)
	case ctypes.ChainOutBuf:
		return append(pointerProbes(),
			Probe{Name: "rodata", Make: mkPtr(roCliff)},
			Probe{Name: "short_buf", Make: mkPtr(cliffEnd(4))},
			Probe{Name: "big_buf", Golden: true, Make: mkHeapBuf(goldenBufSize, "golden value")},
		)
	case ctypes.ChainInOutBuf:
		return append(pointerProbes(),
			Probe{Name: "unterminated", Make: mkPtr(cliffEnd(64))},
			Probe{Name: "short_str", Make: func(env *cval.Env) (cval.Value, error) {
				// Terminated string with almost no room behind it.
				a := cliffEnd(8)
				if f := env.Img.Space.WriteCString(a, "abcd"); f != nil {
					return 0, fmt.Errorf("inject: short_str: %w", f)
				}
				return cval.Ptr(a), nil
			}},
			Probe{Name: "big_str", Golden: true, Make: mkHeapBuf(goldenBufSize, "golden value")},
		)
	case ctypes.ChainSize:
		return []Probe{
			{Name: "zero", Make: mkInt(0)},
			{Name: "huge", Make: mkInt(0xffffffff)},
			{Name: "large_sane", Make: mkInt(0x00100000)},
			{Name: "modest", Golden: true, Make: mkInt(goldenLen)},
		}
	case ctypes.ChainFd:
		return []Probe{
			{Name: "negative_fd", Make: mkInt(-1)},
			{Name: "wild_fd", Make: mkInt(4097)},
			{Name: "stdout_fd", Golden: true, Make: mkInt(1)},
		}
	case ctypes.ChainFuncPtr:
		return []Probe{
			{Name: "null", Make: mkPtr(0)},
			{Name: "data_ptr", Make: mkPtr(cliffBase)},
			{Name: "byte_cmp_fn", Golden: true, Make: func(env *cval.Env) (cval.Value, error) {
				// A real comparator dereferences its arguments; the
				// golden one must too, so that qsort/bsearch over
				// absurd element counts fault on the wild element
				// instead of iterating forever over untouched memory.
				a := env.RegisterText("probe_byte_cmp", func(e *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
					if len(args) < 2 {
						return cval.Int(0), nil
					}
					x, f := e.Img.Space.ReadByteAt(args[0].Addr())
					if f != nil {
						return 0, f
					}
					y, f := e.Img.Space.ReadByteAt(args[1].Addr())
					if f != nil {
						return 0, f
					}
					return cval.Int(int64(int32(x) - int32(y))), nil
				})
				return cval.Ptr(a), nil
			}},
		}
	case ctypes.ChainHeapPtr:
		return []Probe{
			{Name: "null", Make: mkPtr(0)},
			{Name: "unmapped", Make: mkPtr(0xdeadbee0)},
			{Name: "stack_ptr", Make: mkPtr(cliffBase)},
			{Name: "interior_ptr", Make: func(env *cval.Env) (cval.Value, error) {
				p := env.Img.Heap.Malloc(64)
				if p.IsNull() {
					return 0, fmt.Errorf("inject: interior_ptr malloc failed")
				}
				return cval.Ptr(p + 8), nil
			}},
			{Name: "live_chunk", Golden: true, Make: mkHeapBuf(64, "x")},
		}
	case ctypes.ChainPtrOut:
		return []Probe{
			{Name: "unmapped", Make: mkPtr(0xdeadbee0)},
			{Name: "rodata", Make: mkPtr(roCliff)},
			{Name: "misaligned", Make: mkPtr(cliffBase + 1)}, // SIGBUS on wide store
			{Name: "null", Make: mkPtr(0)},                   // NULL is documented-legal for out params
			{Name: "valid_out", Golden: true, Make: mkHeapBuf(16, "")},
		}
	default: // ChainScalar
		return []Probe{
			{Name: "int_min", Make: mkInt(-0x80000000)},
			{Name: "minus_one", Make: mkInt(-1)},
			{Name: "large", Make: mkInt(0x7fffffff)},
			{Name: "zero", Golden: true, Make: mkInt('A')},
		}
	}
}

// GoldenProbe returns the golden probe for a parameter.
func GoldenProbe(p ctypes.Param) Probe {
	for _, pr := range ProbesFor(p) {
		if pr.Golden {
			return pr
		}
	}
	// Every catalog above has a golden entry; reaching here is a bug.
	panic(fmt.Sprintf("inject: no golden probe for chain %s", ctypes.ChainFor(p).Name))
}
