// Campaign cache: a persistent, content-addressed store of per-function
// fault-injection outcomes. The derivation of a function's robust type is
// deterministic given its prototype, the probe hierarchy, and the injector
// configuration, so a campaign can skip every function whose cache entry
// still matches the content hash of those inputs — a re-run over an
// unchanged library probes zero functions, and a one-prototype change
// probes exactly one.
//
// The same file format doubles as the checkpoint for interrupted runs:
// with auto-flush enabled the cache is rewritten after every completed
// function, so a killed campaign resumes from the last flush instead of
// redoing finished work. Stale entries are detected by key mismatch (the
// prototype or hierarchy changed) and corrupted files by checksum; both
// are discarded silently rather than trusted — the worst case is always
// "probe again", never "report stale results".
package inject

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/xmlrep"
)

// cacheEpoch versions the campaign engine itself. Bump it when the
// engine's observable behaviour changes in a way the prototype and probe
// hierarchy cannot capture (e.g. the outcome classification rules), to
// invalidate every existing cache wholesale.
const cacheEpoch = 1

var (
	hierarchyOnce sync.Once
	hierarchyHash string
)

// HierarchyVersion is the content hash of the probe hierarchy: every
// robustness chain's level names and every chain's probe catalog, plus the
// engine epoch and the probe fuel budget. Any edit to a chain or a probe
// catalog changes the version and invalidates every cache entry — the
// "probe-hierarchy version" component of the cache key.
func HierarchyVersion() string {
	hierarchyOnce.Do(func() {
		h := sha256.New()
		fmt.Fprintf(h, "epoch=%d fuel=%d\n", cacheEpoch, probeFuel)
		roles := []ctypes.Role{
			ctypes.RoleNone, ctypes.RoleInStr, ctypes.RoleInBuf, ctypes.RoleOutBuf,
			ctypes.RoleInOutBuf, ctypes.RoleSize, ctypes.RoleFd, ctypes.RoleFmt,
			ctypes.RoleFuncPtr, ctypes.RolePtrOut, ctypes.RoleHeapPtr,
		}
		for _, role := range roles {
			// RoleNone with an integer type selects the scalar chain;
			// every other role selects its chain regardless of type.
			p := ctypes.NewParam("p", ctypes.Int, role)
			chain := ctypes.ChainFor(p)
			fmt.Fprintf(h, "chain=%s levels=", chain.Name)
			for _, l := range chain.Levels {
				fmt.Fprintf(h, "%s,", l.Name)
			}
			fmt.Fprintf(h, " probes=")
			for _, pr := range ProbesFor(p) {
				fmt.Fprintf(h, "%s/%v,", pr.Name, pr.Golden)
			}
			fmt.Fprintln(h)
		}
		hierarchyHash = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return hierarchyHash
}

// protoSignature renders everything about a prototype that influences its
// probe sweep: name, return type, variadicity, and each parameter's name,
// type, role, and inter-parameter links. Header and man-page text are
// deliberately excluded — editing documentation must not invalidate the
// cache, editing anything probe-visible must.
func protoSignature(p *ctypes.Prototype) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ret=%s variadic=%v", p.Name, p.Ret.String(), p.Variadic)
	for _, prm := range p.Params {
		fmt.Fprintf(&b, " [%s %s role=%s sizeof=%d lenby=%d srcstr=%d nul=%v overlap=%v]",
			prm.Name, prm.Type.String(), prm.Role, prm.SizeOf, prm.LenBy, prm.SrcStr,
			prm.NulTerm, prm.OverlapOK)
	}
	return b.String()
}

// configHash condenses the injector configuration that changes probe
// outcomes without changing the prototype: the target library, the
// preload stack (a wrapper-preloaded verification sweep must not reuse
// unwrapped results), and the stdin seed.
func (c *Campaign) configHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "target=%s stdin=%q preloads=%q", c.target, c.stdin, strings.Join(c.preloads, ","))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// funcKey is the cache key of one function's campaign: the content hash
// of (prototype signature, probe-hierarchy version, injector config).
func funcKey(proto *ctypes.Prototype, config string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", protoSignature(proto), HierarchyVersion(), config)
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is one stored function outcome. The report's Proto field is
// nil in storage; lookup re-attaches the live prototype.
type cacheEntry struct {
	name   string
	config string
	report *FuncReport
}

// Cache is a campaign cache bound to one file. The zero value is not
// usable; construct with OpenCache. All methods are safe for concurrent
// use by one campaign's workers.
type Cache struct {
	path string

	mu         sync.Mutex
	entries    map[string]*cacheEntry // by funcKey
	discard    string                 // why a load was discarded, if it was
	autoFlush  int                    // flush after every n puts; 0 = only on Save
	sincePut   int
	dirty      bool
	loadedKeys int
}

// OpenCache loads the campaign cache at path. A missing file yields an
// empty cache. A corrupted, truncated, or stale file (bad XML, checksum
// mismatch, different probe-hierarchy version, undecodable entry) is
// discarded — the cache starts empty, DiscardReason explains why, and the
// next save overwrites the bad file. Only genuine I/O errors (e.g. a
// permission failure on an existing file) are returned as errors.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{path: path, entries: make(map[string]*cacheEntry)}
	if path == "" {
		return c, nil // in-memory only
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("inject: reading campaign cache: %w", err)
	}
	doc, err := xmlrep.Unmarshal[xmlrep.CampaignCacheDoc](data)
	if err != nil {
		c.discard = fmt.Sprintf("unparseable cache file (%v)", err)
		return c, nil
	}
	if doc.Hierarchy != HierarchyVersion() {
		c.discard = fmt.Sprintf("stale probe hierarchy %s (current %s)", doc.Hierarchy, HierarchyVersion())
		return c, nil
	}
	if got := doc.ComputeChecksum(); got != doc.Checksum {
		c.discard = "checksum mismatch (corrupted or tampered file)"
		return c, nil
	}
	for _, fx := range doc.Funcs {
		fr, err := reportFromXML(&fx)
		if err != nil {
			c.discard = fmt.Sprintf("undecodable entry %s (%v)", fx.Name, err)
			c.entries = make(map[string]*cacheEntry)
			return c, nil
		}
		c.entries[fx.Key] = &cacheEntry{name: fx.Name, config: fx.Config, report: fr}
	}
	c.loadedKeys = len(c.entries)
	return c, nil
}

// Path returns the file the cache loads from and saves to.
func (c *Cache) Path() string { return c.path }

// DiscardReason reports why the file at Path was discarded during
// OpenCache, or "" if it loaded cleanly (or did not exist).
func (c *Cache) DiscardReason() string { return c.discard }

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SetAutoFlush makes the cache rewrite its file after every n new entries
// — checkpoint mode. n <= 0 disables mid-run flushing.
func (c *Cache) SetAutoFlush(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.autoFlush = n
}

// Drop removes every entry for the named function (all configurations),
// forcing its next sweep to probe. It is the manual invalidation hook for
// tests and tooling.
func (c *Cache) Drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.name == name {
			delete(c.entries, k)
			c.dirty = true
		}
	}
}

// MergeFrom copies every entry of other that this cache does not already
// hold — used to warm-start a checkpoint file from a persistent cache.
func (c *Cache) MergeFrom(other *Cache) {
	if other == nil || other == c {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range other.entries {
		if _, ok := c.entries[k]; !ok {
			c.entries[k] = e
			c.dirty = true
		}
	}
}

// lookup returns the cached report for key, or nil. The returned report
// is a fresh shallow copy; callers attach the live prototype.
//
// config is cross-checked against the entry's recorded injector config:
// the key already mixes the config hash in, so a mismatch can only mean
// a corrupted or hand-edited checkpoint — and a report derived under a
// different target/stdin/preload configuration must never satisfy a
// resume, so such entries are rejected rather than trusted.
func (c *Cache) lookup(key, config string) *FuncReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.config != config {
		return nil
	}
	cp := *e.report
	return &cp
}

// put stores a freshly derived report under key, replacing any stale
// entry of the same (function, config) whose key no longer matches. With
// auto-flush enabled the file is rewritten once enough puts accumulate;
// a flush failure is returned so the caller can surface it (a checkpoint
// that cannot be written is a failed checkpoint, not a warning).
func (c *Cache) put(name, config, key string, fr *FuncReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if e.name == name && e.config == config && k != key {
			delete(c.entries, k)
		}
	}
	stored := *fr
	stored.Proto = nil
	c.entries[key] = &cacheEntry{name: name, config: config, report: &stored}
	c.dirty = true
	c.sincePut++
	if c.autoFlush > 0 && c.sincePut >= c.autoFlush {
		c.sincePut = 0
		return c.saveLocked(c.path)
	}
	return nil
}

// Save writes the cache to its file if anything changed since the last
// write. Saving an in-memory cache (empty path) is a no-op.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	return c.saveLocked(c.path)
}

// SaveAs writes the cache to an alternate path unconditionally.
func (c *Cache) SaveAs(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked(path)
}

// saveLocked renders and atomically replaces the cache file (temp file +
// rename), so a crash mid-write leaves either the old intact file or the
// new one — never a truncated hybrid. Callers hold c.mu.
func (c *Cache) saveLocked(path string) error {
	if path == "" {
		return nil
	}
	doc := c.docLocked()
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("inject: creating cache directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".campaign-cache-*")
	if err != nil {
		return fmt.Errorf("inject: writing campaign cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: writing campaign cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: writing campaign cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: writing campaign cache: %w", err)
	}
	c.dirty = false
	return nil
}

// docLocked renders the cache as its self-describing document, entries in
// deterministic (name, config) order. Callers hold c.mu.
func (c *Cache) docLocked() *xmlrep.CampaignCacheDoc {
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := c.entries[keys[i]], c.entries[keys[j]]
		if a.name != b.name {
			return a.name < b.name
		}
		return a.config < b.config
	})
	doc := &xmlrep.CampaignCacheDoc{Hierarchy: HierarchyVersion(), Generated: cacheTimestamp()}
	for _, k := range keys {
		e := c.entries[k]
		doc.Funcs = append(doc.Funcs, reportToXML(e.name, k, e.config, e.report))
	}
	doc.Checksum = doc.ComputeChecksum()
	return doc
}

// reportToXML converts a function report to its cache-entry form.
func reportToXML(name, key, config string, fr *FuncReport) xmlrep.CacheFuncXML {
	fx := xmlrep.CacheFuncXML{
		Name:             name,
		Key:              key,
		Config:           config,
		Probes:           fr.Probes,
		Failures:         fr.Failures,
		NeedsContainment: fr.NeedsContainment,
	}
	for _, v := range fr.Verdicts {
		fx.Params = append(fx.Params, xmlrep.RobustParamXML{Name: v.Name, Chain: v.Chain, Level: v.LevelName})
	}
	for _, r := range fr.Results {
		px := xmlrep.CacheProbeXML{Param: r.Param, Probe: r.Probe, Sat: r.SatLevel, Outcome: r.Outcome.String()}
		if r.Fault != nil {
			px.FaultKind = int(r.Fault.Kind)
			px.FaultAddr = uint64(r.Fault.Addr)
			px.FaultOp = r.Fault.Op
			px.FaultDetail = r.Fault.Detail
		}
		fx.Results = append(fx.Results, px)
	}
	return fx
}

// outcomeFromString is the inverse of Outcome.String.
func outcomeFromString(s string) (Outcome, error) {
	for _, o := range []Outcome{OutcomeOK, OutcomeErrno, OutcomeCrash, OutcomeAbort, OutcomeDenied, OutcomeHang, OutcomeCorrupt, OutcomeSilentCorruption} {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("inject: unknown outcome %q", s)
}

// reportFromXML reconstructs a function report from its cache entry. The
// result's Proto is nil; the campaign re-attaches the live prototype at
// lookup time (the key guarantees it matches the cached one).
func reportFromXML(fx *xmlrep.CacheFuncXML) (*FuncReport, error) {
	fr := &FuncReport{
		Name:             fx.Name,
		Probes:           fx.Probes,
		Failures:         fx.Failures,
		NeedsContainment: fx.NeedsContainment,
	}
	for _, p := range fx.Params {
		chain, ok := ctypes.ChainByName(p.Chain)
		if !ok {
			return nil, fmt.Errorf("unknown chain %q", p.Chain)
		}
		lvl := chain.LevelIndex(p.Level)
		if lvl < 0 {
			if p.Level != "uncontainable" {
				return nil, fmt.Errorf("unknown level %q of chain %q", p.Level, p.Chain)
			}
			lvl = len(chain.Levels)
		}
		fr.Verdicts = append(fr.Verdicts, ParamVerdict{Name: p.Name, Chain: p.Chain, Level: lvl, LevelName: p.Level})
	}
	for _, r := range fx.Results {
		out, err := outcomeFromString(r.Outcome)
		if err != nil {
			return nil, err
		}
		pr := ProbeResult{Param: r.Param, Probe: r.Probe, SatLevel: r.Sat, Outcome: out}
		if r.FaultKind != 0 {
			pr.Fault = &cmem.Fault{
				Kind:   cmem.FaultKind(r.FaultKind),
				Addr:   cmem.Addr(r.FaultAddr),
				Op:     r.FaultOp,
				Detail: r.FaultDetail,
			}
		}
		fr.Results = append(fr.Results, pr)
	}
	if fr.Probes != len(fr.Results) {
		return nil, fmt.Errorf("probe count %d != %d recorded results", fr.Probes, len(fr.Results))
	}
	return fr, nil
}

// cacheNow is the cache document's clock; a variable for reproducible
// tests.
var cacheNow = time.Now

func cacheTimestamp() string { return cacheNow().UTC().Format(time.RFC3339) }
