package inject

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmath"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// cachePath returns a cache file path in a fresh temp dir.
func cachePath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign-cache.xml")
}

// openTestCache opens a cache, failing the test on I/O errors.
func openTestCache(t *testing.T, path string) *Cache {
	t.Helper()
	c, err := OpenCache(path)
	if err != nil {
		t.Fatalf("OpenCache(%s): %v", path, err)
	}
	return c
}

// runCached sweeps soname over a fresh system from mkSys with the given
// cache attached, returning the report and stats.
func runCached(t *testing.T, mkSys func(*testing.T) *simelf.System, soname string, cache *Cache, extra ...CampaignOption) (*LibReport, *CampaignStats) {
	t.Helper()
	var stats *CampaignStats
	opts := append([]CampaignOption{
		WithCache(cache),
		WithStatsSink(func(s *CampaignStats) { stats = s }),
	}, extra...)
	c, err := New(mkSys(t), soname, opts...)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.RunLibrary()
	if err != nil {
		t.Fatalf("cached sweep: %v", err)
	}
	return lr, stats
}

// TestCacheWarmRunByteIdentical is the tentpole's core promise: a warm
// run probes zero functions and still renders byte-identical robust-API
// XML (and a deep-equal report) to the cold run that filled the cache.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	path := cachePath(t)

	cold, coldStats := runCached(t, libmSystem, cmath.Soname, openTestCache(t, path))
	if coldStats.CachedFuncs != 0 || coldStats.Probes != cold.TotalProbes {
		t.Fatalf("cold run stats: %d cached funcs, %d probes (report has %d)",
			coldStats.CachedFuncs, coldStats.Probes, cold.TotalProbes)
	}

	// The cache persists its file on Save; runCached does not save, so
	// persist explicitly like the CLI does.
	cache := openTestCache(t, path)
	warmFill, _ := runCached(t, libmSystem, cmath.Soname, cache)
	_ = warmFill
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	reopened := openTestCache(t, path)
	if reason := reopened.DiscardReason(); reason != "" {
		t.Fatalf("clean cache discarded: %s", reason)
	}
	if reopened.Len() != len(cold.Funcs) {
		t.Fatalf("reopened cache has %d entries, want %d", reopened.Len(), len(cold.Funcs))
	}

	warm, warmStats := runCached(t, libmSystem, cmath.Soname, reopened)
	if warmStats.CachedFuncs != len(cold.Funcs) || warmStats.CachedProbes != cold.TotalProbes {
		t.Errorf("warm run cached %d funcs / %d probes, want %d / %d",
			warmStats.CachedFuncs, warmStats.CachedProbes, len(cold.Funcs), cold.TotalProbes)
	}
	if warmStats.Probes != 0 {
		t.Errorf("warm run executed %d probes, want 0", warmStats.Probes)
	}
	if warm.TotalProbes != cold.TotalProbes {
		t.Errorf("warm TotalProbes = %d, cold = %d (report semantics must not change)",
			warm.TotalProbes, cold.TotalProbes)
	}
	assertIdentical(t, cold, warm)
}

// tinyHeader is a three-function library for invalidation tests.
const tinyHeader = `
int t_first(int a);
int t_second(const char *s);
int t_third(int a, int b);
`

// tinySystem builds a fresh system holding libtiny.so parsed from the
// given header, every function implemented as a trivial return-0 stub.
func tinySystem(header string) func(*testing.T) *simelf.System {
	return func(t *testing.T) *simelf.System {
		t.Helper()
		protos, errs := cheader.ParseHeader("tiny.h", header)
		if len(errs) > 0 {
			t.Fatalf("parsing tiny.h: %v", errs[0])
		}
		lib := simelf.NewLibrary("libtiny.so")
		for _, p := range protos {
			lib.ExportWithProto(p, func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
				return 0, nil
			})
		}
		sys := simelf.NewSystem()
		if err := sys.AddLibrary(lib); err != nil {
			t.Fatal(err)
		}
		return sys
	}
}

// TestCachePrototypeEditInvalidatesOneFunction: changing one function's
// prototype must re-probe exactly that function — the other entries stay
// cache hits.
func TestCachePrototypeEditInvalidatesOneFunction(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	cold, _ := runCached(t, tinySystem(tinyHeader), "libtiny.so", cache)
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	if len(cold.Funcs) != 3 {
		t.Fatalf("tiny library swept %d functions, want 3", len(cold.Funcs))
	}

	// Same library, but t_second's return type changed.
	edited := strings.Replace(tinyHeader, "int t_second", "long t_second", 1)
	_, stats := runCached(t, tinySystem(edited), "libtiny.so", openTestCache(t, path))
	if stats.CachedFuncs != 2 {
		t.Errorf("after one-prototype edit: %d cached functions, want 2", stats.CachedFuncs)
	}
	probed := map[string]bool{}
	for _, ft := range stats.FuncWall {
		if !ft.Cached {
			probed[ft.Name] = true
		}
	}
	if len(probed) != 1 || !probed["t_second"] {
		t.Errorf("re-probed functions = %v, want exactly t_second", probed)
	}
}

// TestCacheTruncatedCheckpointResumesFromScratch: a checkpoint cut off
// mid-file must be discarded (not trusted, not a fatal error) and the
// next run must rebuild it completely.
func TestCacheTruncatedCheckpointResumesFromScratch(t *testing.T) {
	path := cachePath(t)
	ck := openTestCache(t, path)
	ck.SetAutoFlush(1)
	cold, _ := runCached(t, libmSystem, cmath.Soname, ck)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint never flushed: %v", err)
	}

	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	resumed := openTestCache(t, path)
	if resumed.Len() != 0 {
		t.Errorf("truncated checkpoint yielded %d entries, want 0", resumed.Len())
	}
	if resumed.DiscardReason() == "" {
		t.Error("truncated checkpoint loaded without a discard reason")
	}

	resumed.SetAutoFlush(1)
	warm, stats := runCached(t, libmSystem, cmath.Soname, resumed)
	if stats.CachedFuncs != 0 {
		t.Errorf("resume from truncated checkpoint reused %d functions, want 0", stats.CachedFuncs)
	}
	assertIdentical(t, cold, warm)
	rebuilt := openTestCache(t, path)
	if rebuilt.Len() != len(cold.Funcs) || rebuilt.DiscardReason() != "" {
		t.Errorf("rebuilt checkpoint: %d entries (want %d), discard %q",
			rebuilt.Len(), len(cold.Funcs), rebuilt.DiscardReason())
	}
}

// TestCacheTamperedFileDiscarded: flipping recorded content without
// updating the checksum must discard the whole file.
func TestCacheTamperedFileDiscarded(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	runCached(t, libmSystem, cmath.Soname, cache)
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `outcome="ok"`, `outcome="crash"`, 1)
	if tampered == string(data) {
		t.Fatal("no ok outcome to tamper with")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTestCache(t, path)
	if c.Len() != 0 || !strings.Contains(c.DiscardReason(), "checksum") {
		t.Errorf("tampered cache: %d entries, discard %q; want 0 entries, checksum discard",
			c.Len(), c.DiscardReason())
	}
}

// TestCacheStaleHierarchyDiscarded: a file written under a different
// probe hierarchy must be discarded wholesale.
func TestCacheStaleHierarchyDiscarded(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	runCached(t, libmSystem, cmath.Soname, cache)
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), HierarchyVersion(), "0123456789abcdef", 1)
	if stale == string(data) {
		t.Fatal("hierarchy hash not present in cache file")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	c := openTestCache(t, path)
	if c.Len() != 0 || !strings.Contains(c.DiscardReason(), "stale probe hierarchy") {
		t.Errorf("stale cache: %d entries, discard %q", c.Len(), c.DiscardReason())
	}
}

// TestCacheConfigSeparation: sweeps under different injector configs
// (here: different stdin seeds) must not reuse each other's entries, and
// both configurations coexist in one file.
func TestCacheConfigSeparation(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	cold, _ := runCached(t, libmSystem, cmath.Soname, cache)

	_, stats := runCached(t, libmSystem, cmath.Soname, cache, WithStdin("seed\n"))
	if stats.CachedFuncs != 0 {
		t.Errorf("different config reused %d cached functions, want 0", stats.CachedFuncs)
	}
	if want := 2 * len(cold.Funcs); cache.Len() != want {
		t.Errorf("cache holds %d entries, want %d (two configs per function)", cache.Len(), want)
	}
}

// TestCacheParallelWarmAndDrop: the parallel engine serves cache hits
// identically, and Drop re-probes exactly the dropped function.
func TestCacheParallelWarmAndDrop(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	cold, _ := runCached(t, libmSystem, cmath.Soname, cache)
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	warmCache := openTestCache(t, path)
	warm, stats := runCached(t, libmSystem, cmath.Soname, warmCache, WithWorkers(4))
	if stats.CachedFuncs != len(cold.Funcs) || stats.Probes != 0 {
		t.Errorf("parallel warm run: %d cached funcs, %d executed probes", stats.CachedFuncs, stats.Probes)
	}
	assertIdentical(t, cold, warm)

	warmCache.Drop("sqrt")
	dropped, stats := runCached(t, libmSystem, cmath.Soname, warmCache, WithWorkers(4))
	if stats.CachedFuncs != len(cold.Funcs)-1 {
		t.Errorf("after Drop(sqrt): %d cached funcs, want %d", stats.CachedFuncs, len(cold.Funcs)-1)
	}
	if sq := cold.Func("sqrt"); sq == nil || stats.Probes != sq.Probes {
		t.Errorf("after Drop(sqrt): executed %d probes, want sqrt's %v", stats.Probes, sq)
	}
	assertIdentical(t, cold, dropped)
}

// TestCacheMergeFrom: a checkpoint warm-started from a persistent cache
// serves its entries.
func TestCacheMergeFrom(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	cold, _ := runCached(t, libmSystem, cmath.Soname, cache)

	ck := openTestCache(t, filepath.Join(t.TempDir(), "ckpt.xml"))
	ck.MergeFrom(cache)
	if ck.Len() != cache.Len() {
		t.Fatalf("merged checkpoint has %d entries, cache has %d", ck.Len(), cache.Len())
	}
	_, stats := runCached(t, libmSystem, cmath.Soname, ck)
	if stats.CachedFuncs != len(cold.Funcs) {
		t.Errorf("merged checkpoint reused %d functions, want %d", stats.CachedFuncs, len(cold.Funcs))
	}
}

// TestLookupRejectsConfigMismatch is the checkpoint-resume gate: an
// entry whose recorded injector config differs from the resuming
// campaign's must not satisfy a lookup, even if its key matches (which
// can only happen to a corrupted or hand-edited checkpoint, since the
// key mixes the config hash in).
func TestLookupRejectsConfigMismatch(t *testing.T) {
	cache := openTestCache(t, cachePath(t))
	fr := &FuncReport{Name: "f", Probes: 3}
	if err := cache.put("f", "config-a", "key-1", fr); err != nil {
		t.Fatal(err)
	}
	if cache.lookup("key-1", "config-a") == nil {
		t.Fatal("matching config rejected")
	}
	if got := cache.lookup("key-1", "config-b"); got != nil {
		t.Fatalf("config-mismatched entry served from cache: %+v", got)
	}
}

// TestResumeIgnoresOtherConfigsEntries: resuming a checkpointed sweep
// under a different injector configuration (here: different stdin) must
// re-probe everything — results derived under another configuration are
// not comparable.
func TestResumeIgnoresOtherConfigsEntries(t *testing.T) {
	path := cachePath(t)
	cache := openTestCache(t, path)
	runCached(t, libmSystem, cmath.Soname, cache, WithStdin("config A"))
	if err := cache.Save(); err != nil {
		t.Fatal(err)
	}

	resumed := openTestCache(t, path)
	if resumed.Len() == 0 {
		t.Fatal("checkpoint did not persist")
	}
	_, stats := runCached(t, libmSystem, cmath.Soname, resumed, WithStdin("config B"))
	if stats.CachedFuncs != 0 {
		t.Errorf("resume with different stdin served %d functions from the checkpoint, want 0", stats.CachedFuncs)
	}
	if stats.Probes == 0 {
		t.Error("resume with different stdin executed no probes")
	}
}
