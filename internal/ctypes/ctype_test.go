package ctypes

import "testing"

func TestCTypeString(t *testing.T) {
	tests := []struct {
		t    *CType
		want string
	}{
		{Void, "void"},
		{Int, "int"},
		{SizeT, "size_t"},
		{CharPtr, "char*"},
		{ConstCharPtr, "const char*"},
		{VoidPtr, "void*"},
		{PtrTo(CharPtr), "char**"},
		{FuncPtr, "void (*)()"},
		{&CType{Kind: KindInt, TypedefName: "wctrans_t"}, "wctrans_t"},
		{nil, "void"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCTypePredicates(t *testing.T) {
	if !CharPtr.IsPointer() || !FuncPtr.IsPointer() || Int.IsPointer() {
		t.Error("IsPointer misclassifies")
	}
	if !Int.IsInteger() || !SizeT.IsInteger() || CharPtr.IsInteger() || Double.IsInteger() {
		t.Error("IsInteger misclassifies")
	}
	if !Void.IsVoid() || Int.IsVoid() {
		t.Error("IsVoid misclassifies")
	}
	if !ConstCharPtr.PointeeConst() || CharPtr.PointeeConst() || Int.PointeeConst() {
		t.Error("PointeeConst misclassifies")
	}
	var nilt *CType
	if nilt.IsPointer() || nilt.IsInteger() || !nilt.IsVoid() {
		t.Error("nil CType predicates wrong")
	}
}

func TestPrototypeString(t *testing.T) {
	strcpy := &Prototype{
		Name: "strcpy",
		Ret:  CharPtr,
		Params: []Param{
			NewParam("dest", CharPtr, RoleOutBuf),
			NewParam("src", ConstCharPtr, RoleInStr),
		},
	}
	want := "char* strcpy(char* dest, const char* src)"
	if got := strcpy.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	noargs := &Prototype{Name: "rand", Ret: Int}
	if got := noargs.String(); got != "int rand(void)" {
		t.Errorf("String() = %q", got)
	}
	variadic := &Prototype{
		Name:     "printf",
		Ret:      Int,
		Params:   []Param{NewParam("format", ConstCharPtr, RoleFmt)},
		Variadic: true,
	}
	if got := variadic.String(); got != "int printf(const char* format, ...)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRoleStrings(t *testing.T) {
	roles := map[Role]string{
		RoleNone: "none", RoleInStr: "in_str", RoleInBuf: "in_buf",
		RoleOutBuf: "out_buf", RoleInOutBuf: "inout_buf", RoleSize: "size",
		RoleFd: "fd", RoleFmt: "fmt", RoleFuncPtr: "func_ptr", RolePtrOut: "ptr_out",
	}
	for r, want := range roles {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(r), got, want)
		}
	}
	if got := Role(99).String(); got != "Role(99)" {
		t.Errorf("unknown role = %q", got)
	}
}

func TestChainFor(t *testing.T) {
	tests := []struct {
		name string
		p    Param
		want *Chain
	}{
		{"in_str role", NewParam("s", ConstCharPtr, RoleInStr), ChainInStr},
		{"out_buf role", NewParam("d", CharPtr, RoleOutBuf), ChainOutBuf},
		{"fmt role", NewParam("f", ConstCharPtr, RoleFmt), ChainFmt},
		{"size role", NewParam("n", SizeT, RoleSize), ChainSize},
		{"fd role", NewParam("fd", Int, RoleFd), ChainFd},
		{"func ptr role", NewParam("cmp", FuncPtr, RoleFuncPtr), ChainFuncPtr},
		{"ptr out role", NewParam("endp", PtrTo(CharPtr), RolePtrOut), ChainPtrOut},
		{"in_buf role", NewParam("b", ConstVoidPtr, RoleInBuf), ChainInBuf},
		{"inout role", NewParam("d", CharPtr, RoleInOutBuf), ChainInOutBuf},
		{"default const ptr", NewParam("p", ConstVoidPtr, RoleNone), ChainInBuf},
		{"default mut ptr", NewParam("p", VoidPtr, RoleNone), ChainOutBuf},
		{"default scalar", NewParam("c", Int, RoleNone), ChainScalar},
		{"default funcptr type", NewParam("f", FuncPtr, RoleNone), ChainFuncPtr},
	}
	for _, tt := range tests {
		if got := ChainFor(tt.p); got != tt.want {
			t.Errorf("%s: ChainFor = %s, want %s", tt.name, got.Name, tt.want.Name)
		}
	}
}

func TestChainShapes(t *testing.T) {
	// Every chain starts with the accept-anything level and is strictly
	// ordered (weak to strong by construction).
	for _, c := range []*Chain{ChainInStr, ChainInBuf, ChainOutBuf, ChainInOutBuf, ChainFmt, ChainSize, ChainFd, ChainFuncPtr, ChainScalar, ChainPtrOut} {
		if len(c.Levels) == 0 {
			t.Fatalf("chain %s empty", c.Name)
		}
		if c.Levels[0].Name != "any" {
			t.Errorf("chain %s first level = %q, want any", c.Name, c.Levels[0].Name)
		}
		if c.Strongest() != len(c.Levels)-1 {
			t.Errorf("chain %s Strongest() = %d", c.Name, c.Strongest())
		}
		seen := map[string]bool{}
		for _, l := range c.Levels {
			if seen[l.Name] {
				t.Errorf("chain %s has duplicate level %q", c.Name, l.Name)
			}
			seen[l.Name] = true
			if l.Check == nil {
				t.Errorf("chain %s level %s has nil Check", c.Name, l.Name)
			}
		}
	}
	if ChainInStr.LevelIndex("cstring") != 3 {
		t.Errorf("LevelIndex(cstring) = %d, want 3", ChainInStr.LevelIndex("cstring"))
	}
	if ChainInStr.LevelIndex("nope") != -1 {
		t.Error("LevelIndex of unknown should be -1")
	}
}
