package ctypes_test

import (
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

func proto(t *testing.T, src string) *ctypes.Prototype {
	t.Helper()
	p, err := cheader.ParsePrototype(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNeedForStrcpy(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "char *strcpy(char *dest, const char *src); // @dest out_buf src=src nul @src in_str")
	src, _ := env.Img.StaticString("hello")
	dst := env.Img.Heap.Malloc(64)
	args := []cval.Value{cval.Ptr(dst), cval.Ptr(src)}
	need := ctypes.NeedFor(env, p, 0, args)
	if need.Bytes != 6 { // strlen + NUL
		t.Errorf("strcpy dest need = %d, want 6", need.Bytes)
	}
	// Invalid source degrades to 1 byte (the source's own check will
	// reject the call).
	args[1] = cval.Ptr(0xdead0000)
	if need := ctypes.NeedFor(env, p, 0, args); need.Bytes != 1 {
		t.Errorf("need with bad src = %d, want 1", need.Bytes)
	}
}

func TestNeedForStrcatAddsDestLen(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "char *strcat(char *dest, const char *src); // @dest inout_buf src=src nul @src in_str")
	dst := env.Img.Heap.Malloc(64)
	env.Img.Space.WriteCString(dst, "abcd")
	src, _ := env.Img.StaticString("xyz")
	need := ctypes.NeedFor(env, p, 0, []cval.Value{cval.Ptr(dst), cval.Ptr(src)})
	if need.Bytes != 8 { // 4 existing + 3 new + NUL
		t.Errorf("strcat dest need = %d, want 8", need.Bytes)
	}
}

func TestNeedForMemcpy(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "void *memcpy(void *dest, const void *src, size_t n); // @dest out_buf len=n @src in_buf len=n @n size of=dest")
	dst := env.Img.Heap.Malloc(64)
	src := env.Img.Heap.Malloc(64)
	args := []cval.Value{cval.Ptr(dst), cval.Ptr(src), cval.Uint(48)}
	if need := ctypes.NeedFor(env, p, 0, args); need.Bytes != 48 {
		t.Errorf("dest need = %d, want 48", need.Bytes)
	}
	if need := ctypes.NeedFor(env, p, 1, args); need.Bytes != 48 {
		t.Errorf("src need = %d, want 48", need.Bytes)
	}
	// The size param's need is the destination's available span.
	need := ctypes.NeedFor(env, p, 2, args)
	if need.Bytes == 0 {
		t.Error("size param need = 0, want the mapped span of dest")
	}
}

func TestNeedForQsortProduct(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *)); // @base out_buf @nmemb size of=base @size size of=base")
	base := env.Img.Heap.Malloc(256)
	args := []cval.Value{cval.Ptr(base), cval.Uint(10), cval.Uint(16), cval.Ptr(0)}
	if need := ctypes.NeedFor(env, p, 0, args); need.Bytes != 160 {
		t.Errorf("qsort base need = %d, want nmemb*size = 160", need.Bytes)
	}
	// Product overflow saturates instead of wrapping.
	args[1], args[2] = cval.Uint(0x10000), cval.Uint(0x10000)
	if need := ctypes.NeedFor(env, p, 0, args); need.Bytes != 0xffffffff {
		t.Errorf("overflowing product = %#x, want saturation", need.Bytes)
	}
}

func TestNeedForNoLinks(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "char *gets(char *s); // @s out_buf")
	if need := ctypes.NeedFor(env, p, 0, []cval.Value{cval.Ptr(0x1000)}); need.Bytes != 0 {
		t.Errorf("unlinked out_buf need = %d, want 0 (unknown)", need.Bytes)
	}
	// Out-of-range parameter index is harmless.
	if need := ctypes.NeedFor(env, p, 5, nil); need.Bytes != 0 {
		t.Errorf("out-of-range need = %d", need.Bytes)
	}
}

func TestSatisfiedLevelConsecutive(t *testing.T) {
	env := cval.NewEnv()
	p := proto(t, "size_t strlen(const char *s); // @s in_str")
	chain := ctypes.ChainFor(p.Params[0])

	good, _ := env.Img.StaticString("terminated")
	// Readable but unterminated: map a page, fill it, next unmapped.
	if f := env.Img.Space.Map(0x00900000, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatal(f)
	}
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		env.Img.Space.WriteByteAt(0x00900000+i, 'q')
	}
	tests := []struct {
		name string
		v    cval.Value
		want int
	}{
		{"null", cval.Ptr(0), 0},
		{"unmapped", cval.Ptr(0xdead0000), 1},
		{"unterminated", cval.Ptr(0x00900000), 2},
		{"valid", cval.Ptr(good), 3},
	}
	for _, tt := range tests {
		if got := ctypes.SatisfiedLevel(env, p, 0, []cval.Value{tt.v}, chain); got != tt.want {
			t.Errorf("%s: SatisfiedLevel = %d, want %d", tt.name, got, tt.want)
		}
	}
}
