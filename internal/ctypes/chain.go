package ctypes

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// Need carries the call-contextual requirements a check predicate may
// consult: how many bytes the callee will actually read or write through
// the pointer, derived at call time from the other arguments.
type Need struct {
	// Bytes is the number of bytes the callee touches through this
	// pointer; 0 means "at least one byte / unknown".
	Bytes uint32
	// WantNul requires a NUL terminator within the readable span.
	WantNul bool
}

// CheckFunc is a run-time validity predicate for one lattice level. It
// must never fault: it inspects mappings via non-faulting queries only,
// which is what lets the robustness wrapper validate arguments *before*
// the C function walks into them.
type CheckFunc func(env *cval.Env, v cval.Value, need Need) bool

// Level is one rung of a robustness chain.
type Level struct {
	// Name is the level's identifier in robust-API files, e.g.
	// "writable_sized".
	Name string
	// Desc is the human explanation used in reports.
	Desc string
	// Check validates a value at this level.
	Check CheckFunc
}

// Chain is an ordered hierarchy of argument types for one parameter
// shape. Levels[0] is the weakest (the declared C type, accepts
// anything); each later level is strictly stronger. The injector's search
// walks from weak to strong until probes stop crashing the function.
type Chain struct {
	Name   string
	Levels []Level
}

// LevelIndex returns the index of the named level, or -1.
func (c *Chain) LevelIndex(name string) int {
	for i, l := range c.Levels {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Strongest returns the index of the strongest level.
func (c *Chain) Strongest() int { return len(c.Levels) - 1 }

// checkAlways accepts anything (the declared C type).
func checkAlways(*cval.Env, cval.Value, Need) bool { return true }

// checkNonNull rejects the NULL pointer only.
func checkNonNull(_ *cval.Env, v cval.Value, _ Need) bool { return !v.IsNull() }

func needBytes(need Need) uint32 {
	if need.Bytes == 0 {
		return 1
	}
	return need.Bytes
}

// checkReadable requires at least one readable byte at the pointer — the
// intermediate "points into readable memory" rung, deliberately weaker
// than the sized checks below so the injector can tell them apart.
func checkReadable(env *cval.Env, v cval.Value, _ Need) bool {
	if v.IsNull() {
		return false
	}
	return env.Img.Space.Mapped(v.Addr(), 1, cmem.ProtRead)
}

// checkReadableSized requires the full needed span to be readable.
func checkReadableSized(env *cval.Env, v cval.Value, need Need) bool {
	if v.IsNull() {
		return false
	}
	return env.Img.Space.Mapped(v.Addr(), needBytes(need), cmem.ProtRead)
}

// checkWritable requires at least one writable byte at the pointer.
func checkWritable(env *cval.Env, v cval.Value, _ Need) bool {
	if v.IsNull() {
		return false
	}
	return env.Img.Space.Mapped(v.Addr(), 1, cmem.ProtRead|cmem.ProtWrite)
}

// checkWritableSized requires the full needed span to be writable — the
// paper's "pointer to a writable buffer with enough space" for strcpy's
// first argument.
func checkWritableSized(env *cval.Env, v cval.Value, need Need) bool {
	if v.IsNull() {
		return false
	}
	return env.Img.Space.Mapped(v.Addr(), needBytes(need), cmem.ProtRead|cmem.ProtWrite)
}

// maxScan bounds the non-faulting NUL scan; a "string" longer than this is
// treated as unterminated. 1 MiB matches the wrapper generation default in
// the companion paper.
const maxScan = 1 << 20

// CStringLen returns the length of the NUL-terminated string at a using
// only non-faulting queries, and whether a terminator was found within the
// readable span.
func CStringLen(env *cval.Env, a cmem.Addr) (uint32, bool) {
	sp := env.Img.Space
	span := sp.MappedLen(a, cmem.ProtRead, maxScan)
	for i := uint32(0); i < span; i++ {
		b, f := sp.ReadByteAt(a + cmem.Addr(i))
		if f != nil {
			return 0, false
		}
		if b == 0 {
			return i, true
		}
	}
	return 0, false
}

// checkCString requires a readable NUL-terminated string.
func checkCString(env *cval.Env, v cval.Value, _ Need) bool {
	if v.IsNull() {
		return false
	}
	_, ok := CStringLen(env, v.Addr())
	return ok
}

// checkFmt requires a readable format string free of the %n directive
// (the classic format-string attack vector the security wrapper rejects).
func checkFmt(env *cval.Env, v cval.Value, need Need) bool {
	if !checkCString(env, v, need) {
		return false
	}
	a := v.Addr()
	sp := env.Img.Space
	prev := byte(0)
	for i := uint32(0); ; i++ {
		b, f := sp.ReadByteAt(a + cmem.Addr(i))
		if f != nil || b == 0 {
			return true
		}
		if prev == '%' && b == 'n' {
			return false
		}
		if prev == '%' && b == '%' {
			b = 0 // %% escapes; don't let the second % start a directive
		}
		prev = b
	}
}

// checkFd requires a plausibly valid descriptor: 0..2 or an open simulated
// fd.
func checkFd(env *cval.Env, v cval.Value, _ Need) bool {
	fd := v.Int32()
	if fd >= 0 && fd <= 2 {
		return true
	}
	_, ok := env.File(fd)
	return ok
}

// checkNonNeg requires a non-negative integer.
func checkNonNeg(_ *cval.Env, v cval.Value, _ Need) bool { return v.Int32() >= 0 }

// checkFuncPtr requires the value to be a registered text address.
func checkFuncPtr(env *cval.Env, v cval.Value, _ Need) bool {
	_, ok := env.LookupText(v.Addr())
	return ok
}

// checkSaneSize rejects absurd sizes that would make the callee walk the
// whole address space (n > half the address space is never a real
// request; it is an unsigned wrap of a negative value).
func checkSaneSize(_ *cval.Env, v cval.Value, _ Need) bool {
	return v.Uint32() < 0x80000000
}

// The canonical chains. Chains are shared immutable values.
var (
	// ChainInStr: const char* the callee reads as a string.
	ChainInStr = &Chain{
		Name: "in_str",
		Levels: []Level{
			{Name: "any", Desc: "any char* (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "readable", Desc: "points into readable memory", Check: checkReadable},
			{Name: "cstring", Desc: "readable NUL-terminated string", Check: checkCString},
		},
	}
	// ChainInBuf: const void* read with an explicit length.
	ChainInBuf = &Chain{
		Name: "in_buf",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "readable_sized", Desc: "readable for the full length", Check: checkReadableSized},
		},
	}
	// ChainOutBuf: pointer the callee writes.
	ChainOutBuf = &Chain{
		Name: "out_buf",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "writable", Desc: "points into writable memory", Check: checkWritable},
			{Name: "writable_sized", Desc: "writable buffer with enough space for the operation", Check: checkWritableSized},
		},
	}
	// ChainInOutBuf: read-modify-write string buffers (strcat dst).
	ChainInOutBuf = &Chain{
		Name: "inout_buf",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "cstring_writable", Desc: "writable NUL-terminated string", Check: func(env *cval.Env, v cval.Value, need Need) bool {
				return checkCString(env, v, need) && checkWritable(env, v, need)
			}},
			{Name: "writable_sized", Desc: "writable with enough space for the appended data", Check: checkWritableSized},
		},
	}
	// ChainFmt: printf-style format strings.
	ChainFmt = &Chain{
		Name: "fmt",
		Levels: []Level{
			{Name: "any", Desc: "any char* (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "cstring", Desc: "readable NUL-terminated string", Check: checkCString},
			{Name: "fmt_no_percent_n", Desc: "format string without %n", Check: checkFmt},
		},
	}
	// ChainSize: size_t parameters. The strongest level is relational:
	// the count must fit the buffer it bounds (need.Bytes carries that
	// buffer's mapped span; 0 means the relation is unknown).
	ChainSize = &Chain{
		Name: "size",
		Levels: []Level{
			{Name: "any", Desc: "any size_t (declared type)", Check: checkAlways},
			{Name: "sane", Desc: "below 2 GiB (not a wrapped negative)", Check: checkSaneSize},
			{Name: "bounded", Desc: "no larger than the buffer it sizes", Check: func(env *cval.Env, v cval.Value, need Need) bool {
				if !checkSaneSize(env, v, need) {
					return false
				}
				if need.Bytes == 0 {
					return true
				}
				return v.Uint32() <= need.Bytes
			}},
		},
	}
	// ChainFd: file descriptors.
	ChainFd = &Chain{
		Name: "fd",
		Levels: []Level{
			{Name: "any", Desc: "any int (declared type)", Check: checkAlways},
			{Name: "nonneg", Desc: "non-negative", Check: checkNonNeg},
			{Name: "open_fd", Desc: "open file descriptor", Check: checkFd},
		},
	}
	// ChainFuncPtr: callback pointers.
	ChainFuncPtr = &Chain{
		Name: "func_ptr",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "nonnull", Desc: "non-NULL pointer", Check: checkNonNull},
			{Name: "code_ptr", Desc: "points at a function entry point", Check: checkFuncPtr},
		},
	}
	// ChainScalar: plain integers; nothing to get wrong at the memory
	// level, so the chain is a single rung.
	ChainScalar = &Chain{
		Name: "scalar",
		Levels: []Level{
			{Name: "any", Desc: "any scalar (declared type)", Check: checkAlways},
		},
	}
	// ChainHeapPtr: free/realloc arguments. NULL is legal; anything else
	// must be a live allocation returned by malloc. This is the check
	// that stops double frees and wild frees.
	ChainHeapPtr = &Chain{
		Name: "heap_ptr",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "null_or_chunk", Desc: "NULL or a live malloc chunk", Check: func(env *cval.Env, v cval.Value, _ Need) bool {
				return v.IsNull() || env.Img.Heap.InUse(v.Addr())
			}},
		},
	}
	// ChainPtrOut: pointer to scalar out-parameter; NULL is usually a
	// documented "don't care" (strtol endptr), so NULL stays legal but
	// non-NULL values must be writable.
	ChainPtrOut = &Chain{
		Name: "ptr_out",
		Levels: []Level{
			{Name: "any", Desc: "any pointer (declared type)", Check: checkAlways},
			{Name: "null_or_writable", Desc: "NULL, or writable and word-aligned", Check: func(env *cval.Env, v cval.Value, need Need) bool {
				// Out-parameters receive wide stores; misalignment is
				// a SIGBUS on strict hardware, so the robust type
				// demands alignment too.
				return v.IsNull() || (v.Addr()&3 == 0 && checkWritable(env, v, need))
			}},
		},
	}
)

// ChainFor selects the robustness chain for a parameter based on its role
// and type.
func ChainFor(p Param) *Chain {
	switch p.Role {
	case RoleInStr:
		return ChainInStr
	case RoleInBuf:
		return ChainInBuf
	case RoleOutBuf:
		return ChainOutBuf
	case RoleInOutBuf:
		return ChainInOutBuf
	case RoleFmt:
		return ChainFmt
	case RoleSize:
		return ChainSize
	case RoleFd:
		return ChainFd
	case RoleFuncPtr:
		return ChainFuncPtr
	case RolePtrOut:
		return ChainPtrOut
	case RoleHeapPtr:
		return ChainHeapPtr
	}
	if p.Type.IsPointer() {
		if p.Type.Kind == KindFuncPtr {
			return ChainFuncPtr
		}
		if p.Type.PointeeConst() {
			return ChainInBuf
		}
		return ChainOutBuf
	}
	return ChainScalar
}
