package ctypes

import "sort"

// RobustParam records the derived weakest robust argument type for one
// parameter: the chain it was searched in and the level index that the
// fault-injection campaign found necessary. Level == len(chain levels)
// (LevelName "uncontainable") means no argument check suffices and fault
// containment is required.
type RobustParam struct {
	Name      string
	Chain     string
	Level     int
	LevelName string
}

// RobustAPI maps function name to its per-parameter robust types — the
// artifact Figure 2's pipeline produces and the robustness wrapper
// enforces.
type RobustAPI map[string][]RobustParam

// Funcs returns the covered function names, sorted.
func (api RobustAPI) Funcs() []string {
	names := make([]string, 0, len(api))
	for n := range api {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ChainByName resolves a chain name to the shared chain value.
func ChainByName(name string) (*Chain, bool) {
	for _, c := range []*Chain{
		ChainInStr, ChainInBuf, ChainOutBuf, ChainInOutBuf, ChainFmt,
		ChainSize, ChainFd, ChainFuncPtr, ChainScalar, ChainPtrOut, ChainHeapPtr,
	} {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}
