// Package ctypes models C types as they appear in library prototypes, the
// semantic roles of parameters (output buffer, size of another parameter,
// format string, ...), and the robustness type lattice that the HEALERS
// fault injector searches: for every parameter, a chain of progressively
// stronger argument types from "whatever the prototype says" down to "a
// value this function is actually robust against".
//
// The paper's worked example (§2.2): strcpy's first parameter is declared
// char*, but its *weakest robust type* is "pointer to a writable buffer
// with enough space for the source string". The injector discovers that by
// probing; the robustness wrapper then enforces it at run time via the
// Check predicates defined here.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind enumerates the C type constructors the toolkit understands.
type Kind int

const (
	// KindVoid is the C void type (only meaningful as a return type or
	// behind a pointer).
	KindVoid Kind = iota + 1
	// KindChar is char (signedness immaterial in the simulation).
	KindChar
	// KindShort is short int.
	KindShort
	// KindInt is int.
	KindInt
	// KindLong is long int (32-bit in the simulated ABI).
	KindLong
	// KindLongLong is long long int (64-bit).
	KindLongLong
	// KindUInt is any unsigned integer of int width.
	KindUInt
	// KindSizeT is size_t (unsigned 32-bit in the simulated ABI).
	KindSizeT
	// KindSSizeT is ssize_t.
	KindSSizeT
	// KindDouble is double (stored in a Value by bit pattern).
	KindDouble
	// KindPtr is a pointer to Elem.
	KindPtr
	// KindFuncPtr is a pointer to a function (comparators, handlers).
	KindFuncPtr
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindChar:
		return "char"
	case KindShort:
		return "short"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindLongLong:
		return "long long"
	case KindUInt:
		return "unsigned int"
	case KindSizeT:
		return "size_t"
	case KindSSizeT:
		return "ssize_t"
	case KindDouble:
		return "double"
	case KindPtr:
		return "ptr"
	case KindFuncPtr:
		return "funcptr"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CType is one C type. CTypes are immutable after construction; the
// package-level constructors return shared instances for common cases.
type CType struct {
	Kind  Kind
	Const bool
	// Elem is the pointee for KindPtr.
	Elem *CType
	// TypedefName preserves the original spelling when the type came
	// through a typedef (wctrans_t, FILE, ...).
	TypedefName string
}

// Common shared types.
var (
	Void     = &CType{Kind: KindVoid}
	Char     = &CType{Kind: KindChar}
	Int      = &CType{Kind: KindInt}
	UInt     = &CType{Kind: KindUInt}
	Long     = &CType{Kind: KindLong}
	LongLong = &CType{Kind: KindLongLong}
	SizeT    = &CType{Kind: KindSizeT}
	SSizeT   = &CType{Kind: KindSSizeT}
	Double   = &CType{Kind: KindDouble}
	CharPtr  = &CType{Kind: KindPtr, Elem: Char}
	// ConstCharPtr is const char*.
	ConstCharPtr = &CType{Kind: KindPtr, Elem: &CType{Kind: KindChar, Const: true}}
	VoidPtr      = &CType{Kind: KindPtr, Elem: Void}
	ConstVoidPtr = &CType{Kind: KindPtr, Elem: &CType{Kind: KindVoid, Const: true}}
	FuncPtr      = &CType{Kind: KindFuncPtr}
)

// PtrTo returns a pointer type to t.
func PtrTo(t *CType) *CType { return &CType{Kind: KindPtr, Elem: t} }

// IsPointer reports whether the type is any pointer (data or function).
func (t *CType) IsPointer() bool {
	return t != nil && (t.Kind == KindPtr || t.Kind == KindFuncPtr)
}

// IsInteger reports whether the type is an integer scalar.
func (t *CType) IsInteger() bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case KindChar, KindShort, KindInt, KindLong, KindLongLong, KindUInt, KindSizeT, KindSSizeT:
		return true
	}
	return false
}

// IsVoid reports whether the type is plain void.
func (t *CType) IsVoid() bool { return t == nil || t.Kind == KindVoid }

// PointeeConst reports whether the type is a pointer to const (the callee
// promises not to write through it).
func (t *CType) PointeeConst() bool {
	return t != nil && t.Kind == KindPtr && t.Elem != nil && t.Elem.Const
}

// String renders the C spelling of the type.
func (t *CType) String() string {
	if t == nil {
		return "void"
	}
	if t.TypedefName != "" {
		if t.Const {
			return "const " + t.TypedefName
		}
		return t.TypedefName
	}
	var b strings.Builder
	if t.Const {
		b.WriteString("const ")
	}
	switch t.Kind {
	case KindPtr:
		b.WriteString(t.Elem.String())
		b.WriteString("*")
	case KindFuncPtr:
		b.WriteString("void (*)()")
	default:
		b.WriteString(t.Kind.String())
	}
	return b.String()
}

// Role classifies what a parameter means to the function, derived from
// header annotations / man-page knowledge. Roles drive probe generation
// and run-time checks.
type Role int

const (
	// RoleNone marks a plain scalar with no pointer semantics.
	RoleNone Role = iota
	// RoleInStr is a NUL-terminated input string the callee reads.
	RoleInStr
	// RoleInBuf is an input buffer whose length is another parameter.
	RoleInBuf
	// RoleOutBuf is an output buffer the callee writes; its required
	// capacity comes from a size parameter or from an input string.
	RoleOutBuf
	// RoleInOutBuf is read and written (strcat's dst).
	RoleInOutBuf
	// RoleSize is a byte count bounding some buffer parameter.
	RoleSize
	// RoleFd is a file descriptor.
	RoleFd
	// RoleFmt is a printf-style format string.
	RoleFmt
	// RoleFuncPtr is a callback (qsort comparator).
	RoleFuncPtr
	// RolePtrOut is a pointer to a scalar out-parameter (strtol endptr).
	RolePtrOut
	// RoleHeapPtr is a pointer that must be NULL or a live heap
	// allocation (free, realloc) — not expressible by memory mapping
	// alone.
	RoleHeapPtr
)

// String returns the role's name.
func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleInStr:
		return "in_str"
	case RoleInBuf:
		return "in_buf"
	case RoleOutBuf:
		return "out_buf"
	case RoleInOutBuf:
		return "inout_buf"
	case RoleSize:
		return "size"
	case RoleFd:
		return "fd"
	case RoleFmt:
		return "fmt"
	case RoleFuncPtr:
		return "func_ptr"
	case RolePtrOut:
		return "ptr_out"
	case RoleHeapPtr:
		return "heap_ptr"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Param is one formal parameter of a prototype.
type Param struct {
	Name string
	Type *CType
	Role Role
	// SizeOf is the index of the buffer parameter this size parameter
	// bounds, or -1.
	SizeOf int
	// LenBy is the index of the size parameter bounding this buffer,
	// or -1. For RoleOutBuf with LenBy == -1 the required capacity is
	// derived from the source-string parameter SrcStr.
	LenBy int
	// SrcStr is the index of the input-string parameter whose length
	// determines this output buffer's required capacity, or -1
	// (strcpy: dst.SrcStr = 1).
	SrcStr int
	// NulTerm marks output buffers that receive a terminating NUL in
	// addition to SrcStr's length.
	NulTerm bool
	// OverlapOK marks buffers whose function tolerates overlapping
	// source/destination ranges (memmove); for everything else overlap
	// is undefined behaviour and the robustness wrapper denies it.
	OverlapOK bool
}

// NewParam builds a Param with the index links zeroed to "none".
func NewParam(name string, t *CType, role Role) Param {
	return Param{Name: name, Type: t, Role: role, SizeOf: -1, LenBy: -1, SrcStr: -1}
}

// Prototype describes one library function.
type Prototype struct {
	Name     string
	Ret      *CType
	Params   []Param
	Variadic bool
	// Header records the header file the prototype came from.
	Header string
	// Man is the one-line man-page synopsis, if any.
	Man string
}

// String renders the prototype in C syntax.
func (p *Prototype) String() string {
	var b strings.Builder
	b.WriteString(p.Ret.String())
	b.WriteByte(' ')
	b.WriteString(p.Name)
	b.WriteByte('(')
	for i, prm := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(prm.Type.String())
		if prm.Name != "" {
			b.WriteByte(' ')
			b.WriteString(prm.Name)
		}
	}
	if p.Variadic {
		if len(p.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	if len(p.Params) == 0 && !p.Variadic {
		b.WriteString("void")
	}
	b.WriteByte(')')
	return b.String()
}
