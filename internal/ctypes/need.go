package ctypes

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// NeedFor computes the contextual requirement for parameter i of proto
// given the actual argument words of one call. This is the glue between
// the per-parameter lattice and the cross-parameter reality of C APIs:
//
//   - a buffer bounded by a size parameter (memcpy dst, len=n) needs n
//     bytes;
//   - an output buffer fed from a source string (strcpy dst, src=src)
//     needs strlen(src) bytes plus the terminator;
//   - an append destination (strcat dst) additionally needs its own
//     current length;
//   - a size parameter that bounds a buffer (memcpy n, of=dest) carries
//     that buffer's available mapped span, so the "bounded" level can
//     compare against it.
//
// Both the fault injector (to decide which lattice level a probe value
// satisfies) and the generated robustness wrapper (to validate real calls)
// evaluate exactly this function, which is what makes the derived robust
// API enforceable.
func NeedFor(env *cval.Env, proto *Prototype, i int, args []cval.Value) Need {
	if i >= len(proto.Params) {
		return Need{}
	}
	p := proto.Params[i]
	at := func(j int) cval.Value {
		if j >= 0 && j < len(args) {
			return args[j]
		}
		return 0
	}

	// A buffer that one or more size parameters are declared to bound
	// (qsort's base is bounded by nmemb AND size) needs their product.
	if p.Role == RoleOutBuf || p.Role == RoleInOutBuf || p.Role == RoleInBuf {
		prod := uint64(1)
		linked := false
		for j, q := range proto.Params {
			if q.Role == RoleSize && q.SizeOf == i {
				linked = true
				prod *= uint64(at(j).Uint32())
				if prod > 0xffffffff {
					prod = 0xffffffff
				}
			}
		}
		if linked {
			return Need{Bytes: uint32(prod)}
		}
	}

	switch {
	case p.Role == RoleSize && p.SizeOf >= 0:
		// Available span of the buffer this size bounds.
		buf := at(p.SizeOf)
		if buf.IsNull() {
			return Need{}
		}
		want := cmem.ProtRead
		if p.SizeOf < len(proto.Params) {
			switch proto.Params[p.SizeOf].Role {
			case RoleOutBuf, RoleInOutBuf:
				want = cmem.ProtRead | cmem.ProtWrite
			}
		}
		return Need{Bytes: env.Img.Space.MappedLen(buf.Addr(), want, maxScan)}

	case p.LenBy >= 0:
		return Need{Bytes: at(p.LenBy).Uint32()}

	case p.SrcStr >= 0:
		n, ok := CStringLen(env, at(p.SrcStr).Addr())
		if !ok {
			// Source is itself invalid; the source's own check will
			// reject the call. Require at least one byte here.
			return Need{Bytes: 1}
		}
		need := n
		if p.NulTerm {
			need++
		}
		if p.Role == RoleInOutBuf {
			// Append: also needs the destination's current length.
			if dlen, ok := CStringLen(env, at(i).Addr()); ok {
				need += dlen
			}
		}
		if need == 0 {
			need = 1
		}
		return Need{Bytes: need}
	}
	return Need{}
}

// SatisfiedLevel returns the index of the strongest lattice level of
// chain that value v satisfies for parameter i of proto in this call
// context. Levels are ordered weak to strong and are supersets by
// construction, so the answer is the last consecutive passing level.
func SatisfiedLevel(env *cval.Env, proto *Prototype, i int, args []cval.Value, chain *Chain) int {
	need := NeedFor(env, proto, i, args)
	v := cval.Value(0)
	if i < len(args) {
		v = args[i]
	}
	sat := 0
	for k := 1; k < len(chain.Levels); k++ {
		if !chain.Levels[k].Check(env, v, need) {
			break
		}
		sat = k
	}
	return sat
}
