package ctypes

import (
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
)

// probeEnv builds an environment with a few characteristic memory regions
// for exercising check predicates.
func probeEnv(t *testing.T) (env *cval.Env, str, unterm, rodata cmem.Addr) {
	t.Helper()
	env = cval.NewEnv()
	var f *cmem.Fault
	str, f = env.Img.StaticString("hello")
	if f != nil {
		t.Fatalf("StaticString: %v", f)
	}
	// An unterminated buffer at the very end of the data segment would
	// be ideal; instead craft one in a dedicated mapping whose next page
	// is unmapped.
	if f := env.Img.Space.Map(0x00900000, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatalf("Map: %v", f)
	}
	unterm = 0x00900000
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		if f := env.Img.Space.WriteByteAt(unterm+i, 'A'); f != nil {
			t.Fatalf("fill: %v", f)
		}
	}
	rodata, f = env.Img.LiteralString("readonly")
	if f != nil {
		t.Fatalf("LiteralString: %v", f)
	}
	return env, str, unterm, rodata
}

func level(t *testing.T, c *Chain, name string) Level {
	t.Helper()
	i := c.LevelIndex(name)
	if i < 0 {
		t.Fatalf("chain %s has no level %s", c.Name, name)
	}
	return c.Levels[i]
}

func TestInStrChainChecks(t *testing.T) {
	env, str, unterm, rodata := probeEnv(t)
	tests := []struct {
		name  string
		level string
		v     cval.Value
		want  bool
	}{
		{"null fails nonnull", "nonnull", cval.Ptr(0), false},
		{"garbage passes nonnull", "nonnull", cval.Ptr(0xdeadbeef), true},
		{"garbage fails readable", "readable", cval.Ptr(0xdeadbeef), false},
		{"string passes readable", "readable", cval.Ptr(str), true},
		{"rodata passes readable", "readable", cval.Ptr(rodata), true},
		{"string passes cstring", "cstring", cval.Ptr(str), true},
		{"rodata passes cstring", "cstring", cval.Ptr(rodata), true},
		{"unterminated fails cstring", "cstring", cval.Ptr(unterm), false},
		{"null fails cstring", "cstring", cval.Ptr(0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := level(t, ChainInStr, tt.level)
			if got := l.Check(env, tt.v, Need{}); got != tt.want {
				t.Errorf("Check(%s) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestOutBufChainChecks(t *testing.T) {
	env, str, _, rodata := probeEnv(t)
	writable := level(t, ChainOutBuf, "writable")
	sized := level(t, ChainOutBuf, "writable_sized")
	if !writable.Check(env, cval.Ptr(str), Need{}) {
		t.Error("static string should be writable")
	}
	if writable.Check(env, cval.Ptr(rodata), Need{}) {
		t.Error("rodata should not be writable")
	}
	// Sized check: a heap buffer of 16 bytes accepts need 16, rejects 17
	// only if the next bytes are unmapped — within the heap arena the
	// pages are mapped, so the page-granular check passes. The byte-
	// accurate bound is the security wrapper's job via ChunkRange; the
	// lattice check is the page-level one the robustness wrapper uses.
	p := env.Img.Heap.Malloc(16)
	if p == 0 {
		t.Fatal("malloc failed")
	}
	if !sized.Check(env, cval.Ptr(p), Need{Bytes: 16}) {
		t.Error("16-byte need on 16-byte chunk failed page-level check")
	}
	// Unmapped target fails at any size.
	if sized.Check(env, cval.Ptr(0x7f000000), Need{Bytes: 1}) {
		t.Error("unmapped pointer passed writable_sized")
	}
}

func TestFmtChainChecks(t *testing.T) {
	env := cval.NewEnv()
	ok1, _ := env.Img.StaticString("value: %d\n")
	bad, _ := env.Img.StaticString("gotcha %n here")
	escaped, _ := env.Img.StaticString("100%% %s")
	trick, _ := env.Img.StaticString("%%n is fine")
	fmtLvl := level(t, ChainFmt, "fmt_no_percent_n")
	tests := []struct {
		name string
		a    cmem.Addr
		want bool
	}{
		{"plain fmt ok", ok1, true},
		{"%n rejected", bad, false},
		{"%% escape ok", escaped, true},
		{"%%n not a directive", trick, true},
	}
	for _, tt := range tests {
		if got := fmtLvl.Check(env, cval.Ptr(tt.a), Need{}); got != tt.want {
			t.Errorf("%s: Check = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestFdChainChecks(t *testing.T) {
	env := cval.NewEnv()
	env.PutFile("f", nil)
	fd := env.Open("f", true, false)
	open := level(t, ChainFd, "open_fd")
	nonneg := level(t, ChainFd, "nonneg")
	tests := []struct {
		name  string
		level Level
		v     cval.Value
		want  bool
	}{
		{"stdin ok", open, cval.Int(0), true},
		{"stderr ok", open, cval.Int(2), true},
		{"open fd ok", open, cval.Int(int64(fd)), true},
		{"wild fd bad", open, cval.Int(9999), false},
		{"negative bad", open, cval.Int(-1), false},
		{"negative fails nonneg", nonneg, cval.Int(-5), false},
		{"positive passes nonneg", nonneg, cval.Int(9999), true},
	}
	for _, tt := range tests {
		if got := tt.level.Check(env, tt.v, Need{}); got != tt.want {
			t.Errorf("%s: Check = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestSizeAndScalarChecks(t *testing.T) {
	env := cval.NewEnv()
	sane := level(t, ChainSize, "sane")
	if !sane.Check(env, cval.Uint(4096), Need{}) {
		t.Error("4096 should be a sane size")
	}
	if sane.Check(env, cval.Uint(0xffffffff), Need{}) {
		t.Error("SIZE_MAX should not be a sane size")
	}
	if !ChainScalar.Levels[0].Check(env, cval.Int(-123456), Need{}) {
		t.Error("scalar chain must accept anything")
	}
}

func TestFuncPtrChecks(t *testing.T) {
	env := cval.NewEnv()
	a := env.RegisterText("cmp", func(e *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		return 0, nil
	})
	code := level(t, ChainFuncPtr, "code_ptr")
	if !code.Check(env, cval.Ptr(a), Need{}) {
		t.Error("registered function pointer rejected")
	}
	if code.Check(env, cval.Ptr(0x12345), Need{}) {
		t.Error("garbage function pointer accepted")
	}
}

func TestPtrOutChecks(t *testing.T) {
	env := cval.NewEnv()
	buf, _ := env.Img.StaticAlloc(8)
	nw := level(t, ChainPtrOut, "null_or_writable")
	if !nw.Check(env, cval.Ptr(0), Need{}) {
		t.Error("NULL must be legal for ptr_out")
	}
	if !nw.Check(env, cval.Ptr(buf), Need{Bytes: 8}) {
		t.Error("writable out pointer rejected")
	}
	if nw.Check(env, cval.Ptr(0xdead0000), Need{Bytes: 8}) {
		t.Error("wild out pointer accepted")
	}
}

func TestCStringLenHelper(t *testing.T) {
	env := cval.NewEnv()
	a, _ := env.Img.StaticString("abcd")
	n, ok := CStringLen(env, a)
	if !ok || n != 4 {
		t.Errorf("CStringLen = %d,%v; want 4,true", n, ok)
	}
	if _, ok := CStringLen(env, 0x70000000); ok {
		t.Error("CStringLen on unmapped reported ok")
	}
}
