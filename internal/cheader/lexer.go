// Package cheader parses the C prototype declarations that drive the
// HEALERS pipeline (Fig. 2: "parses the header files and manual pages from
// C libraries to generate the prototype information for all global
// functions").
//
// The accepted grammar is the practical subset that C library headers use
// for function declarations:
//
//	char *strcpy(char *dest, const char *src);  /* @dest out_buf src=src nul  @src in_str */
//	void *memcpy(void *dest, const void *src, size_t n); /* @dest out_buf len=n @src in_buf len=n @n size of=dest */
//	void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));
//	int printf(const char *format, ...); /* @format fmt */
//
// Trailing comments may carry HEALERS role annotations — the machine
// version of the man-page knowledge the paper's toolkit extracted: which
// parameter is an output buffer, which size bounds which buffer, which
// string's length determines the required capacity. Declarations without
// annotations get conservative defaults inferred from const-ness.
package cheader

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokStar
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokEllipsis
	tokLBracket
	tokRBracket
	tokNumber
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return t.text
}

// lexer tokenizes one declaration's text (comments already stripped).
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '*':
			l.emit(tokStar, "*")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == ';':
			l.emit(tokSemi, ";")
		case c == '[':
			l.emit(tokLBracket, "[")
		case c == ']':
			l.emit(tokRBracket, "]")
		case c == '.':
			if strings.HasPrefix(l.src[l.pos:], "...") {
				l.toks = append(l.toks, token{tokEllipsis, "...", l.pos})
				l.pos += 3
			} else {
				return nil, fmt.Errorf("cheader: stray '.' at offset %d in %q", l.pos, src)
			}
		case unicode.IsDigit(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == 'x' ||
				('a' <= l.src[l.pos] && l.src[l.pos] <= 'f') || ('A' <= l.src[l.pos] && l.src[l.pos] <= 'F')) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("cheader: unexpected character %q at offset %d in %q", c, l.pos, src)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
	l.pos += len(text)
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}
