package cheader

import (
	"fmt"
	"strings"

	"healers/internal/ctypes"
)

// typedefs maps the typedef names that appear in the supported headers to
// their underlying types. Opaque handle typedefs (FILE) map to void so
// that FILE* parses as an opaque pointer.
var typedefs = map[string]*ctypes.CType{
	"size_t":    ctypes.SizeT,
	"ssize_t":   ctypes.SSizeT,
	"wctrans_t": {Kind: ctypes.KindInt, TypedefName: "wctrans_t"},
	"wint_t":    {Kind: ctypes.KindInt, TypedefName: "wint_t"},
	"time_t":    {Kind: ctypes.KindLong, TypedefName: "time_t"},
	"clock_t":   {Kind: ctypes.KindLong, TypedefName: "clock_t"},
	"pid_t":     {Kind: ctypes.KindInt, TypedefName: "pid_t"},
	"uid_t":     {Kind: ctypes.KindInt, TypedefName: "uid_t"},
	"gid_t":     {Kind: ctypes.KindInt, TypedefName: "gid_t"},
	"mode_t":    {Kind: ctypes.KindUInt, TypedefName: "mode_t"},
	"off_t":     {Kind: ctypes.KindLong, TypedefName: "off_t"},
	"FILE":      {Kind: ctypes.KindVoid, TypedefName: "FILE"},
	"DIR":       {Kind: ctypes.KindVoid, TypedefName: "DIR"},
	"div_t":     {Kind: ctypes.KindLongLong, TypedefName: "div_t"},
	"intptr_t":  {Kind: ctypes.KindLong, TypedefName: "intptr_t"},
}

// parser consumes a token stream for one declaration.
type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) accept(k tokKind) bool {
	if p.toks[p.i].kind == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	if p.toks[p.i].kind == tokIdent && p.toks[p.i].text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("cheader: expected %s, got %q in %q", what, t, p.src)
	}
	return t, nil
}

// parseBaseType parses qualifiers and the base type name.
func (p *parser) parseBaseType() (*ctypes.CType, error) {
	isConst := false
	unsigned := false
	signed := false
	for {
		switch {
		case p.acceptIdent("const"):
			isConst = true
		case p.acceptIdent("unsigned"):
			unsigned = true
		case p.acceptIdent("signed"):
			signed = true
		case p.acceptIdent("struct"), p.acceptIdent("union"), p.acceptIdent("enum"):
			// Tagged types are opaque to the toolkit; eat the tag.
			tag, err := p.expect(tokIdent, "struct/union/enum tag")
			if err != nil {
				return nil, err
			}
			return &ctypes.CType{Kind: ctypes.KindVoid, Const: isConst, TypedefName: "struct " + tag.text}, nil
		default:
			goto base
		}
	}
base:
	t := p.peek()
	if t.kind != tokIdent {
		if unsigned || signed {
			return with(ctypes.UInt, isConst, unsigned), nil
		}
		return nil, fmt.Errorf("cheader: expected type name, got %q in %q", t, p.src)
	}
	p.next()
	switch t.text {
	case "void":
		return with(ctypes.Void, isConst, false), nil
	case "char":
		if unsigned || signed {
			return with(ctypes.Char, isConst, false), nil
		}
		return with(ctypes.Char, isConst, false), nil
	case "short":
		p.acceptIdent("int")
		return with(&ctypes.CType{Kind: ctypes.KindShort}, isConst, unsigned), nil
	case "int":
		return with(ctypes.Int, isConst, unsigned), nil
	case "long":
		if p.acceptIdent("long") {
			p.acceptIdent("int")
			return with(ctypes.LongLong, isConst, unsigned), nil
		}
		p.acceptIdent("int")
		return with(ctypes.Long, isConst, unsigned), nil
	case "float", "double":
		return with(ctypes.Double, isConst, false), nil
	default:
		if td, ok := typedefs[t.text]; ok {
			return with(td, isConst, false), nil
		}
		return nil, fmt.Errorf("cheader: unknown type %q in %q", t.text, p.src)
	}
}

// with applies qualifiers to a shared base type, copying when needed.
func with(base *ctypes.CType, isConst, unsigned bool) *ctypes.CType {
	if !isConst && !unsigned {
		return base
	}
	cp := *base
	cp.Const = cp.Const || isConst
	if unsigned && cp.Kind == ctypes.KindInt {
		cp.Kind = ctypes.KindUInt
	}
	return &cp
}

// parseDeclType parses base type plus pointer stars.
func (p *parser) parseDeclType() (*ctypes.CType, error) {
	t, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	for p.accept(tokStar) {
		t = ctypes.PtrTo(t)
		// "char * const p" — a const pointer; qualifier applies to the
		// pointer itself, which the toolkit does not distinguish.
		p.acceptIdent("const")
	}
	return t, nil
}

// parseParam parses one parameter, including function-pointer parameters
// of the form "ret (*name)(args)".
func (p *parser) parseParam() (ctypes.Param, error) {
	t, err := p.parseDeclType()
	if err != nil {
		return ctypes.Param{}, err
	}
	// Function pointer: next tokens are ( * name ) ( ... )
	if p.peek().kind == tokLParen {
		p.next()
		if _, err := p.expect(tokStar, "'*' in function-pointer parameter"); err != nil {
			return ctypes.Param{}, err
		}
		name := ""
		if p.peek().kind == tokIdent {
			name = p.next().text
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return ctypes.Param{}, err
		}
		if _, err := p.expect(tokLParen, "'(' of function-pointer args"); err != nil {
			return ctypes.Param{}, err
		}
		depth := 1
		for depth > 0 {
			switch p.next().kind {
			case tokLParen:
				depth++
			case tokRParen:
				depth--
			case tokEOF:
				return ctypes.Param{}, fmt.Errorf("cheader: unterminated function-pointer parameter in %q", p.src)
			}
		}
		return ctypes.NewParam(name, ctypes.FuncPtr, ctypes.RoleFuncPtr), nil
	}
	name := ""
	if p.peek().kind == tokIdent {
		name = p.next().text
	}
	// Array suffix decays to pointer.
	if p.accept(tokLBracket) {
		for p.peek().kind == tokNumber || p.peek().kind == tokIdent {
			p.next()
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return ctypes.Param{}, err
		}
		t = ctypes.PtrTo(t)
	}
	return ctypes.NewParam(name, t, ctypes.RoleNone), nil
}

// parseDecl parses a complete function declaration.
func parseDecl(src string) (*ctypes.Prototype, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	ret, err := p.parseDeclType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent, "function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	proto := &ctypes.Prototype{Name: nameTok.text, Ret: ret}
	if p.peek().kind == tokIdent && p.peek().text == "void" && p.toks[p.i+1].kind == tokRParen {
		p.next() // f(void): no parameters.
	} else {
		for p.peek().kind != tokRParen {
			if p.accept(tokEllipsis) {
				proto.Variadic = true
				break
			}
			prm, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			proto.Params = append(proto.Params, prm)
			if !p.accept(tokComma) {
				break
			}
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if !p.accept(tokSemi) && p.peek().kind != tokEOF {
		return nil, fmt.Errorf("cheader: trailing tokens after declaration in %q", src)
	}
	return proto, nil
}

// applyAnnotations resolves "@param role key=value..." directives.
func applyAnnotations(proto *ctypes.Prototype, ann string) error {
	idx := func(name string) (int, error) {
		for i, prm := range proto.Params {
			if prm.Name == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("cheader: %s: annotation references unknown parameter %q", proto.Name, name)
	}
	fields := strings.Fields(ann)
	cur := -1
	for _, f := range fields {
		if strings.HasPrefix(f, "@") {
			i, err := idx(f[1:])
			if err != nil {
				return err
			}
			cur = i
			continue
		}
		if cur < 0 {
			return fmt.Errorf("cheader: %s: annotation %q before any @param", proto.Name, f)
		}
		prm := &proto.Params[cur]
		switch {
		case f == "in_str":
			prm.Role = ctypes.RoleInStr
		case f == "in_buf":
			prm.Role = ctypes.RoleInBuf
		case f == "out_buf":
			prm.Role = ctypes.RoleOutBuf
		case f == "inout_buf":
			prm.Role = ctypes.RoleInOutBuf
		case f == "size":
			prm.Role = ctypes.RoleSize
		case f == "fd":
			prm.Role = ctypes.RoleFd
		case f == "fmt":
			prm.Role = ctypes.RoleFmt
		case f == "func_ptr":
			prm.Role = ctypes.RoleFuncPtr
		case f == "ptr_out":
			prm.Role = ctypes.RolePtrOut
		case f == "heap_ptr":
			prm.Role = ctypes.RoleHeapPtr
		case f == "nul":
			prm.NulTerm = true
		case f == "overlap_ok":
			prm.OverlapOK = true
		case strings.HasPrefix(f, "len="):
			i, err := idx(f[4:])
			if err != nil {
				return err
			}
			prm.LenBy = i
		case strings.HasPrefix(f, "src="):
			i, err := idx(f[4:])
			if err != nil {
				return err
			}
			prm.SrcStr = i
		case strings.HasPrefix(f, "of="):
			i, err := idx(f[3:])
			if err != nil {
				return err
			}
			prm.SizeOf = i
		default:
			return fmt.Errorf("cheader: %s: unknown annotation %q", proto.Name, f)
		}
	}
	return nil
}

// inferDefaultRoles fills roles for unannotated parameters from
// const-ness, the conservative inference the toolkit applies before
// fault-injection refines it.
func inferDefaultRoles(proto *ctypes.Prototype) {
	for i := range proto.Params {
		prm := &proto.Params[i]
		if prm.Role != ctypes.RoleNone {
			continue
		}
		t := prm.Type
		switch {
		case t.Kind == ctypes.KindFuncPtr:
			prm.Role = ctypes.RoleFuncPtr
		case t.IsPointer() && t.PointeeConst() && t.Elem.Kind == ctypes.KindChar:
			prm.Role = ctypes.RoleInStr
		case t.IsPointer() && t.PointeeConst():
			prm.Role = ctypes.RoleInBuf
		case t.IsPointer():
			prm.Role = ctypes.RoleOutBuf
		case t.Kind == ctypes.KindSizeT:
			prm.Role = ctypes.RoleSize
		default:
			prm.Role = ctypes.RoleNone
		}
	}
}

// ParseHeader parses a header file's text: a sequence of declarations,
// comments, and blank lines. name is recorded as the Header of each
// resulting prototype. Unparseable declarations are returned as errors
// with their line numbers; parsing continues past them so one exotic
// declaration does not hide a whole header.
func ParseHeader(name, text string) ([]*ctypes.Prototype, []error) {
	var protos []*ctypes.Prototype
	var errs []error

	type pending struct {
		decl string
		ann  string
		line int
	}
	var cur pending
	flush := func() {
		if strings.TrimSpace(cur.decl) == "" {
			cur = pending{}
			return
		}
		proto, err := parseDecl(cur.decl)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s:%d: %w", name, cur.line, err))
			cur = pending{}
			return
		}
		proto.Header = name
		if strings.TrimSpace(cur.ann) != "" {
			if err := applyAnnotations(proto, cur.ann); err != nil {
				errs = append(errs, fmt.Errorf("%s:%d: %w", name, cur.line, err))
			}
		}
		inferDefaultRoles(proto)
		protos = append(protos, proto)
		cur = pending{}
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line, comment := splitComment(raw)
		if ann := extractAnnotation(comment); ann != "" {
			cur.ann += " " + ann
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // preprocessor lines are ignored
		}
		if cur.decl == "" {
			cur.line = lineNo + 1
		}
		cur.decl += " " + line
		if strings.Contains(line, ";") {
			flush()
		}
	}
	flush()
	return protos, errs
}

// splitComment strips // and /* */ comments from a line, returning the
// code part and the concatenated comment text. Multi-line block comments
// are not supported in declarations (headers in this toolkit keep
// annotations on the declaration line).
func splitComment(line string) (code, comment string) {
	var b strings.Builder
	var c strings.Builder
	for i := 0; i < len(line); {
		if strings.HasPrefix(line[i:], "//") {
			c.WriteString(line[i+2:])
			break
		}
		if strings.HasPrefix(line[i:], "/*") {
			end := strings.Index(line[i+2:], "*/")
			if end < 0 {
				c.WriteString(line[i+2:])
				break
			}
			c.WriteString(line[i+2 : i+2+end])
			c.WriteByte(' ')
			i += end + 4
			continue
		}
		b.WriteByte(line[i])
		i++
	}
	return b.String(), c.String()
}

// extractAnnotation returns the annotation portion of a comment: the
// suffix starting at the first '@'.
func extractAnnotation(comment string) string {
	i := strings.Index(comment, "@")
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(comment[i:])
}

// ParsePrototype parses a single declaration string (with optional
// trailing annotation comment), a convenience for tests and tools.
func ParsePrototype(src string) (*ctypes.Prototype, error) {
	code, comment := splitComment(src)
	proto, err := parseDecl(code)
	if err != nil {
		return nil, err
	}
	if ann := extractAnnotation(comment); ann != "" {
		if err := applyAnnotations(proto, ann); err != nil {
			return nil, err
		}
	}
	inferDefaultRoles(proto)
	return proto, nil
}
