package cheader

import (
	"strings"
	"testing"

	"healers/internal/ctypes"
)

func mustParse(t *testing.T, src string) *ctypes.Prototype {
	t.Helper()
	p, err := ParsePrototype(src)
	if err != nil {
		t.Fatalf("ParsePrototype(%q): %v", src, err)
	}
	return p
}

func TestParseSimplePrototypes(t *testing.T) {
	tests := []struct {
		src      string
		wantName string
		wantStr  string
	}{
		{"size_t strlen(const char *s);", "strlen", "size_t strlen(const char* s)"},
		{"char *strcpy(char *dest, const char *src);", "strcpy", "char* strcpy(char* dest, const char* src)"},
		{"void *memcpy(void *dest, const void *src, size_t n);", "memcpy", "void* memcpy(void* dest, const void* src, size_t n)"},
		{"int abs(int j);", "abs", "int abs(int j)"},
		{"long labs(long j);", "labs", "long labs(long j)"},
		{"long long llabs(long long j);", "llabs", "long long llabs(long long j)"},
		{"int rand(void);", "rand", "int rand(void)"},
		{"void abort(void);", "abort", "void abort(void)"},
		{"unsigned int sleep(unsigned int seconds);", "sleep", "unsigned int sleep(unsigned int seconds)"},
		{"double atof(const char *nptr);", "atof", "double atof(const char* nptr)"},
		{"wctrans_t wctrans(const char *name);", "wctrans", "wctrans_t wctrans(const char* name)"},
		{"char **environ_list(void);", "environ_list", "char** environ_list(void)"},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		if p.Name != tt.wantName {
			t.Errorf("%q: name = %q, want %q", tt.src, p.Name, tt.wantName)
		}
		if got := p.String(); got != tt.wantStr {
			t.Errorf("%q: String() = %q, want %q", tt.src, got, tt.wantStr)
		}
	}
}

func TestParseVariadic(t *testing.T) {
	p := mustParse(t, "int printf(const char *format, ...);")
	if !p.Variadic {
		t.Error("printf not marked variadic")
	}
	if len(p.Params) != 1 {
		t.Fatalf("params = %d, want 1", len(p.Params))
	}
}

func TestParseFunctionPointerParam(t *testing.T) {
	p := mustParse(t, "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));")
	if len(p.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(p.Params))
	}
	cmp := p.Params[3]
	if cmp.Type.Kind != ctypes.KindFuncPtr {
		t.Errorf("compar type = %v, want func ptr", cmp.Type)
	}
	if cmp.Role != ctypes.RoleFuncPtr {
		t.Errorf("compar role = %v, want func_ptr", cmp.Role)
	}
	if cmp.Name != "compar" {
		t.Errorf("compar name = %q", cmp.Name)
	}
}

func TestParseArrayDecay(t *testing.T) {
	p := mustParse(t, "int stat_buf(char buf[256]);")
	if !p.Params[0].Type.IsPointer() {
		t.Errorf("array parameter did not decay to pointer: %v", p.Params[0].Type)
	}
}

func TestParseStructPointer(t *testing.T) {
	p := mustParse(t, "int statvfs(const char *path, struct statvfs_t *buf);")
	if len(p.Params) != 2 {
		t.Fatalf("params = %d", len(p.Params))
	}
	if !p.Params[1].Type.IsPointer() {
		t.Errorf("struct pointer parse failed: %v", p.Params[1].Type)
	}
}

func TestAnnotations(t *testing.T) {
	p := mustParse(t, "char *strcpy(char *dest, const char *src); // @dest out_buf src=src nul  @src in_str")
	d := p.Params[0]
	if d.Role != ctypes.RoleOutBuf {
		t.Errorf("dest role = %v", d.Role)
	}
	if d.SrcStr != 1 {
		t.Errorf("dest SrcStr = %d, want 1", d.SrcStr)
	}
	if !d.NulTerm {
		t.Error("dest NulTerm not set")
	}
	if p.Params[1].Role != ctypes.RoleInStr {
		t.Errorf("src role = %v", p.Params[1].Role)
	}

	p = mustParse(t, "void *memcpy(void *dest, const void *src, size_t n); /* @dest out_buf len=n @src in_buf len=n @n size of=dest */")
	if p.Params[0].LenBy != 2 || p.Params[1].LenBy != 2 {
		t.Errorf("LenBy = %d,%d; want 2,2", p.Params[0].LenBy, p.Params[1].LenBy)
	}
	if p.Params[2].Role != ctypes.RoleSize || p.Params[2].SizeOf != 0 {
		t.Errorf("n: role=%v SizeOf=%d", p.Params[2].Role, p.Params[2].SizeOf)
	}
}

func TestAnnotationErrors(t *testing.T) {
	tests := []string{
		"int f(int a); // @nosuch in_str",
		"int f(int a); // @a bogus_role",
		"int f(int a, char *b); // @b len=zz",
	}
	for _, src := range tests {
		if _, err := ParsePrototype(src); err == nil {
			t.Errorf("ParsePrototype(%q) succeeded, want error", src)
		}
	}
}

func TestDefaultRoleInference(t *testing.T) {
	tests := []struct {
		src  string
		i    int
		want ctypes.Role
	}{
		{"size_t strlen(const char *s);", 0, ctypes.RoleInStr},
		{"int memcmp_like(const void *a, const void *b);", 0, ctypes.RoleInBuf},
		{"char *strtok_like(char *s);", 0, ctypes.RoleOutBuf},
		{"void *malloc(size_t size);", 0, ctypes.RoleSize},
		{"int abs(int j);", 0, ctypes.RoleNone},
	}
	for _, tt := range tests {
		p := mustParse(t, tt.src)
		if got := p.Params[tt.i].Role; got != tt.want {
			t.Errorf("%q param %d role = %v, want %v", tt.src, tt.i, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"garbage $$$;",
		"int ;",
		"unknown_t f(int a);",
		"int f(int a",
		"int f(. a);",
	}
	for _, src := range tests {
		if _, err := ParsePrototype(src); err == nil {
			t.Errorf("ParsePrototype(%q) succeeded, want error", src)
		}
	}
}

const sampleHeader = `
/* string.h — simulated C library string functions */
#ifndef _STRING_H
#define _STRING_H

size_t strlen(const char *s);
char *strcpy(char *dest, const char *src); // @dest out_buf src=src nul @src in_str
char *strncpy(char *dest, const char *src,
              size_t n); // @dest out_buf len=n @src in_str @n size of=dest

/* not a declaration, just prose */

int printf(const char *format, ...); // @format fmt
this line does not parse;
void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));
#endif
`

func TestParseHeader(t *testing.T) {
	protos, errs := ParseHeader("string.h", sampleHeader)
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly 1 (the junk line)", errs)
	}
	if !strings.Contains(errs[0].Error(), "string.h:") {
		t.Errorf("error lacks file:line prefix: %v", errs[0])
	}
	names := make([]string, len(protos))
	for i, p := range protos {
		names[i] = p.Name
		if p.Header != "string.h" {
			t.Errorf("%s.Header = %q", p.Name, p.Header)
		}
	}
	want := []string{"strlen", "strcpy", "strncpy", "printf", "qsort"}
	if len(names) != len(want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("proto[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// Multi-line declaration picked up its annotation.
	var strncpy *ctypes.Prototype
	for _, p := range protos {
		if p.Name == "strncpy" {
			strncpy = p
		}
	}
	if strncpy.Params[0].LenBy != 2 {
		t.Errorf("strncpy dest LenBy = %d, want 2", strncpy.Params[0].LenBy)
	}
}

func TestSplitComment(t *testing.T) {
	tests := []struct {
		line        string
		wantCode    string
		wantComment string
	}{
		{"int f(void); // hello", "int f(void); ", " hello"},
		{"int f(void); /* a */ ", "int f(void);  ", " a  "},
		{"no comment", "no comment", ""},
		{"x /* unterminated", "x ", " unterminated"},
	}
	for _, tt := range tests {
		code, comment := splitComment(tt.line)
		if code != tt.wantCode || comment != tt.wantComment {
			t.Errorf("splitComment(%q) = %q,%q; want %q,%q", tt.line, code, comment, tt.wantCode, tt.wantComment)
		}
	}
}
