package proc

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// newSystem builds a system with the real simulated libc plus the given
// executables.
func newSystem(t *testing.T, exes ...*simelf.Executable) *simelf.System {
	t.Helper()
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	for _, e := range exes {
		if err := sys.AddExecutable(e); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestRunHelloWorld(t *testing.T) {
	hello := &simelf.Executable{
		Name:      "hello",
		Needed:    []string{clib.LibcSoname},
		Undefined: []string{"puts"},
		Main: func(c simelf.Caller, argv []string) int32 {
			s, _ := c.Env().Img.StaticString("hello from " + argv[0])
			p := c.(*Process)
			p.MustCall("puts", cval.Ptr(s))
			return 0
		},
	}
	sys := newSystem(t, hello)
	p, err := Start(sys, "hello")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() {
		t.Fatalf("crashed: %v", res.Fault)
	}
	if res.Status != 0 {
		t.Errorf("status = %d", res.Status)
	}
	if res.Stdout != "hello from hello\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if got := res.String(); got != "exit 0" {
		t.Errorf("String() = %q", got)
	}
}

func TestRunCrashingProgram(t *testing.T) {
	crasher := &simelf.Executable{
		Name:   "crasher",
		Needed: []string{clib.LibcSoname},
		Main: func(c simelf.Caller, argv []string) int32 {
			c.(*Process).MustCall("strlen", cval.Ptr(0)) // segfault
			return 0
		},
	}
	sys := newSystem(t, crasher)
	p, err := Start(sys, "crasher")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if !res.Crashed() || res.Fault.Kind != cmem.FaultSegv {
		t.Fatalf("result = %v, want SIGSEGV crash", res)
	}
	if !strings.Contains(res.String(), "SIGSEGV") {
		t.Errorf("String() = %q", res.String())
	}
}

func TestRunExitingProgram(t *testing.T) {
	exiter := &simelf.Executable{
		Name:   "exiter",
		Needed: []string{clib.LibcSoname},
		Main: func(c simelf.Caller, argv []string) int32 {
			p := c.(*Process)
			p.MustCall("exit", cval.Int(42))
			t.Error("control continued past exit()")
			return 0
		},
	}
	sys := newSystem(t, exiter)
	p, err := Start(sys, "exiter")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 42 {
		t.Errorf("result = %v, want exit 42", res)
	}
}

func TestStartOptions(t *testing.T) {
	reader := &simelf.Executable{
		Name:   "reader",
		Needed: []string{clib.LibcSoname},
		Main: func(c simelf.Caller, argv []string) int32 {
			p := c.(*Process)
			buf, _ := c.Env().Img.StaticAlloc(64)
			p.MustCall("gets", cval.Ptr(buf))
			name, _ := c.Env().Img.StaticString("GREETING")
			v := p.MustCall("getenv", cval.Ptr(name))
			if v.IsNull() {
				return 1
			}
			p.MustCall("puts", v)
			p.MustCall("puts", cval.Ptr(buf))
			return 0
		},
	}
	sys := newSystem(t, reader)
	p, err := Start(sys, "reader",
		WithStdin("from stdin\n"),
		WithEnvVar("GREETING", "hi"),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("result = %v", res)
	}
	if res.Stdout != "hi\nfrom stdin\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestCallUndefinedSymbol(t *testing.T) {
	app := &simelf.Executable{
		Name:   "app",
		Needed: []string{clib.LibcSoname},
		Main:   func(c simelf.Caller, argv []string) int32 { return 0 },
	}
	sys := newSystem(t, app)
	p, err := Start(sys, "app")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, f := p.Call("no_such_fn"); f == nil || f.Kind != cmem.FaultAbort {
		t.Errorf("call of undefined symbol: fault = %v, want SIGABRT", f)
	}
}

func TestPrivilegedExecutable(t *testing.T) {
	rootd := &simelf.Executable{
		Name:       "rootd",
		Needed:     []string{clib.LibcSoname},
		Privileged: true,
		Main: func(c simelf.Caller, argv []string) int32 {
			return c.(*Process).MustCall("getuid").Int32()
		},
	}
	sys := newSystem(t, rootd)
	p, err := Start(sys, "rootd")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if res := p.Run(); res.Status != 0 {
		t.Errorf("getuid in privileged process = %d, want 0", res.Status)
	}
}

func TestRunCall(t *testing.T) {
	app := &simelf.Executable{
		Name:   "probe",
		Needed: []string{clib.LibcSoname},
		Main:   func(c simelf.Caller, argv []string) int32 { return 0 },
	}
	sys := newSystem(t, app)
	p, err := Start(sys, "probe")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	s, _ := p.Env().Img.StaticString("abcd")
	v, res := p.RunCall("strlen", cval.Ptr(s))
	if res.Crashed() || v.Uint32() != 4 {
		t.Errorf("RunCall strlen = %v, %v", v, res)
	}
	p2, _ := Start(sys, "probe")
	_, res = p2.RunCall("strlen", cval.Ptr(0))
	if !res.Crashed() {
		t.Error("RunCall strlen(NULL) did not crash")
	}
	if p2.Calls != 1 {
		t.Errorf("Calls = %d, want 1", p2.Calls)
	}
}

func TestGoPanicPropagates(t *testing.T) {
	app := &simelf.Executable{
		Name:   "buggy",
		Needed: []string{clib.LibcSoname},
		Main: func(c simelf.Caller, argv []string) int32 {
			panic("a real Go bug")
		},
	}
	sys := newSystem(t, app)
	p, err := Start(sys, "buggy")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Go panic was swallowed by Run")
		}
	}()
	p.Run()
}

func TestChaosEnvVarArmsInjector(t *testing.T) {
	noop := &simelf.Executable{
		Name:   "noop",
		Needed: []string{clib.LibcSoname},
		Main:   func(c simelf.Caller, argv []string) int32 { return 0 },
	}
	sys := newSystem(t, noop)

	p, err := Start(sys, "noop", WithEnvVar(ChaosEnvVar, "0.5:42"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Env().Chaos == nil {
		t.Fatal("HEALERS_CHAOS did not arm the injector")
	}

	// Without the variable chaos stays off.
	p, err = Start(sys, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if p.Env().Chaos != nil {
		t.Error("chaos armed without HEALERS_CHAOS")
	}
	// A malformed spec refuses to start rather than silently running
	// un-injected.
	if _, err = Start(sys, "noop", WithEnvVar(ChaosEnvVar, "not-a-rate")); err == nil {
		t.Error("malformed HEALERS_CHAOS did not fail Start")
	}
	if _, err = Start(sys, "noop", WithEnvVar(ChaosEnvVar, "0.05:12x")); err == nil {
		t.Error("HEALERS_CHAOS with trailing seed garbage did not fail Start")
	}
}

func TestChaosInjectsThroughLibc(t *testing.T) {
	// rate 1.0: the very first libc call must fail with an injected fault.
	victim := &simelf.Executable{
		Name:      "victim",
		Needed:    []string{clib.LibcSoname},
		Undefined: []string{"strlen"},
		Main: func(c simelf.Caller, argv []string) int32 {
			s, _ := c.Env().Img.StaticString("boom")
			c.(*Process).MustCall("strlen", cval.Ptr(s))
			return 0
		},
	}
	sys := newSystem(t, victim)
	p, err := Start(sys, "victim", WithEnvVar(ChaosEnvVar, "1.0:7"))
	if err != nil {
		t.Fatal(err)
	}
	res := p.Run()
	if !res.Crashed() {
		t.Fatal("rate-1.0 chaos did not kill the unprotected victim")
	}
	if !strings.Contains(res.Fault.Detail, "chaos") {
		t.Errorf("fault detail = %q, want chaos marker", res.Fault.Detail)
	}
	if p.Env().Chaos.Injected != 1 {
		t.Errorf("Injected = %d, want 1", p.Env().Chaos.Injected)
	}
}
