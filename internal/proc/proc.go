// Package proc runs simulated processes: it couples a fresh memory image
// and call environment with a link map produced by the dynamic linker, and
// executes a program's main function with fault capture.
//
// A fault anywhere in the call chain terminates the process abnormally
// with the fault as its "signal" — the observable the HEALERS injector
// classifies, and the thing its wrappers exist to prevent.
package proc

import (
	"fmt"

	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/simelf"
)

// Result describes how a simulated process ended.
type Result struct {
	// Status is the exit status for normal termination.
	Status int32
	// Fault is non-nil when the process died on a signal.
	Fault *cmem.Fault
	// Stdout and Stderr are the captured console streams.
	Stdout string
	Stderr string
}

// Crashed reports whether the process terminated abnormally.
func (r Result) Crashed() bool { return r.Fault != nil }

// String summarizes the result the way a shell would.
func (r Result) String() string {
	if r.Fault != nil {
		return fmt.Sprintf("killed by %s (%s)", r.Fault.Kind, r.Fault.Error())
	}
	return fmt.Sprintf("exit %d", r.Status)
}

// Option configures process startup.
type Option func(*config)

type config struct {
	preloads []string
	stdin    string
	envVars  map[string]string
}

// WithPreloads sets the LD_PRELOAD-equivalent list of wrapper sonames,
// resolved before everything else.
func WithPreloads(sonames ...string) Option {
	return func(c *config) { c.preloads = append(c.preloads, sonames...) }
}

// WithStdin seeds the process's standard input.
func WithStdin(data string) Option {
	return func(c *config) { c.stdin = data }
}

// WithEnvVar sets an environment variable before main runs.
func WithEnvVar(name, value string) Option {
	return func(c *config) {
		if c.envVars == nil {
			c.envVars = make(map[string]string)
		}
		c.envVars[name] = value
	}
}

// Process is one live simulated process.
type Process struct {
	name string
	exe  *simelf.Executable
	env  *cval.Env
	lm   *dynlink.Linkmap

	// Calls counts dynamic symbol calls, for diagnostics and benches.
	Calls uint64
}

var _ simelf.Caller = (*Process)(nil)

// Start loads exeName from sys with the given options and returns the
// ready-to-run process. It is fork+execve up to (but not including) the
// jump to main.
func Start(sys *simelf.System, exeName string, opts ...Option) (*Process, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	lm, err := dynlink.Load(sys, exeName, cfg.preloads)
	if err != nil {
		return nil, err
	}
	exe := lm.Executable()
	env := cval.NewEnv()
	env.Privileged = exe.Privileged
	env.Stdin.WriteString(cfg.stdin)
	for k, v := range cfg.envVars {
		env.Setenv(k, v)
	}
	// Chaos mode: a HEALERS_CHAOS=RATE[:SEED] variable arms the
	// deterministic runtime fault injector on this process. A malformed
	// spec fails the start — running un-injected when the operator asked
	// for chaos would silently invalidate the experiment.
	if spec, ok := env.GetenvString(ChaosEnvVar); ok {
		chaos, err := cmem.ParseChaos(spec)
		if err != nil {
			return nil, fmt.Errorf("proc: %s: %w", ChaosEnvVar, err)
		}
		env.Chaos = chaos
	}
	return &Process{name: exeName, exe: exe, env: env, lm: lm}, nil
}

// ChaosEnvVar names the environment variable that arms chaos mode on a
// simulated process: "RATE" or "RATE:SEED", e.g. "0.02:1234".
const ChaosEnvVar = "HEALERS_CHAOS"

// Env returns the process's call environment.
func (p *Process) Env() *cval.Env { return p.env }

// Linkmap exposes the process's link map (for scan tooling).
func (p *Process) Linkmap() *dynlink.Linkmap { return p.lm }

// Call resolves symbol through the link map's search order and invokes
// it. This is the PLT: every library call an application makes funnels
// through here, so whatever object wins the search order intercepts the
// call.
func (p *Process) Call(symbol string, args ...cval.Value) (cval.Value, *cmem.Fault) {
	fn, ok := p.lm.Resolve(symbol)
	if !ok {
		return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "plt", Detail: fmt.Sprintf("undefined symbol %q", symbol)}
	}
	p.Calls++
	return fn(p.env, args)
}

// mainPanic carries a fault (or exit) out of MustCall back to Run.
type mainPanic struct {
	fault *cmem.Fault
	exit  bool
}

// MustCall is Call for program main functions: a fault unwinds straight
// out of main (the process dies on the signal), and a latched exit()
// stops execution, matching C control flow without threading error
// returns through every line of application code.
func (p *Process) MustCall(symbol string, args ...cval.Value) cval.Value {
	v, f := p.Call(symbol, args...)
	if f != nil {
		panic(mainPanic{fault: f})
	}
	if p.env.Exited {
		panic(mainPanic{exit: true})
	}
	return v
}

// Raise terminates the process with the given fault, unwinding out of the
// program's main.
func (p *Process) Raise(f *cmem.Fault) {
	panic(mainPanic{fault: f})
}

// Run executes the program's main with the given argv and returns how the
// process ended. Run may be called once per Process.
func (p *Process) Run(argv ...string) (res Result) {
	defer func() {
		res.Stdout = p.env.Stdout.String()
		res.Stderr = p.env.Stderr.String()
		if r := recover(); r != nil {
			mp, ok := r.(mainPanic)
			if !ok {
				panic(r) // a genuine Go bug; do not swallow it
			}
			if mp.fault != nil {
				res.Fault = mp.fault
				return
			}
			res.Status = p.env.Status
		}
	}()
	status := p.exe.Main(p, append([]string{p.name}, argv...))
	if p.env.Exited {
		return Result{Status: p.env.Status}
	}
	return Result{Status: status}
}

// RunCall is a convenience for probe-style execution: start main-less,
// call one symbol, report the result. The fault injector uses it through
// fresh processes.
func (p *Process) RunCall(symbol string, args ...cval.Value) (cval.Value, Result) {
	v, f := p.Call(symbol, args...)
	res := Result{
		Fault:  f,
		Stdout: p.env.Stdout.String(),
		Stderr: p.env.Stderr.String(),
	}
	if p.env.Exited {
		res.Status = p.env.Status
	}
	return v, res
}
