package collect

import (
	"errors"
	"net"
	"testing"
	"time"

	"healers/internal/ctypes"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

func startServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitCount polls until the server has stored n documents.
func waitCount(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("server stored %d docs, want %d", s.Count(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func sampleProfile(app string, calls uint64) *xmlrep.ProfileLog {
	st := gen.NewState("libhealers_prof.so")
	i := st.Index("strlen")
	st.CallCount[i] = calls
	return xmlrep.NewProfileLog("testhost", app, st)
}

func TestUploadAndQuery(t *testing.T) {
	s := startServer(t)
	if err := Upload(s.Addr(), sampleProfile("app1", 10)); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	waitCount(t, s, 1)
	docs := s.Docs(xmlrep.KindProfile)
	if len(docs) != 1 || docs[0].Kind != xmlrep.KindProfile {
		t.Fatalf("Docs = %+v", docs)
	}
	if docs[0].From == "" || docs[0].At.IsZero() {
		t.Error("document metadata missing")
	}
	logs, err := s.Profiles()
	if err != nil || len(logs) != 1 {
		t.Fatalf("Profiles = %v, %v", logs, err)
	}
	if logs[0].App != "app1" || logs[0].TotalCalls() != 10 {
		t.Errorf("profile = %+v", logs[0])
	}
}

func TestMultipleDocsOneSession(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Send(sampleProfile("app", uint64(i+1))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// A declaration document on the same session.
	decl := xmlrep.NewDeclarations("libc.so.6", []*ctypes.Prototype{{Name: "f", Ret: ctypes.Int}})
	if err := c.Send(decl); err != nil {
		t.Fatalf("Send decl: %v", err)
	}
	waitCount(t, s, 4)
	if n := len(s.Docs(xmlrep.KindProfile)); n != 3 {
		t.Errorf("profiles = %d, want 3", n)
	}
	if n := len(s.Docs(xmlrep.KindDeclarations)); n != 1 {
		t.Errorf("declarations = %d, want 1", n)
	}
	if n := len(s.Docs("")); n != 4 {
		t.Errorf("all docs = %d, want 4", n)
	}
}

func TestAggregateCalls(t *testing.T) {
	s := startServer(t)
	for i, app := range []string{"a", "b", "c"} {
		if err := Upload(s.Addr(), sampleProfile(app, uint64(10*(i+1)))); err != nil {
			t.Fatalf("Upload %s: %v", app, err)
		}
	}
	waitCount(t, s, 3)
	agg, err := s.AggregateCalls()
	if err != nil {
		t.Fatal(err)
	}
	if agg["strlen"] != 60 {
		t.Errorf("aggregate strlen = %d, want 60", agg["strlen"])
	}
}

func TestUnknownDocumentSkipped(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendRaw([]byte("<mystery/>")); err != nil {
		t.Fatalf("SendRaw: %v", err)
	}
	// A valid doc after the junk one must still land.
	if err := c.Send(sampleProfile("late", 1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitCount(t, s, 1)
	if n := s.Count(); n != 1 {
		t.Errorf("stored = %d, want 1 (junk skipped)", n)
	}
}

func TestBadFrameEndsSession(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A zero-length frame is a protocol violation.
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// The server must drop the session; a later upload on a fresh
	// session still works.
	if err := Upload(s.Addr(), sampleProfile("x", 1)); err != nil {
		t.Fatalf("Upload after bad frame: %v", err)
	}
	waitCount(t, s, 1)
}

func TestClientSizeLimit(t *testing.T) {
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendRaw(nil); err == nil {
		t.Error("empty document accepted")
	}
	if err := c.SendRaw(make([]byte, MaxDocSize+1)); err == nil {
		t.Error("oversized document accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if err := Upload("127.0.0.1:1", sampleProfile("x", 1)); err == nil {
		t.Error("Upload to dead port succeeded")
	}
}

func TestWriteDeadlineOnStalledCollector(t *testing.T) {
	// A "collector" that accepts the session but never reads a byte:
	// once the kernel socket buffers fill, writes block — the per-frame
	// deadline must surface a timeout instead of wedging the client.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stalled := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		stalled <- conn // hold the connection open, never read
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if conn := <-stalled; conn != nil {
			conn.Close()
		}
	}()
	c.WriteTimeout = 200 * time.Millisecond
	frame := make([]byte, 1<<20)
	start := time.Now()
	var sendErr error
	for i := 0; i < 64 && sendErr == nil; i++ {
		sendErr = c.SendRaw(frame)
	}
	if sendErr == nil {
		t.Fatal("64 MB into a non-reading collector succeeded")
	}
	var ne net.Error
	if !errors.As(sendErr, &ne) || !ne.Timeout() {
		t.Fatalf("SendRaw error = %v, want a timeout", sendErr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire, want well under 5s", elapsed)
	}
}

func TestSendAfterDeadlineRecovers(t *testing.T) {
	// The deadline is per frame: a successful send must clear it so a
	// later slow-but-fine send is not killed by a stale deadline.
	s := startServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WriteTimeout = 50 * time.Millisecond
	if err := c.Send(sampleProfile("a", 1)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	time.Sleep(120 * time.Millisecond) // well past the first deadline
	if err := c.Send(sampleProfile("b", 2)); err != nil {
		t.Fatalf("Send after idle: %v", err)
	}
	waitCount(t, s, 2)
}

func TestAcceptLoopBailsOnClosedListener(t *testing.T) {
	// A permanently broken listener (closed out from under the server,
	// without Server.Close being called) must end the accept loop
	// instead of hot-spinning on the dead fd.
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln.Close() // not s.Close: the closed channel stays open
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop still running 5s after listener death")
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := Dial(addr); err == nil {
		t.Error("Dial after Close succeeded")
	}
}

// containmentProfile builds a profile whose function carries the
// containment counters the recovery layer serializes.
func containmentProfile(app string) *xmlrep.ProfileLog {
	st := gen.NewState("libhealers_contain.so")
	i := st.Index("strlen")
	st.CallCount[i] = 20
	st.ContainedCount[i] = 5
	st.RetriedCount[i] = 3
	st.BreakerTrips[i] = 1
	return xmlrep.NewProfileLog("testhost", app, st)
}

// TestAggregateContainmentCounters: contained-fault, retry, and
// breaker-trip counters uploaded by two processes fold into the fleet
// aggregate alongside the older outcome counters.
func TestAggregateContainmentCounters(t *testing.T) {
	s := startServer(t)
	for _, app := range []string{"a", "b"} {
		if err := Upload(s.Addr(), containmentProfile(app)); err != nil {
			t.Fatalf("Upload %s: %v", app, err)
		}
	}
	waitCount(t, s, 2)
	agg := s.Aggregate()
	fa := agg.Funcs["strlen"]
	if fa == nil {
		t.Fatal("strlen missing from aggregate")
	}
	if fa.Contained != 10 || fa.Retried != 6 || fa.BreakerTrips != 2 {
		t.Errorf("containment counters = %d/%d/%d, want 10/6/2",
			fa.Contained, fa.Retried, fa.BreakerTrips)
	}
	if fa.Calls != 40 {
		t.Errorf("calls = %d, want 40", fa.Calls)
	}
	// Aggregate hands out a copy: mutating it must not corrupt the
	// server's streaming state.
	fa.Contained = 999
	if s.Aggregate().Funcs["strlen"].Contained != 10 {
		t.Error("Aggregate returned a live reference, not a clone")
	}
}

// TestZeroValueClientWriteDeadline is the stall-protection regression
// test: a zero-value Client{Addr: ...} — which bypasses NewClient and
// used to carry no timeouts at all — must still get the default write
// deadline at use time, so a collector that accepts the connection but
// never drains it cannot wedge the sender.
func TestZeroValueClientWriteDeadline(t *testing.T) {
	oldWrite := DefaultWriteTimeout
	DefaultWriteTimeout = 200 * time.Millisecond
	defer func() { DefaultWriteTimeout = oldWrite }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stalled := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		stalled <- conn // hold the connection open, never read
	}()

	c := &Client{Addr: ln.Addr().String()} // literally the zero value plus an address
	defer c.Close()
	defer func() {
		select {
		case conn := <-stalled:
			conn.Close()
		default:
		}
	}()
	frame := make([]byte, 1<<20)
	start := time.Now()
	var sendErr error
	for i := 0; i < 64 && sendErr == nil; i++ {
		sendErr = c.SendRaw(frame)
	}
	if sendErr == nil {
		t.Fatal("64 MB into a non-reading collector succeeded with a zero-value client")
	}
	var ne net.Error
	if !errors.As(sendErr, &ne) || !ne.Timeout() {
		t.Fatalf("SendRaw error = %v, want a timeout", sendErr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire; the zero value is still unprotected", elapsed)
	}
}

// TestCallRequestResponse covers the request/response extension: a
// handler-answered document comes back as one response frame on the same
// connection, declined documents fall through to the store, and the
// handled count lands in Stats.
func TestCallRequestResponse(t *testing.T) {
	ackFrame, err := xmlrep.Marshal(&xmlrep.WorkAck{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, WithHandler(func(from string, kind xmlrep.DocKind, data []byte) []byte {
		if kind == xmlrep.KindWorkRequest {
			return ackFrame
		}
		return nil // everything else stores as usual
	}))
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Call(&xmlrep.WorkRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if kind, _ := xmlrep.Kind(resp); kind != xmlrep.KindWorkAck {
		t.Fatalf("response = %q, want a work-ack", resp)
	}

	// A declined kind on the same session still lands in the store.
	if err := c.Send(sampleProfile("app", 5)); err != nil {
		t.Fatalf("Send after Call: %v", err)
	}
	waitCount(t, s, 1)
	if st := s.Stats(); st.RequestsHandled != 1 || st.DocsReceived != 1 {
		t.Errorf("stats = %+v, want 1 handled request and 1 stored doc", st)
	}
}

// sampleSequenceReport builds a small checksummed sequence-report
// document with the given per-outcome run counts.
func sampleSequenceReport(outcomes map[string]int) *xmlrep.SequenceReportDoc {
	doc := &xmlrep.SequenceReportDoc{
		Scenario:     "textutil-words",
		App:          "textutil",
		Calls:        9,
		GoldenDigest: "abc123",
	}
	for out, n := range outcomes {
		for i := 0; i < n; i++ {
			doc.Runs = append(doc.Runs, xmlrep.SeqRunXML{
				Steps:   []xmlrep.SeqStepXML{{Call: 3, Class: "crash", Func: "strdup"}},
				Outcome: out,
			})
		}
	}
	doc.Stamp()
	return doc
}

// TestSequenceReportIngestion: uploaded sequence reports are sniffed,
// checksum-validated, stored under their own kind, and their per-run
// outcomes feed the fleet aggregate's Outcomes map.
func TestSequenceReportIngestion(t *testing.T) {
	s := startServer(t)
	if err := Upload(s.Addr(), sampleSequenceReport(map[string]int{
		"crash": 3, "silent-corruption": 2, "ok": 1,
	})); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	waitCount(t, s, 1)
	if n := len(s.Docs(xmlrep.KindSequenceReport)); n != 1 {
		t.Fatalf("sequence-report docs = %d, want 1", n)
	}
	agg := s.Aggregate()
	for out, want := range map[string]uint64{"crash": 3, "silent-corruption": 2, "ok": 1} {
		if agg.Outcomes[out] != want {
			t.Errorf("Outcomes[%q] = %d, want %d", out, agg.Outcomes[out], want)
		}
	}
}

// TestSequenceReportChecksumRejected: a tampered sequence report is
// counted rejected and contributes nothing to the aggregate.
func TestSequenceReportChecksumRejected(t *testing.T) {
	s := startServer(t)
	doc := sampleSequenceReport(map[string]int{"crash": 1})
	doc.Runs[0].Outcome = "ok" // tamper after Stamp
	if err := Upload(s.Addr(), doc); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	// Rejection is asynchronous; poll the stats counter.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().DocsRejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tampered sequence report never rejected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := s.Count(); n != 0 {
		t.Errorf("stored %d docs, want 0", n)
	}
	if agg := s.Aggregate(); len(agg.Outcomes) != 0 {
		t.Errorf("tampered report reached the aggregate: %v", agg.Outcomes)
	}
}

// TestAggregateSilentCorruption: a profile's silent-corruption counters
// aggregate per function and feed the outcome totals.
func TestAggregateSilentCorruption(t *testing.T) {
	s := startServer(t)
	st := gen.NewState("libhealers_contain.so")
	i := st.Index("strdup")
	st.CallCount[i] = 5
	st.CorruptionCount[i] = 2
	if err := Upload(s.Addr(), xmlrep.NewProfileLog("h", "app", st)); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s, 1)
	agg := s.Aggregate()
	if got := agg.Funcs["strdup"].SilentCorrupt; got != 2 {
		t.Errorf("Funcs[strdup].SilentCorrupt = %d, want 2", got)
	}
	if got := agg.Outcomes["silent-corruption"]; got != 2 {
		t.Errorf("Outcomes[silent-corruption] = %d, want 2", got)
	}
}
