package collect

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// goldenPreObservability loads the profile document emitted before the
// observability fields existed (shared with internal/xmlrep's golden
// parse test).
func goldenPreObservability(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "xmlrep", "testdata", "profile_pre_observability.xml"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func waitDocs(t *testing.T, srv *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().DocsReceived < n {
		if time.Now().After(deadline) {
			t.Fatalf("server ingested %d docs, want %d", srv.Stats().DocsReceived, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAggregatePreObservabilityGolden proves the streaming ingest
// aggregation handles documents from before the observability layer: the
// totals must match the raw XML and the latency histogram must come back
// as "no data" (nil), never an all-zero histogram.
func TestAggregatePreObservabilityGolden(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendRaw(goldenPreObservability(t)); err != nil {
		t.Fatal(err)
	}
	waitDocs(t, srv, 1)

	agg := srv.Aggregate()
	for fn, wantCalls := range map[string]uint64{"strlen": 42, "open": 7, "strcpy": 5} {
		fa := agg.Funcs[fn]
		if fa == nil || fa.Calls != wantCalls {
			t.Fatalf("%s aggregate = %+v, want %d calls", fn, fa, wantCalls)
		}
		if fa.Hist != nil {
			t.Errorf("%s: pre-observability doc produced a latency histogram: %v", fn, fa.Hist)
		}
	}
	if agg.Funcs["open"].Errnos["ENOENT"] != 3 {
		t.Errorf("open errnos = %v, want ENOENT=3", agg.Funcs["open"].Errnos)
	}
	if agg.Funcs["strcpy"].Denied != 2 {
		t.Errorf("strcpy denied = %d, want 2", agg.Funcs["strcpy"].Denied)
	}
	if agg.Global["ENOENT"] != 3 {
		t.Errorf("global errnos = %v, want ENOENT=3", agg.Global)
	}
}

// TestSpoolerRoundTripsObservabilityDoc pins wire compatibility in the
// other direction: a new-style document carrying latency buckets and a
// call trace passes through the async spooler and the 4-byte
// length-prefixed wire protocol byte-for-byte unchanged, and still
// parses on arrival.
func TestSpoolerRoundTripsObservabilityDoc(t *testing.T) {
	st := gen.NewState("libhealers_prof.so")
	idx := st.Index("strlen")
	st.CallCount[idx] = 10
	st.ExecTime[idx] = 1234 * time.Nanosecond
	st.ExecHist[idx][3] = 4
	st.ExecHist[idx][9] = 6
	st.FuncErrno[idx][2] = 1 // ENOENT
	st.SetTraceCap(4)
	st.AddTrace(gen.TraceEntry{Func: "strlen", Args: "0x1000", Dur: 42 * time.Nanosecond, Outcome: "ok"})
	data, err := xmlrep.Marshal(xmlrep.NewProfileLog("h", "a", st))
	if err != nil {
		t.Fatal(err)
	}

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sp := NewSpooler(srv.Addr())
	defer sp.Close()
	if err := sp.SendRaw(data); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitDocs(t, srv, 1)

	docs := srv.Docs(xmlrep.KindProfile)
	if len(docs) != 1 {
		t.Fatalf("server holds %d profile docs, want 1", len(docs))
	}
	if !bytes.Equal(docs[0].Data, data) {
		t.Errorf("document mutated in flight:\nsent %q\ngot  %q", data, docs[0].Data)
	}
	prof, err := xmlrep.Unmarshal[xmlrep.ProfileLog](docs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if h := prof.Funcs[0].LatencyDense(); gen.HistTotal(h) != 10 {
		t.Errorf("latency samples = %d, want 10", gen.HistTotal(h))
	}
	if len(prof.TraceEntries()) != 1 {
		t.Errorf("trace = %+v, want 1 entry", prof.TraceEntries())
	}
}
