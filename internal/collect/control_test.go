package collect

import (
	"strings"
	"testing"

	"healers/internal/gen"
	"healers/internal/xmlrep"
)

func stampedPolicy(revision int, action string) *xmlrep.PolicyDoc {
	doc := &xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Func: "*", Class: "*", Action: action}},
	}
	doc.Stamp(revision)
	return doc
}

func controlServer(t *testing.T) (*ControlPlane, *Server) {
	t.Helper()
	cp := NewControlPlane()
	srv, err := Serve("127.0.0.1:0", WithHandler(cp.Handler()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return cp, srv
}

func TestSetPolicyAcceptance(t *testing.T) {
	cp := NewControlPlane()
	if err := cp.SetPolicy(stampedPolicy(1, "retry")); err != nil {
		t.Fatalf("first SetPolicy: %v", err)
	}
	if err := cp.SetPolicy(stampedPolicy(2, "deny")); err != nil {
		t.Fatalf("newer SetPolicy: %v", err)
	}
	doc, rev := cp.Policy()
	if rev != 2 || doc == nil || doc.Rules[0].Action != "deny" {
		t.Fatalf("Policy() = %v rev %d, want the revision-2 deny doc", doc, rev)
	}

	// Rejections: stale, unstamped, corrupted, invalid.
	unstamped := stampedPolicy(3, "retry")
	unstamped.Checksum = ""
	corrupted := stampedPolicy(3, "retry")
	corrupted.Checksum = strings.Repeat("a", 64)
	badAction := stampedPolicy(3, "explode")
	for name, doc := range map[string]*xmlrep.PolicyDoc{
		"stale":      stampedPolicy(2, "retry"),
		"unstamped":  unstamped,
		"corrupted":  corrupted,
		"bad action": badAction,
	} {
		if err := cp.SetPolicy(doc); err == nil {
			t.Errorf("%s document accepted", name)
		}
	}
	st := cp.Stats()
	if st.Revision != 2 || st.Pushes != 2 || st.Rejected != 4 {
		t.Errorf("stats = %+v, want revision 2, 2 pushes, 4 rejections", st)
	}
}

// TestPolicyWireExchange drives the full wire path: push a stamped
// document with PushPolicy, poll it back with FetchPolicy, and check
// the not-modified fast path for a current subscriber.
func TestPolicyWireExchange(t *testing.T) {
	cp, srv := controlServer(t)

	ack, err := PushPolicy(srv.Addr(), stampedPolicy(1, "retry"))
	if err != nil || !ack.OK || ack.Revision != 1 {
		t.Fatalf("PushPolicy = %+v, %v", ack, err)
	}

	c := NewClient(srv.Addr())
	defer c.Close()

	// Behind: the full document comes back.
	doc, err := FetchPolicy(c, "worker-1", 0)
	if err != nil || doc == nil || doc.Revision != 1 {
		t.Fatalf("FetchPolicy(behind) = %v, %v", doc, err)
	}
	if err := doc.Validate(); err != nil {
		t.Fatalf("served document does not validate: %v", err)
	}
	// Current: (nil, nil), the quiet steady state.
	if doc, err := FetchPolicy(c, "worker-1", 1); doc != nil || err != nil {
		t.Fatalf("FetchPolicy(current) = %v, %v, want nil, nil", doc, err)
	}
	st := cp.Stats()
	if st.Served != 1 || st.NotModified != 1 {
		t.Errorf("stats = %+v, want 1 served, 1 not-modified", st)
	}
}

func TestPolicyPushRejectedOverWire(t *testing.T) {
	cp, srv := controlServer(t)
	if err := cp.SetPolicy(stampedPolicy(5, "deny")); err != nil {
		t.Fatal(err)
	}
	ack, err := PushPolicy(srv.Addr(), stampedPolicy(3, "retry"))
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if ack.OK || !strings.Contains(ack.Reason, "stale") || ack.Revision != 5 {
		t.Errorf("ack = %+v, want a stale refusal carrying revision 5", ack)
	}
}

func TestFetchPolicyNoPolicyLoaded(t *testing.T) {
	_, srv := controlServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	if doc, err := FetchPolicy(c, "worker-1", 0); doc != nil || err != nil {
		t.Fatalf("FetchPolicy(empty control plane) = %v, %v, want nil, nil", doc, err)
	}
}

// TestControlPlaneSharesServerWithIngest proves the handler chain: one
// server takes profile uploads and policy traffic on the same port.
func TestControlPlaneSharesServerWithIngest(t *testing.T) {
	cp, srv := controlServer(t)
	if err := cp.SetPolicy(stampedPolicy(1, "retry")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.Addr())
	defer c.Close()

	profile := &xmlrep.ProfileLog{
		Host: "h", App: "a", Wrapper: "w",
		Funcs: []xmlrep.FuncProfile{{Name: "malloc", Calls: 7}},
	}
	if err := c.Send(profile); err != nil {
		t.Fatalf("profile upload: %v", err)
	}
	doc, err := FetchPolicy(c, "worker-1", 0)
	if err != nil || doc == nil {
		t.Fatalf("policy fetch on the ingest connection: %v, %v", doc, err)
	}
	waitCount(t, srv, 1)
	if agg := srv.Aggregate(); agg.Funcs["malloc"] == nil || agg.Funcs["malloc"].Calls != 7 {
		t.Errorf("profile not aggregated alongside policy traffic: %+v", agg.Funcs)
	}
}

// TestAggregateContainedByClass checks the per-class containment
// counters merge at ingest — the evidence the adaptive-derivation pass
// escalates on.
func TestAggregateContainedByClass(t *testing.T) {
	_, srv := controlServer(t)
	c := NewClient(srv.Addr())
	defer c.Close()
	for i := 0; i < 2; i++ {
		profile := &xmlrep.ProfileLog{
			Host: "h", App: "a", Wrapper: "w",
			Funcs: []xmlrep.FuncProfile{{
				Name: "malloc", Calls: 10, Contained: 3,
				ContainedBy: []xmlrep.ClassCount{
					{Class: "crash", Count: 2},
					{Class: "hang", Count: 1},
				},
			}},
		}
		if err := c.Send(profile); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, srv, 2)
	fa := srv.Aggregate().Funcs["malloc"]
	if fa == nil {
		t.Fatal("malloc missing from aggregate")
	}
	if got := fa.ContainedBy[gen.ClassCrash]; got != 4 {
		t.Errorf("crash contained = %d, want 4", got)
	}
	if got := fa.ContainedBy[gen.ClassHang]; got != 2 {
		t.Errorf("hang contained = %d, want 2", got)
	}
}
