// Control plane: the collection server doubles as the distribution
// point for recovery-policy documents. Containment processes poll it
// with healers-policy-request frames and hot-reload whatever newer
// revision it serves; operators (and the -derive loop) push stamped
// healers-policy documents at it and get a healers-policy-ack back.
// Both exchanges ride the ordinary collect framing via WithHandler, so
// the collector stays one process, one port, one wire protocol.

package collect

import (
	"fmt"
	"sync"

	"healers/internal/xmlrep"
)

// ControlPlane holds the collector's current recovery-policy document
// and answers the policy wire exchanges. Register its Handler on a
// Server (collect.Serve(addr, collect.WithHandler(cp.Handler()))) to
// turn that server into a policy distribution point; SetPolicy is also
// called directly by the adaptive-derivation loop when it escalates.
type ControlPlane struct {
	mu    sync.Mutex
	doc   *xmlrep.PolicyDoc
	data  []byte // marshalled form of doc, served verbatim to requesters
	stats ControlStats
}

// ControlStats are the control plane's counters: the current policy
// revision, push outcomes, and how many policy documents it has served
// to polling subscribers.
type ControlStats struct {
	// Revision is the current policy revision (0 = no policy loaded).
	Revision int
	// Pushes counts accepted policy-document pushes (SetPolicy
	// successes, wire and local alike).
	Pushes uint64
	// Rejected counts refused pushes: malformed, unstamped, corrupted,
	// or stale-revision documents. Each left the previous policy in
	// force.
	Rejected uint64
	// Served counts full policy documents sent to requesters whose
	// revision was behind.
	Served uint64
	// NotModified counts requests answered with an already-current ack
	// instead of a document — the steady state of an idle fleet poll.
	NotModified uint64
	// Escalations counts rules tightened by the adaptive-derivation
	// loop (NoteEscalations).
	Escalations uint64
}

// NewControlPlane returns an empty control plane: no policy loaded,
// requesters are told revision 0 until SetPolicy succeeds.
func NewControlPlane() *ControlPlane {
	return &ControlPlane{}
}

// SetPolicy validates and adopts a policy document as the current
// revision. The document must validate structurally, must be stamped
// (revision >= 1 and a matching checksum), and must be strictly newer
// than the current revision; otherwise the previous policy stays in
// force and the rejection is counted. The adopted document is treated
// as immutable — callers must not mutate it afterwards.
func (cp *ControlPlane) SetPolicy(doc *xmlrep.PolicyDoc) error {
	reject := func(err error) error {
		cp.mu.Lock()
		cp.stats.Rejected++
		cp.mu.Unlock()
		return err
	}
	if err := doc.Validate(); err != nil {
		return reject(fmt.Errorf("collect: control plane: %w", err))
	}
	if doc.Revision < 1 || doc.Checksum == "" {
		return reject(fmt.Errorf("collect: control plane: document is unstamped (revision %d); stamp it first", doc.Revision))
	}
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return reject(fmt.Errorf("collect: control plane: %w", err))
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cur := cp.stats.Revision; doc.Revision <= cur {
		cp.stats.Rejected++
		return fmt.Errorf("collect: control plane: stale revision %d (serving %d)", doc.Revision, cur)
	}
	cp.doc = doc
	cp.data = data
	cp.stats.Revision = doc.Revision
	cp.stats.Pushes++
	return nil
}

// Policy returns the current policy document and its revision (nil, 0
// when none is loaded). The document is shared and must be treated as
// read-only.
func (cp *ControlPlane) Policy() (*xmlrep.PolicyDoc, int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.doc, cp.stats.Revision
}

// Stats snapshots the control plane's counters.
func (cp *ControlPlane) Stats() ControlStats {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.stats
}

// NoteEscalations counts n escalation decisions made by an adaptive
// derivation pass, for /metrics.
func (cp *ControlPlane) NoteEscalations(n int) {
	cp.mu.Lock()
	cp.stats.Escalations += uint64(n)
	cp.mu.Unlock()
}

// Handler returns the wire handler implementing the policy exchanges;
// register it with collect.WithHandler. It answers two kinds —
// KindPolicy (a push: adopt or refuse, reply with a PolicyAck) and
// KindPolicyRequest (a poll: reply with the full document when the
// requester is behind, an already-current ack otherwise) — and declines
// everything else, so profile uploads and coordinator traffic pass
// through untouched. Policy pushers must use Client.Call (the exchange
// has a response frame); a fire-and-forget Send would leave the ack
// unread on the socket.
func (cp *ControlPlane) Handler() Handler {
	return func(from string, kind xmlrep.DocKind, data []byte) []byte {
		switch kind {
		case xmlrep.KindPolicy:
			return cp.handlePush(data)
		case xmlrep.KindPolicyRequest:
			return cp.handleRequest(data)
		default:
			return nil
		}
	}
}

// handlePush adopts or refuses a pushed policy document and renders the
// ack either way.
func (cp *ControlPlane) handlePush(data []byte) []byte {
	ack := xmlrep.PolicyAck{OK: true}
	doc, err := xmlrep.Unmarshal[xmlrep.PolicyDoc](data)
	if err == nil {
		err = cp.SetPolicy(doc)
	} else {
		cp.mu.Lock()
		cp.stats.Rejected++
		cp.mu.Unlock()
	}
	if err != nil {
		ack.OK = false
		ack.Reason = err.Error()
	}
	cp.mu.Lock()
	ack.Revision = cp.stats.Revision
	cp.mu.Unlock()
	return mustMarshalAck(&ack)
}

// handleRequest serves the current document to a requester that is
// behind, or an ack telling it it is current.
func (cp *ControlPlane) handleRequest(data []byte) []byte {
	req, err := xmlrep.Unmarshal[xmlrep.PolicyRequest](data)
	if err != nil {
		return mustMarshalAck(&xmlrep.PolicyAck{OK: false, Reason: "malformed policy request"})
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.doc == nil || req.HaveRevision >= cp.stats.Revision {
		cp.stats.NotModified++
		return mustMarshalAck(&xmlrep.PolicyAck{OK: true, Revision: cp.stats.Revision})
	}
	cp.stats.Served++
	return cp.data
}

// mustMarshalAck renders a PolicyAck; the struct has no failure mode
// under xml.Marshal, so an error here is a programming bug.
func mustMarshalAck(ack *xmlrep.PolicyAck) []byte {
	data, err := xmlrep.Marshal(ack)
	if err != nil {
		panic(fmt.Sprintf("collect: marshal policy ack: %v", err))
	}
	return data
}

// FetchPolicy asks a control plane for a policy document newer than
// haveRev, identifying as client. It returns (nil, nil) when the
// control plane's policy is not newer (the ack answer), the document
// when it is, and an error for transport failures, refusals, or
// unparseable answers. Wrap it in a closure to make a
// wrappers.PolicySource:
//
//	engine.Subscribe(func() (*xmlrep.PolicyDoc, error) {
//		return collect.FetchPolicy(c, "worker-3", engine.Revision())
//	}, interval, nil)
func FetchPolicy(c *Client, client string, haveRev int) (*xmlrep.PolicyDoc, error) {
	resp, err := c.Call(&xmlrep.PolicyRequest{Client: client, HaveRevision: haveRev})
	if err != nil {
		return nil, err
	}
	kind, err := xmlrep.Kind(resp)
	if err != nil {
		return nil, fmt.Errorf("collect: policy fetch: %w", err)
	}
	switch kind {
	case xmlrep.KindPolicy:
		return xmlrep.Unmarshal[xmlrep.PolicyDoc](resp)
	case xmlrep.KindPolicyAck:
		ack, err := xmlrep.Unmarshal[xmlrep.PolicyAck](resp)
		if err != nil {
			return nil, err
		}
		if !ack.OK {
			return nil, fmt.Errorf("collect: policy fetch refused: %s", ack.Reason)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("collect: policy fetch: unexpected %s answer", kind)
	}
}

// PushPolicy uploads a stamped policy document to a control plane at
// addr in a one-shot connection and returns its ack. A transport-level
// success with ack.OK false means the control plane refused the
// document (the ack's Reason says why) — the caller decides whether
// that is fatal.
func PushPolicy(addr string, doc *xmlrep.PolicyDoc) (*xmlrep.PolicyAck, error) {
	c := &Client{Addr: addr}
	defer c.Close()
	resp, err := c.Call(doc)
	if err != nil {
		return nil, err
	}
	ack, err := xmlrep.Unmarshal[xmlrep.PolicyAck](resp)
	if err != nil {
		return nil, fmt.Errorf("collect: policy push: unexpected answer: %w", err)
	}
	return ack, nil
}
