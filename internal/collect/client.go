package collect

import (
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"healers/internal/xmlrep"
)

// Client default timings; override via the exported fields.
const (
	// DefaultDialTimeout bounds connection establishment and, by
	// default, each frame write.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRetryBase is the first retry delay.
	DefaultRetryBase = 50 * time.Millisecond
	// DefaultRetryCap caps the exponential retry delay.
	DefaultRetryCap = 2 * time.Second
)

// Client uploads documents to a collection server. It is persistent:
// the connection is dialed lazily, broken connections are discarded, and
// with RetryMax > 0 each send re-dials and retries under exponential
// backoff with jitter — a briefly-restarting collector costs a delay, not
// a lost document. A Client is not safe for concurrent use; Spooler
// provides the concurrent, asynchronous layer on top.
type Client struct {
	addr string
	conn net.Conn

	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write. A wrapped process flushes
	// its profile from the exit path; without a deadline a stalled
	// collector would block that process's exit forever. Zero disables
	// the deadline.
	WriteTimeout time.Duration
	// RetryMax is how many times a failed send is retried (re-dialing
	// as needed) before the error is returned. Zero fails fast.
	RetryMax int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries; each delay gets up to 50% random jitter so a restarted
	// collector is not hit by its whole fleet at once.
	RetryBase time.Duration
	RetryCap  time.Duration
}

// NewClient returns a persistent client for addr. No connection is made
// until the first send.
func NewClient(addr string) *Client {
	return &Client{
		addr:         addr,
		DialTimeout:  DefaultDialTimeout,
		WriteTimeout: DefaultDialTimeout,
		RetryBase:    DefaultRetryBase,
		RetryCap:     DefaultRetryCap,
	}
}

// Dial connects to a collection server, failing fast if it is
// unreachable.
func Dial(addr string) (*Client, error) {
	c := NewClient(addr)
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.DialTimeout)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	return nil
}

// Send marshals and uploads one document.
func (c *Client) Send(doc any) error {
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return err
	}
	return c.SendRaw(data)
}

// SendRaw uploads pre-marshalled XML, retrying per the Retry fields.
func (c *Client) SendRaw(data []byte) error {
	if len(data) == 0 || len(data) > MaxDocSize {
		// No amount of retrying fixes an invalid document.
		return fmt.Errorf("collect: bad document size %d", len(data))
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = DefaultRetryBase
	}
	maxBackoff := c.RetryCap
	if maxBackoff <= 0 {
		maxBackoff = DefaultRetryCap
	}
	for attempt := 0; ; attempt++ {
		err := c.sendOnce(data)
		if err == nil || attempt >= c.RetryMax {
			return err
		}
		time.Sleep(withJitter(backoff))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// sendOnce is one dial-if-needed, write-one-frame attempt. The write runs
// under WriteTimeout: a collector that accepts the connection but stops
// draining it produces a timeout error here instead of wedging the
// caller. Any error discards the connection so the next attempt re-dials.
func (c *Client) sendOnce(data []byte) error {
	if err := c.ensureConn(); err != nil {
		return err
	}
	if c.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.WriteTimeout)); err != nil {
			c.reset()
			return fmt.Errorf("collect: setting write deadline: %w", err)
		}
	}
	err := writeFrame(c.conn, data)
	if err != nil {
		c.reset()
		return err
	}
	if c.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Time{})
	}
	return nil
}

// reset discards a (presumed broken) connection.
func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// withJitter returns d plus up to 50% random jitter.
func withJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + rand.N(d/2+1)
}

// Close ends the upload session.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Upload is the one-shot convenience: dial, send, close.
func Upload(addr string, doc any) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(doc); err != nil {
		return err
	}
	return nil
}
