package collect

import (
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"healers/internal/xmlrep"
)

// Client default timings; override via the exported fields. They are
// variables, not constants, so tests can shrink them — production code
// should treat them as constants.
var (
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultWriteTimeout bounds each frame write.
	DefaultWriteTimeout = 5 * time.Second
	// DefaultCallTimeout bounds reading a Call response frame.
	DefaultCallTimeout = 10 * time.Second
)

const (
	// DefaultRetryBase is the first retry delay.
	DefaultRetryBase = 50 * time.Millisecond
	// DefaultRetryCap caps the exponential retry delay.
	DefaultRetryCap = 2 * time.Second
)

// Client uploads documents to a collection server. It is persistent:
// the connection is dialed lazily, broken connections are discarded, and
// with RetryMax > 0 each send re-dials and retries under exponential
// backoff with jitter — a briefly-restarting collector costs a delay, not
// a lost document. A Client is not safe for concurrent use; Spooler
// provides the concurrent, asynchronous layer on top.
//
// The zero value plus an Addr is usable: every timing field falls back
// to its package default at use time, so a literal Client{Addr: a} gets
// the same stall protection as one built by NewClient. Set a field
// negative to disable that deadline explicitly.
type Client struct {
	// Addr is the collector's host:port.
	Addr string

	conn net.Conn

	// DialTimeout bounds connection establishment. Zero means
	// DefaultDialTimeout; negative disables the bound.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write. A wrapped process flushes
	// its profile from the exit path; without a deadline a stalled
	// collector would block that process's exit forever. Zero means
	// DefaultWriteTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// ReadTimeout bounds reading one Call response frame. Zero means
	// DefaultCallTimeout; negative disables the deadline.
	ReadTimeout time.Duration
	// RetryMax is how many times a failed send is retried (re-dialing
	// as needed) before the error is returned. Zero fails fast.
	RetryMax int
	// RetryBase and RetryCap shape the exponential backoff between
	// retries; each delay gets up to 50% random jitter so a restarted
	// collector is not hit by its whole fleet at once.
	RetryBase time.Duration
	RetryCap  time.Duration
}

// NewClient returns a persistent client for addr. No connection is made
// until the first send.
func NewClient(addr string) *Client {
	return &Client{
		Addr:      addr,
		RetryBase: DefaultRetryBase,
		RetryCap:  DefaultRetryCap,
	}
}

// Dial connects to a collection server, failing fast if it is
// unreachable.
func Dial(addr string) (*Client, error) {
	c := NewClient(addr)
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// effective maps a deadline field to its use-time value: zero falls back
// to the default, negative disables (returns 0). Applying defaults here
// instead of in NewClient is what keeps a zero-value Client safe — the
// exact hazard WriteTimeout's comment warns about.
func effective(field, def time.Duration) time.Duration {
	switch {
	case field > 0:
		return field
	case field < 0:
		return 0
	default:
		return def
	}
}

func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.Addr, effective(c.DialTimeout, DefaultDialTimeout))
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", c.Addr, err)
	}
	c.conn = conn
	return nil
}

// Send marshals and uploads one document.
func (c *Client) Send(doc any) error {
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return err
	}
	return c.SendRaw(data)
}

// SendRaw uploads pre-marshalled XML, retrying per the Retry fields.
func (c *Client) SendRaw(data []byte) error {
	_, err := c.exchange(data, false)
	return err
}

// Call sends one document and reads the server's one-frame response —
// the request/response shape of the distributed-campaign exchanges. It
// retries like SendRaw; callers must keep requests idempotent, since a
// response lost to the network means the request is replayed.
func (c *Client) Call(doc any) ([]byte, error) {
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return nil, err
	}
	return c.exchange(data, true)
}

// exchange runs the retry loop around one send (and optional response
// read).
func (c *Client) exchange(data []byte, wantResp bool) ([]byte, error) {
	if len(data) == 0 || len(data) > MaxDocSize {
		// No amount of retrying fixes an invalid document.
		return nil, fmt.Errorf("collect: bad document size %d", len(data))
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = DefaultRetryBase
	}
	maxBackoff := c.RetryCap
	if maxBackoff <= 0 {
		maxBackoff = DefaultRetryCap
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.exchangeOnce(data, wantResp)
		if err == nil || attempt >= c.RetryMax {
			return resp, err
		}
		time.Sleep(withJitter(backoff))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// exchangeOnce is one dial-if-needed, write-one-frame attempt, plus the
// response read when the caller wants one. The write runs under the
// effective WriteTimeout: a collector that accepts the connection but
// stops draining it produces a timeout error here instead of wedging the
// caller. Any error discards the connection so the next attempt re-dials.
func (c *Client) exchangeOnce(data []byte, wantResp bool) ([]byte, error) {
	if err := c.ensureConn(); err != nil {
		return nil, err
	}
	if wt := effective(c.WriteTimeout, DefaultWriteTimeout); wt > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(wt)); err != nil {
			c.reset()
			return nil, fmt.Errorf("collect: setting write deadline: %w", err)
		}
	}
	if err := writeFrame(c.conn, data); err != nil {
		c.reset()
		return nil, err
	}
	c.conn.SetWriteDeadline(time.Time{})
	if !wantResp {
		return nil, nil
	}
	if rt := effective(c.ReadTimeout, DefaultCallTimeout); rt > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(rt)); err != nil {
			c.reset()
			return nil, fmt.Errorf("collect: setting read deadline: %w", err)
		}
	}
	resp, err := ReadFrame(c.conn)
	if err != nil {
		c.reset()
		return nil, fmt.Errorf("collect: reading response: %w", err)
	}
	c.conn.SetReadDeadline(time.Time{})
	return resp, nil
}

// sendOnce is one write-only attempt — the Spooler's drain primitive,
// which runs its own retry/backoff policy around it.
func (c *Client) sendOnce(data []byte) error {
	_, err := c.exchangeOnce(data, false)
	return err
}

// reset discards a (presumed broken) connection.
func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// withJitter returns d plus up to 50% random jitter.
func withJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d + rand.N(d/2+1)
}

// Close ends the upload session.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Upload is the one-shot convenience: dial, send, close.
func Upload(addr string, doc any) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(doc); err != nil {
		return err
	}
	return nil
}
