package collect

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"healers/internal/xmlrep"
)

// regFunc builds a distinct cache entry keyed by i, padded so byte
// budgets have something to measure.
func regFunc(i int) *xmlrep.CacheFuncXML {
	return &xmlrep.CacheFuncXML{
		Name:   fmt.Sprintf("func_%03d", i),
		Key:    fmt.Sprintf("%064d", i),
		Config: "cafe0123",
		Probes: 4, Failures: 1,
		Results: []xmlrep.CacheProbeXML{
			{Probe: "null", Param: 0, Outcome: "abort"},
			{Probe: "unaligned", Param: 1, Outcome: "ok"},
		},
	}
}

func TestRegistryPutGetRoundTrip(t *testing.T) {
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fn := regFunc(1)
	stored, err := r.Put("v1", fn)
	if err != nil || !stored {
		t.Fatalf("Put = %v, %v; want stored", stored, err)
	}
	// Second put of the same key: known, not stored.
	if stored, err = r.Put("v1", fn); err != nil || stored {
		t.Fatalf("duplicate Put = %v, %v; want known", stored, err)
	}
	ans := r.Get([]string{fn.Key, "absent"}, false)
	if len(ans.Funcs) != 1 || ans.Funcs[0].Name != "func_001" {
		t.Fatalf("Get entries = %+v", ans.Funcs)
	}
	if ans.Funcs[0].Sum != xmlrep.EntrySum(&ans.Funcs[0].CacheFuncXML) {
		t.Error("served entry's integrity sum does not match its content")
	}
	if strings.Join(ans.Found, ",") != fn.Key || strings.Join(ans.Missing, ",") != "absent" {
		t.Errorf("Found/Missing = %v / %v", ans.Found, ans.Missing)
	}
	// Presence probe: keys only, no bodies.
	has := r.Get([]string{fn.Key}, true)
	if len(has.Funcs) != 0 || len(has.Found) != 1 {
		t.Errorf("has-only answer carried bodies: %+v", has)
	}
	st := r.Stats()
	if st.Entries != 1 || st.Puts != 1 || st.Known != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRegistryPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Put("v1", regFunc(i)); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ans := r2.Get([]string{regFunc(1).Key}, false)
	if len(ans.Funcs) != 1 || ans.Funcs[0].Probes != 4 {
		t.Fatalf("reopened registry lost entries: %+v", ans)
	}
	if st := r2.Stats(); st.Entries != 3 || st.Corrupt != 0 {
		t.Errorf("reopened stats = %+v", st)
	}
}

func TestRegistryDiscardsCorruptFilesAtLoad(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, bad := regFunc(1), regFunc(2)
	if _, err := r.Put("v1", good); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("v1", bad); err != nil {
		t.Fatal(err)
	}
	// Corrupt bad's file: flip its content without restamping.
	path := filepath.Join(dir, bad.Key+".xml")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), `probes="4"`, `probes="9"`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	// And drop a file that is not XML at all.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("f", 64)+".xml"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r2.Stats()
	if st.Entries != 1 || st.Corrupt != 2 {
		t.Fatalf("stats after corrupt load = %+v; want 1 entry, 2 corrupt", st)
	}
	ans := r2.Get([]string{good.Key, bad.Key}, false)
	if len(ans.Funcs) != 1 || ans.Funcs[0].Key != good.Key {
		t.Fatalf("corrupted entry served: %+v", ans.Funcs)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted file left on disk")
	}
}

func TestRegistryEvictionByDocBudget(t *testing.T) {
	r, err := NewRegistry(t.TempDir(), WithRegistryMaxDocs(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Put("v1", regFunc(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Entries != 3 || st.Evicted != 2 {
		t.Fatalf("stats = %+v; want 3 entries, 2 evicted", st)
	}
	// Oldest first: 0 and 1 gone, 2..4 present — on disk too.
	ans := r.Get([]string{regFunc(0).Key, regFunc(4).Key}, true)
	if strings.Join(ans.Found, ",") != regFunc(4).Key || len(ans.Missing) != 1 {
		t.Errorf("eviction order wrong: %+v", ans)
	}
	if _, err := os.Stat(filepath.Join(r.dir, regFunc(0).Key+".xml")); !os.IsNotExist(err) {
		t.Error("evicted entry's file left on disk")
	}
}

func TestRegistryEvictionByByteBudget(t *testing.T) {
	// Learn one entry's on-disk size, then budget for about two.
	probe, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Put("v1", regFunc(0)); err != nil {
		t.Fatal(err)
	}
	one := probe.Stats().Bytes

	r, err := NewRegistry(t.TempDir(), WithRegistryMaxBytes(2*one+one/2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Put("v1", regFunc(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Entries != 2 || st.Evicted != 2 || st.Bytes > 2*one+one/2 {
		t.Fatalf("stats = %+v; want 2 entries under the byte budget", st)
	}
}

// TestRegistryConcurrentGetPut hammers one key from writers and readers
// at once; run under -race this is the data-race check, and the final
// state must be exactly one stored entry.
func TestRegistryConcurrentGetPut(t *testing.T) {
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fn := regFunc(7)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				f := *fn
				if _, err := r.Put("v1", &f); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ans := r.Get([]string{fn.Key}, false)
				for k := range ans.Funcs {
					if ans.Funcs[k].Sum != xmlrep.EntrySum(&ans.Funcs[k].CacheFuncXML) {
						t.Error("served entry failed its integrity sum under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := r.Stats()
	if st.Entries != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v; want exactly one stored entry", st)
	}
}

// TestRegistryWireExchanges runs get/put over a real server with the
// registry handler chained, including refusal of a corrupted put frame.
func TestRegistryWireExchanges(t *testing.T) {
	r, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", WithHandler(r.Handler()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	defer c.Close()

	fn := regFunc(3)
	ack, err := RegistryPush(c, "t", "v1", []xmlrep.CacheFuncXML{*fn})
	if err != nil || !ack.OK || ack.Stored != 1 {
		t.Fatalf("push ack = %+v, %v", ack, err)
	}
	// Replay: all known.
	ack, err = RegistryPush(c, "t", "v1", []xmlrep.CacheFuncXML{*fn})
	if err != nil || !ack.OK || ack.Stored != 0 || ack.Known != 1 {
		t.Fatalf("replay ack = %+v, %v", ack, err)
	}

	ans, err := RegistryFetch(c, "t", []string{fn.Key, "absent"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Funcs) != 1 || ans.Funcs[0].Key != fn.Key || len(ans.Missing) != 1 {
		t.Fatalf("fetch answer = %+v", ans)
	}

	// A put whose checksum does not verify must be refused whole.
	bad := &xmlrep.RegistryPut{Client: "t", Funcs: []xmlrep.CacheFuncXML{*regFunc(4)}}
	bad.Checksum = strings.Repeat("a", 64)
	resp, err := c.Call(bad)
	if err != nil {
		t.Fatal(err)
	}
	back, err := xmlrep.Unmarshal[xmlrep.RegistryAck](resp)
	if err != nil || back.OK {
		t.Fatalf("corrupted put not refused: %+v, %v", back, err)
	}
	if st := r.Stats(); st.Entries != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Non-registry traffic still passes through to the document store.
	if err := c.Send(&xmlrep.ProfileLog{Host: "h"}); err != nil {
		t.Fatal(err)
	}
}
