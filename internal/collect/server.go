package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"syscall"
	"time"

	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// FuncAggregate is one wrapped function's fleet-wide totals, merged across
// every profile document the server has received.
type FuncAggregate struct {
	// Calls is the total call count.
	Calls uint64
	// ExecNS is the total time spent in the function, nanoseconds.
	ExecNS int64
	// Denied counts calls vetoed by a checking micro-generator.
	Denied uint64
	// Passed counts calls that cleared every installed check.
	Passed uint64
	// Substituted counts calls routed through a bounded substitution.
	Substituted uint64
	// Contained counts faults caught and virtualized by the containment
	// wrapper; Retried counts its policy-issued retry attempts;
	// BreakerTrips counts circuit-breaker trips.
	Contained    uint64
	Retried      uint64
	BreakerTrips uint64
	// SilentCorrupt counts silent corruptions attributed to the function
	// (success status, diverged committed state — see the sequence
	// campaign's journal-diff classification).
	SilentCorrupt uint64
	// ContainedBy splits Contained per failure class, indexed by
	// gen.FailureClass — the grain the control plane's escalation
	// decisions consume. Profiles from pre-containment clients leave it
	// all-zero.
	ContainedBy [gen.NumFailureClasses]uint64
	// Hist is the dense log2 latency histogram (gen.HistBuckets buckets),
	// or nil when no uploaded profile carried latency data for this
	// function (pre-observability clients).
	Hist []uint64
	// Errnos maps errno name to the number of calls that set it.
	Errnos map[string]uint64
}

// FleetAggregate is the server's streaming profile aggregate: per-function
// totals, the cross-function errno distribution, and the overflow count,
// all maintained incrementally at ingest time. It covers every profile
// ever received, even after the raw XML has been evicted.
type FleetAggregate struct {
	// Funcs maps function name to its merged totals.
	Funcs map[string]*FuncAggregate
	// Global maps errno name to its cross-function count.
	Global map[string]uint64
	// Overflows sums detected canary/bound violations.
	Overflows uint64
	// Outcomes maps outcome class ("ok", "crash", "silent-corruption",
	// ...) to fleet-wide run counts. Sequence reports feed it one count
	// per fault-combination run; profile documents feed the
	// silent-corruption class from their per-function counters.
	Outcomes map[string]uint64
}

func newFleetAggregate() *FleetAggregate {
	return &FleetAggregate{
		Funcs:    make(map[string]*FuncAggregate),
		Global:   make(map[string]uint64),
		Outcomes: make(map[string]uint64),
	}
}

// merge folds one parsed profile into the aggregate. Latency buckets are
// merged element-wise — the log2 layout makes a fleet-wide percentile an
// O(buckets) read (gen.HistQuantileNS) instead of a re-parse.
func (a *FleetAggregate) merge(prof *xmlrep.ProfileLog) {
	for _, f := range prof.Funcs {
		fa := a.Funcs[f.Name]
		if fa == nil {
			fa = &FuncAggregate{}
			a.Funcs[f.Name] = fa
		}
		fa.Calls += f.Calls
		fa.ExecNS += f.ExecNS
		fa.Denied += f.Denied
		fa.Passed += f.Passed
		fa.Substituted += f.Substituted
		fa.Contained += f.Contained
		fa.Retried += f.Retried
		fa.BreakerTrips += f.BreakerTrips
		fa.SilentCorrupt += f.SilentCorrupt
		if f.SilentCorrupt > 0 {
			a.Outcomes["silent-corruption"] += f.SilentCorrupt
		}
		for _, cc := range f.ContainedBy {
			for c := 0; c < gen.NumFailureClasses; c++ {
				if gen.FailureClass(c).String() == cc.Class {
					fa.ContainedBy[c] += cc.Count
					break
				}
			}
		}
		if f.Latency != nil {
			for _, b := range f.Latency.Buckets {
				if b.Bucket < 0 || b.Bucket >= gen.HistBuckets {
					continue
				}
				if fa.Hist == nil {
					fa.Hist = make([]uint64, gen.HistBuckets)
				}
				fa.Hist[b.Bucket] += b.Count
			}
		}
		for _, e := range f.Errnos {
			if fa.Errnos == nil {
				fa.Errnos = make(map[string]uint64)
			}
			fa.Errnos[e.Errno] += e.Count
		}
	}
	for _, e := range prof.Global {
		a.Global[e.Errno] += e.Count
	}
	a.Overflows += prof.Overflows
}

// mergeSequence folds one sequence-campaign report into the aggregate:
// every fault-combination run counts once under its outcome class.
func (a *FleetAggregate) mergeSequence(doc *xmlrep.SequenceReportDoc) {
	for _, r := range doc.Runs {
		a.Outcomes[r.Outcome]++
	}
}

// clone deep-copies the aggregate so callers can read it without holding
// the server lock.
func (a *FleetAggregate) clone() *FleetAggregate {
	out := newFleetAggregate()
	out.Overflows = a.Overflows
	for fn, fa := range a.Funcs {
		c := &FuncAggregate{
			Calls:         fa.Calls,
			ExecNS:        fa.ExecNS,
			Denied:        fa.Denied,
			Passed:        fa.Passed,
			Substituted:   fa.Substituted,
			Contained:     fa.Contained,
			Retried:       fa.Retried,
			BreakerTrips:  fa.BreakerTrips,
			SilentCorrupt: fa.SilentCorrupt,
			ContainedBy:   fa.ContainedBy,
		}
		if fa.Hist != nil {
			c.Hist = append([]uint64(nil), fa.Hist...)
		}
		if fa.Errnos != nil {
			c.Errnos = make(map[string]uint64, len(fa.Errnos))
			for e, n := range fa.Errnos {
				c.Errnos[e] = n
			}
		}
		out.Funcs[fn] = c
	}
	for e, n := range a.Global {
		out.Global[e] = n
	}
	for o, n := range a.Outcomes {
		out.Outcomes[o] = n
	}
	return out
}

// Server defaults; each has a matching Option to override.
const (
	// DefaultMaxConns caps concurrently served connections.
	DefaultMaxConns = 256
	// DefaultMaxDocs bounds the retained document count.
	DefaultMaxDocs = 8192
	// DefaultMaxBytes bounds the retained document bytes.
	DefaultMaxBytes = 256 << 20
	// DefaultIdleTimeout bounds how long a connection may sit between
	// frames before the server drops it.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultReadTimeout bounds reading one frame body once its header
	// has arrived — the slowloris guard.
	DefaultReadTimeout = 30 * time.Second
)

// Handler answers request documents on the wire (see WithHandler). It
// returns the marshalled response frame, or nil to decline the document —
// a declined document falls through to the ordinary store path.
type Handler func(from string, kind xmlrep.DocKind, data []byte) []byte

type config struct {
	maxConns    int
	maxDocs     int
	maxBytes    int64
	idleTimeout time.Duration
	readTimeout time.Duration
	handlers    []Handler
}

// Option configures a Server at Serve time.
type Option func(*config)

// WithMaxConns caps concurrently served connections; excess connections
// are closed on accept. n <= 0 removes the cap.
func WithMaxConns(n int) Option { return func(c *config) { c.maxConns = n } }

// WithMaxDocs bounds retained documents; the oldest are evicted when the
// budget is exceeded. Eviction drops raw XML only — the streaming
// aggregate and kind counts keep every document ever received. n <= 0
// removes the bound.
func WithMaxDocs(n int) Option { return func(c *config) { c.maxDocs = n } }

// WithMaxBytes bounds retained document bytes, evicting oldest-first like
// WithMaxDocs. n <= 0 removes the bound.
func WithMaxBytes(n int64) Option { return func(c *config) { c.maxBytes = n } }

// WithIdleTimeout bounds the gap between frames on one connection;
// d <= 0 disables the deadline.
func WithIdleTimeout(d time.Duration) Option { return func(c *config) { c.idleTimeout = d } }

// WithReadTimeout bounds reading one frame body after its header;
// d <= 0 disables the deadline.
func WithReadTimeout(d time.Duration) Option { return func(c *config) { c.readTimeout = d } }

// WithHandler installs a request handler: a received document the handler
// answers (non-nil return) gets its response written back on the same
// connection as one frame, turning the one-way upload protocol into
// request/response without changing the framing. Documents every handler
// declines are stored as usual. Repeated WithHandler options chain: each
// document is offered to the handlers in installation order and the
// first non-nil response wins, which is how one server can be both a
// campaign coordinator and a policy control plane. Handlers run on the
// connection's goroutine and may be called concurrently across
// connections; response writes run under the server's read timeout so a
// non-draining peer cannot pin a handler.
func WithHandler(h Handler) Option { return func(c *config) { c.handlers = append(c.handlers, h) } }

// Stats are the server's ingest counters. All counters are cumulative
// over the server's lifetime except ActiveConns and the Retained pair,
// which describe the current moment.
type Stats struct {
	DocsReceived   uint64 // documents stored (and aggregated)
	BytesReceived  uint64 // raw XML bytes of stored documents
	FramesRejected uint64 // bad lengths, truncated or timed-out bodies
	DocsRejected   uint64 // unknown kinds and unparseable profiles
	DocsEvicted    uint64 // documents dropped by the retention budget
	BytesEvicted   uint64 // their raw XML bytes
	ConnsAccepted  uint64 // connections admitted to a handler
	ConnsRejected  uint64 // connections closed by the connection cap
	ActiveConns    int    // connections currently being served
	DocsRetained   int    // documents currently held
	BytesRetained  int64  // their raw XML bytes
	// RequestsHandled counts documents answered by the WithHandler
	// request handler instead of being stored.
	RequestsHandled uint64
}

// Server is the central collection daemon.
type Server struct {
	ln  net.Listener
	cfg config

	mu    sync.Mutex
	docs  []Received // docs[head:] are the retained documents, Seq-ascending
	head  int
	bytes int64 // raw XML bytes retained
	next  uint64
	fleet *FleetAggregate           // streaming per-function profile totals
	kinds map[xmlrep.DocKind]uint64 // per-kind received counts
	stats Stats
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Serve starts a collection server on addr (use "127.0.0.1:0" for an
// ephemeral port) and begins accepting uploads in the background.
func Serve(addr string, opts ...Option) (*Server, error) {
	cfg := config{
		maxConns:    DefaultMaxConns,
		maxDocs:     DefaultMaxDocs,
		maxBytes:    DefaultMaxBytes,
		idleTimeout: DefaultIdleTimeout,
		readTimeout: DefaultReadTimeout,
	}
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{
		ln:     ln,
		cfg:    cfg,
		fleet:  newFleetAggregate(),
		kinds:  make(map[xmlrep.DocKind]uint64),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, force-closes every tracked connection, and
// waits for the handlers to drain. It returns promptly even while
// clients hold idle connections open, and is safe to call repeatedly.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.ln.Close()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return s.closeErr
}

// acceptBackoff bounds the retry delay after transient Accept failures
// (fd exhaustion and friends), so a persistent error condition does not
// hot-spin the accept goroutine on a core.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// transientAcceptError reports whether an Accept failure is worth backing
// off and retrying, by explicit errno classification (the deprecated
// net.Error.Temporary grab-bag is not consulted): resource exhaustion and
// peer-side aborts are transient, a dead listener is not.
func transientAcceptError(err error) bool {
	if errors.Is(err, net.ErrClosed) {
		return false
	}
	for _, errno := range []syscall.Errno{
		syscall.ECONNABORTED, // peer gave up before we accepted
		syscall.ECONNRESET,
		syscall.EINTR,
		syscall.EMFILE, // process fd table full
		syscall.ENFILE, // system fd table full
		syscall.ENOBUFS,
		syscall.ENOMEM,
		syscall.EAGAIN,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if !transientAcceptError(err) {
				// The listener is permanently broken; no session will
				// ever arrive, so spinning on it helps nobody.
				return
			}
			// Transient accept failure (e.g. EMFILE): back off and
			// retry, doubling up to the cap.
			select {
			case <-s.closed:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.mu.Lock()
		if s.cfg.maxConns > 0 && len(s.conns) >= s.cfg.maxConns {
			s.stats.ConnsRejected++
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.stats.ConnsAccepted++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle drains one connection's documents under the configured idle and
// per-frame read deadlines.
func (s *Server) handle(conn net.Conn) {
	defer s.dropConn(conn)
	from := conn.RemoteAddr().String()
	var hdr [4]byte
	for {
		// Idle deadline: how long the peer may sit between frames.
		if s.cfg.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.idleTimeout))
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // EOF, idle timeout, or forced close ends the session
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > MaxDocSize {
			s.bumpFramesRejected()
			return // protocol violation ends the session
		}
		// Read deadline: once a frame is announced its body must arrive
		// promptly — a trickling client cannot pin the handler.
		if s.cfg.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.readTimeout))
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			s.bumpFramesRejected()
			return
		}
		if !s.dispatch(conn, from, data) {
			return
		}
	}
}

// dispatch routes one received document: request kinds go to the handler
// chain (first non-nil response written back on the connection),
// everything else to the store. It returns false when the session must
// end (a response write failed — the peer is gone or not draining).
func (s *Server) dispatch(conn net.Conn, from string, data []byte) bool {
	if len(s.cfg.handlers) > 0 {
		kind, err := xmlrep.Kind(data)
		if err == nil {
			for _, h := range s.cfg.handlers {
				resp := h(from, kind, data)
				if resp == nil {
					continue
				}
				s.mu.Lock()
				s.stats.RequestsHandled++
				s.mu.Unlock()
				if s.cfg.readTimeout > 0 {
					conn.SetWriteDeadline(time.Now().Add(s.cfg.readTimeout))
				}
				if err := writeFrame(conn, resp); err != nil {
					return false
				}
				conn.SetWriteDeadline(time.Time{})
				return true
			}
		}
	}
	s.store(from, data)
	return true
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) bumpFramesRejected() {
	s.mu.Lock()
	s.stats.FramesRejected++
	s.mu.Unlock()
}

// store sniffs, validates, aggregates, and retains one document.
func (s *Server) store(from string, data []byte) {
	kind, err := xmlrep.Kind(data)
	if err != nil {
		s.mu.Lock()
		s.stats.DocsRejected++
		s.mu.Unlock()
		return // unknown document; skip, keep the session
	}
	// Parse profiles outside the lock: the parse feeds the streaming
	// aggregate, and doing it at ingest is what lets AggregateCalls
	// answer without touching stored XML.
	var prof *xmlrep.ProfileLog
	var seq *xmlrep.SequenceReportDoc
	switch kind {
	case xmlrep.KindProfile:
		prof, err = xmlrep.Unmarshal[xmlrep.ProfileLog](data)
		if err != nil {
			s.mu.Lock()
			s.stats.DocsRejected++
			s.mu.Unlock()
			return
		}
	case xmlrep.KindSequenceReport:
		// Sequence reports carry an integrity checksum; a mismatched or
		// unparseable document is rejected rather than aggregated — the
		// outcome counters must never absorb a truncated upload.
		seq, err = xmlrep.Unmarshal[xmlrep.SequenceReportDoc](data)
		if err == nil {
			err = seq.Validate()
		}
		if err != nil {
			s.mu.Lock()
			s.stats.DocsRejected++
			s.mu.Unlock()
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs = append(s.docs, Received{Seq: s.next, From: from, Kind: kind, Data: data, At: time.Now()})
	s.next++
	s.bytes += int64(len(data))
	s.stats.DocsReceived++
	s.stats.BytesReceived += uint64(len(data))
	s.kinds[kind]++
	if prof != nil {
		s.fleet.merge(prof)
	}
	if seq != nil {
		s.fleet.mergeSequence(seq)
	}
	s.evictLocked()
}

// evictLocked enforces the retention budget, dropping oldest documents
// first. The head index makes eviction O(1); the slice is compacted once
// the dead prefix dominates, keeping memory proportional to the budget.
func (s *Server) evictLocked() {
	for s.head < len(s.docs) &&
		((s.cfg.maxDocs > 0 && len(s.docs)-s.head > s.cfg.maxDocs) ||
			(s.cfg.maxBytes > 0 && s.bytes > s.cfg.maxBytes)) {
		d := &s.docs[s.head]
		s.bytes -= int64(len(d.Data))
		s.stats.DocsEvicted++
		s.stats.BytesEvicted += uint64(len(d.Data))
		*d = Received{}
		s.head++
	}
	if s.head > 64 && s.head*2 >= len(s.docs) {
		n := copy(s.docs, s.docs[s.head:])
		clear(s.docs[n:])
		s.docs = s.docs[:n]
		s.head = 0
	}
}

// Stats snapshots the ingest counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ActiveConns = len(s.conns)
	st.DocsRetained = len(s.docs) - s.head
	st.BytesRetained = s.bytes
	return st
}

// Count returns the number of retained documents (see Stats for the
// cumulative received count).
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs) - s.head
}

// Docs returns retained documents of one kind ("" for all).
func (s *Server) Docs(kind xmlrep.DocKind) []Received {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Received
	for _, d := range s.docs[s.head:] {
		if kind == "" || d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// DocsSince returns the retained documents with sequence number >= seq,
// the cursor to pass next time, and the number of documents in [seq,
// next) that were evicted before this poll could see them — a pollable
// drain that never re-copies already-seen documents and never hides
// loss. A poller whose cursor fell behind the retention budget gets the
// surviving suffix plus an explicit evicted count instead of a silent
// gap; a drain that cannot tolerate loss (the distributed campaign
// coordinator's) must treat evicted > 0 as an error. Evicted documents'
// cumulative counts also survive in Stats.
func (s *Server) DocsSince(seq uint64) (docs []Received, next uint64, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.docs[s.head:]
	// Sequence numbers are dense (one per stored document), so the gap
	// between the cursor and the oldest surviving document IS the
	// evicted count.
	oldest := s.next
	if len(live) > 0 {
		oldest = live[0].Seq
	}
	if seq < oldest {
		evicted = oldest - seq
	}
	i := sort.Search(len(live), func(i int) bool { return live[i].Seq >= seq })
	if i < len(live) {
		docs = append(docs, live[i:]...)
	}
	return docs, s.next, evicted
}

// KindCounts returns the cumulative per-kind received counts, maintained
// at ingest time (eviction does not decrement them).
func (s *Server) KindCounts() map[xmlrep.DocKind]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[xmlrep.DocKind]uint64, len(s.kinds))
	for k, n := range s.kinds {
		out[k] = n
	}
	return out
}

// Profiles parses every retained profile document.
func (s *Server) Profiles() ([]*xmlrep.ProfileLog, error) {
	var out []*xmlrep.ProfileLog
	for _, d := range s.Docs(xmlrep.KindProfile) {
		log, err := xmlrep.Unmarshal[xmlrep.ProfileLog](d.Data)
		if err != nil {
			return nil, err
		}
		out = append(out, log)
	}
	return out, nil
}

// AggregateCalls sums call counts per function across all received
// profiles — the server-side view the paper's Figure 5 renders. The
// totals are maintained incrementally at ingest time, so this is a map
// copy, not a re-parse, and it covers every profile ever received even
// after its raw XML has been evicted.
func (s *Server) AggregateCalls() (map[string]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.fleet.Funcs))
	for fn, fa := range s.fleet.Funcs {
		out[fn] = fa.Calls
	}
	return out, nil
}

// Aggregate snapshots the full streaming profile aggregate: per-function
// call/latency/errno/outcome totals plus the global errno distribution.
// Like AggregateCalls it is maintained at ingest time — a deep copy, not
// a re-parse — and survives eviction of the raw documents.
func (s *Server) Aggregate() *FleetAggregate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleet.clone()
}

// AggregateCallsFull recomputes the call aggregate by re-parsing every
// retained profile document — the O(docs × parse) reference
// implementation that AggregateCalls replaced, kept for the determinism
// tests and the ingest benchmark. Unlike AggregateCalls it only sees
// documents that survived eviction.
func (s *Server) AggregateCallsFull() (map[string]uint64, error) {
	logs, err := s.Profiles()
	if err != nil {
		return nil, err
	}
	agg := make(map[string]uint64)
	for _, l := range logs {
		for _, f := range l.Funcs {
			agg[f.Name] += f.Calls
		}
	}
	return agg, nil
}
