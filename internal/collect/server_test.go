package collect

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"syscall"
	"testing"
	"time"

	"healers/internal/ctypes"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// waitReceived polls until the server's cumulative received count hits n
// (Count only reports retained documents, which eviction shrinks).
func waitReceived(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().DocsReceived < n {
		if time.Now().After(deadline) {
			t.Fatalf("server received %d docs, want %d", s.Stats().DocsReceived, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseWithIdleClientReturnsPromptly is the regression test for the
// shutdown hang: handle() used to block in a deadline-less read with no
// shutdown signal, so Close's wg.Wait() never returned while any client
// held its connection open.
func TestCloseWithIdleClientReturnsPromptly(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Make sure the connection reached a handler before closing: a doc
	// round-trips through it.
	if err := writeFrame(conn, mustMarshal(t, sampleProfile("idle", 1))); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 1)

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not return within 1s while a client connection was open")
	}
	// Close must be idempotent.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func mustMarshal(t *testing.T, doc any) []byte {
	t.Helper()
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIdleTimeoutDropsSilentClient(t *testing.T) {
	s, err := Serve("127.0.0.1:0", WithIdleTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must drop us at the idle deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("idle connection not dropped by the server: %v", err)
	}
}

// TestSlowlorisHitsReadDeadline: a client that announces a frame and then
// trickles (here: stalls) must be cut off by the per-frame read deadline
// instead of pinning a handler forever.
func TestSlowlorisHitsReadDeadline(t *testing.T) {
	s, err := Serve("127.0.0.1:0",
		WithIdleTimeout(5*time.Second), WithReadTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header for a 1000-byte document, then only 3 bytes of body.
	if _, err := conn.Write([]byte{0, 0, 3, 0xe8}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("<he")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("slowloris connection not dropped: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("read deadline took %v to fire", elapsed)
	}
	if st := s.Stats(); st.FramesRejected != 1 {
		t.Errorf("FramesRejected = %d, want 1", st.FramesRejected)
	}
}

func TestConnectionCapRejectsExcess(t *testing.T) {
	s, err := Serve("127.0.0.1:0", WithMaxConns(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Occupy the single slot and prove the handler is live.
	first, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if err := first.Send(sampleProfile("holder", 1)); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 1)

	// The next connection must be closed by the server on accept.
	second, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := second.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("over-cap connection read = %v, want EOF", err)
	}
	st := s.Stats()
	if st.ConnsRejected != 1 || st.ConnsAccepted != 1 || st.ActiveConns != 1 {
		t.Errorf("stats = %+v, want 1 accepted, 1 rejected, 1 active", st)
	}
}

func TestEvictionUnderDocsBudget(t *testing.T) {
	s, err := Serve("127.0.0.1:0", WithMaxDocs(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 5; i++ {
		if err := Upload(s.Addr(), sampleProfile(fmt.Sprintf("app%d", i), 10)); err != nil {
			t.Fatal(err)
		}
		waitReceived(t, s, uint64(i))
	}
	if n := s.Count(); n != 3 {
		t.Errorf("retained = %d, want 3", n)
	}
	st := s.Stats()
	if st.DocsReceived != 5 || st.DocsEvicted != 2 || st.DocsRetained != 3 {
		t.Errorf("stats = %+v, want 5 received, 2 evicted, 3 retained", st)
	}
	if st.BytesRetained <= 0 || st.BytesEvicted <= 0 ||
		st.BytesReceived != uint64(st.BytesRetained)+st.BytesEvicted {
		t.Errorf("byte accounting broken: %+v", st)
	}
	// The streaming aggregate covers evicted documents too...
	agg, err := s.AggregateCalls()
	if err != nil {
		t.Fatal(err)
	}
	if agg["strlen"] != 50 {
		t.Errorf("aggregate strlen = %d, want 50 across all 5 docs", agg["strlen"])
	}
	// ...while the re-parsing reference only sees the 3 survivors.
	full, err := s.AggregateCallsFull()
	if err != nil {
		t.Fatal(err)
	}
	if full["strlen"] != 30 {
		t.Errorf("re-parsed strlen = %d, want 30 across retained docs", full["strlen"])
	}
	// Sequence numbers are stable across eviction, and the gap is
	// reported.
	docs, next, evicted := s.DocsSince(0)
	if len(docs) != 3 || docs[0].Seq != 2 || docs[2].Seq != 4 || next != 5 || evicted != 2 {
		t.Errorf("DocsSince(0) = %d docs, first seq %d, next %d, evicted %d", len(docs), docs[0].Seq, next, evicted)
	}
}

func TestEvictionUnderBytesBudget(t *testing.T) {
	doc := mustMarshal(t, sampleProfile("sized", 1))
	s, err := Serve("127.0.0.1:0", WithMaxBytes(int64(2*len(doc))))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if err := c.SendRaw(doc); err != nil {
			t.Fatal(err)
		}
	}
	waitReceived(t, s, 4)
	if n := s.Count(); n != 2 {
		t.Errorf("retained = %d, want 2 under a 2-doc byte budget", n)
	}
	if st := s.Stats(); st.BytesRetained != int64(2*len(doc)) || st.DocsEvicted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDocsSinceCursor(t *testing.T) {
	s := startServer(t)
	for i := 0; i < 2; i++ {
		if err := Upload(s.Addr(), sampleProfile("a", 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitReceived(t, s, 2)
	docs, next, evicted := s.DocsSince(0)
	if len(docs) != 2 || next != 2 || evicted != 0 {
		t.Fatalf("DocsSince(0) = %d docs, next %d, evicted %d", len(docs), next, evicted)
	}
	// Nothing new: the cursor returns an empty batch, not a re-copy.
	docs, next, evicted = s.DocsSince(next)
	if len(docs) != 0 || next != 2 || evicted != 0 {
		t.Fatalf("DocsSince(2) = %d docs, next %d, evicted %d", len(docs), next, evicted)
	}
	if err := Upload(s.Addr(), sampleProfile("b", 2)); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 3)
	docs, next, evicted = s.DocsSince(next)
	if len(docs) != 1 || docs[0].Seq != 2 || next != 3 || evicted != 0 {
		t.Fatalf("incremental batch = %d docs, next %d, evicted %d", len(docs), next, evicted)
	}
}

// TestDocsSinceReportsEvictionGap pins the loss signal: a poller whose
// cursor fell behind the retention budget must learn exactly how many
// documents it can never see, not silently receive the surviving suffix.
func TestDocsSinceReportsEvictionGap(t *testing.T) {
	s := startServer(t, WithMaxDocs(2))
	for i := 0; i < 5; i++ {
		if err := Upload(s.Addr(), sampleProfile(fmt.Sprintf("app%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitReceived(t, s, 5)
	// Seqs 0..4 stored; only 3 and 4 survive the 2-doc budget.
	docs, next, evicted := s.DocsSince(0)
	if len(docs) != 2 || docs[0].Seq != 3 || next != 5 || evicted != 3 {
		t.Fatalf("DocsSince(0) = %d docs (first seq %d), next %d, evicted %d; want 2 docs from seq 3, next 5, evicted 3",
			len(docs), docs[0].Seq, next, evicted)
	}
	// A cursor inside the evicted range sees only its own share of the
	// gap.
	if _, _, evicted = s.DocsSince(2); evicted != 1 {
		t.Fatalf("DocsSince(2) evicted = %d, want 1", evicted)
	}
	// A caught-up cursor sees no gap, and an empty batch.
	if docs, _, evicted = s.DocsSince(next); len(docs) != 0 || evicted != 0 {
		t.Fatalf("caught-up poll = %d docs, evicted %d", len(docs), evicted)
	}
}

// TestIncrementalAggregationMatchesReparse pins the determinism of the
// streaming aggregate: with no eviction, ingest-time accumulation and a
// full re-parse of the stored XML must agree exactly.
func TestIncrementalAggregationMatchesReparse(t *testing.T) {
	s := startServer(t)
	funcs := []string{"strlen", "malloc", "memcpy", "free", "strtol"}
	n := 0
	for i := 0; i < 12; i++ {
		st := gen.NewState("libhealers_prof.so")
		for j, fn := range funcs {
			st.CallCount[st.Index(fn)] = uint64((i+1)*(j+3)) % 97
		}
		if err := Upload(s.Addr(), xmlrep.NewProfileLog("host", fmt.Sprintf("app%d", i), st)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	// Non-profile documents must not disturb the aggregate.
	decl := xmlrep.NewDeclarations("libc.so.6", []*ctypes.Prototype{{Name: "f", Ret: ctypes.Int}})
	if err := Upload(s.Addr(), decl); err != nil {
		t.Fatal(err)
	}
	n++
	waitReceived(t, s, uint64(n))
	inc, err := s.AggregateCalls()
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.AggregateCallsFull()
	if err != nil {
		t.Fatal(err)
	}
	// The incremental map keeps zero-call entries the re-parse also
	// produces; compare as whole maps.
	if !reflect.DeepEqual(inc, full) {
		t.Errorf("incremental aggregate diverges from re-parse:\n inc=%v\nfull=%v", inc, full)
	}
	if kinds := s.KindCounts(); kinds[xmlrep.KindProfile] != 12 || kinds[xmlrep.KindDeclarations] != 1 {
		t.Errorf("kind counts = %v", kinds)
	}
}

func TestTransientAcceptErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&net.OpError{Op: "accept", Err: os.NewSyscallError("accept", syscall.EMFILE)}, true},
		{&net.OpError{Op: "accept", Err: os.NewSyscallError("accept", syscall.ECONNABORTED)}, true},
		{&net.OpError{Op: "accept", Err: os.NewSyscallError("accept", syscall.EINTR)}, true},
		{&net.OpError{Op: "accept", Err: os.NewSyscallError("accept", syscall.EBADF)}, false},
		{&net.OpError{Op: "accept", Err: net.ErrClosed}, false},
		{errors.New("unclassifiable"), false},
		{io.EOF, false},
	}
	for _, c := range cases {
		if got := transientAcceptError(c.err); got != c.want {
			t.Errorf("transientAcceptError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClientRetryReachesRestartedCollector(t *testing.T) {
	// Reserve an address, then leave it dead until after the client has
	// started retrying.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr)
	c.RetryMax = 50
	c.RetryBase = 10 * time.Millisecond
	c.RetryCap = 50 * time.Millisecond
	defer c.Close()

	srvCh := make(chan *Server, 1)
	go func() {
		time.Sleep(100 * time.Millisecond)
		s, err := Serve(addr)
		if err != nil {
			srvCh <- nil
			return
		}
		srvCh <- s
	}()
	if err := c.Send(sampleProfile("retrier", 7)); err != nil {
		t.Fatalf("Send with retry: %v", err)
	}
	s := <-srvCh
	if s == nil {
		t.Fatal("late server failed to start")
	}
	defer s.Close()
	waitReceived(t, s, 1)
}

func TestClientWithoutRetryFailsFast(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	defer c.Close()
	start := time.Now()
	if err := c.Send(sampleProfile("x", 1)); err == nil {
		t.Error("send to dead collector succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("no-retry send took %v", elapsed)
	}
}
