package collect

import (
	"fmt"
	"sync"
	"time"

	"healers/internal/xmlrep"
)

// Spooler defaults; override via SpoolOptions.
const (
	// DefaultSpoolDocs bounds the number of buffered documents.
	DefaultSpoolDocs = 1024
	// DefaultSpoolBytes bounds the buffered document bytes.
	DefaultSpoolBytes = 64 << 20
)

// SpoolStats are a Spooler's counters.
type SpoolStats struct {
	Enqueued uint64 // documents accepted into the buffer
	Sent     uint64 // documents delivered to the collector
	Dropped  uint64 // documents lost to the buffer budget or Close
	Retries  uint64 // failed delivery attempts
}

// Spooler is the asynchronous, bounded upload buffer: Send never blocks
// on the network, a background goroutine drains the buffer to the
// collector, and while the collector is unreachable documents accumulate
// (up to the budget, oldest dropped first) and are replayed in order on
// reconnect. This is what lets a fleet of wrapped applications survive a
// collector restart without losing profiles.
type Spooler struct {
	c *Client

	mu       sync.Mutex
	queue    [][]byte
	bytes    int64
	inflight int // popped by the drain loop, outcome not yet known
	stats    SpoolStats
	closed   bool

	maxDocs  int
	maxBytes int64
	base     time.Duration
	maxWait  time.Duration

	wake      chan struct{}
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// SpoolOption configures a Spooler at NewSpooler time.
type SpoolOption func(*Spooler)

// WithSpoolBudget bounds the buffer: at most maxDocs documents and
// maxBytes raw bytes; the oldest buffered documents are dropped (and
// counted) when either budget is exceeded. Non-positive values remove
// that bound.
func WithSpoolBudget(maxDocs int, maxBytes int64) SpoolOption {
	return func(s *Spooler) { s.maxDocs, s.maxBytes = maxDocs, maxBytes }
}

// WithSpoolBackoff shapes the reconnect backoff: delays grow
// exponentially from base to max (with jitter) while the collector stays
// unreachable.
func WithSpoolBackoff(base, max time.Duration) SpoolOption {
	return func(s *Spooler) { s.base, s.maxWait = base, max }
}

// NewSpooler starts a spooler uploading to addr in the background.
func NewSpooler(addr string, opts ...SpoolOption) *Spooler {
	s := &Spooler{
		c:        NewClient(addr),
		maxDocs:  DefaultSpoolDocs,
		maxBytes: DefaultSpoolBytes,
		base:     DefaultRetryBase,
		maxWait:  DefaultRetryCap,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.loop()
	return s
}

// Send marshals and buffers one document for asynchronous upload. It
// fails only on marshalling, an invalid size, or a closed spooler — never
// on the state of the network.
func (s *Spooler) Send(doc any) error {
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return err
	}
	return s.SendRaw(data)
}

// SendRaw buffers pre-marshalled XML for asynchronous upload.
func (s *Spooler) SendRaw(data []byte) error {
	if len(data) == 0 || len(data) > MaxDocSize {
		return fmt.Errorf("collect: bad document size %d", len(data))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("collect: spooler closed")
	}
	s.queue = append(s.queue, data)
	s.bytes += int64(len(data))
	s.stats.Enqueued++
	for (s.maxDocs > 0 && len(s.queue) > s.maxDocs) ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes) {
		s.bytes -= int64(len(s.queue[0]))
		s.stats.Dropped++
		s.queue[0] = nil
		s.queue = s.queue[1:]
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// loop drains the buffer, backing off while the collector is unreachable
// and replaying in order once it returns.
func (s *Spooler) loop() {
	defer close(s.done)
	backoff := s.base
	for {
		// Pop the head before sending so concurrent budget eviction in
		// SendRaw cannot swap the document out from under the attempt.
		s.mu.Lock()
		var data []byte
		if len(s.queue) > 0 {
			data = s.queue[0]
			s.queue[0] = nil
			s.queue = s.queue[1:]
			s.bytes -= int64(len(data))
			s.inflight++
		}
		closed := s.closed
		s.mu.Unlock()
		if data == nil {
			if closed {
				return
			}
			select {
			case <-s.wake:
			case <-s.quit:
			}
			continue
		}
		if err := s.c.sendOnce(data); err != nil {
			// Put the document back at the front — it is still the
			// oldest — unless the budget filled up meanwhile, in which
			// case oldest-first loss says it is the one to drop.
			s.mu.Lock()
			s.stats.Retries++
			s.inflight--
			if (s.maxDocs > 0 && len(s.queue)+1 > s.maxDocs) ||
				(s.maxBytes > 0 && s.bytes+int64(len(data)) > s.maxBytes) {
				s.stats.Dropped++
			} else {
				s.queue = append([][]byte{data}, s.queue...)
				s.bytes += int64(len(data))
			}
			s.mu.Unlock()
			select {
			case <-time.After(withJitter(backoff)):
			case <-s.quit:
				return
			}
			if backoff *= 2; backoff > s.maxWait {
				backoff = s.maxWait
			}
			continue
		}
		backoff = s.base
		s.mu.Lock()
		s.stats.Sent++
		s.inflight--
		s.mu.Unlock()
	}
}

// Pending returns the number of buffered or in-flight, not-yet-delivered
// documents.
func (s *Spooler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + s.inflight
}

// Stats snapshots the spooler's counters.
func (s *Spooler) Stats() SpoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush waits up to timeout for the buffer to drain. Call it before
// Close when delivery matters: Close itself does not wait on an
// unreachable collector.
func (s *Spooler) Flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if s.Pending() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("collect: %d documents still spooled after %v", s.Pending(), timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the drain goroutine and releases the connection. Buffered
// documents that were never delivered are dropped (and counted); use
// Flush first to wait for delivery.
func (s *Spooler) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		<-s.done
		s.mu.Lock()
		s.stats.Dropped += uint64(len(s.queue))
		s.queue = nil
		s.bytes = 0
		s.mu.Unlock()
		s.closeErr = s.c.Close()
	})
	return s.closeErr
}
