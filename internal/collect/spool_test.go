package collect

import (
	"net"
	"testing"
	"time"
)

// serveAt binds a server to a specific address, retrying briefly — the
// restart tests release a port and re-bind it, which can race the
// kernel's teardown of the old listener.
func serveAt(t *testing.T, addr string, opts ...Option) *Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := Serve(addr, opts...)
		if err == nil {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("Serve(%s): %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpoolerReplayAfterCollectorRestart is the lossy-upload regression
// test: documents produced while the collector is down must be buffered
// and replayed, in order, once it comes back.
func TestSpoolerReplayAfterCollectorRestart(t *testing.T) {
	s := startServer(t)
	addr := s.Addr()

	sp := NewSpooler(addr, WithSpoolBackoff(10*time.Millisecond, 100*time.Millisecond))
	defer sp.Close()
	if err := sp.Send(sampleProfile("before", 1)); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 1)

	// Take the collector down and keep producing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sp.Send(sampleProfile("during", uint64(10*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	// Give the spooler time to fail at least once against the dead port.
	waitFor(t, func() bool { return sp.Stats().Retries > 0 }, "spooler never retried")
	if n := sp.Pending(); n != 3 {
		t.Fatalf("pending = %d, want 3 while the collector is down", n)
	}

	// Restart on the same address: the buffer must drain into it.
	s2 := serveAt(t, addr)
	defer s2.Close()
	if err := sp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s2, 3)
	agg, err := s2.AggregateCalls()
	if err != nil {
		t.Fatal(err)
	}
	if agg["strlen"] != 60 {
		t.Errorf("replayed aggregate strlen = %d, want 60", agg["strlen"])
	}
	docs, _, _ := s2.DocsSince(0)
	if len(docs) != 3 || docs[0].Seq > docs[2].Seq {
		t.Errorf("replay out of order: %d docs", len(docs))
	}
	if st := sp.Stats(); st.Sent != 4 || st.Dropped != 0 || st.Retries == 0 {
		t.Errorf("spool stats = %+v, want 4 sent, 0 dropped, >0 retries", st)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSpoolerBudgetDropsOldest(t *testing.T) {
	// Reserve a dead address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	sp := NewSpooler(addr,
		WithSpoolBudget(2, 0),
		WithSpoolBackoff(50*time.Millisecond, 200*time.Millisecond))
	defer sp.Close()
	for i := 1; i <= 3; i++ {
		if err := sp.Send(sampleProfile("app", uint64(100*i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return sp.Stats().Dropped == 1 }, "oldest doc not dropped at budget")

	s := serveAt(t, addr)
	defer s.Close()
	if err := sp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitReceived(t, s, 2)
	agg, err := s.AggregateCalls()
	if err != nil {
		t.Fatal(err)
	}
	// The first document (100 calls) was the casualty; the newest two
	// survive.
	if agg["strlen"] != 500 {
		t.Errorf("surviving aggregate strlen = %d, want 500 (docs 200+300)", agg["strlen"])
	}
}

func TestSpoolerCloseDropsUndelivered(t *testing.T) {
	sp := NewSpooler("127.0.0.1:1", WithSpoolBackoff(time.Hour, time.Hour))
	if err := sp.Send(sampleProfile("doomed", 1)); err != nil {
		t.Fatal(err)
	}
	// Let the drain loop fail once and park in its hour-long backoff, so
	// Close provably does not wait it out.
	waitFor(t, func() bool { return sp.Stats().Retries > 0 }, "spooler never attempted delivery")
	start := time.Now()
	if err := sp.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Close took %v with an unreachable collector", elapsed)
	}
	if st := sp.Stats(); st.Dropped != 1 || st.Sent != 0 {
		t.Errorf("stats = %+v, want the undelivered doc counted dropped", st)
	}
	if err := sp.Send(sampleProfile("late", 1)); err == nil {
		t.Error("Send after Close succeeded")
	}
	// Close must be idempotent.
	if err := sp.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
