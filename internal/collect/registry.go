// Registry: the shared campaign-cache service. A collector configured
// with one (healers-collectd -registry DIR) stores fault-injection cache
// entries content-addressed by their campaign-cache key — sha256 over
// (prototype, probe-hierarchy version, injector config) — and answers
// get/put exchanges from any runner, turning every machine's local
// probing into a fleet-wide amortized cost. The exchanges ride the
// ordinary collect framing via WithHandler, so the collector stays one
// process, one port, one wire protocol.
//
// Storage is a flat directory: one single-entry campaign-cache document
// per key, validated by its own checksum at load so a corrupted file is
// discarded (and deleted), never served. The in-memory index is bounded
// by the same doc/byte budgets as the collection server's document
// store, evicting oldest-first — a registry is a cache of reproducible
// results, so eviction costs a re-probe, not data.

package collect

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"healers/internal/xmlrep"
)

// regEntry is one stored registry entry: the cache entry, its
// per-entry integrity sum (stamped on served answers), and the size of
// its on-disk document for the byte budget.
type regEntry struct {
	fn   xmlrep.CacheFuncXML
	sum  string
	size int64
}

// RegistryStats are the registry's counters, snapshotted for /metrics
// and exit summaries.
type RegistryStats struct {
	// Entries and Bytes are the current store occupancy.
	Entries int
	Bytes   int64
	// Hits and Misses count per-key lookup outcomes across all get
	// exchanges (one get with 10 keys moves the counters by 10).
	Hits   uint64
	Misses uint64
	// Puts counts entries stored; Known counts put entries the registry
	// already held (first write wins — the results are content-addressed,
	// so a duplicate is confirmation, not conflict).
	Puts  uint64
	Known uint64
	// Rejected counts refused put frames: malformed, unstamped, or
	// checksum-mismatched documents, none of which may poison the store.
	Rejected uint64
	// Evicted counts entries dropped by the doc/byte budgets.
	Evicted uint64
	// Corrupt counts stored files discarded at load because their
	// checksum or key did not validate.
	Corrupt uint64
}

// RegistryOption configures a Registry at NewRegistry time.
type RegistryOption func(*Registry)

// WithRegistryMaxDocs bounds retained entries; the oldest are evicted
// when the budget is exceeded. n <= 0 removes the bound.
func WithRegistryMaxDocs(n int) RegistryOption {
	return func(r *Registry) { r.maxDocs = n }
}

// WithRegistryMaxBytes bounds retained entry bytes (measured as the
// on-disk document size), evicting oldest-first like
// WithRegistryMaxDocs. n <= 0 removes the bound.
func WithRegistryMaxBytes(n int64) RegistryOption {
	return func(r *Registry) { r.maxBytes = n }
}

// Registry is a bounded, directory-backed, content-addressed store of
// campaign-cache entries. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	dir      string // "" = memory-only (tests)
	maxDocs  int
	maxBytes int64
	entries  map[string]*regEntry
	// order is the insertion order for oldest-first eviction; head
	// indexes its live prefix so eviction is O(1) amortized (the same
	// compaction scheme as the server's document store).
	order []string
	head  int
	bytes int64
	stats RegistryStats
}

// NewRegistry opens (creating if needed) a registry rooted at dir and
// loads every valid stored entry; files that fail validation are
// deleted and counted, not served. dir == "" builds a memory-only
// registry. Budgets default to the server's DefaultMaxDocs and
// DefaultMaxBytes.
func NewRegistry(dir string, opts ...RegistryOption) (*Registry, error) {
	r := &Registry{
		dir:      dir,
		maxDocs:  DefaultMaxDocs,
		maxBytes: DefaultMaxBytes,
		entries:  make(map[string]*regEntry),
	}
	for _, o := range opts {
		o(r)
	}
	if dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("collect: registry: %w", err)
	}
	if err := r.load(); err != nil {
		return nil, err
	}
	return r, nil
}

// load indexes the directory's stored entries, oldest file first so a
// reloaded registry evicts in the same order it would have without the
// restart.
func (r *Registry) load() error {
	names, err := filepath.Glob(filepath.Join(r.dir, "*.xml"))
	if err != nil {
		return fmt.Errorf("collect: registry: %w", err)
	}
	type candidate struct {
		path string
		mod  int64
	}
	cands := make([]candidate, 0, len(names))
	for _, path := range names {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{path, fi.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mod != cands[j].mod {
			return cands[i].mod < cands[j].mod
		}
		return cands[i].path < cands[j].path
	})
	for _, c := range cands {
		key := strings.TrimSuffix(filepath.Base(c.path), ".xml")
		fn, size, err := readEntryFile(c.path, key)
		if err != nil {
			// A corrupted entry must never be served: discard the file so
			// the next put repopulates it from a fresh probe run.
			os.Remove(c.path)
			r.stats.Corrupt++
			continue
		}
		r.insertLocked(key, fn, size)
	}
	return nil
}

// readEntryFile parses and validates one stored entry: a single-entry
// campaign-cache document whose checksum verifies and whose entry key
// matches the filename.
func readEntryFile(path, key string) (*xmlrep.CacheFuncXML, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	doc, err := xmlrep.Unmarshal[xmlrep.CampaignCacheDoc](data)
	if err != nil {
		return nil, 0, err
	}
	if doc.Checksum == "" || doc.Checksum != doc.ComputeChecksum() {
		return nil, 0, fmt.Errorf("collect: registry: %s: checksum mismatch", path)
	}
	if len(doc.Funcs) != 1 || doc.Funcs[0].Key != key {
		return nil, 0, fmt.Errorf("collect: registry: %s: not a single-entry doc for its key", path)
	}
	return &doc.Funcs[0], int64(len(data)), nil
}

// insertLocked indexes one validated entry and applies the budgets.
// First write wins: entries are content-addressed, so a key collision
// is a duplicate derivation of the same result.
func (r *Registry) insertLocked(key string, fn *xmlrep.CacheFuncXML, size int64) bool {
	if _, ok := r.entries[key]; ok {
		return false
	}
	r.entries[key] = &regEntry{fn: *fn, sum: xmlrep.EntrySum(fn), size: size}
	r.order = append(r.order, key)
	r.bytes += size
	r.evictLocked()
	return true
}

// evictLocked drops oldest entries until both budgets hold, compacting
// the order slice when its dead prefix dominates.
func (r *Registry) evictLocked() {
	over := func() bool {
		n := len(r.entries)
		return (r.maxDocs > 0 && n > r.maxDocs) || (r.maxBytes > 0 && r.bytes > r.maxBytes && n > 1)
	}
	for over() && r.head < len(r.order) {
		key := r.order[r.head]
		r.head++
		e, ok := r.entries[key]
		if !ok {
			continue
		}
		delete(r.entries, key)
		r.bytes -= e.size
		r.stats.Evicted++
		if r.dir != "" {
			os.Remove(filepath.Join(r.dir, key+".xml"))
		}
	}
	if r.head > len(r.order)/2 && r.head > 64 {
		r.order = append([]string(nil), r.order[r.head:]...)
		r.head = 0
	}
}

// Put stores one cache entry under its own Key, persisting it to the
// registry directory. It reports whether the entry was newly stored
// (false = already known). Entries without a key are refused.
func (r *Registry) Put(hierarchy string, fn *xmlrep.CacheFuncXML) (bool, error) {
	if fn == nil || fn.Key == "" {
		return false, fmt.Errorf("collect: registry: entry has no key")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[fn.Key]; ok {
		r.stats.Known++
		return false, nil
	}
	data, err := marshalEntryDoc(hierarchy, fn)
	if err != nil {
		return false, err
	}
	if r.dir != "" {
		if err := writeFileAtomic(filepath.Join(r.dir, fn.Key+".xml"), data); err != nil {
			return false, fmt.Errorf("collect: registry: %w", err)
		}
	}
	r.insertLocked(fn.Key, fn, int64(len(data)))
	r.stats.Puts++
	return true, nil
}

// marshalEntryDoc renders one entry as its on-disk form: a checksummed
// single-entry campaign-cache document.
func marshalEntryDoc(hierarchy string, fn *xmlrep.CacheFuncXML) ([]byte, error) {
	doc := &xmlrep.CampaignCacheDoc{Hierarchy: hierarchy, Funcs: []xmlrep.CacheFuncXML{*fn}}
	doc.Checksum = doc.ComputeChecksum()
	return xmlrep.Marshal(doc)
}

// writeFileAtomic writes data via a temp file + rename so a concurrent
// reader (or a crash) never observes a half-written entry.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".reg-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get answers one lookup: the entries held for the requested keys (each
// stamped with its integrity sum), plus which keys were found and which
// were not. With hasOnly set the entry bodies are omitted — the cheap
// presence probe.
func (r *Registry) Get(keys []string, hasOnly bool) *xmlrep.RegistryAnswer {
	ans := &xmlrep.RegistryAnswer{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, key := range keys {
		e, ok := r.entries[key]
		if !ok {
			r.stats.Misses++
			ans.Missing = append(ans.Missing, key)
			continue
		}
		r.stats.Hits++
		ans.Found = append(ans.Found, key)
		if !hasOnly {
			ans.Funcs = append(ans.Funcs, xmlrep.RegistryEntryXML{CacheFuncXML: e.fn, Sum: e.sum})
		}
	}
	ans.Checksum = ans.ComputeChecksum()
	return ans
}

// Stats snapshots the registry's counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = len(r.entries)
	s.Bytes = r.bytes
	return s
}

// Handler returns the wire handler implementing the registry exchanges;
// register it with collect.WithHandler. It answers KindRegistryGet
// (reply with a RegistryAnswer) and KindRegistryPut (store entries,
// reply with a RegistryAck) and declines everything else, so profile
// uploads, coordinator, and policy traffic pass through untouched. Both
// exchanges have response frames — clients must use Client.Call.
func (r *Registry) Handler() Handler {
	return func(from string, kind xmlrep.DocKind, data []byte) []byte {
		switch kind {
		case xmlrep.KindRegistryGet:
			return r.handleGet(data)
		case xmlrep.KindRegistryPut:
			return r.handlePut(data)
		default:
			return nil
		}
	}
}

// handleGet answers one get frame; a malformed or corrupted request
// gets a refusing ack rather than a fabricated answer.
func (r *Registry) handleGet(data []byte) []byte {
	req, err := xmlrep.Unmarshal[xmlrep.RegistryGet](data)
	if err != nil {
		return mustMarshalRegistryAck(&xmlrep.RegistryAck{OK: false, Reason: "malformed registry get"})
	}
	if req.Checksum != "" && req.Checksum != req.ComputeChecksum() {
		return mustMarshalRegistryAck(&xmlrep.RegistryAck{OK: false, Reason: "registry get checksum mismatch"})
	}
	ans := r.Get(req.Keys, req.HasOnly)
	out, err := xmlrep.Marshal(ans)
	if err != nil {
		return mustMarshalRegistryAck(&xmlrep.RegistryAck{OK: false, Reason: err.Error()})
	}
	return out
}

// handlePut stores a pushed batch. The frame checksum is mandatory:
// storing a truncated or corrupted batch would poison every future warm
// sweep, so an unverifiable frame is refused whole.
func (r *Registry) handlePut(data []byte) []byte {
	refuse := func(reason string) []byte {
		r.mu.Lock()
		r.stats.Rejected++
		r.mu.Unlock()
		return mustMarshalRegistryAck(&xmlrep.RegistryAck{OK: false, Reason: reason})
	}
	put, err := xmlrep.Unmarshal[xmlrep.RegistryPut](data)
	if err != nil {
		return refuse("malformed registry put")
	}
	if put.Checksum == "" || put.Checksum != put.ComputeChecksum() {
		return refuse("registry put checksum mismatch")
	}
	ack := xmlrep.RegistryAck{OK: true}
	for i := range put.Funcs {
		stored, err := r.Put(put.Hierarchy, &put.Funcs[i])
		if err != nil {
			continue // a keyless entry is skipped, not fatal to the batch
		}
		if stored {
			ack.Stored++
		} else {
			ack.Known++
		}
	}
	return mustMarshalRegistryAck(&ack)
}

// mustMarshalRegistryAck renders a RegistryAck; the struct has no
// failure mode under xml.Marshal, so an error here is a programming bug.
func mustMarshalRegistryAck(ack *xmlrep.RegistryAck) []byte {
	data, err := xmlrep.Marshal(ack)
	if err != nil {
		panic(fmt.Sprintf("collect: marshal registry ack: %v", err))
	}
	return data
}

// RegistryFetch asks a registry for the entries stored under keys,
// identifying as client. The answer's frame checksum is verified before
// it is returned; per-entry sums are the caller's concern (the caller
// decides what a corrupted entry costs — see inject's RegistryCache,
// which discards it and re-probes).
func RegistryFetch(c *Client, client string, keys []string) (*xmlrep.RegistryAnswer, error) {
	req := &xmlrep.RegistryGet{Client: client, Keys: keys}
	req.Checksum = req.ComputeChecksum()
	resp, err := c.Call(req)
	if err != nil {
		return nil, err
	}
	kind, err := xmlrep.Kind(resp)
	if err != nil {
		return nil, fmt.Errorf("collect: registry fetch: %w", err)
	}
	switch kind {
	case xmlrep.KindRegistryAnswer:
		ans, err := xmlrep.Unmarshal[xmlrep.RegistryAnswer](resp)
		if err != nil {
			return nil, err
		}
		if ans.Checksum == "" || ans.Checksum != ans.ComputeChecksum() {
			return nil, fmt.Errorf("collect: registry fetch: answer checksum mismatch")
		}
		return ans, nil
	case xmlrep.KindRegistryAck:
		ack, err := xmlrep.Unmarshal[xmlrep.RegistryAck](resp)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("collect: registry fetch refused: %s", ack.Reason)
	default:
		return nil, fmt.Errorf("collect: registry fetch: unexpected %s answer", kind)
	}
}

// RegistryPush uploads a batch of cache entries to a registry and
// returns its ack. A transport-level success with ack.OK false means
// the registry refused the batch (the ack's Reason says why).
func RegistryPush(c *Client, client, hierarchy string, funcs []xmlrep.CacheFuncXML) (*xmlrep.RegistryAck, error) {
	put := &xmlrep.RegistryPut{Client: client, Hierarchy: hierarchy, Funcs: funcs}
	put.Checksum = put.ComputeChecksum()
	resp, err := c.Call(put)
	if err != nil {
		return nil, err
	}
	ack, err := xmlrep.Unmarshal[xmlrep.RegistryAck](resp)
	if err != nil {
		return nil, fmt.Errorf("collect: registry push: unexpected answer: %w", err)
	}
	return ack, nil
}
