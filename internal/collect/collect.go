// Package collect implements the HEALERS central collection service:
// wrapped applications ship their self-describing XML documents to a
// server which stores them for later processing ("the collection code is
// called to send the gathered information to a central server", §2.3).
//
// The wire protocol is deliberately simple: a TCP connection carries one
// or more documents, each prefixed by a 4-byte big-endian length. The
// server sniffs each document's kind from its root element — nothing else
// is needed, the documents are self-describing.
package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"healers/internal/xmlrep"
)

// MaxDocSize bounds one uploaded document; larger uploads are rejected to
// keep a misbehaving client from exhausting the server.
const MaxDocSize = 16 << 20

// Received is one stored document.
type Received struct {
	// From is the uploading peer's address.
	From string
	// Kind is the sniffed document kind.
	Kind xmlrep.DocKind
	// Data is the raw XML.
	Data []byte
	// At is the server receive time.
	At time.Time
}

// Server is the central collection daemon.
type Server struct {
	ln net.Listener

	mu   sync.Mutex
	docs []Received

	wg     sync.WaitGroup
	closed chan struct{}
}

// Serve starts a collection server on addr (use "127.0.0.1:0" for an
// ephemeral port) and begins accepting uploads in the background.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{ln: ln, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// acceptBackoff bounds the retry delay after transient Accept failures
// (fd exhaustion and friends), so a persistent error condition does not
// hot-spin the accept goroutine on a core.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := acceptBackoffMin
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Temporary() {
				// The listener is permanently broken; no session will
				// ever arrive, so spinning on it helps nobody.
				return
			}
			// Transient accept failure (e.g. EMFILE): back off and
			// retry, doubling up to the cap.
			select {
			case <-s.closed:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle drains one connection's documents.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	from := conn.RemoteAddr().String()
	for {
		data, err := readFrame(conn)
		if err != nil {
			return // EOF or a broken frame ends the session
		}
		kind, err := xmlrep.Kind(data)
		if err != nil {
			continue // unknown document; skip, keep the session
		}
		s.mu.Lock()
		s.docs = append(s.docs, Received{From: from, Kind: kind, Data: data, At: time.Now()})
		s.mu.Unlock()
	}
}

// readFrame reads one length-prefixed document.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxDocSize {
		return nil, fmt.Errorf("collect: bad frame length %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// writeFrame writes one length-prefixed document.
func writeFrame(w io.Writer, data []byte) error {
	if len(data) == 0 || len(data) > MaxDocSize {
		return fmt.Errorf("collect: bad document size %d", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// Count returns the number of stored documents.
func (s *Server) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.docs)
}

// Docs returns stored documents of one kind ("" for all).
func (s *Server) Docs(kind xmlrep.DocKind) []Received {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Received
	for _, d := range s.docs {
		if kind == "" || d.Kind == kind {
			out = append(out, d)
		}
	}
	return out
}

// Profiles parses every stored profile document.
func (s *Server) Profiles() ([]*xmlrep.ProfileLog, error) {
	var out []*xmlrep.ProfileLog
	for _, d := range s.Docs(xmlrep.KindProfile) {
		log, err := xmlrep.Unmarshal[xmlrep.ProfileLog](d.Data)
		if err != nil {
			return nil, err
		}
		out = append(out, log)
	}
	return out, nil
}

// AggregateCalls sums call counts per function across all stored
// profiles — the server-side view the paper's Figure 5 renders.
func (s *Server) AggregateCalls() (map[string]uint64, error) {
	logs, err := s.Profiles()
	if err != nil {
		return nil, err
	}
	agg := make(map[string]uint64)
	for _, l := range logs {
		for _, f := range l.Funcs {
			agg[f.Name] += f.Calls
		}
	}
	return agg, nil
}

// Client uploads documents to a collection server.
type Client struct {
	conn net.Conn
	// WriteTimeout bounds each frame write. A wrapped process flushes
	// its profile from the exit path; without a deadline a stalled
	// collector would block that process's exit forever. Zero disables
	// the deadline.
	WriteTimeout time.Duration
}

// dialTimeout bounds connection establishment and, by default, each
// frame write.
const dialTimeout = 5 * time.Second

// Dial connects to a collection server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, WriteTimeout: dialTimeout}, nil
}

// Send marshals and uploads one document.
func (c *Client) Send(doc any) error {
	data, err := xmlrep.Marshal(doc)
	if err != nil {
		return err
	}
	return c.SendRaw(data)
}

// SendRaw uploads pre-marshalled XML. The write runs under the client's
// per-frame WriteTimeout: a collector that accepts the connection but
// stops draining it produces a timeout error here instead of wedging the
// caller.
func (c *Client) SendRaw(data []byte) error {
	if c.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.WriteTimeout)); err != nil {
			return fmt.Errorf("collect: setting write deadline: %w", err)
		}
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	return writeFrame(c.conn, data)
}

// Close ends the upload session.
func (c *Client) Close() error { return c.conn.Close() }

// Upload is the one-shot convenience: dial, send, close.
func Upload(addr string, doc any) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Send(doc); err != nil {
		return err
	}
	return nil
}
