// Package collect implements the HEALERS central collection service:
// wrapped applications ship their self-describing XML documents to a
// server which stores them for later processing ("the collection code is
// called to send the gathered information to a central server", §2.3).
//
// The wire protocol is deliberately simple: a TCP connection carries one
// or more documents, each prefixed by a 4-byte big-endian length. The
// server sniffs each document's kind from its root element — nothing else
// is needed, the documents are self-describing.
//
// The package is built for fleet-scale ingest: the server tracks its
// connections (so Close returns promptly even with idle clients), bounds
// both concurrent connections and retained documents, and folds profile
// documents into a streaming aggregate at ingest time so repeated
// aggregation queries never re-parse stored XML. The client side offers a
// persistent Client with exponential-backoff retry and an asynchronous
// bounded Spooler that buffers documents while the collector is
// unreachable and replays them on reconnect.
package collect

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"healers/internal/xmlrep"
)

// MaxDocSize bounds one uploaded document; larger uploads are rejected to
// keep a misbehaving client from exhausting the server.
const MaxDocSize = 16 << 20

// Received is one stored document.
type Received struct {
	// Seq is the server-assigned ingest sequence number, strictly
	// increasing across the server's lifetime (eviction never reuses a
	// number). DocsSince uses it as a cursor.
	Seq uint64
	// From is the uploading peer's address.
	From string
	// Kind is the sniffed document kind.
	Kind xmlrep.DocKind
	// Data is the raw XML.
	Data []byte
	// At is the server receive time.
	At time.Time
}

// WriteFrame writes one length-prefixed document — the wire protocol's
// only frame shape, shared by uploads, requests, and responses. The
// server-side read lives in Server.handle, where the idle and per-frame
// deadlines interleave with the header and body reads.
func WriteFrame(w io.Writer, data []byte) error {
	if len(data) == 0 || len(data) > MaxDocSize {
		return fmt.Errorf("collect: bad document size %d", len(data))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// writeFrame is the package-internal alias WriteFrame grew out of.
func writeFrame(w io.Writer, data []byte) error { return WriteFrame(w, data) }

// ReadFrame reads one length-prefixed document, enforcing the MaxDocSize
// bound. It is the client-side read of a request/response exchange; the
// caller is responsible for any read deadline on r's connection.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxDocSize {
		return nil, fmt.Errorf("collect: bad frame size %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
