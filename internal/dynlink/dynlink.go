// Package dynlink is the simulated dynamic linker: it assembles a link
// map for one executable (preloaded objects first, then the executable's
// transitive NEEDED closure in breadth-first order) and performs symbol
// resolution through that search order.
//
// The preload list is the HEALERS deployment mechanism: "a user interested
// in using a wrapper can preload it by defining the LD_PRELOAD environment
// variable" (§2.1). A wrapper library placed in the preload list wins the
// symbol search for every function it exports, and reaches the original
// definition through the RTLD_NEXT-style NextFunc handed to its OnLoad
// hook.
package dynlink

import (
	"fmt"

	"healers/internal/cval"
	"healers/internal/simelf"
)

// Linkmap is the loaded image of one process: the executable plus its
// object search order.
type Linkmap struct {
	exe     *simelf.Executable
	objects []*simelf.Library
	// plt caches resolved symbols, like PLT binding after the first
	// call. Interposition still applies: the cache is filled through
	// the full search order.
	plt map[string]cval.CFunc
}

// Load builds the link map for exeName in sys, honouring the preload list
// (sonames resolved first, in the order given). It runs every object's
// OnLoad hook with its RTLD_NEXT resolver. Missing executables, missing
// libraries, or a failing OnLoad are errors — the program "does not
// start", matching ld.so behaviour.
func Load(sys *simelf.System, exeName string, preloads []string) (*Linkmap, error) {
	exe, ok := sys.Executable(exeName)
	if !ok {
		return nil, fmt.Errorf("dynlink: no such executable %q", exeName)
	}
	lm := &Linkmap{exe: exe, plt: make(map[string]cval.CFunc)}

	seen := make(map[string]bool)
	appendLib := func(soname string) error {
		if seen[soname] {
			return nil
		}
		lib, ok := sys.Library(soname)
		if !ok {
			return fmt.Errorf("dynlink: %s: cannot open shared object %q", exeName, soname)
		}
		seen[soname] = true
		lm.objects = append(lm.objects, lib)
		return nil
	}

	for _, soname := range preloads {
		if err := appendLib(soname); err != nil {
			return nil, err
		}
	}
	// Preloads may have NEEDED entries of their own; they join the
	// queue after all preloads, then the executable's deps.
	queue := append([]string(nil), exe.Needed...)
	for _, p := range lm.objects {
		queue = append(queue, p.Needed...)
	}
	for len(queue) > 0 {
		soname := queue[0]
		queue = queue[1:]
		if seen[soname] {
			continue
		}
		lib, ok := sys.Library(soname)
		if !ok {
			return nil, fmt.Errorf("dynlink: %s: cannot open shared object %q", exeName, soname)
		}
		seen[soname] = true
		lm.objects = append(lm.objects, lib)
		queue = append(queue, lib.Needed...)
	}

	// Run OnLoad hooks in search order, handing each object its
	// RTLD_NEXT resolver.
	for i, obj := range lm.objects {
		if obj.OnLoad == nil {
			continue
		}
		after := lm.objects[i+1:]
		next := func(symbol string) (cval.CFunc, bool) {
			for _, o := range after {
				if fn, ok := o.Lookup(symbol); ok {
					return fn, true
				}
			}
			return nil, false
		}
		if err := obj.OnLoad(next); err != nil {
			return nil, fmt.Errorf("dynlink: %s: initializing %s: %w", exeName, obj.Soname, err)
		}
	}

	// Verify every undefined symbol of the executable resolves; a
	// dynamically linked program with unresolved symbols fails at exec.
	for _, sym := range exe.Undefined {
		if _, ok := lm.lookup(sym); !ok {
			return nil, fmt.Errorf("dynlink: %s: undefined symbol %q", exeName, sym)
		}
	}
	return lm, nil
}

// lookup resolves a symbol through the full search order, uncached.
func (lm *Linkmap) lookup(symbol string) (cval.CFunc, bool) {
	for _, obj := range lm.objects {
		if fn, ok := obj.Lookup(symbol); ok {
			return fn, true
		}
	}
	return nil, false
}

// Resolve resolves a symbol with PLT-style caching.
func (lm *Linkmap) Resolve(symbol string) (cval.CFunc, bool) {
	if fn, ok := lm.plt[symbol]; ok {
		return fn, true
	}
	fn, ok := lm.lookup(symbol)
	if ok {
		lm.plt[symbol] = fn
	}
	return fn, ok
}

// DefiningObject returns the soname of the first object in search order
// that defines symbol — which library "wins" the interposition.
func (lm *Linkmap) DefiningObject(symbol string) (string, bool) {
	for _, obj := range lm.objects {
		if _, ok := obj.Lookup(symbol); ok {
			return obj.Soname, true
		}
	}
	return "", false
}

// Objects returns the sonames in search order.
func (lm *Linkmap) Objects() []string {
	names := make([]string, len(lm.objects))
	for i, o := range lm.objects {
		names[i] = o.Soname
	}
	return names
}

// Executable returns the program this link map was built for.
func (lm *Linkmap) Executable() *simelf.Executable { return lm.exe }
