package dynlink

import (
	"errors"
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// constFn returns a CFunc that returns a fixed value.
func constFn(v int64) cval.CFunc {
	return func(*cval.Env, []cval.Value) (cval.Value, *cmem.Fault) {
		return cval.Int(v), nil
	}
}

// buildSystem makes a small system: libbase defines f and g; libmid needs
// libbase and defines h; app needs libmid and calls f, g, h.
func buildSystem(t *testing.T) *simelf.System {
	t.Helper()
	sys := simelf.NewSystem()
	base := simelf.NewLibrary("libbase.so")
	base.Export("f", constFn(1))
	base.Export("g", constFn(2))
	mid := simelf.NewLibrary("libmid.so", "libbase.so")
	mid.Export("h", constFn(3))
	if err := sys.AddLibrary(base); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(mid); err != nil {
		t.Fatal(err)
	}
	app := &simelf.Executable{
		Name:      "app",
		Needed:    []string{"libmid.so"},
		Undefined: []string{"f", "g", "h"},
		Main:      func(c simelf.Caller, argv []string) int32 { return 0 },
	}
	if err := sys.AddExecutable(app); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestLoadResolvesTransitively(t *testing.T) {
	sys := buildSystem(t)
	lm, err := Load(sys, "app", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	objs := lm.Objects()
	if len(objs) != 2 || objs[0] != "libmid.so" || objs[1] != "libbase.so" {
		t.Errorf("Objects = %v, want [libmid.so libbase.so]", objs)
	}
	env := cval.NewEnv()
	for sym, want := range map[string]int64{"f": 1, "g": 2, "h": 3} {
		fn, ok := lm.Resolve(sym)
		if !ok {
			t.Fatalf("Resolve(%s) failed", sym)
		}
		v, fault := fn(env, nil)
		if fault != nil || v.Int() != want {
			t.Errorf("%s() = %v, %v; want %d", sym, v, fault, want)
		}
	}
	if _, ok := lm.Resolve("nope"); ok {
		t.Error("Resolve of unknown symbol succeeded")
	}
}

func TestLoadErrors(t *testing.T) {
	sys := buildSystem(t)
	tests := []struct {
		name     string
		exe      string
		preloads []string
	}{
		{"missing exe", "ghost", nil},
		{"missing preload", "app", []string{"libwrap.so"}},
	}
	for _, tt := range tests {
		if _, err := Load(sys, tt.exe, tt.preloads); err == nil {
			t.Errorf("%s: Load succeeded, want error", tt.name)
		}
	}
	// Missing NEEDED library.
	bad := &simelf.Executable{Name: "bad", Needed: []string{"libnothere.so"}}
	if err := sys.AddExecutable(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(sys, "bad", nil); err == nil {
		t.Error("Load with missing dependency succeeded")
	}
	// Undefined symbol.
	undef := &simelf.Executable{Name: "undef", Needed: []string{"libbase.so"}, Undefined: []string{"zz"}}
	if err := sys.AddExecutable(undef); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(sys, "undef", nil); err == nil {
		t.Error("Load with unresolvable undefined symbol succeeded")
	}
}

func TestPreloadInterposes(t *testing.T) {
	sys := buildSystem(t)
	wrap := simelf.NewLibrary("libwrap.so")
	wrap.Export("f", constFn(100))
	if err := sys.AddLibrary(wrap); err != nil {
		t.Fatal(err)
	}
	lm, err := Load(sys, "app", []string{"libwrap.so"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	env := cval.NewEnv()
	fn, _ := lm.Resolve("f")
	if v, _ := fn(env, nil); v.Int() != 100 {
		t.Errorf("interposed f() = %d, want 100", v.Int())
	}
	// Non-wrapped symbols fall through to the base library.
	fn, _ = lm.Resolve("g")
	if v, _ := fn(env, nil); v.Int() != 2 {
		t.Errorf("g() = %d, want 2", v.Int())
	}
	if def, _ := lm.DefiningObject("f"); def != "libwrap.so" {
		t.Errorf("DefiningObject(f) = %s", def)
	}
	if def, _ := lm.DefiningObject("g"); def != "libbase.so" {
		t.Errorf("DefiningObject(g) = %s", def)
	}
	if _, ok := lm.DefiningObject("zz"); ok {
		t.Error("DefiningObject of unknown symbol reported ok")
	}
}

func TestRTLDNextReachesOriginal(t *testing.T) {
	sys := buildSystem(t)
	wrap := simelf.NewLibrary("libwrap.so")
	var nextF cval.CFunc
	wrap.OnLoad = func(next simelf.NextFunc) error {
		fn, ok := next("f")
		if !ok {
			return errors.New("next(f) failed")
		}
		nextF = fn
		return nil
	}
	// The wrapper doubles the original's result.
	wrap.Export("f", func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		v, fault := nextF(env, args)
		if fault != nil {
			return 0, fault
		}
		return cval.Int(v.Int() * 2), nil
	})
	if err := sys.AddLibrary(wrap); err != nil {
		t.Fatal(err)
	}
	lm, err := Load(sys, "app", []string{"libwrap.so"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fn, _ := lm.Resolve("f")
	if v, _ := fn(cval.NewEnv(), nil); v.Int() != 2 {
		t.Errorf("wrapped f() = %d, want 2 (1 doubled)", v.Int())
	}
}

func TestOnLoadErrorAbortsLoad(t *testing.T) {
	sys := buildSystem(t)
	wrap := simelf.NewLibrary("libwrap.so")
	wrap.OnLoad = func(next simelf.NextFunc) error { return errors.New("boom") }
	if err := sys.AddLibrary(wrap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(sys, "app", []string{"libwrap.so"}); err == nil {
		t.Error("Load with failing OnLoad succeeded")
	}
}

func TestStackedPreloads(t *testing.T) {
	// Two wrappers stack: the first in the preload list wins, and its
	// RTLD_NEXT reaches the second, whose RTLD_NEXT reaches libbase.
	sys := buildSystem(t)
	mk := func(soname string, add int64) *simelf.Library {
		lib := simelf.NewLibrary(soname)
		var next cval.CFunc
		lib.OnLoad = func(nf simelf.NextFunc) error {
			fn, ok := nf("f")
			if !ok {
				return errors.New("next(f) failed in " + soname)
			}
			next = fn
			return nil
		}
		lib.Export("f", func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			v, fault := next(env, args)
			if fault != nil {
				return 0, fault
			}
			return cval.Int(v.Int()*10 + add), nil
		})
		return lib
	}
	if err := sys.AddLibrary(mk("libw1.so", 7)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(mk("libw2.so", 9)); err != nil {
		t.Fatal(err)
	}
	lm, err := Load(sys, "app", []string{"libw1.so", "libw2.so"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fn, _ := lm.Resolve("f")
	v, _ := fn(cval.NewEnv(), nil)
	// base f=1; w2: 1*10+9=19; w1: 19*10+7=197.
	if v.Int() != 197 {
		t.Errorf("stacked f() = %d, want 197", v.Int())
	}
}

func TestSystemQueries(t *testing.T) {
	sys := buildSystem(t)
	libs := sys.Libraries()
	if len(libs) != 2 || libs[0] != "libbase.so" || libs[1] != "libmid.so" {
		t.Errorf("Libraries = %v", libs)
	}
	if apps := sys.Executables(); len(apps) != 1 || apps[0] != "app" {
		t.Errorf("Executables = %v", apps)
	}
	deps, missing := sys.TransitiveDeps([]string{"libmid.so", "libghost.so"})
	if len(deps) != 2 || deps[0] != "libmid.so" || deps[1] != "libbase.so" {
		t.Errorf("deps = %v", deps)
	}
	if len(missing) != 1 || missing[0] != "libghost.so" {
		t.Errorf("missing = %v", missing)
	}
	// Duplicate installs error.
	if err := sys.AddLibrary(simelf.NewLibrary("libbase.so")); err == nil {
		t.Error("duplicate AddLibrary succeeded")
	}
	if err := sys.AddExecutable(&simelf.Executable{Name: "app"}); err == nil {
		t.Error("duplicate AddExecutable succeeded")
	}
	lib, _ := sys.Library("libbase.so")
	syms := lib.Symbols()
	if len(syms) != 2 || syms[0] != "f" || syms[1] != "g" {
		t.Errorf("Symbols = %v", syms)
	}
	if lib.NumSymbols() != 2 {
		t.Errorf("NumSymbols = %d", lib.NumSymbols())
	}
}

func TestDuplicateExportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Export did not panic")
		}
	}()
	lib := simelf.NewLibrary("x.so")
	lib.Export("f", constFn(1))
	lib.Export("f", constFn(2))
}
