package clib

import (
	"fmt"
	"math"
	"strconv"

	"healers/internal/cmem"
	"healers/internal/cval"
)

// The stdio.h family, including the printf engine. sprintf writes through
// its destination with *no bound* — the canonical heap/stack smashing
// vector the security wrapper exists to stop — and %n writes back through
// a pointer argument, the format-string attack the fmt chain rejects.

func init() {
	registerImpl("puts", cPuts)
	registerImpl("putchar", cPutchar)
	registerImpl("printf", cPrintf)
	registerImpl("fprintf", cFprintf)
	registerImpl("sprintf", cSprintf)
	registerImpl("snprintf", cSnprintf)
	registerImpl("sscanf", cSscanf)
	registerImpl("gets", cGets)
	registerImpl("fgets_fd", cFgetsFd)
	registerImpl("remove", cRemove)
	registerImpl("rename", cRename)
}

// emitFunc receives formatted output one byte at a time.
type emitFunc func(b byte) *cmem.Fault

// formatInto interprets the format string at fmtAddr against varargs,
// emitting bytes through emit. Returns the number of bytes produced
// (before any truncation applied by the emitter).
func formatInto(env *cval.Env, fmtAddr cmem.Addr, varargs []cval.Value, emit emitFunc) (int32, *cmem.Fault) {
	sp := env.Img.Space
	var count int32
	argi := 0
	nextArg := func() cval.Value {
		v := arg(varargs, argi)
		argi++
		return v
	}
	out := func(b byte) *cmem.Fault {
		count++
		return emit(b)
	}
	outStr := func(s string) *cmem.Fault {
		for i := 0; i < len(s); i++ {
			if f := out(s[i]); f != nil {
				return f
			}
		}
		return nil
	}

	for i := cmem.Addr(0); ; i++ {
		c, f := sp.ReadByteAt(fmtAddr + i)
		if f != nil {
			return count, f
		}
		if c == 0 {
			return count, nil
		}
		if c != '%' {
			if f := out(c); f != nil {
				return count, f
			}
			continue
		}
		// Parse %[flags][width][.precision]verb
		var (
			leftAlign, zeroPad, plusSign, spaceSign, altForm bool
			width, prec                                      = -1, -1
		)
	flags:
		for {
			i++
			c, f = sp.ReadByteAt(fmtAddr + i)
			if f != nil {
				return count, f
			}
			switch c {
			case '-':
				leftAlign = true
			case '0':
				zeroPad = true
			case '+':
				plusSign = true
			case ' ':
				spaceSign = true
			case '#':
				altForm = true
			default:
				break flags
			}
		}
		if c == '*' {
			width = int(nextArg().Int32())
			if width < 0 {
				leftAlign = true
				width = -width
			}
			i++
			c, f = sp.ReadByteAt(fmtAddr + i)
			if f != nil {
				return count, f
			}
		} else {
			for c >= '0' && c <= '9' {
				if width < 0 {
					width = 0
				}
				width = width*10 + int(c-'0')
				i++
				c, f = sp.ReadByteAt(fmtAddr + i)
				if f != nil {
					return count, f
				}
			}
		}
		if c == '.' {
			prec = 0
			i++
			c, f = sp.ReadByteAt(fmtAddr + i)
			if f != nil {
				return count, f
			}
			if c == '*' {
				prec = int(nextArg().Int32())
				i++
				c, f = sp.ReadByteAt(fmtAddr + i)
				if f != nil {
					return count, f
				}
			} else {
				for c >= '0' && c <= '9' {
					prec = prec*10 + int(c-'0')
					i++
					c, f = sp.ReadByteAt(fmtAddr + i)
					if f != nil {
						return count, f
					}
				}
			}
		}
		// Length modifiers are parsed and (mostly) ignored: the
		// simulated ABI passes everything as 64-bit words.
		long := 0
		for c == 'l' || c == 'h' || c == 'z' {
			if c == 'l' {
				long++
			}
			i++
			c, f = sp.ReadByteAt(fmtAddr + i)
			if f != nil {
				return count, f
			}
		}

		pad := func(s string) *cmem.Fault {
			if width > len(s) {
				if leftAlign {
					if f := outStr(s); f != nil {
						return f
					}
					for k := len(s); k < width; k++ {
						if f := out(' '); f != nil {
							return f
						}
					}
					return nil
				}
				if zeroPad {
					// C zero-pads after the sign: -007, not 00-7.
					if len(s) > 0 && (s[0] == '-' || s[0] == '+' || s[0] == ' ') {
						if f := out(s[0]); f != nil {
							return f
						}
						s = s[1:]
						width--
					}
					for k := len(s); k < width; k++ {
						if f := out('0'); f != nil {
							return f
						}
					}
					return outStr(s)
				}
				for k := len(s); k < width; k++ {
					if f := out(' '); f != nil {
						return f
					}
				}
			}
			return outStr(s)
		}
		signed := func(v int64) string {
			s := strconv.FormatInt(v, 10)
			if v >= 0 {
				if plusSign {
					s = "+" + s
				} else if spaceSign {
					s = " " + s
				}
			}
			return s
		}

		switch c {
		case '%':
			if f := out('%'); f != nil {
				return count, f
			}
		case 'd', 'i':
			v := nextArg()
			var n int64
			if long >= 2 {
				n = v.Int()
			} else {
				n = int64(v.Int32())
			}
			if f := pad(signed(n)); f != nil {
				return count, f
			}
		case 'u':
			v := nextArg()
			var n uint64
			if long >= 2 {
				n = uint64(v)
			} else {
				n = uint64(v.Uint32())
			}
			if f := pad(strconv.FormatUint(n, 10)); f != nil {
				return count, f
			}
		case 'x', 'X', 'o':
			v := nextArg()
			var n uint64
			if long >= 2 {
				n = uint64(v)
			} else {
				n = uint64(v.Uint32())
			}
			base := 16
			if c == 'o' {
				base = 8
			}
			s := strconv.FormatUint(n, base)
			if c == 'X' {
				s = upperHex(s)
			}
			if altForm && n != 0 {
				switch c {
				case 'x':
					s = "0x" + s
				case 'X':
					s = "0X" + s
				case 'o':
					s = "0" + s
				}
			}
			if f := pad(s); f != nil {
				return count, f
			}
		case 'c':
			if f := pad(string([]byte{nextArg().Byte()})); f != nil {
				return count, f
			}
		case 's':
			a := nextArg().Addr()
			// %s walks the argument string in simulated memory;
			// an invalid pointer faults exactly like a real printf.
			var s []byte
			for j := cmem.Addr(0); ; j++ {
				b, f := sp.ReadByteAt(a + j)
				if f != nil {
					return count, f
				}
				if b == 0 {
					break
				}
				if prec >= 0 && len(s) >= prec {
					break
				}
				s = append(s, b)
			}
			if f := pad(string(s)); f != nil {
				return count, f
			}
		case 'p':
			if f := pad(fmt.Sprintf("0x%x", nextArg().Uint32())); f != nil {
				return count, f
			}
		case 'f', 'g', 'e':
			v := math.Float64frombits(uint64(nextArg()))
			p := prec
			if p < 0 {
				p = 6
			}
			var s string
			switch c {
			case 'f':
				s = strconv.FormatFloat(v, 'f', p, 64)
			case 'e':
				s = strconv.FormatFloat(v, 'e', p, 64)
			default:
				s = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if f := pad(s); f != nil {
				return count, f
			}
		case 'n':
			// The format-string attack vector: write the count so
			// far through the next pointer argument.
			a := nextArg().Addr()
			if f := sp.WriteU32(a, uint32(count)); f != nil {
				return count, f
			}
		default:
			// Unknown verb: C behaviour is undefined; glibc prints
			// the raw characters.
			if f := out('%'); f != nil {
				return count, f
			}
			if f := out(c); f != nil {
				return count, f
			}
		}
	}
}

func upperHex(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'f' {
			b[i] = c - 32
		}
	}
	return string(b)
}

// writeToFd routes a byte to a descriptor: 1=stdout, 2=stderr, else the
// open file table.
func writeToFd(env *cval.Env, fd int32) (emitFunc, bool) {
	switch fd {
	case 1:
		return func(b byte) *cmem.Fault { env.Stdout.WriteByte(b); return nil }, true
	case 2:
		return func(b byte) *cmem.Fault { env.Stderr.WriteByte(b); return nil }, true
	default:
		f, ok := env.File(fd)
		if !ok || f.RdOnly {
			return nil, false
		}
		return func(b byte) *cmem.Fault { f.Data.WriteByte(b); return nil }, true
	}
}

func cPuts(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<20)
	if f != nil {
		return 0, f
	}
	env.Stdout.WriteString(s)
	env.Stdout.WriteByte('\n')
	return cval.Int(int64(len(s)) + 1), nil
}

func cPutchar(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	c := arg(args, 0).Byte()
	env.Stdout.WriteByte(c)
	return cval.Int(int64(c)), nil
}

func cPrintf(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	n, f := formatInto(env, arg(args, 0).Addr(), args[min(1, len(args)):], func(b byte) *cmem.Fault {
		env.Stdout.WriteByte(b)
		return nil
	})
	if f != nil {
		return 0, f
	}
	return cval.Int(int64(n)), nil
}

func cFprintf(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	fd := arg(args, 0).Int32()
	emit, ok := writeToFd(env, fd)
	if !ok {
		env.Errno = cval.EBADF
		return cval.Int(-1), nil
	}
	n, f := formatInto(env, arg(args, 1).Addr(), args[min(2, len(args)):], emit)
	if f != nil {
		return 0, f
	}
	return cval.Int(int64(n)), nil
}

func cSprintf(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst := arg(args, 0).Addr()
	sp := env.Img.Space
	off := cmem.Addr(0)
	n, f := formatInto(env, arg(args, 1).Addr(), args[min(2, len(args)):], func(b byte) *cmem.Fault {
		// No bound whatsoever: sprintf is the paper's headline
		// overflow vector.
		ferr := sp.WriteByteAt(dst+off, b)
		off++
		return ferr
	})
	if f != nil {
		return 0, f
	}
	if f := sp.WriteByteAt(dst+off, 0); f != nil {
		return 0, f
	}
	return cval.Int(int64(n)), nil
}

func cSnprintf(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst := arg(args, 0).Addr()
	size := arg(args, 1).Uint32()
	sp := env.Img.Space
	off := uint32(0)
	n, f := formatInto(env, arg(args, 2).Addr(), args[min(3, len(args)):], func(b byte) *cmem.Fault {
		if size > 0 && off < size-1 {
			if ferr := sp.WriteByteAt(dst+cmem.Addr(off), b); ferr != nil {
				return ferr
			}
			off++
		}
		return nil
	})
	if f != nil {
		return 0, f
	}
	if size > 0 {
		if f := sp.WriteByteAt(dst+cmem.Addr(off), 0); f != nil {
			return 0, f
		}
	}
	return cval.Int(int64(n)), nil
}

// cSscanf supports the %d, %u, %x, %s and %c verbs — the subset the
// example applications use.
func cSscanf(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	sp := env.Img.Space
	src := arg(args, 0).Addr()
	fmtA := arg(args, 1).Addr()
	varargs := args[min(2, len(args)):]
	argi := 0
	matched := int32(0)
	si := cmem.Addr(0)

	skipSpace := func() *cmem.Fault {
		for {
			b, f := sp.ReadByteAt(src + si)
			if f != nil {
				return f
			}
			if b != ' ' && b != '\t' && b != '\n' {
				return nil
			}
			si++
		}
	}

	for fi := cmem.Addr(0); ; fi++ {
		c, f := sp.ReadByteAt(fmtA + fi)
		if f != nil {
			return 0, f
		}
		if c == 0 {
			return cval.Int(int64(matched)), nil
		}
		if c == ' ' {
			if f := skipSpace(); f != nil {
				return 0, f
			}
			continue
		}
		if c != '%' {
			b, f := sp.ReadByteAt(src + si)
			if f != nil {
				return 0, f
			}
			if b != c {
				return cval.Int(int64(matched)), nil
			}
			si++
			continue
		}
		fi++
		c, f = sp.ReadByteAt(fmtA + fi)
		if f != nil {
			return 0, f
		}
		out := arg(varargs, argi)
		argi++
		switch c {
		case 'd', 'u', 'x':
			if f := skipSpace(); f != nil {
				return 0, f
			}
			base := 10
			if c == 'x' {
				base = 16
			}
			val, neg, end, any, f := parseIntBody(env, src+si, base)
			if f != nil {
				return 0, f
			}
			if !any {
				return cval.Int(int64(matched)), nil
			}
			v := int64(val)
			if neg {
				v = -v
			}
			if f := sp.WriteU32(out.Addr(), uint32(int32(v))); f != nil {
				return 0, f
			}
			si = end - src // end is absolute; si is an offset
			matched++
		case 's':
			if f := skipSpace(); f != nil {
				return 0, f
			}
			start := si
			j := cmem.Addr(0)
			for {
				b, f := sp.ReadByteAt(src + si)
				if f != nil {
					return 0, f
				}
				if b == 0 || b == ' ' || b == '\t' || b == '\n' {
					break
				}
				// Unbounded %s write: another classic overflow.
				if f := sp.WriteByteAt(out.Addr()+j, b); f != nil {
					return 0, f
				}
				j++
				si++
			}
			if si == start {
				return cval.Int(int64(matched)), nil
			}
			if f := sp.WriteByteAt(out.Addr()+j, 0); f != nil {
				return 0, f
			}
			matched++
		case 'c':
			b, f := sp.ReadByteAt(src + si)
			if f != nil {
				return 0, f
			}
			if b == 0 {
				return cval.Int(int64(matched)), nil
			}
			if f := sp.WriteByteAt(out.Addr(), b); f != nil {
				return 0, f
			}
			si++
			matched++
		default:
			return cval.Int(int64(matched)), nil
		}
	}
}

// cGets reads a line from simulated stdin into the destination with no
// bound — the function so dangerous it was removed from C11.
func cGets(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst := arg(args, 0).Addr()
	sp := env.Img.Space
	i := cmem.Addr(0)
	for {
		b, err := env.Stdin.ReadByte()
		if err != nil {
			if i == 0 {
				return cval.Ptr(0), nil // EOF with nothing read
			}
			break
		}
		if b == '\n' {
			break
		}
		if f := sp.WriteByteAt(dst+i, b); f != nil {
			return 0, f
		}
		i++
	}
	if f := sp.WriteByteAt(dst+i, 0); f != nil {
		return 0, f
	}
	return cval.Ptr(dst), nil
}

func cFgetsFd(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst := arg(args, 0).Addr()
	size := arg(args, 1).Int32()
	fd := arg(args, 2).Int32()
	if size <= 0 {
		return cval.Ptr(0), nil
	}
	sp := env.Img.Space
	read1 := func() (byte, bool) {
		if fd == 0 {
			b, err := env.Stdin.ReadByte()
			return b, err == nil
		}
		f, ok := env.File(fd)
		if !ok || f.Pos >= f.Data.Len() {
			return 0, false
		}
		b := f.Data.Bytes()[f.Pos]
		f.Pos++
		return b, true
	}
	i := cmem.Addr(0)
	for int32(i) < size-1 {
		b, ok := read1()
		if !ok {
			if i == 0 {
				return cval.Ptr(0), nil
			}
			break
		}
		if f := sp.WriteByteAt(dst+i, b); f != nil {
			return 0, f
		}
		i++
		if b == '\n' {
			break
		}
	}
	if f := sp.WriteByteAt(dst+i, 0); f != nil {
		return 0, f
	}
	return cval.Ptr(dst), nil
}

func cRemove(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	name, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	if !env.RemoveFile(name) {
		return cval.Int(-1), nil
	}
	return cval.Int(0), nil
}

func cRename(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	oldName, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	newName, f := env.Img.Space.ReadCString(arg(args, 1).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	if !env.RenameFile(oldName, newName) {
		return cval.Int(-1), nil
	}
	return cval.Int(0), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
