package clib

import (
	"math"
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
)

func TestMallocFreeViaLibc(t *testing.T) {
	c := newCtx(t)
	p := c.call("malloc", cval.Uint(100))
	if p.IsNull() {
		t.Fatal("malloc returned NULL")
	}
	if sz, ok := c.env.Img.Heap.UsableSize(p.Addr()); !ok || sz != 100 {
		t.Errorf("UsableSize = %d,%v", sz, ok)
	}
	c.call("free", p)
	if c.env.Img.Heap.InUse(p.Addr()) {
		t.Error("chunk still live after free")
	}
	// Double free aborts — the injector sees SIGABRT.
	if _, f := c.tryCall("free", p); f == nil || f.Kind != cmem.FaultAbort {
		t.Errorf("double free: fault = %v, want SIGABRT", f)
	}
}

func TestCalloc(t *testing.T) {
	c := newCtx(t)
	p := c.call("calloc", cval.Uint(4), cval.Uint(8))
	if p.IsNull() {
		t.Fatal("calloc returned NULL")
	}
	for i := cmem.Addr(0); i < 32; i++ {
		b, f := c.env.Img.Space.ReadByteAt(p.Addr() + i)
		if f != nil {
			t.Fatalf("read: %v", f)
		}
		if b != 0 {
			t.Fatalf("calloc byte %d = %#x, want 0", i, b)
		}
	}
	// Multiplication overflow returns NULL, not a tiny allocation.
	q := c.call("calloc", cval.Uint(0x10000), cval.Uint(0x10000))
	if !q.IsNull() {
		t.Errorf("calloc overflow = %s, want NULL", q.Addr())
	}
	if c.env.Errno != cval.ENOMEM {
		t.Errorf("errno = %d, want ENOMEM", c.env.Errno)
	}
}

func TestReallocViaLibc(t *testing.T) {
	c := newCtx(t)
	p := c.call("malloc", cval.Uint(8))
	c.env.Img.Space.WriteCString(p.Addr(), "1234567")
	q := c.call("realloc", p, cval.Uint(64))
	if q.IsNull() {
		t.Fatal("realloc returned NULL")
	}
	if got := c.readStr(q); got != "1234567" {
		t.Errorf("data after realloc = %q", got)
	}
}

func TestAtoiFamily(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		s    string
		want int32
	}{
		{"0", 0},
		{"42", 42},
		{"-17", -17},
		{"+99", 99},
		{"   123", 123},
		{"12abc", 12},
		{"abc", 0},
		{"", 0},
		{"2147483647", math.MaxInt32},
	}
	for _, tt := range tests {
		if got := c.call("atoi", c.str(tt.s)).Int32(); got != tt.want {
			t.Errorf("atoi(%q) = %d, want %d", tt.s, got, tt.want)
		}
	}
	if _, f := c.tryCall("atoi", cval.Ptr(0)); f == nil {
		t.Error("atoi(NULL) did not fault")
	}
	if got := c.call("atoll", c.str("9999999999")).Int(); got != 9999999999 {
		t.Errorf("atoll = %d", got)
	}
}

func TestAtof(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		s    string
		want float64
	}{
		{"0", 0},
		{"3.5", 3.5},
		{"-2.25", -2.25},
		{"1e3", 1000},
		{"2.5e-2", 0.025},
	}
	for _, tt := range tests {
		bits := uint64(c.call("atof", c.str(tt.s)))
		got := math.Float64frombits(bits)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("atof(%q) = %g, want %g", tt.s, got, tt.want)
		}
	}
}

func TestStrtol(t *testing.T) {
	c := newCtx(t)
	endp := c.buf(8)
	s := c.str("  -0x1A rest")
	got := c.call("strtol", s, endp, cval.Int(0)).Int32()
	if got != -26 {
		t.Errorf("strtol = %d, want -26", got)
	}
	end, _ := c.env.Img.Space.ReadU32(endp.Addr())
	if cmem.Addr(end) != s.Addr()+7 {
		t.Errorf("endptr = %#x, want %s", end, s.Addr()+7)
	}
	// Base 8 from leading 0.
	if got := c.call("strtol", c.str("017"), cval.Ptr(0), cval.Int(0)).Int32(); got != 15 {
		t.Errorf("strtol octal = %d, want 15", got)
	}
	// Explicit base 16 without prefix.
	if got := c.call("strtol", c.str("ff"), cval.Ptr(0), cval.Int(16)).Int32(); got != 255 {
		t.Errorf("strtol base16 = %d, want 255", got)
	}
	// Invalid base sets EINVAL.
	c.env.Errno = 0
	c.call("strtol", c.str("5"), cval.Ptr(0), cval.Int(1))
	if c.env.Errno != cval.EINVAL {
		t.Errorf("errno = %d, want EINVAL", c.env.Errno)
	}
	// Overflow clamps with ERANGE.
	c.env.Errno = 0
	if got := c.call("strtol", c.str("99999999999"), cval.Ptr(0), cval.Int(10)).Int32(); got != math.MaxInt32 {
		t.Errorf("strtol overflow = %d, want INT_MAX", got)
	}
	if c.env.Errno != cval.ERANGE {
		t.Errorf("errno = %d, want ERANGE", c.env.Errno)
	}
	// No digits: endptr points back at nptr.
	s2 := c.str("xyz")
	c.call("strtol", s2, endp, cval.Int(10))
	end, _ = c.env.Img.Space.ReadU32(endp.Addr())
	if cmem.Addr(end) != s2.Addr() {
		t.Errorf("no-digit endptr = %#x, want %s", end, s2.Addr())
	}
	// Writing through a wild endptr faults — the ptr_out hazard.
	if _, f := c.tryCall("strtol", c.str("5"), cval.Ptr(0xdeadbee0), cval.Int(10)); f == nil {
		t.Error("strtol with wild endptr did not fault")
	}
}

func TestStrtoul(t *testing.T) {
	c := newCtx(t)
	if got := c.call("strtoul", c.str("4294967295"), cval.Ptr(0), cval.Int(10)).Uint32(); got != math.MaxUint32 {
		t.Errorf("strtoul max = %d", got)
	}
	// Negation wraps in unsigned arithmetic.
	if got := c.call("strtoul", c.str("-1"), cval.Ptr(0), cval.Int(10)).Uint32(); got != math.MaxUint32 {
		t.Errorf("strtoul(-1) = %d, want UINT_MAX", got)
	}
}

func TestAbsFamily(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		in   int64
		want int64
	}{
		{5, 5}, {-5, 5}, {0, 0}, {math.MinInt32, math.MinInt32},
	}
	for _, tt := range tests {
		if got := int64(c.call("abs", cval.Int(tt.in)).Int32()); got != tt.want {
			t.Errorf("abs(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	if got := c.call("llabs", cval.Int(-(1 << 40))).Int(); got != 1<<40 {
		t.Errorf("llabs = %d", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	c := newCtx(t)
	c.call("srand", cval.Uint(7))
	a := c.call("rand").Int32()
	b := c.call("rand").Int32()
	c.call("srand", cval.Uint(7))
	if got := c.call("rand").Int32(); got != a {
		t.Errorf("rand after re-seed = %d, want %d", got, a)
	}
	if got := c.call("rand").Int32(); got != b {
		t.Errorf("second rand = %d, want %d", got, b)
	}
	if a < 0 || b < 0 {
		t.Error("rand returned negative")
	}
}

func TestQsortAndBsearch(t *testing.T) {
	c := newCtx(t)
	// An array of 8 uint32 values, sorted via a registered comparator.
	base := c.buf(32)
	vals := []uint32{42, 7, 99, 1, 56, 7, 0, 13}
	for i, v := range vals {
		c.env.Img.Space.WriteU32(base.Addr()+cmem.Addr(i*4), v)
	}
	cmp := c.env.RegisterText("cmp_u32", func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		a, f := env.Img.Space.ReadU32(args[0].Addr())
		if f != nil {
			return 0, f
		}
		b, f := env.Img.Space.ReadU32(args[1].Addr())
		if f != nil {
			return 0, f
		}
		return cval.Int(int64(int32(a)) - int64(int32(b))), nil
	})
	c.call("qsort", base, cval.Uint(8), cval.Uint(4), cval.Ptr(cmp))
	want := []uint32{0, 1, 7, 7, 13, 42, 56, 99}
	for i, w := range want {
		got, _ := c.env.Img.Space.ReadU32(base.Addr() + cmem.Addr(i*4))
		if got != w {
			t.Errorf("sorted[%d] = %d, want %d", i, got, w)
		}
	}
	// bsearch finds present and rejects absent keys.
	key := c.buf(4)
	c.env.Img.Space.WriteU32(key.Addr(), 13)
	got := c.call("bsearch", key, base, cval.Uint(8), cval.Uint(4), cval.Ptr(cmp))
	if got.IsNull() {
		t.Fatal("bsearch did not find 13")
	}
	v, _ := c.env.Img.Space.ReadU32(got.Addr())
	if v != 13 {
		t.Errorf("bsearch found %d", v)
	}
	c.env.Img.Space.WriteU32(key.Addr(), 1000)
	if got := c.call("bsearch", key, base, cval.Uint(8), cval.Uint(4), cval.Ptr(cmp)); !got.IsNull() {
		t.Error("bsearch found absent key")
	}
	// qsort with a garbage comparator is a SIGSEGV — the func_ptr chain.
	if _, f := c.tryCall("qsort", base, cval.Uint(8), cval.Uint(4), cval.Ptr(0x123)); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("qsort with wild comparator: fault = %v, want SIGSEGV", f)
	}
}

func TestExitRunsAtexitHandlers(t *testing.T) {
	c := newCtx(t)
	var order []string
	h1 := c.env.RegisterText("h1", func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		order = append(order, "h1")
		return 0, nil
	})
	h2 := c.env.RegisterText("h2", func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		order = append(order, "h2")
		return 0, nil
	})
	c.call("atexit", cval.Ptr(h1))
	c.call("atexit", cval.Ptr(h2))
	c.call("exit", cval.Int(5))
	if !c.env.Exited || c.env.Status != 5 {
		t.Fatalf("Exited=%v Status=%d", c.env.Exited, c.env.Status)
	}
	if len(order) != 2 || order[0] != "h2" || order[1] != "h1" {
		t.Errorf("atexit order = %v, want [h2 h1] (reverse registration)", order)
	}
}

func TestAbort(t *testing.T) {
	c := newCtx(t)
	if _, f := c.tryCall("abort"); f == nil || f.Kind != cmem.FaultAbort {
		t.Errorf("abort: fault = %v, want SIGABRT", f)
	}
}

func TestGetenvSetenv(t *testing.T) {
	c := newCtx(t)
	if got := c.call("getenv", c.str("HOME")); !got.IsNull() {
		t.Error("getenv unset should be NULL")
	}
	if got := c.call("setenv", c.str("HOME"), c.str("/root"), cval.Int(1)).Int32(); got != 0 {
		t.Errorf("setenv = %d", got)
	}
	v := c.call("getenv", c.str("HOME"))
	if c.readStr(v) != "/root" {
		t.Errorf("getenv = %q", c.readStr(v))
	}
	// overwrite=0 keeps the old value.
	c.call("setenv", c.str("HOME"), c.str("/other"), cval.Int(0))
	if got := c.readStr(c.call("getenv", c.str("HOME"))); got != "/root" {
		t.Errorf("after no-overwrite setenv = %q", got)
	}
	// Empty name is EINVAL.
	c.env.Errno = 0
	if got := c.call("setenv", c.str(""), c.str("x"), cval.Int(1)).Int32(); got != -1 || c.env.Errno != cval.EINVAL {
		t.Errorf("setenv empty name = %d errno %d", got, c.env.Errno)
	}
	c.call("unsetenv", c.str("HOME"))
	if got := c.call("getenv", c.str("HOME")); !got.IsNull() {
		t.Error("getenv after unsetenv should be NULL")
	}
}

func TestSystemRecordsShell(t *testing.T) {
	c := newCtx(t)
	if c.env.ShellSpawned {
		t.Fatal("fresh env claims shell spawned")
	}
	c.call("system", c.str("/bin/sh"))
	if !c.env.ShellSpawned {
		t.Error("system did not record shell spawn")
	}
}

func TestAtolAndLabs(t *testing.T) {
	c := newCtx(t)
	if got := c.call("atol", c.str("-31337")).Int32(); got != -31337 {
		t.Errorf("atol = %d", got)
	}
	if got := c.call("labs", cval.Int(-9)).Int32(); got != 9 {
		t.Errorf("labs = %d", got)
	}
}

func TestStrtoulEdgeCases(t *testing.T) {
	c := newCtx(t)
	// Hex with prefix under base 0.
	if got := c.call("strtoul", c.str("0x1f"), cval.Ptr(0), cval.Int(0)).Uint32(); got != 31 {
		t.Errorf("strtoul 0x1f = %d", got)
	}
	// Overflow clamps with ERANGE.
	c.env.Errno = 0
	if got := c.call("strtoul", c.str("99999999999"), cval.Ptr(0), cval.Int(10)).Uint32(); got != math.MaxUint32 {
		t.Errorf("strtoul overflow = %d", got)
	}
	if c.env.Errno != cval.ERANGE {
		t.Errorf("errno = %d, want ERANGE", c.env.Errno)
	}
	// Invalid base.
	c.env.Errno = 0
	c.call("strtoul", c.str("1"), cval.Ptr(0), cval.Int(99))
	if c.env.Errno != cval.EINVAL {
		t.Errorf("errno = %d, want EINVAL", c.env.Errno)
	}
	// endptr write.
	endp := c.buf(8)
	s := c.str("42;")
	c.call("strtoul", s, endp, cval.Int(10))
	end, _ := c.env.Img.Space.ReadU32(endp.Addr())
	if cmem.Addr(end) != s.Addr()+2 {
		t.Errorf("endptr = %#x", end)
	}
}

func TestAsLibraryExportsEverything(t *testing.T) {
	reg := MustRegistry()
	lib := reg.AsLibrary()
	if lib.Soname != LibcSoname {
		t.Errorf("soname = %q", lib.Soname)
	}
	if lib.NumSymbols() != reg.Len() {
		t.Errorf("library exports %d of %d functions", lib.NumSymbols(), reg.Len())
	}
	for _, n := range reg.Names() {
		if lib.Proto(n) == nil {
			t.Errorf("%s exported without prototype", n)
		}
	}
}
