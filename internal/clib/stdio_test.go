package clib

import (
	"math"
	"strings"
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
)

func TestPutsAndPutchar(t *testing.T) {
	c := newCtx(t)
	n := c.call("puts", c.str("hello")).Int32()
	if n != 6 {
		t.Errorf("puts returned %d, want 6", n)
	}
	c.call("putchar", cval.Int('!'))
	if got := c.env.Stdout.String(); got != "hello\n!" {
		t.Errorf("stdout = %q", got)
	}
}

func TestPrintfVerbs(t *testing.T) {
	tests := []struct {
		name string
		fmt  string
		args func(c *testCtx) []cval.Value
		want string
	}{
		{"plain", "no directives", nil, "no directives"},
		{"percent", "100%%", nil, "100%"},
		{"int", "%d", args(cval.Int(-42)), "-42"},
		{"int width", "[%5d]", args(cval.Int(42)), "[   42]"},
		{"int zero pad", "[%05d]", args(cval.Int(42)), "[00042]"},
		{"int left", "[%-5d]", args(cval.Int(42)), "[42   ]"},
		{"plus", "%+d %+d", args(cval.Int(1), cval.Int(-1)), "+1 -1"},
		{"space flag", "% d", args(cval.Int(7)), " 7"},
		{"unsigned", "%u", args(cval.Int(-1)), "4294967295"},
		{"hex", "%x %X", args(cval.Uint(0xbeef), cval.Uint(0xbeef)), "beef BEEF"},
		{"alt hex", "%#x", args(cval.Uint(255)), "0xff"},
		{"octal", "%o %#o", args(cval.Uint(8), cval.Uint(8)), "10 010"},
		{"char", "%c%c", args(cval.Int('h'), cval.Int('i')), "hi"},
		{"pointer", "%p", args(cval.Ptr(0x1000)), "0x1000"},
		{"star width", "[%*d]", args(cval.Int(4), cval.Int(7)), "[   7]"},
		{"neg star width", "[%*d]", args(cval.Int(-4), cval.Int(7)), "[7   ]"},
		{"long long", "%lld", args(cval.Int(1 << 40)), "1099511627776"},
		{"float", "%.2f", args(cval.Uint(math.Float64bits(3.14159))), "3.14"},
		{"unknown verb", "%q", args(cval.Int(1)), "%q"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := newCtx(t)
			var av []cval.Value
			if tt.args != nil {
				av = tt.args(c)
			}
			c.call("printf", append([]cval.Value{c.str(tt.fmt)}, av...)...)
			if got := c.env.Stdout.String(); got != tt.want {
				t.Errorf("printf(%q) wrote %q, want %q", tt.fmt, got, tt.want)
			}
		})
	}
}

func args(vs ...cval.Value) func(*testCtx) []cval.Value {
	return func(*testCtx) []cval.Value { return vs }
}

func TestPrintfString(t *testing.T) {
	c := newCtx(t)
	c.call("printf", c.str("<%s>"), c.str("abc"))
	if got := c.env.Stdout.String(); got != "<abc>" {
		t.Errorf("printf %%s = %q", got)
	}
	c.env.Stdout.Reset()
	c.call("printf", c.str("<%.2s>"), c.str("abc"))
	if got := c.env.Stdout.String(); got != "<ab>" {
		t.Errorf("printf %%.2s = %q", got)
	}
	c.env.Stdout.Reset()
	c.call("printf", c.str("<%6s>"), c.str("abc"))
	if got := c.env.Stdout.String(); got != "<   abc>" {
		t.Errorf("printf %%6s = %q", got)
	}
	// %s with a wild pointer faults, like real printf.
	if _, f := c.tryCall("printf", c.str("%s"), cval.Ptr(0xdeadbeef)); f == nil {
		t.Error("printf with wild string pointer did not fault")
	}
}

func TestPrintfPercentN(t *testing.T) {
	c := newCtx(t)
	out := c.buf(8)
	n := c.call("printf", c.str("12345%n"), out).Int32()
	if n != 5 {
		t.Errorf("printf returned %d, want 5", n)
	}
	v, _ := c.env.Img.Space.ReadU32(out.Addr())
	if v != 5 {
		t.Errorf("%%n wrote %d, want 5", v)
	}
	// %n through a wild pointer faults — the attack the fmt chain stops.
	if _, f := c.tryCall("printf", c.str("abc%n"), cval.Ptr(0xdead0000)); f == nil {
		t.Error("%n with wild pointer did not fault")
	}
}

func TestPrintfReturnsByteCount(t *testing.T) {
	c := newCtx(t)
	n := c.call("printf", c.str("ab%dcd"), cval.Int(123)).Int32()
	if n != 7 {
		t.Errorf("printf count = %d, want 7", n)
	}
}

func TestSprintfUnbounded(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(64)
	c.call("sprintf", dst, c.str("%s=%d"), c.str("key"), cval.Int(7))
	if got := c.readStr(dst); got != "key=7" {
		t.Errorf("sprintf = %q", got)
	}
	// sprintf happily smashes past a small heap chunk (silent, in-page).
	small := c.call("malloc", cval.Uint(4))
	next := c.call("malloc", cval.Uint(8))
	c.env.Img.Space.WriteCString(next.Addr(), "target")
	c.call("sprintf", small, c.str("%s"), c.str(strings.Repeat("A", 40)))
	if got := c.readStr(next); got == "target" {
		t.Error("sprintf overflow did not corrupt neighbour chunk")
	}
}

func TestSnprintfBounded(t *testing.T) {
	c := newCtx(t)
	// Allocate the format and payload strings before placing the
	// sentinel: static allocation is a bump pointer, and the sentinel
	// must not sit inside a later allocation.
	fmtS := c.str("%s")
	payload := c.str("0123456789")
	dst := c.buf(8)
	// Sentinel right past the buffer bound.
	c.env.Img.Space.WriteByteAt(dst.Addr()+8, 'Z')
	n := c.call("snprintf", dst, cval.Uint(8), fmtS, payload).Int32()
	if n != 10 {
		t.Errorf("snprintf returned %d, want full length 10", n)
	}
	if got := c.readStr(dst); got != "0123456" {
		t.Errorf("snprintf truncated = %q, want %q", got, "0123456")
	}
	b, _ := c.env.Img.Space.ReadByteAt(dst.Addr() + 8)
	if b != 'Z' {
		t.Error("snprintf wrote past its bound")
	}
	// size 0 writes nothing at all.
	if n := c.call("snprintf", cval.Ptr(0), cval.Uint(0), c.str("abc")).Int32(); n != 3 {
		t.Errorf("snprintf(NULL,0) = %d, want 3", n)
	}
}

func TestFprintf(t *testing.T) {
	c := newCtx(t)
	c.call("fprintf", cval.Int(2), c.str("err %d"), cval.Int(9))
	if got := c.env.Stderr.String(); got != "err 9" {
		t.Errorf("stderr = %q", got)
	}
	// To an open file.
	fd := c.call("open", c.str("log.txt"), cval.Int(oWronly|oCreat)).Int32()
	if fd < 0 {
		t.Fatal("open failed")
	}
	c.call("fprintf", cval.Int(int64(fd)), c.str("line %d\n"), cval.Int(1))
	c.call("close", cval.Int(int64(fd)))
	data, ok := c.env.FileData("log.txt")
	if !ok || string(data) != "line 1\n" {
		t.Errorf("file = %q, %v", data, ok)
	}
	// Bad fd returns -1/EBADF.
	c.env.Errno = 0
	if got := c.call("fprintf", cval.Int(77), c.str("x")).Int32(); got != -1 || c.env.Errno != cval.EBADF {
		t.Errorf("fprintf bad fd = %d errno %d", got, c.env.Errno)
	}
}

func TestSscanf(t *testing.T) {
	c := newCtx(t)
	a := c.buf(4)
	b := c.buf(4)
	s := c.buf(32)
	n := c.call("sscanf", c.str("12 34 word"), c.str("%d %d %s"), a, b, s).Int32()
	if n != 3 {
		t.Fatalf("sscanf matched %d, want 3", n)
	}
	va, _ := c.env.Img.Space.ReadU32(a.Addr())
	vb, _ := c.env.Img.Space.ReadU32(b.Addr())
	if va != 12 || vb != 34 {
		t.Errorf("ints = %d,%d", va, vb)
	}
	if got := c.readStr(s); got != "word" {
		t.Errorf("str = %q", got)
	}
	// Literal mismatch stops the scan.
	n = c.call("sscanf", c.str("x=5"), c.str("y=%d"), a).Int32()
	if n != 0 {
		t.Errorf("mismatch scan = %d, want 0", n)
	}
	// Hex verb.
	n = c.call("sscanf", c.str("ff"), c.str("%x"), a).Int32()
	va, _ = c.env.Img.Space.ReadU32(a.Addr())
	if n != 1 || va != 255 {
		t.Errorf("hex scan = %d, %d", n, va)
	}
}

func TestGetsOverflows(t *testing.T) {
	c := newCtx(t)
	c.env.Stdin.WriteString("short\n")
	dst := c.buf(32)
	ret := c.call("gets", dst)
	if ret != dst || c.readStr(dst) != "short" {
		t.Errorf("gets = %q", c.readStr(dst))
	}
	// EOF with nothing read returns NULL.
	if got := c.call("gets", dst); !got.IsNull() {
		t.Error("gets at EOF should return NULL")
	}
	// gets happily overruns a tiny buffer into its neighbour.
	c.env.Stdin.WriteString(strings.Repeat("B", 64) + "\n")
	small := c.call("malloc", cval.Uint(4))
	next := c.call("malloc", cval.Uint(8))
	c.env.Img.Space.WriteCString(next.Addr(), "ok")
	c.call("gets", small)
	if got := c.readStr(next); got == "ok" {
		t.Error("gets overflow did not corrupt neighbour")
	}
}

func TestFgetsFd(t *testing.T) {
	c := newCtx(t)
	c.env.PutFile("in.txt", []byte("line one\nline two\n"))
	fd := c.call("open", c.str("in.txt"), cval.Int(oRdonly)).Int32()
	dst := c.buf(64)
	c.call("fgets_fd", dst, cval.Int(64), cval.Int(int64(fd)))
	if got := c.readStr(dst); got != "line one\n" {
		t.Errorf("first line = %q", got)
	}
	c.call("fgets_fd", dst, cval.Int(64), cval.Int(int64(fd)))
	if got := c.readStr(dst); got != "line two\n" {
		t.Errorf("second line = %q", got)
	}
	if got := c.call("fgets_fd", dst, cval.Int(64), cval.Int(int64(fd))); !got.IsNull() {
		t.Error("fgets at EOF should be NULL")
	}
	// Bounded: size 4 reads 3 chars + NUL.
	c.env.Stdin.WriteString("abcdefg")
	c.call("fgets_fd", dst, cval.Int(4), cval.Int(0))
	if got := c.readStr(dst); got != "abc" {
		t.Errorf("bounded fgets = %q", got)
	}
}

func TestRemoveRename(t *testing.T) {
	c := newCtx(t)
	c.env.PutFile("a.txt", []byte("x"))
	if got := c.call("rename", c.str("a.txt"), c.str("b.txt")).Int32(); got != 0 {
		t.Errorf("rename = %d", got)
	}
	if _, ok := c.env.FileData("a.txt"); ok {
		t.Error("old name still exists")
	}
	if got := c.call("remove", c.str("b.txt")).Int32(); got != 0 {
		t.Errorf("remove = %d", got)
	}
	if got := c.call("remove", c.str("b.txt")).Int32(); got != -1 {
		t.Error("remove of missing file should fail")
	}
}

func TestUnistdReadWrite(t *testing.T) {
	c := newCtx(t)
	fd := c.call("open", c.str("io.bin"), cval.Int(oRdwr|oCreat)).Int32()
	buf := c.buf(16)
	c.env.Img.Space.WriteCString(buf.Addr(), "payload")
	if n := c.call("write", cval.Int(int64(fd)), buf, cval.Uint(7)).Int32(); n != 7 {
		t.Errorf("write = %d", n)
	}
	c.call("close", cval.Int(int64(fd)))

	fd = c.call("open", c.str("io.bin"), cval.Int(oRdonly)).Int32()
	out := c.buf(16)
	if n := c.call("read", cval.Int(int64(fd)), out, cval.Uint(16)).Int32(); n != 7 {
		t.Errorf("read = %d", n)
	}
	if got := c.readStr(out); got != "payload" {
		t.Errorf("read data = %q", got)
	}
	// Reading into unmapped memory faults (the injector's out_buf case).
	if _, f := c.tryCall("read", cval.Int(0), cval.Ptr(0xdead0000), cval.Uint(4)); f == nil {
		c.env.Stdin.WriteString("xxxx")
		if _, f := c.tryCall("read", cval.Int(0), cval.Ptr(0xdead0000), cval.Uint(4)); f == nil {
			t.Error("read into wild buffer did not fault")
		}
	}
	// write on stdout lands in Stdout.
	c.call("write", cval.Int(1), buf, cval.Uint(3))
	if got := c.env.Stdout.String(); got != "pay" {
		t.Errorf("stdout = %q", got)
	}
	if got := c.call("getpid").Int32(); got != 4242 {
		t.Errorf("getpid = %d", got)
	}
	if got := c.call("getuid").Int32(); got != 1000 {
		t.Errorf("getuid = %d", got)
	}
	c.env.Privileged = true
	if got := c.call("getuid").Int32(); got != 0 {
		t.Errorf("privileged getuid = %d", got)
	}
}

func TestCtypeFamily(t *testing.T) {
	c := newCtx(t)
	type tc struct {
		fn   string
		in   int64
		want int32
	}
	tests := []tc{
		{"isalpha", 'a', 1}, {"isalpha", 'Z', 1}, {"isalpha", '1', 0}, {"isalpha", -1, 0}, {"isalpha", 400, 0},
		{"isdigit", '5', 1}, {"isdigit", 'x', 0},
		{"isalnum", '8', 1}, {"isalnum", 'p', 1}, {"isalnum", ' ', 0},
		{"isspace", ' ', 1}, {"isspace", '\t', 1}, {"isspace", 'a', 0},
		{"isupper", 'Q', 1}, {"isupper", 'q', 0},
		{"islower", 'q', 1}, {"islower", 'Q', 0},
		{"ispunct", '!', 1}, {"ispunct", 'a', 0},
		{"isprint", ' ', 1}, {"isprint", 0x7f, 0},
		{"iscntrl", '\n', 1}, {"iscntrl", 'a', 0},
		{"isxdigit", 'f', 1}, {"isxdigit", 'F', 1}, {"isxdigit", 'g', 0},
	}
	for _, tt := range tests {
		if got := c.call(tt.fn, cval.Int(tt.in)); (got != 0) != (tt.want != 0) {
			t.Errorf("%s(%d) = %v, want truthy=%v", tt.fn, tt.in, got, tt.want != 0)
		}
	}
	if got := c.call("toupper", cval.Int('a')).Int32(); got != 'A' {
		t.Errorf("toupper = %c", got)
	}
	if got := c.call("toupper", cval.Int('7')).Int32(); got != '7' {
		t.Errorf("toupper non-letter = %c", got)
	}
	if got := c.call("tolower", cval.Int('Z')).Int32(); got != 'z' {
		t.Errorf("tolower = %c", got)
	}
}

func TestWctrans(t *testing.T) {
	c := newCtx(t)
	lower := c.call("wctrans", c.str("tolower")).Int32()
	upper := c.call("wctrans", c.str("toupper")).Int32()
	if lower == 0 || upper == 0 || lower == upper {
		t.Fatalf("wctrans descriptors: %d, %d", lower, upper)
	}
	c.env.Errno = 0
	if got := c.call("wctrans", c.str("bogus")).Int32(); got != 0 || c.env.Errno != cval.EINVAL {
		t.Errorf("wctrans(bogus) = %d errno %d", got, c.env.Errno)
	}
	if got := c.call("towctrans", cval.Int('A'), cval.Int(int64(lower))).Int32(); got != 'a' {
		t.Errorf("towctrans lower = %c", got)
	}
	if got := c.call("towctrans", cval.Int('a'), cval.Int(int64(upper))).Int32(); got != 'A' {
		t.Errorf("towctrans upper = %c", got)
	}
	// The paper's example: wctrans with an invalid pointer crashes.
	if _, f := c.tryCall("wctrans", cval.Ptr(0)); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("wctrans(NULL): fault = %v, want SIGSEGV", f)
	}
}
