package clib

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// The string.h family. Every function walks simulated memory exactly the
// way its C counterpart walks real memory — no bounds checks, no NULL
// checks — so that invalid arguments produce the authentic fault the
// HEALERS injector is designed to observe.

func init() {
	registerImpl("strlen", cStrlen)
	registerImpl("strcpy", cStrcpy)
	registerImpl("strncpy", cStrncpy)
	registerImpl("strcat", cStrcat)
	registerImpl("strncat", cStrncat)
	registerImpl("strcmp", cStrcmp)
	registerImpl("strncmp", cStrncmp)
	registerImpl("strchr", cStrchr)
	registerImpl("strrchr", cStrrchr)
	registerImpl("strstr", cStrstr)
	registerImpl("strdup", cStrdup)
	registerImpl("strndup", cStrndup)
	registerImpl("strspn", cStrspn)
	registerImpl("strcspn", cStrcspn)
	registerImpl("strpbrk", cStrpbrk)
	registerImpl("strtok", cStrtok)
	registerImpl("strerror", cStrerror)
	registerImpl("memcpy", cMemcpy)
	registerImpl("memmove", cMemmove)
	registerImpl("memset", cMemset)
	registerImpl("memcmp", cMemcmp)
	registerImpl("memchr", cMemchr)
	registerImpl("memfrob", cMemfrob)
}

func cStrlen(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	n, f := env.Img.Space.CStrLen(arg(args, 0).Addr())
	if f != nil {
		return 0, f
	}
	return cval.Uint(uint64(n)), nil
}

func cStrcpy(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(src + i)
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+i, b); f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Ptr(dst), nil
		}
	}
}

func cStrncpy(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	var i uint32
	for ; i < n; i++ {
		b, f := sp.ReadByteAt(src + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+cmem.Addr(i), b); f != nil {
			return 0, f
		}
		if b == 0 {
			i++
			break
		}
	}
	// strncpy pads with NULs to exactly n bytes.
	for ; i < n; i++ {
		if f := sp.WriteByteAt(dst+cmem.Addr(i), 0); f != nil {
			return 0, f
		}
	}
	return cval.Ptr(dst), nil
}

func cStrcat(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	dlen, f := sp.CStrLen(dst)
	if f != nil {
		return 0, f
	}
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(src + i)
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+cmem.Addr(dlen)+i, b); f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Ptr(dst), nil
		}
	}
}

func cStrncat(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	dlen, f := sp.CStrLen(dst)
	if f != nil {
		return 0, f
	}
	var i uint32
	for ; i < n; i++ {
		b, f := sp.ReadByteAt(src + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if b == 0 {
			break
		}
		if f := sp.WriteByteAt(dst+cmem.Addr(dlen+i), b); f != nil {
			return 0, f
		}
	}
	if f := sp.WriteByteAt(dst+cmem.Addr(dlen+i), 0); f != nil {
		return 0, f
	}
	return cval.Ptr(dst), nil
}

func cStrcmp(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	a, b := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		ca, f := sp.ReadByteAt(a + i)
		if f != nil {
			return 0, f
		}
		cb, f := sp.ReadByteAt(b + i)
		if f != nil {
			return 0, f
		}
		if ca != cb {
			return cval.Int(int64(int32(ca) - int32(cb))), nil
		}
		if ca == 0 {
			return cval.Int(0), nil
		}
	}
}

func cStrncmp(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	a, b := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		ca, f := sp.ReadByteAt(a + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		cb, f := sp.ReadByteAt(b + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if ca != cb {
			return cval.Int(int64(int32(ca) - int32(cb))), nil
		}
		if ca == 0 {
			break
		}
	}
	return cval.Int(0), nil
}

func cStrchr(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	c := arg(args, 1).Byte()
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(s + i)
		if f != nil {
			return 0, f
		}
		if b == c {
			return cval.Ptr(s + i), nil
		}
		if b == 0 {
			return cval.Ptr(0), nil
		}
	}
}

func cStrrchr(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	c := arg(args, 1).Byte()
	sp := env.Img.Space
	last := cval.Ptr(0)
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(s + i)
		if f != nil {
			return 0, f
		}
		if b == c {
			last = cval.Ptr(s + i)
		}
		if b == 0 {
			return last, nil
		}
	}
}

func cStrstr(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	hay, needle := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	nlen, f := sp.CStrLen(needle)
	if f != nil {
		return 0, f
	}
	if nlen == 0 {
		return cval.Ptr(hay), nil
	}
	nb := make([]byte, nlen)
	if f := sp.Read(needle, nb); f != nil {
		return 0, f
	}
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(hay + i)
		if f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Ptr(0), nil
		}
		if b != nb[0] {
			continue
		}
		match := true
		for j := uint32(1); j < nlen; j++ {
			hb, f := sp.ReadByteAt(hay + i + cmem.Addr(j))
			if f != nil {
				return 0, f
			}
			if hb == 0 || hb != nb[j] {
				match = false
				break
			}
		}
		if match {
			return cval.Ptr(hay + i), nil
		}
	}
}

func cStrdup(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	sp := env.Img.Space
	n, f := sp.CStrLen(s)
	if f != nil {
		return 0, f
	}
	p := env.Img.Heap.Malloc(n + 1)
	if p.IsNull() {
		env.Errno = cval.ENOMEM
		return cval.Ptr(0), nil
	}
	buf := make([]byte, n+1)
	if f := sp.Read(s, buf); f != nil {
		return 0, f
	}
	if f := sp.Write(p, buf); f != nil {
		return 0, f
	}
	return cval.Ptr(p), nil
}

func cStrndup(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	n := arg(args, 1).Uint32()
	sp := env.Img.Space
	var l uint32
	for l < n {
		b, f := sp.ReadByteAt(s + cmem.Addr(l))
		if f != nil {
			return 0, f
		}
		if b == 0 {
			break
		}
		l++
	}
	p := env.Img.Heap.Malloc(l + 1)
	if p.IsNull() {
		env.Errno = cval.ENOMEM
		return cval.Ptr(0), nil
	}
	buf := make([]byte, l)
	if f := sp.Read(s, buf); f != nil {
		return 0, f
	}
	if f := sp.Write(p, buf); f != nil {
		return 0, f
	}
	if f := sp.WriteByteAt(p+cmem.Addr(l), 0); f != nil {
		return 0, f
	}
	return cval.Ptr(p), nil
}

// readCSet reads a NUL-terminated byte set (for strspn/strcspn/strpbrk).
func readCSet(env *cval.Env, a cmem.Addr) (map[byte]bool, *cmem.Fault) {
	set := make(map[byte]bool)
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(a + i)
		if f != nil {
			return nil, f
		}
		if b == 0 {
			return set, nil
		}
		set[b] = true
	}
}

func cStrspn(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	set, f := readCSet(env, arg(args, 1).Addr())
	if f != nil {
		return 0, f
	}
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(s + i)
		if f != nil {
			return 0, f
		}
		if b == 0 || !set[b] {
			return cval.Uint(uint64(i)), nil
		}
	}
}

func cStrcspn(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	set, f := readCSet(env, arg(args, 1).Addr())
	if f != nil {
		return 0, f
	}
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(s + i)
		if f != nil {
			return 0, f
		}
		if b == 0 || set[b] {
			return cval.Uint(uint64(i)), nil
		}
	}
}

func cStrpbrk(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	set, f := readCSet(env, arg(args, 1).Addr())
	if f != nil {
		return 0, f
	}
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(s + i)
		if f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Ptr(0), nil
		}
		if set[b] {
			return cval.Ptr(s + i), nil
		}
	}
}

// strtok keeps its continuation pointer in Env.Statics; C keeps it in a
// static variable, and one Env is one process, so the mapping is faithful.
func cStrtok(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	if s.IsNull() {
		s, _ = env.Statics["strtok"].(cmem.Addr)
		if s.IsNull() {
			return cval.Ptr(0), nil
		}
	}
	set, f := readCSet(env, arg(args, 1).Addr())
	if f != nil {
		return 0, f
	}
	sp := env.Img.Space
	// Skip leading delimiters.
	for {
		b, f := sp.ReadByteAt(s)
		if f != nil {
			return 0, f
		}
		if b == 0 {
			env.Statics["strtok"] = cmem.Addr(0)
			return cval.Ptr(0), nil
		}
		if !set[b] {
			break
		}
		s++
	}
	tok := s
	for {
		b, f := sp.ReadByteAt(s)
		if f != nil {
			return 0, f
		}
		if b == 0 {
			env.Statics["strtok"] = cmem.Addr(0)
			return cval.Ptr(tok), nil
		}
		if set[b] {
			if f := sp.WriteByteAt(s, 0); f != nil {
				return 0, f
			}
			env.Statics["strtok"] = s + 1
			return cval.Ptr(tok), nil
		}
		s++
	}
}

// cStrerror materializes the message in the data segment; repeated calls
// for the same errno return the same pointer (like glibc's static table).
func cStrerror(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	e := arg(args, 0).Int32()
	cache, _ := env.Statics["strerror"].(map[int32]cmem.Addr)
	if cache == nil {
		cache = make(map[int32]cmem.Addr)
		env.Statics["strerror"] = cache
	}
	if a, ok := cache[e]; ok {
		return cval.Ptr(a), nil
	}
	a, f := env.Img.StaticString(cval.ErrnoName(e))
	if f != nil {
		return 0, f
	}
	cache[e] = a
	return cval.Ptr(a), nil
}

func cMemcpy(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		b, f := sp.ReadByteAt(src + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+cmem.Addr(i), b); f != nil {
			return 0, f
		}
	}
	return cval.Ptr(dst), nil
}

func cMemmove(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	if dst == src || n == 0 {
		return cval.Ptr(dst), nil
	}
	if dst < src {
		for i := uint32(0); i < n; i++ {
			b, f := sp.ReadByteAt(src + cmem.Addr(i))
			if f != nil {
				return 0, f
			}
			if f := sp.WriteByteAt(dst+cmem.Addr(i), b); f != nil {
				return 0, f
			}
		}
	} else {
		for i := n; i > 0; i-- {
			b, f := sp.ReadByteAt(src + cmem.Addr(i-1))
			if f != nil {
				return 0, f
			}
			if f := sp.WriteByteAt(dst+cmem.Addr(i-1), b); f != nil {
				return 0, f
			}
		}
	}
	return cval.Ptr(dst), nil
}

func cMemset(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	c := arg(args, 1).Byte()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		if f := sp.WriteByteAt(s+cmem.Addr(i), c); f != nil {
			return 0, f
		}
	}
	return cval.Ptr(s), nil
}

func cMemcmp(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	a, b := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		ca, f := sp.ReadByteAt(a + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		cb, f := sp.ReadByteAt(b + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if ca != cb {
			return cval.Int(int64(int32(ca) - int32(cb))), nil
		}
	}
	return cval.Int(0), nil
}

func cMemchr(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	c := arg(args, 1).Byte()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		b, f := sp.ReadByteAt(s + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if b == c {
			return cval.Ptr(s + cmem.Addr(i)), nil
		}
	}
	return cval.Ptr(0), nil
}

func cMemfrob(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	n := arg(args, 1).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		b, f := sp.ReadByteAt(s + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(s+cmem.Addr(i), b^42); f != nil {
			return 0, f
		}
	}
	return cval.Ptr(s), nil
}
