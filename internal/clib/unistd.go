package clib

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// The unistd.h subset: POSIX descriptor I/O against the simulated fd table
// and in-memory filesystem.

// open(2) flag bits (matching Linux numerically).
const (
	oRdonly = 0
	oWronly = 1
	oRdwr   = 2
	oCreat  = 0x40
)

func init() {
	registerImpl("open", cOpen)
	registerImpl("read", cRead)
	registerImpl("write", cWrite)
	registerImpl("close", cClose)
	registerImpl("getpid", cGetpid)
	registerImpl("getuid", cGetuid)
}

func cOpen(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	name, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	flags := arg(args, 1).Int32()
	readOnly := flags&3 == oRdonly
	fd := env.Open(name, readOnly, flags&oCreat != 0)
	return cval.Int(int64(fd)), nil
}

func cRead(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	fd := arg(args, 0).Int32()
	buf := arg(args, 1).Addr()
	count := arg(args, 2).Uint32()
	sp := env.Img.Space
	var n uint32
	if fd == 0 {
		for n < count {
			b, err := env.Stdin.ReadByte()
			if err != nil {
				break
			}
			if f := sp.WriteByteAt(buf+cmem.Addr(n), b); f != nil {
				return 0, f
			}
			n++
		}
		return cval.Int(int64(n)), nil
	}
	sf, ok := env.File(fd)
	if !ok {
		env.Errno = cval.EBADF
		return cval.Int(-1), nil
	}
	data := sf.Data.Bytes()
	for n < count && sf.Pos < len(data) {
		if f := sp.WriteByteAt(buf+cmem.Addr(n), data[sf.Pos]); f != nil {
			return 0, f
		}
		sf.Pos++
		n++
	}
	return cval.Int(int64(n)), nil
}

func cWrite(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	fd := arg(args, 0).Int32()
	buf := arg(args, 1).Addr()
	count := arg(args, 2).Uint32()
	sp := env.Img.Space
	emit, ok := writeToFd(env, fd)
	if !ok {
		env.Errno = cval.EBADF
		return cval.Int(-1), nil
	}
	for i := uint32(0); i < count; i++ {
		b, f := sp.ReadByteAt(buf + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if f := emit(b); f != nil {
			return 0, f
		}
	}
	return cval.Int(int64(count)), nil
}

func cClose(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	if !env.Close(arg(args, 0).Int32()) {
		return cval.Int(-1), nil
	}
	return cval.Int(0), nil
}

func cGetpid(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cval.Int(4242), nil // one simulated process, one pid
}

func cGetuid(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	if env.Privileged {
		return cval.Int(0), nil
	}
	return cval.Int(1000), nil
}
