package clib

import "healers/internal/simelf"

// LibcSoname is the soname of the simulated C library.
const LibcSoname = "libc.so.6"

// AsLibrary packages the registry as the installable shared object
// "libc.so.6", prototypes included — the bottom of every link map.
func (r *Registry) AsLibrary() *simelf.Library {
	lib := simelf.NewLibrary(LibcSoname)
	for _, name := range r.Names() {
		b := r.byName[name]
		lib.ExportWithProto(b.Proto, b.Fn)
	}
	return lib
}
