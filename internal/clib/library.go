package clib

import (
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// LibcSoname is the soname of the simulated C library.
const LibcSoname = "libc.so.6"

// AsLibrary packages the registry as the installable shared object
// "libc.so.6", prototypes included — the bottom of every link map. Every
// exported function carries the chaos shim: with an armed injector on
// the calling process (HEALERS_CHAOS), the call fails probabilistically
// with a simulated hardware fault before the real implementation runs —
// the adversary the containment wrapper is tested against.
func (r *Registry) AsLibrary() *simelf.Library {
	lib := simelf.NewLibrary(LibcSoname)
	for _, name := range r.Names() {
		b := r.byName[name]
		lib.ExportWithProto(b.Proto, chaosShim(b.Proto.Name, b.Fn))
	}
	return lib
}

// chaosShim wraps a builtin with the chaos-mode roll. exit is exempt so
// a chaos-stricken process can still terminate voluntarily (and flush
// collected data) instead of faulting on its way out. A scripted Silent
// fault takes the other path: the call runs to completion and, if it
// succeeded, one byte of its committed state is flipped afterwards — the
// silent corruption the journal-diff probes exist to catch.
func chaosShim(name string, fn cval.CFunc) cval.CFunc {
	if name == "exit" {
		return fn
	}
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		if env.Chaos != nil {
			if f := env.Chaos.Roll(name); f != nil {
				return 0, f
			}
			if env.Chaos.CorruptPending() {
				v, fault := fn(env, args)
				if fault == nil {
					if _, ok := env.Img.Space.CorruptJournaledByte(); ok {
						env.Chaos.NoteCorrupted()
					}
				}
				return v, fault
			}
		}
		return fn(env, args)
	}
}
