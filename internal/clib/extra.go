package clib

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// Additional libc functions beyond the core set: case-insensitive string
// comparison, bounded copies, time, and process-identity calls. They
// widen the fault-injection campaign's surface and make the sample
// applications more realistic.

func init() {
	registerImpl("strcasecmp", cStrcasecmp)
	registerImpl("strncasecmp", cStrncasecmp)
	registerImpl("stpcpy", cStpcpy)
	registerImpl("strnlen", cStrnlen)
	registerImpl("memccpy", cMemccpy)
	registerImpl("strcoll", cStrcmp) // the simulated locale is "C"
	registerImpl("toascii", cToascii)
	registerImpl("putenv", cPutenv)
	registerImpl("sleep", cSleep)
	registerImpl("usleep", cUsleep)
	registerImpl("getppid", cGetppid)
	registerImpl("geteuid", cGetuid) // no setuid transitions simulated
	registerImpl("isatty", cIsatty)
	registerImpl("time", cTime)
	registerImpl("clock", cClock)
	registerImpl("perror", cPerror)
}

// extraH declares the additional functions; merged into Headers.
const extraH = `
/* extra.h — additional simulated C library functions */
int strcasecmp(const char *s1, const char *s2); /* @s1 in_str @s2 in_str */
int strncasecmp(const char *s1, const char *s2, size_t n); /* @s1 in_str @s2 in_str @n size */
char *stpcpy(char *dest, const char *src); /* @dest out_buf src=src nul @src in_str */
size_t strnlen(const char *s, size_t maxlen); /* @s in_buf len=maxlen @maxlen size */
void *memccpy(void *dest, const void *src, int c, size_t n); /* @dest out_buf len=n @src in_buf len=n @n size of=dest */
int strcoll(const char *s1, const char *s2); /* @s1 in_str @s2 in_str */
int toascii(int c);
int putenv(char *string); /* @string in_str */
unsigned int sleep(unsigned int seconds);
int usleep(unsigned int usec);
int getppid(void);
int geteuid(void);
int isatty(int fd); /* @fd fd */
time_t time(time_t *tloc); /* @tloc ptr_out */
clock_t clock(void);
void perror(const char *s); /* @s in_str */
`

func lowerByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + 32
	}
	return b
}

func cStrcasecmp(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	a, b := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		ca, f := sp.ReadByteAt(a + i)
		if f != nil {
			return 0, f
		}
		cb, f := sp.ReadByteAt(b + i)
		if f != nil {
			return 0, f
		}
		la, lb := lowerByte(ca), lowerByte(cb)
		if la != lb {
			return cval.Int(int64(int32(la) - int32(lb))), nil
		}
		if ca == 0 {
			return cval.Int(0), nil
		}
	}
}

func cStrncasecmp(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	a, b := arg(args, 0).Addr(), arg(args, 1).Addr()
	n := arg(args, 2).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		ca, f := sp.ReadByteAt(a + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		cb, f := sp.ReadByteAt(b + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		la, lb := lowerByte(ca), lowerByte(cb)
		if la != lb {
			return cval.Int(int64(int32(la) - int32(lb))), nil
		}
		if ca == 0 {
			break
		}
	}
	return cval.Int(0), nil
}

// cStpcpy is strcpy returning a pointer to the terminator.
func cStpcpy(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	sp := env.Img.Space
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(src + i)
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+i, b); f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Ptr(dst + i), nil
		}
	}
}

func cStrnlen(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s := arg(args, 0).Addr()
	maxlen := arg(args, 1).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < maxlen; i++ {
		b, f := sp.ReadByteAt(s + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if b == 0 {
			return cval.Uint(uint64(i)), nil
		}
	}
	return cval.Uint(uint64(maxlen)), nil
}

func cMemccpy(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	dst, src := arg(args, 0).Addr(), arg(args, 1).Addr()
	c := arg(args, 2).Byte()
	n := arg(args, 3).Uint32()
	sp := env.Img.Space
	for i := uint32(0); i < n; i++ {
		b, f := sp.ReadByteAt(src + cmem.Addr(i))
		if f != nil {
			return 0, f
		}
		if f := sp.WriteByteAt(dst+cmem.Addr(i), b); f != nil {
			return 0, f
		}
		if b == c {
			return cval.Ptr(dst + cmem.Addr(i) + 1), nil
		}
	}
	return cval.Ptr(0), nil
}

func cToascii(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cval.Int(int64(arg(args, 0).Int32() & 0x7f)), nil
}

// cPutenv parses "NAME=VALUE"; a string without '=' removes the variable,
// matching glibc.
func cPutenv(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			env.Setenv(s[:i], s[i+1:])
			return cval.Int(0), nil
		}
	}
	env.Unsetenv(s)
	return cval.Int(0), nil
}

// simClock advances the process's virtual clock and returns it.
func simClock(env *cval.Env) uint64 {
	n, _ := env.Statics["clock"].(uint64)
	n++
	env.Statics["clock"] = n
	return n
}

func cSleep(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	// Virtual time: advance the clock by the requested seconds.
	n, _ := env.Statics["clock"].(uint64)
	env.Statics["clock"] = n + uint64(arg(args, 0).Uint32())*1000
	return cval.Int(0), nil
}

func cUsleep(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	simClock(env)
	return cval.Int(0), nil
}

func cGetppid(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cval.Int(1), nil // everyone's parent is init in the simulation
}

func cIsatty(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	fd := arg(args, 0).Int32()
	if fd >= 0 && fd <= 2 {
		return cval.Int(1), nil
	}
	env.Errno = cval.ENOSYS
	if _, ok := env.File(fd); ok {
		env.Errno = 0
		return cval.Int(0), nil
	}
	env.Errno = cval.EBADF
	return cval.Int(0), nil
}

// simEpoch anchors the simulated wall clock (2003-06-22, the paper's
// conference week).
const simEpoch = 1056240000

func cTime(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	t := simEpoch + simClock(env)
	tloc := arg(args, 0).Addr()
	if !tloc.IsNull() {
		if f := env.Img.Space.WriteU32(tloc, uint32(t)); f != nil {
			return 0, f
		}
	}
	return cval.Uint(t), nil
}

func cClock(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cval.Uint(simClock(env) * 1000), nil
}

func cPerror(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	s, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	if s != "" {
		env.Stderr.WriteString(s)
		env.Stderr.WriteString(": ")
	}
	env.Stderr.WriteString(cval.ErrnoName(env.Errno))
	env.Stderr.WriteByte('\n')
	return 0, nil
}
