package clib

import (
	"fmt"
	"testing"
	"testing/quick"

	"healers/internal/cval"
)

// Property: the simulated printf agrees with Go's fmt for the shared
// integer verb subset on arbitrary values.
func TestPropertyPrintfMatchesGoFmt(t *testing.T) {
	prop := func(d int32, u uint32, x uint32, c byte) bool {
		// C's %c writes the raw byte; Go's %c UTF-8-encodes the rune.
		// They agree exactly on ASCII, so compare there.
		c = c%0x7e + 1
		ctx := newCtx(t)
		fmtStr := ctx.str("%d|%u|%x|%X|%o|%c|%%")
		ctx.call("printf", fmtStr,
			cval.Int(int64(d)), cval.Uint(uint64(u)), cval.Uint(uint64(x)),
			cval.Uint(uint64(x)), cval.Uint(uint64(u)), cval.Int(int64(c)))
		want := fmt.Sprintf("%d|%d|%x|%X|%o|%c|%%", d, u, x, x, u, rune(c))
		got := ctx.env.Stdout.String()
		if got != want {
			t.Logf("printf = %q, fmt = %q (d=%d u=%d x=%#x c=%q)", got, want, d, u, x, c)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: widths and zero padding agree with Go's fmt for %d.
func TestPropertyPrintfWidths(t *testing.T) {
	prop := func(d int32, w uint8) bool {
		width := int(w%12) + 1
		ctx := newCtx(t)
		fmtStr := ctx.str(fmt.Sprintf("[%%%dd][%%0%dd][%%-%dd]", width, width, width))
		ctx.call("printf", fmtStr, cval.Int(int64(d)), cval.Int(int64(d)), cval.Int(int64(d)))
		want := fmt.Sprintf(fmt.Sprintf("[%%%dd][%%0%dd][%%-%dd]", width, width, width), d, d, d)
		got := ctx.env.Stdout.String()
		if got != want {
			t.Logf("printf = %q, fmt = %q (d=%d width=%d)", got, want, d, width)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: snprintf truncation never loses agreement with the full
// output's prefix and always NUL-terminates.
func TestPropertySnprintfTruncation(t *testing.T) {
	prop := func(d int32, size uint8) bool {
		n := uint32(size%20) + 1
		ctx := newCtx(t)
		fmtStr := ctx.str("value=%d!")
		dst := ctx.buf(64)
		ret := ctx.call("snprintf", dst, cval.Uint(uint64(n)), fmtStr, cval.Int(int64(d)))
		full := fmt.Sprintf("value=%d!", d)
		if ret.Int32() != int32(len(full)) {
			return false
		}
		got := ctx.readStr(dst)
		wantLen := int(n) - 1
		if wantLen > len(full) {
			wantLen = len(full)
		}
		return got == full[:wantLen]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
