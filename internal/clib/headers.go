// Package clib implements the simulated C library that HEALERS hardens:
// the string.h / stdlib.h / ctype.h / stdio.h / unistd.h / wctype.h
// function families, written with authentic *unchecked* C semantics over
// the cmem substrate. strcpy really does walk off the end of an
// unterminated source; sprintf really does smash a too-small destination;
// free really does abort on a wild pointer. The fault injector needs this
// honesty — a defensive implementation would have nothing to discover.
//
// Prototypes are not hand-assembled: they are parsed from the embedded
// header texts below by internal/cheader, the same path the paper's
// toolkit takes ("parses the header files and manual pages from C
// libraries", §2.2, Fig. 2). The annotations carry the man-page knowledge
// (which parameter is a buffer, which size bounds it).
package clib

// Headers returns the simulated header files: name -> full text.
func Headers() map[string]string {
	return map[string]string{
		"string.h": stringH,
		"stdlib.h": stdlibH,
		"ctype.h":  ctypeH,
		"stdio.h":  stdioH,
		"unistd.h": unistdH,
		"wctype.h": wctypeH,
		"extra.h":  extraH,
	}
}

const stringH = `
/* string.h — simulated C library, string and memory functions */
size_t strlen(const char *s); /* @s in_str */
char *strcpy(char *dest, const char *src); /* @dest out_buf src=src nul @src in_str */
char *strncpy(char *dest, const char *src, size_t n); /* @dest out_buf len=n @src in_str @n size of=dest */
char *strcat(char *dest, const char *src); /* @dest inout_buf src=src nul @src in_str */
char *strncat(char *dest, const char *src, size_t n); /* @dest inout_buf src=src nul @src in_str @n size */
int strcmp(const char *s1, const char *s2); /* @s1 in_str @s2 in_str */
int strncmp(const char *s1, const char *s2, size_t n); /* @s1 in_str @s2 in_str @n size */
char *strchr(const char *s, int c); /* @s in_str */
char *strrchr(const char *s, int c); /* @s in_str */
char *strstr(const char *haystack, const char *needle); /* @haystack in_str @needle in_str */
char *strdup(const char *s); /* @s in_str */
char *strndup(const char *s, size_t n); /* @s in_str @n size */
size_t strspn(const char *s, const char *accept); /* @s in_str @accept in_str */
size_t strcspn(const char *s, const char *reject); /* @s in_str @reject in_str */
char *strpbrk(const char *s, const char *accept); /* @s in_str @accept in_str */
char *strtok(char *s, const char *delim); /* @s inout_buf @delim in_str */
char *strerror(int errnum);
void *memcpy(void *dest, const void *src, size_t n); /* @dest out_buf len=n @src in_buf len=n @n size of=dest */
void *memmove(void *dest, const void *src, size_t n); /* @dest out_buf len=n overlap_ok @src in_buf len=n @n size of=dest */
void *memset(void *s, int c, size_t n); /* @s out_buf len=n @n size of=s */
int memcmp(const void *s1, const void *s2, size_t n); /* @s1 in_buf len=n @s2 in_buf len=n @n size of=s1 */
void *memchr(const void *s, int c, size_t n); /* @s in_buf len=n @n size of=s */
void *memfrob(void *s, size_t n); /* @s out_buf len=n @n size of=s */
`

const stdlibH = `
/* stdlib.h — simulated C library, memory, conversion, process control */
void *malloc(size_t size); /* @size size */
void *calloc(size_t nmemb, size_t size); /* @nmemb size @size size */
void *realloc(void *ptr, size_t size); /* @ptr heap_ptr @size size */
void free(void *ptr); /* @ptr heap_ptr */
int atoi(const char *nptr); /* @nptr in_str */
long atol(const char *nptr); /* @nptr in_str */
long long atoll(const char *nptr); /* @nptr in_str */
double atof(const char *nptr); /* @nptr in_str */
long strtol(const char *nptr, char **endptr, int base); /* @nptr in_str @endptr ptr_out */
unsigned long strtoul(const char *nptr, char **endptr, int base); /* @nptr in_str @endptr ptr_out */
int abs(int j);
long labs(long j);
long long llabs(long long j);
int rand(void);
void srand(unsigned int seed);
void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *)); /* @base out_buf @nmemb size of=base @size size of=base */
void *bsearch(const void *key, const void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *)); /* @key in_buf @base in_buf @nmemb size of=base @size size of=base */
void exit(int status);
void abort(void);
char *getenv(const char *name); /* @name in_str */
int setenv(const char *name, const char *value, int overwrite); /* @name in_str @value in_str */
int unsetenv(const char *name); /* @name in_str */
int atexit(void (*function)(void));
int system(const char *command); /* @command in_str */
`

const ctypeH = `
/* ctype.h — simulated C library, character classification */
int isalpha(int c);
int isdigit(int c);
int isalnum(int c);
int isspace(int c);
int isupper(int c);
int islower(int c);
int ispunct(int c);
int isprint(int c);
int iscntrl(int c);
int isxdigit(int c);
int toupper(int c);
int tolower(int c);
`

const stdioH = `
/* stdio.h — simulated C library, formatted and stream I/O */
int puts(const char *s); /* @s in_str */
int putchar(int c);
int printf(const char *format, ...); /* @format fmt */
int fprintf(int stream, const char *format, ...); /* @stream fd @format fmt */
int sprintf(char *str, const char *format, ...); /* @str out_buf @format fmt */
int snprintf(char *str, size_t size, const char *format, ...); /* @str out_buf len=size @size size of=str @format fmt */
int sscanf(const char *str, const char *format, ...); /* @str in_str @format fmt */
char *gets(char *s); /* @s out_buf */
char *fgets_fd(char *s, int size, int fd); /* @s out_buf len=size @size size of=s @fd fd */
int remove(const char *pathname); /* @pathname in_str */
int rename(const char *oldpath, const char *newpath); /* @oldpath in_str @newpath in_str */
`

const unistdH = `
/* unistd.h — simulated POSIX I/O */
int open(const char *pathname, int flags); /* @pathname in_str */
ssize_t read(int fd, void *buf, size_t count); /* @fd fd @buf out_buf len=count @count size of=buf */
ssize_t write(int fd, const void *buf, size_t count); /* @fd fd @buf in_buf len=count @count size of=buf */
int close(int fd); /* @fd fd */
int getpid(void);
int getuid(void);
`

const wctypeH = `
/* wctype.h — simulated C library, wide-character mapping */
wctrans_t wctrans(const char *name); /* @name in_str */
wint_t towctrans(wint_t wc, wctrans_t desc);
`
