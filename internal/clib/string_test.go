package clib

import (
	"testing"
	"testing/quick"

	"healers/internal/cmem"
	"healers/internal/cval"
)

func TestStrlen(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		s    string
		want uint32
	}{
		{"", 0},
		{"a", 1},
		{"hello, world", 12},
	}
	for _, tt := range tests {
		if got := c.call("strlen", c.str(tt.s)).Uint32(); got != tt.want {
			t.Errorf("strlen(%q) = %d, want %d", tt.s, got, tt.want)
		}
	}
	// NULL and wild pointers crash, as in C.
	if _, f := c.tryCall("strlen", cval.Ptr(0)); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("strlen(NULL): fault = %v, want SIGSEGV", f)
	}
	if _, f := c.tryCall("strlen", cval.Ptr(0xdeadbeef)); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("strlen(wild): fault = %v, want SIGSEGV", f)
	}
}

func TestStrcpy(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(64)
	ret := c.call("strcpy", dst, c.str("copy me"))
	if ret != dst {
		t.Errorf("strcpy returned %s, want dst %s", ret, dst)
	}
	if got := c.readStr(dst); got != "copy me" {
		t.Errorf("dst = %q", got)
	}
	// strcpy to NULL crashes.
	if _, f := c.tryCall("strcpy", cval.Ptr(0), c.str("x")); f == nil {
		t.Error("strcpy(NULL, src) did not fault")
	}
	// strcpy into read-only memory takes a protection fault.
	ro, _ := c.env.Img.LiteralString("rodata")
	if _, f := c.tryCall("strcpy", cval.Ptr(ro), c.str("x")); f == nil || f.Kind != cmem.FaultProt {
		t.Errorf("strcpy into rodata: fault = %v, want prot", f)
	}
}

func TestStrcpyOverflowIsSilent(t *testing.T) {
	// The defining hazard: copying a long string into a small heap
	// buffer silently corrupts the neighbour — no fault at copy time.
	c := newCtx(t)
	small := c.env.Img.Heap.Malloc(8)
	victim := c.env.Img.Heap.Malloc(8)
	c.call("strcpy", cval.Ptr(victim), c.str("innocent"))
	c.call("strcpy", cval.Ptr(small), c.str("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"))
	got := c.readStr(cval.Ptr(victim))
	if got == "innocent" {
		t.Error("overflow did not corrupt the adjacent chunk; heap layout unexpected")
	}
}

func TestStrncpy(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(16)
	c.call("strncpy", dst, c.str("abc"), cval.Uint(8))
	if got := c.readStr(dst); got != "abc" {
		t.Errorf("dst = %q", got)
	}
	// Padding: all 8 bytes written, bytes 3..7 are NUL.
	for i := uint32(3); i < 8; i++ {
		b, _ := c.env.Img.Space.ReadByteAt(dst.Addr() + cmem.Addr(i))
		if b != 0 {
			t.Errorf("pad byte %d = %#x, want 0", i, b)
		}
	}
	// Truncation: no NUL when src >= n.
	dst2 := c.buf(16)
	c.env.Img.Space.WriteByteAt(dst2.Addr()+5, 'Z') // sentinel after the copy
	c.call("strncpy", dst2, c.str("abcdefgh"), cval.Uint(5))
	b, _ := c.env.Img.Space.ReadByteAt(dst2.Addr() + 5)
	if b != 'Z' {
		t.Errorf("strncpy wrote past n: byte 5 = %q", b)
	}
}

func TestStrcatAndStrncat(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(64)
	c.call("strcpy", dst, c.str("foo"))
	c.call("strcat", dst, c.str("bar"))
	if got := c.readStr(dst); got != "foobar" {
		t.Errorf("strcat = %q", got)
	}
	c.call("strncat", dst, c.str("bazqux"), cval.Uint(3))
	if got := c.readStr(dst); got != "foobarbaz" {
		t.Errorf("strncat = %q", got)
	}
	// strcat on an unterminated destination walks off; SEGV.
	un := cmem.Addr(0x00900000)
	if f := c.env.Img.Space.Map(un, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatalf("map: %v", f)
	}
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		c.env.Img.Space.WriteByteAt(un+i, 'x')
	}
	if _, f := c.tryCall("strcat", cval.Ptr(un), c.str("y")); f == nil || f.Kind != cmem.FaultSegv {
		t.Errorf("strcat on unterminated dst: fault = %v, want SIGSEGV", f)
	}
}

func TestStrcmpFamily(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		a, b string
		sign int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"ab", "abc", -1},
		{"abc", "ab", 1},
		{"", "", 0},
	}
	for _, tt := range tests {
		got := c.call("strcmp", c.str(tt.a), c.str(tt.b)).Int32()
		if sign32(got) != tt.sign {
			t.Errorf("strcmp(%q,%q) = %d, want sign %d", tt.a, tt.b, got, tt.sign)
		}
	}
	if got := c.call("strncmp", c.str("abcdef"), c.str("abcxyz"), cval.Uint(3)).Int32(); got != 0 {
		t.Errorf("strncmp n=3 = %d, want 0", got)
	}
	if got := c.call("strncmp", c.str("abcdef"), c.str("abcxyz"), cval.Uint(4)).Int32(); sign32(got) != -1 {
		t.Errorf("strncmp n=4 = %d, want negative", got)
	}
}

func sign32(v int32) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

func TestStrchrFamily(t *testing.T) {
	c := newCtx(t)
	s := c.str("hello")
	if got := c.call("strchr", s, cval.Int('l')); got.Addr() != s.Addr()+2 {
		t.Errorf("strchr = %s, want %s", got.Addr(), s.Addr()+2)
	}
	if got := c.call("strrchr", s, cval.Int('l')); got.Addr() != s.Addr()+3 {
		t.Errorf("strrchr = %s, want %s", got.Addr(), s.Addr()+3)
	}
	if got := c.call("strchr", s, cval.Int('z')); !got.IsNull() {
		t.Errorf("strchr missing char = %s, want NULL", got.Addr())
	}
	// Searching for NUL returns the terminator address.
	if got := c.call("strchr", s, cval.Int(0)); got.Addr() != s.Addr()+5 {
		t.Errorf("strchr(s,0) = %s, want terminator", got.Addr())
	}
}

func TestStrstr(t *testing.T) {
	c := newCtx(t)
	hay := c.str("the quick brown fox")
	tests := []struct {
		needle string
		off    int32 // offset in hay, -1 = NULL
	}{
		{"quick", 4},
		{"the", 0},
		{"fox", 16},
		{"", 0},
		{"cat", -1},
		{"foxx", -1},
	}
	for _, tt := range tests {
		got := c.call("strstr", hay, c.str(tt.needle))
		if tt.off < 0 {
			if !got.IsNull() {
				t.Errorf("strstr(%q) = %s, want NULL", tt.needle, got.Addr())
			}
		} else if got.Addr() != hay.Addr()+cmem.Addr(tt.off) {
			t.Errorf("strstr(%q) = %s, want hay+%d", tt.needle, got.Addr(), tt.off)
		}
	}
}

func TestStrdupAndStrndup(t *testing.T) {
	c := newCtx(t)
	p := c.call("strdup", c.str("duplicate"))
	if p.IsNull() {
		t.Fatal("strdup returned NULL")
	}
	if got := c.readStr(p); got != "duplicate" {
		t.Errorf("strdup = %q", got)
	}
	if !c.env.Img.Heap.InUse(p.Addr()) {
		t.Error("strdup result not a live heap chunk")
	}
	q := c.call("strndup", c.str("duplicate"), cval.Uint(3))
	if got := c.readStr(q); got != "dup" {
		t.Errorf("strndup = %q", got)
	}
	// n longer than the string copies just the string.
	r := c.call("strndup", c.str("ab"), cval.Uint(100))
	if got := c.readStr(r); got != "ab" {
		t.Errorf("strndup long n = %q", got)
	}
}

func TestStrspnFamily(t *testing.T) {
	c := newCtx(t)
	if got := c.call("strspn", c.str("123abc"), c.str("0123456789")).Uint32(); got != 3 {
		t.Errorf("strspn = %d, want 3", got)
	}
	if got := c.call("strcspn", c.str("abc;def"), c.str(";")).Uint32(); got != 3 {
		t.Errorf("strcspn = %d, want 3", got)
	}
	p := c.str("abc,def")
	if got := c.call("strpbrk", p, c.str(",;")); got.Addr() != p.Addr()+3 {
		t.Errorf("strpbrk = %s, want p+3", got.Addr())
	}
	if got := c.call("strpbrk", c.str("abc"), c.str(",;")); !got.IsNull() {
		t.Error("strpbrk without match should be NULL")
	}
}

func TestStrtok(t *testing.T) {
	c := newCtx(t)
	buf := c.buf(64)
	c.call("strcpy", buf, c.str("a,b;;c"))
	delim := c.str(",;")
	var got []string
	tok := c.call("strtok", buf, delim)
	for !tok.IsNull() {
		got = append(got, c.readStr(tok))
		tok = c.call("strtok", cval.Ptr(0), delim)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Next call after exhaustion returns NULL again.
	if tok := c.call("strtok", cval.Ptr(0), delim); !tok.IsNull() {
		t.Error("strtok after exhaustion returned a token")
	}
}

func TestStrerror(t *testing.T) {
	c := newCtx(t)
	p := c.call("strerror", cval.Int(int64(cval.EINVAL)))
	if got := c.readStr(p); got != "EINVAL" {
		t.Errorf("strerror(EINVAL) = %q", got)
	}
	q := c.call("strerror", cval.Int(int64(cval.EINVAL)))
	if q != p {
		t.Error("strerror did not return a stable pointer")
	}
}

func TestMemFunctions(t *testing.T) {
	c := newCtx(t)
	src := c.buf(16)
	dst := c.buf(16)
	for i := uint32(0); i < 16; i++ {
		c.env.Img.Space.WriteByteAt(src.Addr()+cmem.Addr(i), byte(i))
	}
	c.call("memcpy", dst, src, cval.Uint(16))
	if got := c.call("memcmp", dst, src, cval.Uint(16)).Int32(); got != 0 {
		t.Errorf("memcmp after memcpy = %d", got)
	}
	c.call("memset", dst, cval.Int('x'), cval.Uint(4))
	b, _ := c.env.Img.Space.ReadByteAt(dst.Addr() + 3)
	if b != 'x' {
		t.Errorf("memset byte = %q", b)
	}
	b, _ = c.env.Img.Space.ReadByteAt(dst.Addr() + 4)
	if b != 4 {
		t.Errorf("memset overwrote byte 4: %d", b)
	}
	if got := c.call("memchr", src, cval.Int(7), cval.Uint(16)); got.Addr() != src.Addr()+7 {
		t.Errorf("memchr = %s", got.Addr())
	}
	if got := c.call("memchr", src, cval.Int(99), cval.Uint(16)); !got.IsNull() {
		t.Error("memchr missing byte should be NULL")
	}
	// memfrob is its own inverse.
	c.call("memfrob", src, cval.Uint(16))
	c.call("memfrob", src, cval.Uint(16))
	for i := uint32(0); i < 16; i++ {
		b, _ := c.env.Img.Space.ReadByteAt(src.Addr() + cmem.Addr(i))
		if b != byte(i) {
			t.Fatalf("memfrob^2 changed byte %d", i)
		}
	}
}

func TestMemmoveOverlap(t *testing.T) {
	c := newCtx(t)
	buf := c.buf(16)
	c.call("strcpy", buf, c.str("abcdefgh"))
	// Overlapping forward move: shift right by 2.
	c.call("memmove", cval.Ptr(buf.Addr()+2), buf, cval.Uint(8))
	got := make([]byte, 10)
	c.env.Img.Space.Read(buf.Addr(), got)
	if string(got[2:10]) != "abcdefgh" {
		t.Errorf("memmove forward = %q", got)
	}
	// Overlapping backward move.
	c.call("strcpy", buf, c.str("abcdefgh"))
	c.call("memmove", buf, cval.Ptr(buf.Addr()+2), cval.Uint(6))
	s := c.readStr(buf)
	if s[:6] != "cdefgh" {
		t.Errorf("memmove backward = %q", s)
	}
}

func TestMemcpyFaultsOnBadArgs(t *testing.T) {
	c := newCtx(t)
	good := c.buf(16)
	tests := []struct {
		name string
		args []cval.Value
	}{
		{"null dst", []cval.Value{cval.Ptr(0), good, cval.Uint(4)}},
		{"null src", []cval.Value{good, cval.Ptr(0), cval.Uint(4)}},
		{"wild dst", []cval.Value{cval.Ptr(0xdead0000), good, cval.Uint(4)}},
		{"huge n", []cval.Value{good, good, cval.Uint(0x10000000)}},
	}
	for _, tt := range tests {
		if _, f := c.tryCall("memcpy", tt.args...); f == nil {
			t.Errorf("%s: memcpy did not fault", tt.name)
		}
	}
	// n = 0 with garbage pointers does NOT fault (no bytes touched) —
	// authentic C behaviour the injector relies on.
	if _, f := c.tryCall("memcpy", cval.Ptr(0), cval.Ptr(0), cval.Uint(0)); f != nil {
		t.Errorf("memcpy(NULL,NULL,0) faulted: %v", f)
	}
}

// Property: strcpy+strlen round-trip equals Go string semantics for
// NUL-free payloads.
func TestPropertyStrcpyRoundTrip(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(1 << 12)
	prop := func(raw []byte) bool {
		s := make([]byte, 0, len(raw))
		for _, b := range raw {
			if b != 0 {
				s = append(s, b)
			}
		}
		if len(s) > 1024 {
			s = s[:1024]
		}
		src, f := c.env.Img.StaticString(string(s))
		if f != nil {
			return false
		}
		c.call("strcpy", dst, cval.Ptr(src))
		if got := c.call("strlen", dst).Uint32(); got != uint32(len(s)) {
			return false
		}
		return c.readStr(dst) == string(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
