package clib

import (
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
)

// testCtx bundles a fresh env and registry for one test.
type testCtx struct {
	t   *testing.T
	env *cval.Env
	reg *Registry
}

func newCtx(t *testing.T) *testCtx {
	t.Helper()
	return &testCtx{t: t, env: cval.NewEnv(), reg: MustRegistry()}
}

// call invokes a libc function by name, failing the test on a fault.
func (c *testCtx) call(name string, args ...cval.Value) cval.Value {
	c.t.Helper()
	v, f := c.tryCall(name, args...)
	if f != nil {
		c.t.Fatalf("%s faulted: %v", name, f)
	}
	return v
}

// tryCall invokes a libc function and returns any fault.
func (c *testCtx) tryCall(name string, args ...cval.Value) (cval.Value, *cmem.Fault) {
	c.t.Helper()
	b, ok := c.reg.Lookup(name)
	if !ok {
		c.t.Fatalf("no such function %s", name)
	}
	return b.Fn(c.env, args)
}

// str places a static string and returns its address value.
func (c *testCtx) str(s string) cval.Value {
	c.t.Helper()
	a, f := c.env.Img.StaticString(s)
	if f != nil {
		c.t.Fatalf("StaticString: %v", f)
	}
	return cval.Ptr(a)
}

// buf allocates a zeroed static buffer.
func (c *testCtx) buf(n uint32) cval.Value {
	c.t.Helper()
	a, f := c.env.Img.StaticAlloc(n)
	if f != nil {
		c.t.Fatalf("StaticAlloc: %v", f)
	}
	for i := uint32(0); i < n; i++ {
		if f := c.env.Img.Space.WriteByteAt(a+cmem.Addr(i), 0); f != nil {
			c.t.Fatalf("zero: %v", f)
		}
	}
	return cval.Ptr(a)
}

// readStr reads a C string back.
func (c *testCtx) readStr(v cval.Value) string {
	c.t.Helper()
	s, f := c.env.Img.CString(v.Addr())
	if f != nil {
		c.t.Fatalf("CString(%s): %v", v, f)
	}
	return s
}

func TestRegistryConsistency(t *testing.T) {
	reg, err := NewRegistry()
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if reg.Len() < 60 {
		t.Errorf("registry has only %d functions; the simulated libc should be substantial", reg.Len())
	}
	for _, name := range reg.Names() {
		b, ok := reg.Lookup(name)
		if !ok || b.Fn == nil || b.Proto == nil {
			t.Errorf("%s: incomplete builtin", name)
		}
		if b.Proto.Name != name {
			t.Errorf("%s: prototype name %q mismatched", name, b.Proto.Name)
		}
	}
	if reg.Proto("strcpy") == nil {
		t.Error("Proto(strcpy) = nil")
	}
	if p := reg.Proto("nonexistent"); p != nil {
		t.Errorf("Proto(nonexistent) = %v", p)
	}
	// The annotations from the headers must have landed.
	strcpy := reg.Proto("strcpy")
	if strcpy.Params[0].SrcStr != 1 || !strcpy.Params[0].NulTerm {
		t.Errorf("strcpy dest annotations missing: %+v", strcpy.Params[0])
	}
	printf := reg.Proto("printf")
	if !printf.Variadic {
		t.Error("printf not variadic")
	}
}
