package clib

import (
	"strings"
	"testing"

	"healers/internal/cmem"
	"healers/internal/cval"
)

func TestStrcasecmp(t *testing.T) {
	c := newCtx(t)
	tests := []struct {
		a, b string
		sign int
	}{
		{"Hello", "hello", 0},
		{"ABC", "abd", -1},
		{"abd", "ABC", 1},
		{"", "", 0},
		{"Ab", "abc", -1},
	}
	for _, tt := range tests {
		got := c.call("strcasecmp", c.str(tt.a), c.str(tt.b)).Int32()
		if sign32(got) != tt.sign {
			t.Errorf("strcasecmp(%q,%q) = %d, want sign %d", tt.a, tt.b, got, tt.sign)
		}
	}
	if got := c.call("strncasecmp", c.str("HELLOx"), c.str("helloy"), cval.Uint(5)).Int32(); got != 0 {
		t.Errorf("strncasecmp = %d", got)
	}
	if got := c.call("strcoll", c.str("a"), c.str("b")).Int32(); sign32(got) != -1 {
		t.Errorf("strcoll = %d", got)
	}
}

func TestStpcpy(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(32)
	end := c.call("stpcpy", dst, c.str("abc"))
	if end.Addr() != dst.Addr()+3 {
		t.Errorf("stpcpy returned %s, want dst+3", end.Addr())
	}
	if got := c.readStr(dst); got != "abc" {
		t.Errorf("dst = %q", got)
	}
}

func TestStrnlen(t *testing.T) {
	c := newCtx(t)
	s := c.str("hello")
	if got := c.call("strnlen", s, cval.Uint(10)).Uint32(); got != 5 {
		t.Errorf("strnlen long = %d", got)
	}
	if got := c.call("strnlen", s, cval.Uint(3)).Uint32(); got != 3 {
		t.Errorf("strnlen capped = %d", got)
	}
	// Bounded: never reads past maxlen, so an unterminated buffer with a
	// tight bound does not fault — the safety property that made the n
	// variants popular.
	un := cmem.Addr(0x00900000)
	if f := c.env.Img.Space.Map(un, cmem.PageSize, cmem.ProtRW); f != nil {
		t.Fatal(f)
	}
	for i := cmem.Addr(0); i < cmem.PageSize; i++ {
		c.env.Img.Space.WriteByteAt(un+i, 'x')
	}
	if got := c.call("strnlen", cval.Ptr(un+cmem.PageSize-8), cval.Uint(8)).Uint32(); got != 8 {
		t.Errorf("strnlen at cliff = %d", got)
	}
}

func TestMemccpy(t *testing.T) {
	c := newCtx(t)
	dst := c.buf(32)
	ret := c.call("memccpy", dst, c.str("ab;cd"), cval.Int(';'), cval.Uint(5))
	if ret.Addr() != dst.Addr()+3 {
		t.Errorf("memccpy returned %s, want dst+3", ret.Addr())
	}
	got := make([]byte, 3)
	c.env.Img.Space.Read(dst.Addr(), got)
	if string(got) != "ab;" {
		t.Errorf("copied = %q", got)
	}
	if ret := c.call("memccpy", dst, c.str("abcd"), cval.Int('z'), cval.Uint(4)); !ret.IsNull() {
		t.Error("memccpy without match should return NULL")
	}
}

func TestToascii(t *testing.T) {
	c := newCtx(t)
	if got := c.call("toascii", cval.Int(0x1c1)).Int32(); got != 0x41 {
		t.Errorf("toascii = %#x", got)
	}
}

func TestPutenv(t *testing.T) {
	c := newCtx(t)
	c.call("putenv", c.str("LANG=C"))
	v := c.call("getenv", c.str("LANG"))
	if c.readStr(v) != "C" {
		t.Errorf("LANG = %q", c.readStr(v))
	}
	// No '=' removes.
	c.call("putenv", c.str("LANG"))
	if got := c.call("getenv", c.str("LANG")); !got.IsNull() {
		t.Error("putenv without '=' did not unset")
	}
}

func TestTimeAndClock(t *testing.T) {
	c := newCtx(t)
	t1 := c.call("time", cval.Ptr(0)).Uint32()
	tloc := c.buf(8)
	t2 := c.call("time", tloc).Uint32()
	if t2 <= t1 {
		t.Errorf("time not monotone: %d then %d", t1, t2)
	}
	stored, _ := c.env.Img.Space.ReadU32(tloc.Addr())
	if stored != t2 {
		t.Errorf("*tloc = %d, want %d", stored, t2)
	}
	// time with a wild tloc faults — the ptr_out hazard.
	if _, f := c.tryCall("time", cval.Ptr(0xdeadbee0)); f == nil {
		t.Error("time(wild) did not fault")
	}
	c1 := c.call("clock").Uint32()
	c2 := c.call("clock").Uint32()
	if c2 <= c1 {
		t.Errorf("clock not monotone: %d then %d", c1, c2)
	}
}

func TestSleepAdvancesVirtualClock(t *testing.T) {
	c := newCtx(t)
	before := c.call("time", cval.Ptr(0)).Uint32()
	c.call("sleep", cval.Uint(10))
	after := c.call("time", cval.Ptr(0)).Uint32()
	if after < before+10000 {
		t.Errorf("sleep(10) advanced clock by %d", after-before)
	}
	c.call("usleep", cval.Uint(100))
}

func TestIdentityCalls(t *testing.T) {
	c := newCtx(t)
	if got := c.call("getppid").Int32(); got != 1 {
		t.Errorf("getppid = %d", got)
	}
	if got := c.call("geteuid").Int32(); got != 1000 {
		t.Errorf("geteuid = %d", got)
	}
	if got := c.call("isatty", cval.Int(1)).Int32(); got != 1 {
		t.Errorf("isatty(1) = %d", got)
	}
	c.env.PutFile("f", nil)
	fd := c.call("open", c.str("f"), cval.Int(0)).Int32()
	if got := c.call("isatty", cval.Int(int64(fd))).Int32(); got != 0 {
		t.Errorf("isatty(file) = %d", got)
	}
}

func TestPerror(t *testing.T) {
	c := newCtx(t)
	c.env.Errno = cval.ENOENT
	c.call("perror", c.str("open failed"))
	if got := c.env.Stderr.String(); got != "open failed: ENOENT\n" {
		t.Errorf("stderr = %q", got)
	}
	c.env.Stderr.Reset()
	c.env.Errno = 0
	c.call("perror", c.str(""))
	if !strings.HasSuffix(c.env.Stderr.String(), "0\n") {
		t.Errorf("stderr = %q", c.env.Stderr.String())
	}
}
