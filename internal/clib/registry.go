package clib

import (
	"fmt"
	"sort"

	"healers/internal/cheader"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// Builtin couples a prototype (parsed from the headers) with its
// implementation.
type Builtin struct {
	Proto *ctypes.Prototype
	Fn    cval.CFunc
}

// Registry is the simulated libc's symbol table: every implemented
// function with its parsed prototype. Construct with NewRegistry.
type Registry struct {
	byName map[string]Builtin
	names  []string
}

// impls maps function names to implementations. Populated across the
// per-header implementation files via registerImpl in their init order.
var impls = map[string]cval.CFunc{}

// registerImpl records an implementation; called from per-file init
// functions. Duplicate registration is a programming error caught at
// startup.
func registerImpl(name string, fn cval.CFunc) {
	if _, dup := impls[name]; dup {
		panic(fmt.Sprintf("clib: duplicate implementation of %s", name))
	}
	impls[name] = fn
}

// NewRegistry parses the embedded headers and binds every prototype to
// its implementation. A prototype without an implementation, an
// implementation without a prototype, or an unparseable header is an
// error: the library must be internally consistent before anything is
// built on it.
func NewRegistry() (*Registry, error) {
	r := &Registry{byName: make(map[string]Builtin)}
	hdrNames := make([]string, 0, len(Headers()))
	for name := range Headers() {
		hdrNames = append(hdrNames, name)
	}
	sort.Strings(hdrNames)
	for _, hdr := range hdrNames {
		protos, errs := cheader.ParseHeader(hdr, Headers()[hdr])
		if len(errs) > 0 {
			return nil, fmt.Errorf("clib: parsing %s: %v", hdr, errs[0])
		}
		for _, p := range protos {
			fn, ok := impls[p.Name]
			if !ok {
				return nil, fmt.Errorf("clib: %s declared in %s but not implemented", p.Name, hdr)
			}
			if _, dup := r.byName[p.Name]; dup {
				return nil, fmt.Errorf("clib: %s declared twice", p.Name)
			}
			r.byName[p.Name] = Builtin{Proto: p, Fn: fn}
			r.names = append(r.names, p.Name)
		}
	}
	for name := range impls {
		if _, ok := r.byName[name]; !ok {
			return nil, fmt.Errorf("clib: %s implemented but not declared in any header", name)
		}
	}
	sort.Strings(r.names)
	return r, nil
}

// MustRegistry is NewRegistry for callers where an inconsistent library
// is unrecoverable (tests, examples, tool main functions).
func MustRegistry() *Registry {
	r, err := NewRegistry()
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the builtin for name.
func (r *Registry) Lookup(name string) (Builtin, bool) {
	b, ok := r.byName[name]
	return b, ok
}

// Proto returns the prototype for name, or nil.
func (r *Registry) Proto(name string) *ctypes.Prototype {
	return r.byName[name].Proto
}

// Names returns all function names, sorted.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Len returns the number of functions.
func (r *Registry) Len() int { return len(r.names) }

// arg fetches argument i, or zero if the caller passed too few — a real C
// callee would read whatever garbage is in the register; zero is the
// deterministic stand-in.
func arg(args []cval.Value, i int) cval.Value {
	if i < len(args) {
		return args[i]
	}
	return 0
}
