package clib

import (
	"math"

	"healers/internal/cmem"
	"healers/internal/cval"
)

// The stdlib.h family: allocation, numeric conversion, sorting, process
// control, environment access.

func init() {
	registerImpl("malloc", cMalloc)
	registerImpl("calloc", cCalloc)
	registerImpl("realloc", cRealloc)
	registerImpl("free", cFree)
	registerImpl("atoi", cAtoi)
	registerImpl("atol", cAtol)
	registerImpl("atoll", cAtoll)
	registerImpl("atof", cAtof)
	registerImpl("strtol", cStrtol)
	registerImpl("strtoul", cStrtoul)
	registerImpl("abs", cAbs)
	registerImpl("labs", cLabs)
	registerImpl("llabs", cLlabs)
	registerImpl("rand", cRand)
	registerImpl("srand", cSrand)
	registerImpl("qsort", cQsort)
	registerImpl("bsearch", cBsearch)
	registerImpl("exit", cExit)
	registerImpl("abort", cAbort)
	registerImpl("getenv", cGetenv)
	registerImpl("setenv", cSetenv)
	registerImpl("unsetenv", cUnsetenv)
	registerImpl("atexit", cAtexit)
	registerImpl("system", cSystem)
}

func cMalloc(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	p := env.Img.Heap.Malloc(arg(args, 0).Uint32())
	if p.IsNull() {
		env.Errno = cval.ENOMEM
	}
	return cval.Ptr(p), nil
}

func cCalloc(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	nmemb, size := arg(args, 0).Uint32(), arg(args, 1).Uint32()
	if size != 0 && nmemb > 0xffffffff/size {
		// Multiplication overflow: modern calloc returns NULL.
		env.Errno = cval.ENOMEM
		return cval.Ptr(0), nil
	}
	total := nmemb * size
	p := env.Img.Heap.Malloc(total)
	if p.IsNull() {
		env.Errno = cval.ENOMEM
		return cval.Ptr(0), nil
	}
	for i := uint32(0); i < total; i++ {
		if f := env.Img.Space.WriteByteAt(p+cmem.Addr(i), 0); f != nil {
			return 0, f
		}
	}
	return cval.Ptr(p), nil
}

func cRealloc(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	p, f := env.Img.Heap.Realloc(arg(args, 0).Addr(), arg(args, 1).Uint32())
	if f != nil {
		return 0, f
	}
	if p.IsNull() && arg(args, 1).Uint32() != 0 {
		env.Errno = cval.ENOMEM
	}
	return cval.Ptr(p), nil
}

func cFree(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	if f := env.Img.Heap.Free(arg(args, 0).Addr()); f != nil {
		return 0, f
	}
	return 0, nil
}

// parseIntBody implements the shared strtol-style scan. It walks simulated
// memory character by character (faulting where C would), handling
// whitespace, sign, and base prefixes.
func parseIntBody(env *cval.Env, a cmem.Addr, base int) (val uint64, neg bool, end cmem.Addr, any bool, fault *cmem.Fault) {
	sp := env.Img.Space
	i := a
	for {
		b, f := sp.ReadByteAt(i)
		if f != nil {
			return 0, false, 0, false, f
		}
		if b != ' ' && b != '\t' && b != '\n' && b != '\v' && b != '\f' && b != '\r' {
			break
		}
		i++
	}
	b, f := sp.ReadByteAt(i)
	if f != nil {
		return 0, false, 0, false, f
	}
	if b == '+' || b == '-' {
		neg = b == '-'
		i++
	}
	if base == 0 || base == 16 {
		b0, f := sp.ReadByteAt(i)
		if f != nil {
			return 0, false, 0, false, f
		}
		if b0 == '0' {
			b1, f := sp.ReadByteAt(i + 1)
			if f != nil {
				return 0, false, 0, false, f
			}
			if b1 == 'x' || b1 == 'X' {
				// Only consume the prefix if a hex digit follows.
				b2, f := sp.ReadByteAt(i + 2)
				if f != nil {
					return 0, false, 0, false, f
				}
				if digitVal(b2) >= 0 && digitVal(b2) < 16 {
					base = 16
					i += 2
				} else if base == 0 {
					base = 8
				}
			} else if base == 0 {
				base = 8
			}
		} else if base == 0 {
			base = 10
		}
	}
	start := i
	for {
		b, f := sp.ReadByteAt(i)
		if f != nil {
			return 0, false, 0, false, f
		}
		d := digitVal(b)
		if d < 0 || d >= base {
			break
		}
		val = val*uint64(base) + uint64(d)
		if val > 1<<62 { // clamp so the accumulator cannot wrap;
			val = 1 << 62 // range checking is the caller's job
		}
		i++
	}
	return val, neg, i, i != start, nil
}

func digitVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'z':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'Z':
		return int(b-'A') + 10
	}
	return -1
}

func cAtoi(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	val, neg, _, _, f := parseIntBody(env, arg(args, 0).Addr(), 10)
	if f != nil {
		return 0, f
	}
	v := int64(val)
	if neg {
		v = -v
	}
	return cval.Int(int64(int32(v))), nil
}

func cAtol(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cAtoi(env, args) // long is 32-bit in the simulated ABI
}

func cAtoll(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	val, neg, _, _, f := parseIntBody(env, arg(args, 0).Addr(), 10)
	if f != nil {
		return 0, f
	}
	v := int64(val)
	if neg {
		v = -v
	}
	return cval.Int(v), nil
}

func cAtof(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	sp := env.Img.Space
	a := arg(args, 0).Addr()
	// Read the number text, then parse in Go; reads fault authentically.
	var buf []byte
	for i := cmem.Addr(0); ; i++ {
		b, f := sp.ReadByteAt(a + i)
		if f != nil {
			return 0, f
		}
		if len(buf) == 0 && (b == ' ' || b == '\t') {
			continue
		}
		if b == '+' || b == '-' || b == '.' || b == 'e' || b == 'E' || (b >= '0' && b <= '9') {
			buf = append(buf, b)
			continue
		}
		break
	}
	v := parseFloat(string(buf))
	return cval.Uint(math.Float64bits(v)), nil
}

// parseFloat is a minimal strtod: sign, integer part, fraction, exponent.
func parseFloat(s string) float64 {
	var v float64
	i := 0
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + float64(s[i]-'0')
		i++
	}
	if i < len(s) && s[i] == '.' {
		i++
		scale := 0.1
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			v += float64(s[i]-'0') * scale
			scale /= 10
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		eneg := false
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			eneg = s[i] == '-'
			i++
		}
		exp := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			exp = exp*10 + int(s[i]-'0')
			i++
		}
		if eneg {
			exp = -exp
		}
		v *= math.Pow(10, float64(exp))
	}
	if neg {
		v = -v
	}
	return v
}

func cStrtol(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	base := int(arg(args, 2).Int32())
	if base != 0 && (base < 2 || base > 36) {
		env.Errno = cval.EINVAL
		return cval.Int(0), nil
	}
	val, neg, end, any, f := parseIntBody(env, arg(args, 0).Addr(), base)
	if f != nil {
		return 0, f
	}
	endp := arg(args, 1).Addr()
	if !endp.IsNull() {
		out := end
		if !any {
			out = arg(args, 0).Addr()
		}
		// *endptr = out; writing through a bad endptr faults, which is
		// exactly the robustness hazard the ptr_out chain models.
		if f := env.Img.Space.WriteU32(endp, uint32(out)); f != nil {
			return 0, f
		}
	}
	v := int64(val)
	if neg {
		v = -v
	}
	if v > math.MaxInt32 {
		env.Errno = cval.ERANGE
		v = math.MaxInt32
	} else if v < math.MinInt32 {
		env.Errno = cval.ERANGE
		v = math.MinInt32
	}
	return cval.Int(v), nil
}

func cStrtoul(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	base := int(arg(args, 2).Int32())
	if base != 0 && (base < 2 || base > 36) {
		env.Errno = cval.EINVAL
		return cval.Int(0), nil
	}
	val, neg, end, any, f := parseIntBody(env, arg(args, 0).Addr(), base)
	if f != nil {
		return 0, f
	}
	endp := arg(args, 1).Addr()
	if !endp.IsNull() {
		out := end
		if !any {
			out = arg(args, 0).Addr()
		}
		if f := env.Img.Space.WriteU32(endp, uint32(out)); f != nil {
			return 0, f
		}
	}
	if val > math.MaxUint32 {
		env.Errno = cval.ERANGE
		val = math.MaxUint32
	}
	u := uint32(val)
	if neg {
		u = -u // strtoul negates in unsigned arithmetic
	}
	return cval.Uint(uint64(u)), nil
}

func cAbs(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	j := arg(args, 0).Int32()
	if j < 0 {
		j = -j // INT_MIN stays INT_MIN, authentic UB made deterministic
	}
	return cval.Int(int64(j)), nil
}

func cLabs(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return cAbs(env, args)
}

func cLlabs(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	j := arg(args, 0).Int()
	if j < 0 {
		j = -j
	}
	return cval.Int(j), nil
}

func cRand(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	// glibc's TYPE_0 linear congruential generator.
	env.RandState = (env.RandState*1103515245 + 12345) & 0x7fffffff
	return cval.Int(int64(env.RandState)), nil
}

func cSrand(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	env.RandState = uint64(arg(args, 0).Uint32())
	return 0, nil
}

func cQsort(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	base := arg(args, 0).Addr()
	nmemb := arg(args, 1).Uint32()
	size := arg(args, 2).Uint32()
	compar := arg(args, 3)
	if nmemb < 2 || size == 0 {
		return 0, nil
	}
	sp := env.Img.Space
	elem := func(i uint32) cmem.Addr { return base + cmem.Addr(i*size) }
	// Swap through page-sized scratch chunks: size is caller-controlled
	// and may be absurd (the injector passes 4 GB), so materializing a
	// whole element as a Go buffer is gigabytes of allocation per call —
	// the simulated reads fault long before such a buffer fills.
	const chunk = cmem.PageSize
	scratch := size
	if scratch > chunk {
		scratch = chunk
	}
	tmp := make([]byte, scratch)
	tmp2 := make([]byte, scratch)
	swap := func(a, b cmem.Addr) *cmem.Fault {
		for off := uint32(0); off < size; off += chunk {
			n := size - off
			if n > chunk {
				n = chunk
			}
			ac, bc := a+cmem.Addr(off), b+cmem.Addr(off)
			if f := sp.Read(ac, tmp[:n]); f != nil {
				return f
			}
			if f := sp.Read(bc, tmp2[:n]); f != nil {
				return f
			}
			if f := sp.Write(ac, tmp2[:n]); f != nil {
				return f
			}
			if f := sp.Write(bc, tmp[:n]); f != nil {
				return f
			}
		}
		return nil
	}
	// Insertion sort: quadratic but calls the comparator the way C does,
	// and the injector only needs the memory behaviour to be authentic.
	for i := uint32(1); i < nmemb; i++ {
		j := i
		for j > 0 {
			r, f := env.CallIndirect(compar, []cval.Value{cval.Ptr(elem(j - 1)), cval.Ptr(elem(j))})
			if f != nil {
				return 0, f
			}
			if r.Int32() <= 0 {
				break
			}
			if f := swap(elem(j-1), elem(j)); f != nil {
				return 0, f
			}
			j--
		}
	}
	return 0, nil
}

func cBsearch(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	key := arg(args, 0)
	base := arg(args, 1).Addr()
	nmemb := arg(args, 2).Uint32()
	size := arg(args, 3).Uint32()
	compar := arg(args, 4)
	lo, hi := uint32(0), nmemb
	for lo < hi {
		mid := lo + (hi-lo)/2
		p := base + cmem.Addr(mid*size)
		r, f := env.CallIndirect(compar, []cval.Value{key, cval.Ptr(p)})
		if f != nil {
			return 0, f
		}
		switch {
		case r.Int32() == 0:
			return cval.Ptr(p), nil
		case r.Int32() < 0:
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return cval.Ptr(0), nil
}

func cExit(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	// Run atexit handlers in reverse registration order, then latch.
	handlers, _ := env.Statics["atexit"].([]cval.Value)
	for i := len(handlers) - 1; i >= 0; i-- {
		if _, f := env.CallIndirect(handlers[i], nil); f != nil {
			return 0, f
		}
	}
	env.Exit(arg(args, 0).Int32())
	return 0, nil
}

func cAbort(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	return 0, &cmem.Fault{Kind: cmem.FaultAbort, Op: "abort", Detail: "abort() called"}
}

func cGetenv(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	name, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	a, f := env.Getenv(name)
	if f != nil {
		return 0, f
	}
	return cval.Ptr(a), nil
}

func cSetenv(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	sp := env.Img.Space
	name, f := sp.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	value, f := sp.ReadCString(arg(args, 1).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	if name == "" {
		env.Errno = cval.EINVAL
		return cval.Int(-1), nil
	}
	overwrite := arg(args, 2).Int32()
	if overwrite == 0 {
		if a, _ := env.Getenv(name); !a.IsNull() {
			return cval.Int(0), nil
		}
	}
	env.Setenv(name, value)
	return cval.Int(0), nil
}

func cUnsetenv(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	name, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	env.Unsetenv(name)
	return cval.Int(0), nil
}

func cAtexit(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	handlers, _ := env.Statics["atexit"].([]cval.Value)
	env.Statics["atexit"] = append(handlers, arg(args, 0))
	return cval.Int(0), nil
}

// cSystem is the simulated system(3): it does not run a real shell; it
// records the attempt. A root-privileged process "successfully" spawning a
// shell is the attacker's win condition in the §3.4 demo.
func cSystem(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	cmd, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<16)
	if f != nil {
		return 0, f
	}
	env.ShellSpawned = true
	env.Stdout.WriteString("[system] exec: " + cmd + "\n")
	return cval.Int(0), nil
}
