package clib

import (
	"healers/internal/cmem"
	"healers/internal/cval"
)

// The ctype.h family. C's classification macros index a table with the
// *int* argument; passing values outside unsigned char / EOF is undefined
// behaviour, which glibc's table layout turns into out-of-bounds reads.
// The simulated versions return 0 for out-of-range inputs (a benign
// resolution) — the injector still exercises them to show the scalar
// chain needs no strengthening.

func init() {
	registerImpl("isalpha", classify(func(c byte) bool {
		return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	}))
	registerImpl("isdigit", classify(func(c byte) bool { return c >= '0' && c <= '9' }))
	registerImpl("isalnum", classify(func(c byte) bool {
		return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}))
	registerImpl("isspace", classify(func(c byte) bool {
		return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
	}))
	registerImpl("isupper", classify(func(c byte) bool { return c >= 'A' && c <= 'Z' }))
	registerImpl("islower", classify(func(c byte) bool { return c >= 'a' && c <= 'z' }))
	registerImpl("ispunct", classify(func(c byte) bool {
		return c >= 0x21 && c <= 0x7e && !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
	}))
	registerImpl("isprint", classify(func(c byte) bool { return c >= 0x20 && c < 0x7f }))
	registerImpl("iscntrl", classify(func(c byte) bool { return c < 0x20 || c == 0x7f }))
	registerImpl("isxdigit", classify(func(c byte) bool {
		return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}))
	registerImpl("toupper", cToupper)
	registerImpl("tolower", cTolower)
	registerImpl("wctrans", cWctrans)
	registerImpl("towctrans", cTowctrans)
}

// classify adapts a byte predicate to the C int->int convention.
func classify(pred func(byte) bool) cval.CFunc {
	return func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		c := arg(args, 0).Int32()
		if c < 0 || c > 255 {
			return cval.Int(0), nil
		}
		return cval.Bool(pred(byte(c))), nil
	}
}

func cToupper(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	c := arg(args, 0).Int32()
	if c >= 'a' && c <= 'z' {
		c -= 32
	}
	return cval.Int(int64(c)), nil
}

func cTolower(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	c := arg(args, 0).Int32()
	if c >= 'A' && c <= 'Z' {
		c += 32
	}
	return cval.Int(int64(c)), nil
}

// wctrans descriptors, as returned by wctrans(3) and consumed by
// towctrans. Zero means "unknown mapping".
const (
	wctransToLower = 1
	wctransToUpper = 2
)

// cWctrans is the function the paper's Figure 3 wraps. It reads the
// mapping name from the (possibly invalid) pointer — the authentic hazard.
func cWctrans(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	name, f := env.Img.Space.ReadCString(arg(args, 0).Addr(), 1<<12)
	if f != nil {
		return 0, f
	}
	switch name {
	case "tolower":
		return cval.Int(wctransToLower), nil
	case "toupper":
		return cval.Int(wctransToUpper), nil
	default:
		env.Errno = cval.EINVAL
		return cval.Int(0), nil
	}
}

func cTowctrans(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
	wc := arg(args, 0).Int32()
	switch arg(args, 1).Int32() {
	case wctransToLower:
		if wc >= 'A' && wc <= 'Z' {
			wc += 32
		}
	case wctransToUpper:
		if wc >= 'a' && wc <= 'z' {
			wc -= 32
		}
	}
	return cval.Int(int64(wc)), nil
}
