// Adaptive re-derivation: the feedback half of the closed loop. The
// collector's fleet aggregate records how often each wrapped function's
// faults were contained, per failure class; EscalatePolicy folds those
// counters into a stricter recovery-policy revision, and ReprobeFunction
// re-derives a single escalated function's robust type through the
// ordinary cache-aware campaign engine. healers-collectd -derive drives
// both on a timer, publishing each new revision through the control
// plane so running containment wrappers tighten by hot-reload.

package core

import (
	"fmt"
	"sort"

	"healers/internal/collect"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/xmlrep"
)

// EscalationConfig parametrizes the adaptive-derivation pass.
type EscalationConfig struct {
	// FaultRate is the per-(function, failure-class) containment rate —
	// contained faults of that class divided by the function's total
	// calls — at or above which the function's rule for that class is
	// tightened. <= 0 selects DefaultEscalationRate.
	FaultRate float64
	// MinCalls is the evidence floor: functions with fewer total calls
	// are never escalated, so a single unlucky call cannot condemn a
	// function. <= 0 selects DefaultEscalationMinCalls.
	MinCalls uint64
	// TightenedBreaker is the per-function breaker threshold the
	// ladder's last rung installs (a function already denied outright
	// gets a stricter breaker instead). <= 0 selects
	// DefaultTightenedBreaker.
	TightenedBreaker int
}

// Escalation defaults: a function whose faults of one class exceed 5%
// of its calls, over at least 16 calls of evidence, gets a stricter
// rule; the final rung is a one-strike breaker.
const (
	DefaultEscalationRate     = 0.05
	DefaultEscalationMinCalls = 16
	DefaultTightenedBreaker   = 1
)

// withDefaults resolves zero fields to the package defaults.
func (c EscalationConfig) withDefaults() EscalationConfig {
	if c.FaultRate <= 0 {
		c.FaultRate = DefaultEscalationRate
	}
	if c.MinCalls == 0 {
		c.MinCalls = DefaultEscalationMinCalls
	}
	if c.TightenedBreaker <= 0 {
		c.TightenedBreaker = DefaultTightenedBreaker
	}
	return c
}

// Escalation records one tightening decision: function fn's faults of
// class Class crossed the configured rate, so its effective action From
// was escalated to To.
type Escalation struct {
	Func  string
	Class string
	// Contained and Calls are the evidence: contained faults of Class
	// vs total calls in the fleet aggregate.
	Contained uint64
	Calls     uint64
	// Rate is Contained/Calls.
	Rate float64
	// From and To describe the rung climbed, e.g. "retry" -> "deny", or
	// "deny" -> "deny+breaker(1)".
	From string
	To   string
}

// EscalatePolicy folds fleet containment counters into a stricter
// policy document. For every (function, failure class) whose
// containment rate crosses cfg.FaultRate with at least cfg.MinCalls of
// evidence, the function's effective rule for that class climbs one
// rung of the escalation ladder:
//
//	escalate / substitute / retry  ->  deny
//	deny                           ->  deny + per-function breaker (one strike)
//	deny + breaker                 ->  (top rung, no further change)
//
// The returned document keeps cur's breaker parameters and rules, with
// the escalated (function, class) rules inserted ahead of them —
// first-match semantics make the specific rule win over whatever
// matched before. It is stamped with revision cur.Revision+1. When
// nothing crosses the threshold the function returns (nil, nil); cur
// may be nil, which escalates against the all-deny default policy.
func EscalatePolicy(agg *collect.FleetAggregate, cur *xmlrep.PolicyDoc, cfg EscalationConfig) (*xmlrep.PolicyDoc, []Escalation) {
	cfg = cfg.withDefaults()
	base := cur
	if base == nil {
		base = &xmlrep.PolicyDoc{}
	}

	// Deterministic order: functions sorted by name, classes in declared
	// order, so repeated passes over the same aggregate produce the same
	// document (and the same checksum).
	names := make([]string, 0, len(agg.Funcs))
	for fn := range agg.Funcs {
		names = append(names, fn)
	}
	sort.Strings(names)

	var escalations []Escalation
	newRules := append([]xmlrep.PolicyRuleXML(nil), base.Rules...)
	for _, fn := range names {
		fa := agg.Funcs[fn]
		if fa.Calls < cfg.MinCalls {
			continue
		}
		for c := 0; c < gen.NumFailureClasses; c++ {
			contained := fa.ContainedBy[c]
			if contained == 0 {
				continue
			}
			rate := float64(contained) / float64(fa.Calls)
			if rate < cfg.FaultRate {
				continue
			}
			class := gen.FailureClass(c).String()
			rule, idx := effectiveRule(newRules, fn, class)
			esc := Escalation{
				Func:      fn,
				Class:     class,
				Contained: contained,
				Calls:     fa.Calls,
				Rate:      rate,
			}
			next, changed := climb(rule, cfg.TightenedBreaker)
			if !changed {
				continue
			}
			esc.From = describeRule(rule)
			esc.To = describeRule(&next)
			next.Func = fn
			next.Class = class
			if idx >= 0 && newRules[idx].Func == fn && newRules[idx].Class == class {
				// A previous escalation already pinned a specific rule
				// for this pair; climb it in place instead of stacking
				// shadowed duplicates.
				newRules[idx] = next
			} else {
				newRules = append([]xmlrep.PolicyRuleXML{next}, newRules...)
			}
			escalations = append(escalations, esc)
		}
	}
	if len(escalations) == 0 {
		return nil, nil
	}
	doc := &xmlrep.PolicyDoc{
		BreakerThreshold: base.BreakerThreshold,
		BreakerWindowMS:  base.BreakerWindowMS,
		Rules:            newRules,
	}
	doc.Stamp(base.Revision + 1)
	return doc, escalations
}

// effectiveRule returns the first rule matching (fn, class) under the
// engine's first-match semantics, plus its index; (nil, -1) means the
// engine default (deny) applies.
func effectiveRule(rules []xmlrep.PolicyRuleXML, fn, class string) (*xmlrep.PolicyRuleXML, int) {
	for i := range rules {
		r := &rules[i]
		if r.Func != "" && r.Func != "*" && r.Func != fn {
			continue
		}
		if r.Class != "" && r.Class != "*" && r.Class != class {
			continue
		}
		return r, i
	}
	return nil, -1
}

// climb returns the rule one rung stricter than cur (nil = the default
// deny). changed is false at the top of the ladder.
func climb(cur *xmlrep.PolicyRuleXML, tightenedBreaker int) (next xmlrep.PolicyRuleXML, changed bool) {
	action := "deny"
	breaker := 0
	if cur != nil {
		action = cur.Action
		breaker = cur.BreakerThreshold
	}
	switch {
	case action != "deny":
		// escalate / substitute / retry: stop resurrecting the call,
		// virtualize every failure into its class errno.
		return xmlrep.PolicyRuleXML{Action: "deny"}, true
	case breaker <= 0 || breaker > tightenedBreaker:
		// Already denying: latch the function to always-deny after
		// tightenedBreaker strikes instead of the engine-wide threshold.
		return xmlrep.PolicyRuleXML{Action: "deny", BreakerThreshold: tightenedBreaker}, true
	default:
		return xmlrep.PolicyRuleXML{}, false
	}
}

// describeRule renders a rule's action for escalation reports.
func describeRule(r *xmlrep.PolicyRuleXML) string {
	if r == nil {
		return "deny (default)"
	}
	if r.BreakerThreshold > 0 {
		return fmt.Sprintf("%s+breaker(%d)", r.Action, r.BreakerThreshold)
	}
	return r.Action
}

// ReprobeFunction re-derives one function's robust type through the
// ordinary cache-aware campaign engine — the targeted half of adaptive
// re-derivation. With a warm cache every *other* function's verdict is
// a cache hit, so a single escalated function costs one function's
// probes, not a library sweep. The refreshed report lands in the cache
// via the engine's usual put path; callers persist it with cache.Save.
func (t *Toolkit) ReprobeFunction(soname, fn string, cache *inject.Cache) (*inject.FuncReport, error) {
	var opts []inject.CampaignOption
	if cache != nil {
		cache.Drop(fn) // force fresh probes for the escalated function
		opts = append(opts, inject.WithCache(cache))
	}
	return t.InjectFunction(soname, fn, opts...)
}
