package core

import (
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/inject"
	"healers/internal/simelf"
)

// TestAdaptToNewRelease exercises the paper's adaptivity requirement:
// "due to the fast software update cycle ... the protection method should
// be able to adapt quickly to new software releases" (§1). Version 1 of a
// vendor library validates its input; version 2 ships a "faster" parser
// that skips validation. The same automated pipeline — no manual work —
// derives a stronger robust API for v2 and regenerates a wrapper that
// removes the new failures.
func TestAdaptToNewRelease(t *testing.T) {
	proto, err := cheader.ParsePrototype("int parse_id(const char *s); // @s in_str")
	if err != nil {
		t.Fatal(err)
	}

	// v1: defensive — checks its pointer before parsing.
	v1 := func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		if len(args) == 0 || args[0].IsNull() ||
			!env.Img.Space.Mapped(args[0].Addr(), 1, cmem.ProtRead) {
			env.Errno = cval.EINVAL
			return cval.Int(-1), nil
		}
		b, f := env.Img.Space.ReadByteAt(args[0].Addr())
		if f != nil {
			return 0, f
		}
		return cval.Int(int64(b)), nil
	}
	// v2: "optimized" — dereferences blindly and scans to the NUL.
	v2 := func(env *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
		var a cmem.Addr
		if len(args) > 0 {
			a = args[0].Addr()
		}
		n, f := env.Img.Space.CStrLen(a)
		if f != nil {
			return 0, f
		}
		return cval.Int(int64(n)), nil
	}

	deriveFor := func(impl cval.CFunc) (*Toolkit, *inject.FuncReport) {
		t.Helper()
		tk, err := NewToolkit()
		if err != nil {
			t.Fatal(err)
		}
		lib := simelf.NewLibrary("libutil.so.1")
		lib.ExportWithProto(proto, impl)
		if err := tk.System().AddLibrary(lib); err != nil {
			t.Fatal(err)
		}
		fr, err := tk.InjectFunction("libutil.so.1", "parse_id")
		if err != nil {
			t.Fatal(err)
		}
		return tk, fr
	}

	_, fr1 := deriveFor(v1)
	if fr1.Failures != 0 {
		t.Fatalf("v1 is defensive yet showed %d failures", fr1.Failures)
	}
	if got := fr1.Verdicts[0].LevelName; got != "any" {
		t.Errorf("v1 derived %q, want any (no checks needed)", got)
	}

	tk2, fr2 := deriveFor(v2)
	if fr2.Failures == 0 {
		t.Fatal("v2 regression not detected by the campaign")
	}
	if got := fr2.Verdicts[0].LevelName; got != "cstring" {
		t.Errorf("v2 derived %q, want cstring", got)
	}

	// Regenerate the wrapper for the new release from the new campaign
	// and verify the regression is contained.
	lr := &inject.LibReport{Funcs: []*inject.FuncReport{fr2}}
	if _, err := tk2.GenerateRobustnessWrapper("libutil.so.1", lr.RobustAPI(), []string{"parse_id"}); err != nil {
		t.Fatalf("GenerateRobustnessWrapper: %v", err)
	}
	after, err := tk2.InjectFunction("libutil.so.1", "parse_id",
		inject.WithPreloads("libhealers_robust.so"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Failures != 0 {
		t.Errorf("wrapped v2 still fails %d probes", after.Failures)
	}
}
