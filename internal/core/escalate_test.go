package core

import (
	"path/filepath"
	"testing"

	"healers/internal/collect"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/xmlrep"
)

// aggWith builds a fleet aggregate with one function's call count and
// per-class containment counters.
func aggWith(fn string, calls uint64, byClass map[gen.FailureClass]uint64) *collect.FleetAggregate {
	fa := &collect.FuncAggregate{Calls: calls}
	for c, n := range byClass {
		fa.ContainedBy[c] = n
	}
	return &collect.FleetAggregate{Funcs: map[string]*collect.FuncAggregate{fn: fa}}
}

func TestEscalatePolicyClimbsRetryToDeny(t *testing.T) {
	cur := &xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Func: "*", Class: "*", Action: "retry", Retries: 1}},
	}
	cur.Stamp(1)
	agg := aggWith("malloc", 100, map[gen.FailureClass]uint64{gen.ClassCrash: 10})

	next, escs := EscalatePolicy(agg, cur, EscalationConfig{})
	if next == nil || len(escs) != 1 {
		t.Fatalf("EscalatePolicy = %v, %v; want one escalation", next, escs)
	}
	esc := escs[0]
	if esc.Func != "malloc" || esc.Class != "crash" || esc.From != "retry" || esc.To != "deny" {
		t.Errorf("escalation = %+v, want malloc/crash retry -> deny", esc)
	}
	if esc.Rate != 0.1 || esc.Contained != 10 || esc.Calls != 100 {
		t.Errorf("evidence = %+v, want 10/100 (10%%)", esc)
	}
	if next.Revision != 2 {
		t.Errorf("revision = %d, want 2", next.Revision)
	}
	if err := next.Validate(); err != nil {
		t.Errorf("escalated document does not validate: %v", err)
	}
	// The specific rule is prepended: first-match beats the wildcard.
	if r := next.Rules[0]; r.Func != "malloc" || r.Class != "crash" || r.Action != "deny" {
		t.Errorf("rules[0] = %+v, want the specific malloc/crash deny", r)
	}
	if len(next.Rules) != 2 {
		t.Errorf("rule count = %d, want 2 (specific + original wildcard)", len(next.Rules))
	}
}

// TestEscalatePolicyLadderTop walks the whole ladder: retry -> deny ->
// deny+breaker -> no further change.
func TestEscalatePolicyLadderTop(t *testing.T) {
	cur := &xmlrep.PolicyDoc{
		Rules: []xmlrep.PolicyRuleXML{{Func: "*", Class: "*", Action: "retry"}},
	}
	cur.Stamp(1)
	agg := aggWith("free", 100, map[gen.FailureClass]uint64{gen.ClassHang: 50})

	// Rung 1: retry -> deny.
	doc2, escs := EscalatePolicy(agg, cur, EscalationConfig{})
	if doc2 == nil || escs[0].To != "deny" {
		t.Fatalf("rung 1 = %v, want deny", escs)
	}
	// Rung 2: deny -> deny+breaker(1), climbing the same specific rule
	// in place rather than stacking a shadowed duplicate.
	doc3, escs := EscalatePolicy(agg, doc2, EscalationConfig{})
	if doc3 == nil || escs[0].To != "deny+breaker(1)" {
		t.Fatalf("rung 2 = %v, want deny+breaker(1)", escs)
	}
	if escs[0].From != "deny" {
		t.Errorf("rung 2 from = %q, want deny", escs[0].From)
	}
	if len(doc3.Rules) != len(doc2.Rules) {
		t.Errorf("rung 2 stacked a duplicate rule: %d vs %d", len(doc3.Rules), len(doc2.Rules))
	}
	if doc3.Revision != 3 {
		t.Errorf("revision = %d, want 3", doc3.Revision)
	}
	// Top rung: nothing left to tighten.
	if doc4, escs := EscalatePolicy(agg, doc3, EscalationConfig{}); doc4 != nil || escs != nil {
		t.Errorf("top rung escalated anyway: %v, %v", doc4, escs)
	}
}

func TestEscalatePolicyThresholds(t *testing.T) {
	cfg := EscalationConfig{FaultRate: 0.05, MinCalls: 16}
	tests := []struct {
		name      string
		calls     uint64
		contained uint64
		want      bool
	}{
		{"below rate", 100, 4, false},
		{"at rate", 100, 5, true},
		{"below evidence floor", 10, 9, false},
		{"at evidence floor", 16, 1, true}, // 1/16 = 6.25% >= 5%
		{"zero contained", 100, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			agg := aggWith("open", tt.calls, map[gen.FailureClass]uint64{gen.ClassCrash: tt.contained})
			doc, _ := EscalatePolicy(agg, nil, cfg)
			if got := doc != nil; got != tt.want {
				t.Errorf("escalated = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestEscalatePolicyNilCurrent escalates against no policy at all: the
// implicit default is deny, so the first rung installs the tightened
// breaker.
func TestEscalatePolicyNilCurrent(t *testing.T) {
	agg := aggWith("close", 100, map[gen.FailureClass]uint64{gen.ClassOOM: 20})
	doc, escs := EscalatePolicy(agg, nil, EscalationConfig{TightenedBreaker: 3})
	if doc == nil || len(escs) != 1 {
		t.Fatalf("EscalatePolicy = %v, %v", doc, escs)
	}
	if escs[0].From != "deny (default)" || escs[0].To != "deny+breaker(3)" {
		t.Errorf("escalation = %+v, want deny (default) -> deny+breaker(3)", escs[0])
	}
	if doc.Revision != 1 {
		t.Errorf("revision = %d, want 1 (base had none)", doc.Revision)
	}
}

// TestEscalatePolicyDeterministic: two passes over the same aggregate
// must stamp byte-identical documents — sorted iteration, reproducible
// checksums.
func TestEscalatePolicyDeterministic(t *testing.T) {
	agg := &collect.FleetAggregate{Funcs: map[string]*collect.FuncAggregate{}}
	for _, fn := range []string{"zeta", "alpha", "mid"} {
		fa := &collect.FuncAggregate{Calls: 100}
		fa.ContainedBy[gen.ClassCrash] = 30
		fa.ContainedBy[gen.ClassHang] = 20
		agg.Funcs[fn] = fa
	}
	a, _ := EscalatePolicy(agg, nil, EscalationConfig{})
	b, _ := EscalatePolicy(agg, nil, EscalationConfig{})
	if a == nil || b == nil {
		t.Fatal("no escalation")
	}
	da, err := xmlrep.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := xmlrep.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Errorf("repeated passes disagree:\n%s\nvs\n%s", da, db)
	}
	if a.Checksum != b.Checksum {
		t.Errorf("checksums disagree: %s vs %s", a.Checksum, b.Checksum)
	}
}

// TestReprobeFunction re-derives one function through a warm cache: the
// target is probed fresh while the rest of the library stays cached.
func TestReprobeFunction(t *testing.T) {
	tk, err := NewToolkit()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := inject.OpenCache(filepath.Join(t.TempDir(), "cache.xml"))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache for the target.
	if _, err := tk.InjectFunction("libc.so.6", "strlen", inject.WithCache(cache)); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d after warmup, want 1", cache.Len())
	}
	fr, err := tk.ReprobeFunction("libc.so.6", "strlen", cache)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Name != "strlen" || fr.Probes == 0 {
		t.Errorf("reprobe report = %+v, want fresh strlen probes", fr)
	}
	if cache.Len() != 1 {
		t.Errorf("cache len = %d after reprobe, want 1 (refreshed entry)", cache.Len())
	}
	if err := cache.Save(); err != nil {
		t.Errorf("cache save: %v", err)
	}
}
