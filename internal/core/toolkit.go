// Package core is the HEALERS toolkit itself: the orchestration layer
// that ties the substrates together into the paper's workflow.
//
//	scan    — enumerate libraries and applications, emit declaration
//	          files (demos §3.1/§3.2, Fig. 4);
//	inject  — run automated fault-injection campaigns and derive robust
//	          APIs (§2.2, Fig. 2);
//	generate— build robustness / security / profiling wrappers from
//	          micro-generators and install them (§2.3, Fig. 3);
//	run     — execute applications with wrappers preloaded, collect XML
//	          profiles, ship them to a collection server (§3.3, Fig. 5);
//	verify  — re-run the campaign with the wrapper preloaded and show
//	          the failures are gone.
package core

import (
	"fmt"
	"sort"
	"strings"

	"healers/internal/clib"
	"healers/internal/cmath"
	"healers/internal/collect"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/dynlink"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/proc"
	"healers/internal/simelf"
	"healers/internal/victim"
	"healers/internal/wrappers"
	"healers/internal/xmlrep"
)

// Toolkit is one HEALERS instance bound to one simulated system.
type Toolkit struct {
	sys *simelf.System
	// states remembers the statistics object behind each generated
	// wrapper library.
	states map[string]*gen.State
}

// NewToolkit creates a toolkit over a fresh system with the simulated C
// library installed.
func NewToolkit() (*Toolkit, error) {
	sys := simelf.NewSystem()
	reg, err := clib.NewRegistry()
	if err != nil {
		return nil, err
	}
	if err := sys.AddLibrary(reg.AsLibrary()); err != nil {
		return nil, err
	}
	libm, err := cmath.AsLibrary()
	if err != nil {
		return nil, err
	}
	if err := sys.AddLibrary(libm); err != nil {
		return nil, err
	}
	return &Toolkit{sys: sys, states: make(map[string]*gen.State)}, nil
}

// System exposes the underlying system registry.
func (t *Toolkit) System() *simelf.System { return t.sys }

// InstallSampleApps installs the victim applications (rootd, textutil,
// stress).
func (t *Toolkit) InstallSampleApps() error {
	return victim.InstallAll(t.sys)
}

// WrapperState returns the statistics behind a generated wrapper.
func (t *Toolkit) WrapperState(soname string) (*gen.State, bool) {
	st, ok := t.states[soname]
	return st, ok
}

// ---------------------------------------------------------------------
// Scanning (demos §3.1 and §3.2)

// LibraryScan is the library-centric scan result.
type LibraryScan struct {
	Soname string
	// Functions lists every exported function, sorted.
	Functions []string
	// Protos carries the parsed prototype per function (nil when the
	// symbol has no prototype information).
	Protos map[string]*ctypes.Prototype
}

// Declarations renders the scan as the XML declaration file of demo §3.1.
func (s *LibraryScan) Declarations() *xmlrep.Declarations {
	var protos []*ctypes.Prototype
	for _, fn := range s.Functions {
		if p := s.Protos[fn]; p != nil {
			protos = append(protos, p)
		}
	}
	return xmlrep.NewDeclarations(s.Soname, protos)
}

// ListLibraries lists every installed library ("our toolkit can list all
// libraries in the system").
func (t *Toolkit) ListLibraries() []string { return t.sys.Libraries() }

// ListApplications lists every installed executable.
func (t *Toolkit) ListApplications() []string { return t.sys.Executables() }

// ScanLibrary enumerates a library's functions and prototypes.
func (t *Toolkit) ScanLibrary(soname string) (*LibraryScan, error) {
	lib, ok := t.sys.Library(soname)
	if !ok {
		return nil, fmt.Errorf("core: no such library %q", soname)
	}
	scan := &LibraryScan{
		Soname:    soname,
		Functions: lib.Symbols(),
		Protos:    make(map[string]*ctypes.Prototype),
	}
	for _, fn := range scan.Functions {
		scan.Protos[fn] = lib.Proto(fn)
	}
	return scan, nil
}

// AppScan is the application-centric scan of Figure 4: the libraries an
// executable links against and its undefined symbols.
type AppScan struct {
	Name string
	// DirectLibs are the NEEDED entries.
	DirectLibs []string
	// AllLibs is the transitive closure, in load order.
	AllLibs []string
	// MissingLibs are NEEDED entries not installed.
	MissingLibs []string
	// Undefined are the symbols the application imports.
	Undefined []string
	// ResolvedBy maps each undefined symbol to the library that defines
	// it ("" when unresolved).
	ResolvedBy map[string]string
}

// ScanApplication extracts the linked-library list and undefined-function
// list of an executable (demo §3.2, Fig. 4).
func (t *Toolkit) ScanApplication(name string) (*AppScan, error) {
	exe, ok := t.sys.Executable(name)
	if !ok {
		return nil, fmt.Errorf("core: no such application %q", name)
	}
	scan := &AppScan{
		Name:       name,
		DirectLibs: append([]string(nil), exe.Needed...),
		Undefined:  append([]string(nil), exe.Undefined...),
		ResolvedBy: make(map[string]string),
	}
	sort.Strings(scan.Undefined)
	scan.AllLibs, scan.MissingLibs = t.sys.TransitiveDeps(exe.Needed)
	for _, sym := range scan.Undefined {
		scan.ResolvedBy[sym] = ""
		for _, soname := range scan.AllLibs {
			lib, _ := t.sys.Library(soname)
			if _, ok := lib.Lookup(sym); ok {
				scan.ResolvedBy[sym] = soname
				break
			}
		}
	}
	return scan, nil
}

// ---------------------------------------------------------------------
// Fault injection (§2.2, Fig. 2)

// Inject runs a fault-injection campaign against every function of a
// library and returns the full report.
func (t *Toolkit) Inject(soname string, opts ...inject.CampaignOption) (*inject.LibReport, error) {
	c, err := inject.New(t.sys, soname, opts...)
	if err != nil {
		return nil, err
	}
	return c.RunLibrary()
}

// CompareInjectionModes runs the single-fault and pairwise sweeps on one
// function (the DESIGN.md §5 campaign-mode ablation).
func (t *Toolkit) CompareInjectionModes(soname, fn string) (*inject.ModeComparison, error) {
	c, err := inject.New(t.sys, soname)
	if err != nil {
		return nil, err
	}
	return c.CompareModes(fn)
}

// InjectFunction probes a single function.
func (t *Toolkit) InjectFunction(soname, fn string, opts ...inject.CampaignOption) (*inject.FuncReport, error) {
	c, err := inject.New(t.sys, soname, opts...)
	if err != nil {
		return nil, err
	}
	return c.RunFunction(fn)
}

// InjectCoordinator plans a distributed campaign over soname and returns
// the coordinator, ready to Serve worker processes and Wait for the
// merged report — which is byte-identical to a sequential Inject run for
// any worker count.
func (t *Toolkit) InjectCoordinator(soname string, nshards int, opts []inject.CampaignOption, copts ...inject.CoordOption) (*inject.Coordinator, error) {
	c, err := inject.New(t.sys, soname, opts...)
	if err != nil {
		return nil, err
	}
	return inject.NewCoordinator(c, nshards, copts...), nil
}

// RunInjectWorker joins the distributed-campaign coordinator at addr and
// processes shard leases until the sweep completes.
func (t *Toolkit) RunInjectWorker(addr string, opts ...inject.WorkerOption) (*inject.WorkerSummary, error) {
	return inject.RunWorker(t.sys, addr, opts...)
}

// LoadRobustAPIXML parses a robust-API document previously produced by a
// campaign (healers-inject -xml), so a wrapper can be generated without
// re-running injection — the "adapt quickly to new software releases"
// workflow: campaigns run once per release, wrappers regenerate from the
// stored artifact.
func (t *Toolkit) LoadRobustAPIXML(data []byte) (ctypes.RobustAPI, error) {
	doc, err := xmlrep.Unmarshal[xmlrep.RobustAPIDoc](data)
	if err != nil {
		return nil, err
	}
	return doc.API()
}

// DeriveRobustAPI runs the campaign and extracts the robust API.
func (t *Toolkit) DeriveRobustAPI(soname string, opts ...inject.CampaignOption) (ctypes.RobustAPI, *inject.LibReport, error) {
	lr, err := t.Inject(soname, opts...)
	if err != nil {
		return nil, nil, err
	}
	return lr.RobustAPI(), lr, nil
}

// ---------------------------------------------------------------------
// Wrapper generation (§2.3)

// installWrapper registers a generated library and its state.
func (t *Toolkit) installWrapper(lib *simelf.Library, st *gen.State) error {
	if err := t.sys.AddLibrary(lib); err != nil {
		return err
	}
	t.states[lib.Soname] = st
	return nil
}

// GenerateRobustnessWrapper builds and installs the robustness wrapper
// for target enforcing api. names == nil wraps the whole library.
func (t *Toolkit) GenerateRobustnessWrapper(target string, api ctypes.RobustAPI, names []string) (*gen.State, error) {
	lib, ok := t.sys.Library(target)
	if !ok {
		return nil, fmt.Errorf("core: no such library %q", target)
	}
	wrapper, st, err := wrappers.Robustness(lib, api, names)
	if err != nil {
		return nil, err
	}
	return st, t.installWrapper(wrapper, st)
}

// GenerateSecurityWrapper builds and installs the security wrapper.
func (t *Toolkit) GenerateSecurityWrapper(target string, names []string) (*gen.State, error) {
	lib, ok := t.sys.Library(target)
	if !ok {
		return nil, fmt.Errorf("core: no such library %q", target)
	}
	wrapper, st, err := wrappers.Security(lib, names)
	if err != nil {
		return nil, err
	}
	return st, t.installWrapper(wrapper, st)
}

// CollectorEnvVar is the environment variable through which a wrapped
// process learns its collection server's address — configuration via the
// process environment, like LD_PRELOAD itself.
const CollectorEnvVar = "HEALERS_COLLECTOR"

// GenerateProfilingWrapper builds and installs the profiling wrapper. Its
// exit-flush hook uploads the XML profile to the address in the wrapped
// process's HEALERS_COLLECTOR environment variable, if set.
func (t *Toolkit) GenerateProfilingWrapper(target string, names []string) (*gen.State, error) {
	lib, ok := t.sys.Library(target)
	if !ok {
		return nil, fmt.Errorf("core: no such library %q", target)
	}
	wrapper, st, err := wrappers.Profiling(lib, names)
	if err != nil {
		return nil, err
	}
	st.OnExit = func(env *cval.Env, st *gen.State) {
		addr, ok := env.GetenvString(CollectorEnvVar)
		if !ok {
			return
		}
		app, _ := env.GetenvString("HEALERS_APP")
		if app == "" {
			app = "wrapped-app"
		}
		// Upload failures must not take down the wrapped application;
		// the error lands on its stderr instead.
		if err := collect.Upload(addr, xmlrep.NewProfileLog("sim-host", app, st)); err != nil {
			fmt.Fprintf(&env.Stderr, "healers: profile upload failed: %v\n", err)
		}
	}
	return st, t.installWrapper(wrapper, st)
}

// GenerateContainmentWrapper builds and installs the fault-containment
// wrapper for target: journaled calls, caught faults virtualized into
// errno returns under the given recovery policy. api may be nil (no
// upfront argument checks); policy may be nil (deny-on-failure with the
// default circuit breaker).
func (t *Toolkit) GenerateContainmentWrapper(target string, api ctypes.RobustAPI, policy gen.ContainPolicy, names []string) (*gen.State, error) {
	lib, ok := t.sys.Library(target)
	if !ok {
		return nil, fmt.Errorf("core: no such library %q", target)
	}
	wrapper, st, err := wrappers.Containment(lib, api, policy, names)
	if err != nil {
		return nil, err
	}
	return st, t.installWrapper(wrapper, st)
}

// LoadPolicyXML parses a recovery-policy document (healers-gen -policy)
// into the engine the containment wrapper consults.
func (t *Toolkit) LoadPolicyXML(data []byte) (*wrappers.PolicyEngine, error) {
	doc, err := xmlrep.Unmarshal[xmlrep.PolicyDoc](data)
	if err != nil {
		return nil, err
	}
	return wrappers.PolicyFromDoc(doc)
}

// WrapperSource renders the generated C-like source of one function's
// wrapper (Fig. 3). kind is "robustness", "security", "profiling", or
// "containment".
func (t *Toolkit) WrapperSource(kind, target, fn string, api ctypes.RobustAPI) (string, error) {
	lib, ok := t.sys.Library(target)
	if !ok {
		return "", fmt.Errorf("core: no such library %q", target)
	}
	proto := lib.Proto(fn)
	if proto == nil {
		return "", fmt.Errorf("core: %s has no prototype for %q", target, fn)
	}
	var g *gen.Generator
	switch kind {
	case "robustness":
		g = wrappers.RobustnessGenerator(api)
	case "security":
		g = wrappers.SecurityGenerator()
	case "profiling":
		g = wrappers.ProfilingGenerator()
	case "containment":
		g = wrappers.ContainmentGenerator(api, nil)
	default:
		return "", fmt.Errorf("core: unknown wrapper kind %q", kind)
	}
	return g.Source(proto), nil
}

// ---------------------------------------------------------------------
// Running and profiling (§3.3)

// RunResult couples a process result with the profile collected during
// the run, when a profiling wrapper was preloaded.
type RunResult struct {
	Proc    proc.Result
	Profile *xmlrep.ProfileLog
}

// RunProfiled executes an application with the profiling wrapper
// preloaded (generating and installing it on first use) and returns the
// run result plus the end-of-run profile document.
func (t *Toolkit) RunProfiled(app, stdin string, argv ...string) (*RunResult, error) {
	if _, ok := t.sys.Library(wrappers.ProfilingSoname); !ok {
		if _, err := t.GenerateProfilingWrapper(clib.LibcSoname, nil); err != nil {
			return nil, err
		}
	}
	// Zero the counters so each profiled run reports only itself.
	st := t.states[wrappers.ProfilingSoname]
	st.Reset()
	p, err := proc.Start(t.sys, app,
		proc.WithPreloads(wrappers.ProfilingSoname),
		proc.WithStdin(stdin))
	if err != nil {
		return nil, err
	}
	res := p.Run(argv...)
	log := xmlrep.NewProfileLog("sim-host", app, st)
	return &RunResult{Proc: res, Profile: log}, nil
}

// RunContained executes an application with the fault-containment
// wrapper preloaded (generating and installing it on first use under
// policy) and returns the run result plus the wrapper's profile
// document, containment counters included. A non-empty chaosSpec
// ("RATE[:SEED]") arms chaos mode for the run, so the wrapper has
// faults to contain.
func (t *Toolkit) RunContained(app, stdin string, policy gen.ContainPolicy, chaosSpec string, argv ...string) (*RunResult, error) {
	if _, ok := t.sys.Library(wrappers.ContainmentSoname); !ok {
		if _, err := t.GenerateContainmentWrapper(clib.LibcSoname, nil, policy, nil); err != nil {
			return nil, err
		}
	}
	st := t.states[wrappers.ContainmentSoname]
	st.Reset()
	opts := []proc.Option{
		proc.WithPreloads(wrappers.ContainmentSoname),
		proc.WithStdin(stdin),
	}
	if chaosSpec != "" {
		opts = append(opts, proc.WithEnvVar(proc.ChaosEnvVar, chaosSpec))
	}
	p, err := proc.Start(t.sys, app, opts...)
	if err != nil {
		return nil, err
	}
	res := p.Run(argv...)
	return &RunResult{Proc: res, Profile: xmlrep.NewProfileLog("sim-host", app, st)}, nil
}

// ChaosResult couples a chaos-mode run's outcome with the injector's
// draw statistics, so survival claims can be checked against how many
// faults were actually thrown at the process.
type ChaosResult struct {
	Proc proc.Result
	// Calls counts chaos rolls (one per C-library call); Injected
	// counts the faults the injector actually produced.
	Calls    uint64
	Injected uint64
}

// RunChaos executes an application under chaos mode: every C-library
// call fails with probability rate, drawing from the deterministic
// injector seeded with seed. Preloads (typically the containment
// wrapper) interpose between the application and the failing libc —
// the survival experiment of the recovery layer.
func (t *Toolkit) RunChaos(app string, rate float64, seed uint64, preloads []string, stdin string, argv ...string) (*ChaosResult, error) {
	p, err := proc.Start(t.sys, app,
		proc.WithPreloads(preloads...),
		proc.WithStdin(stdin),
		proc.WithEnvVar(proc.ChaosEnvVar, fmt.Sprintf("%g:%d", rate, seed)))
	if err != nil {
		return nil, err
	}
	res := p.Run(argv...)
	cr := &ChaosResult{Proc: res}
	if c := p.Env().Chaos; c != nil {
		cr.Calls, cr.Injected = c.Calls, c.Injected
	}
	return cr, nil
}

// ---------------------------------------------------------------------
// Chaos soak and sequence campaigns (stateful victims)

// SoakResult summarizes a sustained chaos soak of a stateful victim
// daemon: whether it survived the whole request window, how much the
// injector threw at it, how much the containment layer absorbed, and
// the request-latency quantiles the wrapper's histograms recorded.
type SoakResult struct {
	App      string
	Requests int
	// Served counts requests the daemon actually completed (its
	// per-request log lines) — the survival-time measure: an
	// unprotected daemon dies at its first injected fault, so
	// Served/Requests is the fraction of the window it survived.
	Served    int
	Survived  bool
	Contained bool
	Proc      proc.Result
	// Calls and Injected are the chaos injector's counters.
	Calls    uint64
	Injected uint64
	// ContainedFaults, Retried, and BreakerTrips are the containment
	// wrapper's recovery counters (zero for unprotected runs).
	ContainedFaults uint64
	Retried         uint64
	BreakerTrips    uint64
	// P50NS and P99NS are wrapped-call latency quantiles from the
	// wrapper's log2 histograms (zero for unprotected runs).
	P50NS int64
	P99NS int64
}

// PolicyHitRate is the fraction of injected faults the recovery policy
// absorbed (contained into errno returns).
func (r *SoakResult) PolicyHitRate() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.ContainedFaults) / float64(r.Injected)
}

// RunSoak drives a victim daemon (rootd or stackd) in streaming mode
// through `requests` benign requests under sustained chaos at the given
// rate and seed. With contained set, the fault-containment wrapper is
// preloaded (generated on first use) and its recovery counters and
// latency histograms are folded into the result; without it the bare
// daemon dies at its first injected fault.
func (t *Toolkit) RunSoak(app string, requests int, rate float64, seed uint64, contained bool) (*SoakResult, error) {
	var stdin []byte
	var logLine string
	switch app {
	case victim.RootdName:
		stdin = victim.StreamTraffic(requests)
		logLine = "rootd: request logged\n"
	case victim.StackdName:
		stdin = victim.StackStreamTraffic(requests)
		logLine = "stackd: request logged\n"
	default:
		return nil, fmt.Errorf("core: no streaming soak victim %q", app)
	}
	var preloads []string
	var st *gen.State
	if contained {
		// The soak-tuned recovery policy: deny with errno (the daemon's
		// retry loop replays), circuit breaker off — under *injected*
		// faults a breaker would condemn the hot read path and turn the
		// soak into a self-inflicted outage. An already-installed
		// containment wrapper (and its policy) is reused as-is.
		if _, ok := t.sys.Library(wrappers.ContainmentSoname); !ok {
			if _, err := t.GenerateContainmentWrapper(clib.LibcSoname, nil, wrappers.SoakPolicy(), nil); err != nil {
				return nil, err
			}
		}
		st = t.states[wrappers.ContainmentSoname]
		st.Reset()
		preloads = []string{wrappers.ContainmentSoname}
	}
	cr, err := t.RunChaos(app, rate, seed, preloads, string(stdin), victim.RootdStreamFlag)
	if err != nil {
		return nil, err
	}
	res := &SoakResult{
		App:       app,
		Requests:  requests,
		Served:    strings.Count(cr.Proc.Stdout, logLine),
		Survived:  !cr.Proc.Crashed() && cr.Proc.Status == 0,
		Contained: contained,
		Proc:      cr.Proc,
		Calls:     cr.Calls,
		Injected:  cr.Injected,
	}
	if st != nil {
		res.ContainedFaults, res.Retried, res.BreakerTrips = st.ContainmentTotals()
		st.Sync()
		merged := make([]uint64, gen.HistBuckets)
		for _, h := range st.ExecHist {
			for j, v := range h {
				merged[j] += v
			}
		}
		res.P50NS = gen.HistQuantileNS(merged, 0.50)
		res.P99NS = gen.HistQuantileNS(merged, 0.99)
	}
	return res, nil
}

// RunSequenceCampaign runs a temporal fault-sequence campaign over one
// scenario. Silent corruptions the journal diff catches are attributed
// to the containment wrapper's state (when one is installed), so they
// surface in profile XML and the /metrics outcome family.
func (t *Toolkit) RunSequenceCampaign(scenario inject.SequenceScenario, opts ...inject.SequenceOption) (*inject.SequenceReport, error) {
	sc, err := inject.NewSequence(t.sys, scenario, opts...)
	if err != nil {
		return nil, err
	}
	report, err := sc.Run()
	if err != nil {
		return nil, err
	}
	if st, ok := t.WrapperState(wrappers.ContainmentSoname); ok {
		for _, fn := range report.SilentCorruptions() {
			st.NoteSilentCorruption(nil, st.Index(fn))
		}
	}
	return report, nil
}

// Run executes an application with arbitrary preloads.
func (t *Toolkit) Run(app string, preloads []string, stdin string, argv ...string) (proc.Result, error) {
	p, err := proc.Start(t.sys, app,
		proc.WithPreloads(preloads...),
		proc.WithStdin(stdin))
	if err != nil {
		return proc.Result{}, err
	}
	return p.Run(argv...), nil
}

// ---------------------------------------------------------------------
// Verification (the before/after table)

// HardeningResult compares campaign failures without and with the
// robustness wrapper — the headline robustness table.
type HardeningResult struct {
	Before *inject.LibReport
	After  *inject.LibReport
}

// VerifyHardening derives the robust API, installs the robustness
// wrapper, and re-runs the whole campaign with the wrapper preloaded.
// Campaign options (worker count, progress, stats sinks) apply to both
// the before and after sweeps.
func (t *Toolkit) VerifyHardening(target string, opts ...inject.CampaignOption) (*HardeningResult, ctypes.RobustAPI, error) {
	api, before, err := t.DeriveRobustAPI(target, opts...)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := t.sys.Library(wrappers.RobustnessSoname); !ok {
		if _, err := t.GenerateRobustnessWrapper(target, api, nil); err != nil {
			return nil, nil, err
		}
	}
	afterOpts := append(append([]inject.CampaignOption(nil), opts...), inject.WithPreloads(wrappers.RobustnessSoname))
	after, err := t.Inject(target, afterOpts...)
	if err != nil {
		return nil, nil, err
	}
	return &HardeningResult{Before: before, After: after}, api, nil
}

// Linkmap builds the load map for an application without running it, for
// scan tooling that wants search-order detail.
func (t *Toolkit) Linkmap(app string, preloads []string) (*dynlink.Linkmap, error) {
	return dynlink.Load(t.sys, app, preloads)
}
