package core

import (
	"strings"
	"testing"
	"time"

	"healers/internal/clib"
	"healers/internal/collect"
	"healers/internal/inject"
	"healers/internal/proc"
	"healers/internal/victim"
	"healers/internal/wrappers"
	"healers/internal/xmlrep"
)

func newToolkit(t *testing.T) *Toolkit {
	t.Helper()
	tk, err := NewToolkit()
	if err != nil {
		t.Fatalf("NewToolkit: %v", err)
	}
	if err := tk.InstallSampleApps(); err != nil {
		t.Fatalf("InstallSampleApps: %v", err)
	}
	return tk
}

func TestScanLibrary(t *testing.T) {
	tk := newToolkit(t)
	libs := tk.ListLibraries()
	if len(libs) != 2 || libs[0] != clib.LibcSoname || libs[1] != "libm.so.6" {
		t.Fatalf("ListLibraries = %v", libs)
	}
	scan, err := tk.ScanLibrary(clib.LibcSoname)
	if err != nil {
		t.Fatalf("ScanLibrary: %v", err)
	}
	if len(scan.Functions) < 60 {
		t.Errorf("scan found %d functions", len(scan.Functions))
	}
	if scan.Protos["strcpy"] == nil {
		t.Error("scan missing strcpy prototype")
	}
	decl := scan.Declarations()
	if len(decl.Funcs) != len(scan.Functions) {
		t.Errorf("declaration file covers %d of %d functions", len(decl.Funcs), len(scan.Functions))
	}
	data, err := xmlrep.Marshal(decl)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `name="strcpy"`) {
		t.Error("declaration XML missing strcpy")
	}
	if _, err := tk.ScanLibrary("nope.so"); err == nil {
		t.Error("ScanLibrary of unknown library succeeded")
	}
}

func TestScanApplication(t *testing.T) {
	tk := newToolkit(t)
	apps := tk.ListApplications()
	if len(apps) != 5 {
		t.Fatalf("ListApplications = %v", apps)
	}
	scan, err := tk.ScanApplication(victim.RootdName)
	if err != nil {
		t.Fatalf("ScanApplication: %v", err)
	}
	if len(scan.AllLibs) != 1 || scan.AllLibs[0] != clib.LibcSoname {
		t.Errorf("AllLibs = %v", scan.AllLibs)
	}
	if len(scan.Undefined) == 0 {
		t.Fatal("no undefined symbols reported")
	}
	if scan.ResolvedBy["memcpy"] != clib.LibcSoname {
		t.Errorf("memcpy resolved by %q", scan.ResolvedBy["memcpy"])
	}
	out := RenderAppScan(scan)
	for _, want := range []string{"application: rootd", "libc.so.6", "memcpy", "system"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered scan missing %q:\n%s", want, out)
		}
	}
	if _, err := tk.ScanApplication("nope"); err == nil {
		t.Error("ScanApplication of unknown app succeeded")
	}
}

func TestInjectFunctionThroughToolkit(t *testing.T) {
	tk := newToolkit(t)
	fr, err := tk.InjectFunction(clib.LibcSoname, "strlen")
	if err != nil {
		t.Fatalf("InjectFunction: %v", err)
	}
	if fr.Failures == 0 {
		t.Error("strlen reported no failures")
	}
}

// TestVerifyHardening is the toolkit-level T2 experiment: derive the
// robust API, wrap, and show campaign failures drop to zero.
func TestVerifyHardening(t *testing.T) {
	if testing.Short() {
		t.Skip("full double campaign in -short mode")
	}
	tk := newToolkit(t)
	h, api, err := tk.VerifyHardening(clib.LibcSoname)
	if err != nil {
		t.Fatalf("VerifyHardening: %v", err)
	}
	if h.Before.TotalFailures == 0 {
		t.Fatal("baseline campaign found no failures")
	}
	if h.After.TotalFailures != 0 {
		var bad []string
		for _, fr := range h.After.Funcs {
			if fr.Failures > 0 {
				bad = append(bad, fr.Name)
			}
		}
		t.Fatalf("wrapped campaign still has %d failures in %v", h.After.TotalFailures, bad)
	}
	if len(api) == 0 {
		t.Error("empty robust API")
	}
	out := RenderHardening(h)
	if !strings.Contains(out, "total failures:") || !strings.Contains(out, " 0 after") {
		t.Errorf("hardening report:\n%s", out)
	}
	// The derived API for strcpy matches the paper's worked example.
	var destLevel string
	for _, p := range api["strcpy"] {
		if p.Name == "dest" {
			destLevel = p.LevelName
		}
	}
	if destLevel != "writable_sized" {
		t.Errorf("strcpy dest derived %q", destLevel)
	}
	// Campaign rendering sanity.
	table := RenderCampaign(h.Before)
	for _, want := range []string{"strcpy", "writable_sized", "functions had at least one robustness failure"} {
		if !strings.Contains(table, want) {
			t.Errorf("campaign table missing %q", want)
		}
	}
}

func TestRunProfiled(t *testing.T) {
	tk := newToolkit(t)
	rr, err := tk.RunProfiled(victim.TextutilName, "profiled run of the toolkit\n")
	if err != nil {
		t.Fatalf("RunProfiled: %v", err)
	}
	if rr.Proc.Crashed() || rr.Proc.Status != 0 {
		t.Fatalf("profiled run: %v", rr.Proc)
	}
	if rr.Profile.TotalCalls() == 0 {
		t.Fatal("profile collected no calls")
	}
	var sawStrtok bool
	for _, f := range rr.Profile.Funcs {
		if f.Name == "strtok" && f.Calls > 0 {
			sawStrtok = true
		}
	}
	if !sawStrtok {
		t.Error("profile missing strtok calls")
	}
	report := RenderProfile(rr.Profile)
	for _, want := range []string{"call frequency:", "execution time share:", "strtok"} {
		if !strings.Contains(report, want) {
			t.Errorf("profile report missing %q:\n%s", want, report)
		}
	}
}

func TestWrapperSource(t *testing.T) {
	tk := newToolkit(t)
	src, err := tk.WrapperSource("profiling", clib.LibcSoname, "wctrans", nil)
	if err != nil {
		t.Fatalf("WrapperSource: %v", err)
	}
	if !strings.Contains(src, "wctrans_t wctrans(const char* a1)") {
		t.Errorf("profiling source:\n%s", src)
	}
	if _, err := tk.WrapperSource("bogus", clib.LibcSoname, "wctrans", nil); err == nil {
		t.Error("unknown wrapper kind accepted")
	}
	if _, err := tk.WrapperSource("profiling", clib.LibcSoname, "no_fn", nil); err == nil {
		t.Error("unknown function accepted")
	}
	src, err = tk.WrapperSource("security", clib.LibcSoname, "strcpy", nil)
	if err != nil {
		t.Fatalf("security WrapperSource: %v", err)
	}
	if !strings.Contains(src, "healers_heap_check") {
		t.Errorf("security source missing heap check:\n%s", src)
	}
}

func TestGenerateWrappersAndRun(t *testing.T) {
	tk := newToolkit(t)
	if _, err := tk.GenerateSecurityWrapper(clib.LibcSoname, nil); err != nil {
		t.Fatalf("GenerateSecurityWrapper: %v", err)
	}
	st, ok := tk.WrapperState(wrappers.SecuritySoname)
	if !ok || st == nil {
		t.Fatal("no state for security wrapper")
	}
	// Exploit is stopped.
	res, err := tk.Run(victim.RootdName, []string{wrappers.SecuritySoname}, string(victim.ExploitPacket()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Crashed() {
		t.Fatalf("exploit not stopped: %v", res)
	}
	st.Sync()
	if st.Overflows == 0 {
		t.Error("security state did not count the overflow")
	}
	// And the undefended run spawns the shell.
	res, err = tk.Run(victim.RootdName, nil, string(victim.ExploitPacket()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Crashed() {
		t.Fatalf("undefended exploit crashed: %v", res)
	}
}

func TestLinkmapQuery(t *testing.T) {
	tk := newToolkit(t)
	if _, err := tk.GenerateProfilingWrapper(clib.LibcSoname, nil); err != nil {
		t.Fatal(err)
	}
	lm, err := tk.Linkmap(victim.StressName, []string{wrappers.ProfilingSoname})
	if err != nil {
		t.Fatalf("Linkmap: %v", err)
	}
	if def, _ := lm.DefiningObject("strlen"); def != wrappers.ProfilingSoname {
		t.Errorf("strlen defined by %q, want the preloaded wrapper", def)
	}
	objs := lm.Objects()
	if len(objs) != 2 || objs[0] != wrappers.ProfilingSoname {
		t.Errorf("objects = %v", objs)
	}
}

// TestExitFlushUploadsToCollector exercises the full distributed pipeline
// of §2.3: a wrapped application, configured only through its environment
// (HEALERS_COLLECTOR), uploads its profile to a live TCP collection
// server when it exits.
func TestExitFlushUploadsToCollector(t *testing.T) {
	srv, err := collect.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	tk := newToolkit(t)
	if _, err := tk.GenerateProfilingWrapper(clib.LibcSoname, nil); err != nil {
		t.Fatal(err)
	}
	p, err := proc.Start(tk.System(), victim.TextutilName,
		proc.WithPreloads(wrappers.ProfilingSoname),
		proc.WithStdin("flush me to the server\n"),
		proc.WithEnvVar(CollectorEnvVar, srv.Addr()),
		proc.WithEnvVar("HEALERS_APP", victim.TextutilName),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("run: %v (stderr %q)", res, res.Stderr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	logs, err := srv.Profiles()
	if err != nil || len(logs) != 1 {
		t.Fatalf("Profiles = %v, %v", logs, err)
	}
	if logs[0].App != victim.TextutilName {
		t.Errorf("uploaded app = %q", logs[0].App)
	}
	if logs[0].TotalCalls() == 0 {
		t.Error("uploaded profile has no calls")
	}
	// Without the env var, no upload happens.
	p, err = proc.Start(tk.System(), victim.TextutilName,
		proc.WithPreloads(wrappers.ProfilingSoname),
		proc.WithStdin("no collector configured\n"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res := p.Run(); res.Crashed() {
		t.Fatalf("unconfigured run crashed: %v", res)
	}
	time.Sleep(20 * time.Millisecond)
	if srv.Count() != 1 {
		t.Errorf("server has %d docs, want still 1", srv.Count())
	}
}

func TestLoadRobustAPIXMLRoundTrip(t *testing.T) {
	tk := newToolkit(t)
	fr, err := tk.InjectFunction(clib.LibcSoname, "strcpy")
	if err != nil {
		t.Fatal(err)
	}
	lr := &inject.LibReport{Funcs: []*inject.FuncReport{fr}}
	api := lr.RobustAPI()
	data, err := xmlrep.Marshal(xmlrep.NewRobustAPIDoc(clib.LibcSoname, api))
	if err != nil {
		t.Fatal(err)
	}
	back, err := tk.LoadRobustAPIXML(data)
	if err != nil {
		t.Fatalf("LoadRobustAPIXML: %v", err)
	}
	if len(back["strcpy"]) != 2 || back["strcpy"][0].LevelName != "writable_sized" {
		t.Errorf("round-tripped API = %+v", back["strcpy"])
	}
	// A wrapper generated from the stored artifact still denies bad calls.
	if _, err := tk.GenerateRobustnessWrapper(clib.LibcSoname, back, []string{"strcpy"}); err != nil {
		t.Fatalf("GenerateRobustnessWrapper: %v", err)
	}
	if _, err := tk.LoadRobustAPIXML([]byte("not xml")); err == nil {
		t.Error("junk XML accepted")
	}
}

func TestCompareInjectionModesThroughToolkit(t *testing.T) {
	tk := newToolkit(t)
	cmp, err := tk.CompareInjectionModes(clib.LibcSoname, "strncpy")
	if err != nil {
		t.Fatalf("CompareInjectionModes: %v", err)
	}
	if cmp.SingleProbes == 0 || cmp.PairProbes <= cmp.SingleProbes {
		t.Errorf("probe counts: single %d, pair %d", cmp.SingleProbes, cmp.PairProbes)
	}
}

// TestChaosSurvival is the recovery layer's headline experiment at the
// toolkit level: the same workload under the same deterministic fault
// sequence dies unprotected and completes with the containment wrapper
// preloaded.
func TestChaosSurvival(t *testing.T) {
	tk := newToolkit(t)
	if _, err := tk.GenerateContainmentWrapper(clib.LibcSoname, nil, nil, nil); err != nil {
		t.Fatalf("GenerateContainmentWrapper: %v", err)
	}

	const rate, seed = 0.05, 1234
	bare, err := tk.RunChaos(victim.StressName, rate, seed, nil, "", "50")
	if err != nil {
		t.Fatalf("RunChaos unprotected: %v", err)
	}
	if !bare.Proc.Crashed() {
		t.Fatalf("unprotected chaos run did not crash: %s (injected %d)", bare.Proc, bare.Injected)
	}
	if bare.Injected == 0 {
		t.Error("unprotected run reports zero injected faults")
	}

	wrapped, err := tk.RunChaos(victim.StressName, rate, seed,
		[]string{wrappers.ContainmentSoname}, "", "50")
	if err != nil {
		t.Fatalf("RunChaos wrapped: %v", err)
	}
	if wrapped.Proc.Crashed() {
		t.Fatalf("wrapped chaos run crashed: %s", wrapped.Proc)
	}
	// Survival must be earned, not vacuous: the injector fired during
	// the wrapped run and the wrapper contained every fault.
	if wrapped.Injected == 0 {
		t.Fatal("wrapped run saw no injected faults; survival proves nothing")
	}
	st, ok := tk.WrapperState(wrappers.ContainmentSoname)
	if !ok {
		t.Fatal("containment wrapper state missing")
	}
	contained, _, _ := st.ContainmentTotals()
	if contained != wrapped.Injected {
		t.Errorf("contained %d faults, injector produced %d", contained, wrapped.Injected)
	}
	// Determinism: replaying the seed reproduces the fault count.
	again, err := tk.RunChaos(victim.StressName, rate, seed, nil, "", "50")
	if err != nil {
		t.Fatal(err)
	}
	if again.Injected != bare.Injected || again.Calls != bare.Calls {
		t.Errorf("replay diverged: %d/%d faults, %d/%d calls",
			again.Injected, bare.Injected, again.Calls, bare.Calls)
	}
}

// TestRunContained: the contained run's profile document carries the
// recovery counters, ready for collection and /metrics.
func TestRunContained(t *testing.T) {
	tk := newToolkit(t)
	rr, err := tk.RunContained(victim.StressName, "", nil, "0.05:7", "30")
	if err != nil {
		t.Fatalf("RunContained: %v", err)
	}
	if rr.Proc.Crashed() {
		t.Fatalf("contained run crashed: %s", rr.Proc)
	}
	var contained uint64
	for _, f := range rr.Profile.Funcs {
		contained += f.Contained
	}
	if contained == 0 {
		t.Errorf("profile carries no contained faults:\n%s", RenderProfile(rr.Profile))
	}
	if !strings.Contains(RenderProfile(rr.Profile), "fault containment") {
		t.Error("rendered profile missing the containment section")
	}
	// A second run resets the counters: the profile reports one run.
	rr2, err := tk.RunContained(victim.StressName, "", nil, "", "5")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rr2.Profile.Funcs {
		if f.Contained != 0 {
			t.Errorf("%s: stale contained count %d after chaos-free run", f.Name, f.Contained)
		}
	}
}

// TestRunSoak: the sustained-chaos soak of the streaming daemons. The
// contained daemon must survive the whole request window with a nonzero
// recovery-policy hit rate; the bare daemon must die partway through.
func TestRunSoak(t *testing.T) {
	tk := newToolkit(t)
	const requests, rate, seed = 40, 0.05, 99

	for _, app := range []string{victim.RootdName, victim.StackdName} {
		bare, err := tk.RunSoak(app, requests, rate, seed, false)
		if err != nil {
			t.Fatalf("RunSoak %s bare: %v", app, err)
		}
		if bare.Survived {
			t.Fatalf("%s: unprotected soak survived %d requests under chaos (injected %d)",
				app, requests, bare.Injected)
		}
		if bare.Injected == 0 {
			t.Errorf("%s: unprotected soak saw no injected faults", app)
		}
		if bare.Served >= requests {
			t.Errorf("%s: unprotected soak served all %d requests despite dying", app, requests)
		}

		soak, err := tk.RunSoak(app, requests, rate, seed, true)
		if err != nil {
			t.Fatalf("RunSoak %s contained: %v", app, err)
		}
		if !soak.Survived {
			t.Fatalf("%s: contained soak died: %s (served %d/%d, injected %d, contained %d)",
				app, soak.Proc, soak.Served, requests, soak.Injected, soak.ContainedFaults)
		}
		if soak.Served != requests {
			t.Errorf("%s: contained soak served %d/%d requests", app, soak.Served, requests)
		}
		if soak.Injected == 0 {
			t.Errorf("%s: contained soak saw no injected faults; survival proves nothing", app)
		}
		if hr := soak.PolicyHitRate(); hr <= 0 || hr > 1 {
			t.Errorf("%s: policy hit rate %v outside (0,1]", app, hr)
		}
		if soak.P99NS < soak.P50NS {
			t.Errorf("%s: p99 %dns < p50 %dns", app, soak.P99NS, soak.P50NS)
		}

		// Determinism: same seed, same counters.
		again, err := tk.RunSoak(app, requests, rate, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if again.Injected != soak.Injected || again.Calls != soak.Calls {
			t.Errorf("%s: replay diverged: %d/%d faults, %d/%d calls",
				app, again.Injected, soak.Injected, again.Calls, soak.Calls)
		}
	}
}

// TestRunSequenceCampaignThroughToolkit: the facade runs a temporal
// campaign and attributes silent corruptions to the containment
// wrapper's state, so they surface in the profile document.
func TestRunSequenceCampaignThroughToolkit(t *testing.T) {
	tk := newToolkit(t)
	if _, err := tk.GenerateContainmentWrapper(clib.LibcSoname, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	report, err := tk.RunSequenceCampaign(inject.SequenceScenario{
		Name:  "textutil-words",
		App:   victim.TextutilName,
		Stdin: "delta alpha charlie bravo\n",
	})
	if err != nil {
		t.Fatalf("RunSequenceCampaign: %v", err)
	}
	funcs := report.SilentCorruptions()
	if len(funcs) == 0 {
		t.Fatal("sequence campaign caught no silent corruptions")
	}
	st, _ := tk.WrapperState(wrappers.ContainmentSoname)
	st.Sync()
	var total uint64
	for _, n := range st.CorruptionCount {
		total += n
	}
	if total != uint64(len(funcs)) {
		t.Errorf("wrapper state records %d silent corruptions, campaign found %d", total, len(funcs))
	}
	log := xmlrep.NewProfileLog("sim-host", victim.TextutilName, st)
	var inProfile uint64
	for _, f := range log.Funcs {
		inProfile += f.SilentCorrupt
	}
	if inProfile != total {
		t.Errorf("profile document carries %d silent corruptions, state has %d", inProfile, total)
	}
}
