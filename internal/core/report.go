package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/xmlrep"
)

// barWidth is the width of ASCII histogram bars in reports.
const barWidth = 40

// bar renders a proportional ASCII bar.
func bar(value, max uint64) string {
	if max == 0 {
		return ""
	}
	n := int(value * barWidth / max)
	if n == 0 && value > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// RenderProfile renders a profile document as the ASCII analogue of the
// paper's Figure 5: call frequency, share of execution time, and errno
// distribution per function.
func RenderProfile(log *xmlrep.ProfileLog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile of %s on %s (wrapper %s)\n", log.App, log.Host, log.Wrapper)

	type row struct {
		name   string
		calls  uint64
		execNS int64
	}
	var rows []row
	var maxCalls uint64
	var totalNS int64
	for _, f := range log.Funcs {
		if f.Calls == 0 {
			continue
		}
		rows = append(rows, row{f.Name, f.Calls, f.ExecNS})
		if f.Calls > maxCalls {
			maxCalls = f.Calls
		}
		totalNS += f.ExecNS
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].name < rows[j].name
	})

	b.WriteString("\ncall frequency:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %8d %s\n", r.name, r.calls, bar(r.calls, maxCalls))
	}

	b.WriteString("\nexecution time share:\n")
	for _, r := range rows {
		pct := 0.0
		if totalNS > 0 {
			pct = 100 * float64(r.execNS) / float64(totalNS)
		}
		fmt.Fprintf(&b, "  %-12s %7.2f%% %s\n", r.name, pct, bar(uint64(r.execNS), uint64(totalNS)))
	}

	hasErr := false
	for _, f := range log.Funcs {
		for _, e := range f.Errnos {
			if !hasErr {
				b.WriteString("\nerror distribution (by errno):\n")
				hasErr = true
			}
			fmt.Fprintf(&b, "  %-12s %-10s %6d\n", f.Name, e.Errno, e.Count)
		}
	}
	if len(log.Global) > 0 {
		b.WriteString("\nglobal errno histogram:\n")
		for _, e := range log.Global {
			fmt.Fprintf(&b, "  %-10s %6d\n", e.Errno, e.Count)
		}
	}
	if log.Overflows > 0 {
		fmt.Fprintf(&b, "\noverflows detected: %d\n", log.Overflows)
	}
	hasContain := false
	for _, f := range log.Funcs {
		if f.Contained == 0 && f.Retried == 0 && f.BreakerTrips == 0 {
			continue
		}
		if !hasContain {
			b.WriteString("\nfault containment (contained / retried / breaker trips):\n")
			hasContain = true
		}
		fmt.Fprintf(&b, "  %-12s %6d %6d %6d\n", f.Name, f.Contained, f.Retried, f.BreakerTrips)
	}
	return b.String()
}

// RenderHistograms renders a profile document's per-function latency
// histograms as percentile tables — the healers-profile -histograms
// view. Quantiles are derived from the log2 buckets (each value is the
// containing bucket's upper bound), so the output is reproducible from
// the raw XML document alone.
func RenderHistograms(log *xmlrep.ProfileLog) string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency histograms of %s on %s (wrapper %s)\n", log.App, log.Host, log.Wrapper)
	wrote := false
	for _, f := range log.Funcs {
		h := f.LatencyDense()
		total := gen.HistTotal(h)
		if total == 0 {
			continue
		}
		wrote = true
		fmt.Fprintf(&b, "\n%s: %d timed calls, p50 ≤ %s, p90 ≤ %s, p99 ≤ %s, max ≤ %s\n",
			f.Name, total,
			gen.FormatNS(gen.HistQuantileNS(h, 0.50)),
			gen.FormatNS(gen.HistQuantileNS(h, 0.90)),
			gen.FormatNS(gen.HistQuantileNS(h, 0.99)),
			gen.FormatNS(gen.HistQuantileNS(h, 1)))
		var maxCount uint64
		for _, c := range h {
			if c > maxCount {
				maxCount = c
			}
		}
		for i, c := range h {
			if c == 0 {
				continue
			}
			fmt.Fprintf(&b, "  ≤ %-8s %8d %s\n", gen.FormatNS(gen.HistUpperNS(i)), c, bar(c, maxCount))
		}
	}
	if !wrote {
		b.WriteString("\nno latency samples recorded\n")
	}
	return b.String()
}

// RenderTrace renders a profile document's call-trace ring — the
// healers-profile -trace view: the most recent intercepted calls with
// arguments, duration, and outcome, oldest first.
func RenderTrace(log *xmlrep.ProfileLog) string {
	var b strings.Builder
	trace := log.TraceEntries()
	fmt.Fprintf(&b, "call trace of %s on %s (wrapper %s, %d most recent calls)\n",
		log.App, log.Host, log.Wrapper, len(trace))
	if len(trace) == 0 {
		b.WriteString("\nno calls traced (wrapper built without the trace micro-generator?)\n")
		return b.String()
	}
	b.WriteByte('\n')
	for _, t := range trace {
		fmt.Fprintf(&b, "  #%-6d %s(%s) = %s in %s\n", t.Seq, t.Func, t.Args, t.Outcome, gen.FormatNS(t.DurNS))
	}
	return b.String()
}

// RenderCampaign renders a library campaign as the robustness table: one
// row per function with probe and failure counts and the derived robust
// types.
func RenderCampaign(lr *inject.LibReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-injection campaign against %s\n", lr.Library)
	fmt.Fprintf(&b, "%-12s %7s %9s  %s\n", "function", "probes", "failures", "derived robust argument types")
	for _, fr := range lr.Funcs {
		types := strings.Join(fr.RobustLevelNames(), ", ")
		if types == "" {
			types = "-"
		}
		fmt.Fprintf(&b, "%-12s %7d %9d  %s\n", fr.Name, fr.Probes, fr.Failures, types)
	}
	fmt.Fprintf(&b, "\ntotal: %d/%d probes failed; %d of %d functions had at least one robustness failure\n",
		lr.TotalFailures, lr.TotalProbes, lr.FuncsWithFailures(), len(lr.Funcs))
	hist := lr.OutcomeHistogram()
	b.WriteString("outcome histogram:")
	for _, o := range []inject.Outcome{inject.OutcomeOK, inject.OutcomeErrno, inject.OutcomeCrash, inject.OutcomeAbort, inject.OutcomeHang, inject.OutcomeCorrupt, inject.OutcomeDenied} {
		if hist[o] > 0 {
			fmt.Fprintf(&b, " %s=%d", o, hist[o])
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderCampaignStats renders a campaign throughput summary — the
// healers-inject -stats view: probes/sec, worker utilization, and the
// functions that dominated the sweep's wall time.
func RenderCampaignStats(s *inject.CampaignStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign throughput: %d probes in %v (%.0f probes/s), %d worker(s)\n",
		s.Probes, s.Elapsed.Round(time.Millisecond), s.ProbesPerSec, s.Workers)
	if s.CachedFuncs > 0 {
		fmt.Fprintf(&b, "campaign cache: %d function(s) reused (%d probes skipped)\n",
			s.CachedFuncs, s.CachedProbes)
	}
	if s.Workers > 1 {
		fmt.Fprintf(&b, "worker utilization: %.0f%%\n", s.Utilization*100)
	}
	// Cached functions have zero wall time by definition; keep them out
	// of the slowest-functions list.
	top := make([]inject.FuncTiming, 0, len(s.FuncWall))
	for _, f := range s.FuncWall {
		if !f.Cached {
			top = append(top, f)
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Wall > top[j].Wall })
	if len(top) > 5 {
		top = top[:5]
	}
	if len(top) > 0 {
		fmt.Fprintf(&b, "slowest functions:\n")
		for _, f := range top {
			fmt.Fprintf(&b, "  %-16s %3d probes  %v\n", f.Name, f.Probes, f.Wall.Round(time.Microsecond))
		}
	}
	return b.String()
}

// RenderHardening renders the before/after comparison.
func RenderHardening(h *HardeningResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness hardening of %s\n", h.Before.Library)
	fmt.Fprintf(&b, "%-12s %18s %18s\n", "function", "failures (before)", "failures (after)")
	for _, fr := range h.Before.Funcs {
		after := h.After.Func(fr.Name)
		an := 0
		if after != nil {
			an = after.Failures
		}
		if fr.Failures == 0 && an == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %18d %18d\n", fr.Name, fr.Failures, an)
	}
	fmt.Fprintf(&b, "\ntotal failures: %d before, %d after (%d functions wrapped)\n",
		h.Before.TotalFailures, h.After.TotalFailures, len(h.Before.Funcs))
	return b.String()
}

// RenderAppScan renders the Figure 4 view of an application.
func RenderAppScan(s *AppScan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "application: %s\n\nlinked libraries:\n", s.Name)
	for _, l := range s.AllLibs {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, l := range s.MissingLibs {
		fmt.Fprintf(&b, "  %s (NOT FOUND)\n", l)
	}
	b.WriteString("\nundefined functions:\n")
	for _, sym := range s.Undefined {
		by := s.ResolvedBy[sym]
		if by == "" {
			by = "UNRESOLVED"
		}
		fmt.Fprintf(&b, "  %-16s -> %s\n", sym, by)
	}
	return b.String()
}
