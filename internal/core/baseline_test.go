package core

import (
	"strings"
	"testing"

	"healers/internal/inject"
	"healers/internal/xmlrep"
)

// freshReport builds a one-function campaign report by hand: strlen-like
// with one in_str parameter at the given level name and failure count.
func freshReport(level string, levelIdx, failures int) *inject.LibReport {
	fr := &inject.FuncReport{
		Name:     "f",
		Probes:   7,
		Failures: failures,
		Verdicts: []inject.ParamVerdict{
			{Name: "s", Chain: "in_str", Level: levelIdx, LevelName: level},
		},
	}
	return &inject.LibReport{Library: "libx.so", Funcs: []*inject.FuncReport{fr},
		TotalProbes: fr.Probes, TotalFailures: fr.Failures}
}

// baselineDoc builds the matching baseline document.
func baselineDoc(level string, failures int) *xmlrep.RobustAPIDoc {
	return &xmlrep.RobustAPIDoc{Library: "libx.so", Funcs: []xmlrep.RobustFuncXML{
		{Name: "f", Failures: failures, Params: []xmlrep.RobustParamXML{
			{Name: "s", Chain: "in_str", Level: level},
		}},
	}}
}

// in_str levels: any(0) < nonnull(1) < readable(2) < cstring(3) <
// uncontainable(4); larger index == weaker robust type.

func TestCompareToBaselineClean(t *testing.T) {
	regs, imps, err := CompareToBaseline(freshReport("cstring", 3, 4), baselineDoc("cstring", 4))
	if err != nil || len(regs) != 0 || len(imps) != 0 {
		t.Fatalf("clean compare: regs=%v imps=%v err=%v", regs, imps, err)
	}
}

func TestCompareToBaselineWeaker(t *testing.T) {
	regs, _, err := CompareToBaseline(freshReport("cstring", 3, 4), baselineDoc("nonnull", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "weaker" || regs[0].Func != "f" || regs[0].Param != "s" {
		t.Fatalf("weaker robust type not flagged: %v", regs)
	}
}

func TestCompareToBaselineStrongerIsImprovement(t *testing.T) {
	regs, imps, err := CompareToBaseline(freshReport("nonnull", 1, 4), baselineDoc("cstring", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("improvement misreported as regression: %v", regs)
	}
	if len(imps) != 1 || imps[0].Kind != "stronger" {
		t.Errorf("stronger robust type not reported: %v", imps)
	}
}

func TestCompareToBaselineUncontainableIsWeakest(t *testing.T) {
	regs, _, err := CompareToBaseline(freshReport("uncontainable", 4, 4), baselineDoc("cstring", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "weaker" {
		t.Fatalf("uncontainable not treated as weakest: %v", regs)
	}
}

func TestCompareToBaselineFailures(t *testing.T) {
	regs, _, err := CompareToBaseline(freshReport("cstring", 3, 6), baselineDoc("cstring", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "gained-failures" {
		t.Fatalf("gained failures not flagged: %v", regs)
	}
	_, imps, err := CompareToBaseline(freshReport("cstring", 3, 2), baselineDoc("cstring", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 1 || imps[0].Kind != "fewer-failures" {
		t.Fatalf("fewer failures not reported as improvement: %v", imps)
	}
}

func TestCompareToBaselineCoverageChanges(t *testing.T) {
	// Fresh function absent from the baseline.
	regs, _, err := CompareToBaseline(freshReport("cstring", 3, 4),
		&xmlrep.RobustAPIDoc{Library: "libx.so"})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "new-function" {
		t.Fatalf("new function not flagged: %v", regs)
	}

	// Baseline function absent from the fresh derivation.
	regs, _, err = CompareToBaseline(&inject.LibReport{Library: "libx.so"},
		baselineDoc("cstring", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "missing-function" {
		t.Fatalf("missing function not flagged: %v", regs)
	}

	// Parameter count mismatch.
	base := baselineDoc("cstring", 4)
	base.Funcs[0].Params = append(base.Funcs[0].Params, xmlrep.RobustParamXML{Name: "n", Chain: "size", Level: "any"})
	regs, _, err = CompareToBaseline(freshReport("cstring", 3, 4), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Kind != "param-mismatch" {
		t.Fatalf("param mismatch not flagged: %v", regs)
	}
}

func TestCompareToBaselineUnknownLevel(t *testing.T) {
	_, _, err := CompareToBaseline(freshReport("cstring", 3, 4), baselineDoc("no-such-level", 4))
	if err == nil || !strings.Contains(err.Error(), "no-such-level") {
		t.Fatalf("undecodable baseline level not an error: %v", err)
	}
}

// TestNewBaselineDocStable: regenerating the baseline from the same
// report is byte-identical (no timestamp), and failure counts ride along.
func TestNewBaselineDocStable(t *testing.T) {
	lr := freshReport("cstring", 3, 4)
	a, err := xmlrep.Marshal(NewBaselineDoc("libx.so", lr))
	if err != nil {
		t.Fatal(err)
	}
	b, err := xmlrep.Marshal(NewBaselineDoc("libx.so", lr))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("baseline regeneration is not byte-stable")
	}
	if !strings.Contains(string(a), `failures="4"`) {
		t.Error("baseline lost the failure count")
	}
	if strings.Contains(string(a), "generated=") {
		t.Error("baseline carries a timestamp; regeneration would always diff")
	}

	// The baseline verifies against the report it was generated from.
	doc, err := xmlrep.Unmarshal[xmlrep.RobustAPIDoc](a)
	if err != nil {
		t.Fatal(err)
	}
	regs, imps, err := CompareToBaseline(lr, doc)
	if err != nil || len(regs) != 0 || len(imps) != 0 {
		t.Fatalf("self-compare not clean: regs=%v imps=%v err=%v", regs, imps, err)
	}
}
