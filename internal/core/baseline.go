// Robustness-regression gate: compare a freshly derived robust API
// against a checked-in baseline document and report every function whose
// robustness regressed — the CI check behind `healers-inject
// -verify-baseline`. A regression is a derived weakest robust type that
// got *weaker* (a larger lattice level is now required to survive), a
// function that gained robustness failures, or a baseline function the
// fresh derivation no longer covers. Improvements (a check got stronger,
// failures dropped) are reported separately and never fail the gate.
package core

import (
	"fmt"
	"sort"

	"healers/internal/ctypes"
	"healers/internal/inject"
	"healers/internal/xmlrep"
)

// BaselineDiff is one difference between a fresh derivation and the
// baseline.
type BaselineDiff struct {
	// Func is the function; Param the parameter name ("" for
	// function-level differences).
	Func  string
	Param string
	// Kind classifies the difference: "weaker", "gained-failures",
	// "missing-function", "new-function", "param-mismatch" are
	// regressions; "stronger" and "fewer-failures" are improvements.
	Kind string
	// Detail is the human-readable explanation.
	Detail string
}

func (d BaselineDiff) String() string {
	if d.Param != "" {
		return fmt.Sprintf("%s (param %s): %s — %s", d.Func, d.Param, d.Kind, d.Detail)
	}
	return fmt.Sprintf("%s: %s — %s", d.Func, d.Kind, d.Detail)
}

// NewBaselineDoc renders a campaign report as the baseline document the
// regression gate diffs against: the robust-API document extended with
// each function's failure count, and with the Generated timestamp
// cleared so regeneration over unchanged results is byte-identical —
// a baseline that never changes must never show a diff.
func NewBaselineDoc(library string, lr *inject.LibReport) *xmlrep.RobustAPIDoc {
	doc := xmlrep.NewRobustAPIDoc(library, lr.RobustAPI())
	doc.Generated = ""
	for i := range doc.Funcs {
		if fr := lr.Func(doc.Funcs[i].Name); fr != nil {
			doc.Funcs[i].Failures = fr.Failures
		}
	}
	return doc
}

// levelIndex decodes a robust-level name within its chain, treating
// "uncontainable" as one past the strongest level — the same ordering
// the campaign derives (larger == weaker robust type, i.e. a stronger
// check is required before the call is safe).
func levelIndex(chainName, level string) (int, error) {
	chain, ok := ctypes.ChainByName(chainName)
	if !ok {
		return 0, fmt.Errorf("core: unknown chain %q", chainName)
	}
	if level == "uncontainable" {
		return len(chain.Levels), nil
	}
	idx := chain.LevelIndex(level)
	if idx < 0 {
		return 0, fmt.Errorf("core: unknown level %q of chain %q", level, chainName)
	}
	return idx, nil
}

// CompareToBaseline diffs a fresh campaign report against a baseline
// document. It returns the regressions (which should fail a CI gate) and
// the improvements (informational) separately, both sorted by function
// then parameter. An error means the documents could not be compared at
// all (unknown chain or level names), not that a regression was found.
func CompareToBaseline(fresh *inject.LibReport, base *xmlrep.RobustAPIDoc) (regressions, improvements []BaselineDiff, err error) {
	baseFuncs := make(map[string]*xmlrep.RobustFuncXML, len(base.Funcs))
	for i := range base.Funcs {
		baseFuncs[base.Funcs[i].Name] = &base.Funcs[i]
	}
	seen := make(map[string]bool, len(fresh.Funcs))
	for _, fr := range fresh.Funcs {
		seen[fr.Name] = true
		bf, ok := baseFuncs[fr.Name]
		if !ok {
			regressions = append(regressions, BaselineDiff{
				Func: fr.Name, Kind: "new-function",
				Detail: "not in baseline; regenerate it with -write-baseline",
			})
			continue
		}
		if len(bf.Params) != len(fr.Verdicts) {
			regressions = append(regressions, BaselineDiff{
				Func: fr.Name, Kind: "param-mismatch",
				Detail: fmt.Sprintf("baseline has %d parameters, fresh derivation has %d", len(bf.Params), len(fr.Verdicts)),
			})
			continue
		}
		for i, v := range fr.Verdicts {
			bp := bf.Params[i]
			if bp.Chain != v.Chain {
				regressions = append(regressions, BaselineDiff{
					Func: fr.Name, Param: v.Name, Kind: "param-mismatch",
					Detail: fmt.Sprintf("chain changed %s -> %s", bp.Chain, v.Chain),
				})
				continue
			}
			baseLvl, lerr := levelIndex(bp.Chain, bp.Level)
			if lerr != nil {
				return nil, nil, fmt.Errorf("baseline %s param %s: %w", fr.Name, bp.Name, lerr)
			}
			switch {
			case v.Level > baseLvl:
				regressions = append(regressions, BaselineDiff{
					Func: fr.Name, Param: v.Name, Kind: "weaker",
					Detail: fmt.Sprintf("robust type weakened: %s -> %s", bp.Level, v.LevelName),
				})
			case v.Level < baseLvl:
				improvements = append(improvements, BaselineDiff{
					Func: fr.Name, Param: v.Name, Kind: "stronger",
					Detail: fmt.Sprintf("robust type strengthened: %s -> %s", bp.Level, v.LevelName),
				})
			}
		}
		switch {
		case fr.Failures > bf.Failures:
			regressions = append(regressions, BaselineDiff{
				Func: fr.Name, Kind: "gained-failures",
				Detail: fmt.Sprintf("robustness failures %d -> %d", bf.Failures, fr.Failures),
			})
		case fr.Failures < bf.Failures:
			improvements = append(improvements, BaselineDiff{
				Func: fr.Name, Kind: "fewer-failures",
				Detail: fmt.Sprintf("robustness failures %d -> %d", bf.Failures, fr.Failures),
			})
		}
	}
	for name := range baseFuncs {
		if !seen[name] {
			regressions = append(regressions, BaselineDiff{
				Func: name, Kind: "missing-function",
				Detail: "in baseline but absent from the fresh derivation",
			})
		}
	}
	sortDiffs(regressions)
	sortDiffs(improvements)
	return regressions, improvements, nil
}

func sortDiffs(ds []BaselineDiff) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Func != ds[j].Func {
			return ds[i].Func < ds[j].Func
		}
		return ds[i].Param < ds[j].Param
	})
}

// VerifyBaseline runs a (typically cache-accelerated) campaign against
// the library and diffs the derivation against the marshalled baseline
// document. Campaign options — in particular inject.WithCache — apply to
// the sweep.
func (t *Toolkit) VerifyBaseline(soname string, baseline []byte, opts ...inject.CampaignOption) (regressions, improvements []BaselineDiff, err error) {
	base, err := xmlrep.Unmarshal[xmlrep.RobustAPIDoc](baseline)
	if err != nil {
		return nil, nil, err
	}
	lr, err := t.Inject(soname, opts...)
	if err != nil {
		return nil, nil, err
	}
	return CompareToBaseline(lr, base)
}
