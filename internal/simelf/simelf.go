// Package simelf models the on-disk artifacts HEALERS operates on:
// shared libraries with export tables and dependency lists, dynamically
// linked executables with undefined-symbol tables, and the System registry
// ("our toolkit can list all libraries in the system", §3.1).
//
// It plays the role ELF plays for the real toolkit. The structural
// metadata is faithful — sonames, NEEDED entries, exported and undefined
// symbol lists — while code is carried as Go closures in the simulated C
// calling convention rather than machine code.
package simelf

import (
	"fmt"
	"sort"

	"healers/internal/cmem"
	"healers/internal/ctypes"
	"healers/internal/cval"
)

// NextFunc resolves a symbol in the objects that come *after* the current
// one in the link map's search order — the RTLD_NEXT lookup an interposing
// wrapper uses to reach the real implementation.
type NextFunc func(symbol string) (cval.CFunc, bool)

// Library is one simulated shared object.
type Library struct {
	// Soname is the library's canonical name, e.g. "libc.so.6".
	Soname string
	// Needed lists sonames this library depends on.
	Needed []string
	// exports maps symbol name to implementation.
	exports map[string]cval.CFunc
	// protos carries prototype metadata for exported symbols when known
	// (the toolkit's declaration files are generated from these).
	protos map[string]*ctypes.Prototype
	// OnLoad, if set, runs when the dynamic linker places the library
	// in a link map. Interposing wrapper libraries use it to capture
	// their RTLD_NEXT resolver. Returning an error aborts the load.
	OnLoad func(next NextFunc) error
}

// NewLibrary creates an empty library with the given soname.
func NewLibrary(soname string, needed ...string) *Library {
	return &Library{
		Soname:  soname,
		Needed:  needed,
		exports: make(map[string]cval.CFunc),
		protos:  make(map[string]*ctypes.Prototype),
	}
}

// Export defines a global function symbol. Redefining a symbol within one
// library is a construction bug and panics.
func (l *Library) Export(name string, fn cval.CFunc) {
	if _, dup := l.exports[name]; dup {
		panic(fmt.Sprintf("simelf: duplicate export %s in %s", name, l.Soname))
	}
	l.exports[name] = fn
}

// ExportWithProto defines a symbol together with its prototype.
func (l *Library) ExportWithProto(p *ctypes.Prototype, fn cval.CFunc) {
	l.Export(p.Name, fn)
	l.protos[p.Name] = p
}

// Lookup returns the implementation of a symbol defined in this library.
func (l *Library) Lookup(name string) (cval.CFunc, bool) {
	fn, ok := l.exports[name]
	return fn, ok
}

// Proto returns the recorded prototype for an exported symbol, if any.
func (l *Library) Proto(name string) *ctypes.Prototype {
	return l.protos[name]
}

// Symbols returns the exported symbol names, sorted — what `nm -D` would
// print.
func (l *Library) Symbols() []string {
	names := make([]string, 0, len(l.exports))
	for n := range l.exports {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumSymbols returns the number of exported symbols.
func (l *Library) NumSymbols() int { return len(l.exports) }

// Caller is the view of the running process an executable's code sees:
// its environment plus dynamically resolved calls into the loaded
// libraries. Every Call goes through the link map's full symbol search
// order, which is precisely the interposition point LD_PRELOAD exploits.
type Caller interface {
	Env() *cval.Env
	Call(symbol string, args ...cval.Value) (cval.Value, *cmem.Fault)
	// MustCall is Call with C control flow: a fault kills the process
	// (unwinding out of main), and a latched exit() stops execution.
	MustCall(symbol string, args ...cval.Value) cval.Value
	// Raise terminates the process with the given fault, as if the
	// current instruction took that signal.
	Raise(f *cmem.Fault)
}

// MainFunc is a simulated program's entry point. The returned value is the
// process exit status (unless the program crashed or called exit()).
type MainFunc func(c Caller, argv []string) int32

// Executable is one simulated dynamically linked program.
type Executable struct {
	// Name is the program's path-like identifier.
	Name string
	// Interp names the dynamic linker (cosmetic, like PT_INTERP).
	Interp string
	// Needed lists the directly linked libraries.
	Needed []string
	// Undefined lists the symbols the program imports — what the
	// application-centric scan (Fig. 4) reports.
	Undefined []string
	// Main is the entry point.
	Main MainFunc
	// Privileged marks a setuid-root program (the attack demo's rootd).
	Privileged bool
}

// System is the registry of everything "installed": libraries and
// executables, the universe the §3.1/§3.2 scans enumerate.
type System struct {
	libs map[string]*Library
	apps map[string]*Executable
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		libs: make(map[string]*Library),
		apps: make(map[string]*Executable),
	}
}

// AddLibrary installs a library. Installing two libraries with the same
// soname is an error.
func (s *System) AddLibrary(l *Library) error {
	if _, dup := s.libs[l.Soname]; dup {
		return fmt.Errorf("simelf: library %s already installed", l.Soname)
	}
	s.libs[l.Soname] = l
	return nil
}

// AddExecutable installs a program.
func (s *System) AddExecutable(e *Executable) error {
	if _, dup := s.apps[e.Name]; dup {
		return fmt.Errorf("simelf: executable %s already installed", e.Name)
	}
	s.apps[e.Name] = e
	return nil
}

// Library returns an installed library by soname.
func (s *System) Library(soname string) (*Library, bool) {
	l, ok := s.libs[soname]
	return l, ok
}

// Executable returns an installed program by name.
func (s *System) Executable(name string) (*Executable, bool) {
	e, ok := s.apps[name]
	return e, ok
}

// Libraries returns all installed sonames, sorted.
func (s *System) Libraries() []string {
	names := make([]string, 0, len(s.libs))
	for n := range s.libs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Executables returns all installed program names, sorted.
func (s *System) Executables() []string {
	names := make([]string, 0, len(s.apps))
	for n := range s.apps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TransitiveDeps returns the breadth-first closure of NEEDED entries
// starting from the given root sonames — `ldd` for the simulation.
// Unknown sonames are returned in missing.
func (s *System) TransitiveDeps(roots []string) (deps []string, missing []string) {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		lib, ok := s.libs[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		deps = append(deps, name)
		queue = append(queue, lib.Needed...)
	}
	return deps, missing
}
