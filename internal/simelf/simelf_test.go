package simelf

import (
	"testing"

	"healers/internal/cheader"
	"healers/internal/cmem"
	"healers/internal/cval"
)

func TestLibraryExportsAndProtos(t *testing.T) {
	lib := NewLibrary("libx.so", "libdep.so")
	if lib.Soname != "libx.so" || len(lib.Needed) != 1 {
		t.Fatalf("library = %+v", lib)
	}
	proto, err := cheader.ParsePrototype("int f(int a);")
	if err != nil {
		t.Fatal(err)
	}
	lib.ExportWithProto(proto, func(*cval.Env, []cval.Value) (cval.Value, *cmem.Fault) {
		return cval.Int(7), nil
	})
	lib.Export("g", func(*cval.Env, []cval.Value) (cval.Value, *cmem.Fault) {
		return cval.Int(8), nil
	})
	if lib.NumSymbols() != 2 {
		t.Errorf("NumSymbols = %d", lib.NumSymbols())
	}
	if p := lib.Proto("f"); p == nil || p.Name != "f" {
		t.Errorf("Proto(f) = %v", p)
	}
	if p := lib.Proto("g"); p != nil {
		t.Errorf("Proto(g) = %v, want nil", p)
	}
	fn, ok := lib.Lookup("f")
	if !ok {
		t.Fatal("Lookup(f) failed")
	}
	if v, _ := fn(cval.NewEnv(), nil); v.Int32() != 7 {
		t.Errorf("f() = %v", v)
	}
	if _, ok := lib.Lookup("missing"); ok {
		t.Error("Lookup of missing symbol succeeded")
	}
	syms := lib.Symbols()
	if len(syms) != 2 || syms[0] != "f" || syms[1] != "g" {
		t.Errorf("Symbols = %v", syms)
	}
}

func TestSystemRegistry(t *testing.T) {
	sys := NewSystem()
	if err := sys.AddLibrary(NewLibrary("liba.so")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(NewLibrary("liba.so")); err == nil {
		t.Error("duplicate library accepted")
	}
	if _, ok := sys.Library("liba.so"); !ok {
		t.Error("installed library not found")
	}
	if _, ok := sys.Library("nope.so"); ok {
		t.Error("phantom library found")
	}
	exe := &Executable{Name: "prog", Needed: []string{"liba.so"}}
	if err := sys.AddExecutable(exe); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddExecutable(exe); err == nil {
		t.Error("duplicate executable accepted")
	}
	got, ok := sys.Executable("prog")
	if !ok || got.Name != "prog" {
		t.Errorf("Executable = %v, %v", got, ok)
	}
}

func TestTransitiveDepsDiamond(t *testing.T) {
	sys := NewSystem()
	// Diamond: top needs left and right; both need base.
	base := NewLibrary("base.so")
	left := NewLibrary("left.so", "base.so")
	right := NewLibrary("right.so", "base.so")
	for _, l := range []*Library{base, left, right} {
		if err := sys.AddLibrary(l); err != nil {
			t.Fatal(err)
		}
	}
	deps, missing := sys.TransitiveDeps([]string{"left.so", "right.so"})
	if len(missing) != 0 {
		t.Errorf("missing = %v", missing)
	}
	// base appears exactly once, after both direct deps (BFS order).
	if len(deps) != 3 || deps[0] != "left.so" || deps[1] != "right.so" || deps[2] != "base.so" {
		t.Errorf("deps = %v", deps)
	}
	// Cycles terminate.
	a := NewLibrary("cyc_a.so", "cyc_b.so")
	bLib := NewLibrary("cyc_b.so", "cyc_a.so")
	if err := sys.AddLibrary(a); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(bLib); err != nil {
		t.Fatal(err)
	}
	deps, _ = sys.TransitiveDeps([]string{"cyc_a.so"})
	if len(deps) != 2 {
		t.Errorf("cyclic deps = %v", deps)
	}
}

func TestSystemListings(t *testing.T) {
	sys := NewSystem()
	for _, n := range []string{"z.so", "a.so", "m.so"} {
		if err := sys.AddLibrary(NewLibrary(n)); err != nil {
			t.Fatal(err)
		}
	}
	libs := sys.Libraries()
	if len(libs) != 3 || libs[0] != "a.so" || libs[2] != "z.so" {
		t.Errorf("Libraries = %v, want sorted", libs)
	}
	for _, n := range []string{"prog2", "prog1"} {
		if err := sys.AddExecutable(&Executable{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	apps := sys.Executables()
	if len(apps) != 2 || apps[0] != "prog1" {
		t.Errorf("Executables = %v, want sorted", apps)
	}
}
