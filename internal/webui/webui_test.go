package webui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"healers/internal/collect"
	"healers/internal/core"
	"healers/internal/victim"
)

func testServer(t *testing.T, col *collect.Server) *httptest.Server {
	t.Helper()
	tk, err := core.NewToolkit()
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.InstallSampleApps(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(tk, col).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestIndexListsSystem(t *testing.T) {
	ts := testServer(t, nil)
	body := get(t, ts.URL+"/", http.StatusOK)
	for _, want := range []string{"libc.so.6", "libm.so.6", "rootd", "calc", "declarations.xml"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	get(t, ts.URL+"/nonexistent", http.StatusNotFound)
}

func TestLibraryPages(t *testing.T) {
	ts := testServer(t, nil)
	body := get(t, ts.URL+"/library?name=libc.so.6", http.StatusOK)
	if !strings.Contains(body, "char* strcpy(char* dest, const char* src)") {
		t.Errorf("library page missing strcpy prototype:\n%.300s", body)
	}
	xml := get(t, ts.URL+"/library.xml?name=libc.so.6", http.StatusOK)
	if !strings.Contains(xml, "<healers-declarations") || !strings.Contains(xml, `name="strcpy"`) {
		t.Error("declaration XML malformed")
	}
	get(t, ts.URL+"/library?name=nope.so", http.StatusNotFound)
	get(t, ts.URL+"/library.xml?name=nope.so", http.StatusNotFound)
}

func TestAppPage(t *testing.T) {
	ts := testServer(t, nil)
	body := get(t, ts.URL+"/app?name=rootd", http.StatusOK)
	for _, want := range []string{"libc.so.6", "memcpy", "system"} {
		if !strings.Contains(body, want) {
			t.Errorf("app page missing %q", want)
		}
	}
	// The two-library app links both.
	body = get(t, ts.URL+"/app?name=calc", http.StatusOK)
	if !strings.Contains(body, "libm.so.6") {
		t.Error("calc page missing libm")
	}
	get(t, ts.URL+"/app?name=nope", http.StatusNotFound)
}

func TestProfilesPage(t *testing.T) {
	col, err := collect.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	ts := testServer(t, col)

	// Empty first.
	body := get(t, ts.URL+"/profiles", http.StatusOK)
	if !strings.Contains(body, "no profiles received yet") {
		t.Error("empty profiles page wrong")
	}

	// Run a profiled app that uploads on exit, then the page shows it.
	tk, err := core.NewToolkit()
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.InstallSampleApps(); err != nil {
		t.Fatal(err)
	}
	rr, err := tk.RunProfiled(victim.TextutilName, "words for the web\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := collect.Upload(col.Addr(), rr.Profile); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	body = get(t, ts.URL+"/profiles", http.StatusOK)
	for _, want := range []string{"textutil", "strtok", "div style",
		"ingest counters", "documents received", "aggregate call counts", "kind profile"} {
		if !strings.Contains(body, want) {
			t.Errorf("profiles page missing %q", want)
		}
	}
	// The index links the collection server with its ingest counts.
	body = get(t, ts.URL+"/", http.StatusOK)
	if !strings.Contains(body, "1 documents received") {
		t.Errorf("index missing collection stats:\n%.300s", body)
	}
}

func TestProfilesWithoutCollector(t *testing.T) {
	ts := testServer(t, nil)
	get(t, ts.URL+"/profiles", http.StatusNotFound)
}

func TestStartAndClose(t *testing.T) {
	tk, err := core.NewToolkit()
	if err != nil {
		t.Fatal(err)
	}
	s := New(tk, nil)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	body := get(t, "http://"+s.Addr()+"/", http.StatusOK)
	if !strings.Contains(body, "libraries") {
		t.Error("served index malformed")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
