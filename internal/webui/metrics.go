package webui

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"healers/internal/collect"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/wrappers"
)

// CampaignMetrics accumulates fault-injection campaign throughput for the
// /metrics endpoint. Hand its Sink to inject.WithStatsSink and every
// completed campaign folds its totals in; the latest run's gauges
// (workers, probes/s, utilization) are kept alongside the cumulative
// counters.
type CampaignMetrics struct {
	mu     sync.Mutex
	runs   uint64
	probes uint64
	last   inject.CampaignStats
	seen   bool
}

// Sink returns the callback to pass to inject.WithStatsSink; it may be
// invoked from any goroutine.
func (m *CampaignMetrics) Sink() func(*inject.CampaignStats) {
	return func(st *inject.CampaignStats) {
		if st == nil {
			return
		}
		m.mu.Lock()
		m.runs++
		m.probes += uint64(st.Probes)
		m.last = *st
		m.seen = true
		m.mu.Unlock()
	}
}

// snapshot copies the accumulated state.
func (m *CampaignMetrics) snapshot() (runs, probes uint64, last inject.CampaignStats, seen bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs, m.probes, m.last, m.seen
}

// MetricsHandler serves the Prometheus text exposition format over the
// collection server's streaming fleet aggregate and, when camp is
// non-nil, the campaign throughput counters. Both healers-web and
// healers-collectd mount it, so one scrape config covers either daemon.
// col may be nil (no collection server attached); the profile metric
// families are then omitted. Control-plane and policy-engine families
// come from MetricsHandlerFor.
func MetricsHandler(col *collect.Server, camp *CampaignMetrics) http.Handler {
	return MetricsHandlerFor(MetricsSources{Collector: col, Campaign: camp})
}

// MetricsSources names everything a /metrics endpoint can render; any
// field may be nil (its families are omitted). Engines maps a label to
// each local policy engine whose hot-reload counters should be
// exported — the closed-loop demo and healers-profile use it to expose
// healers_policy_reloads_total next to the collector's fleet counters.
type MetricsSources struct {
	Collector *collect.Server
	Campaign  *CampaignMetrics
	Control   *collect.ControlPlane
	Registry  *collect.Registry
	Engines   map[string]*wrappers.PolicyEngine
}

// MetricsHandlerFor serves the Prometheus text format over every
// non-nil source: fleet profile aggregate, ingest counters, campaign
// throughput, control-plane policy distribution, and policy-engine
// hot-reload counters.
func MetricsHandlerFor(src MetricsSources) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		if src.Collector != nil {
			writeProfileMetrics(&b, src.Collector)
			writeIngestMetrics(&b, src.Collector)
		}
		if src.Campaign != nil {
			writeCampaignMetrics(&b, src.Campaign)
		}
		if src.Control != nil {
			writeControlMetrics(&b, src.Control)
		}
		if src.Registry != nil {
			writeRegistryMetrics(&b, src.Registry)
		}
		if len(src.Engines) > 0 {
			writePolicyEngineMetrics(&b, src.Engines)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}

// promLabel escapes a Prometheus label value.
func promLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// sortedFuncs returns the aggregate's function names in stable order.
func sortedFuncs(agg *collect.FleetAggregate) []string {
	names := make([]string, 0, len(agg.Funcs))
	for fn := range agg.Funcs {
		names = append(names, fn)
	}
	sort.Strings(names)
	return names
}

func writeProfileMetrics(b *strings.Builder, col *collect.Server) {
	agg := col.Aggregate()
	names := sortedFuncs(agg)

	b.WriteString("# HELP healers_calls_total Calls intercepted per wrapped function, fleet-wide.\n")
	b.WriteString("# TYPE healers_calls_total counter\n")
	for _, fn := range names {
		fmt.Fprintf(b, "healers_calls_total{function=%q} %d\n", promLabel(fn), agg.Funcs[fn].Calls)
	}

	b.WriteString("# HELP healers_latency_ns Per-call wall time of wrapped functions, log2-bucketed at capture.\n")
	b.WriteString("# TYPE healers_latency_ns histogram\n")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		if fa.Hist == nil {
			continue
		}
		var cum uint64
		for i, c := range fa.Hist {
			cum += c
			// The cumulative encoding only changes where a sample
			// landed; emit those boundaries and let the final +Inf
			// line cover everything else (including the unbounded
			// last bucket).
			if c == 0 || i == gen.HistBuckets-1 {
				continue
			}
			fmt.Fprintf(b, "healers_latency_ns_bucket{function=%q,le=\"%d\"} %d\n", promLabel(fn), gen.HistUpperNS(i), cum)
		}
		total := gen.HistTotal(fa.Hist)
		fmt.Fprintf(b, "healers_latency_ns_bucket{function=%q,le=\"+Inf\"} %d\n", promLabel(fn), total)
		fmt.Fprintf(b, "healers_latency_ns_sum{function=%q} %d\n", promLabel(fn), fa.ExecNS)
		fmt.Fprintf(b, "healers_latency_ns_count{function=%q} %d\n", promLabel(fn), total)
	}

	b.WriteString("# HELP healers_errno_total Calls that set errno, per function and errno name.\n")
	b.WriteString("# TYPE healers_errno_total counter\n")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		errnos := make([]string, 0, len(fa.Errnos))
		for e := range fa.Errnos {
			errnos = append(errnos, e)
		}
		sort.Strings(errnos)
		for _, e := range errnos {
			fmt.Fprintf(b, "healers_errno_total{function=%q,errno=%q} %d\n", promLabel(fn), promLabel(e), fa.Errnos[e])
		}
	}

	b.WriteString("# HELP healers_check_outcome_total Wrapper check outcomes per function: passed, denied, or substituted.\n")
	b.WriteString("# TYPE healers_check_outcome_total counter\n")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		for _, oc := range []struct {
			name  string
			count uint64
		}{{"passed", fa.Passed}, {"denied", fa.Denied}, {"substituted", fa.Substituted}} {
			if oc.count == 0 {
				continue
			}
			fmt.Fprintf(b, "healers_check_outcome_total{function=%q,outcome=%q} %d\n", promLabel(fn), oc.name, oc.count)
		}
	}

	b.WriteString("# HELP healers_containment_total Fault-containment events per function: contained faults, retry attempts, breaker trips.\n")
	b.WriteString("# TYPE healers_containment_total counter\n")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		for _, ev := range []struct {
			name  string
			count uint64
		}{{"contained", fa.Contained}, {"retried", fa.Retried}, {"breaker_trips", fa.BreakerTrips}} {
			if ev.count == 0 {
				continue
			}
			fmt.Fprintf(b, "healers_containment_total{function=%q,event=%q} %d\n", promLabel(fn), ev.name, ev.count)
		}
	}

	b.WriteString("# HELP healers_containment_class_total Contained faults per function and failure class.\n")
	b.WriteString("# TYPE healers_containment_class_total counter\n")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		for c, count := range fa.ContainedBy {
			if count == 0 {
				continue
			}
			fmt.Fprintf(b, "healers_containment_class_total{function=%q,class=%q} %d\n",
				promLabel(fn), gen.FailureClass(c).String(), count)
		}
	}

	b.WriteString("# HELP healers_outcome_total Fault-sequence run outcomes by class, plus per-function silent corruptions from profiles.\n")
	b.WriteString("# TYPE healers_outcome_total counter\n")
	classes := make([]string, 0, len(agg.Outcomes))
	for class := range agg.Outcomes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Fprintf(b, "healers_outcome_total{class=%q} %d\n", class, agg.Outcomes[class])
	}

	b.WriteString("# HELP healers_overflows_total Canary and bound violations detected fleet-wide.\n")
	b.WriteString("# TYPE healers_overflows_total counter\n")
	fmt.Fprintf(b, "healers_overflows_total %d\n", agg.Overflows)
}

func writeIngestMetrics(b *strings.Builder, col *collect.Server) {
	st := col.Stats()
	for _, m := range []struct {
		name, help string
		value      uint64
	}{
		{"healers_ingest_docs_received_total", "Documents stored and aggregated.", st.DocsReceived},
		{"healers_ingest_bytes_received_total", "Raw XML bytes of stored documents.", st.BytesReceived},
		{"healers_ingest_docs_rejected_total", "Unknown kinds and unparseable profiles.", st.DocsRejected},
		{"healers_ingest_frames_rejected_total", "Bad lengths, truncated or timed-out frame bodies.", st.FramesRejected},
		{"healers_ingest_docs_evicted_total", "Documents dropped by the retention budget.", st.DocsEvicted},
		{"healers_ingest_conns_accepted_total", "Upload connections admitted to a handler.", st.ConnsAccepted},
		{"healers_ingest_conns_rejected_total", "Upload connections closed by the connection cap.", st.ConnsRejected},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
	fmt.Fprintf(b, "# HELP healers_ingest_docs_retained Documents currently held.\n# TYPE healers_ingest_docs_retained gauge\nhealers_ingest_docs_retained %d\n", st.DocsRetained)
	fmt.Fprintf(b, "# HELP healers_ingest_active_conns Upload connections currently served.\n# TYPE healers_ingest_active_conns gauge\nhealers_ingest_active_conns %d\n", st.ActiveConns)
}

// CoordinatorMetricsHandler serves the distributed-campaign lease table
// and per-worker throughput in Prometheus text format. healers-inject
// -coordinator mounts it under -metrics, so a long sweep across a worker
// fleet is observable while it runs.
func CoordinatorMetricsHandler(co *inject.Coordinator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		writeCoordinatorMetrics(&b, co)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}

func writeCoordinatorMetrics(b *strings.Builder, co *inject.Coordinator) {
	workers := co.WorkerStats()
	shards := co.Shards()

	fmt.Fprintf(b, "# HELP healers_coordinator_workers Worker processes seen by the coordinator.\n# TYPE healers_coordinator_workers gauge\nhealers_coordinator_workers %d\n", len(workers))
	fmt.Fprintf(b, "# HELP healers_coordinator_funcs_remaining Functions still lacking a result.\n# TYPE healers_coordinator_funcs_remaining gauge\nhealers_coordinator_funcs_remaining %d\n", co.Remaining())

	b.WriteString("# HELP healers_coordinator_shards Lease-table population by state.\n# TYPE healers_coordinator_shards gauge\n")
	for _, st := range []struct {
		name  string
		count int
	}{{"pending", shards.Pending}, {"leased", shards.Leased}, {"done", shards.Done}} {
		fmt.Fprintf(b, "healers_coordinator_shards{state=%q} %d\n", st.name, st.count)
	}
	fmt.Fprintf(b, "# HELP healers_coordinator_releases_total Shards re-leased after a lease timeout.\n# TYPE healers_coordinator_releases_total counter\nhealers_coordinator_releases_total %d\n", shards.Releases)
	fmt.Fprintf(b, "# HELP healers_coordinator_stragglers_total Speculative duplicate leases past the straggler deadline.\n# TYPE healers_coordinator_stragglers_total counter\nhealers_coordinator_stragglers_total %d\n", shards.Stragglers)

	b.WriteString("# HELP healers_coordinator_worker_funcs_total Accepted function results per worker.\n# TYPE healers_coordinator_worker_funcs_total counter\n")
	for _, ws := range workers {
		fmt.Fprintf(b, "healers_coordinator_worker_funcs_total{worker=%q} %d\n", promLabel(ws.Name), ws.Funcs)
	}
	b.WriteString("# HELP healers_coordinator_worker_probes_total Probes behind each worker's accepted results.\n# TYPE healers_coordinator_worker_probes_total counter\n")
	for _, ws := range workers {
		fmt.Fprintf(b, "healers_coordinator_worker_probes_total{worker=%q} %d\n", promLabel(ws.Name), ws.Probes)
	}
	b.WriteString("# HELP healers_coordinator_worker_busy_seconds_total Worker-reported probing wall time.\n# TYPE healers_coordinator_worker_busy_seconds_total counter\n")
	for _, ws := range workers {
		fmt.Fprintf(b, "healers_coordinator_worker_busy_seconds_total{worker=%q} %g\n", promLabel(ws.Name), ws.Busy.Seconds())
	}
}

// writeControlMetrics renders the control plane's policy-distribution
// counters.
func writeControlMetrics(b *strings.Builder, cp *collect.ControlPlane) {
	st := cp.Stats()
	fmt.Fprintf(b, "# HELP healers_control_policy_revision Policy revision the control plane currently serves (0 = none).\n# TYPE healers_control_policy_revision gauge\nhealers_control_policy_revision %d\n", st.Revision)
	for _, m := range []struct {
		name, help string
		value      uint64
	}{
		{"healers_control_policy_pushes_total", "Policy documents accepted by the control plane.", st.Pushes},
		{"healers_control_policy_rejected_total", "Policy pushes refused (malformed, unstamped, corrupted, or stale).", st.Rejected},
		{"healers_control_policy_served_total", "Full policy documents served to polling subscribers.", st.Served},
		{"healers_control_policy_not_modified_total", "Policy requests answered already-current.", st.NotModified},
		{"healers_control_escalations_total", "Rules tightened by adaptive derivation.", st.Escalations},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
}

// writeRegistryMetrics renders the campaign-cache registry's occupancy
// and exchange counters.
func writeRegistryMetrics(b *strings.Builder, reg *collect.Registry) {
	st := reg.Stats()
	fmt.Fprintf(b, "# HELP healers_registry_entries Campaign-cache entries currently stored.\n# TYPE healers_registry_entries gauge\nhealers_registry_entries %d\n", st.Entries)
	fmt.Fprintf(b, "# HELP healers_registry_bytes Stored XML bytes of all registry entries.\n# TYPE healers_registry_bytes gauge\nhealers_registry_bytes %d\n", st.Bytes)
	for _, m := range []struct {
		name, help string
		value      uint64
	}{
		{"healers_registry_hits_total", "Get keys answered with a stored entry.", st.Hits},
		{"healers_registry_misses_total", "Get keys the registry did not hold.", st.Misses},
		{"healers_registry_puts_total", "Entries stored by put exchanges.", st.Puts},
		{"healers_registry_known_total", "Put entries already held (first write wins).", st.Known},
		{"healers_registry_rejected_total", "Put frames refused: malformed, unstamped, or checksum-mismatched.", st.Rejected},
		{"healers_registry_evicted_total", "Entries dropped by the doc/byte budgets.", st.Evicted},
		{"healers_registry_corrupt_total", "Stored files discarded at load for failing validation.", st.Corrupt},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.value)
	}
}

// writePolicyEngineMetrics renders each local policy engine's
// hot-reload counters, labeled by the caller-chosen engine name.
func writePolicyEngineMetrics(b *strings.Builder, engines map[string]*wrappers.PolicyEngine) {
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("# HELP healers_policy_revision Policy revision each engine currently runs.\n# TYPE healers_policy_revision gauge\n")
	for _, n := range names {
		fmt.Fprintf(b, "healers_policy_revision{engine=%q} %d\n", promLabel(n), engines[n].Revision())
	}
	b.WriteString("# HELP healers_policy_reloads_total Rule-set hot swaps each engine has applied.\n# TYPE healers_policy_reloads_total counter\n")
	for _, n := range names {
		fmt.Fprintf(b, "healers_policy_reloads_total{engine=%q} %d\n", promLabel(n), engines[n].Reloads())
	}
	b.WriteString("# HELP healers_policy_reload_rejected_total Reload attempts each engine refused, old rules kept.\n# TYPE healers_policy_reload_rejected_total counter\n")
	for _, n := range names {
		fmt.Fprintf(b, "healers_policy_reload_rejected_total{engine=%q} %d\n", promLabel(n), engines[n].RejectedReloads())
	}
}

func writeCampaignMetrics(b *strings.Builder, camp *CampaignMetrics) {
	runs, probes, last, seen := camp.snapshot()
	fmt.Fprintf(b, "# HELP healers_campaign_runs_total Fault-injection campaigns completed.\n# TYPE healers_campaign_runs_total counter\nhealers_campaign_runs_total %d\n", runs)
	fmt.Fprintf(b, "# HELP healers_campaign_probes_total Probe processes executed across all campaigns.\n# TYPE healers_campaign_probes_total counter\nhealers_campaign_probes_total %d\n", probes)
	if !seen {
		return
	}
	fmt.Fprintf(b, "# HELP healers_campaign_workers Worker pool size of the most recent campaign.\n# TYPE healers_campaign_workers gauge\nhealers_campaign_workers %d\n", last.Workers)
	fmt.Fprintf(b, "# HELP healers_campaign_probes_per_second Throughput of the most recent campaign.\n# TYPE healers_campaign_probes_per_second gauge\nhealers_campaign_probes_per_second %g\n", last.ProbesPerSec)
	fmt.Fprintf(b, "# HELP healers_campaign_utilization Worker utilization of the most recent campaign (1.0 = no idle).\n# TYPE healers_campaign_utilization gauge\nhealers_campaign_utilization %g\n", last.Utilization)
}
