package webui

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"healers/internal/clib"
	"healers/internal/collect"
	"healers/internal/gen"
	"healers/internal/inject"
	"healers/internal/simelf"
	"healers/internal/xmlrep"
)

// TestMetricsContainmentFamily: containment counters uploaded in a
// profile surface on /metrics as the healers_containment_total family,
// one labeled series per non-zero event.
func TestMetricsContainmentFamily(t *testing.T) {
	col, err := collect.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	st := gen.NewState("libhealers_contain.so")
	i := st.Index("strcpy")
	st.CallCount[i] = 12
	st.ContainedCount[i] = 4
	st.RetriedCount[i] = 2
	st.BreakerTrips[i] = 1
	j := st.Index("strlen") // wrapped but never faulted
	st.CallCount[j] = 3
	if err := collect.Upload(col.Addr(), xmlrep.NewProfileLog("h", "app", st)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	ts := httptest.NewServer(MetricsHandler(col, nil))
	defer ts.Close()
	body := get(t, ts.URL, 200)

	for _, want := range []string{
		"# TYPE healers_containment_total counter",
		`healers_containment_total{function="strcpy",event="contained"} 4`,
		`healers_containment_total{function="strcpy",event="retried"} 2`,
		`healers_containment_total{function="strcpy",event="breaker_trips"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Zero-valued series are suppressed, so a healthy function emits no
	// containment samples at all.
	if strings.Contains(body, `healers_containment_total{function="strlen"`) {
		t.Error("zero containment counters emitted for strlen")
	}
}

// TestCoordinatorMetrics: a distributed-campaign coordinator's lease
// table and per-worker throughput surface through its own /metrics
// handler.
func TestCoordinatorMetrics(t *testing.T) {
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	c, err := inject.New(sys, clib.LibcSoname)
	if err != nil {
		t.Fatal(err)
	}
	co := inject.NewCoordinator(c, 4)

	rec := httptest.NewRecorder()
	CoordinatorMetricsHandler(co).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"healers_coordinator_workers 0",
		`healers_coordinator_shards{state="pending"} 4`,
		"healers_coordinator_releases_total 0",
		"healers_coordinator_funcs_remaining",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsOutcomeFamily: sequence-report runs and profile
// silent-corruption counters surface as the healers_outcome_total
// family, one labeled series per outcome class.
func TestMetricsOutcomeFamily(t *testing.T) {
	col, err := collect.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	doc := &xmlrep.SequenceReportDoc{
		Scenario:     "textutil-words",
		App:          "textutil",
		Calls:        9,
		GoldenDigest: "abc123",
		Runs: []xmlrep.SeqRunXML{
			{Outcome: "crash"},
			{Outcome: "crash"},
			{Outcome: "silent-corruption", Diverged: true},
		},
	}
	doc.Stamp()
	if err := collect.Upload(col.Addr(), doc); err != nil {
		t.Fatal(err)
	}
	st := gen.NewState("libhealers_contain.so")
	i := st.Index("strdup")
	st.CallCount[i] = 5
	st.CorruptionCount[i] = 2
	if err := collect.Upload(col.Addr(), xmlrep.NewProfileLog("h", "app", st)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Count() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	ts := httptest.NewServer(MetricsHandler(col, nil))
	defer ts.Close()
	body := get(t, ts.URL, 200)

	for _, want := range []string{
		"# TYPE healers_outcome_total counter",
		`healers_outcome_total{class="crash"} 2`,
		`healers_outcome_total{class="silent-corruption"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
