// Package webui serves the HEALERS demonstration interface: the paper's
// §3 demos are presented through a Web UI ("The Web interface for this
// demo is illustrated in Figure 4"). This is that interface for the
// simulated system — library and application browsing, declaration files,
// campaign tables, and received profiles, rendered as plain HTML over
// net/http.
package webui

import (
	"fmt"
	"html"
	"net"
	"net/http"
	"sort"
	"strings"

	"healers/internal/collect"
	"healers/internal/core"
	"healers/internal/gen"
	"healers/internal/xmlrep"
)

// Server is the toolkit's web front end.
type Server struct {
	tk   *core.Toolkit
	col  *collect.Server // optional: received profiles
	camp *CampaignMetrics
	mux  *http.ServeMux
	ln   net.Listener
	srv  *http.Server
}

// New builds the front end over a toolkit; col may be nil when no
// collection server is attached.
func New(tk *core.Toolkit, col *collect.Server) *Server {
	s := &Server{tk: tk, col: col, camp: &CampaignMetrics{}, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/library", s.handleLibrary)
	s.mux.HandleFunc("/library.xml", s.handleLibraryXML)
	s.mux.HandleFunc("/app", s.handleApp)
	s.mux.HandleFunc("/profiles", s.handleProfiles)
	s.mux.Handle("/metrics", MetricsHandler(col, s.camp))
	return s
}

// Campaign returns the server's campaign metrics accumulator; pass its
// Sink to inject.WithStatsSink so campaign throughput shows on /metrics.
func (s *Server) Campaign() *CampaignMetrics { return s.camp }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("webui: listen: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		// Serve returns ErrServerClosed on Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Handler exposes the mux for tests (httptest) and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// page writes the shared HTML frame.
func page(w http.ResponseWriter, title string, body func(b *strings.Builder)) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString("</title><style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}td,th{border:1px solid #999;padding:2px 8px;text-align:left}h1{font-size:1.2em}</style></head><body>")
	fmt.Fprintf(&b, "<h1>%s</h1><p><a href=\"/\">HEALERS</a></p>", html.EscapeString(title))
	body(&b)
	b.WriteString("</body></html>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleIndex is the system browser: all libraries and applications
// (demo §3.1's "our toolkit can list all libraries in the system").
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	page(w, "HEALERS — system browser", func(b *strings.Builder) {
		b.WriteString("<h2>libraries</h2><table><tr><th>soname</th><th>functions</th><th></th></tr>")
		for _, lib := range s.tk.ListLibraries() {
			scan, err := s.tk.ScanLibrary(lib)
			if err != nil {
				continue
			}
			fmt.Fprintf(b, "<tr><td><a href=\"/library?name=%s\">%s</a></td><td>%d</td><td><a href=\"/library.xml?name=%s\">declarations.xml</a></td></tr>",
				html.EscapeString(lib), html.EscapeString(lib), len(scan.Functions), html.EscapeString(lib))
		}
		b.WriteString("</table><h2>applications</h2><ul>")
		for _, app := range s.tk.ListApplications() {
			fmt.Fprintf(b, "<li><a href=\"/app?name=%s\">%s</a></li>", html.EscapeString(app), html.EscapeString(app))
		}
		b.WriteString("</ul>")
		if s.col != nil {
			st := s.col.Stats()
			fmt.Fprintf(b, "<p><a href=\"/profiles\">collection server: %d documents received, %d retained, %d connections active</a></p>",
				st.DocsReceived, st.DocsRetained, st.ActiveConns)
		}
	})
}

// handleLibrary lists one library's functions with prototypes (demo §3.1).
func (s *Server) handleLibrary(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	scan, err := s.tk.ScanLibrary(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	page(w, "functions defined in "+name, func(b *strings.Builder) {
		b.WriteString("<table><tr><th>prototype</th></tr>")
		for _, fn := range scan.Functions {
			p := scan.Protos[fn]
			if p == nil {
				fmt.Fprintf(b, "<tr><td>%s (no prototype)</td></tr>", html.EscapeString(fn))
				continue
			}
			fmt.Fprintf(b, "<tr><td>%s</td></tr>", html.EscapeString(p.String()))
		}
		b.WriteString("</table>")
	})
}

// handleLibraryXML serves the declaration file (demo §3.1's "XML-style
// declaration file that describes the prototype of each function").
func (s *Server) handleLibraryXML(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	scan, err := s.tk.ScanLibrary(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	data, err := xmlrep.Marshal(scan.Declarations())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(data)
}

// handleApp is the application-centric view of Figure 4: linked libraries
// and undefined functions.
func (s *Server) handleApp(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	scan, err := s.tk.ScanApplication(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	page(w, "application "+name, func(b *strings.Builder) {
		b.WriteString("<h2>linked libraries</h2><ul>")
		for _, l := range scan.AllLibs {
			fmt.Fprintf(b, "<li><a href=\"/library?name=%s\">%s</a></li>", html.EscapeString(l), html.EscapeString(l))
		}
		for _, l := range scan.MissingLibs {
			fmt.Fprintf(b, "<li>%s (NOT FOUND)</li>", html.EscapeString(l))
		}
		b.WriteString("</ul><h2>undefined functions</h2><table><tr><th>symbol</th><th>resolved by</th></tr>")
		for _, sym := range scan.Undefined {
			by := scan.ResolvedBy[sym]
			if by == "" {
				by = "UNRESOLVED"
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td></tr>", html.EscapeString(sym), html.EscapeString(by))
		}
		b.WriteString("</table>")
	})
}

// handleProfiles renders the received profiling documents with HTML bar
// charts — the Figure 5 display.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if s.col == nil {
		http.Error(w, "no collection server attached", http.StatusNotFound)
		return
	}
	logs, err := s.col.Profiles()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	agg := s.col.Aggregate()
	page(w, "received profiles", func(b *strings.Builder) {
		s.writeIngestStats(b)
		s.writeAggregate(b, agg)
		for _, log := range logs {
			fmt.Fprintf(b, "<h2>%s on %s (wrapper %s)</h2>", html.EscapeString(log.App), html.EscapeString(log.Host), html.EscapeString(log.Wrapper))
			type row struct {
				name  string
				calls uint64
			}
			var rows []row
			var max uint64
			for _, f := range log.Funcs {
				if f.Calls == 0 {
					continue
				}
				rows = append(rows, row{f.Name, f.Calls})
				if f.Calls > max {
					max = f.Calls
				}
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].calls > rows[j].calls })
			b.WriteString("<table><tr><th>function</th><th>calls</th><th></th></tr>")
			for _, rw := range rows {
				width := 1
				if max > 0 {
					width = int(rw.calls * 300 / max)
					if width == 0 {
						width = 1
					}
				}
				fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td><div style=\"background:#36c;height:10px;width:%dpx\"></div></td></tr>",
					html.EscapeString(rw.name), rw.calls, width)
			}
			b.WriteString("</table>")
			hasErr := false
			for _, f := range log.Funcs {
				for _, e := range f.Errnos {
					if !hasErr {
						b.WriteString("<h3>error distribution</h3><table><tr><th>function</th><th>errno</th><th>count</th></tr>")
						hasErr = true
					}
					fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>",
						html.EscapeString(f.Name), html.EscapeString(e.Errno), e.Count)
				}
			}
			if hasErr {
				b.WriteString("</table>")
			}
		}
		if len(logs) == 0 {
			b.WriteString("<p>no profiles received yet</p>")
		}
	})
}

// writeIngestStats renders the collection server's ingest counters —
// the fleet operator's view of the pipeline's health.
func (s *Server) writeIngestStats(b *strings.Builder) {
	st := s.col.Stats()
	b.WriteString("<h2>ingest counters</h2><table><tr><th>counter</th><th>value</th></tr>")
	fmt.Fprintf(b, "<tr><td>documents received</td><td>%d (%d bytes)</td></tr>", st.DocsReceived, st.BytesReceived)
	fmt.Fprintf(b, "<tr><td>documents retained</td><td>%d (%d bytes)</td></tr>", st.DocsRetained, st.BytesRetained)
	fmt.Fprintf(b, "<tr><td>documents evicted</td><td>%d (%d bytes)</td></tr>", st.DocsEvicted, st.BytesEvicted)
	fmt.Fprintf(b, "<tr><td>frames rejected</td><td>%d</td></tr>", st.FramesRejected)
	fmt.Fprintf(b, "<tr><td>documents rejected</td><td>%d</td></tr>", st.DocsRejected)
	fmt.Fprintf(b, "<tr><td>connections</td><td>%d accepted, %d rejected, %d active</td></tr>",
		st.ConnsAccepted, st.ConnsRejected, st.ActiveConns)
	kinds := s.col.KindCounts()
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(b, "<tr><td>kind %s</td><td>%d</td></tr>", html.EscapeString(k), kinds[xmlrep.DocKind(k)])
	}
	b.WriteString("</table>")
}

// writeAggregate renders the streaming fleet aggregate — the server-side
// Figure 5 view, maintained at ingest time so it covers every profile
// ever received, evicted or not: per-function call counts, latency
// percentiles derived from the merged log2 histograms, and the errno
// distribution.
func (s *Server) writeAggregate(b *strings.Builder, agg *collect.FleetAggregate) {
	names := make([]string, 0, len(agg.Funcs))
	for fn, fa := range agg.Funcs {
		if fa.Calls > 0 {
			names = append(names, fn)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := agg.Funcs[names[i]].Calls, agg.Funcs[names[j]].Calls
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	b.WriteString("<h2>aggregate call counts</h2><table><tr><th>function</th><th>calls</th><th>denied</th></tr>")
	for _, fn := range names {
		fa := agg.Funcs[fn]
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td></tr>", html.EscapeString(fn), fa.Calls, fa.Denied)
	}
	b.WriteString("</table>")

	hasHist := false
	for _, fn := range names {
		fa := agg.Funcs[fn]
		if fa.Hist == nil || gen.HistTotal(fa.Hist) == 0 {
			continue
		}
		if !hasHist {
			b.WriteString("<h2>fleet latency (merged log2 histograms)</h2>" +
				"<table><tr><th>function</th><th>samples</th><th>p50 ≤</th><th>p90 ≤</th><th>p99 ≤</th><th>max ≤</th></tr>")
			hasHist = true
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(fn), gen.HistTotal(fa.Hist),
			gen.FormatNS(gen.HistQuantileNS(fa.Hist, 0.50)),
			gen.FormatNS(gen.HistQuantileNS(fa.Hist, 0.90)),
			gen.FormatNS(gen.HistQuantileNS(fa.Hist, 0.99)),
			gen.FormatNS(gen.HistQuantileNS(fa.Hist, 1)))
	}
	if hasHist {
		b.WriteString("</table>")
	}

	hasErr := false
	for _, fn := range names {
		fa := agg.Funcs[fn]
		errnos := make([]string, 0, len(fa.Errnos))
		for e := range fa.Errnos {
			errnos = append(errnos, e)
		}
		sort.Strings(errnos)
		for _, e := range errnos {
			if !hasErr {
				b.WriteString("<h2>fleet errno distribution</h2><table><tr><th>function</th><th>errno</th><th>count</th></tr>")
				hasErr = true
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td></tr>",
				html.EscapeString(fn), html.EscapeString(e), fa.Errnos[e])
		}
	}
	if hasErr {
		b.WriteString("</table>")
	}
}
