package xmlrep

import (
	"strings"
	"testing"
)

// TestWorkDocRoundTrips: every distributed-campaign document survives a
// marshal/unmarshal round trip and sniffs to its own kind.
func TestWorkDocRoundTrips(t *testing.T) {
	lease := &WorkLease{
		Shard: 2, Attempt: 3, Library: "libc.so.6", Stdin: "seed",
		Preloads: []string{"libhealers_rob.so"}, Config: "cafe0123",
		Hierarchy: "v1", LeaseMS: 30000, RetryMS: 250,
		Funcs: []string{"memcpy", "strlen"},
	}
	lease.Checksum = lease.ComputeChecksum()
	res := &WorkResult{
		Worker: "w1", Shard: 2, Attempt: 3, Config: "cafe0123",
		Funcs: []WorkFuncXML{{
			CacheFuncXML: CacheFuncXML{Name: "strlen", Key: "k1", Config: "cafe0123", Probes: 5, Failures: 2},
			WallNS:       12345,
		}},
	}
	res.Checksum = res.ComputeChecksum()
	for _, tc := range []struct {
		doc  any
		kind DocKind
	}{
		{&WorkRequest{Worker: "w1", Hierarchy: "v1"}, KindWorkRequest},
		{lease, KindWorkLease},
		{res, KindWorkResult},
		{&Heartbeat{Worker: "w1", Shard: 2, Attempt: 3, DoneFuncs: 4}, KindHeartbeat},
		{&WorkAck{OK: true, Accepted: 1}, KindWorkAck},
	} {
		data, err := Marshal(tc.doc)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", tc.kind, err)
		}
		kind, err := Kind(data)
		if err != nil || kind != tc.kind {
			t.Errorf("Kind = %q, %v; want %q", kind, err, tc.kind)
		}
	}

	data, err := Marshal(lease)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal[WorkLease](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Checksum != back.ComputeChecksum() {
		t.Error("lease checksum does not survive the round trip")
	}
	if strings.Join(back.Funcs, ",") != "memcpy,strlen" || back.Stdin != "seed" || back.LeaseMS != 30000 {
		t.Errorf("lease fields lost in round trip: %+v", back)
	}

	rdata, err := Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	rback, err := Unmarshal[WorkResult](rdata)
	if err != nil {
		t.Fatal(err)
	}
	if rback.Checksum != rback.ComputeChecksum() {
		t.Error("result checksum does not survive the round trip")
	}
	if len(rback.Funcs) != 1 || rback.Funcs[0].WallNS != 12345 || rback.Funcs[0].Probes != 5 {
		t.Errorf("result entry lost in round trip: %+v", rback.Funcs)
	}
}

// TestWorkChecksumDetectsTamper: mutating any covered field invalidates
// the stored checksum.
func TestWorkChecksumDetectsTamper(t *testing.T) {
	lease := &WorkLease{Shard: 1, Funcs: []string{"memcpy"}}
	lease.Checksum = lease.ComputeChecksum()
	lease.Funcs[0] = "system"
	if lease.Checksum == lease.ComputeChecksum() {
		t.Error("function-list tamper not reflected in the lease checksum")
	}

	res := &WorkResult{Worker: "w", Funcs: []WorkFuncXML{{CacheFuncXML: CacheFuncXML{Name: "f", Probes: 3}}}}
	res.Checksum = res.ComputeChecksum()
	res.Funcs[0].Probes = 4
	if res.Checksum == res.ComputeChecksum() {
		t.Error("probe-count tamper not reflected in the result checksum")
	}
}
