package xmlrep

import (
	"strings"
	"testing"
)

// TestRegistryDocRoundTrips: every registry document survives a
// marshal/unmarshal round trip and sniffs to its own kind.
func TestRegistryDocRoundTrips(t *testing.T) {
	get := &RegistryGet{Client: "runner-1", Keys: []string{"k1", "k2"}}
	get.Checksum = get.ComputeChecksum()
	entry := CacheFuncXML{
		Name: "strlen", Key: "k1", Config: "cafe0123", Probes: 5, Failures: 2,
		Results: []CacheProbeXML{{Probe: "null", Param: 0, Outcome: "abort", FaultKind: 2}},
	}
	ans := &RegistryAnswer{
		Funcs:   []RegistryEntryXML{{CacheFuncXML: entry, Sum: EntrySum(&entry)}},
		Found:   []string{"k1"},
		Missing: []string{"k2"},
	}
	ans.Checksum = ans.ComputeChecksum()
	put := &RegistryPut{Client: "runner-1", Hierarchy: "v1", Funcs: []CacheFuncXML{entry}}
	put.Checksum = put.ComputeChecksum()
	for _, tc := range []struct {
		doc  any
		kind DocKind
	}{
		{get, KindRegistryGet},
		{ans, KindRegistryAnswer},
		{put, KindRegistryPut},
		{&RegistryAck{OK: true, Stored: 1, Known: 2}, KindRegistryAck},
	} {
		data, err := Marshal(tc.doc)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", tc.kind, err)
		}
		kind, err := Kind(data)
		if err != nil || kind != tc.kind {
			t.Errorf("Kind = %q, %v; want %q", kind, err, tc.kind)
		}
	}

	data, err := Marshal(get)
	if err != nil {
		t.Fatal(err)
	}
	gback, err := Unmarshal[RegistryGet](data)
	if err != nil {
		t.Fatal(err)
	}
	if gback.Checksum != gback.ComputeChecksum() {
		t.Error("get checksum does not survive the round trip")
	}
	if strings.Join(gback.Keys, ",") != "k1,k2" || gback.Client != "runner-1" {
		t.Errorf("get fields lost in round trip: %+v", gback)
	}

	adata, err := Marshal(ans)
	if err != nil {
		t.Fatal(err)
	}
	aback, err := Unmarshal[RegistryAnswer](adata)
	if err != nil {
		t.Fatal(err)
	}
	if aback.Checksum != aback.ComputeChecksum() {
		t.Error("answer checksum does not survive the round trip")
	}
	if len(aback.Funcs) != 1 || aback.Funcs[0].Sum != EntrySum(&entry) {
		t.Errorf("answer entry/sum lost in round trip: %+v", aback.Funcs)
	}
	if len(aback.Funcs[0].Results) != 1 || aback.Funcs[0].Results[0].Outcome != "abort" {
		t.Errorf("answer probe results lost in round trip: %+v", aback.Funcs)
	}
	if strings.Join(aback.Missing, ",") != "k2" {
		t.Errorf("answer Missing lost in round trip: %+v", aback.Missing)
	}

	pdata, err := Marshal(put)
	if err != nil {
		t.Fatal(err)
	}
	pback, err := Unmarshal[RegistryPut](pdata)
	if err != nil {
		t.Fatal(err)
	}
	if pback.Checksum != pback.ComputeChecksum() {
		t.Error("put checksum does not survive the round trip")
	}
	if pback.Hierarchy != "v1" || len(pback.Funcs) != 1 || pback.Funcs[0].Probes != 5 {
		t.Errorf("put fields lost in round trip: %+v", pback)
	}
}

// TestRegistryChecksumDetectsTamper: mutating any covered field
// invalidates the stored checksum, and mutating a served entry
// invalidates its per-entry sum even when the frame checksum is
// recomputed — the defense against corruption inside registry storage.
func TestRegistryChecksumDetectsTamper(t *testing.T) {
	get := &RegistryGet{Keys: []string{"k1"}}
	get.Checksum = get.ComputeChecksum()
	get.Keys[0] = "k2"
	if get.Checksum == get.ComputeChecksum() {
		t.Error("get checksum missed a key mutation")
	}

	entry := CacheFuncXML{Name: "strlen", Key: "k1", Probes: 3}
	sum := EntrySum(&entry)
	ans := &RegistryAnswer{Funcs: []RegistryEntryXML{{CacheFuncXML: entry, Sum: sum}}}
	ans.Checksum = ans.ComputeChecksum()
	ans.Funcs[0].Failures = 99
	if ans.Checksum == ans.ComputeChecksum() {
		t.Error("answer checksum missed an entry mutation")
	}
	// Per-entry integrity: even inside a frame whose checksum was
	// recomputed after the corruption, the entry's own sum disagrees.
	ans.Checksum = ans.ComputeChecksum()
	if EntrySum(&ans.Funcs[0].CacheFuncXML) == sum {
		t.Error("EntrySum missed an entry mutation")
	}

	put := &RegistryPut{Funcs: []CacheFuncXML{{Name: "strlen", Probes: 3}}}
	put.Checksum = put.ComputeChecksum()
	put.Funcs[0].Probes = 4
	if put.Checksum == put.ComputeChecksum() {
		t.Error("put checksum missed an entry mutation")
	}
}

// TestRegistryHasOnlyChecksum: the HasOnly bit is covered by the request
// checksum — a presence probe and a fetch for the same keys must not
// alias.
func TestRegistryHasOnlyChecksum(t *testing.T) {
	a := &RegistryGet{Keys: []string{"k1"}}
	b := &RegistryGet{Keys: []string{"k1"}, HasOnly: true}
	if a.ComputeChecksum() == b.ComputeChecksum() {
		t.Error("HasOnly not covered by the request checksum")
	}
}
