package xmlrep

import (
	"strings"
	"testing"
)

func sampleCacheDoc() *CampaignCacheDoc {
	return &CampaignCacheDoc{
		Hierarchy: "abcdef0123456789",
		Funcs: []CacheFuncXML{
			{
				Name: "strcpy", Key: "k1", Config: "c1", Probes: 2, Failures: 1,
				NeedsContainment: true,
				Params: []RobustParamXML{
					{Name: "dest", Chain: "out_buf", Level: "uncontainable"},
					{Name: "src", Chain: "in_str", Level: "cstring"},
				},
				Results: []CacheProbeXML{
					{Param: 0, Probe: "null", Sat: 0, Outcome: "crash",
						FaultKind: 2, FaultAddr: 0x1000, FaultOp: "write", FaultDetail: "unmapped"},
					{Param: 1, Probe: "golden", Sat: 3, Outcome: "ok"},
				},
			},
		},
	}
}

// TestCampaignCacheRoundTrip: the document marshals, sniffs as its kind,
// and unmarshals with the checksum still verifying.
func TestCampaignCacheRoundTrip(t *testing.T) {
	doc := sampleCacheDoc()
	doc.Checksum = doc.ComputeChecksum()
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	kind, err := Kind(data)
	if err != nil || kind != KindCampaignCache {
		t.Fatalf("Kind = %v, %v; want %v", kind, err, KindCampaignCache)
	}
	back, err := Unmarshal[CampaignCacheDoc](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ComputeChecksum() != back.Checksum {
		t.Error("checksum does not verify after round trip")
	}
	if len(back.Funcs) != 1 || back.Funcs[0].Name != "strcpy" ||
		len(back.Funcs[0].Results) != 2 || back.Funcs[0].Results[0].FaultAddr != 0x1000 {
		t.Errorf("round-tripped doc lost content: %+v", back.Funcs)
	}
}

// TestCampaignCacheChecksumSemantics: the checksum must ignore the
// Generated timestamp but change with any semantic entry field.
func TestCampaignCacheChecksumSemantics(t *testing.T) {
	doc := sampleCacheDoc()
	base := doc.ComputeChecksum()

	doc.Generated = "2026-08-06T00:00:00Z"
	if doc.ComputeChecksum() != base {
		t.Error("checksum depends on the Generated timestamp")
	}
	doc.Checksum = base
	if doc.ComputeChecksum() != base {
		t.Error("checksum depends on the stored checksum itself")
	}

	doc.Funcs[0].Results[1].Outcome = "crash"
	if doc.ComputeChecksum() == base {
		t.Error("checksum missed an outcome change")
	}
	doc.Funcs[0].Results[1].Outcome = "ok"
	doc.Funcs[0].Params[1].Level = "any"
	if doc.ComputeChecksum() == base {
		t.Error("checksum missed a level change")
	}
}

// TestRobustFuncFailuresAttr: the optional failures attribute survives a
// round trip and is omitted when zero (so plain robust-API documents are
// unchanged).
func TestRobustFuncFailuresAttr(t *testing.T) {
	doc := &RobustAPIDoc{Library: "libx.so", Funcs: []RobustFuncXML{
		{Name: "f", Failures: 3},
		{Name: "g"},
	}}
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `failures="3"`) {
		t.Error("failures attribute not marshalled")
	}
	if strings.Contains(string(data), `failures="0"`) {
		t.Error("zero failures attribute should be omitted")
	}
	back, err := Unmarshal[RobustAPIDoc](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Funcs[0].Failures != 3 || back.Funcs[1].Failures != 0 {
		t.Errorf("failures round trip: %+v", back.Funcs)
	}
}
