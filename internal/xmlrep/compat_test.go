package xmlrep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"healers/internal/gen"
)

// TestPreObservabilityGolden proves old profile documents stay
// parse-compatible: the golden file was emitted by the serializer BEFORE
// the observability fields (latency histograms, outcome counters, trace)
// existed, and must still parse to the same totals with the new fields at
// their zero values.
func TestPreObservabilityGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "profile_pre_observability.xml"))
	if err != nil {
		t.Fatal(err)
	}
	kind, err := Kind(data)
	if err != nil || kind != KindProfile {
		t.Fatalf("Kind = %v, %v; want profile", kind, err)
	}
	log, err := Unmarshal[ProfileLog](data)
	if err != nil {
		t.Fatalf("old document no longer parses: %v", err)
	}
	if log.TotalCalls() != 54 {
		t.Errorf("TotalCalls = %d, want 54", log.TotalCalls())
	}
	wantFuncs := map[string]uint64{"strlen": 42, "open": 7, "strcpy": 5}
	for _, f := range log.Funcs {
		if f.Calls != wantFuncs[f.Name] {
			t.Errorf("%s calls = %d, want %d", f.Name, f.Calls, wantFuncs[f.Name])
		}
		// The observability fields must come back as zero values, and
		// LatencyDense must report "no data" (nil), not an empty
		// histogram — the aggregator distinguishes the two.
		if f.Passed != 0 || f.Substituted != 0 || f.Latency != nil {
			t.Errorf("%s: pre-observability doc has non-zero new fields: %+v", f.Name, f)
		}
		if f.LatencyDense() != nil {
			t.Errorf("%s: LatencyDense of old doc = %v, want nil", f.Name, f.LatencyDense())
		}
	}
	if len(log.TraceEntries()) != 0 {
		t.Errorf("old doc has %d trace entries", len(log.TraceEntries()))
	}
	open := log.Funcs[1]
	if open.Name != "open" || len(open.Errnos) != 1 || open.Errnos[0].Errno != "ENOENT" || open.Errnos[0].Count != 3 {
		t.Errorf("open errnos = %+v", open.Errnos)
	}
	if log.Funcs[2].Denied != 2 {
		t.Errorf("strcpy denied = %d, want 2", log.Funcs[2].Denied)
	}
}

// TestProfileLogObservabilityRoundTrip drives a populated State through
// NewProfileLog -> Marshal -> Unmarshal and checks every new field
// survives, including the sparse-to-dense latency conversion.
func TestProfileLogObservabilityRoundTrip(t *testing.T) {
	st := gen.NewState("libhealers_prof.so")
	idx := st.Index("strlen")
	st.CallCount[idx] = 10
	st.ExecTime[idx] = 1234 * time.Nanosecond
	st.PassedCount[idx] = 9
	st.SubstCount[idx] = 1
	st.ExecHist[idx][0] = 3
	st.ExecHist[idx][7] = 6
	st.ExecHist[idx][39] = 1
	st.FuncErrno[idx][2] = 4 // ENOENT
	st.GlobalErrno[2] = 4

	st.SetTraceCap(8)
	st.AddTrace(gen.TraceEntry{Func: "strlen", Args: "0x1000", Dur: 42 * time.Nanosecond, Outcome: "ok"})
	st.AddTrace(gen.TraceEntry{Func: "open", Args: "0x2000, 0x0", Dur: 99 * time.Nanosecond, Outcome: "errno=ENOENT"})

	orig := NewProfileLog("host-a", "textutil", st)
	data, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal[ProfileLog](data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Funcs) != 1 {
		t.Fatalf("round-trip lost functions: %+v", back.Funcs)
	}
	f := back.Funcs[0]
	if f.Passed != 9 || f.Substituted != 1 || f.Calls != 10 {
		t.Errorf("outcome counters lost: %+v", f)
	}
	wantHist := make([]uint64, gen.HistBuckets)
	wantHist[0], wantHist[7], wantHist[39] = 3, 6, 1
	if !reflect.DeepEqual(f.LatencyDense(), wantHist) {
		t.Errorf("latency = %v, want %v", f.LatencyDense(), wantHist)
	}
	if gen.HistTotal(f.LatencyDense()) != f.Calls {
		t.Errorf("bucket sum %d != calls %d", gen.HistTotal(f.LatencyDense()), f.Calls)
	}
	trace := back.TraceEntries()
	if len(trace) != 2 {
		t.Fatalf("trace = %+v, want 2 entries", trace)
	}
	if trace[0].Seq != 1 || trace[0].Func != "strlen" || trace[0].DurNS != 42 || trace[0].Outcome != "ok" {
		t.Errorf("trace[0] = %+v", trace[0])
	}
	if trace[1].Func != "open" || trace[1].Args != "0x2000, 0x0" || trace[1].Outcome != "errno=ENOENT" {
		t.Errorf("trace[1] = %+v", trace[1])
	}
}

// TestContainmentCountersRoundTrip: the recovery layer's counters
// (contained faults, retries, breaker trips) survive the profile
// Marshal -> Unmarshal cycle as attributes on the per-function element,
// alongside the pre-existing outcome counters.
func TestContainmentCountersRoundTrip(t *testing.T) {
	st := gen.NewState("libhealers_contain.so")
	idx := st.Index("strcpy")
	st.CallCount[idx] = 9
	st.DeniedCount[idx] = 6
	st.ContainedCount[idx] = 5
	st.RetriedCount[idx] = 2
	st.BreakerTrips[idx] = 1

	data, err := Marshal(NewProfileLog("host-a", "victim", st))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal[ProfileLog](data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Funcs) != 1 {
		t.Fatalf("round-trip lost functions: %+v", back.Funcs)
	}
	f := back.Funcs[0]
	if f.Contained != 5 || f.Retried != 2 || f.BreakerTrips != 1 {
		t.Errorf("containment counters = %d/%d/%d, want 5/2/1",
			f.Contained, f.Retried, f.BreakerTrips)
	}
	if f.Calls != 9 || f.Denied != 6 {
		t.Errorf("older counters disturbed: %+v", f)
	}
}

// TestEmptyObservabilityOmitted pins wire hygiene: a State with no
// latency samples, outcomes, or traces serializes without any of the new
// elements, so fresh-but-idle wrappers produce documents an old reader
// parses byte-for-byte like before.
func TestEmptyObservabilityOmitted(t *testing.T) {
	st := gen.NewState("libhealers_prof.so")
	st.Index("strlen")
	data, err := Marshal(NewProfileLog("h", "a", st))
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"<latency>", "<trace>", "passed=", "substituted=",
		"contained=", "retried=", "breaker_trips="} {
		if bytes.Contains(data, []byte(forbidden)) {
			t.Errorf("idle profile contains %q:\n%s", forbidden, data)
		}
	}
}
