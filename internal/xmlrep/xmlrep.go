// Package xmlrep defines the self-describing XML documents the HEALERS
// toolkit exchanges (§2.3: "the gathered information sent to the server is
// in form of a self-describing XML document"):
//
//   - Declaration files: every function of a library with its prototype
//     (demo §3.1 "create a XML-style declaration file that describes the
//     prototype of each function in the library");
//   - Robust-API files: the fault-injection-derived weakest robust types;
//   - Profile logs: the profiling wrapper's call counts, execution times
//     and errno distributions (demo §3.3, Fig. 5), shipped to the central
//     collection server.
//
// Every document carries enough metadata for the server to "extract from
// the document which functions were wrapped and what kind of information
// was collected" without out-of-band knowledge.
package xmlrep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"

	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/gen"
)

// DocKind discriminates document types for the collection server.
type DocKind string

// The document kinds.
const (
	KindDeclarations  DocKind = "declarations"
	KindRobustAPI     DocKind = "robust-api"
	KindProfile       DocKind = "profile"
	KindCampaignCache DocKind = "campaign-cache"
	KindPolicy        DocKind = "policy"
	// KindSequenceReport is a temporal fault-sequence campaign's result:
	// one victim scenario replayed under scripted fault combinations
	// across consecutive calls, each run classified against the golden
	// run's committed-state digest.
	KindSequenceReport DocKind = "sequence-report"
	// Control-plane kinds: a containment process asks the collector for a
	// newer recovery policy (KindPolicyRequest) and the collector answers
	// with either a full policy document or a not-modified/refusal ack
	// (KindPolicyAck). Operator pushes of new policy revisions reuse
	// KindPolicy and are answered with a KindPolicyAck.
	KindPolicyRequest DocKind = "policy-request"
	KindPolicyAck     DocKind = "policy-ack"
	// Distributed-campaign kinds: the coordinator/worker exchange of a
	// sharded fault-injection sweep rides the collect framing as
	// ordinary self-describing documents.
	KindWorkRequest DocKind = "work-request"
	KindWorkLease   DocKind = "work-lease"
	KindWorkResult  DocKind = "work-result"
	KindHeartbeat   DocKind = "heartbeat"
	KindWorkAck     DocKind = "work-ack"
	// Registry kinds: the shared campaign-cache registry's get/put/has
	// exchanges. A client asks for entries by content-hash key
	// (KindRegistryGet, answered with KindRegistryAnswer) and pushes
	// freshly derived entries back (KindRegistryPut, answered with
	// KindRegistryAck), turning every runner's local probing into a
	// fleet-wide amortized cost.
	KindRegistryGet    DocKind = "registry-get"
	KindRegistryPut    DocKind = "registry-put"
	KindRegistryAnswer DocKind = "registry-answer"
	KindRegistryAck    DocKind = "registry-ack"
)

// ParamDecl is one parameter in a declaration file.
type ParamDecl struct {
	Name string `xml:"name,attr,omitempty"`
	Type string `xml:"type,attr"`
	Role string `xml:"role,attr,omitempty"`
}

// FuncDecl is one function's prototype.
type FuncDecl struct {
	Name     string      `xml:"name,attr"`
	Returns  string      `xml:"returns,attr"`
	Variadic bool        `xml:"variadic,attr,omitempty"`
	Header   string      `xml:"header,attr,omitempty"`
	Params   []ParamDecl `xml:"param"`
}

// Declarations is the library declaration file.
type Declarations struct {
	XMLName   xml.Name   `xml:"healers-declarations"`
	Library   string     `xml:"library,attr"`
	Generated string     `xml:"generated,attr,omitempty"`
	Funcs     []FuncDecl `xml:"function"`
}

// NewDeclarations builds a declaration document from prototypes.
func NewDeclarations(library string, protos []*ctypes.Prototype) *Declarations {
	d := &Declarations{Library: library, Generated: timestamp()}
	for _, p := range protos {
		fd := FuncDecl{
			Name:     p.Name,
			Returns:  p.Ret.String(),
			Variadic: p.Variadic,
			Header:   p.Header,
		}
		for _, prm := range p.Params {
			fd.Params = append(fd.Params, ParamDecl{
				Name: prm.Name,
				Type: prm.Type.String(),
				Role: prm.Role.String(),
			})
		}
		d.Funcs = append(d.Funcs, fd)
	}
	return d
}

// RobustParamXML is one derived robust parameter type.
type RobustParamXML struct {
	Name  string `xml:"name,attr,omitempty"`
	Chain string `xml:"chain,attr"`
	Level string `xml:"level,attr"`
}

// RobustFuncXML is one function's derived robust API. Failures is the
// campaign's robustness-failure count for the function; it is optional
// (absent == 0) and only emitted by baseline documents, where the CI
// regression gate uses it to detect functions that gained failures.
type RobustFuncXML struct {
	Name     string           `xml:"name,attr"`
	Failures int              `xml:"failures,attr,omitempty"`
	Params   []RobustParamXML `xml:"param"`
}

// RobustAPIDoc is the robust-API file of Figure 2's output stage.
type RobustAPIDoc struct {
	XMLName   xml.Name        `xml:"healers-robust-api"`
	Library   string          `xml:"library,attr"`
	Generated string          `xml:"generated,attr,omitempty"`
	Funcs     []RobustFuncXML `xml:"function"`
}

// NewRobustAPIDoc converts a derived robust API to its document form.
func NewRobustAPIDoc(library string, api ctypes.RobustAPI) *RobustAPIDoc {
	doc := &RobustAPIDoc{Library: library, Generated: timestamp()}
	for _, fn := range api.Funcs() {
		fx := RobustFuncXML{Name: fn}
		for _, p := range api[fn] {
			fx.Params = append(fx.Params, RobustParamXML{Name: p.Name, Chain: p.Chain, Level: p.LevelName})
		}
		doc.Funcs = append(doc.Funcs, fx)
	}
	return doc
}

// API reconstructs the in-memory robust API from the document.
func (doc *RobustAPIDoc) API() (ctypes.RobustAPI, error) {
	api := make(ctypes.RobustAPI, len(doc.Funcs))
	for _, fx := range doc.Funcs {
		params := make([]ctypes.RobustParam, len(fx.Params))
		for i, p := range fx.Params {
			chain, ok := ctypes.ChainByName(p.Chain)
			if !ok {
				return nil, fmt.Errorf("xmlrep: unknown chain %q in %s", p.Chain, fx.Name)
			}
			lvl := chain.LevelIndex(p.Level)
			if lvl < 0 {
				if p.Level == "uncontainable" {
					lvl = len(chain.Levels)
				} else {
					return nil, fmt.Errorf("xmlrep: unknown level %q of chain %q in %s", p.Level, p.Chain, fx.Name)
				}
			}
			params[i] = ctypes.RobustParam{Name: p.Name, Chain: p.Chain, Level: lvl, LevelName: p.Level}
		}
		api[fx.Name] = params
	}
	return api, nil
}

// CacheProbeXML is one recorded probe call in a campaign-cache entry:
// everything the engine needs to reconstruct an inject.ProbeResult without
// re-running the probe process, fault detail included.
type CacheProbeXML struct {
	Param   int    `xml:"param,attr"`
	Probe   string `xml:"probe,attr"`
	Sat     int    `xml:"sat,attr"`
	Outcome string `xml:"outcome,attr"`
	// Fault fields reconstruct the cmem.Fault of crash/abort/hang
	// outcomes; FaultKind == 0 means the probe did not fault.
	FaultKind   int    `xml:"fault_kind,attr,omitempty"`
	FaultAddr   uint64 `xml:"fault_addr,attr,omitempty"`
	FaultOp     string `xml:"fault_op,attr,omitempty"`
	FaultDetail string `xml:"fault_detail,attr,omitempty"`
}

// CacheFuncXML is one function's cached campaign outcome. Key is the
// content hash of (prototype, probe-hierarchy version, injector config)
// that addressed the entry; Config repeats the injector-config component
// so entries for different configurations (plain vs wrapper-preloaded
// sweeps) of the same function can coexist in one file.
type CacheFuncXML struct {
	Name             string           `xml:"name,attr"`
	Key              string           `xml:"key,attr"`
	Config           string           `xml:"config,attr"`
	Probes           int              `xml:"probes,attr"`
	Failures         int              `xml:"failures,attr"`
	NeedsContainment bool             `xml:"needs_containment,attr,omitempty"`
	Params           []RobustParamXML `xml:"param"`
	Results          []CacheProbeXML  `xml:"probe"`
}

// CampaignCacheDoc is the persistent fault-injection campaign cache: one
// entry per (function, injector config) holding the full per-probe record
// and the derived robust types. Hierarchy is the probe-hierarchy content
// hash the entries were derived under — a reader whose hierarchy differs
// must discard the whole document. Checksum is ComputeChecksum() over the
// entries; a mismatch marks the file corrupted (e.g. a truncated
// checkpoint) and it must be discarded rather than trusted.
type CampaignCacheDoc struct {
	XMLName   xml.Name       `xml:"healers-campaign-cache"`
	Hierarchy string         `xml:"hierarchy,attr"`
	Checksum  string         `xml:"checksum,attr,omitempty"`
	Generated string         `xml:"generated,attr,omitempty"`
	Funcs     []CacheFuncXML `xml:"function"`
}

// ComputeChecksum returns the integrity hash of the document's semantic
// content (hierarchy plus every entry field, in document order). The
// Generated timestamp and the stored Checksum itself are excluded, so the
// value is reproducible from a parsed document.
func (d *CampaignCacheDoc) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "hierarchy=%s\n", d.Hierarchy)
	for _, f := range d.Funcs {
		hashCacheFunc(h, &f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashCacheFunc folds one cache entry's semantic content into h — the
// shared integrity unit of the campaign-cache and work-result documents.
func hashCacheFunc(h io.Writer, f *CacheFuncXML) {
	fmt.Fprintf(h, "func=%s key=%s config=%s probes=%d failures=%d nc=%v\n",
		f.Name, f.Key, f.Config, f.Probes, f.Failures, f.NeedsContainment)
	for _, p := range f.Params {
		fmt.Fprintf(h, " param=%s chain=%s level=%s\n", p.Name, p.Chain, p.Level)
	}
	for _, r := range f.Results {
		fmt.Fprintf(h, " probe=%d/%s sat=%d out=%s fault=%d/%d/%s/%s\n",
			r.Param, r.Probe, r.Sat, r.Outcome, r.FaultKind, r.FaultAddr, r.FaultOp, r.FaultDetail)
	}
}

// SeqStepXML is one scripted fault of a sequence run: at the Call-th
// intercepted library call, a fault of class Class fires. Func labels
// the call position with the function name the golden run observed
// there, so reports stay readable without replaying the scenario.
type SeqStepXML struct {
	Call  uint64 `xml:"call,attr"`
	Class string `xml:"class,attr"`
	Func  string `xml:"func,attr,omitempty"`
}

// SeqRunXML is one fault-combination run of a sequence campaign: the
// scripted steps, how the victim ended, and whether its committed state
// diverged from the golden run's digest.
type SeqRunXML struct {
	Steps   []SeqStepXML `xml:"step"`
	Outcome string       `xml:"outcome,attr"`
	Exit    int32        `xml:"exit,attr,omitempty"`
	// Diverged means the run's journal-diff digest differs from the
	// golden run's — set for every silent-corruption outcome, and also
	// recorded (without reclassifying) when a faulting run additionally
	// damaged state.
	Diverged bool `xml:"diverged,attr,omitempty"`
	// Fault fields carry the terminating fault of crash/abort/hang runs.
	FaultKind   int    `xml:"fault_kind,attr,omitempty"`
	FaultOp     string `xml:"fault_op,attr,omitempty"`
	FaultDetail string `xml:"fault_detail,attr,omitempty"`
}

// SequenceReportDoc is a temporal fault-sequence campaign's result
// document: the scenario identity, the golden run's call count and
// committed-state digest, and one entry per fault-combination run.
// Checksum follows the campaign-cache integrity idiom: reproducible from
// the parsed document, Generated excluded.
type SequenceReportDoc struct {
	XMLName      xml.Name    `xml:"healers-sequence-report"`
	Scenario     string      `xml:"scenario,attr"`
	App          string      `xml:"app,attr"`
	Calls        uint64      `xml:"calls,attr"`
	GoldenDigest string      `xml:"golden_digest,attr"`
	Checksum     string      `xml:"checksum,attr,omitempty"`
	Generated    string      `xml:"generated,attr,omitempty"`
	Runs         []SeqRunXML `xml:"run"`
}

// ComputeChecksum returns the integrity hash of the sequence report's
// semantic content (scenario identity plus every run, in document
// order). Generated and the stored Checksum are excluded, so the value
// is reproducible from a parsed document.
func (d *SequenceReportDoc) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "scenario=%s app=%s calls=%d golden=%s\n", d.Scenario, d.App, d.Calls, d.GoldenDigest)
	for _, r := range d.Runs {
		fmt.Fprintf(h, "run out=%s exit=%d div=%v fault=%d/%s/%s\n",
			r.Outcome, r.Exit, r.Diverged, r.FaultKind, r.FaultOp, r.FaultDetail)
		for _, s := range r.Steps {
			fmt.Fprintf(h, " step=%d class=%s func=%s\n", s.Call, s.Class, s.Func)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stamp sets the Generated timestamp and (re)computes the checksum; call
// it after filling the runs and before marshalling.
func (d *SequenceReportDoc) Stamp() {
	d.Generated = timestamp()
	d.Checksum = d.ComputeChecksum()
}

// Validate verifies the stored checksum against the recomputed one.
func (d *SequenceReportDoc) Validate() error {
	if d.Checksum == "" {
		return fmt.Errorf("xmlrep: sequence report has no checksum")
	}
	if got := d.ComputeChecksum(); got != d.Checksum {
		return fmt.Errorf("xmlrep: sequence report checksum mismatch")
	}
	return nil
}

// ---------------------------------------------------------------------
// Distributed campaign wire documents. A coordinator plans a library
// sweep, shards its function list, and leases shards to worker processes
// over the collect framing; workers stream per-function results back and
// heartbeat long shards. Every exchange is a worker-initiated
// request/response pair, so the coordinator needs no reverse channel.

// WorkRequest asks the coordinator for a shard lease. Hierarchy is the
// worker's probe-hierarchy version; the coordinator refuses a worker
// whose hierarchy differs from its own (mismatched binaries would derive
// incomparable results).
type WorkRequest struct {
	XMLName   xml.Name `xml:"healers-work-request"`
	Worker    string   `xml:"worker,attr"`
	Hierarchy string   `xml:"hierarchy,attr"`
}

// WorkLease is the coordinator's answer to a WorkRequest: a shard of
// function names plus everything the worker needs to reproduce the
// coordinator's campaign configuration exactly (library, stdin seed,
// preload stack). Config is the coordinator's injector-config hash; the
// worker must derive the same hash from the replayed configuration or
// abort, which pins both processes to identical probe semantics.
//
// Done means the sweep is complete and the worker should exit. An empty
// Funcs list with Done unset means "no shard available right now, poll
// again in RetryMS" (all shards are leased to live workers).
type WorkLease struct {
	XMLName xml.Name `xml:"healers-work-lease"`
	// Shard and Attempt identify the lease; a re-issued shard carries a
	// higher attempt so stale results remain attributable.
	Shard   int `xml:"shard,attr"`
	Attempt int `xml:"attempt,attr"`
	// Library, Stdin and Preloads replay the campaign configuration.
	Library  string   `xml:"library,attr,omitempty"`
	Stdin    string   `xml:"stdin,attr,omitempty"`
	Preloads []string `xml:"preload,omitempty"`
	// Config and Hierarchy pin the configuration content hashes.
	Config    string `xml:"config,attr,omitempty"`
	Hierarchy string `xml:"hierarchy,attr,omitempty"`
	// LeaseMS is how long the coordinator holds the shard for this
	// worker without hearing a heartbeat or result before re-leasing.
	LeaseMS int `xml:"lease_ms,attr,omitempty"`
	// RetryMS tells an idle worker when to ask again.
	RetryMS  int      `xml:"retry_ms,attr,omitempty"`
	Done     bool     `xml:"done,attr,omitempty"`
	Funcs    []string `xml:"func"`
	Checksum string   `xml:"checksum,attr,omitempty"`
}

// ComputeChecksum returns the lease's integrity hash (Checksum itself
// excluded).
func (l *WorkLease) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "shard=%d attempt=%d lib=%s stdin=%q preloads=%q config=%s hier=%s lease=%d retry=%d done=%v funcs=%q",
		l.Shard, l.Attempt, l.Library, l.Stdin, strings.Join(l.Preloads, ","), l.Config,
		l.Hierarchy, l.LeaseMS, l.RetryMS, l.Done, strings.Join(l.Funcs, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// WorkFuncXML is one completed function in a work-result document: the
// campaign-cache entry (key, config, per-probe record, verdicts) plus the
// worker-side wall time the coordinator's throughput stats attribute to
// the worker.
type WorkFuncXML struct {
	CacheFuncXML
	WallNS int64 `xml:"wall_ns,attr,omitempty"`
}

// WorkResult streams completed functions back to the coordinator: one
// document per finished function (so a crashed worker loses at most the
// function in flight). Entries are full cache entries, which is what lets
// the coordinator fold them into its persistent campaign cache via the
// ordinary merge path. Config must match the coordinator's; the per-entry
// Key dedups replayed results after a re-lease.
type WorkResult struct {
	XMLName xml.Name `xml:"healers-work-result"`
	Worker  string   `xml:"worker,attr"`
	Shard   int      `xml:"shard,attr"`
	Attempt int      `xml:"attempt,attr"`
	Config  string   `xml:"config,attr"`
	// CachedLocal marks results the worker served from its own local
	// cache rather than probing (counted, not timed).
	CachedLocal bool          `xml:"cached_local,attr,omitempty"`
	Funcs       []WorkFuncXML `xml:"function"`
	Checksum    string        `xml:"checksum,attr,omitempty"`
}

// ComputeChecksum returns the result's integrity hash (Checksum itself
// excluded). A coordinator discards results whose checksum does not
// match rather than merging a truncated or corrupted frame.
func (r *WorkResult) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "worker=%s shard=%d attempt=%d config=%s cached=%v\n",
		r.Worker, r.Shard, r.Attempt, r.Config, r.CachedLocal)
	for _, f := range r.Funcs {
		hashCacheFunc(h, &f.CacheFuncXML)
		fmt.Fprintf(h, " wall=%d\n", f.WallNS)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Heartbeat extends a shard lease while a worker grinds through a slow
// function, so the coordinator does not re-lease work that is still
// progressing.
type Heartbeat struct {
	XMLName xml.Name `xml:"healers-heartbeat"`
	Worker  string   `xml:"worker,attr"`
	Shard   int      `xml:"shard,attr"`
	Attempt int      `xml:"attempt,attr"`
	// DoneFuncs reports shard progress, for operator visibility.
	DoneFuncs int `xml:"done_funcs,attr,omitempty"`
}

// WorkAck is the coordinator's response to results and heartbeats. OK
// false carries a Reason the worker must treat as fatal (configuration
// or hierarchy skew — retrying cannot help).
type WorkAck struct {
	XMLName xml.Name `xml:"healers-work-ack"`
	OK      bool     `xml:"ok,attr"`
	Reason  string   `xml:"reason,attr,omitempty"`
	// Accepted counts the result entries the coordinator merged (the
	// rest were duplicates it already had).
	Accepted int `xml:"accepted,attr,omitempty"`
}

// ---------------------------------------------------------------------
// Registry wire documents. A campaign-cache registry is a shared,
// content-addressed store of cache entries: any runner can ask for
// entries by their sha256(prototype, probe-hierarchy version, injector
// config) key and push the entries it derived locally. Both exchanges
// are client-initiated request/response pairs over the collect framing,
// so one collector port serves ingest, coordination, policy, and the
// registry at once.

// EntrySum returns the per-entry integrity hash of one cache entry: the
// same semantic content the campaign-cache document checksum folds in,
// hashed alone. The registry stamps it on every entry it serves, so a
// client can reject an entry corrupted in registry storage even when
// the surrounding answer frame checksums clean.
func EntrySum(f *CacheFuncXML) string {
	h := sha256.New()
	hashCacheFunc(h, f)
	return hex.EncodeToString(h.Sum(nil))
}

// RegistryGet asks a registry for cache entries by key. With HasOnly
// set the answer reports presence only (Found/Missing keys, no entry
// bodies) — the cheap "has" probe a planner uses before deciding what
// to lease.
type RegistryGet struct {
	XMLName  xml.Name `xml:"healers-registry-get"`
	Client   string   `xml:"client,attr,omitempty"`
	HasOnly  bool     `xml:"has_only,attr,omitempty"`
	Keys     []string `xml:"key"`
	Checksum string   `xml:"checksum,attr,omitempty"`
}

// ComputeChecksum returns the request's integrity hash (Checksum itself
// excluded).
func (g *RegistryGet) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "client=%s has_only=%v keys=%s", g.Client, g.HasOnly, strings.Join(g.Keys, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// RegistryEntryXML is one served registry entry: the cache entry plus
// the registry-stamped per-entry integrity hash (see EntrySum). A
// client must recompute Sum and discard mismatching entries — the worst
// case is always "probe again", never "trust a corrupted entry".
type RegistryEntryXML struct {
	CacheFuncXML
	Sum string `xml:"sum,attr,omitempty"`
}

// RegistryAnswer is the registry's response to a get: the entries it
// holds for the requested keys (or, for a HasOnly probe, just their
// keys under Found) and the keys it does not.
type RegistryAnswer struct {
	XMLName  xml.Name           `xml:"healers-registry-answer"`
	Funcs    []RegistryEntryXML `xml:"function"`
	Found    []string           `xml:"found"`
	Missing  []string           `xml:"missing"`
	Checksum string             `xml:"checksum,attr,omitempty"`
}

// ComputeChecksum returns the answer's integrity hash (Checksum itself
// excluded). A client discards answers whose checksum does not match
// rather than trusting a truncated or corrupted frame.
func (a *RegistryAnswer) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "found=%s missing=%s\n", strings.Join(a.Found, ","), strings.Join(a.Missing, ","))
	for i := range a.Funcs {
		hashCacheFunc(h, &a.Funcs[i].CacheFuncXML)
		fmt.Fprintf(h, " sum=%s\n", a.Funcs[i].Sum)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RegistryPut pushes freshly derived cache entries to a registry.
// Hierarchy is the pusher's probe-hierarchy version, recorded with the
// stored entries for diagnostics (the keys already pin it — entries
// derived under different hierarchies never collide).
type RegistryPut struct {
	XMLName   xml.Name       `xml:"healers-registry-put"`
	Client    string         `xml:"client,attr,omitempty"`
	Hierarchy string         `xml:"hierarchy,attr,omitempty"`
	Funcs     []CacheFuncXML `xml:"function"`
	Checksum  string         `xml:"checksum,attr,omitempty"`
}

// ComputeChecksum returns the put's integrity hash (Checksum itself
// excluded). A registry refuses puts whose checksum does not match —
// storing a truncated frame would poison every future warm sweep.
func (p *RegistryPut) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "client=%s hierarchy=%s\n", p.Client, p.Hierarchy)
	for i := range p.Funcs {
		hashCacheFunc(h, &p.Funcs[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RegistryAck answers a put: how many entries the registry stored
// (Stored) and how many it already held (Known). OK false carries the
// Reason the whole put was refused (corrupted frame, registry disabled).
type RegistryAck struct {
	XMLName xml.Name `xml:"healers-registry-ack"`
	OK      bool     `xml:"ok,attr"`
	Reason  string   `xml:"reason,attr,omitempty"`
	Stored  int      `xml:"stored,attr,omitempty"`
	Known   int      `xml:"known,attr,omitempty"`
}

// PolicyRuleXML is one recovery rule of a policy document: what the
// containment wrapper does when Func fails with a Class failure. Func
// and Class may be "*" (or empty) to match anything; the first matching
// rule in document order wins.
type PolicyRuleXML struct {
	Func  string `xml:"func,attr,omitempty"`
	Class string `xml:"class,attr,omitempty"`
	// Action is deny, retry, substitute, or escalate.
	Action string `xml:"action,attr"`
	// Retries and BackoffMS parametrize retry.
	Retries   int `xml:"retries,attr,omitempty"`
	BackoffMS int `xml:"backoff_ms,attr,omitempty"`
	// Value is the substitute action's return value.
	Value int64 `xml:"value,attr,omitempty"`
	// BreakerThreshold, when > 0, overrides the document-level breaker
	// threshold for calls matched by this rule — the escalation ladder's
	// last rung tightens a single function to a one-strike breaker
	// without condemning the rest of the library.
	BreakerThreshold int `xml:"breaker_threshold,attr,omitempty"`
}

// PolicyDoc configures the containment wrapper's recovery policy engine:
// the rule table plus the circuit-breaker parameters (a function whose
// contained failures reach BreakerThreshold within BreakerWindowMS flips
// to always-deny).
//
// Revision and Checksum make the document a control-plane artifact: a
// running engine only hot-reloads a document whose Revision is strictly
// greater than the one it runs, and whose Checksum matches
// ComputeChecksum() — a truncated, tampered, or hand-edited-but-unstamped
// document is rejected and the old rules stay in force. Revision 0 marks
// an unstamped document (initial-load only, never hot-reloadable).
type PolicyDoc struct {
	XMLName          xml.Name        `xml:"healers-policy"`
	Generated        string          `xml:"generated,attr,omitempty"`
	Revision         int             `xml:"revision,attr,omitempty"`
	Checksum         string          `xml:"checksum,attr,omitempty"`
	BreakerThreshold int             `xml:"breaker_threshold,attr,omitempty"`
	BreakerWindowMS  int             `xml:"breaker_window_ms,attr,omitempty"`
	Rules            []PolicyRuleXML `xml:"rule"`
}

// NewPolicyDoc stamps a policy document for serialization. The result is
// unversioned (Revision 0); call Stamp to make it hot-reloadable.
func NewPolicyDoc(threshold, windowMS int, rules []PolicyRuleXML) *PolicyDoc {
	return &PolicyDoc{
		Generated:        timestamp(),
		BreakerThreshold: threshold,
		BreakerWindowMS:  windowMS,
		Rules:            rules,
	}
}

// ComputeChecksum returns the integrity hash of the document's semantic
// content: revision, breaker parameters, and every rule field in document
// order. Generated and the stored Checksum itself are excluded, so the
// value is reproducible from a parsed document.
func (d *PolicyDoc) ComputeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "rev=%d threshold=%d window=%d\n", d.Revision, d.BreakerThreshold, d.BreakerWindowMS)
	for _, r := range d.Rules {
		fmt.Fprintf(h, " rule func=%s class=%s action=%s retries=%d backoff=%d value=%d breaker=%d\n",
			r.Func, r.Class, r.Action, r.Retries, r.BackoffMS, r.Value, r.BreakerThreshold)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stamp versions the document for hot-reload: it sets Revision and
// recomputes Checksum over the final content. Call it last, after every
// rule edit.
func (d *PolicyDoc) Stamp(revision int) {
	d.Revision = revision
	d.Checksum = d.ComputeChecksum()
}

// Validate checks the document's structural integrity: every rule's
// action and failure-class name must be known, retry/breaker parameters
// non-negative, and — when the document is stamped — the checksum must
// match its content. It does not enforce a revision floor; staleness is
// the reloading engine's call, because only the engine knows what it
// currently runs.
func (d *PolicyDoc) Validate() error {
	if d.Revision < 0 {
		return fmt.Errorf("xmlrep: policy: negative revision %d", d.Revision)
	}
	if d.Checksum != "" {
		if want := d.ComputeChecksum(); d.Checksum != want {
			return fmt.Errorf("xmlrep: policy: checksum mismatch (document corrupted or edited without restamping)")
		}
	}
	for i, r := range d.Rules {
		if _, ok := gen.ContainActionByName(r.Action); !ok {
			return fmt.Errorf("xmlrep: policy rule %d: unknown action %q", i, r.Action)
		}
		if r.Class != "" && r.Class != "*" {
			known := false
			for c := gen.FailureClass(0); int(c) < gen.NumFailureClasses; c++ {
				if c.String() == r.Class {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("xmlrep: policy rule %d: unknown failure class %q", i, r.Class)
			}
		}
		if r.Retries < 0 || r.BackoffMS < 0 || r.BreakerThreshold < 0 {
			return fmt.Errorf("xmlrep: policy rule %d: negative retry/backoff/breaker parameter", i)
		}
	}
	return nil
}

// PolicyRequest asks a control plane for the current recovery policy.
// HaveRevision is the requester's running revision; a control plane whose
// policy is not newer answers with a PolicyAck instead of re-sending the
// document, so idle polls stay one small frame each way.
type PolicyRequest struct {
	XMLName      xml.Name `xml:"healers-policy-request"`
	Client       string   `xml:"client,attr,omitempty"`
	HaveRevision int      `xml:"have_revision,attr,omitempty"`
}

// PolicyAck is the control plane's answer to a policy push or an
// already-current policy request. OK false carries the Reason the push
// was rejected (stale revision, checksum mismatch, malformed rules);
// Revision reports the control plane's current policy revision either
// way.
type PolicyAck struct {
	XMLName  xml.Name `xml:"healers-policy-ack"`
	OK       bool     `xml:"ok,attr"`
	Reason   string   `xml:"reason,attr,omitempty"`
	Revision int      `xml:"revision,attr,omitempty"`
}

// ErrnoCount is one errno histogram bucket.
type ErrnoCount struct {
	Errno string `xml:"errno,attr"`
	Count uint64 `xml:"count,attr"`
}

// ClassCount is one failure-class containment bucket of a function
// profile: Count faults of class Class (crash, hang, abort, oom) were
// caught and virtualized for the function. Only non-zero classes are
// serialized, so pre-containment documents and readers are unaffected —
// the per-class split is what lets the collector escalate recovery
// policy per (function, failure class) instead of per function.
type ClassCount struct {
	Class string `xml:"class,attr"`
	Count uint64 `xml:"count,attr"`
}

// HistBucketXML is one log2 latency histogram bucket: Count calls whose
// duration d satisfies 2^Bucket ns <= d < 2^(Bucket+1) ns. Only non-empty
// buckets are serialized, so documents stay compact and pre-observability
// readers — which never look for the element — are unaffected.
type HistBucketXML struct {
	Bucket int    `xml:"log2,attr"`
	Count  uint64 `xml:"count,attr"`
}

// LatencyXML is the optional <latency> element of a function profile,
// wrapping the sparse histogram buckets. It is a pointer field on
// FuncProfile so an absent element marshals to nothing at all — the
// nested-tag shorthand (`latency>bucket`) would emit an empty parent.
type LatencyXML struct {
	Buckets []HistBucketXML `xml:"bucket"`
}

// TraceEntryXML is one entry of the trace micro-generator's call ring in
// a profile document.
type TraceEntryXML struct {
	Seq     uint64 `xml:"seq,attr"`
	Func    string `xml:"func,attr"`
	Args    string `xml:"args,attr,omitempty"`
	DurNS   int64  `xml:"dur_ns,attr"`
	Outcome string `xml:"outcome,attr"`
}

// TraceXML is the optional <trace> element of a profile log, wrapping the
// recorded call ring (see LatencyXML for why it is a wrapper struct).
type TraceXML struct {
	Calls []TraceEntryXML `xml:"call"`
}

// FuncProfile is one wrapped function's statistics in a profile log. The
// observability fields (Passed, Substituted, Latency) are optional: a
// document emitted before they existed unmarshals with zero values, and a
// reader that predates them ignores the extra attributes and elements —
// both directions stay compatible without a schema version bump.
type FuncProfile struct {
	Name        string `xml:"name,attr"`
	Calls       uint64 `xml:"calls,attr"`
	ExecNS      int64  `xml:"exec_ns,attr"`
	Denied      uint64 `xml:"denied,attr,omitempty"`
	Passed      uint64 `xml:"passed,attr,omitempty"`
	Substituted uint64 `xml:"substituted,attr,omitempty"`
	// Containment counters (omitempty like the observability fields, so
	// pre-containment readers and the compat golden stay unaffected).
	Contained    uint64 `xml:"contained,attr,omitempty"`
	Retried      uint64 `xml:"retried,attr,omitempty"`
	BreakerTrips uint64 `xml:"breaker_trips,attr,omitempty"`
	// SilentCorrupt counts runs where this function's call completed
	// with a success status but the journal diff showed committed state
	// diverging from the golden run (omitempty: pre-sequence documents
	// and the compat golden stay byte-identical).
	SilentCorrupt uint64 `xml:"silent_corruption,attr,omitempty"`
	// ContainedBy splits Contained per failure class (empty when the
	// function never contained a fault, so old documents stay
	// byte-identical).
	ContainedBy []ClassCount `xml:"contained-class"`
	Errnos      []ErrnoCount `xml:"error"`
	Latency     *LatencyXML  `xml:"latency"`
}

// LatencyDense expands the sparse serialized latency buckets into a dense
// gen.HistBuckets-length histogram ready for element-wise merging and
// quantile queries; it returns nil when the document carries no latency
// data (a pre-observability profile).
func (f *FuncProfile) LatencyDense() []uint64 {
	if f.Latency == nil || len(f.Latency.Buckets) == 0 {
		return nil
	}
	h := make([]uint64, gen.HistBuckets)
	for _, b := range f.Latency.Buckets {
		if b.Bucket >= 0 && b.Bucket < gen.HistBuckets {
			h[b.Bucket] += b.Count
		}
	}
	return h
}

// ProfileLog is the profiling wrapper's end-of-run document (Fig. 5),
// extended with the optional observability elements: per-function latency
// histograms and the bounded call-trace ring.
type ProfileLog struct {
	XMLName   xml.Name      `xml:"healers-profile"`
	Host      string        `xml:"host,attr"`
	App       string        `xml:"app,attr"`
	Wrapper   string        `xml:"wrapper,attr"`
	Generated string        `xml:"generated,attr,omitempty"`
	Funcs     []FuncProfile `xml:"function"`
	Global    []ErrnoCount  `xml:"global-error"`
	Trace     *TraceXML     `xml:"trace"`
	Overflows uint64        `xml:"overflows,attr,omitempty"`
}

// TraceEntries returns the document's recorded call ring, oldest first;
// nil when the document carries no trace element.
func (l *ProfileLog) TraceEntries() []TraceEntryXML {
	if l.Trace == nil {
		return nil
	}
	return l.Trace.Calls
}

// NewProfileLog snapshots a wrapper State into its document form. The
// State must be quiesced (no concurrent probe processes mutating it);
// the snapshot folds any pending capture-shard deltas first, so the
// document sees the merged totals.
func NewProfileLog(host, app string, st *gen.State) *ProfileLog {
	st.Sync()
	log := &ProfileLog{
		Host:      host,
		App:       app,
		Wrapper:   st.Soname,
		Generated: timestamp(),
		Overflows: st.Overflows,
	}
	for i, name := range st.FuncNames() {
		fp := FuncProfile{
			Name:          name,
			Calls:         st.CallCount[i],
			ExecNS:        st.ExecTime[i].Nanoseconds(),
			Denied:        st.DeniedCount[i],
			Passed:        st.PassedCount[i],
			Substituted:   st.SubstCount[i],
			Contained:     st.ContainedCount[i],
			Retried:       st.RetriedCount[i],
			BreakerTrips:  st.BreakerTrips[i],
			SilentCorrupt: st.CorruptionCount[i],
		}
		for c, cnt := range st.ContainedByClass[i] {
			if cnt > 0 {
				fp.ContainedBy = append(fp.ContainedBy, ClassCount{
					Class: gen.FailureClass(c).String(),
					Count: cnt,
				})
			}
		}
		for e, cnt := range st.FuncErrno[i] {
			if cnt > 0 {
				fp.Errnos = append(fp.Errnos, ErrnoCount{Errno: errnoLabel(int32(e)), Count: cnt})
			}
		}
		for b, cnt := range st.ExecHist[i] {
			if cnt > 0 {
				if fp.Latency == nil {
					fp.Latency = &LatencyXML{}
				}
				fp.Latency.Buckets = append(fp.Latency.Buckets, HistBucketXML{Bucket: b, Count: cnt})
			}
		}
		log.Funcs = append(log.Funcs, fp)
	}
	for e, cnt := range st.GlobalErrno {
		if cnt > 0 {
			log.Global = append(log.Global, ErrnoCount{Errno: errnoLabel(int32(e)), Count: cnt})
		}
	}
	for _, t := range st.Trace() {
		if log.Trace == nil {
			log.Trace = &TraceXML{}
		}
		log.Trace.Calls = append(log.Trace.Calls, TraceEntryXML{
			Seq:     t.Seq,
			Func:    t.Func,
			Args:    t.Args,
			DurNS:   t.Dur.Nanoseconds(),
			Outcome: t.Outcome,
		})
	}
	return log
}

// TotalCalls sums the per-function call counts.
func (l *ProfileLog) TotalCalls() uint64 {
	var n uint64
	for _, f := range l.Funcs {
		n += f.Calls
	}
	return n
}

func errnoLabel(e int32) string {
	if e == cval.MaxErrno {
		return "OTHER"
	}
	return cval.ErrnoName(e)
}

// Marshal renders any of the package's documents with the standard XML
// header and indentation.
func Marshal(doc any) ([]byte, error) {
	body, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlrep: marshal: %w", err)
	}
	return append([]byte(xml.Header), append(body, '\n')...), nil
}

// Kind sniffs a marshalled document's kind from its root element.
func Kind(data []byte) (DocKind, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("xmlrep: sniffing document kind: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			switch se.Name.Local {
			case "healers-declarations":
				return KindDeclarations, nil
			case "healers-robust-api":
				return KindRobustAPI, nil
			case "healers-profile":
				return KindProfile, nil
			case "healers-campaign-cache":
				return KindCampaignCache, nil
			case "healers-sequence-report":
				return KindSequenceReport, nil
			case "healers-policy":
				return KindPolicy, nil
			case "healers-policy-request":
				return KindPolicyRequest, nil
			case "healers-policy-ack":
				return KindPolicyAck, nil
			case "healers-work-request":
				return KindWorkRequest, nil
			case "healers-work-lease":
				return KindWorkLease, nil
			case "healers-work-result":
				return KindWorkResult, nil
			case "healers-heartbeat":
				return KindHeartbeat, nil
			case "healers-work-ack":
				return KindWorkAck, nil
			case "healers-registry-get":
				return KindRegistryGet, nil
			case "healers-registry-put":
				return KindRegistryPut, nil
			case "healers-registry-answer":
				return KindRegistryAnswer, nil
			case "healers-registry-ack":
				return KindRegistryAck, nil
			default:
				return "", fmt.Errorf("xmlrep: unknown document root %q", se.Name.Local)
			}
		}
	}
}

// Unmarshal parses a document of the expected type.
func Unmarshal[T any](data []byte) (*T, error) {
	var doc T
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("xmlrep: unmarshal: %w", err)
	}
	return &doc, nil
}

// timestamp renders the generation time; overridable for reproducible
// golden tests.
var now = time.Now

func timestamp() string { return now().UTC().Format(time.RFC3339) }
