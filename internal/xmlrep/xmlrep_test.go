package xmlrep

import (
	"strings"
	"testing"
	"time"

	"healers/internal/cheader"
	"healers/internal/ctypes"
	"healers/internal/cval"
	"healers/internal/gen"
)

func fixedNow(t *testing.T) {
	t.Helper()
	old := now
	now = func() time.Time { return time.Date(2003, 6, 22, 12, 0, 0, 0, time.UTC) }
	t.Cleanup(func() { now = old })
}

func TestDeclarationsRoundTrip(t *testing.T) {
	fixedNow(t)
	strcpy, err := cheader.ParsePrototype("char *strcpy(char *dest, const char *src); // @dest out_buf src=src nul @src in_str")
	if err != nil {
		t.Fatal(err)
	}
	strcpy.Header = "string.h"
	randp, err := cheader.ParsePrototype("int rand(void);")
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDeclarations("libc.so.6", []*ctypes.Prototype{strcpy, randp})
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<healers-declarations library="libc.so.6"`,
		`<function name="strcpy" returns="char*" header="string.h">`,
		`<param name="dest" type="char*" role="out_buf">`,
		`<param name="src" type="const char*" role="in_str">`,
		`<function name="rand" returns="int">`,
		`generated="2003-06-22T12:00:00Z"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("declaration XML missing %q:\n%s", want, data)
		}
	}
	back, err := Unmarshal[Declarations](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Library != "libc.so.6" || len(back.Funcs) != 2 {
		t.Errorf("round trip = %+v", back)
	}
	if back.Funcs[0].Params[1].Role != "in_str" {
		t.Errorf("src role = %q", back.Funcs[0].Params[1].Role)
	}
	kind, err := Kind(data)
	if err != nil || kind != KindDeclarations {
		t.Errorf("Kind = %v, %v", kind, err)
	}
}

func TestRobustAPIRoundTrip(t *testing.T) {
	fixedNow(t)
	api := ctypes.RobustAPI{
		"strcpy": {
			{Name: "dest", Chain: "out_buf", Level: 3, LevelName: "writable_sized"},
			{Name: "src", Chain: "in_str", Level: 3, LevelName: "cstring"},
		},
		"sprintf": {
			{Name: "str", Chain: "out_buf", Level: 4, LevelName: "uncontainable"},
			{Name: "format", Chain: "fmt", Level: 3, LevelName: "fmt_no_percent_n"},
		},
	}
	doc := NewRobustAPIDoc("libc.so.6", api)
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if kind, _ := Kind(data); kind != KindRobustAPI {
		t.Errorf("Kind = %v", kind)
	}
	back, err := Unmarshal[RobustAPIDoc](data)
	if err != nil {
		t.Fatal(err)
	}
	api2, err := back.API()
	if err != nil {
		t.Fatalf("API(): %v", err)
	}
	if len(api2) != 2 {
		t.Fatalf("api funcs = %v", api2.Funcs())
	}
	d := api2["strcpy"][0]
	if d.Chain != "out_buf" || d.Level != 3 || d.LevelName != "writable_sized" {
		t.Errorf("strcpy dest = %+v", d)
	}
	u := api2["sprintf"][0]
	if u.LevelName != "uncontainable" || u.Level != len(ctypes.ChainOutBuf.Levels) {
		t.Errorf("sprintf str = %+v", u)
	}
}

func TestRobustAPIBadDoc(t *testing.T) {
	bad := &RobustAPIDoc{Funcs: []RobustFuncXML{{Name: "f", Params: []RobustParamXML{{Chain: "nope", Level: "any"}}}}}
	if _, err := bad.API(); err == nil {
		t.Error("unknown chain accepted")
	}
	bad = &RobustAPIDoc{Funcs: []RobustFuncXML{{Name: "f", Params: []RobustParamXML{{Chain: "in_str", Level: "nope"}}}}}
	if _, err := bad.API(); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestProfileLog(t *testing.T) {
	fixedNow(t)
	st := gen.NewState("libhealers_prof.so")
	i := st.Index("strlen")
	st.CallCount[i] = 42
	st.ExecTime[i] = 1500 * time.Nanosecond
	st.FuncErrno[i][cval.EINVAL] = 3
	st.GlobalErrno[cval.EINVAL] = 3
	st.GlobalErrno[cval.MaxErrno] = 1
	st.Overflows = 2

	log := NewProfileLog("node1", "textutil", st)
	data, err := Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`host="node1"`, `app="textutil"`, `wrapper="libhealers_prof.so"`,
		`<function name="strlen" calls="42" exec_ns="1500">`,
		`<error errno="EINVAL" count="3">`,
		`<global-error errno="EINVAL" count="3">`,
		`<global-error errno="OTHER" count="1">`,
		`overflows="2"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("profile XML missing %q:\n%s", want, data)
		}
	}
	back, err := Unmarshal[ProfileLog](data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCalls() != 42 {
		t.Errorf("TotalCalls = %d", back.TotalCalls())
	}
	if kind, _ := Kind(data); kind != KindProfile {
		t.Errorf("Kind = %v", kind)
	}
}

func TestKindErrors(t *testing.T) {
	if _, err := Kind([]byte("<unknown-root/>")); err == nil {
		t.Error("unknown root accepted")
	}
	if _, err := Kind([]byte("not xml at all")); err == nil {
		t.Error("non-XML accepted")
	}
}
