package victim

import (
	"strings"
	"testing"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/proc"
	"healers/internal/simelf"
	"healers/internal/wrappers"
)

// fixture builds a system with libc, all victims, and the security
// wrapper installed (but not preloaded).
func fixture(t *testing.T) *simelf.System {
	t.Helper()
	sys := simelf.NewSystem()
	if err := InstallAll(sys); err != nil {
		t.Fatal(err)
	}
	libc, _ := sys.Library(clib.LibcSoname)
	sec, _, err := wrappers.Security(libc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(sec); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRootdBenignRequest(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, RootdName, proc.WithStdin(string(BenignPacket("GET /index"))))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("benign request: %v", res)
	}
	if !strings.Contains(res.Stdout, "request logged") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if p.Env().ShellSpawned {
		t.Error("benign request spawned a shell")
	}
}

// TestRootdExploitSucceedsUndefended reproduces the first half of the
// §3.4 demo: "an attacker can hijack the control flow of a root
// privileged program by overflowing a buffer allocated on the heap. This
// results in a root shell for the attacker."
func TestRootdExploitSucceedsUndefended(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, RootdName, proc.WithStdin(string(ExploitPacket())))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() {
		t.Fatalf("exploit crashed instead of hijacking: %v", res.Fault)
	}
	if !p.Env().ShellSpawned {
		t.Fatal("exploit did not spawn a shell")
	}
	if !p.Env().Privileged {
		t.Error("rootd lost privilege")
	}
	if !strings.Contains(res.Stdout, "/bin/sh") {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

// TestRootdExploitBlockedBySecurityWrapper is the second half of the
// demo: "our security wrapper can detect such buffer overflows and
// terminate the attacker's program."
func TestRootdExploitBlockedBySecurityWrapper(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, RootdName,
		proc.WithStdin(string(ExploitPacket())),
		proc.WithPreloads(wrappers.SecuritySoname),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if !res.Crashed() {
		t.Fatalf("exploit was not stopped: %v (stdout %q)", res, res.Stdout)
	}
	if res.Fault.Kind != cmem.FaultOverflow {
		t.Errorf("fault = %v, want OVERFLOW termination", res.Fault)
	}
	if p.Env().ShellSpawned {
		t.Error("shell spawned despite the security wrapper")
	}
}

func TestRootdBenignUnderSecurityWrapper(t *testing.T) {
	// The wrapper must not break legitimate traffic.
	sys := fixture(t)
	p, err := proc.Start(sys, RootdName,
		proc.WithStdin(string(BenignPacket("GET /index"))),
		proc.WithPreloads(wrappers.SecuritySoname),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("benign request under wrapper: %v", res)
	}
	if !strings.Contains(res.Stdout, "request logged") {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestExploitPacketShape(t *testing.T) {
	pkt := ExploitPacket()
	if len(pkt) != RootdBufSize+8+4 {
		t.Errorf("packet length = %d", len(pkt))
	}
	for i := 0; i < RootdBufSize; i++ {
		if pkt[i] != 'A' {
			t.Fatalf("filler byte %d = %q", i, pkt[i])
		}
	}
	if pkt[len(pkt)-4] != 0x10 || pkt[len(pkt)-3] != 0x00 {
		t.Errorf("pointer bytes = % x", pkt[len(pkt)-4:])
	}
	// Benign packets never reach the handler slot.
	if len(BenignPacket(strings.Repeat("x", 500))) > RootdBufSize {
		t.Error("benign packet exceeds the buffer")
	}
}

func TestTextutil(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, TextutilName,
		proc.WithStdin("hello world\nthe quick brown fox\n"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("textutil: %v (stderr %q)", res, res.Stderr)
	}
	if !strings.Contains(res.Stdout, "2 lines, 6 words") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	// All strdup'ed words were freed.
	if n := p.Env().Img.Heap.Stats().InUseChunks; n != 0 {
		t.Errorf("textutil leaked %d chunks", n)
	}
}

func TestTextutilUnderSecurityWrapper(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, TextutilName,
		proc.WithStdin("wrapped run works fine\n"),
		proc.WithPreloads(wrappers.SecuritySoname))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("textutil under wrapper: %v", res)
	}
	if !strings.Contains(res.Stdout, "1 lines, 4 words") {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestStress(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, StressName)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run("25")
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("stress: %v", res)
	}
	data, ok := p.Env().FileData("stress.log")
	if !ok {
		t.Fatal("stress.log missing")
	}
	lines := strings.Count(string(data), "\n")
	if lines != 25 {
		t.Errorf("log lines = %d, want 25", lines)
	}
	if !strings.Contains(string(data), "iter 0: len=43 val=123456") {
		t.Errorf("log content = %q", string(data)[:80])
	}
	if n := p.Env().Img.Heap.Stats().InUseChunks; n != 0 {
		t.Errorf("stress leaked %d chunks", n)
	}
}

func TestStressUnderEveryWrapper(t *testing.T) {
	sys := fixture(t)
	libc, _ := sys.Library(clib.LibcSoname)
	prof, _, err := wrappers.Profiling(libc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(prof); err != nil {
		t.Fatal(err)
	}
	rob, _, err := wrappers.Robustness(libc, wrappers.StrongestAPI(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLibrary(rob); err != nil {
		t.Fatal(err)
	}
	for _, preload := range [][]string{
		nil,
		{wrappers.SecuritySoname},
		{wrappers.ProfilingSoname},
		{wrappers.SecuritySoname, wrappers.ProfilingSoname},
	} {
		p, err := proc.Start(sys, StressName, proc.WithPreloads(preload...))
		if err != nil {
			t.Fatalf("Start with %v: %v", preload, err)
		}
		res := p.Run("10")
		if res.Crashed() || res.Status != 0 {
			t.Errorf("stress with %v: %v", preload, res)
		}
	}
}

func TestInstallAllIdempotentLibc(t *testing.T) {
	sys := simelf.NewSystem()
	if err := sys.AddLibrary(clib.MustRegistry().AsLibrary()); err != nil {
		t.Fatal(err)
	}
	if err := InstallAll(sys); err != nil {
		t.Fatalf("InstallAll with preexisting libc: %v", err)
	}
	if len(sys.Executables()) != 5 {
		t.Errorf("executables = %v", sys.Executables())
	}
}

// TestStackdExploitSucceedsUndefended: the stack-smash counterpart of the
// §3.4 demo — the attacker's length header lets read() run over the saved
// return address, and the function "returns" into debug_shell.
func TestStackdExploitSucceedsUndefended(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, StackdName, proc.WithStdin(string(StackExploitPacket())))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() {
		t.Fatalf("stack exploit crashed instead of hijacking: %v", res.Fault)
	}
	if !p.Env().ShellSpawned {
		t.Fatal("stack exploit did not spawn a shell")
	}
}

func TestStackdExploitBlockedBySecurityWrapper(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, StackdName,
		proc.WithStdin(string(StackExploitPacket())),
		proc.WithPreloads(wrappers.SecuritySoname),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if !res.Crashed() || res.Fault.Kind != cmem.FaultOverflow {
		t.Fatalf("stack exploit not contained: %v (stdout %q)", res, res.Stdout)
	}
	if p.Env().ShellSpawned {
		t.Error("shell spawned despite the security wrapper")
	}
}

func TestStackdBenignBothWays(t *testing.T) {
	sys := fixture(t)
	for _, preloads := range [][]string{nil, {wrappers.SecuritySoname}} {
		p, err := proc.Start(sys, StackdName,
			proc.WithStdin(string(StackBenignPacket("GET /"))),
			proc.WithPreloads(preloads...),
		)
		if err != nil {
			t.Fatalf("Start with %v: %v", preloads, err)
		}
		res := p.Run()
		if res.Crashed() || res.Status != 0 {
			t.Fatalf("benign stackd with %v: %v", preloads, res)
		}
		if !strings.Contains(res.Stdout, "request logged") {
			t.Errorf("stdout = %q", res.Stdout)
		}
	}
}

func TestCalcTwoLibraryApp(t *testing.T) {
	sys := fixture(t)
	p, err := proc.Start(sys, CalcName, proc.WithStdin("3\n4\n5\n"))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	res := p.Run()
	if res.Crashed() || res.Status != 0 {
		t.Fatalf("calc: %v", res)
	}
	if !strings.Contains(res.Stdout, "n=3 mean=4.000 sqrt=2.000") {
		t.Errorf("stdout = %q", res.Stdout)
	}
	// The link map spans both libraries.
	if objs := p.Linkmap().Objects(); len(objs) != 2 {
		t.Errorf("objects = %v, want libc + libm", objs)
	}
	// calc with no input exits 1.
	p, _ = proc.Start(sys, CalcName)
	if res := p.Run(); res.Status != 1 {
		t.Errorf("empty input status = %d, want 1", res.Status)
	}
}
