package victim

import (
	"strconv"

	"healers/internal/clib"
	"healers/internal/cmath"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// TextutilName is the text-processing sample program.
const TextutilName = "textutil"

// textutilMain reads text from stdin line by line, tokenizes each line,
// and reports word statistics — a realistic string-heavy libc workload:
// fgets_fd, strtok, strlen, strdup, toupper, snprintf, qsort, free.
func textutilMain(c simelf.Caller, argv []string) int32 {
	env := c.Env()
	img := env.Img

	mustStr := func(s string) cval.Value {
		a, f := img.StaticString(s)
		if f != nil {
			c.Raise(f)
		}
		return cval.Ptr(a)
	}
	lineBuf, f := img.StaticAlloc(512)
	if f != nil {
		c.Raise(f)
	}
	delims := mustStr(" \t\n.,;:!?")

	var words []cval.Value // strdup'ed tokens (heap pointers)
	totalBytes := uint32(0)
	lines := 0

	for {
		got := c.MustCall("fgets_fd", cval.Ptr(lineBuf), cval.Int(512), cval.Int(0))
		if got.IsNull() {
			break
		}
		lines++
		tok := c.MustCall("strtok", cval.Ptr(lineBuf), delims)
		for !tok.IsNull() {
			words = append(words, c.MustCall("strdup", tok))
			totalBytes += c.MustCall("strlen", tok).Uint32()
			tok = c.MustCall("strtok", cval.Ptr(0), delims)
		}
	}

	// Uppercase the first word in place, character by character.
	if len(words) > 0 {
		w := words[0].Addr()
		for i := cmem.Addr(0); ; i++ {
			b, f := img.Space.ReadByteAt(w + i)
			if f != nil {
				c.Raise(f)
			}
			if b == 0 {
				break
			}
			up := c.MustCall("toupper", cval.Int(int64(b)))
			if f := img.Space.WriteByteAt(w+i, up.Byte()); f != nil {
				c.Raise(f)
			}
		}
	}

	// Sort the word pointers by first byte via qsort over an array of
	// 4-byte pointers in simulated memory.
	if n := uint32(len(words)); n > 1 {
		arr, f := img.StaticAlloc(n * 4)
		if f != nil {
			c.Raise(f)
		}
		for i, w := range words {
			if f := img.Space.WriteU32(arr+cmem.Addr(i*4), w.Uint32()); f != nil {
				c.Raise(f)
			}
		}
		cmp := env.RegisterText("word_cmp", func(e *cval.Env, args []cval.Value) (cval.Value, *cmem.Fault) {
			pa, f := e.Img.Space.ReadU32(args[0].Addr())
			if f != nil {
				return 0, f
			}
			pb, f := e.Img.Space.ReadU32(args[1].Addr())
			if f != nil {
				return 0, f
			}
			ba, f := e.Img.Space.ReadByteAt(cmem.Addr(pa))
			if f != nil {
				return 0, f
			}
			bb, f := e.Img.Space.ReadByteAt(cmem.Addr(pb))
			if f != nil {
				return 0, f
			}
			return cval.Int(int64(int32(ba) - int32(bb))), nil
		})
		c.MustCall("qsort", cval.Ptr(arr), cval.Uint(uint64(n)), cval.Uint(4), cval.Ptr(cmp))
	}

	// Report via bounded formatting.
	report, f := img.StaticAlloc(128)
	if f != nil {
		c.Raise(f)
	}
	c.MustCall("snprintf", cval.Ptr(report), cval.Uint(128),
		mustStr("%d lines, %d words, %u bytes\n"),
		cval.Int(int64(lines)), cval.Int(int64(len(words))), cval.Uint(uint64(totalBytes)))
	c.MustCall("puts", cval.Ptr(report))

	for _, w := range words {
		c.MustCall("free", w)
	}
	// Terminate through exit(), as real programs do — this is what
	// triggers the profiling wrapper's end-of-run collection upload.
	c.MustCall("exit", cval.Int(0))
	return 0
}

// Textutil returns the text-processing executable.
func Textutil() *simelf.Executable {
	return &simelf.Executable{
		Name:      TextutilName,
		Interp:    "sim-ld.so",
		Needed:    []string{clib.LibcSoname},
		Undefined: []string{"fgets_fd", "strtok", "strdup", "strlen", "toupper", "qsort", "snprintf", "puts", "free"},
		Main:      textutilMain,
	}
}

// StressName is the mixed-workload sample program.
const StressName = "stress"

// stressMain runs argv[1] (default 100) deterministic iterations of a
// mixed libc call pattern: allocation, string copies, conversion,
// classification, formatted output to a file.
func stressMain(c simelf.Caller, argv []string) int32 {
	env := c.Env()
	img := env.Img

	iters := 100
	if len(argv) > 1 {
		if n, err := strconv.Atoi(argv[1]); err == nil && n > 0 {
			iters = n
		}
	}
	mustStr := func(s string) cval.Value {
		a, f := img.StaticString(s)
		if f != nil {
			c.Raise(f)
		}
		return cval.Ptr(a)
	}
	src := mustStr("the quick brown fox jumps over the lazy dog")
	numstr := mustStr("123456")
	fmtStr := mustStr("iter %d: len=%u val=%d\n")

	logName := mustStr("stress.log")
	fd := c.MustCall("open", logName, cval.Int(int64(1|0x40))) // O_WRONLY|O_CREAT
	if fd.Int32() < 0 {
		return 1
	}

	c.MustCall("srand", cval.Uint(42))
	var acc int64
	for i := 0; i < iters; i++ {
		buf := c.MustCall("malloc", cval.Uint(128))
		if buf.IsNull() {
			return 1
		}
		c.MustCall("strcpy", buf, src)
		n := c.MustCall("strlen", buf)
		val := c.MustCall("atoi", numstr)
		acc += int64(c.MustCall("rand").Int32()) % 7
		up := c.MustCall("toupper", cval.Int(int64('a'+i%26)))
		acc += int64(up.Int32())
		if c.MustCall("isalpha", up) == 0 {
			return 2
		}
		c.MustCall("fprintf", fd, fmtStr, cval.Int(int64(i)), n, val)
		c.MustCall("free", buf)
	}
	c.MustCall("close", fd)
	return 0
}

// Stress returns the mixed-workload executable.
func Stress() *simelf.Executable {
	return &simelf.Executable{
		Name:      StressName,
		Interp:    "sim-ld.so",
		Needed:    []string{clib.LibcSoname},
		Undefined: []string{"malloc", "strcpy", "strlen", "atoi", "rand", "srand", "toupper", "isalpha", "fprintf", "open", "close", "free"},
		Main:      stressMain,
	}
}

// InstallAll installs every victim application plus the simulated libc
// and libm into a system. It is the standard fixture the demos, examples,
// and benchmarks start from.
func InstallAll(sys *simelf.System) error {
	if _, ok := sys.Library(clib.LibcSoname); !ok {
		reg, err := clib.NewRegistry()
		if err != nil {
			return err
		}
		if err := sys.AddLibrary(reg.AsLibrary()); err != nil {
			return err
		}
	}
	if _, ok := sys.Library(cmath.Soname); !ok {
		libm, err := cmath.AsLibrary()
		if err != nil {
			return err
		}
		if err := sys.AddLibrary(libm); err != nil {
			return err
		}
	}
	for _, exe := range []*simelf.Executable{Rootd(), Stackd(), Textutil(), Stress(), Calc()} {
		if err := sys.AddExecutable(exe); err != nil {
			return err
		}
	}
	return nil
}
