package victim

import (
	"healers/internal/clib"
	"healers/internal/cmath"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// CalcName is the two-library sample program: it links against both
// libc.so.6 and libm.so.6, so the application-centric scan (Fig. 4) shows
// a multi-library link map.
const CalcName = "calc"

// calcMain reads one number per line from stdin, then prints the count,
// the mean, and the square root of the mean.
func calcMain(c simelf.Caller, argv []string) int32 {
	env := c.Env()
	img := env.Img

	lineBuf, f := img.StaticAlloc(128)
	if f != nil {
		c.Raise(f)
	}
	var sum float64
	n := 0
	for {
		got := c.MustCall("fgets_fd", cval.Ptr(lineBuf), cval.Int(128), cval.Int(0))
		if got.IsNull() {
			break
		}
		v := c.MustCall("atof", cval.Ptr(lineBuf))
		sum += cmath.Float(v)
		n++
	}
	if n == 0 {
		return 1
	}
	mean := sum / float64(n)
	root := c.MustCall("sqrt", cmath.Bits(mean))

	fmtStr, f := img.StaticString("n=%d mean=%.3f sqrt=%.3f\n")
	if f != nil {
		c.Raise(f)
	}
	out, f := img.StaticAlloc(128)
	if f != nil {
		c.Raise(f)
	}
	c.MustCall("snprintf", cval.Ptr(out), cval.Uint(128), cval.Ptr(fmtStr),
		cval.Int(int64(n)), cmath.Bits(mean), root)
	c.MustCall("puts", cval.Ptr(out))
	return 0
}

// Calc returns the two-library executable image.
func Calc() *simelf.Executable {
	return &simelf.Executable{
		Name:      CalcName,
		Interp:    "sim-ld.so",
		Needed:    []string{clib.LibcSoname, cmath.Soname},
		Undefined: []string{"fgets_fd", "atof", "sqrt", "snprintf", "puts"},
		Main:      calcMain,
	}
}
