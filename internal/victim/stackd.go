package victim

import (
	"encoding/binary"
	"fmt"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// stackd is the stack-smashing counterpart of rootd: a daemon whose
// request handler keeps the request in a fixed-size *stack* buffer and
// trusts an attacker-supplied length — the classic stack smash of
// Baratloo/Singh/Tsai (the paper's reference [1]). The attacker overflows
// the local buffer up to the frame's saved return address; on return the
// hijacked address is "executed".
//
// The security wrapper's stack guards (canary between locals and the
// return slot, verified after every intercepted call) detect the smash
// before the function can return through it.

// StackdName is the stack-smash daemon's executable name.
const StackdName = "stackd"

// StackdBufSize is the stack request buffer's size.
const StackdBufSize = 64

// stackdRetOffset is where the saved return address lands relative to the
// local buffer in an *unguarded* frame: [locals 64][ret 8].
const stackdRetOffset = StackdBufSize

func stackdMain(c simelf.Caller, argv []string) int32 {
	env := c.Env()

	env.RegisterText("log_request", func(e *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
		e.Stdout.WriteString("stackd: request logged\n")
		return 0, nil
	})
	debugShell := env.RegisterText("debug_shell", func(e *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
		cmd, f := e.Img.StaticString("/bin/sh")
		if f != nil {
			return 0, f
		}
		return c.Call("system", cval.Ptr(cmd))
	})
	logHandler := cval.TextBase // first registration above

	// Read the 4-byte length header ("network" framing). This first
	// intercepted call is also what arms the wrapper's defences, so the
	// handler frame below is born guarded when the wrapper is loaded.
	hdr, f := env.Img.StaticAlloc(4)
	if f != nil {
		c.Raise(f)
	}

	if len(argv) > 1 && argv[1] == RootdStreamFlag {
		// Streaming mode for the chaos soak: serve length-framed requests
		// in a loop until EOF. The explicit framing keeps a multi-request
		// stream aligned; negative reads (contained faults surfaced as
		// errnos) are retried so the protected daemon keeps serving.
		fails := 0
		for {
			n := c.MustCall("read", cval.Int(0), cval.Ptr(hdr), cval.Uint(4))
			if n.Int32() < 0 {
				// Transient (contained) error: retry, bounded so an
				// open circuit breaker ends the daemon instead of
				// spinning it.
				if fails++; fails > streamRetryBudget {
					return 2
				}
				continue
			}
			fails = 0
			if n.Int32() != 4 {
				return 0
			}
			reqLen, f := env.Img.Space.ReadU32(hdr)
			if f != nil {
				c.Raise(f)
			}
			locals, f := env.Img.Stack.PushFrame(StackdBufSize, uint64(logHandler))
			if f != nil {
				c.Raise(f)
			}
			var m cval.Value
			for {
				m = c.MustCall("read", cval.Int(0), cval.Ptr(locals), cval.Uint(uint64(reqLen)))
				if m.Int32() >= 0 {
					break
				}
				if fails++; fails > streamRetryBudget {
					break
				}
			}
			ret, f := env.Img.Stack.PopFrame()
			if f != nil {
				c.Raise(f)
			}
			if m.Int32() < 0 {
				return 2
			}
			fails = 0
			if m.Int32() == 0 {
				return 0
			}
			if _, f := env.CallIndirect(cval.Ptr(cmem.Addr(ret)), nil); f != nil {
				c.Raise(f)
			}
		}
	}

	if n := c.MustCall("read", cval.Int(0), cval.Ptr(hdr), cval.Uint(4)); n.Int32() != 4 {
		return 1
	}
	reqLen, f := env.Img.Space.ReadU32(hdr)
	if f != nil {
		c.Raise(f)
	}

	// Enter the request handler: a frame with a 64-byte local buffer
	// whose "return address" is the log handler.
	locals, f := env.Img.Stack.PushFrame(StackdBufSize, uint64(logHandler))
	if f != nil {
		c.Raise(f)
	}

	// THE BUG: read reqLen bytes into the 64-byte stack buffer.
	if n := c.MustCall("read", cval.Int(0), cval.Ptr(locals), cval.Uint(uint64(reqLen))); n.Int32() <= 0 {
		return 1
	}

	// Leave the handler: pop the frame and "return" through the saved
	// address.
	ret, f := env.Img.Stack.PopFrame()
	if f != nil {
		c.Raise(f)
	}
	if _, f := env.CallIndirect(cval.Ptr(cmem.Addr(ret)), nil); f != nil {
		c.Raise(f)
	}
	_ = debugShell
	return 0
}

// StackExploitPacket crafts the stack-smash request: a length header
// claiming enough bytes to reach the return slot, then filler up to the
// slot and the debug_shell address as the new "return address". The
// offsets assume the unguarded frame layout, as a real exploit would.
func StackExploitPacket() []byte {
	payload := make([]byte, stackdRetOffset+8)
	for i := 0; i < stackdRetOffset; i++ {
		payload[i] = 'A'
	}
	binary.LittleEndian.PutUint64(payload[stackdRetOffset:], uint64(RootdDebugShellAddr))
	pkt := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(pkt, uint32(len(payload)))
	return append(pkt, payload...)
}

// StackBenignPacket crafts a well-formed stackd request.
func StackBenignPacket(msg string) []byte {
	if len(msg) > StackdBufSize {
		msg = msg[:StackdBufSize]
	}
	pkt := make([]byte, 4, 4+len(msg))
	binary.LittleEndian.PutUint32(pkt, uint32(len(msg)))
	return append(pkt, msg...)
}

// StackStreamTraffic builds n benign length-framed streaming requests
// for stackd's streaming mode.
func StackStreamTraffic(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, StackBenignPacket(fmt.Sprintf("req-%06d", i))...)
	}
	return out
}

// Stackd returns the stack-smash daemon's executable image.
func Stackd() *simelf.Executable {
	return &simelf.Executable{
		Name:       StackdName,
		Interp:     "sim-ld.so",
		Needed:     []string{clib.LibcSoname},
		Undefined:  []string{"read", "system"},
		Privileged: true,
		Main:       stackdMain,
	}
}
