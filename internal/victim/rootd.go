// Package victim provides the sample applications the HEALERS demos run
// against:
//
//   - rootd: the root-privileged network daemon of the §3.4 demonstration
//     with a classic heap buffer overflow — a request handler copies an
//     attacker-controlled packet into a fixed 64-byte heap buffer sitting
//     right below a function pointer, then jumps through that pointer
//     (the structure of the published exploit in Fetzer & Xiao, SRDS'01);
//   - textutil: a string-heavy text-processing program for the profiling
//     demo (Fig. 5) and the overhead benchmarks;
//   - stress: a deterministic mixed libc workload for macro benchmarks.
package victim

import (
	"encoding/binary"
	"fmt"

	"healers/internal/clib"
	"healers/internal/cmem"
	"healers/internal/cval"
	"healers/internal/simelf"
)

// Rootd layout constants — "known to the attacker", as real binary
// layouts are.
const (
	// RootdBufSize is the request buffer's size.
	RootdBufSize = 64
	// rootdRecvMax is the size of the scratch receive buffer.
	rootdRecvMax = 256
)

// RootdName is the vulnerable daemon's executable name.
const RootdName = "rootd"

// rootdHandlerOffset is where the handler function pointer lands relative
// to the request buffer when the daemon runs *without* heap canaries:
// [buf 64][next chunk hdr 8][handler 4] — the pointer sits 72 bytes past
// the buffer base. The attacker hardcodes this, exactly like a real
// exploit hardcodes chunk layout.
const rootdHandlerOffset = RootdBufSize + 8

// RootdDebugShellAddr is the text address of rootd's debug_shell handler:
// the second registration after log_request.
const RootdDebugShellAddr = cval.TextBase + cval.TextStep

// RootdStreamFlag switches rootd into streaming mode (argv[1]): instead
// of one raw packet, the daemon serves requests in a loop, reading up to
// RootdBufSize bytes per request off the stream until EOF — the
// long-running server shape the chaos soak drives. A negative read
// (a contained, errno-virtualized fault) is retried like a real daemon
// retries EINTR; only EOF ends the loop.
const RootdStreamFlag = "-stream"

// streamRetryBudget bounds consecutive failed reads in streaming mode:
// past it the daemon concludes the errors are permanent (a tripped
// circuit breaker, not transient faults) and exits with status 2.
const streamRetryBudget = 128

// rootdMain is the daemon: receive a packet, copy it into the connection
// buffer (the bug: no bound check), then dispatch through the handler
// pointer.
func rootdMain(c simelf.Caller, argv []string) int32 {
	env := c.Env()

	// The daemon's request handlers live in its text segment. The
	// developers also left in a debug handler that drops to a shell —
	// dead code, but present at a known address.
	logHandler := env.RegisterText("log_request", func(e *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
		e.Stdout.WriteString("rootd: request logged\n")
		return 0, nil
	})
	debugShell := env.RegisterText("debug_shell", func(e *cval.Env, _ []cval.Value) (cval.Value, *cmem.Fault) {
		cmd, f := e.Img.StaticString("/bin/sh")
		if f != nil {
			return 0, f
		}
		// Even the debug handler calls system through the PLT.
		return c.Call("system", cval.Ptr(cmd))
	})
	if debugShell != RootdDebugShellAddr {
		// The exploit hardcodes this address; if the layout drifts the
		// demo must fail loudly rather than silently test nothing.
		panic(fmt.Sprintf("victim: debug_shell at %s, expected %s", debugShell, RootdDebugShellAddr))
	}

	stream := len(argv) > 1 && argv[1] == RootdStreamFlag

	// Connection state: a request buffer and, immediately after it on
	// the heap, the handler function pointer. In streaming mode a NULL
	// return is a transient contained fault, so the allocation is
	// retried (bounded) like the read loop below.
	alloc := func(size uint64) cval.Value {
		p := c.MustCall("malloc", cval.Uint(size))
		for i := 0; stream && p.IsNull() && i < streamRetryBudget; i++ {
			p = c.MustCall("malloc", cval.Uint(size))
		}
		return p
	}
	buf := alloc(RootdBufSize)
	handlerSlot := alloc(4)
	if buf.IsNull() || handlerSlot.IsNull() {
		return 1
	}
	if f := env.Img.Space.WriteU32(handlerSlot.Addr(), uint32(logHandler)); f != nil {
		c.Raise(f)
	}

	// Receive the "network" packet (stdin stands in for the socket).
	recvBuf, f := env.Img.StaticAlloc(rootdRecvMax)
	if f != nil {
		c.Raise(f)
	}

	// dispatch routes one received request through the (possibly
	// clobbered) handler pointer.
	dispatch := func() {
		ptr, f := env.Img.Space.ReadU32(handlerSlot.Addr())
		if f != nil {
			c.Raise(f)
		}
		if _, f := env.CallIndirect(cval.Ptr(cmem.Addr(ptr)), nil); f != nil {
			c.Raise(f)
		}
	}

	if stream {
		// Streaming mode: serve fixed-size request chunks until the
		// stream closes. Reads are bounded by the buffer size, so benign
		// streamed traffic never overflows — the chaos soak's adversary
		// is sustained fault injection, not the packet smash.
		fails := 0
		for {
			n := c.MustCall("read", cval.Int(0), cval.Ptr(recvBuf), cval.Uint(RootdBufSize))
			if n.Int32() < 0 {
				// A contained fault surfaced as an errno: retry, like a
				// real daemon retries EINTR — but give up when the
				// errors never stop (an open circuit breaker), rather
				// than spin forever.
				if fails++; fails > streamRetryBudget {
					return 2
				}
				continue
			}
			fails = 0
			if n.Int32() == 0 {
				return 0
			}
			c.MustCall("memcpy", buf, cval.Ptr(recvBuf), cval.Uint(uint64(uint32(n.Int32()))))
			dispatch()
		}
	}

	n := c.MustCall("read", cval.Int(0), cval.Ptr(recvBuf), cval.Uint(rootdRecvMax))
	if n.Int32() <= 0 {
		return 1
	}

	// THE BUG: copy n bytes into a 64-byte buffer.
	c.MustCall("memcpy", buf, cval.Ptr(recvBuf), cval.Uint(uint64(uint32(n.Int32()))))

	dispatch()
	return 0
}

// ExploitPacket crafts the heap-smash packet: fill the request buffer,
// ride over the next chunk's header, and overwrite the handler pointer
// with debug_shell's address.
func ExploitPacket() []byte {
	pkt := make([]byte, rootdHandlerOffset+4)
	for i := 0; i < rootdHandlerOffset; i++ {
		pkt[i] = 'A'
	}
	binary.LittleEndian.PutUint32(pkt[rootdHandlerOffset:], uint32(RootdDebugShellAddr))
	return pkt
}

// BenignPacket crafts a well-behaved request.
func BenignPacket(msg string) []byte {
	if len(msg) >= RootdBufSize {
		msg = msg[:RootdBufSize-1]
	}
	return []byte(msg + "\x00")
}

// StreamTraffic builds n benign streaming-mode requests: each is exactly
// RootdBufSize bytes (a NUL-padded message), so every read of the
// streaming daemon serves exactly one request even though reads coalesce
// on the byte stream.
func StreamTraffic(n int) []byte {
	out := make([]byte, 0, n*RootdBufSize)
	for i := 0; i < n; i++ {
		req := make([]byte, RootdBufSize)
		copy(req, fmt.Sprintf("req-%06d", i))
		out = append(out, req...)
	}
	return out
}

// Rootd returns the daemon's executable image.
func Rootd() *simelf.Executable {
	return &simelf.Executable{
		Name:       RootdName,
		Interp:     "sim-ld.so",
		Needed:     []string{clib.LibcSoname},
		Undefined:  []string{"malloc", "read", "memcpy", "system"},
		Privileged: true,
		Main:       rootdMain,
	}
}
