package cmem

import "fmt"

// heap chunk layout in simulated memory:
//
//	chunk base:  +0  size   (uint32, whole chunk including header)
//	             +4  magic  (uint32, chunkMagic when in use, freeMagic when free)
//	user data:   +8  ... requested bytes, rounded up to 8 ...
//	canary:      last 8 bytes of the chunk when canaries are enabled
//
// The allocator keeps an authoritative Go-side chunk list (a corrupted
// application cannot confuse the allocator itself), but it mirrors the
// header into simulated memory so that header-smashing attacks are visible
// to integrity checks, exactly like the fault-containment wrappers of
// Fetzer & Xiao (SRDS 2001) observed real dlmalloc headers.
const (
	chunkHeader = 8
	chunkAlign  = 8
	chunkMagic  = 0x48454150 // "HEAP"
	freeMagic   = 0x46524545 // "FREE"
	canarySize  = 8
	minChunk    = chunkHeader + chunkAlign
	// mallocFill is the deterministic junk pattern written into fresh
	// allocations; C malloc returns garbage, and a recognizable pattern
	// makes use-of-uninitialized bugs visible in tests.
	mallocFill = 0xcd
)

// chunk is the allocator's Go-side record of one region of the heap.
type chunk struct {
	base Addr // address of the header
	size uint32
	used bool
	// req is the size the application asked for; the usable tail beyond
	// req (alignment padding) is still inside the chunk.
	req uint32

	prev, next *chunk // address-ordered neighbours
}

// user returns the address handed to the application.
func (c *chunk) user() Addr { return c.base + chunkHeader }

// canaryAddr returns the address of the chunk's trailing canary.
func (c *chunk) canaryAddr() Addr { return c.base + Addr(c.size) - canarySize }

// HeapStats summarizes allocator activity for profiling reports.
type HeapStats struct {
	Mallocs     uint64
	Frees       uint64
	Reallocs    uint64
	BytesAlloc  uint64 // cumulative bytes requested
	InUseBytes  uint64 // currently requested bytes
	InUseChunks int
	BrkBytes    uint32 // total heap span obtained from the space
	FailedAlloc uint64 // allocations that returned NULL
}

// Heap is a first-fit boundary-tag allocator over a Space region. The zero
// value is not usable; construct with NewHeap.
type Heap struct {
	sp    *Space
	base  Addr
	limit Addr
	brk   Addr // end of the chunk arena (page-mapped up to brkMapped)

	head     *chunk // address-ordered chunk list
	tail     *chunk
	byUser   map[Addr]*chunk // user addr -> in-use chunk
	canaries bool
	secret   uint64

	stats HeapStats
}

// NewHeap creates a heap managing [base, limit) of sp. Canaries are
// disabled by default; enable them with SetCanaries (the security wrapper
// does so when installed).
func NewHeap(sp *Space, base, limit Addr) *Heap {
	return &Heap{
		sp:     sp,
		base:   base,
		limit:  limit,
		brk:    base,
		byUser: make(map[Addr]*chunk),
		// A fixed odd secret keeps runs reproducible; the defence
		// does not rely on secrecy in the simulation, only on the
		// attacker's overflow being oblivious.
		secret: 0x9e3779b97f4a7c15,
	}
}

// SetCanaries toggles canary placement for future allocations. Existing
// chunks keep whatever guard they were born with (each chunk remembers via
// its size; see canaried map below — chunks allocated without canaries are
// never canary-checked).
func (h *Heap) SetCanaries(on bool) { h.canaries = on }

// CanariesEnabled reports whether new allocations receive canaries.
func (h *Heap) CanariesEnabled() bool { return h.canaries }

// canaryValue derives the guard word for a chunk.
func (h *Heap) canaryValue(base Addr) uint64 {
	v := h.secret ^ (uint64(base) * 0x100000001b3)
	if v == 0 {
		v = h.secret
	}
	return v
}

func round8(n uint32) uint32 { return (n + chunkAlign - 1) &^ (chunkAlign - 1) }

// chunkSpan computes the whole-chunk size for a request of n bytes under
// the current canary setting.
func (h *Heap) chunkSpan(n uint32) uint32 {
	sz := chunkHeader + round8(n)
	if n == 0 {
		sz = chunkHeader + chunkAlign // malloc(0) returns a unique pointer
	}
	if h.canaries {
		sz += canarySize
	}
	return sz
}

// grow extends the arena so that at least need more bytes exist past brk.
// Returns false on exhaustion (C malloc returns NULL then).
func (h *Heap) grow(need uint32) bool {
	end := h.brk + Addr(need)
	if end < h.brk || end > h.limit {
		return false
	}
	// Map any pages in [brk, end) that are not yet mapped.
	firstUnmapped := h.brk
	if off := uint32(firstUnmapped) & pageMask; off != 0 {
		firstUnmapped += Addr(PageSize - off)
	}
	if end > firstUnmapped {
		span := uint32(end - firstUnmapped)
		span = (span + pageMask) &^ uint32(pageMask)
		if f := h.sp.Map(firstUnmapped, span, ProtRW); f != nil {
			return false
		}
		h.stats.BrkBytes += span
	}
	h.brk = end
	return true
}

// exemptFuel runs fn with the access budget disarmed: the allocator's own
// bookkeeping writes are below the instrumentation boundary and must not
// count against a probe's fuel (a real malloc's metadata writes are not
// what a probe timeout measures).
func (h *Heap) exemptFuel(fn func() *Fault) *Fault {
	saved := h.sp.fuel
	h.sp.fuel = -1
	f := fn()
	h.sp.fuel = saved
	return f
}

// writeHeader mirrors the chunk header into simulated memory.
func (h *Heap) writeHeader(c *chunk) {
	magic := uint32(freeMagic)
	if c.used {
		magic = chunkMagic
	}
	// The arena is always mapped RW; ignore impossible faults loudly.
	f := h.exemptFuel(func() *Fault {
		if f := h.sp.WriteU32(c.base, c.size); f != nil {
			return f
		}
		return h.sp.WriteU32(c.base+4, magic)
	})
	if f != nil {
		panic(fmt.Sprintf("cmem: heap arena unmapped at %s: %v", c.base, f))
	}
}

// Malloc allocates n bytes and returns the user pointer, or 0 (NULL) on
// exhaustion — C semantics, no fault.
func (h *Heap) Malloc(n uint32) Addr {
	span := h.chunkSpan(n)
	if span < n { // overflow of the size arithmetic: C would return NULL
		h.stats.FailedAlloc++
		return 0
	}
	c := h.findFit(span)
	if c == nil {
		c = h.extend(span)
		if c == nil {
			h.stats.FailedAlloc++
			return 0
		}
	} else {
		h.split(c, span)
	}
	c.used = true
	c.req = n
	h.writeHeader(c)
	h.byUser[c.user()] = c
	// Junk-fill the user area and place the canary, fuel-exempt.
	f := h.exemptFuel(func() *Fault {
		for i := uint32(0); i < round8(max32(n, 1)); i++ {
			if f := h.sp.WriteByteAt(c.user()+Addr(i), mallocFill); f != nil {
				return f
			}
		}
		if h.hasCanary(c) {
			return h.sp.WriteU64(c.canaryAddr(), h.canaryValue(c.base))
		}
		return nil
	})
	if f != nil {
		panic(fmt.Sprintf("cmem: heap arena unmapped: %v", f))
	}
	h.stats.Mallocs++
	h.stats.BytesAlloc += uint64(n)
	h.stats.InUseBytes += uint64(n)
	h.stats.InUseChunks++
	return c.user()
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// hasCanary reports whether chunk c was allocated with a trailing canary.
// A chunk has one iff its span exceeds header+rounded-request.
func (h *Heap) hasCanary(c *chunk) bool {
	return c.size >= chunkHeader+round8(max32(c.req, 1))+canarySize
}

// findFit returns the first free chunk with size >= span.
func (h *Heap) findFit(span uint32) *chunk {
	for c := h.head; c != nil; c = c.next {
		if !c.used && c.size >= span {
			return c
		}
	}
	return nil
}

// split carves span bytes off the front of free chunk c, leaving any
// remainder as a new free chunk.
func (h *Heap) split(c *chunk, span uint32) {
	if c.size >= span+minChunk {
		rest := &chunk{
			base: c.base + Addr(span),
			size: c.size - span,
			prev: c,
			next: c.next,
		}
		if c.next != nil {
			c.next.prev = rest
		} else {
			h.tail = rest
		}
		c.next = rest
		c.size = span
		h.writeHeader(rest)
	}
}

// extend appends a fresh chunk of exactly span bytes at brk.
func (h *Heap) extend(span uint32) *chunk {
	base := h.brk
	if !h.grow(span) {
		return nil
	}
	c := &chunk{base: base, size: span, prev: h.tail}
	if h.tail != nil {
		h.tail.next = c
	} else {
		h.head = c
	}
	h.tail = c
	return c
}

// Free releases the allocation at user address p. free(NULL) is a no-op.
// Freeing a pointer that is not a live allocation — including a double
// free — is a SIGABRT, matching glibc's "invalid pointer" abort. When the
// chunk carries a canary it is verified first; a clobbered canary is a
// FaultOverflow (this is the detection point of the security wrapper's
// heap-smash defence).
func (h *Heap) Free(p Addr) *Fault {
	if p.IsNull() {
		return nil
	}
	c, ok := h.byUser[p]
	if !ok {
		return abort("free", p, "invalid or double free")
	}
	if f := h.checkChunk(c); f != nil {
		return f
	}
	delete(h.byUser, p)
	c.used = false
	h.stats.Frees++
	h.stats.InUseBytes -= uint64(c.req)
	h.stats.InUseChunks--
	c.req = 0
	h.coalesce(c)
	return nil
}

// coalesce merges c with free neighbours.
func (h *Heap) coalesce(c *chunk) {
	if n := c.next; n != nil && !n.used && n.base == c.base+Addr(c.size) {
		c.size += n.size
		c.next = n.next
		if n.next != nil {
			n.next.prev = c
		} else {
			h.tail = c
		}
	}
	if p := c.prev; p != nil && !p.used && c.base == p.base+Addr(p.size) {
		p.size += c.size
		p.next = c.next
		if c.next != nil {
			c.next.prev = p
		} else {
			h.tail = p
		}
		c = p
	}
	h.writeHeader(c)
}

// Realloc resizes the allocation at p to n bytes, C semantics:
// realloc(NULL, n) is malloc(n); realloc(p, 0) frees and returns NULL;
// an invalid p aborts.
func (h *Heap) Realloc(p Addr, n uint32) (Addr, *Fault) {
	if p.IsNull() {
		return h.Malloc(n), nil
	}
	if n == 0 {
		if f := h.Free(p); f != nil {
			return 0, f
		}
		return 0, nil
	}
	c, ok := h.byUser[p]
	if !ok {
		return 0, abort("realloc", p, "invalid pointer")
	}
	if f := h.checkChunk(c); f != nil {
		return 0, f
	}
	h.stats.Reallocs++
	if round8(n)+chunkHeader <= c.size && (!h.hasCanary(c) || round8(n)+chunkHeader+canarySize <= c.size) {
		// Shrink in place.
		h.stats.InUseBytes += uint64(n) - uint64(c.req)
		c.req = n
		return p, nil
	}
	q := h.Malloc(n)
	if q.IsNull() {
		return 0, nil // original block untouched, C semantics
	}
	ncopy := c.req
	if n < ncopy {
		ncopy = n
	}
	buf := make([]byte, ncopy)
	if f := h.sp.Read(p, buf); f != nil {
		return 0, f
	}
	if f := h.sp.Write(q, buf); f != nil {
		return 0, f
	}
	if f := h.Free(p); f != nil {
		return 0, f
	}
	return q, nil
}

// UsableSize returns the requested size of the live allocation at p.
func (h *Heap) UsableSize(p Addr) (uint32, bool) {
	c, ok := h.byUser[p]
	if !ok {
		return 0, false
	}
	return c.req, true
}

// ChunkRange returns the [user, user+req) extent of the live allocation
// that contains address a, if any. The security wrapper uses it to decide
// whether a write of a given length can stay inside its buffer.
func (h *Heap) ChunkRange(a Addr) (base Addr, size uint32, ok bool) {
	for c := h.head; c != nil; c = c.next {
		if !c.used {
			continue
		}
		if a >= c.user() && a < c.user()+Addr(round8(max32(c.req, 1))) {
			return c.user(), c.req, true
		}
	}
	return 0, 0, false
}

// checkChunk verifies one chunk's simulated-memory header and canary.
func (h *Heap) checkChunk(c *chunk) *Fault {
	sz, f := h.sp.ReadU32(c.base)
	if f != nil {
		return f
	}
	magic, f := h.sp.ReadU32(c.base + 4)
	if f != nil {
		return f
	}
	wantMagic := uint32(freeMagic)
	if c.used {
		wantMagic = chunkMagic
	}
	if sz != c.size || magic != wantMagic {
		return overflow("heapcheck", c.base,
			fmt.Sprintf("chunk header smashed (size %d!=%d or magic %#x!=%#x)", sz, c.size, magic, wantMagic))
	}
	if c.used && h.hasCanary(c) {
		got, f := h.sp.ReadU64(c.canaryAddr())
		if f != nil {
			return f
		}
		if got != h.canaryValue(c.base) {
			return overflow("heapcheck", c.user(),
				fmt.Sprintf("canary clobbered on chunk %s (req %d bytes)", c.user(), c.req))
		}
	}
	return nil
}

// CheckIntegrity walks every chunk verifying mirrored headers and canaries.
// It is the hook the security wrapper calls on intercepted entry points.
func (h *Heap) CheckIntegrity() *Fault {
	for c := h.head; c != nil; c = c.next {
		if f := h.checkChunk(c); f != nil {
			return f
		}
	}
	return nil
}

// Stats returns a snapshot of allocator statistics.
func (h *Heap) Stats() HeapStats { return h.stats }

// InUse reports whether p is a live user pointer.
func (h *Heap) InUse(p Addr) bool {
	_, ok := h.byUser[p]
	return ok
}

// Walk calls fn for every chunk in address order with its user address,
// requested size, and in-use flag; fn returning false stops the walk.
// Diagnostic tooling uses it for heap dumps.
func (h *Heap) Walk(fn func(user Addr, req uint32, used bool) bool) {
	for c := h.head; c != nil; c = c.next {
		if !fn(c.user(), c.req, c.used) {
			return
		}
	}
}
