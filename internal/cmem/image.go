package cmem

import (
	"fmt"
	"strings"
)

// Image bundles a complete simulated process memory image: address space,
// data segment allocator, heap, and stack. One Image backs one simulated
// process; the fault injector creates a fresh Image per probe, standing in
// for forking a probe child.
type Image struct {
	Space *Space
	Heap  *Heap
	Stack *Stack

	dataCur Addr // bump pointer inside the data segment
	dataEnd Addr
	roCur   Addr // bump pointer inside the read-only segment
	roEnd   Addr
}

// Segment sizing for the data/rodata bump allocators.
const (
	dataSegSize = 4 << 20
	roSegSize   = 1 << 20
	// RoBase is where the simulated read-only segment (string literals)
	// begins. Kept below DataBase.
	RoBase Addr = 0x04000000
)

// NewImage builds a canonical process image: a read-only literal segment, a
// writable data segment, an empty heap, and a stack of DefaultStackSize.
func NewImage() *Image {
	sp := NewSpace()
	if f := sp.Map(RoBase, roSegSize, ProtRead); f != nil {
		panic(fmt.Sprintf("cmem: fresh space rejected rodata map: %v", f))
	}
	if f := sp.Map(DataBase, dataSegSize, ProtRW); f != nil {
		panic(fmt.Sprintf("cmem: fresh space rejected data map: %v", f))
	}
	st, f := NewStack(sp, StackTop, DefaultStackSize)
	if f != nil {
		panic(fmt.Sprintf("cmem: fresh space rejected stack map: %v", f))
	}
	return &Image{
		Space:   sp,
		Heap:    NewHeap(sp, HeapBase, HeapLimit),
		Stack:   st,
		dataCur: DataBase,
		dataEnd: DataBase + dataSegSize,
		roCur:   RoBase,
		roEnd:   RoBase + roSegSize,
	}
}

// StaticAlloc reserves n bytes (8-aligned) in the writable data segment and
// returns the base address. The loader places library globals here.
func (im *Image) StaticAlloc(n uint32) (Addr, *Fault) {
	n = round8(max32(n, 1))
	if im.dataCur+Addr(n) > im.dataEnd {
		return 0, abort("static", im.dataCur, "data segment exhausted")
	}
	a := im.dataCur
	im.dataCur += Addr(n)
	return a, nil
}

// StaticString places s as a NUL-terminated writable string in the data
// segment and returns its address.
func (im *Image) StaticString(s string) (Addr, *Fault) {
	a, f := im.StaticAlloc(uint32(len(s)) + 1)
	if f != nil {
		return 0, f
	}
	if f := im.Space.WriteCString(a, s); f != nil {
		return 0, f
	}
	return a, nil
}

// LiteralString places s as a NUL-terminated *read-only* string (a C string
// literal) and returns its address. Writing through the returned pointer
// faults, which is exactly what several injector probes check.
func (im *Image) LiteralString(s string) (Addr, *Fault) {
	n := round8(uint32(len(s)) + 1)
	if im.roCur+Addr(n) > im.roEnd {
		return 0, abort("literal", im.roCur, "rodata segment exhausted")
	}
	a := im.roCur
	im.roCur += Addr(n)
	// Temporarily raise protection to seed the bytes.
	if f := im.Space.Protect(a&^Addr(pageMask), PageSize, ProtRW); f != nil {
		return 0, f
	}
	if f := im.Space.WriteCString(a, s); f != nil {
		return 0, f
	}
	if f := im.Space.Protect(a&^Addr(pageMask), PageSize, ProtRead); f != nil {
		return 0, f
	}
	return a, nil
}

// CString is shorthand for reading a NUL-terminated string with a sane
// upper bound for diagnostics.
func (im *Image) CString(a Addr) (string, *Fault) {
	return im.Space.ReadCString(a, 1<<20)
}

// HexDump renders n bytes starting at a in the classic 16-byte-row hex +
// ASCII format. Unmapped bytes render as "..". Used by the attack demo and
// by failing tests for legible context.
func (im *Image) HexDump(a Addr, n uint32) string {
	var b strings.Builder
	for row := uint32(0); row < n; row += 16 {
		fmt.Fprintf(&b, "%s  ", a+Addr(row))
		var ascii [16]byte
		for col := uint32(0); col < 16; col++ {
			if row+col >= n {
				b.WriteString("   ")
				ascii[col] = ' '
				continue
			}
			c, f := im.Space.ReadByteAt(a + Addr(row+col))
			if f != nil {
				b.WriteString(".. ")
				ascii[col] = '.'
				continue
			}
			fmt.Fprintf(&b, "%02x ", c)
			if c >= 0x20 && c < 0x7f {
				ascii[col] = c
			} else {
				ascii[col] = '.'
			}
		}
		fmt.Fprintf(&b, " |%s|\n", string(ascii[:]))
	}
	return b.String()
}
